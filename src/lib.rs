//! # dqep — Dynamic Query Evaluation Plans
//!
//! A from-scratch Rust implementation of **dynamic query evaluation
//! plans**: query plans, generated entirely at compile-time, that contain
//! alternative subplans linked by **choose-plan** operators and adapt at
//! start-up-time to the actual host-variable bindings and resource
//! availability.
//!
//! The system reproduces the line of work of *Dynamic Query Evaluation
//! Plans* (Graefe & Ward, SIGMOD 1989), which introduced the choose-plan
//! run-time primitive, and *Optimization of Dynamic Query Evaluation
//! Plans* (Cole & Graefe, SIGMOD 1994), which contributed the compile-time
//! optimizer — interval costs, cost incomparability, partially ordered
//! dynamic programming — and whose evaluation (Figures 3–8) the bundled
//! experiment harness regenerates.
//!
//! ## Crate map
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`interval`] | `dqep-interval` | Interval arithmetic, 4-valued cost comparison |
//! | [`catalog`] | `dqep-catalog` | Schemas, statistics, indexes, system constants |
//! | [`algebra`] | `dqep-algebra` | Logical & physical algebra (paper Table 1) |
//! | [`cost`] | `dqep-cost` | Interval cost model & per-algorithm cost functions |
//! | [`optimizer`] | `dqep-core` | The dynamic-plan optimizer (memo, rules, frontiers) |
//! | [`plan`] | `dqep-plan` | Plan DAGs, access modules, start-up evaluation, shrinking |
//! | [`storage`] | `dqep-storage` | Simulated disk, heap files, B-trees, buffer pool |
//! | [`executor`] | `dqep-executor` | Volcano iterators incl. run-time choose-plan |
//! | [`harness`] | `dqep-harness` | The paper's five queries & figure experiments |
//! | [`sql`] | `dqep-sql` | Embedded-SQL parser (`SELECT … WHERE a < :x`) |
//! | [`service`] | `dqep-service` | Prepared-statement registry, decision cache, concurrent sessions |
//!
//! ## Quickstart
//!
//! ```
//! use dqep::algebra::{CompareOp, HostVar, LogicalExpr, SelectPred};
//! use dqep::catalog::{CatalogBuilder, SystemConfig};
//! use dqep::cost::{Bindings, Environment};
//! use dqep::optimizer::Optimizer;
//! use dqep::plan::evaluate_startup;
//!
//! // A relation with an unclustered B-tree on `a`.
//! let catalog = CatalogBuilder::new(SystemConfig::paper_1994())
//!     .relation("orders", 1_000, 512, |r| r.attr("a", 1_000.0).btree("a", false))
//!     .build()
//!     .unwrap();
//! let orders = catalog.relation_by_name("orders").unwrap();
//!
//! // SELECT * FROM orders WHERE a < :x — selectivity unknown at compile-time.
//! let query = LogicalExpr::get(orders.id).select(SelectPred::unbound(
//!     orders.attr_id("a").unwrap(),
//!     CompareOp::Lt,
//!     HostVar(0),
//! ));
//!
//! // Compile-time: optimize once into a dynamic plan.
//! let env = Environment::dynamic_compile_time(&catalog.config);
//! let dynamic_plan = Optimizer::new(&catalog, &env).optimize(&query).unwrap().plan;
//! assert!(dynamic_plan.is_dynamic());
//!
//! // Start-up-time: bind :x, re-evaluate cost functions, pick a plan.
//! let bindings = Bindings::new().with_value(HostVar(0), 5); // selective
//! let chosen = evaluate_startup(&dynamic_plan, &catalog, &env, &bindings);
//! assert!(!chosen.resolved.is_dynamic());
//! ```

#![warn(missing_docs)]

pub mod error;

pub use error::DqepError;

/// Interval arithmetic and partial cost ordering (re-export of
/// `dqep-interval`).
pub mod interval {
    pub use dqep_interval::*;
}

/// Catalog, statistics, and system configuration (re-export of
/// `dqep-catalog`).
pub mod catalog {
    pub use dqep_catalog::*;
}

/// Logical and physical algebra (re-export of `dqep-algebra`).
pub mod algebra {
    pub use dqep_algebra::*;
}

/// The interval cost model (re-export of `dqep-cost`).
pub mod cost {
    pub use dqep_cost::*;
}

/// The dynamic-plan optimizer (re-export of `dqep-core`).
pub mod optimizer {
    pub use dqep_core::*;
}

/// Plan DAGs, access modules, and start-up evaluation (re-export of
/// `dqep-plan`).
pub mod plan {
    pub use dqep_plan::*;
}

/// Storage substrate (re-export of `dqep-storage`).
pub mod storage {
    pub use dqep_storage::*;
}

/// Execution engine (re-export of `dqep-executor`).
pub mod executor {
    pub use dqep_executor::*;
}

/// Experiment harness (re-export of `dqep-harness`).
pub mod harness {
    pub use dqep_harness::*;
}

/// Embedded-SQL front end (re-export of `dqep-sql`).
pub mod sql {
    pub use dqep_sql::*;
}

/// Prepared-query serving layer: statement registry, bind-time decision
/// cache, concurrent sessions with admission control (re-export of
/// `dqep-service`).
pub mod service {
    pub use dqep_service::*;
}
