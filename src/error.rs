//! Top-level error type for embedders and the command-line tool.
//!
//! Every layer of the workspace reports failures through its own typed
//! error (`ParseError`, `OptimizerError`, `ExecError`, `StorageError`),
//! each implementing [`std::error::Error`] with `source` chaining.
//! [`DqepError`] unifies them at the crate boundary and maps each failure
//! class to a stable process exit code, so scripts driving the CLI can
//! distinguish "bad query" from "resource budget exhausted" from "storage
//! fault" without parsing stderr.

use std::fmt;

use dqep_core::OptimizerError;
use dqep_executor::ExecError;
use dqep_service::ServiceError;
use dqep_sql::ParseError;
use dqep_storage::StorageError;

/// Unified top-level error: everything that can go wrong between a query
/// string arriving and its last row being produced.
#[derive(Debug)]
pub enum DqepError {
    /// Invalid invocation: bad flags, malformed bindings, unparsable
    /// fault-plan or limit specs.
    Usage(String),
    /// The query text failed to parse or validate.
    Sql(ParseError),
    /// The optimizer rejected or failed to plan the query.
    Optimizer(OptimizerError),
    /// Execution failed (includes resource exhaustion, cancellation, and
    /// storage faults surfaced through the pipeline).
    Exec(ExecError),
    /// A storage operation outside the executor failed (e.g. building
    /// histogram statistics).
    Storage(StorageError),
    /// An operating-system I/O failure (e.g. writing a `--dot` file).
    Io(std::io::Error),
    /// A prepared-query service session failed outside execution proper
    /// (admission timeout, oversized grant, shutdown).
    Service(ServiceError),
}

impl DqepError {
    /// Maps the failure class to a stable process exit code.
    ///
    /// | code | meaning |
    /// |---|---|
    /// | 0 | success |
    /// | 1 | OS I/O or internal failure |
    /// | 2 | usage / argument error |
    /// | 3 | query error (SQL parse or optimizer) |
    /// | 4 | execution failed (fatal) |
    /// | 5 | a resource budget was exhausted |
    /// | 6 | storage fault |
    /// | 7 | cancelled |
    /// | 8 | service admission failure |
    #[must_use]
    pub fn exit_code(&self) -> u8 {
        match self {
            DqepError::Usage(_) => 2,
            DqepError::Sql(_) | DqepError::Optimizer(_) => 3,
            DqepError::Exec(e) => match e {
                ExecError::Storage(_) => 6,
                ExecError::ResourceExhausted(_) => 5,
                ExecError::Cancelled => 7,
                _ => 4,
            },
            DqepError::Storage(_) => 6,
            DqepError::Io(_) => 1,
            DqepError::Service(e) => match e {
                ServiceError::Sql(_) | ServiceError::Optimizer(_) | ServiceError::Bind(_) => 3,
                ServiceError::Exec(e) => DqepError::Exec(e.clone()).exit_code(),
                ServiceError::AdmissionTimeout { .. } | ServiceError::GrantTooLarge { .. } => 8,
                ServiceError::Shutdown => 1,
            },
        }
    }

    /// True when retrying the same invocation could succeed (transient
    /// storage faults, under-provisioned memory grants).
    #[must_use]
    pub fn is_retryable(&self) -> bool {
        match self {
            DqepError::Exec(e) => e.is_retryable(),
            DqepError::Storage(_) => true,
            DqepError::Service(ServiceError::Exec(e)) => e.is_retryable(),
            DqepError::Service(ServiceError::AdmissionTimeout { .. }) => true,
            _ => false,
        }
    }
}

impl fmt::Display for DqepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DqepError::Usage(m) => write!(f, "{m}"),
            DqepError::Sql(e) => write!(f, "sql: {e}"),
            DqepError::Optimizer(e) => write!(f, "optimizer: {e}"),
            DqepError::Exec(e) => write!(f, "execution: {e}"),
            DqepError::Storage(e) => write!(f, "storage: {e}"),
            DqepError::Io(e) => write!(f, "io: {e}"),
            DqepError::Service(e) => write!(f, "service: {e}"),
        }
    }
}

impl std::error::Error for DqepError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DqepError::Usage(_) => None,
            DqepError::Sql(e) => Some(e),
            DqepError::Optimizer(e) => Some(e),
            DqepError::Exec(e) => Some(e),
            DqepError::Storage(e) => Some(e),
            DqepError::Io(e) => Some(e),
            DqepError::Service(e) => Some(e),
        }
    }
}

impl From<ParseError> for DqepError {
    fn from(e: ParseError) -> Self {
        DqepError::Sql(e)
    }
}

impl From<OptimizerError> for DqepError {
    fn from(e: OptimizerError) -> Self {
        DqepError::Optimizer(e)
    }
}

impl From<ExecError> for DqepError {
    fn from(e: ExecError) -> Self {
        DqepError::Exec(e)
    }
}

impl From<StorageError> for DqepError {
    fn from(e: StorageError) -> Self {
        DqepError::Storage(e)
    }
}

impl From<ServiceError> for DqepError {
    fn from(e: ServiceError) -> Self {
        // Execution failures keep their executor classification (and so
        // their exit codes); everything else is service-level.
        match e {
            ServiceError::Exec(e) => DqepError::Exec(e),
            other => DqepError::Service(other),
        }
    }
}

impl From<std::io::Error> for DqepError {
    fn from(e: std::io::Error) -> Self {
        DqepError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqep_executor::Resource;
    use dqep_storage::PageId;
    use std::error::Error as _;

    #[test]
    fn exit_codes_partition_the_failure_classes() {
        assert_eq!(DqepError::Usage("bad flag".into()).exit_code(), 2);
        assert_eq!(
            DqepError::from(OptimizerError::NoPlanFound).exit_code(),
            3
        );
        assert_eq!(
            DqepError::from(ExecError::Internal("x".into())).exit_code(),
            4
        );
        assert_eq!(
            DqepError::from(ExecError::ResourceExhausted(Resource::Rows { limit: 1 }))
                .exit_code(),
            5
        );
        assert_eq!(
            DqepError::from(ExecError::Storage(StorageError::ZeroCapacityPool)).exit_code(),
            6
        );
        assert_eq!(DqepError::Exec(ExecError::Cancelled).exit_code(), 7);
        assert_eq!(
            DqepError::from(StorageError::ZeroCapacityPool).exit_code(),
            6
        );
        assert_eq!(
            DqepError::from(std::io::Error::other("x")).exit_code(),
            1
        );
    }

    #[test]
    fn source_chains_to_the_layer_error() {
        let e = DqepError::from(ExecError::Storage(StorageError::UnallocatedPage(PageId(9))));
        let exec = e.source().expect("exec source");
        assert!(exec.to_string().contains("storage"));
        let storage = exec.source().expect("storage source");
        assert!(storage.to_string().contains("p9"));
        assert!(DqepError::Usage("u".into()).source().is_none());
    }

    #[test]
    fn retryability_follows_the_executor_classification() {
        assert!(
            DqepError::from(ExecError::Storage(StorageError::UnallocatedPage(PageId(1))))
                .is_retryable()
        );
        assert!(!DqepError::Exec(ExecError::Cancelled).is_retryable());
        assert!(!DqepError::Usage("u".into()).is_retryable());
    }
}
