//! Integration tests of the Figure 3 scenario accounting and the shrinking
//! access module on optimizer-produced plans.

use dqep::cost::{Bindings, Environment};
use dqep::harness::{paper_query, run_dynamic, run_runtime_opt, run_static, BindingSampler};
use dqep::optimizer::Optimizer;
use dqep::plan::shrink::ShrinkingModule;
use dqep::plan::dag;

/// Figure 3 / Figure 4 end-to-end: dynamic plans dominate static plans in
/// total effort, and match run-time optimization invocation by invocation.
#[test]
fn scenario_relationships_hold_at_n50() {
    let w = paper_query(2, 77);
    let bindings = BindingSampler::new(5, false).sample_n(&w, 50);

    let st = run_static(&w, &bindings);
    let dy = run_dynamic(&w, &bindings, false);
    let rt = run_runtime_opt(&w, &bindings);

    // Robustness: every invocation.
    for (i, (c, g)) in st.exec_seconds.iter().zip(&dy.exec_seconds).enumerate() {
        assert!(g <= &(c + 1e-9), "invocation {i}: dynamic {g} > static {c}");
    }
    // Optimality: g_i = d_i.
    for (g, d) in dy.exec_seconds.iter().zip(&rt.exec_seconds) {
        assert!((g - d).abs() < 1e-6);
    }
    // Totals, as reported in Figure 3.
    let total_static = st.optimize_seconds + st.runtime_effort();
    let total_dynamic = dy.optimize_seconds + dy.runtime_effort();
    assert!(total_dynamic < total_static);
}

/// The break-even point against static plans is 1 in the paper and stays
/// tiny here: dynamic plans pay off from the first invocation.
#[test]
fn dynamic_pays_off_immediately() {
    let w = paper_query(3, 78);
    let bindings = BindingSampler::new(6, false).sample_n(&w, 30);
    let st = run_static(&w, &bindings);
    let dy = run_dynamic(&w, &bindings, false);
    let per_inv_static = st.activation_seconds + st.avg_exec();
    let per_inv_dynamic = dy.activation_seconds + dy.avg_exec();
    assert!(per_inv_dynamic < per_inv_static);
    let n_break = ((dy.optimize_seconds - st.optimize_seconds)
        / (per_inv_static - per_inv_dynamic))
        .ceil()
        .max(1.0);
    assert!(n_break <= 2.0, "break-even {n_break}");
}

/// The shrinking module reduces activation effort after skewed usage and
/// keeps producing correct (if possibly suboptimal) plans afterwards.
#[test]
fn shrinking_module_on_optimized_plan() {
    let w = paper_query(2, 79);
    let env = Environment::dynamic_compile_time(&w.catalog.config);
    let plan = Optimizer::new(&w.catalog, &env).optimize(&w.query).unwrap().plan;
    let nodes_before = dag::node_count(&plan);

    let mut module = ShrinkingModule::new(plan, 20);
    // Skewed: always-low selectivities.
    for i in 0..20 {
        let mut b = Bindings::new();
        for &(var, attr) in &w.host_vars {
            let domain = w.catalog.attribute(attr).domain_size;
            b = b.with_value(var, ((i % 5) as f64 / 50.0 * domain) as i64);
        }
        let r = module.invoke(&w.catalog, &env, &b);
        assert!(r.predicted_run_seconds >= 0.0);
    }
    assert!(module.has_shrunk());
    let nodes_after = dag::node_count(module.plan());
    assert!(
        nodes_after < nodes_before,
        "shrink did not reduce plan size ({nodes_before} -> {nodes_after})"
    );

    // Later invocations still work, even outside the observed range.
    let mut hot = Bindings::new();
    for &(var, attr) in &w.host_vars {
        let domain = w.catalog.attribute(attr).domain_size;
        hot = hot.with_value(var, (0.9 * domain) as i64);
    }
    let r = module.invoke(&w.catalog, &env, &hot);
    assert!(r.predicted_run_seconds > 0.0);
}

/// Scenario runners agree with the raw optimizer statistics they embed.
#[test]
fn scenario_results_are_internally_consistent() {
    let w = paper_query(1, 80);
    let bindings = BindingSampler::new(7, true).sample_n(&w, 10);
    let dy = run_dynamic(&w, &bindings, true);
    assert_eq!(dy.exec_seconds.len(), 10);
    assert_eq!(dy.plan_nodes, dy.opt_stats.plan_nodes);
    assert!(dy.choose_plans > 0);
    assert!(dy.modeled_startup_cpu > 0.0);
    assert!(dy.activation_seconds > dy.modeled_startup_cpu);
    let plan = dy.plan.as_ref().expect("plan kept");
    assert_eq!(dag::choose_plan_count(plan), dy.choose_plans);
}
