//! Sharded-execution parity: a query distributed across shard replicas
//! with repartitioning exchange and per-shard arbitration must produce
//! the same result **multiset** as plain single-node dynamic execution —
//! across random chain workloads, shard counts {1, 2, 4}, DOP {1, 2},
//! both execution modes, injected link faults (within the retransmission
//! budget), and governed memory. Divergent per-shard winners are a
//! legitimate — and asserted — behaviour, never a correctness excuse.

use dqep::catalog::{Catalog, CatalogBuilder, SystemConfig};
use dqep::cost::{Bindings, Environment};
use dqep::executor::{
    compile_dynamic_plan, drain, drain_batch, ExecContext, ExecError, ExecMode, LinkFaultPlan,
    Resource, ResourceLimits, SharedCounters, Tuple, TupleLayout,
};
use dqep::optimizer::Optimizer;
use dqep::service::{ServiceError, ShardConfig, ShardRouting, ShardedService};
use dqep::sql::parse_query;
use dqep::storage::{StoredDatabase, ValueDistribution};
use proptest::prelude::*;

/// The same randomized 1–3 relation chain workload as the other parity
/// suites, expressed through the SQL front end so the sharded service's
/// whole path (parse → distribute → arbitrate → exchange → merge) is
/// under test.
#[derive(Debug, Clone)]
struct RandomWorkload {
    cards: Vec<u64>,
    domain_factors: Vec<f64>,
    selected: Vec<bool>,
    order_by: bool,
}

fn workload_strategy() -> impl Strategy<Value = RandomWorkload> {
    (1usize..=3).prop_flat_map(|n| {
        (
            proptest::collection::vec(40u64..400, n),
            proptest::collection::vec(0.2f64..1.25, n),
            proptest::collection::vec(any::<bool>(), n),
            any::<bool>(),
        )
            .prop_map(|(cards, domain_factors, mut selected, order_by)| {
                if !selected.iter().any(|s| *s) {
                    selected[0] = true;
                }
                RandomWorkload {
                    cards,
                    domain_factors,
                    selected,
                    order_by,
                }
            })
    })
}

/// Builds the catalog plus the SQL text and host-variable bindings of
/// the workload's chain query.
fn build(w: &RandomWorkload, sel: f64) -> (Catalog, String, Vec<(String, i64)>) {
    let mut builder = CatalogBuilder::new(SystemConfig::paper_1994());
    for (i, (&card, &f)) in w.cards.iter().zip(&w.domain_factors).enumerate() {
        let name = format!("t{i}");
        let jdomain = (card as f64 * f).max(1.0).round();
        builder = builder.relation(&name, card, 512, |r| {
            r.attr("a", card as f64)
                .attr("j", jdomain)
                .btree("a", false)
                .btree("j", false)
        });
    }
    let catalog = builder.build().expect("valid random catalog");

    let from: Vec<String> = (0..w.cards.len()).map(|i| format!("t{i}")).collect();
    let mut preds: Vec<String> = (1..w.cards.len())
        .map(|i| format!("t{}.j = t{i}.j", i - 1))
        .collect();
    let mut binds = Vec::new();
    for (i, &selected) in w.selected.iter().enumerate() {
        if selected {
            preds.push(format!("t{i}.a < :v{i}"));
            let domain = catalog.relations()[i].attributes[0].domain_size;
            binds.push((format!("v{i}"), (sel * domain) as i64));
        }
    }
    let mut sql = format!("SELECT * FROM {} WHERE {}", from.join(", "), preds.join(" AND "));
    if w.order_by {
        sql.push_str(" ORDER BY t0.a");
    }
    (catalog, sql, binds)
}

fn sorted(mut rows: Vec<Tuple>) -> Vec<Tuple> {
    rows.sort_unstable();
    rows
}

/// Plain single-node execution over a database generated with the exact
/// seed and per-attribute distribution profile the sharded service uses
/// for its global data, remapped to the canonical `FROM`-order layout
/// the sharded result uses.
fn single_node_rows(
    catalog: &Catalog,
    sql: &str,
    binds: &[(&str, i64)],
    config: &ShardConfig,
    canonical: &TupleLayout,
) -> Result<Vec<Tuple>, ExecError> {
    let dist = config.skew.map_or(ValueDistribution::Uniform, |exponent| {
        ValueDistribution::Zipf { exponent }
    });
    let db = StoredDatabase::generate_profiled(catalog, config.data_seed, |_, ai| {
        if ai == 0 {
            dist
        } else {
            ValueDistribution::Uniform
        }
    });
    let env = Environment::dynamic_compile_time(&catalog.config);
    let query = parse_query(sql, catalog).expect("workload SQL parses");
    let mut bindings = Bindings::new();
    for &(name, value) in binds {
        let var = query.host_var(name).expect("known host var");
        bindings = bindings.with_value(var, value);
    }
    let memory = (env.memory.expected() * f64::from(catalog.config.page_size)) as usize;
    let plan = Optimizer::new(catalog, &env)
        .optimize_with_props(&query.expr, query.required_props())
        .expect("workload optimizes")
        .plan;
    let ctx = ExecContext::with_limits(SharedCounters::new(), config.limits)
        .with_mode(config.exec_mode)
        .with_dop(config.dop);
    let mut op = compile_dynamic_plan(&plan, &db, catalog, &env, &bindings, memory, &ctx)?;
    let layout = op.layout().clone();
    let rows = match config.exec_mode {
        ExecMode::Tuple => drain(op.as_mut()),
        ExecMode::Batch => drain_batch(op.as_mut()),
    }?;
    Ok(match canonical.projection_from(&layout) {
        None => rows,
        Some(proj) => rows
            .iter()
            .map(|row| proj.iter().map(|&i| row[i]).collect())
            .collect(),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random chain queries over shard counts {1, 2, 4} × DOP {1, 2} in
    /// both execution modes, optionally under link faults (inside the
    /// retransmission budget) or a governed per-shard memory budget:
    /// identical result multisets whenever both paths succeed. A sharded
    /// failure where single-node succeeds is acceptable **only** as a
    /// governed memory refusal — never as a network or logic error.
    #[test]
    fn sharded_matches_single_node(
        w in workload_strategy(),
        sel in 0.0f64..=1.0,
        seed in 0u64..1000,
        shards in prop_oneof![Just(1usize), Just(2), Just(4)],
        dop in prop_oneof![Just(1usize), Just(2)],
        mode in prop_oneof![Just(ExecMode::Tuple), Just(ExecMode::Batch)],
        hazard in prop_oneof![Just(0u8), Just(1), Just(2)],
        fault_frames in proptest::collection::vec(1u64..6, 0..3),
        mem_kb in 8u64..128,
    ) {
        let (catalog, sql, binds) = build(&w, sel);
        let limits = ResourceLimits {
            memory_bytes: (hazard == 2).then_some(mem_kb * 1024),
            ..ResourceLimits::unlimited()
        };
        let link_faults = if hazard == 1 {
            // Every injected drop retransmits within budget: parity must
            // survive the fault plan untouched.
            LinkFaultPlan {
                max_retransmits: fault_frames.len() as u32 + 2,
                fail_nth_frames: fault_frames,
            }
        } else {
            LinkFaultPlan::none()
        };
        let config = ShardConfig {
            shards,
            dop,
            exec_mode: mode,
            limits,
            link_faults,
            data_seed: seed,
            ..ShardConfig::default()
        };

        let svc = ShardedService::new(catalog.clone(), config.clone());
        let outcome = svc.execute(&sql, &bind_refs(&binds));

        match outcome {
            Ok(out) => {
                let baseline = single_node_rows(
                    &catalog, &sql, &bind_refs(&binds), &config, &out.layout,
                );
                if let Ok(expected) = baseline {
                    prop_assert_eq!(
                        sorted(out.rows.clone()),
                        sorted(expected),
                        "multisets diverged (shards={} dop={} mode={:?} hazard={})",
                        shards, dop, mode, hazard
                    );
                }
                // else: single-node refused under the same governed
                // budget the shards absorbed — graceful degradation.
                if w.order_by {
                    let key = out.layout.require(
                        catalog.relations()[0].attr_id("a").expect("attr a"),
                    );
                    prop_assert!(
                        out.rows.windows(2).all(|p| p[0][key] <= p[1][key]),
                        "ORDER BY violated after gather merge"
                    );
                }
            }
            Err(ServiceError::Exec(ExecError::ResourceExhausted(Resource::Memory { .. })))
                if hazard == 2 => {} // governed refusal under a tight grant
            Err(e) => prop_assert!(
                false,
                "sharded execution failed where it must not \
                 (shards={shards} dop={dop} hazard={hazard}): {e:?}"
            ),
        }
    }

    /// Determinism: the same workload executed twice on identically
    /// configured services reproduces the identical row order, audit
    /// winners, and per-shard row counts.
    #[test]
    fn sharded_execution_is_deterministic(
        w in workload_strategy(),
        sel in 0.0f64..=1.0,
        seed in 0u64..1000,
        shards in prop_oneof![Just(2usize), Just(4)],
    ) {
        let (catalog, sql, binds) = build(&w, sel);
        let config = ShardConfig { shards, data_seed: seed, ..ShardConfig::default() };
        let run = |cat: Catalog| {
            ShardedService::new(cat, config.clone())
                .execute(&sql, &bind_refs(&binds))
                .expect("unhazarded run succeeds")
        };
        let (a, b) = (run(catalog.clone()), run(catalog));
        prop_assert_eq!(a.rows, b.rows, "row order must be reproducible");
        prop_assert_eq!(a.per_shard_rows, b.per_shard_rows);
        let winners = |o: &dqep::service::ShardOutcome| -> Vec<Vec<Option<usize>>> {
            o.audits
                .iter()
                .map(|s| s.iter().map(|audit| audit.winner).collect())
                .collect()
        };
        prop_assert_eq!(winners(&a), winners(&b), "audit trails must be reproducible");
    }
}

fn bind_refs(binds: &[(String, i64)]) -> Vec<(&str, i64)> {
    binds.iter().map(|(n, v)| (n.as_str(), *v)).collect()
}

/// Deterministic divergent-winner scenario: range partitioning over
/// Zipf-skewed data concentrates the matching values on few shards, so
/// bind-time arbitration legitimately resolves differently per shard —
/// asserted through the choose-plan audit trail — while the merged
/// result stays equal to forcing the single-node winner everywhere.
#[test]
fn divergent_winners_are_audited_and_parity_preserving() {
    let catalog = CatalogBuilder::new(SystemConfig::paper_1994())
        .relation("t0", 4_000, 512, |r| {
            r.attr("a", 4_000.0).attr("j", 400.0).btree("a", false).btree("j", false)
        })
        .build()
        .expect("catalog");
    let skewed = |force: bool| ShardConfig {
        shards: 4,
        routing: ShardRouting::Range { attr: 0 },
        skew: Some(1.2),
        force_uniform_winner: force,
        ..ShardConfig::default()
    };
    let sql = "SELECT * FROM t0 WHERE t0.a < :v0";
    let binds = [("v0", 120i64)];

    let per_shard = ShardedService::new(catalog.clone(), skewed(false))
        .execute(sql, &binds)
        .expect("per-shard arbitration runs");
    let forced = ShardedService::new(catalog, skewed(true))
        .execute(sql, &binds)
        .expect("forced-uniform run");

    assert!(
        per_shard.divergent(),
        "skewed range partitions must produce divergent winners, got {:?}",
        per_shard.winner_counts()
    );
    assert!(
        per_shard.winner_counts().len() >= 2,
        "at least two distinct alternatives must win somewhere"
    );
    assert!(
        !forced.divergent(),
        "a coordinator-resolved broadcast has nothing left to diverge"
    );
    assert_eq!(
        sorted(per_shard.rows),
        sorted(forced.rows),
        "winner choice never changes the result multiset"
    );
}
