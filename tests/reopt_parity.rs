//! Mid-query re-optimization parity: a re-optimizing execution must be
//! observationally equivalent to plain dynamic execution — the same
//! result tuples as a *multiset* — across random plans, bindings, DOPs,
//! both execution modes, injected storage faults, and tight memory
//! grants. Re-optimization may legitimately *survive* a hazard that
//! fails the plain path (that is the degradation ladder doing its job),
//! but it must never fail where the plain path succeeds, and it must be
//! deterministic: identical inputs reproduce the identical audit trail.

use dqep::algebra::{CompareOp, HostVar, JoinPred, LogicalExpr, SelectPred};
use dqep::catalog::{Catalog, CatalogBuilder, SystemConfig};
use dqep::cost::{Bindings, Environment};
use dqep::executor::{
    compile_dynamic_plan, drain, drain_batch, execute_plan_reopt, execute_plan_reopt_ctx,
    ExecContext, ExecError, ExecMode, ReoptConfig, ResourceLimits, SharedCounters, Tuple,
};
use dqep::optimizer::Optimizer;
use dqep::storage::{FaultPlan, StoredDatabase, ValueDistribution};
use proptest::prelude::*;

/// Re-plan budget with the backoff sleep disabled: the machinery itself
/// is deterministic, the sleeps only cost wall-clock in tests.
fn quick() -> ReoptConfig {
    ReoptConfig {
        backoff_base_ms: 0,
        ..ReoptConfig::default()
    }
}

/// The same randomized 1–3 relation chain workload as the other parity
/// suites, generated over Zipf-skewed data so uniform compile-time
/// estimates drift and checkpoints actually escape.
#[derive(Debug, Clone)]
struct RandomWorkload {
    cards: Vec<u64>,
    domain_factors: Vec<f64>,
    selected: Vec<bool>,
}

fn workload_strategy() -> impl Strategy<Value = RandomWorkload> {
    (1usize..=3).prop_flat_map(|n| {
        (
            proptest::collection::vec(40u64..400, n),
            proptest::collection::vec(0.2f64..1.25, n),
            proptest::collection::vec(any::<bool>(), n),
        )
            .prop_map(|(cards, domain_factors, mut selected)| {
                if !selected.iter().any(|s| *s) {
                    selected[0] = true;
                }
                RandomWorkload {
                    cards,
                    domain_factors,
                    selected,
                }
            })
    })
}

fn build(w: &RandomWorkload) -> (Catalog, LogicalExpr, Vec<(HostVar, f64)>) {
    let mut builder = CatalogBuilder::new(SystemConfig::paper_1994());
    for (i, (&card, &f)) in w.cards.iter().zip(&w.domain_factors).enumerate() {
        let name = format!("t{i}");
        let jdomain = (card as f64 * f).max(1.0).round();
        builder = builder.relation(&name, card, 512, |r| {
            r.attr("a", card as f64)
                .attr("j", jdomain)
                .btree("a", false)
                .btree("j", false)
        });
    }
    let catalog = builder.build().expect("valid random catalog");
    let rels: Vec<_> = catalog.relations().to_vec();
    let mut hosts = Vec::new();
    let leaf = |i: usize, hosts: &mut Vec<(HostVar, f64)>| {
        let mut e = LogicalExpr::get(rels[i].id);
        if w.selected[i] {
            let var = HostVar(i as u32);
            hosts.push((var, rels[i].attributes[0].domain_size));
            e = e.select(SelectPred::unbound(
                rels[i].attr_id("a").expect("attr"),
                CompareOp::Lt,
                var,
            ));
        }
        e
    };
    let mut q = leaf(0, &mut hosts);
    for i in 1..w.cards.len() {
        q = q.join(
            leaf(i, &mut hosts),
            vec![JoinPred::new(
                rels[i - 1].attr_id("j").expect("attr"),
                rels[i].attr_id("j").expect("attr"),
            )],
        );
    }
    (catalog, q, hosts)
}

fn sorted(mut rows: Vec<Tuple>) -> Vec<Tuple> {
    rows.sort_unstable();
    rows
}

/// Drains the plain dynamic plan — the baseline every re-optimizing run
/// is compared against. The memory grant mirrors the reopt driver's
/// (the environment's expected grant, absent an explicit binding).
#[allow(clippy::too_many_arguments)]
fn plain_rows(
    plan: &std::sync::Arc<dqep::plan::PlanNode>,
    db: &StoredDatabase,
    catalog: &Catalog,
    env: &Environment,
    bindings: &Bindings,
    limits: ResourceLimits,
    mode: ExecMode,
    dop: usize,
) -> Result<Vec<Tuple>, ExecError> {
    let memory = (env.memory.expected() * catalog.config.page_size as f64) as usize;
    let ctx = ExecContext::with_limits(SharedCounters::new(), limits)
        .with_mode(mode)
        .with_dop(dop);
    let mut op = compile_dynamic_plan(plan, db, catalog, env, bindings, memory, &ctx)?;
    match mode {
        ExecMode::Tuple => drain(op.as_mut()),
        ExecMode::Batch => drain_batch(op.as_mut()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Random optimized plans over skewed data, re-optimized under one of
    /// three hazards — none, injected page faults, or a tight memory
    /// grant — at DOP 1/2/4 in both modes: identical result multisets
    /// when both paths succeed, and re-optimization never failing where
    /// plain execution succeeds. (The converse is allowed: surviving a
    /// hazard via the degradation ladder is the feature under test.)
    #[test]
    fn reopt_matches_plain_execution(
        w in workload_strategy(),
        sel in 0.0f64..=1.0,
        seed in 0u64..1000,
        hazard in prop_oneof![Just(0u8), Just(1), Just(2)],
        fault_lo in 0u32..40,
        fault_span in 0u32..4,
        mem_kb in 1u64..64,
        mode in prop_oneof![Just(ExecMode::Tuple), Just(ExecMode::Batch)],
        dop in prop_oneof![Just(1usize), Just(2), Just(4)],
    ) {
        let (catalog, query, hosts) = build(&w);
        let db = StoredDatabase::generate_with(
            &catalog,
            seed,
            ValueDistribution::Zipf { exponent: 1.1 },
        );
        let env = Environment::dynamic_compile_time(&catalog.config);
        let plan = Optimizer::new(&catalog, &env).optimize(&query).unwrap().plan;
        let mut bindings = Bindings::new();
        for &(var, domain) in &hosts {
            bindings = bindings.with_value(var, (sel * domain) as i64);
        }
        let limits = ResourceLimits {
            memory_bytes: (hazard == 2).then_some(mem_kb * 1024),
            ..ResourceLimits::unlimited()
        };
        let fault = if hazard == 1 {
            FaultPlan::page_range(fault_lo, fault_lo + fault_span)
        } else {
            FaultPlan::none()
        };

        db.disk.set_fault_plan(fault.clone());
        let baseline = plain_rows(&plan, &db, &catalog, &env, &bindings, limits, mode, dop);
        db.disk.set_fault_plan(fault);
        let reopt = execute_plan_reopt(
            &plan, &db, &catalog, &env, &bindings, limits, mode, dop, quick(),
        );
        db.disk.set_fault_plan(FaultPlan::none());

        match (baseline, reopt) {
            (Ok(b), Ok(r)) => prop_assert_eq!(
                sorted(b),
                sorted(r.rows),
                "result multisets diverged ({:?} dop={} hazard={})", mode, dop, hazard
            ),
            (Err(_), Err(_)) => {} // hazard fatal to both — consistent
            (Err(_), Ok(_)) => {}  // graceful degradation survived the hazard
            (Ok(_), Err(e)) => prop_assert!(
                false,
                "re-optimization failed where plain execution succeeded \
                 ({:?} dop={} hazard={}): {:?}", mode, dop, hazard, e
            ),
        }
    }

    /// The machinery is deterministic: two runs over identical inputs
    /// reproduce the same result multiset *and* the same counter totals
    /// (checkpoints, escapes, re-plans), and release every governor
    /// reservation.
    #[test]
    fn reopt_is_deterministic_for_a_fixed_seed(
        w in workload_strategy(),
        sel in 0.0f64..=1.0,
        seed in 0u64..1000,
    ) {
        let (catalog, query, hosts) = build(&w);
        let db = StoredDatabase::generate_with(
            &catalog,
            seed,
            ValueDistribution::Zipf { exponent: 1.1 },
        );
        let env = Environment::dynamic_compile_time(&catalog.config);
        let plan = Optimizer::new(&catalog, &env).optimize(&query).unwrap().plan;
        let mut bindings = Bindings::new();
        for &(var, domain) in &hosts {
            bindings = bindings.with_value(var, (sel * domain) as i64);
        }

        let mut runs = Vec::new();
        for _ in 0..2 {
            let ctx = ExecContext::with_limits(SharedCounters::new(), ResourceLimits::unlimited())
                .with_mode(ExecMode::Tuple);
            let outcome = execute_plan_reopt_ctx(
                &plan, &db, &catalog, &env, &bindings, quick(), &ctx,
            )
            .unwrap();
            prop_assert_eq!(
                ctx.governor.memory_used(), 0,
                "leaked governor reservation after a re-optimizing run"
            );
            runs.push((sorted(outcome.rows), outcome.report.counters));
        }
        prop_assert_eq!(&runs[0].0, &runs[1].0, "result multisets diverged across reruns");
        prop_assert_eq!(runs[0].1, runs[1].1, "reopt counters diverged across reruns");
    }
}
