//! ORDER BY end to end: interesting orders through the whole stack.
//!
//! Sort order is the physical property System R's "interesting orders"
//! generalized and the Volcano optimizer generator carries per
//! optimization goal. These tests drive it from the SQL front end through
//! `optimize_with_props` to executed, sorted output — covering
//! order-delivering access paths (B-tree scans), Sort enforcers, and the
//! choose-plan alternatives that arise among them under interval costs.

use dqep::algebra::SortOrder;
use dqep::catalog::{CatalogBuilder, SystemConfig};
use dqep::cost::Environment;
use dqep::executor::execute_plan;
use dqep::optimizer::Optimizer;
use dqep::sql::parse_query;
use dqep::storage::StoredDatabase;

fn fixture() -> dqep::catalog::Catalog {
    CatalogBuilder::new(SystemConfig::paper_1994())
        .relation("r", 500, 512, |r| {
            r.attr("a", 500.0).attr("j", 100.0).btree("a", false).btree("j", false)
        })
        .relation("s", 300, 512, |r| r.attr("j", 100.0).btree("j", false))
        .build()
        .unwrap()
}

#[test]
fn ordered_plans_deliver_the_order() {
    let cat = fixture();
    let q = parse_query("SELECT * FROM r WHERE r.a < :x ORDER BY r.a", &cat).unwrap();
    let attr = q.order_by.unwrap();
    let env = Environment::dynamic_compile_time(&cat.config);
    let result = Optimizer::new(&cat, &env)
        .optimize_with_props(&q.expr, q.required_props())
        .unwrap();
    assert_eq!(
        result.plan.order,
        SortOrder::Asc(attr),
        "the plan must guarantee the requested order"
    );
    result.plan.check_invariants().unwrap();
}

#[test]
fn ordered_execution_is_sorted_for_all_bindings() {
    let cat = fixture();
    let q = parse_query("SELECT * FROM r WHERE r.a < :x ORDER BY r.a", &cat).unwrap();
    let env = Environment::dynamic_compile_time(&cat.config);
    let plan = Optimizer::new(&cat, &env)
        .optimize_with_props(&q.expr, q.required_props())
        .unwrap()
        .plan;
    let db = StoredDatabase::generate(&cat, 31);
    for x in [10i64, 120, 480] {
        let bindings = q.bindings(&[("x", x)]).unwrap();
        let startup = dqep::plan::evaluate_startup(&plan, &cat, &env, &bindings);
        assert_eq!(startup.resolved.order, SortOrder::Asc(q.order_by.unwrap()));

        // Execute and verify the stream really is sorted on `a`.
        let ctx = dqep::executor::ExecContext::new(dqep::executor::SharedCounters::new());
        let mut op = dqep::executor::compile_plan(
            &startup.resolved,
            &db,
            &cat,
            &bindings,
            64 * 2048,
            &ctx,
        )
        .unwrap();
        op.open().unwrap();
        let mut values = Vec::new();
        while let Some(t) = op.next().unwrap() {
            values.push(t[0]);
        }
        op.close();
        assert!(values.windows(2).all(|w| w[0] <= w[1]), ":x={x}");
        // Same rows as the unordered plan.
        let unordered = Optimizer::new(&cat, &env).optimize(&q.expr).unwrap().plan;
        let (summary, _) = execute_plan(&unordered, &db, &cat, &env, &bindings).unwrap();
        assert_eq!(values.len() as u64, summary.rows);
    }
}

#[test]
fn ordered_join_works() {
    let cat = fixture();
    let q = parse_query(
        "SELECT * FROM r, s WHERE r.j = s.j AND r.a < :x ORDER BY r.j",
        &cat,
    )
    .unwrap();
    let env = Environment::dynamic_compile_time(&cat.config);
    let plan = Optimizer::new(&cat, &env)
        .optimize_with_props(&q.expr, q.required_props())
        .unwrap()
        .plan;
    assert_eq!(plan.order, SortOrder::Asc(q.order_by.unwrap()));

    let db = StoredDatabase::generate(&cat, 32);
    let bindings = q.bindings(&[("x", 200)]).unwrap();
    let startup = dqep::plan::evaluate_startup(&plan, &cat, &env, &bindings);
    let ctx = dqep::executor::ExecContext::new(dqep::executor::SharedCounters::new());
    let mut op = dqep::executor::compile_plan(
        &startup.resolved,
        &db,
        &cat,
        &bindings,
        64 * 2048,
        &ctx,
    )
    .unwrap();
    op.open().unwrap();
    let key = op
        .layout()
        .position(q.order_by.unwrap())
        .expect("order attribute in output");
    let mut keys = Vec::new();
    while let Some(t) = op.next().unwrap() {
        keys.push(t[key]);
    }
    op.close();
    assert!(!keys.is_empty());
    assert!(keys.windows(2).all(|w| w[0] <= w[1]));
}

#[test]
fn static_mode_ordered_plans_too() {
    let cat = fixture();
    let q = parse_query("SELECT * FROM r ORDER BY r.a", &cat).unwrap();
    let env = Environment::static_compile_time(&cat.config);
    let plan = Optimizer::new(&cat, &env)
        .optimize_with_props(&q.expr, q.required_props())
        .unwrap()
        .plan;
    assert!(!plan.is_dynamic());
    assert_eq!(plan.order, SortOrder::Asc(q.order_by.unwrap()));
}
