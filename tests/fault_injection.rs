//! Fault-injection integration tests: the execution pipeline under
//! storage faults and resource pressure.
//!
//! Three invariants:
//! 1. injected storage faults surface as `Err(ExecError::Storage)` — the
//!    pipeline never panics and never fabricates rows;
//! 2. when a choose-plan's preferred alternative cannot get its memory
//!    grant, execution degrades to the next alternative and still produces
//!    exactly the rows that alternative produces when run directly;
//! 3. under *random* fault plans, draining any optimized plan either
//!    succeeds with the correct result or fails cleanly — never panics.

use std::sync::Arc;

use dqep::algebra::{CompareOp, HostVar, LogicalExpr, PhysicalOp, SelectPred};
use dqep::catalog::{Catalog, CatalogBuilder, SystemConfig};
use dqep::cost::{Bindings, Cost, Environment, PlanStats};
use dqep::executor::{
    compile_dynamic_plan, drain, execute_plan, ExecContext, ExecError, ResourceLimits,
    SharedCounters,
};
use dqep::interval::Interval;
use dqep::optimizer::Optimizer;
use dqep::plan::{PlanNode, PlanNodeBuilder};
use dqep::storage::{FaultPlan, StoredDatabase};
use proptest::prelude::*;

fn fixture() -> (Catalog, StoredDatabase, LogicalExpr) {
    let cat = CatalogBuilder::new(SystemConfig::paper_1994())
        .relation("r", 400, 512, |r| r.attr("a", 400.0).btree("a", false))
        .build()
        .unwrap();
    let db = StoredDatabase::generate(&cat, 99);
    let rel = cat.relation_by_name("r").unwrap();
    let q = LogicalExpr::get(rel.id).select(SelectPred::unbound(
        rel.attr_id("a").unwrap(),
        CompareOp::Lt,
        HostVar(0),
    ));
    (cat, db, q)
}

/// Ground truth computed with faults disabled, through the unaccounted
/// (fault-exempt) load path.
fn expected_rows(cat: &Catalog, db: &StoredDatabase, v: i64) -> u64 {
    let table = db.table(cat.relation_by_name("r").unwrap().id);
    table
        .heap
        .scan()
        .map(Result::unwrap)
        .filter(|rec| table.decode(rec)[0] < v)
        .count() as u64
}

/// Every accounted read failing: execution reports a storage error — it
/// does not panic, and the error is classified retryable.
#[test]
fn total_read_failure_is_an_error_not_a_panic() {
    let (cat, db, q) = fixture();
    let env = Environment::dynamic_compile_time(&cat.config);
    let plan = Optimizer::new(&cat, &env).optimize(&q).unwrap().plan;
    let bindings = Bindings::new().with_value(HostVar(0), 200);

    db.disk.set_fault_plan(FaultPlan::probabilistic(1.0, 1));
    let result = execute_plan(&plan, &db, &cat, &env, &bindings);
    db.disk.set_fault_plan(FaultPlan::none());

    let err = result.expect_err("all reads fail: execution cannot succeed");
    assert!(matches!(err, ExecError::Storage(_)), "got {err:?}");
    assert!(err.is_retryable());

    // The same query succeeds once the faults are gone.
    let (summary, _) = execute_plan(&plan, &db, &cat, &env, &bindings).unwrap();
    assert_eq!(summary.rows, expected_rows(&cat, &db, 200));
}

/// A write fault during a forced sort spill surfaces as an error too —
/// the write path is as governed as the read path.
#[test]
fn spill_write_failure_is_an_error_not_a_panic() {
    let (cat, db, _) = fixture();
    let rel = cat.relation_by_name("r").unwrap();
    let ra = rel.attr_id("a").unwrap();
    let mut b = PlanNodeBuilder::new();
    let scan = node(&mut b, PhysicalOp::FileScan { relation: rel.id }, vec![]);
    let sort = node(&mut b, PhysicalOp::Sort { attr: ra }, vec![scan]);

    let ctx = ExecContext::new(SharedCounters::new());
    // One page of memory forces external runs; the first spill write dies.
    let mut op =
        dqep::executor::compile_plan(&sort, &db, &cat, &Bindings::new(), 2048, &ctx).unwrap();
    db.disk.set_fault_plan(FaultPlan::parse("nth-write=1").unwrap());
    let result = drain(op.as_mut());
    db.disk.set_fault_plan(FaultPlan::none());
    assert!(
        matches!(result, Err(ExecError::Storage(_))),
        "got {result:?}"
    );
    // The failed query released its memory reservations on close.
    assert_eq!(ctx.governor.memory_used(), 0);
}

fn node(
    b: &mut PlanNodeBuilder,
    op: PhysicalOp,
    children: Vec<Arc<PlanNode>>,
) -> Arc<PlanNode> {
    b.node(
        op,
        children,
        PlanStats::new(Interval::point(0.0), 512.0),
        Cost::ZERO,
    )
}

/// A choose-plan whose memory-hungry alternative is refused its grant by
/// the governor falls back to the grant-free alternative — and produces
/// exactly the rows that alternative produces when run directly.
#[test]
fn memory_exhausted_alternative_falls_back_to_the_same_rows() {
    let (cat, db, _) = fixture();
    let rel = cat.relation_by_name("r").unwrap();
    let ra = rel.attr_id("a").unwrap();
    let (idx, _) = cat.index_on_attr(ra).unwrap();

    // Alternative 0: Sort(FileScan) — buffers rows, needs the grant.
    // Alternative 1: BtreeScan — streams in key order, no grant needed.
    let mut b = PlanNodeBuilder::new();
    let scan = node(&mut b, PhysicalOp::FileScan { relation: rel.id }, vec![]);
    let sorted = node(&mut b, PhysicalOp::Sort { attr: ra }, vec![scan]);
    let btree = node(
        &mut b,
        PhysicalOp::BtreeScan { relation: rel.id, index: idx, key_attr: ra },
        vec![],
    );
    let choose = node(&mut b, PhysicalOp::ChoosePlan, vec![sorted, btree.clone()]);

    let env = Environment::dynamic_compile_time(&cat.config);
    let bindings = Bindings::new();

    // Direct run of the fallback alternative, ungoverned.
    let ctx = ExecContext::new(SharedCounters::new());
    let mut direct = dqep::executor::compile_plan(&btree, &db, &cat, &bindings, 2048, &ctx).unwrap();
    let direct_rows = drain(direct.as_mut()).unwrap();

    // Governed run: the sort alternative cannot reserve even one page.
    let limits = ResourceLimits {
        memory_bytes: Some(512),
        ..ResourceLimits::unlimited()
    };
    let ctx = ExecContext::with_limits(SharedCounters::new(), limits);
    let mut op =
        compile_dynamic_plan(&choose, &db, &cat, &env, &bindings, 64 * 2048, &ctx).unwrap();
    let rows = drain(op.as_mut()).unwrap();

    assert_eq!(rows, direct_rows, "fallback must deliver the fallback plan's rows");
    assert_eq!(rows.len(), 400);
    assert!(
        ctx.counters.fallbacks() >= 1,
        "memory-refused alternative must be recorded as a fallback"
    );
    assert_eq!(ctx.governor.memory_used(), 0, "failed attempt leaked its reservation");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Under arbitrary fault plans, execution never panics: it either
    /// completes with the correct answer or returns a clean error.
    #[test]
    fn drain_never_panics_under_random_fault_plans(
        v in 0i64..400,
        prob in 0.0f64..0.3,
        seed in 0u64..1000,
        nth in 1u64..40,
    ) {
        let (cat, db, q) = fixture();
        let env = Environment::dynamic_compile_time(&cat.config);
        let plan = Optimizer::new(&cat, &env).optimize(&q).unwrap().plan;
        let bindings = Bindings::new().with_value(HostVar(0), v);
        let truth = expected_rows(&cat, &db, v);

        let mut fault = FaultPlan::probabilistic(prob, seed);
        fault.fail_nth_reads.push(nth);
        db.disk.set_fault_plan(fault);
        let result = execute_plan(&plan, &db, &cat, &env, &bindings);
        db.disk.set_fault_plan(FaultPlan::none());

        match result {
            Ok((summary, _)) => prop_assert_eq!(summary.rows, truth),
            Err(e) => prop_assert!(
                matches!(e, ExecError::Storage(_)),
                "only storage faults are injected, got {:?}", e
            ),
        }
    }
}
