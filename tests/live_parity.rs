//! Live-view parity: an incrementally maintained view must equal a full
//! re-run of its query after **every** commit — across random chain
//! queries, random interleaved insert/delete streams, DOP 1/2/4, injected
//! storage write faults (which cut a commit to its applied prefix), and
//! tight memory grants (which refuse delta-state growth). A commit may
//! legitimately fail under a hazard, but it must never leave the view
//! silently diverged from the stored data it claims to mirror.
//!
//! A deterministic companion test drives enough drift to force a
//! choose-plan re-arbitration that *switches* the winning alternative and
//! checks parity holds straight through the rebuild.

use std::sync::Arc;

use dqep::catalog::{Catalog, CatalogBuilder, SystemConfig};
use dqep::cost::Environment;
use dqep::executor::{compile_plan, drain, ExecContext, ExecMode, ResourceLimits, SharedCounters};
use dqep::optimizer::Optimizer;
use dqep::plan::evaluate_startup;
use dqep::service::{
    LiveConfig, LiveViewRegistry, MetricsRegistry, ServiceError, WriteOp,
};
use dqep::sql::parse_query;
use dqep::storage::{FaultPlan, StoredDatabase};
use proptest::prelude::*;

/// A randomized 1–2 relation chain workload: per-relation cardinalities,
/// a filter bound as a fraction of the domain, and a stream of commits.
#[derive(Debug, Clone)]
struct RandomWorkload {
    cards: Vec<u64>,
    sel: f64,
    /// Commits; each op is `(relation index, insert?, a, j)`.
    commits: Vec<Vec<(usize, bool, i64, i64)>>,
}

fn workload_strategy() -> impl Strategy<Value = RandomWorkload> {
    (1usize..=2).prop_flat_map(|n| {
        (
            proptest::collection::vec(40u64..250, n),
            0.1f64..=1.0,
            proptest::collection::vec(
                proptest::collection::vec(
                    (0..n, any::<bool>(), 0i64..250, 0i64..40),
                    1..6,
                ),
                1..4,
            ),
        )
            .prop_map(|(cards, sel, commits)| RandomWorkload { cards, sel, commits })
    })
}

/// Builds the catalog and the canonical SQL for the chain: every relation
/// carries a filter column `a` (indexed, so the optimizer has an index
/// scan vs. file scan choice to arbitrate) and a join column `j`.
fn build(w: &RandomWorkload) -> (Catalog, String) {
    let mut builder = CatalogBuilder::new(SystemConfig::paper_1994());
    for (i, &card) in w.cards.iter().enumerate() {
        let name = format!("t{i}");
        builder = builder.relation(&name, card, 512, |r| {
            r.attr("a", card as f64).attr("j", 40.0).btree("a", false)
        });
    }
    let catalog = builder.build().expect("valid random catalog");
    let sql = if w.cards.len() == 1 {
        "SELECT * FROM t0 WHERE t0.a < :v0".to_string()
    } else {
        "SELECT * FROM t0, t1 WHERE t0.j = t1.j AND t0.a < :v0".to_string()
    };
    (catalog, sql)
}

/// Ground truth: arbitrate and execute `sql` fresh over the registry's
/// *current* stored data, sorted for multiset comparison.
fn full_rerun(reg: &LiveViewRegistry, sql: &str, binds: &[(&str, i64)]) -> Vec<Vec<i64>> {
    let cat = reg.catalog();
    let env = Environment::dynamic_compile_time(&cat.config);
    let query = parse_query(sql, cat).expect("canonical sql parses");
    let plan = Optimizer::new(cat, &env)
        .optimize_with_props(&query.expr, query.required_props())
        .expect("plan optimizes")
        .plan;
    let bindings = query.bindings(binds).expect("bindings resolve");
    let startup = evaluate_startup(&plan, cat, &env, &bindings);
    let ctx = ExecContext::new(SharedCounters::new());
    let mut op = compile_plan(&startup.resolved, reg.database(), cat, &bindings, 1 << 22, &ctx)
        .expect("ground truth compiles");
    let mut rows = drain(op.as_mut()).expect("ground truth executes");
    rows.sort_unstable();
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random chain views under random write streams, at DOP 1/2/4 in
    /// both execution modes, under one of three hazards — none, an
    /// injected storage write fault, or a tight memory grant. After every
    /// commit that returns (even one cut short by a fault), the snapshot
    /// must equal a full re-run over the stored data. A commit refused
    /// outright by the governor (memory hazard) is allowed to fail — but
    /// only with a retryable error, and it ends the sequence rather than
    /// excusing divergence.
    #[test]
    fn live_view_matches_full_rerun_after_every_commit(
        w in workload_strategy(),
        seed in 0u64..1000,
        hazard in prop_oneof![Just(0u8), Just(1), Just(2)],
        fault_nth in 1u64..6,
        mem_kb in 24u64..96,
        mode in prop_oneof![Just(ExecMode::Tuple), Just(ExecMode::Batch)],
        dop in prop_oneof![Just(1usize), Just(2), Just(4)],
    ) {
        let (catalog, sql) = build(&w);
        let db = StoredDatabase::generate(&catalog, seed);
        let env = Environment::dynamic_compile_time(&catalog.config);
        let bound = (w.sel * w.cards[0] as f64) as i64;
        let binds = [("v0", bound)];
        let config = LiveConfig {
            limits: ResourceLimits {
                memory_bytes: (hazard == 2).then_some(mem_kb * 1024),
                ..ResourceLimits::unlimited()
            },
            mode,
            dop,
            ..LiveConfig::default()
        };
        let mut reg = LiveViewRegistry::new(
            catalog, db, env, config, Arc::new(MetricsRegistry::new()),
        );
        match reg.register("v", &sql, &binds) {
            Ok(()) => {}
            Err(ServiceError::Exec(e)) if hazard == 2 && e.is_retryable() => {
                // The grant was too small to even seed the view: a clean
                // refusal, nothing registered, nothing to diverge.
                prop_assert!(reg.views().is_empty());
                return;
            }
            Err(e) => prop_assert!(false, "registration failed without a hazard: {e}"),
        }
        prop_assert_eq!(
            reg.snapshot("v").expect("registered"),
            full_rerun(&reg, &sql, &binds),
            "materialization diverged"
        );

        if hazard == 1 {
            reg.database_mut().disk.set_fault_plan(FaultPlan {
                fail_nth_writes: vec![fault_nth],
                ..FaultPlan::none()
            });
        }

        let rels: Vec<_> = reg.catalog().relations().iter().map(|r| r.id).collect();
        for commit in &w.commits {
            let ops: Vec<WriteOp> = commit
                .iter()
                .map(|&(ri, ins, a, j)| {
                    let relation = rels[ri.min(rels.len() - 1)];
                    let values = vec![a, j];
                    if ins {
                        WriteOp::Insert { relation, values }
                    } else {
                        WriteOp::Delete { relation, values }
                    }
                })
                .collect();
            match reg.commit(&ops) {
                Ok(outcome) => {
                    prop_assert!(outcome.applied <= outcome.attempted);
                    prop_assert_eq!(
                        outcome.storage_error.is_some(),
                        outcome.applied < outcome.attempted,
                        "a short commit must carry its storage error"
                    );
                }
                Err(ServiceError::Exec(e)) if hazard == 2 && e.is_retryable() => {
                    // The governor refused delta-state growth mid-commit.
                    // The write prefix is durable and the view may lag it;
                    // the registry reports the failure instead of serving
                    // a silently wrong snapshot, so the sequence ends.
                    return;
                }
                Err(e) => prop_assert!(false, "commit failed without a hazard: {e}"),
            }
            prop_assert_eq!(
                reg.snapshot("v").expect("registered"),
                full_rerun(&reg, &sql, &binds),
                "snapshot diverged from full re-run after a commit"
            );
        }
    }
}

/// Enough one-sided growth (600 skewed inserts against a 1000-row base)
/// pushes the observed view cardinality out of the bind-time interval
/// even after tolerance widening: the drift check must re-fire start-up
/// arbitration, the refreshed statistics must *switch* the winning
/// choose-plan alternative, and the rebuilt view must still equal a full
/// re-run. A subsequent small commit must not re-fire.
#[test]
fn drift_rearbitration_switches_winner_and_keeps_parity() {
    let catalog = CatalogBuilder::new(SystemConfig::paper_1994())
        .relation("r", 1000, 512, |r| r.attr("a", 1000.0).attr("j", 64.0).btree("a", false))
        .build()
        .expect("catalog");
    let db = StoredDatabase::generate(&catalog, 13);
    let env = Environment::dynamic_compile_time(&catalog.config);
    let sql = "SELECT * FROM r WHERE r.a < :v";
    let binds = [("v", 10)];
    let metrics = Arc::new(MetricsRegistry::new());
    let mut reg = LiveViewRegistry::new(
        catalog,
        db,
        env,
        LiveConfig::default(),
        Arc::clone(&metrics),
    );
    reg.register("hot", sql, &binds).expect("registers");
    let before = reg.views()[0].decisions.clone();

    // Every insert lands under the filter bound: the view grows far past
    // its bind-time estimate while the relation grows modestly.
    let r = reg.catalog().relation_by_name("r").expect("relation").id;
    let mut rearbitrations = 0;
    let mut switches = 0;
    for chunk in 0..20 {
        let ops: Vec<WriteOp> = (0..30)
            .map(|i| WriteOp::Insert { relation: r, values: vec![(chunk * 30 + i) % 9, i % 64] })
            .collect();
        let outcome = reg.commit(&ops).expect("commit succeeds");
        rearbitrations += outcome.rearbitrations;
        switches += outcome.plan_switches;
        assert_eq!(
            reg.snapshot("hot").expect("registered"),
            full_rerun(&reg, sql, &binds),
            "parity must hold through drift rebuilds (chunk {chunk})"
        );
    }
    assert!(rearbitrations > 0, "600 in-filter inserts must escape the drift band");
    assert!(switches > 0, "refreshed statistics must switch the winning alternative");
    let after = reg.views()[0].decisions.clone();
    assert_ne!(before, after, "the recorded choose-plan decisions must change");
    assert_eq!(metrics.live_rearbitrations(), rearbitrations);

    // Stable tail: a small commit against the re-priced interval.
    let outcome = reg
        .commit(&[WriteOp::Insert { relation: r, values: vec![500, 1] }])
        .expect("commit succeeds");
    assert_eq!(outcome.rearbitrations, 0, "a stable workload must stay incremental");
}

/// A memory grant too small to seed the retained join state: every
/// registration attempt is refused by the governor, the error is
/// retryable (the degradation ladder's signal), no view is registered,
/// and the registry stays fully usable — a later commit still succeeds
/// against the write path. (A filter-only view retains nothing; the join
/// is what has state to refuse.)
#[test]
fn memory_refusal_leaves_registry_consistent() {
    let catalog = CatalogBuilder::new(SystemConfig::paper_1994())
        .relation("r", 2000, 512, |r| r.attr("a", 2000.0).attr("j", 64.0).btree("a", false))
        .relation("s", 1000, 512, |r| r.attr("j", 64.0).attr("k", 16.0).btree("j", false))
        .build()
        .expect("catalog");
    let db = StoredDatabase::generate(&catalog, 5);
    let env = Environment::dynamic_compile_time(&catalog.config);
    let mut reg = LiveViewRegistry::new(
        catalog,
        db,
        env,
        LiveConfig {
            limits: ResourceLimits { memory_bytes: Some(2048), ..ResourceLimits::unlimited() },
            ..LiveConfig::default()
        },
        Arc::new(MetricsRegistry::new()),
    );
    let err = reg
        .register("big", "SELECT * FROM r, s WHERE r.j = s.j", &[])
        .expect_err("a 2 KiB grant cannot hold 3000 rows of retained join state");
    match err {
        ServiceError::Exec(e) => assert!(e.is_retryable(), "memory refusal is retryable: {e:?}"),
        other => panic!("expected an executor memory refusal, got {other}"),
    }
    assert!(reg.views().is_empty(), "a refused registration must not leave a view behind");

    let r = reg.catalog().relation_by_name("r").expect("relation").id;
    let outcome = reg
        .commit(&[WriteOp::Insert { relation: r, values: vec![1, 2] }])
        .expect("the write path outlives the refusal");
    assert_eq!(outcome.applied, 1);
}
