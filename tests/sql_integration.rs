//! SQL front end → optimizer → executor, end to end on stored data.

use dqep::cost::Environment;
use dqep::executor::execute_plan;
use dqep::optimizer::Optimizer;
use dqep::sql::parse_query;
use dqep::storage::StoredDatabase;

fn fixture() -> (dqep::catalog::Catalog, StoredDatabase) {
    let cat = dqep::catalog::CatalogBuilder::new(dqep::catalog::SystemConfig::paper_1994())
        .relation("orders", 600, 512, |r| {
            r.attr("amount", 600.0)
                .attr("customer", 150.0)
                .btree("amount", false)
                .btree("customer", false)
        })
        .relation("customers", 300, 512, |r| {
            r.attr("id", 150.0).attr("region", 8.0).btree("id", false)
        })
        .build()
        .unwrap();
    let db = StoredDatabase::generate(&cat, 404);
    (cat, db)
}

/// Reference row count computed by brute force over heap scans.
fn ground_truth(
    cat: &dqep::catalog::Catalog,
    db: &StoredDatabase,
    amount_lt: Option<i64>,
    region_eq: Option<i64>,
    join: bool,
) -> u64 {
    let o = db.table(cat.relation_by_name("orders").unwrap().id);
    let c = db.table(cat.relation_by_name("customers").unwrap().id);
    let orders: Vec<Vec<i64>> = o.heap.scan().map(|r| o.decode(&r.unwrap())).collect();
    let customers: Vec<Vec<i64>> = c.heap.scan().map(|r| c.decode(&r.unwrap())).collect();
    let mut n = 0;
    for ord in &orders {
        if let Some(v) = amount_lt {
            if ord[0] >= v {
                continue;
            }
        }
        if !join {
            n += 1;
            continue;
        }
        for cust in &customers {
            if cust[0] != ord[1] {
                continue;
            }
            if let Some(r) = region_eq {
                if cust[1] != r {
                    continue;
                }
            }
            n += 1;
        }
    }
    n
}

#[test]
fn sql_round_trips_match_ground_truth() {
    let (cat, db) = fixture();
    let env = Environment::dynamic_compile_time(&cat.config);

    struct Case {
        sql: &'static str,
        binds: Vec<(&'static str, i64)>,
        amount_lt: Option<i64>,
        region_eq: Option<i64>,
        join: bool,
    }
    let cases = [
        Case {
            sql: "SELECT * FROM orders WHERE orders.amount < :x",
            binds: vec![("x", 75)],
            amount_lt: Some(75),
            region_eq: None,
            join: false,
        },
        Case {
            sql: "SELECT * FROM orders WHERE orders.amount < 400",
            binds: vec![],
            amount_lt: Some(400),
            region_eq: None,
            join: false,
        },
        Case {
            sql: "SELECT * FROM orders, customers \
                  WHERE orders.customer = customers.id AND orders.amount < :x",
            binds: vec![("x", 200)],
            amount_lt: Some(200),
            region_eq: None,
            join: true,
        },
        Case {
            sql: "SELECT * FROM orders, customers \
                  WHERE orders.customer = customers.id \
                  AND orders.amount < :x AND customers.region = :r",
            binds: vec![("x", 550), ("r", 3)],
            amount_lt: Some(550),
            region_eq: Some(3),
            join: true,
        },
        Case {
            sql: "SELECT * FROM customers, orders \
                  WHERE customers.id = orders.customer ORDER BY customers.region",
            binds: vec![],
            amount_lt: None,
            region_eq: None,
            join: true,
        },
    ];

    for case in &cases {
        let q = parse_query(case.sql, &cat).unwrap_or_else(|e| panic!("{}: {e}", case.sql));
        let plan = Optimizer::new(&cat, &env)
            .optimize_with_props(&q.expr, q.required_props())
            .unwrap()
            .plan;
        let bindings = q.bindings(&case.binds).unwrap();
        let (summary, _) = execute_plan(&plan, &db, &cat, &env, &bindings).unwrap();
        let expected = ground_truth(&cat, &db, case.amount_lt, case.region_eq, case.join);
        assert_eq!(summary.rows, expected, "query: {}", case.sql);
    }
}

#[test]
fn sql_static_and_dynamic_agree_on_results() {
    let (cat, db) = fixture();
    let q = parse_query(
        "SELECT * FROM orders, customers \
         WHERE orders.customer = customers.id AND orders.amount < :x",
        &cat,
    )
    .unwrap();
    let static_env = Environment::static_compile_time(&cat.config);
    let dynamic_env = Environment::dynamic_compile_time(&cat.config);
    let sp = Optimizer::new(&cat, &static_env).optimize(&q.expr).unwrap().plan;
    let dp = Optimizer::new(&cat, &dynamic_env).optimize(&q.expr).unwrap().plan;
    for x in [5i64, 120, 480] {
        let b = q.bindings(&[("x", x)]).unwrap();
        let (s, _) = execute_plan(&sp, &db, &cat, &static_env, &b).unwrap();
        let (d, _) = execute_plan(&dp, &db, &cat, &dynamic_env, &b).unwrap();
        assert_eq!(s.rows, d.rows, ":x = {x}");
        // And the dynamic plan is never slower in simulated time.
        assert!(
            d.simulated_seconds(&cat.config) <= s.simulated_seconds(&cat.config) + 1e-9,
            ":x = {x}"
        );
    }
}
