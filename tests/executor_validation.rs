//! End-to-end validation: executed (simulated) behaviour agrees with the
//! optimizer's decisions and predictions.

use dqep::cost::{Bindings, Environment};
use dqep::executor::{compile_plan, execute_plan, ExecContext, ExecSummary, SharedCounters};
use dqep::harness::{paper_query, BindingSampler};
use dqep::optimizer::Optimizer;
use dqep::plan::evaluate_startup;
use dqep::storage::StoredDatabase;

fn drain_rows(
    plan: &std::sync::Arc<dqep::plan::PlanNode>,
    db: &StoredDatabase,
    catalog: &dqep::catalog::Catalog,
    bindings: &Bindings,
) -> (u64, f64) {
    let ctx = ExecContext::new(SharedCounters::new());
    let before = db.disk.stats();
    let mut op = compile_plan(plan, db, catalog, bindings, 64 * 2048, &ctx).unwrap();
    op.open().unwrap();
    let mut rows = 0;
    while op.next().unwrap().is_some() {
        rows += 1;
    }
    op.close();
    let io = db.disk.stats().since(&before);
    let summary = ExecSummary {
        rows,
        cpu: ctx.counters.snapshot(),
        io,
        ..ExecSummary::default()
    };
    (rows, summary.simulated_seconds(&catalog.config))
}

/// All alternatives under the root choose-plan compute the same result set
/// size, and the start-up choice is (near-)optimal in executed simulated
/// time.
#[test]
fn startup_choice_is_execution_optimal_for_selection_query() {
    let w = paper_query(1, 42);
    let env = Environment::dynamic_compile_time(&w.catalog.config);
    let plan = Optimizer::new(&w.catalog, &env).optimize(&w.query).unwrap().plan;
    assert!(plan.is_choose_plan());
    let db = StoredDatabase::generate(&w.catalog, 7);

    let mut sampler = BindingSampler::new(3, false);
    for b in sampler.sample_n(&w, 12) {
        let startup = evaluate_startup(&plan, &w.catalog, &env, &b);
        let mut rows_seen = Vec::new();
        let mut times = Vec::new();
        for alt in &plan.children {
            let (rows, secs) = drain_rows(alt, &db, &w.catalog, &b);
            rows_seen.push(rows);
            times.push(secs);
        }
        assert!(
            rows_seen.windows(2).all(|w| w[0] == w[1]),
            "alternatives disagree on results: {rows_seen:?}"
        );
        let chosen = startup.decisions[0].chosen_index;
        let best = times.iter().cloned().fold(f64::INFINITY, f64::min);
        // The cost model is a model; allow a modest factor of slack.
        assert!(
            times[chosen] <= best * 1.5 + 1e-6,
            "chose {chosen} at {:.4}s, best was {best:.4}s ({times:?})",
            times[chosen]
        );
    }
}

/// The dynamic plan's executed time is never much worse than the static
/// plan's on the same binding, and usually much better — the executed
/// counterpart of Figure 4.
#[test]
fn executed_dynamic_beats_executed_static_on_average() {
    let w = paper_query(2, 43);
    let static_env = Environment::static_compile_time(&w.catalog.config);
    let dynamic_env = Environment::dynamic_compile_time(&w.catalog.config);
    let static_plan = Optimizer::new(&w.catalog, &static_env)
        .optimize(&w.query)
        .unwrap()
        .plan;
    let dynamic_plan = Optimizer::new(&w.catalog, &dynamic_env)
        .optimize(&w.query)
        .unwrap()
        .plan;
    let db = StoredDatabase::generate(&w.catalog, 8);

    let mut sampler = BindingSampler::new(4, false);
    let (mut static_total, mut dynamic_total) = (0.0, 0.0);
    for b in sampler.sample_n(&w, 15) {
        let (st, _) = execute_plan(&static_plan, &db, &w.catalog, &static_env, &b).unwrap();
        let (dy, _) = execute_plan(&dynamic_plan, &db, &w.catalog, &dynamic_env, &b).unwrap();
        assert_eq!(st.rows, dy.rows, "plans must agree on results");
        static_total += st.simulated_seconds(&w.catalog.config);
        dynamic_total += dy.simulated_seconds(&w.catalog.config);
    }
    assert!(
        dynamic_total < static_total,
        "dynamic executed {dynamic_total:.2}s vs static {static_total:.2}s"
    );
}

/// Predicted and executed costs agree in *ranking* across bindings: when
/// the model says one binding is much more expensive than another, the
/// simulator agrees.
#[test]
fn predicted_and_executed_costs_correlate() {
    let w = paper_query(1, 44);
    let env = Environment::static_compile_time(&w.catalog.config);
    let plan = Optimizer::new(&w.catalog, &env).optimize(&w.query).unwrap().plan;
    let db = StoredDatabase::generate(&w.catalog, 9);

    let attr = w.host_vars[0].1;
    let domain = w.catalog.attribute(attr).domain_size;
    let mut points = Vec::new();
    for sel in [0.02f64, 0.2, 0.5, 0.9] {
        let b = Bindings::new().with_value(w.host_vars[0].0, (sel * domain) as i64);
        let predicted = evaluate_startup(&plan, &w.catalog, &env, &b).predicted_run_seconds;
        let (summary, _) = execute_plan(&plan, &db, &w.catalog, &env, &b).unwrap();
        points.push((predicted, summary.simulated_seconds(&w.catalog.config)));
    }
    for pair in points.windows(2) {
        assert!(
            pair[0].0 < pair[1].0 && pair[0].1 < pair[1].1,
            "both model and simulator must be monotone in selectivity: {points:?}"
        );
    }
    // Absolute agreement within a factor of two (same constants, modelled
    // formulas vs actual access patterns).
    for (predicted, executed) in &points {
        let ratio = executed / predicted;
        assert!(
            (0.5..=2.0).contains(&ratio),
            "predicted {predicted:.4}s vs executed {executed:.4}s"
        );
    }
}

/// Executing a 4-way join produces the same row count through whichever
/// path the choose-plans select, across memory grants.
#[test]
fn join_results_invariant_across_memory_grants() {
    let w = paper_query(3, 45);
    let env = Environment::dynamic_uncertain_memory(&w.catalog.config);
    let plan = Optimizer::new(&w.catalog, &env).optimize(&w.query).unwrap().plan;
    let db = StoredDatabase::generate(&w.catalog, 10);

    let mut base = Bindings::new();
    for &(var, attr) in &w.host_vars {
        let domain = w.catalog.attribute(attr).domain_size;
        base = base.with_value(var, (0.4 * domain) as i64);
    }
    let mut rows_by_memory = Vec::new();
    for mem in [16.0f64, 64.0, 112.0] {
        let b = base.clone().with_memory(mem);
        let (summary, _) = execute_plan(&plan, &db, &w.catalog, &env, &b).unwrap();
        rows_by_memory.push(summary.rows);
    }
    assert!(
        rows_by_memory.windows(2).all(|w| w[0] == w[1]),
        "row counts varied with memory: {rows_by_memory:?}"
    );
}
