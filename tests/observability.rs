//! Observability-layer integration tests: span merging is merge-order
//! independent (like `SharedCounters::merge_from`), tracing is
//! observationally invisible (byte-identical results and counters with
//! tracing on or off, at any DOP, under storage faults), EXPLAIN ANALYZE
//! reports interval-vs-actual drift plus the choose-plan audit trail, and
//! the drift flag follows cardinality feedback.

use std::sync::Arc;

use dqep::algebra::{CompareOp, HostVar, JoinPred, LogicalExpr, SelectPred};
use dqep::catalog::{Catalog, CatalogBuilder, SystemConfig};
use dqep::cost::{Bindings, Environment};
use dqep::executor::{
    card_drift, compile_dynamic_plan, drain, execute_plan_dop, execute_plan_traced, explain_json,
    render_explain, validate_explain_json, CpuCounters, ExecContext, ExecError, ExecMode,
    ResourceLimits, SharedCounters, SpanStats, Tracer,
};
use dqep::optimizer::Optimizer;
use dqep::plan::evaluate_startup_observed;
use dqep::service::PreparedStatement;
use dqep::sql::parse_query;
use dqep::storage::{FaultPlan, IoStats, StoredDatabase};
use proptest::prelude::*;

/// Field-by-field equality for [`SpanStats`] (wall-clock fields included:
/// merging is pure arithmetic, so even those must agree exactly).
fn stats_eq(a: &SpanStats, b: &SpanStats) -> bool {
    a.rows == b.rows
        && a.batches == b.batches
        && a.opens == b.opens
        && a.errors == b.errors
        && a.open_wall_ns == b.open_wall_ns
        && a.next_wall_ns == b.next_wall_ns
        && a.cpu == b.cpu
        && a.io == b.io
        && a.mem_peak == b.mem_peak
}

fn span_stats_strategy() -> impl Strategy<Value = SpanStats> {
    (
        (0u64..1000, 0u64..100, 0u64..5, 0u64..3),
        (0u64..1_000_000, 0u64..1_000_000),
        (0u64..1000, 0u64..1000, 0u64..1000),
        (0u64..500, 0u64..500, 0u64..500),
        0u64..1_000_000,
    )
        .prop_map(
            |((rows, batches, opens, errors), (ow, nw), (rec, cmp, hsh), (sr, rr, wr), mem)| {
                SpanStats {
                    rows,
                    batches,
                    opens,
                    errors,
                    open_wall_ns: ow,
                    next_wall_ns: nw,
                    cpu: CpuCounters { records: rec, compares: cmp, hashes: hsh },
                    io: IoStats { seq_reads: sr, random_reads: rr, writes: wr },
                    mem_peak: mem,
                }
            },
        )
}

/// Deterministic Fisher–Yates permutation of `0..n` from a seed.
fn permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    let mut state = seed.wrapping_mul(2).wrapping_add(1);
    for i in (1..n).rev() {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        idx.swap(i, (state >> 33) as usize % (i + 1));
    }
    idx
}

/// Coarse error class, as in `tests/batch_parity.rs`: variant (and
/// resource kind) only.
fn classify(e: &ExecError) -> String {
    match e {
        ExecError::Storage(_) => "storage".into(),
        ExecError::ResourceExhausted(r) => {
            let kind = match r {
                dqep::executor::Resource::Memory { .. } => "memory",
                dqep::executor::Resource::Rows { .. } => "rows",
                dqep::executor::Resource::Io { .. } => "io",
                dqep::executor::Resource::WallClock { .. } => "wall-clock",
            };
            format!("resource:{kind}")
        }
        other => format!("{other:?}"),
    }
}

/// A randomized 1–2 relation chain workload (smaller than
/// `batch_parity.rs`: every case executes up to four times).
#[derive(Debug, Clone)]
struct RandomWorkload {
    cards: Vec<u64>,
    domain_factors: Vec<f64>,
}

fn workload_strategy() -> impl Strategy<Value = RandomWorkload> {
    (1usize..=2).prop_flat_map(|n| {
        (
            proptest::collection::vec(40u64..250, n),
            proptest::collection::vec(0.2f64..1.25, n),
        )
            .prop_map(|(cards, domain_factors)| RandomWorkload { cards, domain_factors })
    })
}

fn build(w: &RandomWorkload) -> (Catalog, LogicalExpr, Vec<(HostVar, f64)>) {
    let mut builder = CatalogBuilder::new(SystemConfig::paper_1994());
    for (i, (&card, &f)) in w.cards.iter().zip(&w.domain_factors).enumerate() {
        let name = format!("t{i}");
        let jdomain = (card as f64 * f).max(1.0).round();
        builder = builder.relation(&name, card, 512, |r| {
            r.attr("a", card as f64)
                .attr("j", jdomain)
                .btree("a", false)
                .btree("j", false)
        });
    }
    let catalog = builder.build().expect("valid random catalog");
    let rels: Vec<_> = catalog.relations().to_vec();
    let var = HostVar(0);
    let hosts = vec![(var, rels[0].attributes[0].domain_size)];
    let mut q = LogicalExpr::get(rels[0].id).select(SelectPred::unbound(
        rels[0].attr_id("a").expect("attr"),
        CompareOp::Lt,
        var,
    ));
    for i in 1..w.cards.len() {
        q = q.join(
            LogicalExpr::get(rels[i].id),
            vec![JoinPred::new(
                rels[i - 1].attr_id("j").expect("attr"),
                rels[i].attr_id("j").expect("attr"),
            )],
        );
    }
    (catalog, q, hosts)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Satellite: merged span totals equal the per-worker sums regardless
    /// of merge order — sequentially in any permutation, and under
    /// concurrent flushes into one shared span id (the exchange-worker
    /// path), including workers that recorded errors (the `pending_err`
    /// deferred-failure path leaves `errors > 0` in a worker's stats).
    #[test]
    fn span_merging_is_order_independent(
        stats in proptest::collection::vec(span_stats_strategy(), 1..8),
        seed in any::<u64>(),
    ) {
        let mut forward = SpanStats::default();
        for s in &stats {
            forward.merge_from(s);
        }
        let mut shuffled = SpanStats::default();
        for &i in &permutation(stats.len(), seed) {
            shuffled.merge_from(&stats[i]);
        }
        prop_assert!(stats_eq(&forward, &shuffled), "{forward:?} != {shuffled:?}");

        // The merged totals are the exact sums (max for the high-water).
        prop_assert_eq!(forward.rows, stats.iter().map(|s| s.rows).sum::<u64>());
        prop_assert_eq!(forward.errors, stats.iter().map(|s| s.errors).sum::<u64>());
        prop_assert_eq!(
            forward.mem_peak,
            stats.iter().map(|s| s.mem_peak).max().unwrap_or(0)
        );

        // Concurrent flushes into one tracer span, as exchange workers do.
        let tracer = Tracer::new();
        let span = tracer.span("workers".into(), "Morsel-Scan", None, None, None, stats.len());
        std::thread::scope(|scope| {
            for s in &stats {
                let tracer = &tracer;
                scope.spawn(move || tracer.merge_span(span, s));
            }
        });
        let merged = tracer.report().spans[0].stats;
        prop_assert!(stats_eq(&merged, &forward), "{merged:?} != {forward:?}");
    }

    /// Satellite: `SharedCounters::merge_from` is merge-order independent
    /// too, sequentially and when workers merge concurrently.
    #[test]
    fn counter_merging_is_order_independent(
        parts in proptest::collection::vec(
            (0u64..1000, 0u64..1000, 0u64..1000, 0u64..5),
            1..8,
        ),
        seed in any::<u64>(),
    ) {
        let worker = |&(r, c, h, f): &(u64, u64, u64, u64)| {
            let w = SharedCounters::new();
            w.add_records(r);
            w.add_compares(c);
            w.add_hashes(h);
            w.add_fallbacks(f);
            w
        };
        let forward = SharedCounters::new();
        for p in &parts {
            forward.merge_from(&worker(p));
        }
        let shuffled = SharedCounters::new();
        for &i in &permutation(parts.len(), seed) {
            shuffled.merge_from(&worker(&parts[i]));
        }
        let concurrent = SharedCounters::new();
        std::thread::scope(|scope| {
            for p in &parts {
                let concurrent = &concurrent;
                scope.spawn(move || concurrent.merge_from(&worker(p)));
            }
        });
        for other in [&shuffled, &concurrent] {
            prop_assert_eq!(forward.snapshot(), other.snapshot());
            prop_assert_eq!(forward.fallbacks(), other.fallbacks());
        }
        prop_assert_eq!(
            forward.snapshot().records,
            parts.iter().map(|p| p.0).sum::<u64>()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Acceptance: tracing is observationally invisible. The same dynamic
    /// plan drained with and without a tracer produces byte-identical
    /// result tuples, identical CPU counters, fallbacks, and accounted
    /// I/O — and the traced run additionally yields a well-formed span
    /// tree whose root row count equals the result size.
    #[test]
    fn tracing_changes_nothing_observable(
        w in workload_strategy(),
        sel in 0.0f64..=1.0,
        seed in 0u64..1000,
        mem_kb in 4u64..64,
    ) {
        let (catalog, query, hosts) = build(&w);
        let env = Environment::dynamic_compile_time(&catalog.config);
        let plan = Optimizer::new(&catalog, &env).optimize(&query).unwrap().plan;
        let mut bindings = Bindings::new();
        for &(var, domain) in &hosts {
            bindings = bindings.with_value(var, (sel * domain) as i64);
        }
        let memory = (mem_kb * 1024) as usize;

        // Each variant runs on its own bit-identical replica (same catalog
        // and seed): spill allocations from a previous run on a shared
        // disk would shift the sequential/random classification of later
        // accesses, which is run-order state, not a tracing effect.
        let run = |tracer: Option<Arc<Tracer>>| {
            let db = StoredDatabase::generate(&catalog, seed);
            let mut ctx = ExecContext::new(SharedCounters::new());
            if let Some(t) = &tracer {
                ctx = ctx.with_tracer(Arc::clone(t));
            }
            let io_before = db.disk.stats();
            let mut op =
                compile_dynamic_plan(&plan, &db, &catalog, &env, &bindings, memory, &ctx)
                    .unwrap();
            let rows = drain(op.as_mut()).unwrap();
            drop(op);
            let io = db.disk.stats().since(&io_before);
            (rows, ctx.counters.snapshot(), ctx.counters.fallbacks(), io)
        };

        let (plain_rows, plain_cpu, plain_fb, plain_io) = run(None);
        let tracer = Arc::new(Tracer::new());
        let (traced_rows, traced_cpu, traced_fb, traced_io) = run(Some(Arc::clone(&tracer)));

        prop_assert_eq!(&plain_rows, &traced_rows, "result tuples diverged");
        prop_assert_eq!(plain_cpu, traced_cpu, "CPU counters diverged");
        prop_assert_eq!(plain_fb, traced_fb, "fallback counts diverged");
        prop_assert_eq!(plain_io, traced_io, "accounted I/O diverged");

        let report = tracer.report();
        prop_assert!(!report.spans.is_empty());
        let roots = report.roots();
        prop_assert_eq!(roots.len(), 1, "exactly one root span");
        prop_assert_eq!(roots[0].stats.rows, plain_rows.len() as u64);
        for span in &report.spans {
            if let Some(parent) = span.parent {
                prop_assert!(parent.0 < span.id.0, "parents precede children");
            }
        }
    }

    /// Acceptance, parallel + fault path: `execute_plan_traced` agrees
    /// with `execute_plan_dop` on rows, counters, I/O, and fallbacks at
    /// every DOP, and on the error class when storage faults kill both
    /// runs (exchange workers' deferred `pending_err` delivery included).
    #[test]
    fn traced_execution_matches_untraced_at_any_dop(
        w in workload_strategy(),
        sel in 0.0f64..=1.0,
        seed in 0u64..1000,
        dop in 1usize..=3,
        faulty in any::<bool>(),
        nth in 1u64..80,
    ) {
        let (catalog, query, hosts) = build(&w);
        let env = Environment::dynamic_compile_time(&catalog.config);
        let plan = Optimizer::new(&catalog, &env).optimize(&query).unwrap().plan;
        let mut bindings = Bindings::new();
        for &(var, domain) in &hosts {
            bindings = bindings.with_value(var, (sel * domain) as i64);
        }
        let fault = if faulty {
            let mut f = FaultPlan::none();
            f.fail_nth_reads.push(nth);
            f
        } else {
            FaultPlan::none()
        };
        let limits = ResourceLimits::unlimited();

        // Bit-identical replicas with identical fault sequences: each run
        // sees a fresh disk, so neither spill-allocation state nor fault
        // ordinals leak between the two runs.
        let db = StoredDatabase::generate(&catalog, seed);
        db.disk.set_fault_plan(fault.clone());
        let plain = execute_plan_dop(
            &plan, &db, &catalog, &env, &bindings, limits, ExecMode::default(), dop,
        );
        let db = StoredDatabase::generate(&catalog, seed);
        db.disk.set_fault_plan(fault);
        let traced = execute_plan_traced(
            &plan, &db, &catalog, &env, &bindings, limits, ExecMode::default(), dop,
        );

        match (plain, traced) {
            (Ok((p, _)), Ok((t, _, report))) => {
                prop_assert_eq!(p.rows, t.rows, "row counts diverged");
                prop_assert_eq!(p.cpu, t.cpu, "CPU counters diverged");
                if dop == 1 {
                    prop_assert_eq!(p.io, t.io, "accounted I/O diverged");
                } else {
                    // Parallel workers interleave on the shared disk, so
                    // the sequential/random split is timing-dependent;
                    // the totals are exact (as in `parallel_parity.rs`).
                    prop_assert_eq!(p.io.total(), t.io.total(), "I/O totals diverged");
                    prop_assert_eq!(p.io.writes, t.io.writes, "writes diverged");
                }
                prop_assert_eq!(p.fallbacks, t.fallbacks, "fallbacks diverged");
                prop_assert!(!report.spans.is_empty());
                prop_assert_eq!(report.roots()[0].stats.rows, t.rows);
            }
            (Err(pe), Err(te)) => prop_assert_eq!(
                classify(&pe), classify(&te),
                "error classes diverged: plain={:?} traced={:?}", pe, te
            ),
            (p, t) => prop_assert!(
                false,
                "tracing changed the outcome: plain={:?} traced={:?}",
                p.map(|(s, _)| s.rows),
                t.map(|(s, _, _)| s.rows)
            ),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Tentpole acceptance: a traced 4-shard × dop-2 query yields ONE
    /// connected distributed trace — every span's parent exists and
    /// precedes it, the network send spans' wire accounting reconciles
    /// exactly against the query's `NetStats` delta (which in turn
    /// decomposes into the per-link deltas), every receive span's remote
    /// reference resolves to the matching send span, and the event
    /// journal's entries for this trace fall inside the trace's lifetime
    /// window with shard-divergence verdicts after the per-shard
    /// arbitrations they summarize.
    #[test]
    fn sharded_trace_is_connected_and_reconciles_wire_bytes(
        sel in 0.1f64..=1.0,
        seed in 0u64..500,
    ) {
        use dqep::catalog::{make_chain_catalog, SyntheticSpec};
        use dqep::executor::{journal, monotonic_ns, EventKind};
        use dqep::service::{ShardConfig, ShardedService};

        let catalog = make_chain_catalog(
            &SyntheticSpec::paper(3, seed),
            SystemConfig::paper_1994(),
        );
        let domain = catalog.relations()[0].attributes[0].domain_size;
        let config = ShardConfig {
            shards: 4,
            dop: 2,
            data_seed: seed,
            trace: true,
            ..ShardConfig::default()
        };
        let service = ShardedService::new(catalog, config);
        let cursor = journal().cursor();
        let out = service
            .execute(
                "SELECT * FROM R1, R2, R3 \
                 WHERE R1.jr = R2.jl AND R2.jr = R3.jl AND R1.a < :x",
                &[("x", (sel * domain) as i64)],
            )
            .expect("traced sharded execution");
        let report = out.trace.as_ref().expect("tracing was requested");
        let tid = report.trace_id;

        // One connected tree: unique ids, a single root, and every parent
        // present and topologically earlier than its child.
        let ids: std::collections::HashSet<usize> =
            report.spans.iter().map(|s| s.id.0).collect();
        prop_assert_eq!(ids.len(), report.spans.len(), "span ids are unique");
        let roots: Vec<_> = report.spans.iter().filter(|s| s.parent.is_none()).collect();
        prop_assert_eq!(roots.len(), 1, "exactly one root");
        for span in &report.spans {
            if let Some(p) = span.parent {
                prop_assert!(ids.contains(&p.0), "parent of span {} exists", span.id.0);
                prop_assert!(p.0 < span.id.0, "parents precede children");
            }
        }
        // All four shard subtrees made it into the merged timeline.
        let shard_roots = report.spans.iter().filter(|s| s.kind == "Shard").count();
        prop_assert_eq!(shard_roots, 4, "one subtree per shard");

        // Byte-exact wire reconciliation: every frame is sent through a
        // span-owning path, so the send spans sum to the NetStats delta.
        let sends: Vec<_> = report
            .spans
            .iter()
            .filter_map(|s| s.net.as_ref().filter(|n| n.sent))
            .collect();
        prop_assert_eq!(sends.iter().map(|n| n.bytes).sum::<u64>(), out.net.bytes);
        prop_assert_eq!(sends.iter().map(|n| n.frames).sum::<u64>(), out.net.frames);
        prop_assert_eq!(
            sends.iter().map(|n| n.retransmits).sum::<u64>(),
            out.net.retransmits
        );
        // The same totals decompose into the per-link deltas.
        prop_assert_eq!(
            out.links.iter().map(|l| l.stats.bytes).sum::<u64>(),
            out.net.bytes
        );
        prop_assert_eq!(
            out.links.iter().map(|l| l.stats.frames).sum::<u64>(),
            out.net.frames
        );

        // Every receive span's remote reference resolves to a send span
        // on the same directed link.
        for span in &report.spans {
            let Some(net) = &span.net else { continue };
            if net.sent {
                continue;
            }
            let Some(remote) = net.remote_span else { continue };
            let peer = report.spans.iter().find(|s| s.id.0 as u64 == remote);
            prop_assert!(peer.is_some(), "remote span {} exists", remote);
            let peer_net = peer
                .and_then(|p| p.net.as_ref())
                .expect("remote reference points at a network span");
            prop_assert!(peer_net.sent, "remote reference points at a send span");
            prop_assert_eq!((peer_net.from, peer_net.to), (net.from, net.to));
        }

        // Journal consistency: this trace's events carry timestamps from
        // the same monotonic epoch as span start times, so they must fall
        // between the coordinator root opening and now — and divergence
        // verdicts (recorded after gather) cannot precede the per-shard
        // arbitration events they summarize.
        let root_start = roots[0].start_ns;
        let now = monotonic_ns();
        let events: Vec<_> = journal()
            .events_since(cursor)
            .into_iter()
            .filter(|e| e.trace == tid)
            .collect();
        let arbitrations =
            events.iter().filter(|e| e.kind == EventKind::ArbitrationWinner).count();
        prop_assert_eq!(arbitrations, 4, "one arbitration event per shard");
        for e in &events {
            prop_assert!(
                e.ts_ns >= root_start && e.ts_ns <= now,
                "event {:?} at {} outside trace window [{root_start}, {now}]",
                e.kind,
                e.ts_ns
            );
        }
        let last_arbitration = events
            .iter()
            .filter(|e| e.kind == EventKind::ArbitrationWinner)
            .map(|e| e.ts_ns)
            .max()
            .unwrap_or(0);
        for e in &events {
            if e.kind == EventKind::ShardDivergence {
                prop_assert!(e.ts_ns >= last_arbitration);
            }
        }
    }
}

/// Fixture for the deterministic tests below: a two-relation join with an
/// unbound selection, which the dynamic optimizer compiles with
/// choose-plan nodes.
fn choose_plan_fixture() -> (Catalog, StoredDatabase, dqep::sql::Query, Arc<dqep::plan::PlanNode>) {
    let catalog = CatalogBuilder::new(SystemConfig::paper_1994())
        .relation("r", 200, 512, |r| {
            r.attr("a", 200.0).attr("j", 60.0).btree("a", false).btree("j", false)
        })
        .relation("s", 150, 512, |r| {
            r.attr("a", 150.0).attr("j", 60.0).btree("a", false).btree("j", false)
        })
        .build()
        .unwrap();
    let db = StoredDatabase::generate(&catalog, 77);
    let query = parse_query("SELECT * FROM r, s WHERE r.j = s.j AND r.a < :x", &catalog).unwrap();
    let env = Environment::dynamic_compile_time(&catalog.config);
    let plan = Optimizer::new(&catalog, &env)
        .optimize_with_props(&query.expr, query.required_props())
        .unwrap()
        .plan;
    assert!(plan.is_dynamic(), "fixture must exercise choose-plan");
    (catalog, db, query, plan)
}

/// EXPLAIN ANALYZE on a choose-plan query reports, for every node, the
/// interval estimate next to actuals with a drift flag, plus the
/// choose-plan audit trail; the JSON rendering passes the schema checker.
#[test]
fn explain_analyze_reports_estimates_actuals_and_audit() {
    let (catalog, db, query, plan) = choose_plan_fixture();
    let env = Environment::dynamic_compile_time(&catalog.config);
    let bindings = query.bindings(&[("x", 60)]).unwrap().with_memory(48.0);
    let (summary, _, report) = execute_plan_traced(
        &plan,
        &db,
        &catalog,
        &env,
        &bindings,
        ResourceLimits::unlimited(),
        ExecMode::default(),
        1,
    )
    .unwrap();

    // Every span carries an estimate (all map to plan nodes here), and
    // the root's actuals agree with the summary.
    assert!(!report.spans.is_empty());
    assert!(report.spans.iter().all(|s| s.estimate.is_some()));
    let root = report.roots()[0];
    assert_eq!(root.stats.rows, summary.rows);
    assert_eq!(root.stats.io, summary.io);

    // The audit trail names the bindings, the alternatives with their
    // bind-time predictions, and the winner.
    assert!(!report.audits.is_empty(), "choose-plan must leave an audit");
    let audit = &report.audits[0];
    assert!(audit.bind_values.iter().any(|(n, v)| n == ":v0" && *v == 60));
    assert_eq!(audit.memory_pages, Some(48.0));
    assert!(audit.alternatives.len() >= 2);
    assert!(audit.alternatives.iter().all(|a| a.predicted_seconds >= 0.0));
    assert_eq!(audit.winner, Some(audit.preferred), "no faults: preferred wins");
    assert_eq!(audit.fallbacks, 0);

    // Human rendering: estimates, actuals, flags, audit.
    let text = render_explain(&report, &catalog.config);
    for marker in [
        "EXPLAIN ANALYZE",
        "est: card=[",
        "act: rows=",
        "choose-plan audit:",
        ":v0=60",
        "winner: alt",
    ] {
        assert!(text.contains(marker), "missing `{marker}` in:\n{text}");
    }

    // JSON rendering conforms to the schema the CI checker enforces.
    let json = explain_json(&report, &catalog.config);
    validate_explain_json(&json).expect("schema-valid JSON");
}

/// Satellite: a pinned-wrong cardinality observation puts the actual row
/// count outside the resolved plan's interval (EXPLAIN ANALYZE flags
/// drift); after `record_feedback` re-optimizes with the observed value,
/// the actual falls inside and the flag clears.
#[test]
fn drift_flag_follows_cardinality_feedback() {
    let (catalog, db, query, plan) = choose_plan_fixture();
    let env = Environment::dynamic_compile_time(&catalog.config);
    let bindings = query.bindings(&[("x", 60)]).unwrap().with_memory(48.0);
    let stmt = PreparedStatement::new("q".into(), query, Arc::clone(&plan));

    let run_resolved = |stmt: &PreparedStatement| {
        let startup =
            evaluate_startup_observed(&stmt.plan, &catalog, &env, &bindings, &stmt.observations());
        let tracer = Arc::new(Tracer::new());
        let ctx = ExecContext::new(SharedCounters::new()).with_tracer(Arc::clone(&tracer));
        let mut op = compile_dynamic_plan(
            &startup.resolved,
            &db,
            &catalog,
            &env,
            &bindings,
            64 * 2048,
            &ctx,
        )
        .unwrap();
        let rows = drain(op.as_mut()).unwrap();
        drop(op);
        (rows.len() as u64, tracer.report())
    };

    // Baseline sanity: how many rows the query actually produces.
    let (actual_rows, _) = run_resolved(&stmt);
    assert!(actual_rows > 0, "fixture query must produce rows");

    // Pin a badly wrong observation: the resolved plan's root interval
    // collapses to a point far from the actual — EXPLAIN ANALYZE must
    // flag cardinality drift.
    stmt.observe(plan.id, 1.0);
    let (rows_wrong, report_wrong) = run_resolved(&stmt);
    assert_eq!(rows_wrong, actual_rows, "observations must not change results");
    let root = report_wrong.roots()[0];
    assert_eq!(
        card_drift(root),
        Some(true),
        "actual {actual_rows} rows vs pinned estimate {:?}",
        root.estimate.map(|e| e.card)
    );
    assert!(render_explain(&report_wrong, &catalog.config).contains("DRIFT(card)"));

    // Feed the actual back: the observation leaves the pinned interval,
    // invalidates, and re-optimization pins the observed value — the
    // actual now falls inside its interval.
    assert!(
        stmt.record_feedback(actual_rows, 2.0),
        "feedback outside tolerance must invalidate"
    );
    let (rows_fixed, report_fixed) = run_resolved(&stmt);
    assert_eq!(rows_fixed, actual_rows);
    let root = report_fixed.roots()[0];
    assert_eq!(
        card_drift(root),
        Some(false),
        "actual {actual_rows} rows vs fed-back estimate {:?}",
        root.estimate.map(|e| e.card)
    );
    // Only the root's interval is fed back; inner operators keep their
    // own estimates, so assert the root flag specifically, not the whole
    // rendering.
    let rendered = render_explain(&report_fixed, &catalog.config);
    let root_actual_line = rendered
        .lines()
        .find(|l| l.trim_start().starts_with("act:"))
        .expect("root actual line");
    assert!(
        !root_actual_line.contains("DRIFT(card)"),
        "root must not flag card drift after feedback: {root_actual_line}"
    );
}
