//! Parallel/serial execution parity: the exchange-parallel pipeline must
//! be observationally equivalent to serial execution at every DOP.
//!
//! "Equivalent" here means: the same result tuples as a *multiset*
//! (exchange concatenates worker outputs, so inter-worker order is one
//! thing parallelism may change), the same CPU counter totals (records,
//! compares, hashes — parallel operators hash each row exactly once and
//! charge sort compares by the same formula), the same *total* accounted
//! I/O and the same write count (interleaved morsel workers can break
//! the disk's sequential-run detection, so the seq/random split of reads
//! may shift — pages touched may not), the same number of choose-plan
//! fallbacks under injected page faults and refused memory grants, and
//! no leaked governor reservations. Faults are injected by *page
//! identity* (`FaultPlan::page_range`), which is deterministic under any
//! read interleaving; read-ordinal faults are only meaningful at DOP 1
//! and stay in `batch_parity.rs`.

use std::sync::Arc;

use dqep::algebra::{CompareOp, HostVar, JoinPred, LogicalExpr, PhysicalOp, SelectPred};
use dqep::catalog::{Catalog, CatalogBuilder, SystemConfig};
use dqep::cost::{Bindings, Cost, Environment, PlanStats};
use dqep::executor::{
    compile_dynamic_plan, drain, drain_batch, execute_plan_dop, ExecContext, ExecError, ExecMode,
    ExecSummary, ResourceLimits, SharedCounters, Tuple,
};
use dqep::interval::Interval;
use dqep::optimizer::Optimizer;
use dqep::plan::{PlanNode, PlanNodeBuilder};
use dqep::storage::{FaultPlan, StoredDatabase};
use proptest::prelude::*;

/// Coarse error class: variant (and resource kind) only, as in
/// `batch_parity.rs` — payloads may differ (a parallel worker reports the
/// reservation *it* was refused).
fn classify(e: &ExecError) -> String {
    match e {
        ExecError::Storage(_) => "storage".into(),
        ExecError::ResourceExhausted(r) => {
            let kind = match r {
                dqep::executor::Resource::Memory { .. } => "memory",
                dqep::executor::Resource::Rows { .. } => "rows",
                dqep::executor::Resource::Io { .. } => "io",
                dqep::executor::Resource::WallClock { .. } => "wall-clock",
            };
            format!("resource:{kind}")
        }
        other => format!("{other:?}"),
    }
}

/// Asserts a parallel summary agrees with the serial baseline on
/// everything DOP parity promises.
fn assert_summaries_equal(serial: &ExecSummary, parallel: &ExecSummary, what: &str) {
    assert_eq!(serial.rows, parallel.rows, "{what}: result row counts diverged");
    assert_eq!(serial.fallbacks, parallel.fallbacks, "{what}: fallback counts diverged");
    assert_eq!(serial.cpu, parallel.cpu, "{what}: CPU counter totals diverged");
    assert_eq!(
        serial.io.total(),
        parallel.io.total(),
        "{what}: total accounted I/O diverged (serial={:?} parallel={:?})",
        serial.io,
        parallel.io
    );
    assert_eq!(serial.io.writes, parallel.io.writes, "{what}: accounted writes diverged");
}

/// The same randomized 1–3 relation chain workload as `batch_parity.rs`.
#[derive(Debug, Clone)]
struct RandomWorkload {
    cards: Vec<u64>,
    domain_factors: Vec<f64>,
    selected: Vec<bool>,
}

fn workload_strategy() -> impl Strategy<Value = RandomWorkload> {
    (1usize..=3).prop_flat_map(|n| {
        (
            proptest::collection::vec(40u64..400, n),
            proptest::collection::vec(0.2f64..1.25, n),
            proptest::collection::vec(any::<bool>(), n),
        )
            .prop_map(|(cards, domain_factors, mut selected)| {
                if !selected.iter().any(|s| *s) {
                    selected[0] = true;
                }
                RandomWorkload {
                    cards,
                    domain_factors,
                    selected,
                }
            })
    })
}

fn build(w: &RandomWorkload) -> (Catalog, LogicalExpr, Vec<(HostVar, f64)>) {
    let mut builder = CatalogBuilder::new(SystemConfig::paper_1994());
    for (i, (&card, &f)) in w.cards.iter().zip(&w.domain_factors).enumerate() {
        let name = format!("t{i}");
        let jdomain = (card as f64 * f).max(1.0).round();
        builder = builder.relation(&name, card, 512, |r| {
            r.attr("a", card as f64)
                .attr("j", jdomain)
                .btree("a", false)
                .btree("j", false)
        });
    }
    let catalog = builder.build().expect("valid random catalog");
    let rels: Vec<_> = catalog.relations().to_vec();
    let mut hosts = Vec::new();
    let leaf = |i: usize, hosts: &mut Vec<(HostVar, f64)>| {
        let mut e = LogicalExpr::get(rels[i].id);
        if w.selected[i] {
            let var = HostVar(i as u32);
            hosts.push((var, rels[i].attributes[0].domain_size));
            e = e.select(SelectPred::unbound(
                rels[i].attr_id("a").expect("attr"),
                CompareOp::Lt,
                var,
            ));
        }
        e
    };
    let mut q = leaf(0, &mut hosts);
    for i in 1..w.cards.len() {
        q = q.join(
            leaf(i, &mut hosts),
            vec![JoinPred::new(
                rels[i - 1].attr_id("j").expect("attr"),
                rels[i].attr_id("j").expect("attr"),
            )],
        );
    }
    (catalog, q, hosts)
}

fn node(b: &mut PlanNodeBuilder, op: PhysicalOp, children: Vec<Arc<PlanNode>>) -> Arc<PlanNode> {
    b.node(
        op,
        children,
        PlanStats::new(Interval::point(0.0), 512.0),
        Cost::ZERO,
    )
}

fn sorted(mut rows: Vec<Tuple>) -> Vec<Tuple> {
    rows.sort_unstable();
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Random optimized plans over random data, executed serially and at
    /// DOP 2 and 4 in both modes, under one of three hazards — none,
    /// injected page faults, or a tight memory limit: identical summaries
    /// when both succeed, same error class when both fail, never success
    /// at one DOP and failure at another. After *any* fallback the
    /// abandoned attempt's partial work may legitimately differ — a
    /// parallel exchange runs its workers eagerly in `open`, so an
    /// alternative that fails mid-drain has already scanned everything
    /// the serial attempt would have stopped short of — so counters are
    /// compared bit-for-bit only on fallback-free runs (the final,
    /// surviving alternative is what parity promises).
    #[test]
    fn random_plans_execute_identically_across_dops(
        w in workload_strategy(),
        sel in 0.0f64..=1.0,
        seed in 0u64..1000,
        hazard in prop_oneof![Just(0u8), Just(1), Just(2)],
        fault_lo in 0u32..40,
        fault_span in 0u32..4,
        mem_kb in 1u64..64,
        mode in prop_oneof![Just(ExecMode::Tuple), Just(ExecMode::Batch)],
    ) {
        let (catalog, query, hosts) = build(&w);
        let db = StoredDatabase::generate(&catalog, seed);
        let env = Environment::dynamic_compile_time(&catalog.config);
        let plan = Optimizer::new(&catalog, &env).optimize(&query).unwrap().plan;
        let mut bindings = Bindings::new();
        for &(var, domain) in &hosts {
            bindings = bindings.with_value(var, (sel * domain) as i64);
        }
        let limits = ResourceLimits {
            memory_bytes: (hazard == 2).then_some(mem_kb * 1024),
            ..ResourceLimits::unlimited()
        };
        let fault = if hazard == 1 {
            FaultPlan::page_range(fault_lo, fault_lo + fault_span)
        } else {
            FaultPlan::none()
        };

        // Page-identity faults carry no ordinal state, so one plan serves
        // every run; `set_fault_plan` still resets between runs for
        // uniformity with the batch parity suite.
        db.disk.set_fault_plan(fault.clone());
        let serial = execute_plan_dop(
            &plan, &db, &catalog, &env, &bindings, limits, mode, 1,
        );
        for dop in [2usize, 4] {
            db.disk.set_fault_plan(fault.clone());
            let parallel = execute_plan_dop(
                &plan, &db, &catalog, &env, &bindings, limits, mode, dop,
            );
            let what = format!("{mode:?} dop={dop}");
            match (&serial, &parallel) {
                (Ok((s, _)), Ok((p, _))) => {
                    prop_assert_eq!(s.rows, p.rows, "{}: result row counts diverged", &what);
                    prop_assert_eq!(
                        s.fallbacks, p.fallbacks, "{}: fallback counts diverged", &what
                    );
                    if s.fallbacks == 0 {
                        assert_summaries_equal(s, p, &what);
                    }
                }
                (Err(se), Err(pe)) => prop_assert_eq!(
                    classify(se), classify(pe),
                    "{}: error classes diverged: serial={:?} parallel={:?}", &what, se, pe
                ),
                (s, p) => prop_assert!(
                    false,
                    "{}: one DOP succeeded while the other failed: serial={:?} parallel={:?}",
                    &what,
                    s.as_ref().map(|(s, _)| s.rows),
                    p.as_ref().map(|(s, _)| s.rows)
                ),
            }
        }
        db.disk.set_fault_plan(FaultPlan::none());
    }

    /// Draining the same compiled plan at DOP 1, 2, and 4 returns the
    /// same tuples as a *multiset*, in both modes, with no reservation
    /// left behind in any governor.
    #[test]
    fn drained_tuples_are_identical_as_multisets(
        w in workload_strategy(),
        sel in 0.0f64..=1.0,
        seed in 0u64..1000,
    ) {
        let (catalog, query, hosts) = build(&w);
        let db = StoredDatabase::generate(&catalog, seed);
        let env = Environment::dynamic_compile_time(&catalog.config);
        let plan = Optimizer::new(&catalog, &env).optimize(&query).unwrap().plan;
        let mut bindings = Bindings::new();
        for &(var, domain) in &hosts {
            bindings = bindings.with_value(var, (sel * domain) as i64);
        }
        let memory = 64 * 2048;

        for mode in [ExecMode::Tuple, ExecMode::Batch] {
            let mut baseline: Option<Vec<Tuple>> = None;
            for dop in [1usize, 2, 4] {
                let ctx = ExecContext::new(SharedCounters::new())
                    .with_mode(mode)
                    .with_dop(dop);
                let mut op =
                    compile_dynamic_plan(&plan, &db, &catalog, &env, &bindings, memory, &ctx)
                        .unwrap();
                let rows = match mode {
                    ExecMode::Tuple => drain(op.as_mut()).unwrap(),
                    ExecMode::Batch => drain_batch(op.as_mut()).unwrap(),
                };
                prop_assert_eq!(
                    ctx.governor.memory_used(), 0,
                    "{:?} dop={}: leaked reservation", mode, dop
                );
                let rows = sorted(rows);
                match &baseline {
                    None => baseline = Some(rows),
                    Some(expect) => prop_assert_eq!(
                        expect, &rows, "{:?} dop={}: result multisets diverged", mode, dop
                    ),
                }
            }
        }
    }
}

/// A choose-plan whose preferred alternative is refused its memory grant
/// falls back identically at every DOP: same rows, one recorded fallback,
/// no leaked reservations — the parallel sort's workers reserve through
/// the same governor, so the refusal still fires during the alternative's
/// `open`. The *abandoned* attempt's partial counters legitimately differ
/// across DOPs (the parallel scan below the sort runs eagerly before the
/// refusal lands), so counter snapshots are compared across modes at the
/// same DOP, not across DOPs.
#[test]
fn memory_refusal_fallback_is_dop_independent() {
    let catalog = CatalogBuilder::new(SystemConfig::paper_1994())
        .relation("r", 400, 512, |r| r.attr("a", 400.0).btree("a", false))
        .build()
        .unwrap();
    let db = StoredDatabase::generate(&catalog, 7);
    let rel = catalog.relation_by_name("r").unwrap();
    let ra = rel.attr_id("a").unwrap();
    let (idx, _) = catalog.index_on_attr(ra).unwrap();

    // Alternative 0: Sort(FileScan) — needs a grant the governor refuses.
    // Alternative 1: BtreeScan — streams in key order, grant-free.
    let mut b = PlanNodeBuilder::new();
    let scan = node(&mut b, PhysicalOp::FileScan { relation: rel.id }, vec![]);
    let sorted_alt = node(&mut b, PhysicalOp::Sort { attr: ra }, vec![scan]);
    let btree = node(
        &mut b,
        PhysicalOp::BtreeScan { relation: rel.id, index: idx, key_attr: ra },
        vec![],
    );
    let choose = node(&mut b, PhysicalOp::ChoosePlan, vec![sorted_alt, btree]);

    let env = Environment::dynamic_compile_time(&catalog.config);
    let bindings = Bindings::new();
    let limits = ResourceLimits {
        memory_bytes: Some(512),
        ..ResourceLimits::unlimited()
    };

    let mut rows_by_run = Vec::new();
    for dop in [1usize, 2, 4] {
        let mut per_mode = Vec::new();
        for mode in [ExecMode::Tuple, ExecMode::Batch] {
            let ctx = ExecContext::with_limits(SharedCounters::new(), limits)
                .with_mode(mode)
                .with_dop(dop);
            let mut op =
                compile_dynamic_plan(&choose, &db, &catalog, &env, &bindings, 64 * 2048, &ctx)
                    .unwrap();
            let rows = match mode {
                ExecMode::Tuple => drain(op.as_mut()).unwrap(),
                ExecMode::Batch => drain_batch(op.as_mut()).unwrap(),
            };
            assert_eq!(
                ctx.counters.fallbacks(),
                1,
                "{mode:?} dop={dop}: expected one fallback"
            );
            assert_eq!(
                ctx.governor.memory_used(),
                0,
                "{mode:?} dop={dop}: leaked reservation"
            );
            let rows = sorted(rows);
            rows_by_run.push(rows.clone());
            per_mode.push((rows, ctx.counters.snapshot()));
        }
        assert_eq!(per_mode[0], per_mode[1], "dop={dop}: modes diverged after fallback");
    }
    assert_eq!(rows_by_run[0].len(), 400);
    for r in &rows_by_run[1..] {
        assert_eq!(r, &rows_by_run[0], "result rows diverged across DOPs after fallback");
    }
}

/// Page-identity faults produce the same outcome at every DOP: a fault on
/// a page the plan reads fails all of them with the same error class
/// (parallel scans defer worker errors to the first `next`, preserving
/// the serial failure phase); a fault on a page outside the relation hits
/// none of them.
#[test]
fn page_faults_trip_identically_across_dops() {
    let catalog = CatalogBuilder::new(SystemConfig::paper_1994())
        .relation("r", 600, 512, |r| r.attr("a", 600.0))
        .build()
        .unwrap();
    let db = StoredDatabase::generate(&catalog, 21);
    let rel = catalog.relation_by_name("r").unwrap();
    let q = LogicalExpr::get(rel.id).select(SelectPred::bound(
        rel.attr_id("a").unwrap(),
        CompareOp::Lt,
        300,
    ));
    let env = Environment::dynamic_compile_time(&catalog.config);
    let plan = Optimizer::new(&catalog, &env).optimize(&q).unwrap().plan;
    let bindings = Bindings::new();

    let heap_pages = db.table(rel.id).heap.pages().to_vec();
    assert!(heap_pages.len() >= 4, "need a multi-page heap to fault mid-relation");
    // A mid-heap page, and one far past every allocated page.
    for fault_page in [heap_pages[heap_pages.len() / 2].0, 1_000_000] {
        let mut outcomes = Vec::new();
        for mode in [ExecMode::Tuple, ExecMode::Batch] {
            for dop in [1usize, 2, 4] {
                db.disk
                    .set_fault_plan(FaultPlan::page_range(fault_page, fault_page));
                let result = execute_plan_dop(
                    &plan,
                    &db,
                    &catalog,
                    &env,
                    &bindings,
                    ResourceLimits::unlimited(),
                    mode,
                    dop,
                );
                db.disk.set_fault_plan(FaultPlan::none());
                outcomes.push(match result {
                    Ok((s, _)) => format!("ok:{}", s.rows),
                    Err(e) => format!("err:{}", classify(&e)),
                });
            }
        }
        for o in &outcomes[1..] {
            assert_eq!(o, &outcomes[0], "fault on page {fault_page} diverged across DOPs");
        }
    }
}
