//! Prepared-query service integration tests.
//!
//! The load-bearing invariant: a session executed **through the service**
//! — concurrent workers, cached plans, memoized decisions, admission
//! control — produces exactly the rows the same statement produces when
//! executed alone through the single-query pipeline. Caching and
//! concurrency are allowed to change *how fast* an answer arrives, never
//! *which* answer.

use dqep::catalog::{make_chain_catalog, Catalog, SyntheticSpec, SystemConfig};
use dqep::cost::Environment;
use dqep::executor::{execute_plan_with, ExecError, ResourceLimits};
use dqep::optimizer::Optimizer;
use dqep::service::{QueryService, Request, ServiceConfig, ServiceError};
use dqep::sql::parse_query;
use dqep::storage::{FaultPlan, StoredDatabase};
use proptest::prelude::*;

fn chain_sql(relations: usize) -> String {
    let from: Vec<String> = (1..=relations).map(|i| format!("R{i}")).collect();
    let mut preds: Vec<String> = (1..relations)
        .map(|i| format!("R{i}.jr = R{}.jl", i + 1))
        .collect();
    preds.extend((1..=relations).map(|i| format!("R{i}.a < :v{i}")));
    format!("SELECT * FROM {} WHERE {}", from.join(", "), preds.join(" AND "))
}

fn chain_catalog(relations: usize, seed: u64) -> Catalog {
    make_chain_catalog(&SyntheticSpec::paper(relations, seed), SystemConfig::paper_1994())
}

/// Ground truth: the same statement executed alone through the
/// single-query pipeline, against a fresh replica of the same data.
fn sequential_rows(catalog: &Catalog, db: &StoredDatabase, sql: &str, binds: &[(&str, i64)]) -> u64 {
    let query = parse_query(sql, catalog).unwrap();
    let env = Environment::dynamic_compile_time(&catalog.config);
    let plan = Optimizer::new(catalog, &env)
        .optimize_with_props(&query.expr, query.required_props())
        .unwrap()
        .plan;
    let bindings = query.bindings(binds).unwrap();
    let (summary, _) =
        execute_plan_with(&plan, db, catalog, &env, &bindings, ResourceLimits::unlimited())
            .unwrap();
    summary.rows
}

const SEED: u64 = 23;

fn service(workers: usize, relations: usize) -> QueryService {
    QueryService::new(
        chain_catalog(relations, SEED),
        ServiceConfig {
            workers,
            data_seed: SEED,
            ..ServiceConfig::default()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Concurrent sessions over one prepared statement: every session's
    /// row count equals the sequential single-query answer for its
    /// bindings, whatever worker ran it and whatever was cached.
    #[test]
    fn concurrent_sessions_match_sequential_execution(
        values in proptest::collection::vec((0i64..1100, 0i64..1100), 4..10),
    ) {
        let relations = 2;
        let catalog = chain_catalog(relations, SEED);
        let db = StoredDatabase::generate(&catalog, SEED);
        let sql = chain_sql(relations);
        let svc = service(4, relations);

        let requests: Vec<Request> = values
            .iter()
            .map(|&(x, y)| Request::new(&sql, &[("v1", x), ("v2", y)]))
            .collect();
        let results = svc.run_batch(requests);

        for (&(x, y), result) in values.iter().zip(&results) {
            let session = result.as_ref().expect("fault-free session");
            let truth = sequential_rows(&catalog, &db, &sql, &[("v1", x), ("v2", y)]);
            prop_assert_eq!(
                session.summary.rows, truth,
                "bindings ({}, {}) diverged from sequential execution", x, y
            );
            prop_assert_eq!(session.summary.fallbacks, 0);
        }
        let stats = svc.stats();
        prop_assert_eq!(stats.completed, values.len() as u64);
        prop_assert_eq!(stats.failed, 0);
    }

    /// With storage faults injected into some sessions, every session
    /// still either matches the sequential answer (clean, or recovered
    /// via fallback) or fails with the injected storage class — and the
    /// fault never contaminates other sessions in the same batch.
    #[test]
    fn faulted_sessions_fail_clean_or_match_truth(
        v in 0i64..1100,
        nth in 1u64..30,
        faulted_mask in 0u8..15,
    ) {
        let relations = 2;
        let catalog = chain_catalog(relations, SEED);
        let db = StoredDatabase::generate(&catalog, SEED);
        let sql = chain_sql(relations);
        let svc = service(2, relations);
        let binds: Vec<(&str, i64)> = vec![("v1", v), ("v2", 600)];
        let truth = sequential_rows(&catalog, &db, &sql, &binds);

        let requests: Vec<Request> = (0..4u8)
            .map(|i| {
                let mut r = Request::new(&sql, &binds);
                if faulted_mask & (1 << i) != 0 {
                    r.fault_plan = Some(FaultPlan::nth_read(nth));
                }
                r
            })
            .collect();
        let faulted: Vec<bool> = (0..4u8).map(|i| faulted_mask & (1 << i) != 0).collect();

        for (result, injected) in svc.run_batch(requests).into_iter().zip(faulted) {
            match result {
                Ok(session) => prop_assert_eq!(session.summary.rows, truth),
                Err(ServiceError::Exec(e)) => {
                    prop_assert!(injected, "clean session failed: {}", e);
                    prop_assert!(
                        matches!(e, ExecError::Storage(_)),
                        "only storage faults were injected, got {:?}", e
                    );
                }
                Err(e) => prop_assert!(false, "unexpected service error: {}", e),
            }
        }
    }
}

/// A cached resolved plan that hits a storage fault is retried through
/// the full dynamic plan: the session recovers, reports the degradation
/// as a fallback, and the memoized decision is dropped.
#[test]
fn cached_plan_fault_retries_through_full_arbitration() {
    let relations = 2;
    let catalog = chain_catalog(relations, SEED);
    let db = StoredDatabase::generate(&catalog, SEED);
    let sql = chain_sql(relations);
    let svc = service(1, relations);
    let binds: Vec<(&str, i64)> = vec![("v1", 500), ("v2", 500)];
    let truth = sequential_rows(&catalog, &db, &sql, &binds);

    // First execution caches the statement and the region's decision.
    let clean = svc.execute(Request::new(&sql, &binds)).unwrap();
    assert_eq!(clean.summary.rows, truth);

    // Second execution replays the cached plan into a faulted first read;
    // the fault consumes its ordinal during the failed attempt, so the
    // full-arbitration retry runs clean.
    let mut faulted = Request::new(&sql, &binds);
    faulted.fault_plan = Some(FaultPlan::nth_read(1));
    let recovered = svc.execute(faulted).unwrap();
    assert_eq!(recovered.summary.rows, truth, "retry must produce the correct rows");
    assert!(recovered.summary.fallbacks >= 1, "degradation must be visible as a fallback");
    assert_eq!(recovered.summary.plan_cache.decision_hit, Some(true), "the *cached* path failed");

    let stats = svc.stats();
    assert_eq!(stats.cached_plan_retries, 1);
    assert_eq!(stats.failed, 0);
}

/// Skewed data against uniform estimates: the first execution's observed
/// cardinality leaves the estimate interval, invalidating the statement's
/// decision cache; the re-arbitration pins the observation so a stable
/// workload does not thrash.
#[test]
fn feedback_invalidates_and_then_stabilizes() {
    let svc = QueryService::new(
        chain_catalog(1, SEED),
        ServiceConfig {
            workers: 1,
            data_seed: SEED,
            skew: Some(1.3),
            feedback_tolerance: 2.0,
            ..ServiceConfig::default()
        },
    );
    // Constant predicate: the optimizer estimates ~1% selectivity from
    // the uniform-domain model; Zipf-distributed values concentrate far
    // more mass there.
    let request = Request::new("SELECT * FROM R1 WHERE R1.a < 12", &[]);

    let first = svc.execute(request.clone()).unwrap();
    let after_first = svc.stats();
    assert_eq!(
        after_first.feedback_invalidations, 1,
        "observed {} rows must breach the uniform estimate",
        first.summary.rows
    );

    // The invalidation cleared the decision cache: the next execution
    // re-arbitrates (decision miss) against the pinned observation...
    let second = svc.execute(request.clone()).unwrap();
    assert_eq!(second.summary.plan_cache.statement_hit, Some(true));
    assert_eq!(second.summary.plan_cache.decision_hit, Some(false));
    assert_eq!(second.summary.rows, first.summary.rows);
    // ...and the same observation is now inside the pinned interval: no
    // second invalidation, and the refreshed decision is replayed.
    let third = svc.execute(request).unwrap();
    assert_eq!(third.summary.plan_cache.decision_hit, Some(true));
    assert_eq!(svc.stats().feedback_invalidations, 1, "stable workload must not thrash");
}

/// The registry is LRU-bounded: statements past capacity are evicted and
/// re-prepared on their next use.
#[test]
fn registry_eviction_reprepares_cold_statements() {
    let svc = QueryService::new(
        chain_catalog(1, SEED),
        ServiceConfig {
            workers: 1,
            registry_capacity: 2,
            data_seed: SEED,
            ..ServiceConfig::default()
        },
    );
    let a = "SELECT * FROM R1 WHERE R1.a < :x";
    let b = "SELECT * FROM R1 WHERE R1.a > :x";
    let c = "SELECT * FROM R1 WHERE R1.a = :x";
    svc.execute(Request::new(a, &[("x", 100)])).unwrap();
    svc.execute(Request::new(b, &[("x", 100)])).unwrap();
    svc.execute(Request::new(c, &[("x", 100)])).unwrap(); // evicts `a`
    let again = svc.execute(Request::new(a, &[("x", 100)])).unwrap();
    assert_eq!(again.summary.plan_cache.statement_hit, Some(false), "evicted: re-prepared");
    assert!(svc.stats().registry.evictions >= 1);
}

/// Admission control: a session whose grant can never fit fails fast;
/// one that merely has to wait behind a full pool times out at the queue
/// deadline without disturbing the session holding the pool.
#[test]
fn admission_rejects_oversized_and_times_out_queued_grants() {
    let page = SystemConfig::paper_1994().page_size as u64;
    let svc = QueryService::new(
        chain_catalog(2, SEED),
        ServiceConfig {
            workers: 2,
            global_memory_bytes: 64 * page,
            queue_timeout_ms: 150,
            io_latency_micros: 2_000,
            data_seed: SEED,
            ..ServiceConfig::default()
        },
    );
    let sql = chain_sql(2);

    let mut oversized = Request::new(&sql, &[("v1", 500), ("v2", 500)]);
    oversized.memory_pages = Some(65.0);
    assert!(matches!(
        svc.execute(oversized).unwrap_err(),
        ServiceError::GrantTooLarge { .. }
    ));

    // Two sessions each demanding the whole pool: the slower one queues
    // behind the first (I/O pacing keeps it running) and times out.
    let mut full = Request::new(&sql, &[("v1", 900), ("v2", 900)]);
    full.memory_pages = Some(64.0);
    let results = svc.run_batch(vec![full.clone(), full]);
    let ok = results.iter().filter(|r| r.is_ok()).count();
    let timed_out = results
        .iter()
        .filter(|r| matches!(r, Err(ServiceError::AdmissionTimeout { .. })))
        .count();
    assert_eq!((ok, timed_out), (1, 1), "results: {results:?}");
}

/// Cooperative cancellation through the session handle.
#[test]
fn cancelled_session_reports_cancellation() {
    let svc = QueryService::new(
        chain_catalog(2, SEED),
        ServiceConfig {
            workers: 1,
            io_latency_micros: 3_000,
            data_seed: SEED,
            ..ServiceConfig::default()
        },
    );
    let handle = svc.submit(Request::new(&chain_sql(2), &[("v1", 1000), ("v2", 1000)]));
    handle.cancel();
    match handle.wait() {
        Err(ServiceError::Exec(ExecError::Cancelled)) => {}
        other => panic!("expected cancellation, got {other:?}"),
    }
}

/// Per-session counters never bleed across concurrent sessions: each
/// session's CPU and I/O accounting equals its own sequential run.
#[test]
fn concurrent_accounting_matches_sequential_per_session() {
    let relations = 2;
    let catalog = chain_catalog(relations, SEED);
    let db = StoredDatabase::generate(&catalog, SEED);
    let env = Environment::dynamic_compile_time(&catalog.config);
    // Two statements of very different sizes, run concurrently: if
    // counters bled between sessions, the small one would absorb the big
    // one's work.
    let big = chain_sql(relations);
    let small = "SELECT * FROM R1 WHERE R1.a < :v1";
    let sequential = |sql: &str, binds: &[(&str, i64)]| {
        let query = parse_query(sql, &catalog).unwrap();
        let plan = Optimizer::new(&catalog, &env)
            .optimize_with_props(&query.expr, query.required_props())
            .unwrap()
            .plan;
        let bindings = query.bindings(binds).unwrap();
        execute_plan_with(&plan, &db, &catalog, &env, &bindings, ResourceLimits::unlimited())
            .unwrap()
            .0
    };
    let truth_big = sequential(&big, &[("v1", 900), ("v2", 900)]);
    let truth_small = sequential(small, &[("v1", 40)]);

    let svc = service(2, relations);
    let results = svc.run_batch(vec![
        Request::new(&big, &[("v1", 900), ("v2", 900)]),
        Request::new(small, &[("v1", 40)]),
    ]);
    let got_big = results[0].as_ref().unwrap();
    let got_small = results[1].as_ref().unwrap();

    assert_eq!(got_big.summary.rows, truth_big.rows);
    assert_eq!(got_big.summary.cpu, truth_big.cpu);
    assert_eq!(got_big.summary.io, truth_big.io);
    assert_eq!(got_small.summary.rows, truth_small.rows);
    assert_eq!(got_small.summary.cpu, truth_small.cpu);
    assert_eq!(got_small.summary.io, truth_small.io);

    // Service totals are exactly the sum of the per-session summaries.
    let stats = svc.stats();
    assert_eq!(stats.totals.rows, truth_big.rows + truth_small.rows);
    assert_eq!(stats.totals.io.total(), truth_big.io.total() + truth_small.io.total());
}
