//! Selectivity-estimation errors and histogram repair — the extension the
//! paper's final section motivates ("errors in selectivity estimation
//! [IoC91]" as the remaining source of uncertainty).
//!
//! On Zipf-skewed data the uniform-domain model mis-estimates bound
//! predicates by an order of magnitude; equi-width histograms built from
//! the stored data repair the estimate, and with it the start-up-time
//! choose-plan decision.

use dqep::algebra::{CompareOp, HostVar, LogicalExpr, SelectPred};
use dqep::catalog::{Catalog, CatalogBuilder, SystemConfig};
use dqep::cost::{Bindings, Environment, SelectivityModel};
use dqep::executor::execute_plan;
use dqep::optimizer::Optimizer;
use dqep::plan::evaluate_startup;
use dqep::storage::{install_histograms, StoredDatabase, ValueDistribution};

fn skewed_fixture() -> (Catalog, StoredDatabase) {
    let catalog = CatalogBuilder::new(SystemConfig::paper_1994())
        .relation("r", 1_000, 512, |r| r.attr("a", 1_000.0).btree("a", false))
        .build()
        .unwrap();
    let db = StoredDatabase::generate_with(&catalog, 7, ValueDistribution::Zipf { exponent: 1.0 });
    (catalog, db)
}

fn true_fraction(cat: &Catalog, db: &StoredDatabase, v: i64) -> f64 {
    let rel = cat.relation_by_name("r").unwrap();
    let t = db.table(rel.id);
    let below = t.heap.scan().filter(|rec| t.decode(rec.as_ref().unwrap())[0] < v).count();
    below as f64 / t.heap.record_count() as f64
}

#[test]
fn histograms_repair_skewed_estimates() {
    let (mut catalog, db) = skewed_fixture();
    let rel = catalog.relation_by_name("r").unwrap();
    let attr = rel.attr_id("a").unwrap();
    let pred = SelectPred::bound(attr, CompareOp::Lt, 50);

    // Uniform model: 50 / 1000 = 5%.
    let uniform_est = {
        let m = SelectivityModel::new(&catalog);
        m.value_selectivity(&pred, 50)
    };
    let truth = true_fraction(&catalog, &db, 50);
    assert!(truth > 0.5, "zipf(1.0) concentrates mass at small values: {truth}");
    assert!(
        (uniform_est - truth).abs() > 0.4,
        "uniform estimate {uniform_est} should be far from truth {truth}"
    );

    // Histogram model: close to the truth.
    install_histograms(&db, &mut catalog, 32).expect("histograms");
    let hist_est = {
        let m = SelectivityModel::new(&catalog);
        m.value_selectivity(&pred, 50)
    };
    assert!(
        (hist_est - truth).abs() < 0.1,
        "histogram estimate {hist_est} vs truth {truth}"
    );
}

#[test]
fn histograms_fix_startup_decisions_on_skewed_data() {
    let (mut catalog, db) = skewed_fixture();
    let rel = catalog.relation_by_name("r").unwrap();
    let query = LogicalExpr::get(rel.id).select(SelectPred::unbound(
        rel.attr_id("a").unwrap(),
        CompareOp::Lt,
        HostVar(0),
    ));
    // A binding that looks selective under the uniform model (est. 3%)
    // but actually matches the majority of a Zipf-skewed relation.
    let bindings = Bindings::new().with_value(HostVar(0), 30);
    let truth = true_fraction(&catalog, &db, 30);
    assert!(truth > 0.5);

    // Without histograms: the start-up decision believes the index plan
    // is cheap and picks it.
    let env = Environment::dynamic_compile_time(&catalog.config);
    let plan = Optimizer::new(&catalog, &env).optimize(&query).unwrap().plan;
    let naive = evaluate_startup(&plan, &catalog, &env, &bindings);
    let (naive_exec, _) = execute_plan(&plan, &db, &catalog, &env, &bindings).unwrap();

    // With histograms: the decision sees the real fraction and switches.
    install_histograms(&db, &mut catalog, 32).expect("histograms");
    let informed_plan = Optimizer::new(&catalog, &env).optimize(&query).unwrap().plan;
    let informed = evaluate_startup(&informed_plan, &catalog, &env, &bindings);
    let (informed_exec, _) =
        execute_plan(&informed_plan, &db, &catalog, &env, &bindings).unwrap();

    assert_eq!(naive_exec.rows, informed_exec.rows, "same logical result");
    let cfg = &catalog.config;
    assert!(
        informed_exec.simulated_seconds(cfg) < naive_exec.simulated_seconds(cfg),
        "histogram-informed choice ({:.4}s) should beat the naive choice ({:.4}s)",
        informed_exec.simulated_seconds(cfg),
        naive_exec.simulated_seconds(cfg)
    );
    // And the chosen operators should differ (index scan vs file scan).
    assert_ne!(
        naive.resolved.op.name(),
        informed.resolved.op.name(),
        "the decision should change with better statistics"
    );
}

#[test]
fn histograms_are_neutral_on_uniform_data() {
    // On uniform data the histogram and the uniform model agree, so
    // decisions are unchanged — installing statistics is safe.
    let catalog = CatalogBuilder::new(SystemConfig::paper_1994())
        .relation("r", 1_000, 512, |r| r.attr("a", 1_000.0).btree("a", false))
        .build()
        .unwrap();
    let db = StoredDatabase::generate(&catalog, 11);
    let mut with_stats = catalog.clone();
    install_histograms(&db, &mut with_stats, 32).expect("histograms");

    let rel = catalog.relation_by_name("r").unwrap();
    let attr = rel.attr_id("a").unwrap();
    for v in [50i64, 300, 700] {
        let pred = SelectPred::bound(attr, CompareOp::Lt, v);
        let uniform = SelectivityModel::new(&catalog).value_selectivity(&pred, v);
        let hist = SelectivityModel::new(&with_stats).value_selectivity(&pred, v);
        assert!(
            (uniform - hist).abs() < 0.06,
            "v={v}: uniform {uniform} vs histogram {hist}"
        );
    }
}
