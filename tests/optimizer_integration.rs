//! Cross-crate integration tests: optimizer guarantees on the paper's
//! workloads.

use dqep::cost::{Bindings, Environment};
use dqep::harness::{paper_query, BindingSampler};
use dqep::optimizer::{Optimizer, SearchOptions};
use dqep::plan::{dag, evaluate_startup, AccessModule};

/// The robustness guarantee (paper Section 3): for *every* binding, the
/// dynamic plan's chosen cost is no higher than the static plan's cost.
#[test]
fn dynamic_never_worse_than_static_over_many_bindings() {
    for k in 1..=3 {
        let w = paper_query(k, 1000 + k as u64);
        let static_env = Environment::static_compile_time(&w.catalog.config);
        let dynamic_env = Environment::dynamic_compile_time(&w.catalog.config);
        let static_plan = Optimizer::new(&w.catalog, &static_env)
            .optimize(&w.query)
            .unwrap()
            .plan;
        let dynamic_plan = Optimizer::new(&w.catalog, &dynamic_env)
            .optimize(&w.query)
            .unwrap()
            .plan;
        let mut sampler = BindingSampler::new(77, false);
        for (i, b) in sampler.sample_n(&w, 50).iter().enumerate() {
            let st = evaluate_startup(&static_plan, &w.catalog, &static_env, b);
            let dy = evaluate_startup(&dynamic_plan, &w.catalog, &dynamic_env, b);
            assert!(
                dy.predicted_run_seconds <= st.predicted_run_seconds + 1e-9,
                "query {k}, binding {i}: dynamic {} > static {}",
                dy.predicted_run_seconds,
                st.predicted_run_seconds
            );
        }
    }
}

/// The optimality guarantee (paper Section 3, `g_i = d_i`): the dynamic
/// plan's start-up choice always matches what a full run-time optimization
/// with the same bindings would produce.
#[test]
fn dynamic_equals_runtime_optimization_over_many_bindings() {
    for k in 1..=3 {
        let w = paper_query(k, 2000 + k as u64);
        let dynamic_env = Environment::dynamic_compile_time(&w.catalog.config);
        let dynamic_plan = Optimizer::new(&w.catalog, &dynamic_env)
            .optimize(&w.query)
            .unwrap()
            .plan;
        let mut sampler = BindingSampler::new(78, false);
        for (i, b) in sampler.sample_n(&w, 25).iter().enumerate() {
            let dy = evaluate_startup(&dynamic_plan, &w.catalog, &dynamic_env, b);
            let rt_env = dynamic_env.bind(b);
            let rt_plan = Optimizer::new(&w.catalog, &rt_env)
                .optimize(&w.query)
                .unwrap()
                .plan;
            let rt = evaluate_startup(&rt_plan, &w.catalog, &rt_env, b);
            assert!(
                (dy.predicted_run_seconds - rt.predicted_run_seconds).abs() < 1e-6,
                "query {k}, binding {i}: dynamic {} vs run-time opt {}",
                dy.predicted_run_seconds,
                rt.predicted_run_seconds
            );
        }
    }
}

/// With uncertain memory, the guarantee extends over the memory dimension.
#[test]
fn memory_uncertainty_preserves_guarantees() {
    let w = paper_query(2, 3000);
    let env = Environment::dynamic_uncertain_memory(&w.catalog.config);
    let plan = Optimizer::new(&w.catalog, &env).optimize(&w.query).unwrap().plan;
    let mut sampler = BindingSampler::new(79, true);
    for b in sampler.sample_n(&w, 25) {
        let dy = evaluate_startup(&plan, &w.catalog, &env, &b);
        let rt_env = env.bind(&b);
        let rt_plan = Optimizer::new(&w.catalog, &rt_env)
            .optimize(&w.query)
            .unwrap()
            .plan;
        let rt = evaluate_startup(&rt_plan, &w.catalog, &rt_env, &b);
        assert!((dy.predicted_run_seconds - rt.predicted_run_seconds).abs() < 1e-6);
    }
}

/// The compile-time cost interval of the dynamic plan encloses the actual
/// resolved cost at any binding (soundness of interval costs), modulo the
/// decision overhead included at compile-time.
#[test]
fn compile_time_interval_encloses_startup_costs() {
    let w = paper_query(2, 4000);
    let env = Environment::dynamic_compile_time(&w.catalog.config);
    let result = Optimizer::new(&w.catalog, &env).optimize(&w.query).unwrap();
    let interval = result.plan.total_cost.total();
    let overhead_slack = dag::node_count(&result.plan) as f64
        * w.catalog.config.choose_plan_overhead
        * 4.0;
    let mut sampler = BindingSampler::new(80, false);
    for b in sampler.sample_n(&w, 50) {
        let dy = evaluate_startup(&result.plan, &w.catalog, &env, &b);
        assert!(
            dy.predicted_run_seconds >= interval.lo() - overhead_slack - 1e-9,
            "cost {} below interval {interval}",
            dy.predicted_run_seconds
        );
        assert!(
            dy.predicted_run_seconds <= interval.hi() + 1e-9,
            "cost {} above interval {interval}",
            dy.predicted_run_seconds
        );
    }
}

/// Optimized plans satisfy structural invariants and survive access-module
/// round trips with identical shape and cost.
#[test]
fn plans_roundtrip_through_access_modules() {
    for k in 1..=4 {
        let w = paper_query(k, 5000 + k as u64);
        for env in [
            Environment::static_compile_time(&w.catalog.config),
            Environment::dynamic_compile_time(&w.catalog.config),
        ] {
            let plan = Optimizer::new(&w.catalog, &env).optimize(&w.query).unwrap().plan;
            plan.check_invariants().unwrap();
            let module = AccessModule::new(plan.clone());
            let back = AccessModule::deserialize(module.serialize()).unwrap();
            assert_eq!(dag::node_count(back.root()), dag::node_count(&plan));
            assert_eq!(
                back.root().total_cost.total(),
                plan.total_cost.total(),
                "query {k}: cost changed through serialization"
            );
            back.root().check_invariants().unwrap();

            // The deserialized module makes identical start-up decisions.
            let b = BindingSampler::new(42, false).sample(&w);
            let a = evaluate_startup(&plan, &w.catalog, &env, &b);
            let c = evaluate_startup(back.root(), &w.catalog, &env, &b);
            assert_eq!(a.predicted_run_seconds, c.predicted_run_seconds);
        }
    }
}

/// Search options that only restrict *representation* (pruning, sharing)
/// never change plan quality; options that restrict the *search space*
/// (left-deep) can only make plans worse or equal.
#[test]
fn option_semantics() {
    let w = paper_query(3, 6000);
    let env = Environment::dynamic_compile_time(&w.catalog.config);
    let base = Optimizer::new(&w.catalog, &env).optimize(&w.query).unwrap();
    let mut sampler = BindingSampler::new(81, false);
    let bindings = sampler.sample_n(&w, 10);

    let no_pruning = Optimizer::with_options(
        &w.catalog,
        &env,
        SearchOptions { enable_pruning: false, ..SearchOptions::paper() },
    )
    .optimize(&w.query)
    .unwrap();
    assert_eq!(
        no_pruning.plan.total_cost.total(),
        base.plan.total_cost.total()
    );

    let left_deep = Optimizer::with_options(
        &w.catalog,
        &env,
        SearchOptions { bushy: false, ..SearchOptions::paper() },
    )
    .optimize(&w.query)
    .unwrap();
    for b in &bindings {
        let full = evaluate_startup(&base.plan, &w.catalog, &env, b).predicted_run_seconds;
        let ld = evaluate_startup(&left_deep.plan, &w.catalog, &env, b).predicted_run_seconds;
        assert!(
            ld >= full - 1e-9,
            "left-deep restriction cannot beat the full space"
        );
    }

    // An unbound binding set: startup evaluation still functions, using
    // expected values for unbound parameters.
    let neutral = evaluate_startup(&base.plan, &w.catalog, &env, &Bindings::new());
    assert!(neutral.predicted_run_seconds > 0.0);
}
