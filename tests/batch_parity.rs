//! Batch/tuple execution parity: the vectorized pipeline must be
//! observationally identical to the Volcano `next()` pipeline.
//!
//! "Identical" is strict: same result tuples in the same order, same
//! CPU counter totals (records, compares, hashes — so
//! `ExecSummary::simulated_seconds` agrees between modes), same
//! accounted I/O (so deterministic fault-plan ordinals trip at the same
//! reads), and the same number of choose-plan fallbacks under injected
//! storage faults and refused memory grants. When a run fails, both
//! modes must fail with the same kind of error.

use std::sync::Arc;

use dqep::algebra::{CompareOp, HostVar, JoinPred, LogicalExpr, PhysicalOp, SelectPred};
use dqep::catalog::{Catalog, CatalogBuilder, SystemConfig};
use dqep::cost::{Bindings, Cost, Environment, PlanStats};
use dqep::executor::{
    compile_dynamic_plan, drain, drain_batch, execute_plan_mode, ExecContext, ExecError, ExecMode,
    ExecSummary, ResourceLimits, SharedCounters,
};
use dqep::interval::Interval;
use dqep::optimizer::Optimizer;
use dqep::plan::{PlanNode, PlanNodeBuilder};
use dqep::storage::{FaultPlan, StoredDatabase};
use proptest::prelude::*;

/// Coarse error class: variant (and resource kind) only. Exact payloads
/// may legitimately differ — e.g. a refused memory reservation reports
/// the *requested* bytes, and the batch path reserves a batch at a time.
fn classify(e: &ExecError) -> String {
    match e {
        ExecError::Storage(_) => "storage".into(),
        ExecError::ResourceExhausted(r) => {
            let kind = match r {
                dqep::executor::Resource::Memory { .. } => "memory",
                dqep::executor::Resource::Rows { .. } => "rows",
                dqep::executor::Resource::Io { .. } => "io",
                dqep::executor::Resource::WallClock { .. } => "wall-clock",
            };
            format!("resource:{kind}")
        }
        other => format!("{other:?}"),
    }
}

/// Asserts two `ExecSummary`s agree on everything parity promises.
fn assert_summaries_equal(t: &ExecSummary, b: &ExecSummary) {
    assert_eq!(t.rows, b.rows, "result row counts diverged");
    assert_eq!(t.fallbacks, b.fallbacks, "fallback counts diverged");
    assert_eq!(t.cpu, b.cpu, "CPU counter totals diverged");
    assert_eq!(t.io, b.io, "accounted I/O diverged");
}

/// A randomized 1–3 relation chain workload (mirrors `proptests.rs`,
/// with smaller cardinalities since every case also generates and
/// executes against stored data).
#[derive(Debug, Clone)]
struct RandomWorkload {
    cards: Vec<u64>,
    domain_factors: Vec<f64>,
    selected: Vec<bool>,
}

fn workload_strategy() -> impl Strategy<Value = RandomWorkload> {
    (1usize..=3).prop_flat_map(|n| {
        (
            proptest::collection::vec(40u64..400, n),
            proptest::collection::vec(0.2f64..1.25, n),
            proptest::collection::vec(any::<bool>(), n),
        )
            .prop_map(|(cards, domain_factors, mut selected)| {
                if !selected.iter().any(|s| *s) {
                    selected[0] = true;
                }
                RandomWorkload {
                    cards,
                    domain_factors,
                    selected,
                }
            })
    })
}

fn build(w: &RandomWorkload) -> (Catalog, LogicalExpr, Vec<(HostVar, f64)>) {
    let mut builder = CatalogBuilder::new(SystemConfig::paper_1994());
    for (i, (&card, &f)) in w.cards.iter().zip(&w.domain_factors).enumerate() {
        let name = format!("t{i}");
        let jdomain = (card as f64 * f).max(1.0).round();
        builder = builder.relation(&name, card, 512, |r| {
            r.attr("a", card as f64)
                .attr("j", jdomain)
                .btree("a", false)
                .btree("j", false)
        });
    }
    let catalog = builder.build().expect("valid random catalog");
    let rels: Vec<_> = catalog.relations().to_vec();
    let mut hosts = Vec::new();
    let leaf = |i: usize, hosts: &mut Vec<(HostVar, f64)>| {
        let mut e = LogicalExpr::get(rels[i].id);
        if w.selected[i] {
            let var = HostVar(i as u32);
            hosts.push((var, rels[i].attributes[0].domain_size));
            e = e.select(SelectPred::unbound(
                rels[i].attr_id("a").expect("attr"),
                CompareOp::Lt,
                var,
            ));
        }
        e
    };
    let mut q = leaf(0, &mut hosts);
    for i in 1..w.cards.len() {
        q = q.join(
            leaf(i, &mut hosts),
            vec![JoinPred::new(
                rels[i - 1].attr_id("j").expect("attr"),
                rels[i].attr_id("j").expect("attr"),
            )],
        );
    }
    (catalog, q, hosts)
}

fn node(b: &mut PlanNodeBuilder, op: PhysicalOp, children: Vec<Arc<PlanNode>>) -> Arc<PlanNode> {
    b.node(
        op,
        children,
        PlanStats::new(Interval::point(0.0), 512.0),
        Cost::ZERO,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random optimized plans over random data, executed in both modes
    /// under one of three hazards — none, injected storage faults, or a
    /// tight memory limit: identical summaries when both succeed, same
    /// error class when both fail, never success in one mode and failure
    /// in the other. After a *memory-refusal* fallback the abandoned
    /// attempt's partial work may differ by up to a batch (batch
    /// production is eager), so counters are only compared bit-for-bit
    /// when no fallback was taken; under storage faults the scan's
    /// deferred-error delivery makes even fallback runs exact.
    #[test]
    fn random_plans_execute_identically_in_both_modes(
        w in workload_strategy(),
        sel in 0.0f64..=1.0,
        seed in 0u64..1000,
        hazard in prop_oneof![Just(0u8), Just(1), Just(2)],
        prob in 0.0f64..0.05,
        nth in 1u64..60,
        mem_kb in 1u64..64,
    ) {
        let (catalog, query, hosts) = build(&w);
        let db = StoredDatabase::generate(&catalog, seed);
        let env = Environment::dynamic_compile_time(&catalog.config);
        let plan = Optimizer::new(&catalog, &env).optimize(&query).unwrap().plan;
        let mut bindings = Bindings::new();
        for &(var, domain) in &hosts {
            bindings = bindings.with_value(var, (sel * domain) as i64);
        }
        let limits = ResourceLimits {
            memory_bytes: (hazard == 2).then_some(mem_kb * 1024),
            ..ResourceLimits::unlimited()
        };
        let fault = if hazard == 1 {
            let mut f = FaultPlan::probabilistic(prob, seed);
            f.fail_nth_reads.push(nth);
            f
        } else {
            FaultPlan::none()
        };

        // `set_fault_plan` resets the fault ordinals, so each mode sees
        // the exact same fault sequence.
        db.disk.set_fault_plan(fault.clone());
        let tuple = execute_plan_mode(&plan, &db, &catalog, &env, &bindings, limits, ExecMode::Tuple);
        db.disk.set_fault_plan(fault);
        let batch = execute_plan_mode(&plan, &db, &catalog, &env, &bindings, limits, ExecMode::Batch);
        db.disk.set_fault_plan(FaultPlan::none());

        match (tuple, batch) {
            (Ok((t, _)), Ok((b, _))) => {
                prop_assert_eq!(t.rows, b.rows, "result row counts diverged");
                prop_assert_eq!(t.fallbacks, b.fallbacks, "fallback counts diverged");
                if hazard != 2 || t.fallbacks == 0 {
                    assert_summaries_equal(&t, &b);
                }
            }
            (Err(te), Err(be)) => prop_assert_eq!(
                classify(&te), classify(&be),
                "error classes diverged: tuple={:?} batch={:?}", te, be
            ),
            (t, b) => prop_assert!(
                false,
                "one mode succeeded while the other failed: tuple={:?} batch={:?}",
                t.map(|(s, _)| s.rows), b.map(|(s, _)| s.rows)
            ),
        }
    }

    /// `drain` and `drain_batch` over the same compiled plan return the
    /// *same tuples in the same order*, not just the same count.
    #[test]
    fn drained_tuples_are_identical(
        w in workload_strategy(),
        sel in 0.0f64..=1.0,
        seed in 0u64..1000,
    ) {
        let (catalog, query, hosts) = build(&w);
        let db = StoredDatabase::generate(&catalog, seed);
        let env = Environment::dynamic_compile_time(&catalog.config);
        let plan = Optimizer::new(&catalog, &env).optimize(&query).unwrap().plan;
        let mut bindings = Bindings::new();
        for &(var, domain) in &hosts {
            bindings = bindings.with_value(var, (sel * domain) as i64);
        }
        let memory = 64 * 2048;

        let ctx = ExecContext::new(SharedCounters::new()).with_mode(ExecMode::Tuple);
        let mut op = compile_dynamic_plan(&plan, &db, &catalog, &env, &bindings, memory, &ctx).unwrap();
        let tuple_rows = drain(op.as_mut()).unwrap();

        let ctx = ExecContext::new(SharedCounters::new()).with_mode(ExecMode::Batch);
        let mut op = compile_dynamic_plan(&plan, &db, &catalog, &env, &bindings, memory, &ctx).unwrap();
        let batch_rows = drain_batch(op.as_mut()).unwrap();

        prop_assert_eq!(tuple_rows, batch_rows);
    }
}

/// A choose-plan whose preferred alternative is refused its memory grant
/// falls back identically in both modes: same rows, one recorded
/// fallback each, no leaked reservations.
#[test]
fn memory_refusal_fallback_is_mode_independent() {
    let catalog = CatalogBuilder::new(SystemConfig::paper_1994())
        .relation("r", 400, 512, |r| r.attr("a", 400.0).btree("a", false))
        .build()
        .unwrap();
    let db = StoredDatabase::generate(&catalog, 7);
    let rel = catalog.relation_by_name("r").unwrap();
    let ra = rel.attr_id("a").unwrap();
    let (idx, _) = catalog.index_on_attr(ra).unwrap();

    // Alternative 0: Sort(FileScan) — needs a grant the governor refuses.
    // Alternative 1: BtreeScan — streams in key order, grant-free.
    let mut b = PlanNodeBuilder::new();
    let scan = node(&mut b, PhysicalOp::FileScan { relation: rel.id }, vec![]);
    let sorted = node(&mut b, PhysicalOp::Sort { attr: ra }, vec![scan]);
    let btree = node(
        &mut b,
        PhysicalOp::BtreeScan { relation: rel.id, index: idx, key_attr: ra },
        vec![],
    );
    let choose = node(&mut b, PhysicalOp::ChoosePlan, vec![sorted, btree]);

    let env = Environment::dynamic_compile_time(&catalog.config);
    let bindings = Bindings::new();
    let limits = ResourceLimits {
        memory_bytes: Some(512),
        ..ResourceLimits::unlimited()
    };

    let mut results = Vec::new();
    for mode in [ExecMode::Tuple, ExecMode::Batch] {
        let ctx = ExecContext::with_limits(SharedCounters::new(), limits).with_mode(mode);
        let mut op =
            compile_dynamic_plan(&choose, &db, &catalog, &env, &bindings, 64 * 2048, &ctx).unwrap();
        let rows = match mode {
            ExecMode::Tuple => drain(op.as_mut()).unwrap(),
            ExecMode::Batch => drain_batch(op.as_mut()).unwrap(),
        };
        assert_eq!(ctx.counters.fallbacks(), 1, "{mode:?}: expected one fallback");
        assert_eq!(ctx.governor.memory_used(), 0, "{mode:?}: leaked reservation");
        results.push((rows, ctx.counters.snapshot()));
    }
    assert_eq!(results[0], results[1], "modes diverged after fallback");
    assert_eq!(results[0].0.len(), 400);
}

/// Columnar selection-vector semantics on [`RowBatch`] itself: an
/// absent selection, a fully-selected vector, and a sparse vector must
/// agree on live-row accessors, and the physical columns must stay
/// untouched underneath.
#[test]
fn selection_vector_dense_sparse_and_empty_semantics() {
    let rows: Vec<Vec<i64>> = (0..8).map(|i| vec![i, 10 * i]).collect();
    let mut dense = dqep::executor::RowBatch::with_capacity(2, rows.len());
    for row in &rows {
        dense.push_row(row);
    }

    // No selection: every physical row is live.
    assert_eq!(dense.rows(), 8);
    assert_eq!(dense.len(), 8);
    assert_eq!(dense.to_tuples(), rows);
    assert_eq!(dense.selected_indices().collect::<Vec<_>>(), (0..8).collect::<Vec<_>>());

    // Fully-selected vector: identical live view, selection now present.
    let mut full = dense.clone();
    full.set_selection((0..8).collect());
    assert_eq!(full.len(), 8);
    assert_eq!(full.to_tuples(), dense.to_tuples());
    assert!(full.selection().is_some());

    // Sparse vector: live accessors shrink, physical accessors do not.
    let mut sparse = dense.clone();
    sparse.set_selection(vec![1, 4, 6]);
    assert_eq!(sparse.rows(), 8, "selection must not drop physical rows");
    assert_eq!(sparse.len(), 3);
    assert_eq!(sparse.to_tuples(), vec![rows[1].clone(), rows[4].clone(), rows[6].clone()]);
    assert_eq!(sparse.selected_indices().collect::<Vec<_>>(), vec![1, 4, 6]);
    assert_eq!(sparse.column(0), dense.column(0), "columns are physical");
    assert_eq!(sparse.row_vec(4), rows[4], "row_vec indexes physical rows");

    // Empty vector: no live rows, still width-2 and 8 physical rows.
    let mut empty = dense.clone();
    empty.set_selection(Vec::new());
    assert!(empty.is_empty());
    assert_eq!(empty.rows(), 8);
    assert!(empty.to_tuples().is_empty());
    assert_eq!(empty.width(), 2);
}

/// Filter selectivities that produce empty, sparse, and fully-selected
/// batches feeding a hash-join probe: the selection-aware batch kernels
/// must agree with the tuple path on tuples *and* counters at each
/// density.
#[test]
fn filtered_probe_batches_join_identically_at_every_density() {
    let catalog = CatalogBuilder::new(SystemConfig::paper_1994())
        .relation("dim", 60, 512, |r| r.attr("k", 60.0).attr("v", 40.0))
        .relation("fact", 300, 512, |r| r.attr("fk", 60.0).attr("m", 300.0))
        .build()
        .unwrap();
    let db = StoredDatabase::generate(&catalog, 13);
    let dim = catalog.relation_by_name("dim").unwrap();
    let fact = catalog.relation_by_name("fact").unwrap();
    let fm = fact.attr_id("m").unwrap();

    // m < 0 -> every probe batch carries an empty selection; m < 20 ->
    // sparse selections; m < 1000 -> fully selected batches.
    for cutoff in [0i64, 20, 1000] {
        let mut b = PlanNodeBuilder::new();
        let build = node(&mut b, PhysicalOp::FileScan { relation: dim.id }, vec![]);
        let probe_scan = node(&mut b, PhysicalOp::FileScan { relation: fact.id }, vec![]);
        let probe = node(
            &mut b,
            PhysicalOp::Filter { predicate: SelectPred::bound(fm, CompareOp::Lt, cutoff) },
            vec![probe_scan],
        );
        let join = node(
            &mut b,
            PhysicalOp::HashJoin {
                predicates: vec![JoinPred::new(
                    dim.attr_id("k").unwrap(),
                    fact.attr_id("fk").unwrap(),
                )],
            },
            vec![build, probe],
        );
        let env = Environment::dynamic_compile_time(&catalog.config);
        let bindings = Bindings::new();

        let ctx = ExecContext::new(SharedCounters::new()).with_mode(ExecMode::Tuple);
        let mut op =
            compile_dynamic_plan(&join, &db, &catalog, &env, &bindings, 64 * 2048, &ctx).unwrap();
        let tuple_rows = drain(op.as_mut()).unwrap();
        let tuple_counters = ctx.counters.snapshot();

        let ctx = ExecContext::new(SharedCounters::new()).with_mode(ExecMode::Batch);
        let mut op =
            compile_dynamic_plan(&join, &db, &catalog, &env, &bindings, 64 * 2048, &ctx).unwrap();
        let batch_rows = drain_batch(op.as_mut()).unwrap();
        let batch_counters = ctx.counters.snapshot();

        assert_eq!(tuple_rows, batch_rows, "cutoff {cutoff}: tuples diverged");
        assert_eq!(tuple_counters, batch_counters, "cutoff {cutoff}: counters diverged");
        if cutoff == 0 {
            assert!(tuple_rows.is_empty(), "cutoff 0 must produce no joins");
        } else {
            assert!(!tuple_rows.is_empty(), "cutoff {cutoff} must produce joins");
        }
    }
}

/// A read fault landing mid-batch defers: the scan delivers the rows it
/// decoded before the fault, and the *next* call raises the error. Both
/// modes see the same rows before the same error.
#[test]
fn mid_batch_fault_is_deferred_to_the_next_call() {
    let catalog = CatalogBuilder::new(SystemConfig::paper_1994())
        .relation("r", 600, 512, |r| r.attr("a", 600.0))
        .build()
        .unwrap();
    let db = StoredDatabase::generate(&catalog, 3);
    let rel = catalog.relation_by_name("r").unwrap();
    let mut b = PlanNodeBuilder::new();
    let plan = node(&mut b, PhysicalOp::FileScan { relation: rel.id }, vec![]);
    let env = Environment::dynamic_compile_time(&catalog.config);
    let bindings = Bindings::new();

    // Tuple mode: count rows delivered before the fault surfaces.
    db.disk.set_fault_plan(FaultPlan::parse("nth-read=2").unwrap());
    let ctx = ExecContext::new(SharedCounters::new()).with_mode(ExecMode::Tuple);
    let mut op = compile_dynamic_plan(&plan, &db, &catalog, &env, &bindings, 64 * 2048, &ctx).unwrap();
    let mut tuple_rows = Vec::new();
    let tuple_err = loop {
        match op.next() {
            Ok(Some(row)) => tuple_rows.push(row),
            Ok(None) => panic!("fault never surfaced in tuple mode"),
            Err(e) => break e,
        }
    };
    op.close();
    assert!(!tuple_rows.is_empty(), "page 1 rows must precede the page-2 fault");

    // Batch mode: a huge max_rows spans the faulting page, so the first
    // call returns page 1's rows and stashes the error for the second.
    db.disk.set_fault_plan(FaultPlan::parse("nth-read=2").unwrap());
    let ctx = ExecContext::new(SharedCounters::new()).with_mode(ExecMode::Batch);
    let mut op = compile_dynamic_plan(&plan, &db, &catalog, &env, &bindings, 64 * 2048, &ctx).unwrap();
    let first = op
        .next_batch(10_000)
        .expect("first batch precedes the fault")
        .expect("first batch is non-empty");
    let batch_rows = first.to_tuples();
    let batch_err = op.next_batch(10_000).expect_err("deferred fault surfaces on the next call");
    op.close();
    db.disk.set_fault_plan(FaultPlan::none());

    assert_eq!(tuple_rows, batch_rows, "pre-fault rows diverged across modes");
    assert_eq!(classify(&tuple_err), classify(&batch_err), "error classes diverged");
    assert_eq!(classify(&batch_err), "storage");
}

/// Row-budget refusals at batch boundaries: a budget that exactly covers
/// the result admits both modes with identical summaries; a budget one
/// row short refuses both with the same resource class (the batch path
/// checks its budget per batch, never overshooting past a boundary).
#[test]
fn row_budget_refusals_are_mode_independent_at_batch_boundaries() {
    let catalog = CatalogBuilder::new(SystemConfig::paper_1994())
        .relation("r", 500, 512, |r| r.attr("a", 500.0))
        .build()
        .unwrap();
    let db = StoredDatabase::generate(&catalog, 9);
    let rel = catalog.relation_by_name("r").unwrap();
    let q = LogicalExpr::get(rel.id);
    let env = Environment::dynamic_compile_time(&catalog.config);
    let plan = Optimizer::new(&catalog, &env).optimize(&q).unwrap().plan;
    let bindings = Bindings::new();

    for (max_rows, should_pass) in [(500u64, true), (499, false), (1, false)] {
        let limits = ResourceLimits {
            max_rows: Some(max_rows),
            ..ResourceLimits::unlimited()
        };
        let mut outcomes = Vec::new();
        for mode in [ExecMode::Tuple, ExecMode::Batch] {
            let result =
                execute_plan_mode(&plan, &db, &catalog, &env, &bindings, limits, mode);
            outcomes.push(match result {
                Ok((s, _)) => format!("ok:{}:{:?}:{:?}", s.rows, s.io, s.cpu),
                Err(e) => format!("err:{}", classify(&e)),
            });
        }
        assert_eq!(
            outcomes[0], outcomes[1],
            "max_rows={max_rows} diverged across modes"
        );
        if should_pass {
            assert!(outcomes[0].starts_with("ok:500:"), "budget {max_rows} should admit");
        } else {
            assert_eq!(outcomes[0], "err:resource:rows", "budget {max_rows} should refuse");
        }
    }
}

/// Injected mid-scan faults trip at the same accounted read in both
/// modes (batch scans charge I/O page by page, in the same order).
#[test]
fn fault_ordinals_trip_identically_in_both_modes() {
    let catalog = CatalogBuilder::new(SystemConfig::paper_1994())
        .relation("r", 600, 512, |r| r.attr("a", 600.0))
        .build()
        .unwrap();
    let db = StoredDatabase::generate(&catalog, 21);
    let rel = catalog.relation_by_name("r").unwrap();
    let q = LogicalExpr::get(rel.id).select(SelectPred::bound(
        rel.attr_id("a").unwrap(),
        CompareOp::Lt,
        300,
    ));
    let env = Environment::dynamic_compile_time(&catalog.config);
    let plan = Optimizer::new(&catalog, &env).optimize(&q).unwrap().plan;
    let bindings = Bindings::new();

    for nth in [1u64, 2, 3] {
        let mut outcomes = Vec::new();
        for mode in [ExecMode::Tuple, ExecMode::Batch] {
            db.disk.set_fault_plan(FaultPlan::parse(&format!("nth-read={nth}")).unwrap());
            let result = execute_plan_mode(
                &plan,
                &db,
                &catalog,
                &env,
                &bindings,
                ResourceLimits::unlimited(),
                mode,
            );
            db.disk.set_fault_plan(FaultPlan::none());
            outcomes.push(match result {
                Ok((s, _)) => format!("ok:{}", s.rows),
                Err(e) => format!("err:{}", classify(&e)),
            });
        }
        assert_eq!(outcomes[0], outcomes[1], "nth-read={nth} diverged across modes");
    }
}
