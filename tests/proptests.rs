//! Property-based tests over randomized catalogs, queries, and bindings.

use dqep::algebra::{CompareOp, HostVar, JoinPred, LogicalExpr, SelectPred};
use dqep::catalog::{Catalog, CatalogBuilder, SystemConfig};
use dqep::cost::{Bindings, Environment};
use dqep::optimizer::Optimizer;
use dqep::plan::{dag, evaluate_startup, AccessModule};
use proptest::prelude::*;

/// A randomized 1–3 relation chain workload: random cardinalities, domain
/// factors, and a choice of which relations carry unbound selections.
#[derive(Debug, Clone)]
struct RandomWorkload {
    cards: Vec<u64>,
    domain_factors: Vec<f64>,
    selected: Vec<bool>,
}

fn workload_strategy() -> impl Strategy<Value = RandomWorkload> {
    (1usize..=3).prop_flat_map(|n| {
        (
            proptest::collection::vec(50u64..1500, n),
            proptest::collection::vec(0.2f64..1.25, n),
            proptest::collection::vec(any::<bool>(), n),
        )
            .prop_map(|(cards, domain_factors, mut selected)| {
                // At least one unbound predicate so dynamic plans can arise.
                if !selected.iter().any(|s| *s) {
                    selected[0] = true;
                }
                RandomWorkload {
                    cards,
                    domain_factors,
                    selected,
                }
            })
    })
}

fn build(w: &RandomWorkload) -> (Catalog, LogicalExpr, Vec<(HostVar, f64)>) {
    let mut builder = CatalogBuilder::new(SystemConfig::paper_1994());
    for (i, (&card, &f)) in w.cards.iter().zip(&w.domain_factors).enumerate() {
        let name = format!("t{i}");
        let jdomain = (card as f64 * f).max(1.0).round();
        builder = builder.relation(&name, card, 512, |r| {
            r.attr("a", card as f64)
                .attr("j", jdomain)
                .btree("a", false)
                .btree("j", false)
        });
    }
    let catalog = builder.build().expect("valid random catalog");
    let rels: Vec<_> = catalog.relations().to_vec();
    let mut hosts = Vec::new();
    let leaf = |i: usize, hosts: &mut Vec<(HostVar, f64)>| {
        let mut e = LogicalExpr::get(rels[i].id);
        if w.selected[i] {
            let var = HostVar(i as u32);
            hosts.push((var, rels[i].attributes[0].domain_size));
            e = e.select(SelectPred::unbound(
                rels[i].attr_id("a").expect("attr"),
                CompareOp::Lt,
                var,
            ));
        }
        e
    };
    let mut q = leaf(0, &mut hosts);
    for i in 1..w.cards.len() {
        q = q.join(
            leaf(i, &mut hosts),
            vec![JoinPred::new(
                rels[i - 1].attr_id("j").expect("attr"),
                rels[i].attr_id("j").expect("attr"),
            )],
        );
    }
    (catalog, q, hosts)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every optimized plan satisfies structural invariants, in all modes.
    #[test]
    fn optimized_plans_are_well_formed(w in workload_strategy()) {
        let (catalog, query, _) = build(&w);
        for env in [
            Environment::static_compile_time(&catalog.config),
            Environment::dynamic_compile_time(&catalog.config),
            Environment::dynamic_uncertain_memory(&catalog.config),
        ] {
            let result = Optimizer::new(&catalog, &env).optimize(&query).unwrap();
            prop_assert!(result.plan.check_invariants().is_ok());
            prop_assert!(result.stats.plan_nodes >= 1);
            // Static mode always produces a single static plan.
            if !env.has_uncertainty() {
                prop_assert!(!result.plan.is_dynamic());
            }
        }
    }

    /// The dynamic plan is never more expensive than the static plan at
    /// any sampled binding (robustness), and its compile-time interval
    /// encloses every resolved cost (soundness).
    #[test]
    fn robustness_and_soundness(w in workload_strategy(), sels in proptest::collection::vec(0.0f64..=1.0, 3)) {
        let (catalog, query, hosts) = build(&w);
        let static_env = Environment::static_compile_time(&catalog.config);
        let dynamic_env = Environment::dynamic_compile_time(&catalog.config);
        let sp = Optimizer::new(&catalog, &static_env).optimize(&query).unwrap().plan;
        let dp = Optimizer::new(&catalog, &dynamic_env).optimize(&query).unwrap().plan;
        let interval = dp.total_cost.total();
        let slack = dag::node_count(&dp) as f64 * catalog.config.choose_plan_overhead * 4.0;

        for (i, &sel) in sels.iter().enumerate() {
            let mut b = Bindings::new();
            for (j, &(var, domain)) in hosts.iter().enumerate() {
                let s = sels[(i + j) % sels.len()].min(sel.max(0.0));
                b = b.with_value(var, (s * domain) as i64);
            }
            let st = evaluate_startup(&sp, &catalog, &static_env, &b);
            let dy = evaluate_startup(&dp, &catalog, &dynamic_env, &b);
            prop_assert!(
                dy.predicted_run_seconds <= st.predicted_run_seconds + 1e-9,
                "dynamic {} > static {}", dy.predicted_run_seconds, st.predicted_run_seconds
            );
            prop_assert!(dy.predicted_run_seconds >= interval.lo() - slack - 1e-9);
            prop_assert!(dy.predicted_run_seconds <= interval.hi() + 1e-9);
        }
    }

    /// Access modules round-trip any optimized plan.
    #[test]
    fn module_roundtrip(w in workload_strategy()) {
        let (catalog, query, _) = build(&w);
        let env = Environment::dynamic_compile_time(&catalog.config);
        let plan = Optimizer::new(&catalog, &env).optimize(&query).unwrap().plan;
        let back = AccessModule::deserialize(AccessModule::new(plan.clone()).serialize()).unwrap();
        prop_assert_eq!(dag::node_count(back.root()), dag::node_count(&plan));
        prop_assert_eq!(back.root().total_cost.total(), plan.total_cost.total());
        prop_assert_eq!(
            dag::contained_plan_count(back.root()),
            dag::contained_plan_count(&plan)
        );
    }

    /// Start-up decisions are deterministic in the bindings.
    #[test]
    fn startup_is_deterministic(w in workload_strategy(), sel in 0.0f64..=1.0) {
        let (catalog, query, hosts) = build(&w);
        let env = Environment::dynamic_compile_time(&catalog.config);
        let plan = Optimizer::new(&catalog, &env).optimize(&query).unwrap().plan;
        let mut b = Bindings::new();
        for &(var, domain) in &hosts {
            b = b.with_value(var, (sel * domain) as i64);
        }
        let a = evaluate_startup(&plan, &catalog, &env, &b);
        let c = evaluate_startup(&plan, &catalog, &env, &b);
        prop_assert_eq!(a.predicted_run_seconds, c.predicted_run_seconds);
        prop_assert_eq!(a.decisions.len(), c.decisions.len());
        for (x, y) in a.decisions.iter().zip(&c.decisions) {
            prop_assert_eq!(x.chosen_index, y.chosen_index);
        }
    }
}
