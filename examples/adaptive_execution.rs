//! Run-time adaptive execution (the paper's Section 7 direction).
//!
//! On Zipf-skewed data the uniform selectivity model misleads even the
//! start-up-time decision: the binding is known, but the fraction of rows
//! it selects is not. This example compares three strategies on the same
//! skewed join:
//!
//! 1. **blind** — the ordinary start-up decision with uniform estimates;
//! 2. **histograms** — equi-width statistics repair the estimate;
//! 3. **adaptive** — a pilot execution of the uncertain subplan observes
//!    its true cardinality before deciding ("when a subplan has been
//!    evaluated into a temporary result, its logical and physical
//!    properties are known").
//!
//! Run with `cargo run --release --example adaptive_execution`.

use dqep::algebra::{CompareOp, HostVar, JoinPred, LogicalExpr, SelectPred};
use dqep::catalog::{CatalogBuilder, SystemConfig};
use dqep::cost::{Bindings, Environment};
use dqep::executor::{execute_adaptive, execute_plan};
use dqep::optimizer::Optimizer;
use dqep::storage::{install_histograms, StoredDatabase, ValueDistribution};

fn main() {
    let catalog = CatalogBuilder::new(SystemConfig::paper_1994())
        .relation("events", 800, 512, |r| {
            r.attr("kind", 800.0).attr("user", 200.0).btree("kind", false).btree("user", false)
        })
        .relation("users", 400, 512, |r| r.attr("id", 200.0).btree("id", false))
        .build()
        .expect("catalog");
    // Event kinds are Zipf-distributed: a few kinds dominate.
    let db = StoredDatabase::generate_with(&catalog, 9, ValueDistribution::Zipf { exponent: 1.1 });

    let events = catalog.relation_by_name("events").expect("events");
    let users = catalog.relation_by_name("users").expect("users");
    let query = LogicalExpr::get(events.id)
        .select(SelectPred::unbound(
            events.attr_id("kind").expect("attr"),
            CompareOp::Lt,
            HostVar(0),
        ))
        .join(
            LogicalExpr::get(users.id),
            vec![JoinPred::new(
                events.attr_id("user").expect("attr"),
                users.attr_id("id").expect("attr"),
            )],
        );

    let env = Environment::dynamic_compile_time(&catalog.config);
    let plan = Optimizer::new(&catalog, &env).optimize(&query).expect("optimize").plan;

    // :kind < 25 — the uniform model estimates ~3% of events; with Zipf
    // skew the true fraction is the majority.
    let bindings = Bindings::new().with_value(HostVar(0), 25);
    let cfg = &catalog.config;

    let (blind, blind_startup) =
        execute_plan(&plan, &db, &catalog, &env, &bindings).expect("execute");
    println!(
        "blind      : {:8} rows  {:.4}s  (root: {})",
        blind.rows,
        blind.simulated_seconds(cfg),
        blind_startup.resolved.op.name()
    );

    let mut hist_catalog = catalog.clone();
    install_histograms(&db, &mut hist_catalog, 32).expect("histograms");
    let hist_plan = Optimizer::new(&hist_catalog, &env)
        .optimize(&query)
        .expect("optimize")
        .plan;
    let (hist, hist_startup) =
        execute_plan(&hist_plan, &db, &hist_catalog, &env, &bindings).expect("execute");
    println!(
        "histograms : {:8} rows  {:.4}s  (root: {})",
        hist.rows,
        hist.simulated_seconds(cfg),
        hist_startup.resolved.op.name()
    );

    let adaptive = execute_adaptive(&plan, &db, &catalog, &env, &bindings).expect("execute");
    println!(
        "adaptive   : {:8} rows  {:.4}s main + {:.4}s pilot (observed {} rows; root: {})",
        adaptive.main.rows,
        adaptive.main.simulated_seconds(cfg),
        adaptive
            .pilot
            .map(|p| p.simulated_seconds(cfg))
            .unwrap_or(0.0),
        adaptive.observed_rows.unwrap_or(0),
        adaptive.startup.resolved.op.name()
    );

    assert_eq!(blind.rows, hist.rows);
    assert_eq!(blind.rows, adaptive.main.rows);
}
