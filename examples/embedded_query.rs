//! An embedded query with host variables, invoked many times.
//!
//! The motivating workload for dynamic plans: an application program runs
//! the same two-way join repeatedly, each time with different host
//! variables. A static plan is optimal only for bindings near the
//! compile-time assumption (selectivity 0.05); a dynamic plan adapts every
//! invocation and — unlike re-optimizing each time — pays the optimizer
//! only once.
//!
//! Run with `cargo run --release --example embedded_query`.

use dqep::cost::Environment;
use dqep::executor::execute_plan;
use dqep::harness::{paper_query, BindingSampler};
use dqep::optimizer::Optimizer;
use dqep::storage::StoredDatabase;

fn main() {
    let n = 50;
    let workload = paper_query(2, 7); // 2-way join, 2 unbound predicates
    let catalog = &workload.catalog;
    let db = StoredDatabase::generate(catalog, 99);
    let mut sampler = BindingSampler::new(3, false);
    let bindings = sampler.sample_n(&workload, n);

    let static_env = Environment::static_compile_time(&catalog.config);
    let dynamic_env = Environment::dynamic_compile_time(&catalog.config);
    let static_plan = Optimizer::new(catalog, &static_env)
        .optimize(&workload.query)
        .expect("optimize")
        .plan;
    let dynamic_plan = Optimizer::new(catalog, &dynamic_env)
        .optimize(&workload.query)
        .expect("optimize")
        .plan;

    println!("{n} invocations of a 2-way join with host variables\n");
    println!(
        "{:>4}  {:>12}  {:>12}  {:>8}",
        "inv", "static [s]", "dynamic [s]", "saving"
    );
    let (mut total_static, mut total_dynamic) = (0.0, 0.0);
    for (i, b) in bindings.iter().enumerate() {
        let (st, _) = execute_plan(&static_plan, &db, catalog, &static_env, b).expect("exec");
        let (dy, _) = execute_plan(&dynamic_plan, &db, catalog, &dynamic_env, b).expect("exec");
        let st_s = st.simulated_seconds(&catalog.config);
        let dy_s = dy.simulated_seconds(&catalog.config);
        assert_eq!(st.rows, dy.rows, "both plans compute the same result");
        total_static += st_s;
        total_dynamic += dy_s;
        if i < 8 {
            println!("{:>4}  {:>12.4}  {:>12.4}  {:>7.1}x", i, st_s, dy_s, st_s / dy_s);
        }
    }
    println!(" ...");
    println!(
        "\ntotals over {n} invocations: static {total_static:.2}s, dynamic \
         {total_dynamic:.2}s ({:.1}x improvement, simulated time)",
        total_static / total_dynamic
    );
}
