//! The paper's Figure 2: a dynamic plan that switches scan methods *and*
//! join build sides — here driven by uncertain memory as well as an
//! uncertain selectivity.
//!
//! A hash join performs much better when the smaller input is the build
//! input, and it avoids partitioning I/O only when the build input fits
//! the memory grant. With the selection on R unbound and memory unknown in
//! `[16, 112]` pages, the optimizer keeps alternatives for both decisions
//! and the start-up-time choose-plan adapts.
//!
//! Run with `cargo run --release --example memory_adaptive`.

use dqep::algebra::{CompareOp, HostVar, JoinPred, LogicalExpr, PhysicalOp, SelectPred};
use dqep::catalog::{CatalogBuilder, SystemConfig};
use dqep::cost::{Bindings, Environment};
use dqep::optimizer::Optimizer;
use dqep::plan::{dag, evaluate_startup, render_plan};

fn main() {
    // R is large and filtered by an unbound predicate; S is mid-sized.
    let catalog = CatalogBuilder::new(SystemConfig::paper_1994())
        .relation("r", 1_000, 512, |r| {
            r.attr("a", 1_000.0).attr("j", 400.0).btree("a", false).btree("j", false)
        })
        .relation("s", 300, 512, |r| r.attr("j", 400.0).btree("j", false))
        .build()
        .expect("catalog");
    let r = catalog.relation_by_name("r").expect("r");
    let s = catalog.relation_by_name("s").expect("s");

    let query = LogicalExpr::get(r.id)
        .select(SelectPred::unbound(
            r.attr_id("a").expect("attr"),
            CompareOp::Lt,
            HostVar(0),
        ))
        .join(
            LogicalExpr::get(s.id),
            vec![JoinPred::new(r.attr_id("j").expect("attr"), s.attr_id("j").expect("attr"))],
        );

    // Selectivity AND memory unknown at compile-time.
    let env = Environment::dynamic_uncertain_memory(&catalog.config);
    let result = Optimizer::new(&catalog, &env).optimize(&query).expect("optimize");
    println!(
        "dynamic plan: {} DAG nodes, {} choose-plans, {} contained static plans\n",
        result.stats.plan_nodes,
        dag::choose_plan_count(&result.plan),
        result.stats.contained_plans
    );

    let scenarios = [
        ("tiny R side, ample memory", 20i64, 112.0),
        ("tiny R side, scarce memory", 20, 16.0),
        ("large R side, ample memory", 950, 112.0),
        ("large R side, scarce memory", 950, 16.0),
    ];
    for (label, x, mem) in scenarios {
        let bindings = Bindings::new().with_value(HostVar(0), x).with_memory(mem);
        let startup = evaluate_startup(&result.plan, &catalog, &env, &bindings);
        let mut joins = Vec::new();
        dag::walk_dag(&startup.resolved, &mut |n| {
            if let PhysicalOp::HashJoin { .. } | PhysicalOp::MergeJoin { .. }
            | PhysicalOp::IndexJoin { .. } = n.op
            {
                joins.push(format!("{}", n.op));
            }
        });
        println!("== {label} (:x={x}, mem={mem} pages) ==");
        println!("  join method(s): {}", joins.join("; "));
        println!("  predicted cost: {:.4}s", startup.predicted_run_seconds);
        println!("  chosen plan:\n{}", indent(&render_plan(&startup.resolved)));
    }
}

fn indent(text: &str) -> String {
    text.lines()
        .map(|l| format!("    {l}"))
        .collect::<Vec<_>>()
        .join("\n")
}
