//! An embedded-SQL "session": parse a query with named host variables,
//! prepare it ONCE into a dynamic plan, then execute it repeatedly with
//! different parameter values — the application-program workflow the paper
//! targets.
//!
//! Run with `cargo run --release --example sql_session`.

use dqep::catalog::{CatalogBuilder, SystemConfig};
use dqep::cost::Environment;
use dqep::executor::execute_plan;
use dqep::optimizer::Optimizer;
use dqep::sql::parse_query;
use dqep::storage::StoredDatabase;

fn main() {
    let catalog = CatalogBuilder::new(SystemConfig::paper_1994())
        .relation("orders", 1_000, 512, |r| {
            r.attr("amount", 1_000.0)
                .attr("customer", 400.0)
                .btree("amount", false)
                .btree("customer", false)
        })
        .relation("customers", 400, 512, |r| {
            r.attr("id", 400.0).attr("region", 8.0).btree("id", false)
        })
        .build()
        .expect("catalog");
    let db = StoredDatabase::generate(&catalog, 2024);

    let sql = "SELECT * FROM orders, customers \
               WHERE orders.customer = customers.id \
               AND orders.amount < :max_amount \
               AND customers.region = :region";
    println!("PREPARE: {sql}\n");

    let query = parse_query(sql, &catalog).expect("parse");
    println!(
        "host variables: {:?}\nlogical plan: {}\n",
        query.host_var_names(),
        query.expr
    );

    // Prepared once, with both parameters unknown.
    let env = Environment::dynamic_compile_time(&catalog.config);
    let prepared = Optimizer::new(&catalog, &env)
        .optimize(&query.expr)
        .expect("optimize");
    println!(
        "prepared dynamic plan: {} nodes, {} contained static plans\n",
        prepared.stats.plan_nodes, prepared.stats.contained_plans
    );

    // EXECUTE with different parameters — each invocation picks its own
    // plan at start-up-time.
    for (max_amount, region) in [(25i64, 3i64), (900, 3), (500, 7)] {
        let bindings = query
            .bindings(&[("max_amount", max_amount), ("region", region)])
            .expect("bind");
        let (summary, startup) =
            execute_plan(&prepared.plan, &db, &catalog, &env, &bindings).expect("execute");
        println!(
            "EXECUTE (:max_amount={max_amount}, :region={region}) -> {} rows, \
             {:.4}s simulated, root operator: {}",
            summary.rows,
            summary.simulated_seconds(&catalog.config),
            startup.resolved.op.name()
        );
    }
}
