//! Regenerates every paper table and figure in a reduced configuration
//! (10 invocations, selectivity uncertainty only) suitable for a quick
//! look. The `reproduce` binary in `dqep-bench` runs the full N=100
//! protocol with memory uncertainty and extra flags.
//!
//! Run with `cargo run --release --example reproduce_all`.

use dqep::harness::experiments::{
    ablation, breakeven, fig3, fig4, fig5, fig6, fig7, fig8, run_all, table1,
};
use dqep::harness::params::ExperimentParams;

fn main() {
    let params = ExperimentParams {
        invocations: 10,
        with_memory_uncertainty: false,
        ..ExperimentParams::paper()
    };
    println!("{}\n", table1::table());

    eprintln!("running the five paper queries under all three scenarios ...");
    let results = run_all(&params);
    println!("{}\n", fig3::table(&results[1]));
    println!("{}\n", fig4::table(&results));
    println!("{}\n", fig5::table(&results));
    println!("{}\n", fig6::table(&results));
    println!("{}\n", fig7::table(&results));
    println!("{}\n", fig8::table(&results));
    println!("{}\n", breakeven::table(&results));

    eprintln!("running ablations on query 3 ...");
    let (_, rows) = ablation::run(3, 10, params.seed);
    println!("{}", ablation::table(3, &rows));
}
