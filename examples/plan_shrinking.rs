//! The self-shrinking access module of paper Section 4.
//!
//! "During each invocation, the access module keeps statistics indicating
//! which components of the dynamic plan were actually used. After a number
//! of invocations, say 100, the access module … replaces itself with a
//! dynamic-plan access module that contains only those components that
//! have been used before."
//!
//! This example runs 100 invocations whose bindings are *skewed* to low
//! selectivities, lets the module shrink, shows the activation-time
//! saving — and then demonstrates the heuristic's documented risk by
//! issuing a high-selectivity binding the shrunk plan no longer handles
//! optimally.
//!
//! Run with `cargo run --release --example plan_shrinking`.

use dqep::catalog::SystemConfig;
use dqep::cost::Bindings;
use dqep::harness::paper_query;
use dqep::optimizer::Optimizer;
use dqep::plan::shrink::ShrinkingModule;
use dqep::plan::{dag, evaluate_startup, AccessModule};
use dqep_cost::Environment;

fn main() {
    let workload = paper_query(3, 21); // 4-way join
    let catalog = &workload.catalog;
    let env = Environment::dynamic_compile_time(&catalog.config);
    let plan = Optimizer::new(catalog, &env)
        .optimize(&workload.query)
        .expect("optimize")
        .plan;

    let before = AccessModule::new(plan.clone()).stats(&catalog.config);
    println!(
        "dynamic plan: {} nodes, module {} bytes (modeled), activation {:.4}s",
        before.nodes, before.modeled_bytes, before.activation_seconds
    );

    // 100 invocations, all with low selectivities (values in the bottom 10%
    // of each domain).
    let mut module = ShrinkingModule::new(plan.clone(), 100);
    let mut skewed = Vec::new();
    for i in 0..100u64 {
        let mut b = Bindings::new();
        for &(var, attr) in &workload.host_vars {
            let domain = catalog.attribute(attr).domain_size;
            b = b.with_value(var, ((i % 10) as f64 / 100.0 * domain) as i64);
        }
        skewed.push(b);
    }
    for b in &skewed {
        let _ = module.invoke(catalog, &env, b);
    }
    assert!(module.has_shrunk());

    let after = AccessModule::new(module.plan().clone()).stats(&catalog.config);
    println!(
        "after 100 skewed invocations: {} nodes, module {} bytes, activation {:.4}s \
         ({}x smaller, {} choose-plans left)",
        after.nodes,
        after.modeled_bytes,
        after.activation_seconds,
        before.nodes / after.nodes.max(1),
        dag::choose_plan_count(module.plan()),
    );

    // The risk: a binding outside the observed distribution.
    let mut hot = Bindings::new();
    for &(var, attr) in &workload.host_vars {
        let domain = catalog.attribute(attr).domain_size;
        hot = hot.with_value(var, (0.95 * domain) as i64);
    }
    let full = evaluate_startup(&plan, catalog, &env, &hot).predicted_run_seconds;
    let lean = evaluate_startup(module.plan(), catalog, &env, &hot).predicted_run_seconds;
    println!(
        "\nhigh-selectivity binding after shrinking: full plan {full:.3}s, \
         shrunk plan {lean:.3}s ({:.1}x regression — the documented risk of the heuristic)",
        lean / full
    );

    let _ = SystemConfig::paper_1994();
}
