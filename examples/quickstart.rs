//! Quickstart: the paper's Figure 1, end to end.
//!
//! An embedded query `SELECT * FROM orders WHERE amount < :x` cannot be
//! costed at compile-time — the selectivity of `:x` is unknown, so the
//! file-scan plan and the B-tree plan have *incomparable* costs. The
//! optimizer keeps both under a choose-plan operator; at start-up-time the
//! decision procedure re-evaluates their cost functions with `:x` bound
//! and runs the cheaper plan.
//!
//! Run with `cargo run --example quickstart`.

use dqep::algebra::{CompareOp, HostVar, LogicalExpr, SelectPred};
use dqep::catalog::{CatalogBuilder, SystemConfig};
use dqep::cost::{Bindings, Environment};
use dqep::executor::execute_plan;
use dqep::optimizer::Optimizer;
use dqep::plan::{render_plan, evaluate_startup};
use dqep::storage::StoredDatabase;

fn main() {
    // A 1,000-record relation with an unclustered B-tree on `amount`.
    let catalog = CatalogBuilder::new(SystemConfig::paper_1994())
        .relation("orders", 1_000, 512, |r| {
            r.attr("amount", 1_000.0).attr("customer", 400.0).btree("amount", false)
        })
        .build()
        .expect("catalog");
    let orders = catalog.relation_by_name("orders").expect("relation");

    // SELECT * FROM orders WHERE amount < :x
    let query = LogicalExpr::get(orders.id).select(SelectPred::unbound(
        orders.attr_id("amount").expect("attr"),
        CompareOp::Lt,
        HostVar(0),
    ));

    // Compile-time: one optimization, producing a dynamic plan.
    let env = Environment::dynamic_compile_time(&catalog.config);
    let result = Optimizer::new(&catalog, &env).optimize(&query).expect("optimize");
    println!("== Dynamic plan (compile-time) ==\n{}", render_plan(&result.plan));
    println!(
        "plan nodes: {}, contained static plans: {}\n",
        result.stats.plan_nodes, result.stats.contained_plans
    );

    // Start-up-time: bind :x and let the choose-plan decide.
    let db = StoredDatabase::generate(&catalog, 42);
    for (label, x) in [("selective (:x = 10)", 10i64), ("unselective (:x = 900)", 900)] {
        let bindings = Bindings::new().with_value(HostVar(0), x);
        let startup = evaluate_startup(&result.plan, &catalog, &env, &bindings);
        let (summary, _) = execute_plan(&result.plan, &db, &catalog, &env, &bindings)
            .expect("execute");
        println!("== {label} ==");
        println!("chosen plan:\n{}", render_plan(&startup.resolved));
        println!(
            "predicted {:.4}s | executed (simulated) {:.4}s | {} rows\n",
            startup.predicted_run_seconds,
            summary.simulated_seconds(&catalog.config),
            summary.rows
        );
    }
}
