//! `check-explain` — validates observability artifacts against their
//! schemas: EXPLAIN ANALYZE JSON documents (produced by `dqep-cli
//! --explain-analyze --json`), event-journal dumps (`--journal-json`),
//! and Prometheus text expositions (`--metrics-prom`).
//!
//! ```text
//! check-explain [--mode explain|journal|prom] FILE...
//! ```
//!
//! The default mode is `explain`. Exits 0 when every file conforms, 1 on
//! the first violation (with the reason on stderr), 2 on usage or I/O
//! errors. CI runs this over the artifacts of the observability and
//! trace smoke jobs, so schema regressions fail the build instead of
//! silently breaking downstream consumers.

use std::process::ExitCode;

use dqep_executor::{validate_explain_json, validate_journal_json};
use dqep_service::lint_prometheus;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut mode = "explain".to_string();
    let mut files: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--mode" {
            match args.get(i + 1) {
                Some(m) => mode = m.clone(),
                None => {
                    eprintln!("check-explain: --mode needs a value");
                    return ExitCode::from(2);
                }
            }
            i += 2;
        } else {
            files.push(args[i].clone());
            i += 1;
        }
    }
    let validate: fn(&str) -> Result<(), String> = match mode.as_str() {
        "explain" => validate_explain_json,
        "journal" => validate_journal_json,
        "prom" => lint_prometheus,
        other => {
            eprintln!("check-explain: unknown mode `{other}` (explain|journal|prom)");
            return ExitCode::from(2);
        }
    };
    if files.is_empty() {
        eprintln!("usage: check-explain [--mode explain|journal|prom] FILE...");
        return ExitCode::from(2);
    }
    for path in &files {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("check-explain: {path}: {e}");
                return ExitCode::from(2);
            }
        };
        if let Err(reason) = validate(&text) {
            eprintln!("check-explain: {path}: schema violation ({mode}): {reason}");
            return ExitCode::from(1);
        }
        println!("{path}: ok ({mode})");
    }
    ExitCode::SUCCESS
}
