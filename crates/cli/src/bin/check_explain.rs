//! `check-explain` — validates an EXPLAIN ANALYZE JSON document
//! (produced by `dqep-cli --explain-analyze --json`) against the schema.
//!
//! ```text
//! check-explain FILE...
//! ```
//!
//! Exits 0 when every file conforms, 1 on the first violation (with the
//! reason on stderr), 2 on usage or I/O errors. CI runs this over the
//! artifact of the observability smoke job, so schema regressions fail
//! the build instead of silently breaking downstream consumers.

use std::process::ExitCode;

use dqep_executor::validate_explain_json;

fn main() -> ExitCode {
    let files: Vec<String> = std::env::args().skip(1).collect();
    if files.is_empty() {
        eprintln!("usage: check-explain FILE...");
        return ExitCode::from(2);
    }
    for path in &files {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("check-explain: {path}: {e}");
                return ExitCode::from(2);
            }
        };
        if let Err(reason) = validate_explain_json(&text) {
            eprintln!("check-explain: {path}: schema violation: {reason}");
            return ExitCode::from(1);
        }
        println!("{path}: ok");
    }
    ExitCode::SUCCESS
}
