//! `dqep` — explain and run embedded-SQL queries against a synthetic
//! database, through the dynamic-plan optimizer.
//!
//! ```text
//! dqep --sql "SELECT * FROM R1 WHERE R1.a < :x" --bind x=50 --run
//!
//! Options:
//!   --sql TEXT          the query (relations R1..Rn: attrs a, jl, jr)
//!   --relations N       chain-catalog size (default 3)
//!   --seed S            catalog + data seed (default 42)
//!   --skew Z            zipf exponent for stored values (default: uniform)
//!   --histograms B      build B-bucket histograms before optimizing
//!   --mode M            dynamic (default) | static
//!   --bind NAME=VALUE   host-variable binding (repeatable)
//!   --memory PAGES      memory grant at start-up
//!   --explain           print the compile-time plan (default)
//!   --run               execute on generated data and report simulated time
//!   --explain-analyze   execute with per-operator tracing and print the
//!                       plan annotated with interval estimates vs actuals
//!                       (drift flags) and the choose-plan audit trail
//!   --json              with --explain-analyze: print only the JSON
//!                       document (machine-readable, schema-stable)
//!   --adaptive          run with one pilot-observation round (§7)
//!   --reopt             run with mid-query re-optimization: checkpoint the
//!                       pipeline breakers, re-arbitrate the remainder when
//!                       an observed cardinality escapes its estimate
//!                       (also applies to --serve sessions)
//!   --reopt-budget N    max re-plans per query (default 2; requires --reopt)
//!   --dop N             intra-query parallelism: N worker threads for the
//!                       parallel scan / hash join / sort (default 1)
//!   --dot PATH          write the plan DAG as Graphviz
//!
//! Robustness (with --run):
//!   --fault-plan SPEC   inject storage faults, e.g. nth-read=5,read-prob=0.01
//!   --memory-limit B    enforce a B-byte memory grant (governor)
//!   --max-rows N        abort after N result rows
//!   --max-io N          abort after N accounted page I/Os
//!   --timeout-ms MS     wall-clock deadline
//!
//! Serving (instead of --sql):
//!   --serve FILE        run a workload file through the prepared-query
//!                       service: one `SQL @ var=value,...` per line
//!                       (`memory=PAGES` sets the grant; `#` comments)
//!   --workers N         concurrent session workers (default 4)
//!   --repeat N          run the workload file N times (default 1)
//!   --service-memory B  global admission memory pool in bytes
//!   --queue-timeout-ms  admission timeout per session
//!   --io-latency-us U   simulated device latency per page I/O
//!   --dop N             per-session parallelism cap (bounded by each
//!                       session's admitted memory grant)
//!   --metrics-json PATH write the service metrics snapshot (latency
//!                       histograms, cache rates, refusal counters) as
//!                       JSON on shutdown; `-` prints it to stdout
//!
//! Live views (instead of --sql / --serve):
//!   --live FILE         run a live workload: register views, interleave
//!                       insert/delete batches with reads, and keep every
//!                       view incrementally consistent (drift re-fires
//!                       choose-plan arbitration). Lines:
//!                         view NAME = SQL [@ v1=40,...]
//!                         insert REL v1 v2 ...  /  delete REL v1 v2 ...
//!                         commit  /  read NAME
//!   --explain-json PATH write the EXPLAIN ANALYZE JSON of the most
//!                       recently registered view's materialization;
//!                       `-` prints it to stdout
//!                       (--metrics-json and the robustness flags apply
//!                       to --live as well)
//! ```
//!
//! Sharded execution (with --sql --run):
//!   --shards N          partition the data across N shard replicas and
//!                       execute with repartitioning network exchange;
//!                       choose-plan arbitration runs per shard against
//!                       shard-local statistics (prints per-shard winners,
//!                       divergent nodes, and wire traffic)
//!   --routing R         base-data placement: hash (default) | range
//!   --force-uniform     resolve the plan once against global statistics
//!                       and broadcast it (the single-node-winner baseline)
//!   --net-latency-us U  per-frame link latency, microseconds
//!   --net-bandwidth B   link bandwidth in bytes/second (0 = unpaced)
//!   --net-jitter-us U   deterministic per-frame jitter bound
//!   --link-fault SPEC   drop frames, e.g. nth-frame=3,max-retransmit=2
//!                       (--metrics-json writes the shard metrics
//!                       snapshot; --io-latency-us paces each replica;
//!                       --explain-analyze prints the merged distributed
//!                       trace: coordinator, per-shard subtrees, and
//!                       network send/receive spans with wire accounting)
//!
//! Observability (any mode):
//!   --journal-json PATH dump the always-on structured event journal
//!                       (arbitration winners, interval escapes, re-plans,
//!                       degradation steps, live drift, shard divergence,
//!                       link faults, admission refusals) as JSON on exit,
//!                       fatal-error exits included; `-` prints to stdout
//!   --metrics-prom PATH write the metrics snapshot in Prometheus text
//!                       exposition format (requires --serve/--live/--shards)
//!   --metrics-interval-ms MS
//!                       sample metrics every MS milliseconds while the
//!                       workload runs: appends one JSON-lines window per
//!                       tick to the --metrics-json file and rewrites the
//!                       --metrics-prom file each tick
//!
//! Exit codes distinguish failure classes — see [`dqep::DqepError`].

use std::process::ExitCode;

use dqep::DqepError;
use dqep_catalog::{make_chain_catalog, SyntheticSpec, SystemConfig};
use dqep_core::Optimizer;
use dqep_cost::{Bindings, Environment};
use dqep_executor::{
    execute_adaptive, execute_plan_dop, execute_plan_reopt, execute_plan_reopt_traced,
    execute_plan_traced, explain_json, render_explain, ExecMode, ReoptConfig, ResourceLimits,
};
use dqep_plan::{evaluate_startup, render_plan, to_dot};
use dqep_service::{
    LiveConfig, LiveViewRegistry, MetricsRegistry, MetricsReport, QueryService, Request,
    ServiceConfig, ServiceStats, WriteOp,
};
use dqep_sql::parse_query;
use dqep_storage::{install_histograms, FaultPlan, StoredDatabase, ValueDistribution};

#[derive(Debug)]
struct Args {
    sql: String,
    relations: usize,
    seed: u64,
    skew: Option<f64>,
    histograms: Option<usize>,
    mode: String,
    binds: Vec<(String, i64)>,
    memory: Option<f64>,
    run: bool,
    explain_analyze: bool,
    json: bool,
    adaptive: bool,
    reopt: bool,
    reopt_budget: Option<u32>,
    dot: Option<String>,
    fault_plan: Option<String>,
    memory_limit: Option<u64>,
    max_rows: Option<u64>,
    max_io: Option<u64>,
    timeout_ms: Option<u64>,
    serve: Option<String>,
    live: Option<String>,
    explain_json_path: Option<String>,
    dop: usize,
    workers: usize,
    repeat: usize,
    service_memory: u64,
    queue_timeout_ms: u64,
    io_latency_us: u64,
    metrics_json: Option<String>,
    metrics_prom: Option<String>,
    metrics_interval_ms: Option<u64>,
    journal_json: Option<String>,
    shards: Option<usize>,
    routing: String,
    force_uniform: bool,
    net_latency_us: u64,
    net_bandwidth: u64,
    net_jitter_us: u64,
    link_fault: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    parse_argv(&argv)
}

fn parse_argv(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        sql: String::new(),
        relations: 3,
        seed: 42,
        skew: None,
        histograms: None,
        mode: "dynamic".to_string(),
        binds: Vec::new(),
        memory: None,
        run: false,
        explain_analyze: false,
        json: false,
        adaptive: false,
        reopt: false,
        reopt_budget: None,
        dot: None,
        fault_plan: None,
        memory_limit: None,
        max_rows: None,
        max_io: None,
        timeout_ms: None,
        serve: None,
        live: None,
        explain_json_path: None,
        dop: 1,
        workers: 4,
        repeat: 1,
        service_memory: 64 << 20,
        queue_timeout_ms: 10_000,
        io_latency_us: 0,
        metrics_json: None,
        metrics_prom: None,
        metrics_interval_ms: None,
        journal_json: None,
        shards: None,
        routing: "hash".to_string(),
        force_uniform: false,
        net_latency_us: 0,
        net_bandwidth: 0,
        net_jitter_us: 0,
        link_fault: None,
    };
    let mut i = 0;
    let value = |argv: &[String], i: usize, flag: &str| -> Result<String, String> {
        argv.get(i + 1)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--sql" => {
                args.sql = value(argv, i, "--sql")?;
                i += 2;
            }
            "--relations" => {
                args.relations = value(argv, i, "--relations")?
                    .parse()
                    .map_err(|e| format!("--relations: {e}"))?;
                i += 2;
            }
            "--seed" => {
                args.seed = value(argv, i, "--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
                i += 2;
            }
            "--skew" => {
                args.skew = Some(
                    value(argv, i, "--skew")?
                        .parse()
                        .map_err(|e| format!("--skew: {e}"))?,
                );
                i += 2;
            }
            "--histograms" => {
                args.histograms = Some(
                    value(argv, i, "--histograms")?
                        .parse()
                        .map_err(|e| format!("--histograms: {e}"))?,
                );
                i += 2;
            }
            "--mode" => {
                args.mode = value(argv, i, "--mode")?;
                i += 2;
            }
            "--bind" => {
                let pair = value(argv, i, "--bind")?;
                let (name, v) = pair
                    .split_once('=')
                    .ok_or_else(|| format!("--bind expects NAME=VALUE, got `{pair}`"))?;
                args.binds.push((
                    name.to_string(),
                    v.parse().map_err(|e| format!("--bind {name}: {e}"))?,
                ));
                i += 2;
            }
            "--memory" => {
                args.memory = Some(
                    value(argv, i, "--memory")?
                        .parse()
                        .map_err(|e| format!("--memory: {e}"))?,
                );
                i += 2;
            }
            "--explain" => {
                i += 1;
            }
            "--run" => {
                args.run = true;
                i += 1;
            }
            "--explain-analyze" => {
                args.explain_analyze = true;
                args.run = true;
                i += 1;
            }
            "--json" => {
                args.json = true;
                i += 1;
            }
            "--adaptive" => {
                args.adaptive = true;
                args.run = true;
                i += 1;
            }
            "--reopt" => {
                args.reopt = true;
                args.run = true;
                i += 1;
            }
            "--reopt-budget" => {
                args.reopt_budget = Some(
                    value(argv, i, "--reopt-budget")?
                        .parse()
                        .map_err(|e| format!("--reopt-budget: {e}"))?,
                );
                i += 2;
            }
            "--dot" => {
                args.dot = Some(value(argv, i, "--dot")?);
                i += 2;
            }
            "--fault-plan" => {
                args.fault_plan = Some(value(argv, i, "--fault-plan")?);
                i += 2;
            }
            "--memory-limit" => {
                args.memory_limit = Some(
                    value(argv, i, "--memory-limit")?
                        .parse()
                        .map_err(|e| format!("--memory-limit: {e}"))?,
                );
                i += 2;
            }
            "--max-rows" => {
                args.max_rows = Some(
                    value(argv, i, "--max-rows")?
                        .parse()
                        .map_err(|e| format!("--max-rows: {e}"))?,
                );
                i += 2;
            }
            "--max-io" => {
                args.max_io = Some(
                    value(argv, i, "--max-io")?
                        .parse()
                        .map_err(|e| format!("--max-io: {e}"))?,
                );
                i += 2;
            }
            "--timeout-ms" => {
                args.timeout_ms = Some(
                    value(argv, i, "--timeout-ms")?
                        .parse()
                        .map_err(|e| format!("--timeout-ms: {e}"))?,
                );
                i += 2;
            }
            "--serve" => {
                args.serve = Some(value(argv, i, "--serve")?);
                i += 2;
            }
            "--live" => {
                args.live = Some(value(argv, i, "--live")?);
                i += 2;
            }
            "--explain-json" => {
                args.explain_json_path = Some(value(argv, i, "--explain-json")?);
                i += 2;
            }
            "--dop" => {
                args.dop = value(argv, i, "--dop")?
                    .parse()
                    .map_err(|e| format!("--dop: {e}"))?;
                if args.dop == 0 {
                    return Err("--dop must be at least 1".to_string());
                }
                i += 2;
            }
            "--workers" => {
                args.workers = value(argv, i, "--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
                i += 2;
            }
            "--repeat" => {
                args.repeat = value(argv, i, "--repeat")?
                    .parse()
                    .map_err(|e| format!("--repeat: {e}"))?;
                i += 2;
            }
            "--service-memory" => {
                args.service_memory = value(argv, i, "--service-memory")?
                    .parse()
                    .map_err(|e| format!("--service-memory: {e}"))?;
                i += 2;
            }
            "--queue-timeout-ms" => {
                args.queue_timeout_ms = value(argv, i, "--queue-timeout-ms")?
                    .parse()
                    .map_err(|e| format!("--queue-timeout-ms: {e}"))?;
                i += 2;
            }
            "--io-latency-us" => {
                args.io_latency_us = value(argv, i, "--io-latency-us")?
                    .parse()
                    .map_err(|e| format!("--io-latency-us: {e}"))?;
                i += 2;
            }
            "--metrics-json" => {
                args.metrics_json = Some(value(argv, i, "--metrics-json")?);
                i += 2;
            }
            "--metrics-prom" => {
                args.metrics_prom = Some(value(argv, i, "--metrics-prom")?);
                i += 2;
            }
            "--metrics-interval-ms" => {
                let ms: u64 = value(argv, i, "--metrics-interval-ms")?
                    .parse()
                    .map_err(|e| format!("--metrics-interval-ms: {e}"))?;
                if ms == 0 {
                    return Err("--metrics-interval-ms must be at least 1".to_string());
                }
                args.metrics_interval_ms = Some(ms);
                i += 2;
            }
            "--journal-json" => {
                args.journal_json = Some(value(argv, i, "--journal-json")?);
                i += 2;
            }
            "--shards" => {
                let n: usize = value(argv, i, "--shards")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?;
                if n == 0 {
                    return Err("--shards must be at least 1".to_string());
                }
                args.shards = Some(n);
                i += 2;
            }
            "--routing" => {
                args.routing = value(argv, i, "--routing")?;
                i += 2;
            }
            "--force-uniform" => {
                args.force_uniform = true;
                i += 1;
            }
            "--net-latency-us" => {
                args.net_latency_us = value(argv, i, "--net-latency-us")?
                    .parse()
                    .map_err(|e| format!("--net-latency-us: {e}"))?;
                i += 2;
            }
            "--net-bandwidth" => {
                args.net_bandwidth = value(argv, i, "--net-bandwidth")?
                    .parse()
                    .map_err(|e| format!("--net-bandwidth: {e}"))?;
                i += 2;
            }
            "--net-jitter-us" => {
                args.net_jitter_us = value(argv, i, "--net-jitter-us")?
                    .parse()
                    .map_err(|e| format!("--net-jitter-us: {e}"))?;
                i += 2;
            }
            "--link-fault" => {
                args.link_fault = Some(value(argv, i, "--link-fault")?);
                i += 2;
            }
            "--help" | "-h" => {
                return Err("usage: see `dqep` module docs (or the README)".to_string());
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if args.sql.is_empty() && args.serve.is_none() && args.live.is_none() {
        return Err("--sql (or --serve FILE, or --live FILE) is required".to_string());
    }
    let modes =
        [!args.sql.is_empty(), args.serve.is_some(), args.live.is_some()].iter().filter(|&&m| m).count();
    if modes > 1 {
        return Err("--sql, --serve, and --live are mutually exclusive".to_string());
    }
    if args.mode != "dynamic" && args.mode != "static" {
        return Err(format!("--mode must be dynamic or static, got `{}`", args.mode));
    }
    let governed = args.fault_plan.is_some()
        || args.memory_limit.is_some()
        || args.max_rows.is_some()
        || args.max_io.is_some()
        || args.timeout_ms.is_some();
    if governed && !args.run && args.live.is_none() {
        return Err("--fault-plan and resource limits require --run (or --live)".to_string());
    }
    if args.explain_analyze && args.adaptive {
        return Err("--explain-analyze and --adaptive are mutually exclusive".to_string());
    }
    if args.reopt && args.adaptive {
        return Err("--reopt and --adaptive are mutually exclusive".to_string());
    }
    if args.reopt_budget.is_some() && !args.reopt {
        return Err("--reopt-budget requires --reopt".to_string());
    }
    if args.explain_analyze && args.serve.is_some() {
        return Err("--explain-analyze requires --sql".to_string());
    }
    if args.json && !args.explain_analyze {
        return Err("--json requires --explain-analyze".to_string());
    }
    let workload_mode = args.serve.is_some() || args.live.is_some() || args.shards.is_some();
    if args.metrics_json.is_some() && !workload_mode {
        return Err("--metrics-json requires --serve, --live, or --shards".to_string());
    }
    if args.metrics_prom.is_some() && !workload_mode {
        return Err("--metrics-prom requires --serve, --live, or --shards".to_string());
    }
    if args.metrics_interval_ms.is_some()
        && args.metrics_json.is_none()
        && args.metrics_prom.is_none()
    {
        return Err("--metrics-interval-ms requires --metrics-json or --metrics-prom".to_string());
    }
    if args.shards.is_some() {
        if args.sql.is_empty() || !args.run {
            return Err("--shards requires --sql and --run".to_string());
        }
        if args.adaptive {
            return Err(
                "--shards supports --run/--reopt/--explain-analyze, not --adaptive".to_string()
            );
        }
        if args.routing != "hash" && args.routing != "range" {
            return Err(format!("--routing must be hash or range, got `{}`", args.routing));
        }
    } else {
        let net_flags = args.net_latency_us > 0
            || args.net_bandwidth > 0
            || args.net_jitter_us > 0
            || args.link_fault.is_some()
            || args.force_uniform;
        if net_flags {
            return Err(
                "--net-*/--link-fault/--force-uniform require --shards".to_string()
            );
        }
    }
    if args.explain_json_path.is_some() && args.live.is_none() {
        return Err("--explain-json requires --live".to_string());
    }
    if args.live.is_some() && (args.explain_analyze || args.adaptive || args.reopt) {
        return Err("--live has its own execution mode; drop --explain-analyze/--adaptive/--reopt"
            .to_string());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            let e = DqepError::Usage(e);
            eprintln!("dqep: {e}");
            return ExitCode::from(e.exit_code());
        }
    };
    let result = run(&args);
    // The flight recorder is flushed on every exit path — fatal errors
    // included — so post-mortem debugging always has the event journal.
    if let Err(e) = dump_journal(&args) {
        eprintln!("dqep: journal dump failed: {e}");
    }
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("dqep: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}

/// Writes the structured event journal to the `--journal-json`
/// destination (`-` = stdout). A no-op without the flag.
fn dump_journal(args: &Args) -> Result<(), DqepError> {
    let Some(dest) = args.journal_json.as_deref() else {
        return Ok(());
    };
    let json = dqep_executor::journal().to_json();
    match dest {
        "-" => println!("{json}"),
        path => {
            std::fs::write(path, &json)?;
            eprintln!("wrote event journal to {path}");
        }
    }
    Ok(())
}

/// Writes the shutdown metrics snapshot to the `--metrics-json` and
/// `--metrics-prom` destinations. With `--metrics-interval-ms` the JSON
/// file is an append-only time series, so the final snapshot appends one
/// last line instead of replacing the windows sampled during the run.
fn write_metric_outputs(args: &Args, report: &MetricsReport) -> Result<(), DqepError> {
    match args.metrics_json.as_deref() {
        None => {}
        Some("-") => println!("\n-- metrics (shutdown snapshot):\n{}", report.to_json()),
        Some(path) if args.metrics_interval_ms.is_some() => {
            append_line(
                path,
                &format!("{{\"window\": \"final\", \"metrics\": {}}}", report.to_json_line()),
            )?;
            eprintln!("appended final metrics window to {path}");
        }
        Some(path) => {
            std::fs::write(path, report.to_json())?;
            eprintln!("wrote metrics snapshot to {path}");
        }
    }
    match args.metrics_prom.as_deref() {
        None => {}
        Some("-") => print!("\n{}", report.to_prometheus()),
        Some(path) => {
            std::fs::write(path, report.to_prometheus())?;
            eprintln!("wrote Prometheus exposition to {path}");
        }
    }
    Ok(())
}

/// Appends one line to `path`, creating the file if needed.
fn append_line(path: &str, line: &str) -> std::io::Result<()> {
    use std::io::Write as _;
    let mut f = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
    writeln!(f, "{line}")
}

/// Runs `body` under a background metrics sampler: every
/// `--metrics-interval-ms` window it appends one JSON-lines snapshot to
/// the `--metrics-json` file and rewrites the `--metrics-prom` file, so
/// the exports are a live time series rather than a shutdown-only dump.
/// Without the flag it is exactly `body()`.
fn with_sampler<T>(
    args: &Args,
    snapshot: &(dyn Fn() -> MetricsReport + Sync),
    body: impl FnOnce() -> T,
) -> T {
    let Some(interval) = args.metrics_interval_ms else {
        return body();
    };
    use std::sync::atomic::{AtomicBool, Ordering};
    let stop = AtomicBool::new(false);
    let started = std::time::Instant::now();
    std::thread::scope(|scope| {
        let sampler = scope.spawn(|| {
            let jsonl = args.metrics_json.as_deref().filter(|p| *p != "-");
            let prom = args.metrics_prom.as_deref().filter(|p| *p != "-");
            let period = std::time::Duration::from_millis(interval);
            let nap = std::time::Duration::from_millis(interval.clamp(1, 5));
            let mut window = 0u64;
            loop {
                let deadline = std::time::Instant::now() + period;
                while std::time::Instant::now() < deadline {
                    if stop.load(Ordering::Relaxed) {
                        return;
                    }
                    std::thread::sleep(nap);
                }
                window += 1;
                let report = snapshot();
                if let Some(path) = jsonl {
                    let line = format!(
                        "{{\"window\": {window}, \"elapsed_ms\": {}, \"metrics\": {}}}",
                        started.elapsed().as_millis(),
                        report.to_json_line(),
                    );
                    if append_line(path, &line).is_err() {
                        return; // an unwritable path will not get better
                    }
                }
                if let Some(path) = prom {
                    if std::fs::write(path, report.to_prometheus()).is_err() {
                        return;
                    }
                }
            }
        });
        let out = body();
        stop.store(true, Ordering::Relaxed);
        let _ = sampler.join();
        out
    })
}

fn run(args: &Args) -> Result<(), DqepError> {
    if args.serve.is_some() {
        return serve(args);
    }
    if args.live.is_some() {
        return run_live(args);
    }
    if args.shards.is_some() {
        return run_sharded(args);
    }
    let mut catalog = make_chain_catalog(
        &SyntheticSpec::paper(args.relations, args.seed),
        SystemConfig::paper_1994(),
    );

    // Generate data first when statistics or execution are requested.
    let dist = match args.skew {
        Some(z) => ValueDistribution::Zipf { exponent: z },
        None => ValueDistribution::Uniform,
    };
    let needs_db = args.run || args.histograms.is_some();
    let db = needs_db.then(|| StoredDatabase::generate_with(&catalog, args.seed, dist));
    if let (Some(buckets), Some(db)) = (args.histograms, &db) {
        install_histograms(db, &mut catalog, buckets)?;
        eprintln!("built {buckets}-bucket histograms over all attributes");
    }
    if let (Some(spec), Some(db)) = (&args.fault_plan, &db) {
        let plan = FaultPlan::parse(spec)
            .map_err(|e| DqepError::Usage(format!("--fault-plan: {e}")))?;
        db.disk.set_fault_plan(plan);
        eprintln!("fault plan armed: {spec}");
    }

    let query = parse_query(&args.sql, &catalog)?;
    let env = if args.mode == "static" {
        Environment::static_compile_time(&catalog.config)
    } else {
        Environment::dynamic_compile_time(&catalog.config)
    };
    let result = Optimizer::new(&catalog, &env)
        .optimize_with_props(&query.expr, query.required_props())?;

    // With --json, stdout carries only the JSON document (clean for
    // redirection); narration stays on stderr or is dropped.
    if !args.json {
        println!("-- {} plan ({} nodes, {} choose-plans, {:.3e} contained static plans)",
            args.mode,
            result.stats.plan_nodes,
            result.stats.choose_plans,
            result.stats.contained_plans,
        );
        print!("{}", render_plan(&result.plan));
    }

    if let Some(path) = &args.dot {
        std::fs::write(path, to_dot(&result.plan))?;
        eprintln!("wrote {path}");
    }

    // Bindings.
    let mut bindings = Bindings::new();
    for (name, v) in &args.binds {
        let var = query
            .host_var(name)
            .ok_or_else(|| DqepError::Usage(format!("unknown host variable :{name}")))?;
        bindings = bindings.with_value(var, *v);
    }
    if let Some(m) = args.memory {
        bindings = bindings.with_memory(m);
    }

    let missing: Vec<&str> = query
        .host_var_names()
        .into_iter()
        .filter(|n| !args.binds.iter().any(|(b, _)| b == n))
        .collect();
    if !args.binds.is_empty() || query.host_vars.is_empty() {
        if !missing.is_empty() {
            return Err(DqepError::Usage(format!(
                "missing --bind for: {}",
                missing.join(", ")
            )));
        }
        if !args.json {
            let startup = evaluate_startup(&result.plan, &catalog, &env, &bindings);
            println!(
                "\n-- start-up decision ({} nodes costed, {} decisions, predicted {:.4}s)",
                startup.evaluated_nodes,
                startup.decisions.len(),
                startup.predicted_run_seconds
            );
            print!("{}", render_plan(&startup.resolved));
        }

        if args.run {
            let db = db.as_ref().expect("generated above");
            if args.reopt {
                let limits = ResourceLimits {
                    memory_bytes: args.memory_limit,
                    max_rows: args.max_rows,
                    max_io: args.max_io,
                    wall_clock_ms: args.timeout_ms,
                };
                let reopt_config = ReoptConfig {
                    max_replans: args.reopt_budget.unwrap_or(2),
                    ..ReoptConfig::default()
                };
                let outcome = if args.explain_analyze {
                    let (outcome, report) = execute_plan_reopt_traced(
                        &result.plan,
                        db,
                        &catalog,
                        &env,
                        &bindings,
                        limits,
                        ExecMode::default(),
                        args.dop,
                        reopt_config,
                    )?;
                    if args.json {
                        println!("{}", explain_json(&report, &catalog.config));
                    } else {
                        print!("\n{}", render_explain(&report, &catalog.config));
                    }
                    outcome
                } else {
                    execute_plan_reopt(
                        &result.plan,
                        db,
                        &catalog,
                        &env,
                        &bindings,
                        limits,
                        ExecMode::default(),
                        args.dop,
                        reopt_config,
                    )?
                };
                if !args.json {
                    let c = outcome.report.counters;
                    println!(
                        "\n-- re-optimizing execution: {} checkpoint(s), {} escape(s), \
                         {}/{} replan(s) adopted, {} memory degradation(s), {} fallback(s)",
                        c.checkpoints,
                        c.escapes,
                        c.replans_adopted,
                        c.replans_attempted,
                        c.memory_degradations,
                        c.fallbacks,
                    );
                    println!("\n-- executed: {}", outcome.summary.describe(&catalog.config));
                }
            } else if args.adaptive {
                let r = execute_adaptive(&result.plan, db, &catalog, &env, &bindings)?;
                println!(
                    "\n-- adaptive execution: {} rows, main {:.4}s + pilot {:.4}s (observed {:?} rows)",
                    r.main.rows,
                    r.main.simulated_seconds(&catalog.config),
                    r.pilot.map(|p| p.simulated_seconds(&catalog.config)).unwrap_or(0.0),
                    r.observed_rows
                );
            } else {
                let limits = ResourceLimits {
                    memory_bytes: args.memory_limit,
                    max_rows: args.max_rows,
                    max_io: args.max_io,
                    wall_clock_ms: args.timeout_ms,
                };
                let summary = if args.explain_analyze {
                    let (summary, _, report) = execute_plan_traced(
                        &result.plan,
                        db,
                        &catalog,
                        &env,
                        &bindings,
                        limits,
                        ExecMode::default(),
                        args.dop,
                    )?;
                    if args.json {
                        println!("{}", explain_json(&report, &catalog.config));
                    } else {
                        print!("\n{}", render_explain(&report, &catalog.config));
                    }
                    summary
                } else {
                    let (summary, _) = execute_plan_dop(
                        &result.plan,
                        db,
                        &catalog,
                        &env,
                        &bindings,
                        limits,
                        ExecMode::default(),
                        args.dop,
                    )?;
                    summary
                };
                if !args.json {
                    if args.dop > 1 {
                        println!("\n-- parallel execution at dop {}", args.dop);
                    }
                    // Both CLI paths (--run and --serve) share the
                    // ExecSummary::describe renderer, so the formats
                    // cannot drift apart. Single-shot runs bypass the
                    // prepared-query service, so both caches report "-".
                    println!("\n-- executed: {}", summary.describe(&catalog.config));
                    if summary.fallbacks > 0 {
                        println!(
                            "-- {} choose-plan fallback(s): a preferred alternative failed \
                             retryably and execution degraded to the next-best plan",
                            summary.fallbacks
                        );
                    }
                }
            }
        }
    } else if args.run {
        return Err(DqepError::Usage(
            "--run needs --bind for every host variable".to_string(),
        ));
    }
    Ok(())
}


/// One line of a `--live` workload file.
#[derive(Debug, Clone, PartialEq)]
enum LiveCmd {
    /// `view NAME = SQL [@ name=value,...]`
    View {
        name: String,
        sql: String,
        binds: Vec<(String, i64)>,
    },
    /// `insert REL v1 v2 ...` / `delete REL v1 v2 ...`
    Write {
        delete: bool,
        relation: String,
        values: Vec<i64>,
    },
    /// `commit` — apply the pending write batch to storage and views.
    Commit,
    /// `read NAME` — print the view's current cardinality.
    Read { name: String },
}

/// Parses a `--live` workload file: `view`/`insert`/`delete`/`commit`/
/// `read` lines, `#` comments and blanks skipped.
fn parse_live(text: &str) -> Result<Vec<LiveCmd>, String> {
    let mut out = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |m: String| format!("line {}: {m}", idx + 1);
        let (word, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
        let rest = rest.trim();
        match word {
            "view" => {
                let (name, stmt) = rest
                    .split_once('=')
                    .ok_or_else(|| err("view expects `view NAME = SQL`".into()))?;
                let (sql, bind_text) = match stmt.rsplit_once('@') {
                    Some((sql, b)) => (sql.trim(), b.trim()),
                    None => (stmt.trim(), ""),
                };
                let mut binds = Vec::new();
                for pair in bind_text.split(',').map(str::trim).filter(|p| !p.is_empty()) {
                    let (n, v) = pair
                        .split_once('=')
                        .ok_or_else(|| err(format!("binding `{pair}` is not NAME=VALUE")))?;
                    binds.push((
                        n.trim().to_string(),
                        v.trim().parse().map_err(|e| err(format!("{n}: {e}")))?,
                    ));
                }
                out.push(LiveCmd::View {
                    name: name.trim().to_string(),
                    sql: sql.to_string(),
                    binds,
                });
            }
            "insert" | "delete" => {
                let mut parts = rest.split_whitespace();
                let relation = parts
                    .next()
                    .ok_or_else(|| err(format!("{word} expects `{word} REL v1 v2 ...`")))?
                    .to_string();
                let values: Vec<i64> = parts
                    .map(|v| v.parse().map_err(|e| err(format!("{v}: {e}"))))
                    .collect::<Result<_, _>>()?;
                if values.is_empty() {
                    return Err(err(format!("{word} {relation}: no values")));
                }
                out.push(LiveCmd::Write {
                    delete: word == "delete",
                    relation,
                    values,
                });
            }
            "commit" => out.push(LiveCmd::Commit),
            "read" => {
                if rest.is_empty() {
                    return Err(err("read expects a view name".into()));
                }
                out.push(LiveCmd::Read { name: rest.to_string() });
            }
            other => return Err(err(format!("unknown live command `{other}`"))),
        }
    }
    Ok(out)
}

/// Runs a `--live` workload: registers views against an owned mutable
/// database, applies interleaved write batches through the storage write
/// path, keeps every view incrementally consistent, and reports drift
/// re-arbitrations.
fn run_live(args: &Args) -> Result<(), DqepError> {
    let path = args.live.as_ref().expect("checked by run()");
    let text = std::fs::read_to_string(path)?;
    let cmds = parse_live(&text).map_err(DqepError::Usage)?;
    if cmds.is_empty() {
        return Err(DqepError::Usage(format!("{path}: no commands")));
    }

    let mut catalog = make_chain_catalog(
        &SyntheticSpec::paper(args.relations, args.seed),
        SystemConfig::paper_1994(),
    );
    let dist = match args.skew {
        Some(z) => ValueDistribution::Zipf { exponent: z },
        None => ValueDistribution::Uniform,
    };
    let db = StoredDatabase::generate_with(&catalog, args.seed, dist);
    let buckets = args.histograms.unwrap_or(16);
    install_histograms(&db, &mut catalog, buckets)?;

    let env = if args.mode == "static" {
        Environment::static_compile_time(&catalog.config)
    } else {
        Environment::dynamic_compile_time(&catalog.config)
    };
    let metrics = std::sync::Arc::new(MetricsRegistry::new());
    let config = LiveConfig {
        limits: ResourceLimits {
            memory_bytes: args.memory_limit,
            max_rows: args.max_rows,
            max_io: args.max_io,
            wall_clock_ms: args.timeout_ms,
        },
        dop: args.dop,
        histogram_buckets: buckets,
        ..LiveConfig::default()
    };
    let mut registry =
        LiveViewRegistry::new(catalog, db, env, config, std::sync::Arc::clone(&metrics));
    if let Some(spec) = &args.fault_plan {
        let plan =
            FaultPlan::parse(spec).map_err(|e| DqepError::Usage(format!("--fault-plan: {e}")))?;
        registry.database_mut().disk.set_fault_plan(plan);
        eprintln!("fault plan armed: {spec}");
    }

    let mut pending: Vec<WriteOp> = Vec::new();
    let flush = |registry: &mut LiveViewRegistry,
                     pending: &mut Vec<WriteOp>|
     -> Result<(), DqepError> {
        if pending.is_empty() {
            return Ok(());
        }
        let outcome = registry.commit(pending)?;
        println!(
            "-- commit: {}/{} op(s) applied, {} delta row(s) propagated, \
             {} re-arbitration(s), {} plan switch(es), {} fallback(s){}",
            outcome.applied,
            outcome.attempted,
            outcome.rows_propagated,
            outcome.rearbitrations,
            outcome.plan_switches,
            outcome.fallbacks,
            match &outcome.storage_error {
                Some(e) => format!(" — batch cut short by storage fault: {e}"),
                None => String::new(),
            },
        );
        pending.clear();
        Ok(())
    };

    // The workload runs under the live sampler; the metrics snapshot is
    // written afterwards whatever the outcome, so a failing commit still
    // leaves a usable post-mortem export.
    let snapshot = || metrics.report(ServiceStats::default());
    let result = with_sampler(args, &snapshot, || -> Result<(), DqepError> {
        for cmd in &cmds {
            match cmd {
                LiveCmd::View { name, sql, binds } => {
                    // Writes before a registration must be visible to it.
                    flush(&mut registry, &mut pending)?;
                    let binds: Vec<(&str, i64)> =
                        binds.iter().map(|(n, v)| (n.as_str(), *v)).collect();
                    registry.register(name, sql, &binds)?;
                    let rows = registry.snapshot(name).map(|r| r.len()).unwrap_or(0);
                    println!("-- view {name}: registered, {rows} row(s) materialized");
                }
                LiveCmd::Write { delete, relation, values } => {
                    let rel = registry
                        .catalog()
                        .relation_by_name(relation)
                        .map_err(|e| DqepError::Usage(e.to_string()))?
                        .id;
                    pending.push(if *delete {
                        WriteOp::Delete { relation: rel, values: values.clone() }
                    } else {
                        WriteOp::Insert { relation: rel, values: values.clone() }
                    });
                }
                LiveCmd::Commit => flush(&mut registry, &mut pending)?,
                LiveCmd::Read { name } => match registry.snapshot(name) {
                    Some(rows) => println!("-- read {name}: {} row(s)", rows.len()),
                    None => return Err(DqepError::Usage(format!("unknown view `{name}`"))),
                },
            }
        }
        // A trailing uncommitted batch is committed, not dropped.
        flush(&mut registry, &mut pending)?;

        let views = registry.views();
        println!(
            "\n-- {} view(s), {} delta batch(es), {} row(s) propagated, {} re-arbitration(s)",
            metrics.live_views_registered(),
            metrics.live_delta_batches(),
            metrics.live_rows_propagated(),
            metrics.live_rearbitrations(),
        );
        for v in &views {
            println!(
                "--   {}: {} row(s), decisions {:?}, {} re-arbitration(s), {} fallback(s)",
                v.name, v.rows, v.decisions, v.rearbitrations, v.fallbacks
            );
        }

        if let Some(dest) = args.explain_json_path.as_deref() {
            let last = views
                .last()
                .ok_or_else(|| DqepError::Usage("no view registered for --explain-json".into()))?;
            let doc = registry
                .explain_json(&last.name)
                .expect("registered views have a materialization trace");
            match dest {
                "-" => println!("{doc}"),
                path => {
                    std::fs::write(path, doc)?;
                    eprintln!("wrote EXPLAIN ANALYZE JSON of view `{}` to {path}", last.name);
                }
            }
        }
        Ok(())
    });
    write_metric_outputs(args, &metrics.report(ServiceStats::default()))?;
    result
}

/// Parses a workload file: one statement per line, optional
/// `@ name=value,...` binding suffix (`memory=PAGES` sets the grant),
/// `#` comments and blank lines skipped.
fn parse_workload(text: &str) -> Result<Vec<Request>, String> {
    let mut out = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (sql, binds) = match line.rsplit_once('@') {
            Some((s, b)) => (s.trim(), b.trim()),
            None => (line, ""),
        };
        let mut req = Request::new(sql, &[]);
        for pair in binds.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (name, v) = pair
                .split_once('=')
                .ok_or_else(|| format!("line {}: binding `{pair}` is not NAME=VALUE", idx + 1))?;
            let (name, v) = (name.trim(), v.trim());
            if name == "memory" {
                req.memory_pages =
                    Some(v.parse().map_err(|e| format!("line {}: memory: {e}", idx + 1))?);
            } else {
                req.binds.push((
                    name.to_string(),
                    v.parse().map_err(|e| format!("line {}: {name}: {e}", idx + 1))?,
                ));
            }
        }
        out.push(req);
    }
    Ok(out)
}

/// Runs a workload file through the prepared-query service and prints
/// per-session results plus the service's cache and throughput summary.
/// `--shards N`: execute the query across N partitioned replicas with
/// repartitioning network exchange and per-shard dynamic-plan
/// arbitration, then report winners, divergence, and wire traffic.
fn run_sharded(args: &Args) -> Result<(), DqepError> {
    let catalog = make_chain_catalog(
        &SyntheticSpec::paper(args.relations, args.seed),
        SystemConfig::paper_1994(),
    );
    let link_faults = match &args.link_fault {
        Some(spec) => dqep_executor::LinkFaultPlan::parse(spec)
            .map_err(|e| DqepError::Usage(format!("--link-fault: {e}")))?,
        None => dqep_executor::LinkFaultPlan::none(),
    };
    let config = dqep_service::ShardConfig {
        shards: args.shards.unwrap_or(1),
        net: dqep_executor::NetConfig {
            latency_micros: args.net_latency_us,
            bytes_per_second: args.net_bandwidth,
            jitter_micros: args.net_jitter_us,
            seed: args.seed,
        },
        link_faults,
        routing: if args.routing == "range" {
            dqep_service::ShardRouting::Range { attr: 0 }
        } else {
            dqep_service::ShardRouting::Hash { attr: 0 }
        },
        histogram_buckets: args.histograms.unwrap_or(16),
        dop: args.dop,
        limits: ResourceLimits {
            memory_bytes: args.memory_limit,
            max_rows: args.max_rows,
            max_io: args.max_io,
            wall_clock_ms: args.timeout_ms,
        },
        io_latency_micros: args.io_latency_us,
        data_seed: args.seed,
        skew: args.skew,
        memory_pages: args.memory,
        reopt: args.reopt.then(|| ReoptConfig {
            max_replans: args.reopt_budget.unwrap_or(2),
            ..ReoptConfig::default()
        }),
        force_uniform_winner: args.force_uniform,
        trace: args.explain_analyze,
        ..dqep_service::ShardConfig::default()
    };
    let shards = config.shards;
    let system = catalog.config;
    // With --json, stdout carries only the JSON document.
    let narrate = !args.json;
    if narrate {
        println!(
            "-- sharded execution: {shards} shard(s), {} routing{}",
            args.routing,
            if args.force_uniform { ", forced uniform winner" } else { "" },
        );
    }

    let service = dqep_service::ShardedService::new(catalog, config);
    let binds: Vec<(&str, i64)> = args.binds.iter().map(|(n, v)| (n.as_str(), *v)).collect();
    let started = std::time::Instant::now();
    let snapshot = || service.metrics_report();
    let result = with_sampler(args, &snapshot, || service.execute(&args.sql, &binds));
    let wall = started.elapsed();

    let out = match result {
        Ok(out) => out,
        Err(e) => {
            // The metrics snapshot reflects the query whatever its outcome.
            write_metric_outputs(args, &service.metrics_report())?;
            return Err(DqepError::Service(e));
        }
    };
    if narrate {
        println!(
            "-- {} row(s) in {:.3}s wall; per-shard rows: {:?}",
            out.rows.len(),
            wall.as_secs_f64(),
            out.per_shard_rows,
        );
        for (s, audits) in out.audits.iter().enumerate() {
            let winners: Vec<String> = audits
                .iter()
                .map(|a| match a.winner {
                    Some(w) => format!("node {} -> alt {w}", a.node),
                    None => format!("node {} -> unresolved", a.node),
                })
                .collect();
            println!("-- shard {s}: {}", if winners.is_empty() {
                "no arbitration (resolved plan)".to_string()
            } else {
                winners.join(", ")
            });
        }
        if out.divergent_nodes.is_empty() {
            println!("-- winners agree on every choose node");
        } else {
            println!(
                "-- divergent winners on choose node(s) {:?} (local statistics disagree)",
                out.divergent_nodes
            );
        }
        println!(
            "-- network: {} frame(s), {} byte(s), {} retransmit(s), {} credit stall(s); \
             {} fallback(s)",
            out.net.frames, out.net.bytes, out.net.retransmits, out.net.credit_stalls,
            out.fallbacks,
        );
        // Per-link deltas for this query: each entry is one directed
        // channel's traffic, so the wire totals above decompose exactly.
        for l in &out.links {
            println!(
                "-- link {}->{}: {} frame(s), {} byte(s), {} retransmit(s), \
                 {} credit stall(s) ({:.3}ms waiting)",
                l.from,
                l.to,
                l.stats.frames,
                l.stats.bytes,
                l.stats.retransmits,
                l.stats.credit_stalls,
                l.stats.credit_wait_ns as f64 / 1e6,
            );
        }
    }
    if let Some(report) = &out.trace {
        if args.json {
            println!("{}", explain_json(report, &system));
        } else {
            print!("\n{}", render_explain(report, &system));
        }
    }
    write_metric_outputs(args, &service.metrics_report())
}

fn serve(args: &Args) -> Result<(), DqepError> {
    let path = args.serve.as_ref().expect("checked by run()");
    let text = std::fs::read_to_string(path)?;
    let workload = parse_workload(&text).map_err(DqepError::Usage)?;
    if workload.is_empty() {
        return Err(DqepError::Usage(format!("{path}: no statements")));
    }

    let mut catalog = make_chain_catalog(
        &SyntheticSpec::paper(args.relations, args.seed),
        SystemConfig::paper_1994(),
    );
    let dist = match args.skew {
        Some(z) => ValueDistribution::Zipf { exponent: z },
        None => ValueDistribution::Uniform,
    };
    if let Some(buckets) = args.histograms {
        // Histograms are harvested from a throwaway replica; the service
        // workers regenerate identical data from the same seed.
        let db = StoredDatabase::generate_with(&catalog, args.seed, dist);
        install_histograms(&db, &mut catalog, buckets)?;
        eprintln!("built {buckets}-bucket histograms over all attributes");
    }

    let config = ServiceConfig {
        workers: args.workers.max(1),
        global_memory_bytes: args.service_memory,
        queue_timeout_ms: args.queue_timeout_ms,
        session_limits: ResourceLimits {
            memory_bytes: args.memory_limit,
            max_rows: args.max_rows,
            max_io: args.max_io,
            wall_clock_ms: args.timeout_ms,
        },
        data_seed: args.seed,
        skew: args.skew,
        io_latency_micros: args.io_latency_us,
        dop: args.dop,
        reopt: args.reopt.then(|| ReoptConfig {
            max_replans: args.reopt_budget.unwrap_or(2),
            ..ReoptConfig::default()
        }),
        ..ServiceConfig::default()
    };
    let service = QueryService::new(catalog, config);
    let system = service.catalog().config;
    let config = &system;

    let sessions: Vec<Request> = std::iter::repeat_with(|| workload.clone())
        .take(args.repeat.max(1))
        .flatten()
        .collect();
    let total = sessions.len();
    println!(
        "-- serving {total} session(s) ({} statement(s) x {} repeat(s)) on {} worker(s)",
        workload.len(),
        args.repeat.max(1),
        service.workers()
    );
    let started = std::time::Instant::now();
    let snapshot = || service.metrics();
    let results = with_sampler(args, &snapshot, || service.run_batch(sessions));
    let wall = started.elapsed();

    let mut failed = 0usize;
    let mut first_error: Option<DqepError> = None;
    for (i, result) in results.iter().enumerate() {
        match result {
            // Same ExecSummary::describe renderer as the --run path.
            Ok(s) => println!("[{i:>4}] {}, worker {}", s.summary.describe(config), s.worker),
            Err(e) => {
                failed += 1;
                if first_error.is_none() {
                    first_error = Some(e.clone().into());
                }
                println!("[{i:>4}] FAILED: {e}");
            }
        }
    }

    let stats = service.stats();
    println!(
        "\n-- {} ok, {failed} failed in {:.3}s wall ({:.1} sessions/s)",
        stats.completed,
        wall.as_secs_f64(),
        total as f64 / wall.as_secs_f64().max(1e-9),
    );
    println!(
        "-- plan cache: statement {:.1}% hit ({} hit / {} miss, {} evicted), \
         decision {:.1}% hit ({} hit / {} miss)",
        stats.registry.hit_rate() * 100.0,
        stats.registry.hits,
        stats.registry.misses,
        stats.registry.evictions,
        stats.decision_hit_rate() * 100.0,
        stats.decision_hits,
        stats.decision_misses,
    );
    println!(
        "-- feedback: {} invalidation(s), {} cached-plan retr{}, totals: {} rows, {:.4}s simulated",
        stats.feedback_invalidations,
        stats.cached_plan_retries,
        if stats.cached_plan_retries == 1 { "y" } else { "ies" },
        stats.totals.rows,
        stats.totals.simulated_seconds(config),
    );

    // Shutdown metrics snapshot: latency/queue-wait histograms, refusal
    // counters, cache rates. Printed by default; the flags redirect it.
    if args.metrics_json.is_none() && args.metrics_prom.is_none() {
        println!("\n-- metrics (shutdown snapshot):\n{}", service.metrics_json());
    } else {
        write_metric_outputs(args, &service.metrics())?;
    }

    match first_error {
        // Partial failure is reported per session but the service ran:
        // only a fully failed workload fails the process.
        Some(e) if failed == total => Err(e),
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_full_flag_set() {
        let a = parse_argv(&argv(&[
            "--sql", "SELECT * FROM R1", "--relations", "5", "--seed", "7",
            "--skew", "1.1", "--histograms", "16", "--mode", "static",
            "--bind", "x=40", "--bind", "y=-3", "--memory", "96",
            "--run", "--dot", "/tmp/p.dot",
        ]))
        .unwrap();
        assert_eq!(a.sql, "SELECT * FROM R1");
        assert_eq!(a.relations, 5);
        assert_eq!(a.seed, 7);
        assert_eq!(a.skew, Some(1.1));
        assert_eq!(a.histograms, Some(16));
        assert_eq!(a.mode, "static");
        assert_eq!(a.binds, vec![("x".to_string(), 40), ("y".to_string(), -3)]);
        assert_eq!(a.memory, Some(96.0));
        assert!(a.run);
        assert!(!a.adaptive);
        assert_eq!(a.dot.as_deref(), Some("/tmp/p.dot"));
    }

    #[test]
    fn adaptive_implies_run() {
        let a = parse_argv(&argv(&["--sql", "q", "--adaptive"])).unwrap();
        assert!(a.adaptive && a.run);
    }

    #[test]
    fn reopt_implies_run_and_parses_budget() {
        let a = parse_argv(&argv(&["--sql", "q", "--reopt"])).unwrap();
        assert!(a.reopt && a.run);
        assert_eq!(a.reopt_budget, None, "budget defaults at the execution site");
        let a = parse_argv(&argv(&["--sql", "q", "--reopt", "--reopt-budget", "5"])).unwrap();
        assert_eq!(a.reopt_budget, Some(5));
        assert!(parse_argv(&argv(&["--sql", "q", "--reopt", "--reopt-budget", "x"]))
            .unwrap_err()
            .contains("--reopt-budget"));
    }

    #[test]
    fn reopt_budget_requires_reopt() {
        assert!(parse_argv(&argv(&["--sql", "q", "--run", "--reopt-budget", "3"]))
            .unwrap_err()
            .contains("--reopt"));
    }

    #[test]
    fn reopt_and_adaptive_are_mutually_exclusive() {
        assert!(parse_argv(&argv(&["--sql", "q", "--reopt", "--adaptive"]))
            .unwrap_err()
            .contains("mutually exclusive"));
    }

    #[test]
    fn parses_shard_flags() {
        let a = parse_argv(&argv(&[
            "--sql", "q", "--run", "--shards", "4", "--routing", "range",
            "--force-uniform", "--net-latency-us", "20", "--net-bandwidth",
            "1000000", "--net-jitter-us", "5", "--link-fault",
            "nth-frame=3,max-retransmit=2", "--metrics-json", "m.json",
        ]))
        .unwrap();
        assert_eq!(a.shards, Some(4));
        assert_eq!(a.routing, "range");
        assert!(a.force_uniform);
        assert_eq!(a.net_latency_us, 20);
        assert_eq!(a.net_bandwidth, 1_000_000);
        assert_eq!(a.net_jitter_us, 5);
        assert_eq!(a.link_fault.as_deref(), Some("nth-frame=3,max-retransmit=2"));
        assert_eq!(a.metrics_json.as_deref(), Some("m.json"));
    }

    #[test]
    fn shards_require_sql_and_run() {
        assert!(parse_argv(&argv(&["--sql", "q", "--shards", "2"]))
            .unwrap_err()
            .contains("--run"));
        assert!(parse_argv(&argv(&["--serve", "w.sql", "--shards", "2"]))
            .unwrap_err()
            .contains("mutually exclusive")
            || parse_argv(&argv(&["--serve", "w.sql", "--shards", "2"]))
                .unwrap_err()
                .contains("--sql"));
        assert!(parse_argv(&argv(&["--sql", "q", "--run", "--shards", "0"]))
            .unwrap_err()
            .contains("at least 1"));
    }

    #[test]
    fn net_flags_require_shards() {
        assert!(parse_argv(&argv(&["--sql", "q", "--run", "--net-latency-us", "9"]))
            .unwrap_err()
            .contains("--shards"));
        assert!(parse_argv(&argv(&["--sql", "q", "--run", "--force-uniform"]))
            .unwrap_err()
            .contains("--shards"));
        assert!(parse_argv(&argv(&[
            "--sql", "q", "--run", "--shards", "2", "--routing", "zigzag"
        ]))
        .unwrap_err()
        .contains("--routing"));
    }

    #[test]
    fn parses_observability_flags() {
        let a = parse_argv(&argv(&[
            "--sql", "q", "--run", "--shards", "2", "--journal-json", "j.json",
            "--metrics-prom", "m.prom", "--metrics-json", "m.jsonl",
            "--metrics-interval-ms", "50",
        ]))
        .unwrap();
        assert_eq!(a.journal_json.as_deref(), Some("j.json"));
        assert_eq!(a.metrics_prom.as_deref(), Some("m.prom"));
        assert_eq!(a.metrics_interval_ms, Some(50));
        // The journal is always on, so the dump flag works in any mode.
        let a = parse_argv(&argv(&["--sql", "q", "--journal-json", "-"])).unwrap();
        assert_eq!(a.journal_json.as_deref(), Some("-"));
        // The exports require a workload mode, and the sampler an export.
        assert!(parse_argv(&argv(&["--sql", "q", "--run", "--metrics-prom", "m"]))
            .unwrap_err()
            .contains("--metrics-prom requires"));
        assert!(parse_argv(&argv(&["--serve", "w", "--metrics-interval-ms", "10"]))
            .unwrap_err()
            .contains("--metrics-interval-ms requires"));
        assert!(parse_argv(&argv(&[
            "--serve", "w", "--metrics-json", "m", "--metrics-interval-ms", "0"
        ]))
        .unwrap_err()
        .contains("at least 1"));
    }

    #[test]
    fn shards_allow_explain_analyze_but_not_adaptive() {
        let a =
            parse_argv(&argv(&["--sql", "q", "--shards", "2", "--explain-analyze", "--json"]))
                .unwrap();
        assert_eq!(a.shards, Some(2));
        assert!(a.explain_analyze && a.run && a.json);
        assert!(parse_argv(&argv(&["--sql", "q", "--run", "--shards", "2", "--adaptive"]))
            .unwrap_err()
            .contains("--adaptive"));
    }

    #[test]
    fn shard_mode_allows_metrics_json_and_reopt() {
        let a = parse_argv(&argv(&[
            "--sql", "q", "--run", "--shards", "2", "--metrics-json", "-", "--reopt",
        ]))
        .unwrap();
        assert_eq!(a.shards, Some(2));
        assert!(a.reopt);
    }

    #[test]
    fn reopt_works_with_explain_analyze_and_serve() {
        let a = parse_argv(&argv(&["--sql", "q", "--reopt", "--explain-analyze"])).unwrap();
        assert!(a.reopt && a.explain_analyze);
        let a = parse_argv(&argv(&["--serve", "w.sql", "--reopt"])).unwrap();
        assert!(a.reopt && a.serve.is_some());
    }

    #[test]
    fn parses_dop() {
        let a = parse_argv(&argv(&["--sql", "q", "--run", "--dop", "4"])).unwrap();
        assert_eq!(a.dop, 4);
        let a = parse_argv(&argv(&["--sql", "q"])).unwrap();
        assert_eq!(a.dop, 1, "serial by default");
        assert!(parse_argv(&argv(&["--sql", "q", "--dop", "0"]))
            .unwrap_err()
            .contains("--dop"));
        assert!(parse_argv(&argv(&["--sql", "q", "--dop", "x"]))
            .unwrap_err()
            .contains("--dop"));
    }

    #[test]
    fn defaults() {
        let a = parse_argv(&argv(&["--sql", "q"])).unwrap();
        assert_eq!(a.relations, 3);
        assert_eq!(a.mode, "dynamic");
        assert!(a.binds.is_empty());
        assert!(!a.run);
    }

    #[test]
    fn parses_robustness_flags() {
        let a = parse_argv(&argv(&[
            "--sql", "q", "--run", "--fault-plan", "nth-read=5,read-prob=0.01,seed=7",
            "--memory-limit", "65536", "--max-rows", "100", "--max-io", "2000",
            "--timeout-ms", "5000",
        ]))
        .unwrap();
        assert_eq!(a.fault_plan.as_deref(), Some("nth-read=5,read-prob=0.01,seed=7"));
        assert_eq!(a.memory_limit, Some(65536));
        assert_eq!(a.max_rows, Some(100));
        assert_eq!(a.max_io, Some(2000));
        assert_eq!(a.timeout_ms, Some(5000));
    }

    #[test]
    fn governance_flags_require_run() {
        for flags in [
            vec!["--sql", "q", "--fault-plan", "nth-read=1"],
            vec!["--sql", "q", "--max-rows", "5"],
            vec!["--sql", "q", "--timeout-ms", "10"],
        ] {
            assert!(parse_argv(&argv(&flags)).unwrap_err().contains("--run"));
        }
    }

    #[test]
    fn parses_live_flags() {
        let a = parse_argv(&argv(&[
            "--live", "w.live", "--relations", "2", "--fault-plan", "nth-write=3",
            "--metrics-json", "m.json", "--explain-json", "e.json",
        ]))
        .unwrap();
        assert_eq!(a.live.as_deref(), Some("w.live"));
        assert_eq!(a.explain_json_path.as_deref(), Some("e.json"));
        assert_eq!(a.metrics_json.as_deref(), Some("m.json"));
        // Mode exclusivity and flag dependencies.
        assert!(parse_argv(&argv(&["--sql", "q", "--live", "w"]))
            .unwrap_err()
            .contains("mutually exclusive"));
        assert!(parse_argv(&argv(&["--serve", "s", "--live", "w"]))
            .unwrap_err()
            .contains("mutually exclusive"));
        assert!(parse_argv(&argv(&["--sql", "q", "--explain-json", "e"]))
            .unwrap_err()
            .contains("--live"));
        assert!(parse_argv(&argv(&["--live", "w", "--reopt"]))
            .unwrap_err()
            .contains("--live"));
    }

    #[test]
    fn parses_live_workload_files() {
        let cmds = parse_live(
            "# demo\n             view hot = SELECT * FROM R1 WHERE R1.a < :v @ v=50\n             insert R1 1 2 3\n             delete R1 1 2 3\n             commit\n             read hot\n",
        )
        .unwrap();
        assert_eq!(cmds.len(), 5);
        assert_eq!(
            cmds[0],
            LiveCmd::View {
                name: "hot".into(),
                sql: "SELECT * FROM R1 WHERE R1.a < :v".into(),
                binds: vec![("v".into(), 50)],
            }
        );
        assert_eq!(
            cmds[1],
            LiveCmd::Write { delete: false, relation: "R1".into(), values: vec![1, 2, 3] }
        );
        assert_eq!(
            cmds[2],
            LiveCmd::Write { delete: true, relation: "R1".into(), values: vec![1, 2, 3] }
        );
        assert_eq!(cmds[3], LiveCmd::Commit);
        assert_eq!(cmds[4], LiveCmd::Read { name: "hot".into() });
        assert!(parse_live("view broken").unwrap_err().contains("NAME = SQL"));
        assert!(parse_live("insert R1").unwrap_err().contains("no values"));
        assert!(parse_live("frobnicate").unwrap_err().contains("unknown live command"));
    }

    #[test]
    fn errors() {
        assert!(parse_argv(&argv(&[])).unwrap_err().contains("--sql"));
        assert!(parse_argv(&argv(&["--sql", "q", "--mode", "bogus"]))
            .unwrap_err()
            .contains("--mode"));
        assert!(parse_argv(&argv(&["--sql", "q", "--bind", "novalue"]))
            .unwrap_err()
            .contains("NAME=VALUE"));
        assert!(parse_argv(&argv(&["--sql"])).unwrap_err().contains("needs a value"));
        assert!(parse_argv(&argv(&["--wat"])).unwrap_err().contains("unknown flag"));
        assert!(parse_argv(&argv(&["--sql", "q", "--relations", "x"]))
            .unwrap_err()
            .contains("--relations"));
    }
}
