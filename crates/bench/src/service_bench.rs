//! Concurrent-throughput benchmark for the prepared-query service.
//!
//! Measures end-to-end sessions/second on a repeated-statement workload
//! (the paper's chain query bound at varying selectivities) at several
//! worker-pool sizes, plus the plan-cache hit rates the workload achieves.
//! The per-worker database replicas are given a nonzero simulated device
//! latency, so concurrency wins come from **overlapping I/O waits** —
//! exactly the resource a serving layer multiplexes — rather than from
//! CPU parallelism (CI machines may have a single core).

use std::fmt::Write as _;
use std::time::Instant;

use dqep_catalog::{make_chain_catalog, SyntheticSpec, SystemConfig};
use dqep_service::{QueryService, Request, ServiceConfig, ServiceStats};

/// Workload shape shared by every worker-count measurement.
#[derive(Debug, Clone, Copy)]
pub struct ServiceBenchConfig {
    /// Chain-query length (relations in the statement).
    pub relations: usize,
    /// Timed sessions per measurement.
    pub sessions: usize,
    /// Simulated device latency per page I/O, microseconds.
    pub io_latency_micros: u64,
    /// Catalog + data seed.
    pub seed: u64,
}

impl ServiceBenchConfig {
    /// The standard workload: the paper's 4-relation chain (query 3).
    #[must_use]
    pub fn standard(quick: bool) -> ServiceBenchConfig {
        ServiceBenchConfig {
            relations: 4,
            sessions: if quick { 24 } else { 96 },
            io_latency_micros: 250,
            seed: 11,
        }
    }
}

/// One worker-count measurement.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputPoint {
    /// Worker threads used.
    pub workers: usize,
    /// Timed sessions completed per wall-clock second.
    pub qps: f64,
    /// Wall-clock seconds for the timed batch.
    pub wall_seconds: f64,
    /// Service stats after the run (includes the warm-up sessions).
    pub stats: ServiceStats,
}

/// The chain-catalog statement with one host variable per relation:
/// `SELECT * FROM R1..Rn WHERE Ri.jr = R(i+1).jl AND Ri.a < :vi`.
#[must_use]
pub fn chain_sql(relations: usize) -> String {
    let from: Vec<String> = (1..=relations).map(|i| format!("R{i}")).collect();
    let mut preds: Vec<String> = (1..relations)
        .map(|i| format!("R{i}.jr = R{}.jl", i + 1))
        .collect();
    preds.extend((1..=relations).map(|i| format!("R{i}.a < :v{i}")));
    format!("SELECT * FROM {} WHERE {}", from.join(", "), preds.join(" AND "))
}

/// The repeated-statement workload: one prepared statement, bindings
/// cycling through a few mid-range selectivities (nearby values land in
/// the same decision-cache region; the cycle still exercises re-binding).
#[must_use]
pub fn workload(cfg: &ServiceBenchConfig) -> Vec<Request> {
    let sql = chain_sql(cfg.relations);
    (0..cfg.sessions)
        .map(|i| {
            let value = 420 + 10 * (i as i64 % 4);
            let binds: Vec<(String, i64)> = (1..=cfg.relations)
                .map(|v| (format!("v{v}"), value + v as i64))
                .collect();
            Request {
                sql: sql.clone(),
                binds,
                ..Request::default()
            }
        })
        .collect()
}

/// Measures sessions/second at `workers` concurrent sessions.
///
/// A warm-up batch (one session per worker) is run untimed first, so
/// replica generation and the one-off parse + optimize are excluded from
/// the throughput window — the steady state a serving layer runs in.
///
/// # Panics
/// Panics if any session fails: the benchmark workload is fault-free, so
/// failure is a bug.
#[must_use]
pub fn throughput(cfg: &ServiceBenchConfig, workers: usize) -> ThroughputPoint {
    let catalog = make_chain_catalog(
        &SyntheticSpec::paper(cfg.relations, cfg.seed),
        SystemConfig::paper_1994(),
    );
    let service = QueryService::new(
        catalog,
        ServiceConfig {
            workers,
            io_latency_micros: cfg.io_latency_micros,
            data_seed: cfg.seed,
            ..ServiceConfig::default()
        },
    );

    let warmup: Vec<Request> = workload(cfg).into_iter().take(workers.max(1)).collect();
    for result in service.run_batch(warmup) {
        result.expect("warm-up session failed");
    }

    let sessions = workload(cfg);
    let timed = sessions.len();
    let started = Instant::now();
    for result in service.run_batch(sessions) {
        result.expect("benchmark session failed");
    }
    let wall_seconds = started.elapsed().as_secs_f64();
    ThroughputPoint {
        workers,
        qps: timed as f64 / wall_seconds.max(1e-9),
        wall_seconds,
        stats: service.stats(),
    }
}

/// Renders measurements as the `BENCH_service.json` document.
#[must_use]
pub fn render_json(cfg: &ServiceBenchConfig, points: &[ThroughputPoint]) -> String {
    let baseline = points.first().map_or(1.0, |p| p.qps);
    let four = points
        .iter()
        .find(|p| p.workers == 4)
        .map_or(0.0, |p| p.qps / baseline.max(1e-9));
    let cache = points.last().map_or_else(ServiceStats::default, |p| p.stats);
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"workload\": \"chain_q{}_repeated\",", cfg.relations);
    let _ = writeln!(json, "  \"sessions\": {},", cfg.sessions);
    let _ = writeln!(json, "  \"io_latency_micros\": {},", cfg.io_latency_micros);
    json.push_str("  \"throughput\": [\n");
    for (i, p) in points.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"workers\": {}, \"qps\": {:.2}, \"wall_seconds\": {:.4}}}",
            p.workers, p.qps, p.wall_seconds
        );
        json.push_str(if i + 1 < points.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"speedup_4_vs_1\": {four:.3},");
    let _ = writeln!(
        json,
        "  \"plan_cache\": {{\"statement_hit_rate\": {:.4}, \"decision_hit_rate\": {:.4}, \
         \"feedback_invalidations\": {}}}",
        cache.registry.hit_rate(),
        cache.decision_hit_rate(),
        cache.feedback_invalidations
    );
    json.push_str("}\n");
    json
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_repeated_statement() {
        let cfg = ServiceBenchConfig {
            relations: 2,
            sessions: 8,
            io_latency_micros: 0,
            seed: 3,
        };
        let reqs = workload(&cfg);
        assert_eq!(reqs.len(), 8);
        assert!(reqs.iter().all(|r| r.sql == reqs[0].sql), "one prepared statement");
        assert_eq!(reqs[0].binds.len(), 2);
    }

    #[test]
    fn throughput_point_reports_cache_hits() {
        let cfg = ServiceBenchConfig {
            relations: 2,
            sessions: 12,
            io_latency_micros: 0,
            seed: 3,
        };
        let point = throughput(&cfg, 2);
        assert_eq!(point.stats.failed, 0);
        assert!(point.qps > 0.0);
        // 14 sessions total (2 warm-up), one statement: at most a couple
        // of misses from the initial worker race.
        assert!(
            point.stats.registry.hit_rate() > 0.8,
            "hit rate {:.2} too low",
            point.stats.registry.hit_rate()
        );
        let json = render_json(&cfg, &[point]);
        assert!(json.contains("\"throughput\""));
        assert!(json.contains("\"statement_hit_rate\""));
    }
}
