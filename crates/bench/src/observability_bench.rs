//! Tracing-overhead benchmark fixture: the same plan executed with
//! tracing disabled and enabled.
//!
//! Shared by the `bench_observability` binary that emits
//! `BENCH_observability.json`. The disabled path compiles **zero**
//! wrappers — `compile_plan` pays one branch per plan node and nothing at
//! run time — so the honest way to bound "disabled overhead" is an A/A
//! comparison: two interleaved disabled series whose relative difference
//! measures the noise floor any true overhead would have to exceed. The
//! enabled-vs-disabled delta is reported too, as the (informational)
//! price of turning tracing on.

use std::sync::Arc;
use std::time::Instant;

use dqep_algebra::{CompareOp, HostVar, JoinPred, LogicalExpr, SelectPred};
use dqep_catalog::{make_chain_catalog, Catalog, CatalogBuilder, SyntheticSpec, SystemConfig};
use dqep_cost::{Bindings, Environment};
use dqep_core::Optimizer;
use dqep_executor::{
    execute_plan_dop, execute_plan_traced, ExecMode, ResourceLimits,
};
use dqep_plan::PlanNode;
use dqep_storage::StoredDatabase;

/// A stored database and an optimized dynamic plan to run repeatedly.
pub struct ObservabilityBenchCase {
    catalog: Catalog,
    db: StoredDatabase,
    plan: Arc<PlanNode>,
    env: Environment,
    bindings: Bindings,
}

/// One timed execution: result rows, wall-clock milliseconds, and the
/// number of spans recorded (0 when tracing was disabled).
#[derive(Debug, Clone, Copy)]
pub struct ObsMeasurement {
    /// Result rows produced.
    pub rows: u64,
    /// Wall-clock milliseconds for the execution.
    pub millis: f64,
    /// Spans recorded (0 with tracing disabled).
    pub spans: usize,
}

/// Builds the benchmark case: a two-relation join with an unbound
/// selection (so the optimizer emits choose-plan nodes and the traced run
/// exercises the audit path too), `scale` rows in the outer relation.
#[must_use]
pub fn observability_case(scale: u64, seed: u64) -> ObservabilityBenchCase {
    let inner = (scale * 3).max(1);
    let catalog = CatalogBuilder::new(SystemConfig::paper_1994())
        .relation("r", scale, 512, |r| {
            r.attr("a", scale as f64)
                .attr("j", (scale / 4).max(1) as f64)
                .btree("a", false)
                .btree("j", false)
        })
        .relation("s", inner, 512, |r| {
            r.attr("a", inner as f64)
                .attr("j", (scale / 4).max(1) as f64)
                .btree("a", false)
                .btree("j", false)
        })
        .build()
        .expect("valid bench catalog");
    let db = StoredDatabase::generate(&catalog, seed);
    let r = catalog.relation_by_name("r").expect("r");
    let s = catalog.relation_by_name("s").expect("s");
    let query = LogicalExpr::get(r.id)
        .select(SelectPred::unbound(
            r.attr_id("a").expect("attr"),
            CompareOp::Lt,
            HostVar(0),
        ))
        .join(
            LogicalExpr::get(s.id),
            vec![JoinPred::new(
                r.attr_id("j").expect("attr"),
                s.attr_id("j").expect("attr"),
            )],
        );
    let env = Environment::dynamic_compile_time(&catalog.config);
    let plan = Optimizer::new(&catalog, &env)
        .optimize(&query)
        .expect("bench plan optimizes")
        .plan;
    let bindings = Bindings::new()
        .with_value(HostVar(0), (scale / 2) as i64)
        .with_memory(96.0);
    ObservabilityBenchCase { catalog, db, plan, env, bindings }
}

impl ObservabilityBenchCase {
    /// Executes once with tracing disabled.
    ///
    /// # Panics
    /// Panics if execution fails — benchmark plans run ungoverned against
    /// fault-free storage, so failure is a bug.
    #[must_use]
    pub fn run_untraced(&self) -> ObsMeasurement {
        let started = Instant::now();
        let (summary, _) = execute_plan_dop(
            &self.plan,
            &self.db,
            &self.catalog,
            &self.env,
            &self.bindings,
            ResourceLimits::unlimited(),
            ExecMode::default(),
            1,
        )
        .expect("untraced bench execution");
        ObsMeasurement {
            rows: summary.rows,
            millis: started.elapsed().as_secs_f64() * 1e3,
            spans: 0,
        }
    }

    /// Executes once with tracing enabled.
    ///
    /// # Panics
    /// Panics if execution fails — benchmark plans run ungoverned against
    /// fault-free storage, so failure is a bug.
    #[must_use]
    pub fn run_traced(&self) -> ObsMeasurement {
        let started = Instant::now();
        let (summary, _, report) = execute_plan_traced(
            &self.plan,
            &self.db,
            &self.catalog,
            &self.env,
            &self.bindings,
            ResourceLimits::unlimited(),
            ExecMode::default(),
            1,
        )
        .expect("traced bench execution");
        ObsMeasurement {
            rows: summary.rows,
            millis: started.elapsed().as_secs_f64() * 1e3,
            spans: report.spans.len(),
        }
    }
}

/// Distributed-tracing overhead fixture: the same join executed through
/// two identical 2-shard services, one with cross-shard trace propagation
/// off (the default — shard tracers audit only) and one with it on
/// (frame headers carry trace context, send/receive spans record wire
/// accounting, the coordinator merges the per-shard timelines).
pub struct ShardedObsCase {
    untraced: dqep_service::ShardedService,
    traced: dqep_service::ShardedService,
    sql: String,
    bind: i64,
}

/// Builds the sharded fixture: a 2-relation chain catalog with `scale`
/// rows per relation — large enough that per-query work dominates the
/// shard-thread spawn jitter the A/A bound has to see through.
#[must_use]
pub fn sharded_observability_case(scale: u64, seed: u64) -> ShardedObsCase {
    let spec = SyntheticSpec {
        n_relations: 2,
        min_cardinality: scale,
        max_cardinality: scale + scale / 4,
        record_len: 128,
        domain_factor_min: 0.2,
        domain_factor_max: 1.25,
        seed,
    };
    let service = |trace: bool| {
        let catalog = make_chain_catalog(&spec, SystemConfig::paper_1994());
        let config = dqep_service::ShardConfig {
            shards: 2,
            dop: 2,
            data_seed: seed,
            trace,
            ..dqep_service::ShardConfig::default()
        };
        dqep_service::ShardedService::new(catalog, config)
    };
    ShardedObsCase {
        untraced: service(false),
        traced: service(true),
        sql: "SELECT * FROM R1, R2 WHERE R1.jr = R2.jl AND R1.a < :x".to_string(),
        bind: (scale / 2) as i64,
    }
}

impl ShardedObsCase {
    /// Executes the query once on the untraced (`traced = false`) or
    /// traced service, reporting wall time and recorded spans.
    ///
    /// # Panics
    /// Panics if execution fails — the fixture runs fault-free.
    #[must_use]
    pub fn run(&self, traced: bool) -> ObsMeasurement {
        let service = if traced { &self.traced } else { &self.untraced };
        let started = Instant::now();
        let out = service
            .execute(&self.sql, &[("x", self.bind)])
            .expect("sharded bench execution");
        ObsMeasurement {
            rows: out.rows.len() as u64,
            millis: started.elapsed().as_secs_f64() * 1e3,
            spans: out.trace.as_ref().map_or(0, |t| t.spans.len()),
        }
    }
}
