//! Live-view maintenance benchmark: a registered view refreshed
//! incrementally through the delta pipeline versus re-materialized from
//! scratch after every commit.
//!
//! Shared by the `bench_live` binary that emits `BENCH_live.json`. Unlike
//! the re-optimization bench, the comparison here is **wall-clock**: the
//! delta pipeline does its work on in-memory batches outside the simulated
//! I/O accounting, so simulated seconds would be blind to exactly the cost
//! being measured. The workload is shaped so the gap dwarfs host noise —
//! a large stored base, a handful of rows per commit — and the gate
//! (incremental at least 5x faster than full re-runs) leaves an order of
//! magnitude of headroom on any machine.
//!
//! Every commit also asserts parity: the incrementally maintained snapshot
//! must equal the freshly executed query, so the timing can never be won
//! by drifting away from the correct contents.

use std::sync::Arc;
use std::time::Instant;

use dqep_catalog::{Catalog, CatalogBuilder, SystemConfig};
use dqep_core::Optimizer;
use dqep_cost::Environment;
use dqep_executor::{compile_plan, drain, ExecContext, SharedCounters};
use dqep_plan::evaluate_startup;
use dqep_service::{LiveConfig, LiveViewRegistry, MetricsRegistry, WriteOp};
use dqep_sql::parse_query;
use dqep_storage::StoredDatabase;

/// The registered view: a filtered two-way join, the same shape the
/// service-level live tests pin down.
const VIEW_SQL: &str = "SELECT * FROM r, s WHERE r.j = s.j AND r.a < :v";

/// One live-maintenance benchmark: a stored base, a registered view, and
/// a stream of small commits applied both ways.
pub struct LiveBenchCase {
    /// Benchmark name, stable across runs (used as the JSON key).
    pub name: &'static str,
    /// Rows in the larger base relation.
    pub scale: u64,
    /// Commits in the write stream.
    pub commits: u64,
    /// Write operations per commit.
    pub delta_rows: u64,
    seed: u64,
}

/// Wall-clock comparison of incremental refresh and full re-runs over one
/// write stream.
#[derive(Debug, Clone, Copy)]
pub struct LiveMeasurement {
    /// Stored rows across both base relations at registration time.
    pub base_rows: u64,
    /// View rows after the final commit (identical on both paths —
    /// asserted after every commit).
    pub view_rows: u64,
    /// Total wall-clock seconds spent in `commit` across the stream
    /// (storage writes, stat refresh, and delta propagation).
    pub incremental_seconds: f64,
    /// Total wall-clock seconds spent re-materializing the view from
    /// scratch after each commit (arbitrate, compile, execute).
    pub full_seconds: f64,
    /// Drift re-arbitrations fired during the stream (expected 0: the
    /// deltas are too small to escape the tolerance band).
    pub rearbitrations: u64,
}

impl LiveMeasurement {
    /// Full-re-run cost relative to incremental refresh (above 1.0 =
    /// incremental maintenance won).
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.full_seconds / self.incremental_seconds.max(f64::MIN_POSITIVE)
    }
}

/// Builds the bench catalog: `r` (`scale` rows, filter column `a`, join
/// column `j`) and `s` (`scale / 2` rows, join column `j`).
fn bench_catalog(scale: u64) -> Catalog {
    let jdom = (scale / 8).max(8) as f64;
    CatalogBuilder::new(SystemConfig::paper_1994())
        .relation("r", scale, 512, |r| {
            r.attr("a", scale as f64).attr("j", jdom).btree("a", false)
        })
        .relation("s", scale / 2, 512, |r| r.attr("j", jdom).attr("k", 64.0).btree("j", false))
        .build()
        .expect("bench catalog")
}

impl LiveBenchCase {
    /// Runs the write stream once, timing each commit's incremental
    /// refresh and a from-scratch re-materialization of the same view
    /// over the same (mutated) stored data.
    ///
    /// # Panics
    /// Panics if registration, a commit, or a re-run fails, or if the
    /// maintained snapshot ever diverges from the fresh execution —
    /// benchmark workloads run ungoverned against fault-free storage, so
    /// all are bugs (parity under faults is `tests/live_parity.rs`'s job).
    #[must_use]
    pub fn measure(&self) -> LiveMeasurement {
        let catalog = bench_catalog(self.scale);
        let db = StoredDatabase::generate(&catalog, self.seed);
        let env = Environment::dynamic_compile_time(&catalog.config);
        let base_rows: u64 = catalog.relations().iter().map(|r| r.stats.cardinality).sum();
        let bound = (self.scale / 2) as i64;
        let binds = [("v", bound)];

        let mut reg = LiveViewRegistry::new(
            catalog,
            db,
            env,
            LiveConfig::default(),
            Arc::new(MetricsRegistry::new()),
        );
        reg.register("bench", VIEW_SQL, &binds).expect("view registers");

        // The full-path plan is parsed and optimized once: the timer only
        // charges the re-run for what it must repeat per refresh —
        // arbitration over current statistics, compilation, execution.
        let cat = reg.catalog();
        let query = parse_query(VIEW_SQL, cat).expect("view sql parses");
        let plan = Optimizer::new(cat, &Environment::dynamic_compile_time(&cat.config))
            .optimize_with_props(&query.expr, query.required_props())
            .expect("view plan optimizes")
            .plan;
        let bindings = query.bindings(&binds).expect("bindings resolve");
        let full_env = Environment::dynamic_compile_time(&cat.config);

        let r = reg.catalog().relation_by_name("r").expect("relation").id;
        let s = reg.catalog().relation_by_name("s").expect("relation").id;
        let jdom = (self.scale / 8).max(8) as i64;

        let mut incremental = 0.0f64;
        let mut full = 0.0f64;
        let mut rearbitrations = 0;
        let mut next = 0i64;
        for _ in 0..self.commits {
            let mut ops = Vec::with_capacity(self.delta_rows as usize);
            for _ in 0..self.delta_rows {
                // Alternate sides; land half the `r` rows inside the
                // filter so every commit actually moves the view.
                let j = next % jdom;
                if next % 2 == 0 {
                    let a = (next * 37) % self.scale as i64;
                    ops.push(WriteOp::Insert { relation: r, values: vec![a, j] });
                } else {
                    ops.push(WriteOp::Insert { relation: s, values: vec![j, next % 64] });
                }
                next += 1;
            }

            let t = Instant::now();
            let outcome = reg.commit(&ops).expect("commit succeeds");
            incremental += t.elapsed().as_secs_f64();
            assert_eq!(outcome.applied, ops.len(), "{}: fault-free commit applied all ops", self.name);
            rearbitrations += outcome.rearbitrations;

            let t = Instant::now();
            let startup = evaluate_startup(&plan, reg.catalog(), &full_env, &bindings);
            let ctx = ExecContext::new(SharedCounters::new());
            let mut op = compile_plan(&startup.resolved, reg.database(), reg.catalog(), &bindings, 1 << 24, &ctx)
                .expect("full re-run compiles");
            let mut rows = drain(op.as_mut()).expect("full re-run executes");
            full += t.elapsed().as_secs_f64();

            rows.sort_unstable();
            assert_eq!(
                reg.snapshot("bench").expect("view exists"),
                rows,
                "{}: incremental snapshot diverged from full re-run",
                self.name
            );
        }

        let view_rows = reg.views()[0].rows;
        LiveMeasurement {
            base_rows,
            view_rows,
            incremental_seconds: incremental,
            full_seconds: full,
            rearbitrations,
        }
    }
}

/// The standard live-maintenance suite: one small-delta case. `scale`
/// sets the stored base; each commit touches `delta_rows` rows.
#[must_use]
pub fn live_cases(scale: u64, commits: u64, seed: u64) -> Vec<LiveBenchCase> {
    vec![LiveBenchCase { name: "small_delta", scale, commits, delta_rows: 8, seed }]
}
