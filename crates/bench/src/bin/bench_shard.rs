//! Emits `BENCH_shard.json`: wall-clock scaling of sharded execution
//! (2, 4, and 8 shards vs a single shard) on I/O-paced replica disks,
//! plus the skewed case where per-shard arbitration beats forcing the
//! single-node winner everywhere.
//!
//! Usage: `bench_shard [--quick] [OUT_PATH]` (default `BENCH_shard.json`).
//!
//! Exits non-zero when a gate fails: scan speedup below 2.5x at 4 shards
//! (the scale-out acceptance gate — each shard reads a quarter of the
//! pages, so anything below 2.5x means the exchange or the gather is
//! eating the win), or the skew case's per-shard arbitration failing to
//! at least match the forced uniform winner.

use std::fmt::Write as _;
use std::process::ExitCode;

use dqep_bench::shard_bench::{measure_skew, shard_cases, ShardMeasurement, SHARD_COUNTS};

/// The scan case must scale at least this much at [`GATE_SHARDS`] shards.
const GATE_SHARDS: usize = 4;
const SCAN_GATE: f64 = 2.5;
/// Per-shard arbitration must beat (or match, with margin for timer
/// noise) the forced single-node winner on the skewed case.
const SKEW_GATE: f64 = 1.05;

fn main() -> ExitCode {
    let mut quick = false;
    let mut out_path = String::from("BENCH_shard.json");
    for arg in std::env::args().skip(1) {
        if arg == "--quick" {
            quick = true;
        } else {
            out_path = arg;
        }
    }

    let (scale, latency_us, iters) = if quick { (4_000, 20, 2) } else { (12_000, 50, 3) };
    let counts: &[usize] = if quick { &SHARD_COUNTS[..3] } else { &SHARD_COUNTS };
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    println!("shard bench: scale={scale} io_latency={latency_us}us iters={iters} cores={cores}");

    let cases = shard_cases(scale, 7, latency_us, counts);
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"scale\": {scale},");
    let _ = writeln!(json, "  \"io_latency_micros\": {latency_us},");
    let _ = writeln!(json, "  \"cores\": {cores},");
    let _ = writeln!(json, "  \"cases\": {{");

    let mut scan_gate_speedup = None;
    println!(
        "{:<8} {:>7} {:>10} {:>9} {:>12} {:>8}",
        "case", "shards", "millis", "speedup", "net_bytes", "frames"
    );
    for (ci, case) in cases.iter().enumerate() {
        let results: Vec<ShardMeasurement> =
            counts.iter().map(|&n| case.measure(n, iters)).collect();
        let single_ms = results[0].millis;
        let _ = writeln!(json, "    \"{}\": {{", case.name);
        let _ = writeln!(json, "      \"rows\": {},", results[0].rows);
        for (i, m) in results.iter().enumerate() {
            let speedup = single_ms / m.millis;
            println!(
                "{:<8} {:>7} {:>10.2} {:>8.2}x {:>12} {:>8}",
                case.name, m.shards, m.millis, speedup, m.net_bytes, m.net_frames
            );
            if case.name == "scan" && m.shards == GATE_SHARDS {
                scan_gate_speedup = Some(speedup);
            }
            let comma = if i + 1 < results.len() { "," } else { "" };
            let _ = writeln!(
                json,
                "      \"shards{}\": {{ \"millis\": {:.3}, \"speedup\": {:.3}, \
                 \"net_bytes\": {}, \"net_frames\": {} }}{comma}",
                m.shards, m.millis, speedup, m.net_bytes, m.net_frames
            );
        }
        let comma = if ci + 1 < cases.len() { "," } else { "" };
        let _ = writeln!(json, "    }}{comma}");
    }
    let _ = writeln!(json, "  }},");

    let skew = measure_skew(scale, 7, latency_us, iters);
    println!(
        "skew: per-shard {:.2}ms vs forced {:.2}ms = {:.2}x benefit \
         ({} divergent nodes, {} rows)",
        skew.divergent_millis,
        skew.forced_millis,
        skew.benefit(),
        skew.divergent_nodes,
        skew.rows
    );
    let _ = writeln!(json, "  \"skew\": {{");
    let _ = writeln!(json, "    \"divergent_millis\": {:.3},", skew.divergent_millis);
    let _ = writeln!(json, "    \"forced_millis\": {:.3},", skew.forced_millis);
    let _ = writeln!(json, "    \"benefit\": {:.3},", skew.benefit());
    let _ = writeln!(json, "    \"divergent_nodes\": {},", skew.divergent_nodes);
    let _ = writeln!(json, "    \"rows\": {}", skew.rows);
    let _ = writeln!(json, "  }},");

    let scan_speedup = scan_gate_speedup.unwrap_or(0.0);
    let _ = writeln!(json, "  \"gates\": [");
    let _ = writeln!(
        json,
        "    {{ \"case\": \"scan\", \"shards\": {GATE_SHARDS}, \
         \"required_speedup\": {SCAN_GATE}, \"measured_speedup\": {scan_speedup:.3} }},"
    );
    let _ = writeln!(
        json,
        "    {{ \"case\": \"skew_divergence\", \"required_benefit\": {SKEW_GATE}, \
         \"measured_benefit\": {:.3} }}",
        skew.benefit()
    );
    let _ = writeln!(json, "  ]");
    json.push_str("}\n");

    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("failed to write {out_path}: {e}");
        return ExitCode::from(1);
    }
    println!("wrote {out_path}");

    let mut failed = false;
    if scan_speedup < SCAN_GATE {
        eprintln!(
            "GATE FAILED: scan at {GATE_SHARDS} shards sped up {scan_speedup:.2}x < {SCAN_GATE}x"
        );
        failed = true;
    }
    if skew.benefit() < SKEW_GATE {
        eprintln!(
            "GATE FAILED: per-shard arbitration benefit {:.2}x < {SKEW_GATE}x on the skew case",
            skew.benefit()
        );
        failed = true;
    }
    if skew.divergent_nodes == 0 {
        eprintln!("GATE FAILED: skew case produced no divergent winners");
        failed = true;
    }
    if failed {
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    }
}
