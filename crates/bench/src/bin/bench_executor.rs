//! Executor benchmark runner: measures tuple vs batch execution and
//! writes `BENCH_executor.json`.
//!
//! Usage: `bench_executor [--quick] [OUT_PATH]`
//!
//! `--quick` shrinks the tables and iteration count for CI smoke runs;
//! `OUT_PATH` defaults to `BENCH_executor.json` in the current
//! directory. The JSON is one object per (benchmark, mode) with
//! rows/sec and ns/row, plus a batch-over-tuple speedup per benchmark.

use std::fmt::Write as _;

use dqep_bench::executor_bench::{standard_cases, Measurement};
use dqep_executor::ExecMode;

fn main() {
    let mut quick = false;
    let mut out_path = String::from("BENCH_executor.json");
    for arg in std::env::args().skip(1) {
        if arg == "--quick" {
            quick = true;
        } else {
            out_path = arg;
        }
    }
    let (scale, iters) = if quick { (10_000, 2) } else { (100_000, 5) };

    println!("executor benchmark: scale={scale} rows, {iters} iterations per mode\n");
    println!(
        "{:<12} {:>14} {:>14} {:>14} {:>14} {:>9}",
        "benchmark", "tuple rows/s", "batch rows/s", "tuple ns/row", "batch ns/row", "speedup"
    );

    let mut entries: Vec<(String, Measurement, Measurement)> = Vec::new();
    for case in standard_cases(scale, 11) {
        // paper_q3 is a fixed-size ~2 ms workload regardless of `scale`;
        // at the standard iteration count its ratio is dominated by
        // scheduler noise, so it gets a deeper sample.
        let case_iters = if case.name == "paper_q3" { iters * 20 } else { iters };
        let tuple = case.measure(ExecMode::Tuple, case_iters);
        let batch = case.measure(ExecMode::Batch, case_iters);
        println!(
            "{:<12} {:>14.0} {:>14.0} {:>14.1} {:>14.1} {:>8.2}x",
            case.name,
            tuple.rows_per_sec,
            batch.rows_per_sec,
            tuple.ns_per_row,
            batch.ns_per_row,
            batch.rows_per_sec / tuple.rows_per_sec,
        );
        entries.push((case.name.to_string(), tuple, batch));
    }

    let mut json = String::from("{\n  \"benchmarks\": [\n");
    for (i, (name, tuple, batch)) in entries.iter().enumerate() {
        let speedup = batch.rows_per_sec / tuple.rows_per_sec;
        let _ = write!(
            json,
            "    {{\"benchmark\": \"{name}\", \"rows\": {}, \
             \"tuple\": {{\"rows_per_sec\": {:.0}, \"ns_per_row\": {:.2}}}, \
             \"batch\": {{\"rows_per_sec\": {:.0}, \"ns_per_row\": {:.2}}}, \
             \"batch_speedup\": {speedup:.3}}}",
            tuple.rows,
            tuple.rows_per_sec,
            tuple.ns_per_row,
            batch.rows_per_sec,
            batch.ns_per_row,
        );
        json.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
    }
    let _ = write!(
        json,
        "  ],\n  \"scale\": {scale},\n  \"iterations\": {iters},\n  \"unit_note\": \
         \"ns_per_row normalizes wall time by result rows; simulated-time \
         accounting is identical between modes\"\n}}\n"
    );
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("failed to write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("\nwrote {out_path}");

    // The scan-filter case is the vectorization headline: the batch path
    // must clear 2x or the engine has regressed.
    let scan_filter = entries
        .iter()
        .find(|(name, _, _)| name == "scan_filter")
        .expect("scan_filter case present");
    let speedup = scan_filter.2.rows_per_sec / scan_filter.1.rows_per_sec;
    if speedup < 2.0 {
        eprintln!("WARNING: scan_filter batch speedup {speedup:.2}x is below the 2x target");
        if !quick {
            std::process::exit(2);
        }
    }

    // The columnar hash join (batched hashing + radix-partitioned build
    // and probe) must clear 3x over the tuple-at-a-time path.
    let hash_join = entries
        .iter()
        .find(|(name, _, _)| name == "hash_join")
        .expect("hash_join case present");
    let speedup = hash_join.2.rows_per_sec / hash_join.1.rows_per_sec;
    if speedup < 3.0 {
        eprintln!("WARNING: hash_join batch speedup {speedup:.2}x is below the 3x target");
        if !quick {
            std::process::exit(2);
        }
    }
}
