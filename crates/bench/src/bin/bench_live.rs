//! Emits `BENCH_live.json`: wall-clock comparison of incremental
//! live-view refresh against full re-materialization after every commit.
//!
//! Usage: `bench_live [--quick] [OUT_PATH]` (default `BENCH_live.json`).
//!
//! Gates:
//! * **small_delta**: incremental refresh at least 5x faster than the
//!   full re-run total, and zero drift re-arbitrations (the deltas are
//!   far too small to escape the tolerance band — a re-fire would mean
//!   the damping regressed and every commit paid a full rebuild).
//!
//! Parity of the two paths is asserted inside the measurement itself, so
//! a passing gate is a speedup on *correct* contents.

use std::fmt::Write as _;
use std::process::ExitCode;

use dqep_bench::live_bench::live_cases;

/// Minimum incremental-over-full speedup.
const SPEEDUP_GATE: f64 = 5.0;

fn main() -> ExitCode {
    let mut quick = false;
    let mut out_path = String::from("BENCH_live.json");
    for arg in std::env::args().skip(1) {
        if arg == "--quick" {
            quick = true;
        } else {
            out_path = arg;
        }
    }

    let (scale, commits) = if quick { (4_000, 8) } else { (24_000, 20) };
    println!("live bench: scale={scale} commits={commits}");
    let cases = live_cases(scale, commits, 11);

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"scale\": {scale},");
    let _ = writeln!(json, "  \"commits\": {commits},");
    let _ = writeln!(json, "  \"cases\": {{");

    let mut failures = Vec::new();
    println!(
        "{:<12} {:>10} {:>10} {:>14} {:>14} {:>9} {:>7}",
        "case", "base", "view", "incr_s", "full_s", "speedup", "rearbs"
    );
    for (ci, case) in cases.iter().enumerate() {
        let m = case.measure();
        println!(
            "{:<12} {:>10} {:>10} {:>14.6} {:>14.6} {:>9.1} {:>7}",
            case.name,
            m.base_rows,
            m.view_rows,
            m.incremental_seconds,
            m.full_seconds,
            m.speedup(),
            m.rearbitrations
        );
        if m.speedup() < SPEEDUP_GATE {
            failures.push(format!(
                "{}: speedup {:.2} below the {SPEEDUP_GATE:.1}x gate",
                case.name,
                m.speedup()
            ));
        }
        if m.rearbitrations != 0 {
            failures.push(format!(
                "{}: {} drift re-arbitration(s) on a stable workload",
                case.name, m.rearbitrations
            ));
        }
        let comma = if ci + 1 < cases.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    \"{}\": {{ \"base_rows\": {}, \"view_rows\": {}, \
             \"delta_rows_per_commit\": {}, \"incremental_seconds\": {:.9}, \
             \"full_seconds\": {:.9}, \"speedup\": {:.3}, \"rearbitrations\": {} }}{comma}",
            case.name,
            m.base_rows,
            m.view_rows,
            case.delta_rows,
            m.incremental_seconds,
            m.full_seconds,
            m.speedup(),
            m.rearbitrations
        );
    }
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"gate\": {{ \"min_speedup\": {SPEEDUP_GATE}, \"max_rearbitrations\": 0 }}");
    json.push_str("}\n");

    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("failed to write {out_path}: {e}");
        return ExitCode::from(1);
    }
    println!("wrote {out_path}");

    if failures.is_empty() {
        println!("gates passed");
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("GATE FAILED: {f}");
        }
        ExitCode::from(2)
    }
}
