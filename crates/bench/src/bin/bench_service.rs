//! Prepared-query service benchmark runner: measures concurrent-session
//! throughput at 1, 4, and 8 workers on a repeated-statement workload and
//! writes `BENCH_service.json`.
//!
//! Usage: `bench_service [--quick] [OUT_PATH]`
//!
//! `--quick` shrinks the session count for CI smoke runs (gates are
//! warnings only); the full run exits 2 if the 4-worker speedup is below
//! 2x or the statement-cache hit rate below 90%.

use std::process::ExitCode;

use dqep_bench::service_bench::{render_json, throughput, ServiceBenchConfig, ThroughputPoint};

fn main() -> ExitCode {
    let mut quick = false;
    let mut out_path = String::from("BENCH_service.json");
    for arg in std::env::args().skip(1) {
        if arg == "--quick" {
            quick = true;
        } else {
            out_path = arg;
        }
    }
    let cfg = ServiceBenchConfig::standard(quick);

    println!(
        "service benchmark: {} sessions of chain_q{} per point, {}us/page-io\n",
        cfg.sessions, cfg.relations, cfg.io_latency_micros
    );
    println!("{:<9} {:>12} {:>12} {:>9}", "workers", "sessions/s", "wall (s)", "speedup");

    let mut points: Vec<ThroughputPoint> = Vec::new();
    for workers in [1usize, 4, 8] {
        let point = throughput(&cfg, workers);
        let speedup = points.first().map_or(1.0, |base| point.qps / base.qps);
        println!(
            "{:<9} {:>12.1} {:>12.3} {:>8.2}x",
            point.workers, point.qps, point.wall_seconds, speedup
        );
        points.push(point);
    }

    let speedup_4 = points
        .iter()
        .find(|p| p.workers == 4)
        .map_or(0.0, |p| p.qps / points[0].qps.max(1e-9));
    let cache = points[points.len() - 1].stats;
    println!(
        "\n4-worker speedup: {speedup_4:.2}x; statement cache {:.1}% hit, decision cache {:.1}% hit",
        cache.registry.hit_rate() * 100.0,
        cache.decision_hit_rate() * 100.0
    );

    let json = render_json(&cfg, &points);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("bench_service: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out_path}");

    let scaling_ok = speedup_4 >= 2.0;
    let cache_ok = cache.registry.hit_rate() >= 0.9;
    if !scaling_ok || !cache_ok {
        let msg = format!(
            "gates: 4-worker speedup {speedup_4:.2}x (need >= 2.0), \
             statement hit rate {:.1}% (need >= 90%)",
            cache.registry.hit_rate() * 100.0
        );
        if quick {
            eprintln!("bench_service (quick): {msg} — warning only");
        } else {
            eprintln!("bench_service: {msg}");
            return ExitCode::from(2);
        }
    }
    ExitCode::SUCCESS
}
