//! Emits `BENCH_parallel.json`: wall-clock speedups of intra-query
//! parallel execution (DOP 2 and 4 vs serial) on an I/O-paced simulated
//! disk.
//!
//! Usage: `bench_parallel [--quick] [OUT_PATH]` (default
//! `BENCH_parallel.json`).
//!
//! Exits non-zero if the hash-join speedup at DOP 4 falls below 2x —
//! the acceptance gate for the exchange operator — unless the host has
//! fewer than 4 logical cores *and* `--quick` was not passed with enough
//! headroom; on such hosts the gate is skipped (the workers still overlap
//! simulated I/O stalls, but CI only enforces the bound where the
//! scheduler has real parallelism to give).

use std::fmt::Write as _;
use std::process::ExitCode;

use dqep_bench::parallel_bench::{parallel_cases, DopMeasurement, DOPS};

/// Gate: hash join at DOP 4 must be at least this much faster than serial.
const GATE_CASE: &str = "hash_join";
const GATE_DOP: usize = 4;
const GATE_SPEEDUP: f64 = 2.0;

fn main() -> ExitCode {
    let mut quick = false;
    let mut out_path = String::from("BENCH_parallel.json");
    for arg in std::env::args().skip(1) {
        if arg == "--quick" {
            quick = true;
        } else {
            out_path = arg;
        }
    }

    let (scale, latency_us, iters) = if quick { (4_000, 20, 2) } else { (12_000, 50, 3) };
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    println!(
        "parallel bench: scale={scale} io_latency={latency_us}us iters={iters} cores={cores}"
    );

    let cases = parallel_cases(scale, 7, latency_us);
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"scale\": {scale},");
    let _ = writeln!(json, "  \"io_latency_micros\": {latency_us},");
    let _ = writeln!(json, "  \"cores\": {cores},");
    let _ = writeln!(json, "  \"cases\": {{");

    let mut gate_speedup: Option<f64> = None;
    println!("{:<12} {:>6} {:>10} {:>9}", "case", "dop", "millis", "speedup");
    for (ci, case) in cases.iter().enumerate() {
        let results: Vec<DopMeasurement> =
            DOPS.iter().map(|&dop| case.measure(dop, iters)).collect();
        let serial_ms = results[0].millis;
        let _ = writeln!(json, "    \"{}\": {{", case.name);
        let _ = writeln!(json, "      \"rows\": {},", results[0].rows);
        for (i, m) in results.iter().enumerate() {
            let speedup = serial_ms / m.millis;
            println!("{:<12} {:>6} {:>10.2} {:>8.2}x", case.name, m.dop, m.millis, speedup);
            if case.name == GATE_CASE && m.dop == GATE_DOP {
                gate_speedup = Some(speedup);
            }
            let comma = if i + 1 < results.len() { "," } else { "" };
            let _ = writeln!(
                json,
                "      \"dop{}\": {{ \"millis\": {:.3}, \"speedup\": {:.3} }}{comma}",
                m.dop, m.millis, speedup
            );
        }
        let comma = if ci + 1 < cases.len() { "," } else { "" };
        let _ = writeln!(json, "    }}{comma}");
    }
    let _ = writeln!(json, "  }},");
    let _ = writeln!(
        json,
        "  \"gate\": {{ \"case\": \"{GATE_CASE}\", \"dop\": {GATE_DOP}, \
         \"required_speedup\": {GATE_SPEEDUP}, \"measured_speedup\": {:.3} }}",
        gate_speedup.unwrap_or(0.0)
    );
    json.push_str("}\n");

    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("failed to write {out_path}: {e}");
        return ExitCode::from(1);
    }
    println!("wrote {out_path}");

    let Some(speedup) = gate_speedup else {
        eprintln!("gate case {GATE_CASE} missing from results");
        return ExitCode::from(2);
    };
    if cores < GATE_DOP {
        println!(
            "gate skipped: host has {cores} cores (< {GATE_DOP}); \
             measured {GATE_CASE} dop{GATE_DOP} speedup {speedup:.2}x"
        );
        return ExitCode::SUCCESS;
    }
    if speedup < GATE_SPEEDUP {
        eprintln!(
            "GATE FAILED: {GATE_CASE} at dop {GATE_DOP} achieved {speedup:.2}x, \
             required {GATE_SPEEDUP:.1}x"
        );
        return ExitCode::from(2);
    }
    println!("gate passed: {GATE_CASE} dop{GATE_DOP} speedup {speedup:.2}x >= {GATE_SPEEDUP:.1}x");
    ExitCode::SUCCESS
}
