//! Emits `BENCH_parallel.json`: wall-clock speedups of intra-query
//! parallel execution (DOP 2 and 4 vs serial) on an I/O-paced simulated
//! disk.
//!
//! Usage: `bench_parallel [--quick] [OUT_PATH]` (default
//! `BENCH_parallel.json`).
//!
//! Exits non-zero if a DOP-4 speedup gate fails: hash join below 2x
//! (the acceptance gate for the exchange operator) or sort below 2.5x
//! (parallel run generation plus the range-partitioned merge). On hosts
//! with fewer than 4 logical cores the gates are skipped (the workers
//! still overlap simulated I/O stalls, but CI only enforces the bounds
//! where the scheduler has real parallelism to give).

use std::fmt::Write as _;
use std::process::ExitCode;

use dqep_bench::parallel_bench::{parallel_cases, DopMeasurement, DOPS};

/// Gates: (case, required speedup) at DOP 4 over serial. The hash join
/// bounds the exchange operator; the sort bounds the parallel run
/// generation + range-partitioned merge.
const GATE_DOP: usize = 4;
const GATES: [(&str, f64); 2] = [("hash_join", 2.0), ("sort", 2.5)];

fn main() -> ExitCode {
    let mut quick = false;
    let mut out_path = String::from("BENCH_parallel.json");
    for arg in std::env::args().skip(1) {
        if arg == "--quick" {
            quick = true;
        } else {
            out_path = arg;
        }
    }

    let (scale, latency_us, iters) = if quick { (4_000, 20, 2) } else { (12_000, 50, 3) };
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    println!(
        "parallel bench: scale={scale} io_latency={latency_us}us iters={iters} cores={cores}"
    );

    let cases = parallel_cases(scale, 7, latency_us);
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"scale\": {scale},");
    let _ = writeln!(json, "  \"io_latency_micros\": {latency_us},");
    let _ = writeln!(json, "  \"cores\": {cores},");
    let _ = writeln!(json, "  \"cases\": {{");

    let mut gate_speedups: Vec<Option<f64>> = vec![None; GATES.len()];
    println!("{:<12} {:>6} {:>10} {:>9}", "case", "dop", "millis", "speedup");
    for (ci, case) in cases.iter().enumerate() {
        let results: Vec<DopMeasurement> =
            DOPS.iter().map(|&dop| case.measure(dop, iters)).collect();
        let serial_ms = results[0].millis;
        let _ = writeln!(json, "    \"{}\": {{", case.name);
        let _ = writeln!(json, "      \"rows\": {},", results[0].rows);
        for (i, m) in results.iter().enumerate() {
            let speedup = serial_ms / m.millis;
            println!("{:<12} {:>6} {:>10.2} {:>8.2}x", case.name, m.dop, m.millis, speedup);
            if m.dop == GATE_DOP {
                if let Some(g) = GATES.iter().position(|&(name, _)| name == case.name) {
                    gate_speedups[g] = Some(speedup);
                }
            }
            let comma = if i + 1 < results.len() { "," } else { "" };
            let _ = writeln!(
                json,
                "      \"dop{}\": {{ \"millis\": {:.3}, \"speedup\": {:.3} }}{comma}",
                m.dop, m.millis, speedup
            );
        }
        let comma = if ci + 1 < cases.len() { "," } else { "" };
        let _ = writeln!(json, "    }}{comma}");
    }
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"gates\": [");
    for (g, &(name, required)) in GATES.iter().enumerate() {
        let comma = if g + 1 < GATES.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{ \"case\": \"{name}\", \"dop\": {GATE_DOP}, \
             \"required_speedup\": {required}, \"measured_speedup\": {:.3} }}{comma}",
            gate_speedups[g].unwrap_or(0.0)
        );
    }
    let _ = writeln!(json, "  ]");
    json.push_str("}\n");

    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("failed to write {out_path}: {e}");
        return ExitCode::from(1);
    }
    println!("wrote {out_path}");

    let mut failed = false;
    for (g, &(name, required)) in GATES.iter().enumerate() {
        let Some(speedup) = gate_speedups[g] else {
            eprintln!("gate case {name} missing from results");
            failed = true;
            continue;
        };
        if cores < GATE_DOP {
            println!(
                "gate skipped: host has {cores} cores (< {GATE_DOP}); \
                 measured {name} dop{GATE_DOP} speedup {speedup:.2}x"
            );
            continue;
        }
        if speedup < required {
            eprintln!(
                "GATE FAILED: {name} at dop {GATE_DOP} achieved {speedup:.2}x, \
                 required {required:.1}x"
            );
            failed = true;
            continue;
        }
        println!("gate passed: {name} dop{GATE_DOP} speedup {speedup:.2}x >= {required:.1}x");
    }
    if failed {
        return ExitCode::from(2);
    }
    ExitCode::SUCCESS
}
