//! Emits `BENCH_reopt.json`: simulated-cost comparison of mid-query
//! re-optimization against startup-only arbitration on a drift-free and
//! a skewed workload.
//!
//! Usage: `bench_reopt [--quick] [OUT_PATH]` (default `BENCH_reopt.json`).
//!
//! Gates (simulated seconds, deterministic on any host):
//! * **drift_free**: no checkpoint escapes, and re-optimization overhead
//!   below 5% of the startup-only cost.
//! * **skew**: at least one escape and one adopted re-plan, and the
//!   re-optimized execution no more expensive than the startup-only one
//!   (the adopted plan usually wins outright; the gate only forbids a
//!   regression).

use std::fmt::Write as _;
use std::process::ExitCode;

use dqep_bench::reopt_bench::reopt_cases;

/// Drift-free overhead ceiling: re-opt / startup-only simulated seconds.
const OVERHEAD_GATE: f64 = 1.05;

fn main() -> ExitCode {
    let mut quick = false;
    let mut out_path = String::from("BENCH_reopt.json");
    for arg in std::env::args().skip(1) {
        if arg == "--quick" {
            quick = true;
        } else {
            out_path = arg;
        }
    }

    let scale = if quick { 800 } else { 4_000 };
    println!("reopt bench: scale={scale}");
    let cases = reopt_cases(scale, 3);

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"scale\": {scale},");
    let _ = writeln!(json, "  \"cases\": {{");

    let mut failures = Vec::new();
    println!(
        "{:<12} {:>10} {:>12} {:>12} {:>7} {:>8} {:>8}",
        "case", "rows", "startup_s", "reopt_s", "ratio", "escapes", "replans"
    );
    for (ci, case) in cases.iter().enumerate() {
        let m = case.measure();
        let c = m.counters;
        println!(
            "{:<12} {:>10} {:>12.6} {:>12.6} {:>7.3} {:>8} {:>8}",
            case.name, m.rows, m.startup_seconds, m.reopt_seconds, m.ratio(), c.escapes,
            c.replans_adopted
        );
        match case.name {
            "drift_free" => {
                if c.escapes != 0 {
                    failures.push(format!("drift_free escaped {} checkpoint(s)", c.escapes));
                }
                if m.ratio() > OVERHEAD_GATE {
                    failures.push(format!(
                        "drift_free overhead {:.4} above the {OVERHEAD_GATE:.2} gate",
                        m.ratio()
                    ));
                }
            }
            "skew" => {
                if c.escapes < 1 || c.replans_adopted < 1 {
                    failures.push(format!(
                        "skew case did not re-plan (escapes {}, adopted {})",
                        c.escapes, c.replans_adopted
                    ));
                }
                if m.ratio() > 1.0 + 1e-9 {
                    failures.push(format!("skew case regressed: ratio {:.4}", m.ratio()));
                }
            }
            _ => {}
        }
        let comma = if ci + 1 < cases.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    \"{}\": {{ \"rows\": {}, \"startup_seconds\": {:.9}, \
             \"reopt_seconds\": {:.9}, \"ratio\": {:.6}, \"checkpoints\": {}, \
             \"escapes\": {}, \"replans_adopted\": {}, \"fallbacks\": {} }}{comma}",
            case.name,
            m.rows,
            m.startup_seconds,
            m.reopt_seconds,
            m.ratio(),
            c.checkpoints,
            c.escapes,
            c.replans_adopted,
            c.fallbacks
        );
    }
    let _ = writeln!(json, "  }},");
    let _ = writeln!(
        json,
        "  \"gate\": {{ \"drift_free_max_ratio\": {OVERHEAD_GATE}, \"skew_max_ratio\": 1.0 }}"
    );
    json.push_str("}\n");

    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("failed to write {out_path}: {e}");
        return ExitCode::from(1);
    }
    println!("wrote {out_path}");

    if failures.is_empty() {
        println!("gates passed");
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("GATE FAILED: {f}");
        }
        ExitCode::from(2)
    }
}
