//! `reproduce` — regenerates every table and figure of the paper's
//! evaluation (Section 6) and prints them as aligned text tables, with the
//! paper's reference values in each caption.
//!
//! ```text
//! reproduce [--quick] [--seed N] [--invocations N]
//!           [--table1] [--fig3] [--fig4] [--fig5] [--fig6] [--fig7]
//!           [--fig8] [--breakeven] [--ablations] [--all]
//! ```
//!
//! With no figure flags, `--all` is assumed.

use dqep_harness::experiments::{
    ablation, breakeven, extension, fig3, fig4, fig5, fig6, fig7, fig8, run_all, table1,
};
use dqep_harness::params::ExperimentParams;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let has = |flag: &str| args.iter().any(|a| a == flag);
    let value_of = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse::<u64>().ok())
    };

    let mut params = ExperimentParams::paper();
    if has("--quick") {
        params.invocations = 10;
        params.with_memory_uncertainty = false;
    }
    if let Some(seed) = value_of("--seed") {
        params.seed = seed;
    }
    if let Some(n) = value_of("--invocations") {
        params.invocations = n as usize;
    }

    let figures = [
        "--table1",
        "--fig3",
        "--fig4",
        "--fig5",
        "--fig6",
        "--fig7",
        "--fig8",
        "--breakeven",
        "--ablations",
        "--extensions",
    ];
    let any_selected = figures.iter().any(|f| has(f));
    let all = has("--all") || !any_selected;
    let want = |flag: &str| all || has(flag);

    println!(
        "dqep reproduce — Cole & Graefe, 'Optimization of Dynamic Query \
         Evaluation Plans' (SIGMOD 1994)\nseed={} invocations={} \
         memory-uncertainty={}\n",
        params.seed, params.invocations, params.with_memory_uncertainty
    );

    if want("--table1") {
        println!("{}\n", table1::table());
    }

    let needs_runs = ["--fig3", "--fig4", "--fig5", "--fig6", "--fig7", "--fig8", "--breakeven"]
        .iter()
        .any(|f| want(f));
    if needs_runs {
        eprintln!("running the five queries under all scenarios ...");
        let results = run_all(&params);
        if want("--fig3") {
            for r in &results {
                println!("{}\n", fig3::table(r));
            }
        }
        if want("--fig4") {
            println!("{}\n", fig4::table(&results));
        }
        if want("--fig5") {
            println!("{}\n", fig5::table(&results));
        }
        if want("--fig6") {
            println!("{}\n", fig6::table(&results));
        }
        if want("--fig7") {
            println!("{}\n", fig7::table(&results));
        }
        if want("--fig8") {
            println!("{}\n", fig8::table(&results));
        }
        if want("--breakeven") {
            println!("{}\n", breakeven::table(&results));
        }
    }

    if want("--ablations") {
        eprintln!("running ablations on query 3 ...");
        let (_, rows) = ablation::run(3, params.invocations.min(25), params.seed);
        println!("{}\n", ablation::table(3, &rows));
    }

    if want("--extensions") {
        eprintln!("running the estimation-error extension experiment ...");
        let rows = extension::run(params.invocations.min(50), params.seed);
        println!("{}\n", extension::table(&rows));
    }
}
