//! Emits `BENCH_observability.json`: the cost of the tracing layer.
//!
//! Usage: `bench_observability [--quick] [OUT_PATH]` (default
//! `BENCH_observability.json`).
//!
//! Two numbers are reported:
//!
//! * **Disabled overhead** — with tracing off, `compile_plan` pays one
//!   branch per plan node and compiles zero wrappers, so the true
//!   overhead is indistinguishable from measurement noise. It is bounded
//!   with an A/A comparison: two interleaved *disabled* series, taking
//!   the min-of-iters wall time of each; their relative difference is the
//!   noise floor, and the gate requires it (and therefore any real
//!   disabled overhead hiding inside it) to stay under 5%.
//! * **Enabled overhead** — the informational price of turning tracing
//!   on: per-operator wrappers, counter snapshots around every call, one
//!   flush per operator.
//!
//! Exits non-zero when the disabled-overhead bound exceeds the gate.

use std::fmt::Write as _;
use std::process::ExitCode;

use dqep_bench::observability_bench::{
    observability_case, sharded_observability_case, ObsMeasurement,
};

/// Gate: the A/A bound on tracing-disabled overhead must stay below this.
const GATE_PCT: f64 = 5.0;

/// Median wall time of a series — more stable than the min on hosts with
/// frequency scaling, where the floor itself is bimodal.
fn median_ms(samples: &[ObsMeasurement]) -> f64 {
    let mut ms: Vec<f64> = samples.iter().map(|m| m.millis).collect();
    ms.sort_by(f64::total_cmp);
    let mid = ms.len() / 2;
    if ms.len().is_multiple_of(2) { (ms[mid - 1] + ms[mid]) / 2.0 } else { ms[mid] }
}

fn main() -> ExitCode {
    let mut quick = false;
    let mut out_path = String::from("BENCH_observability.json");
    for arg in std::env::args().skip(1) {
        if arg == "--quick" {
            quick = true;
        } else {
            out_path = arg;
        }
    }

    let (scale, iters) = if quick { (3_000, 20) } else { (8_000, 32) };
    println!("observability bench: scale={scale} iters={iters}");
    let case = observability_case(scale, 7);

    // Warm-up, then interleave the three series so drift (thermal,
    // scheduler) hits all of them equally.
    let _ = case.run_untraced();
    let _ = case.run_traced();
    let mut series_a = Vec::with_capacity(iters);
    let mut series_b = Vec::with_capacity(iters);
    let mut series_on = Vec::with_capacity(iters);
    for i in 0..iters {
        // Alternate A/B order so neither series always runs in the same
        // cache/scheduler position within an iteration.
        if i % 2 == 0 {
            series_a.push(case.run_untraced());
            series_b.push(case.run_untraced());
        } else {
            series_b.push(case.run_untraced());
            series_a.push(case.run_untraced());
        }
        series_on.push(case.run_traced());
    }

    let rows = series_a[0].rows;
    assert!(
        series_b.iter().chain(&series_on).all(|m| m.rows == rows),
        "tracing changed the result row count"
    );
    let spans = series_on[0].spans;
    let (a, b, on) = (median_ms(&series_a), median_ms(&series_b), median_ms(&series_on));
    let disabled_pct = (a - b).abs() / a.min(b) * 100.0;
    let enabled_pct = (on - a.min(b)) / a.min(b) * 100.0;

    println!("{:<22} {:>10}", "series", "median ms");
    println!("{:<22} {:>10.3}", "disabled (A)", a);
    println!("{:<22} {:>10.3}", "disabled (B)", b);
    println!("{:<22} {:>10.3}", "enabled", on);
    println!("disabled overhead (A/A bound): {disabled_pct:.2}% (gate < {GATE_PCT}%)");
    println!("enabled overhead: {enabled_pct:.2}% over {spans} spans");

    // Sharded A/A: the distributed default (trace off) keeps shard
    // tracers in audit-only mode, so its overhead should also be noise.
    // The enabled gate is *effective* overhead — enabled minus the A/A
    // noise floor measured in the same session — so a noisy host cannot
    // fail the gate on jitter alone.
    let (sh_scale, sh_iters) = if quick { (10_000, 18) } else { (16_000, 24) };
    println!("\nsharded (2 shards x dop 2): scale={sh_scale} iters={sh_iters}");
    let sharded = sharded_observability_case(sh_scale, 7);
    let _ = sharded.run(false);
    let _ = sharded.run(true);
    let mut sh_a = Vec::with_capacity(sh_iters);
    let mut sh_b = Vec::with_capacity(sh_iters);
    let mut sh_on = Vec::with_capacity(sh_iters);
    for i in 0..sh_iters {
        if i % 2 == 0 {
            sh_a.push(sharded.run(false));
            sh_b.push(sharded.run(false));
        } else {
            sh_b.push(sharded.run(false));
            sh_a.push(sharded.run(false));
        }
        sh_on.push(sharded.run(true));
    }
    let sh_rows = sh_a[0].rows;
    assert!(
        sh_b.iter().chain(&sh_on).all(|m| m.rows == sh_rows),
        "distributed tracing changed the result row count"
    );
    let sh_spans = sh_on[0].spans;
    let (sa, sb, son) = (median_ms(&sh_a), median_ms(&sh_b), median_ms(&sh_on));
    let sh_disabled_pct = (sa - sb).abs() / sa.min(sb) * 100.0;
    let sh_enabled_pct = (son - sa.min(sb)) / sa.min(sb) * 100.0;
    let sh_effective_pct = (sh_enabled_pct - sh_disabled_pct).max(0.0);
    println!("{:<22} {:>10.3}", "disabled (A)", sa);
    println!("{:<22} {:>10.3}", "disabled (B)", sb);
    println!("{:<22} {:>10.3}", "enabled", son);
    println!("sharded disabled overhead (A/A bound): {sh_disabled_pct:.2}% (gate < {GATE_PCT}%)");
    println!(
        "sharded enabled overhead: {sh_enabled_pct:.2}% raw, {sh_effective_pct:.2}% over the \
         noise floor (gate < {GATE_PCT}%), {sh_spans} spans"
    );

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"scale\": {scale},");
    let _ = writeln!(json, "  \"iters\": {iters},");
    let _ = writeln!(json, "  \"rows\": {rows},");
    let _ = writeln!(json, "  \"spans\": {spans},");
    let _ = writeln!(json, "  \"disabled_a_median_ms\": {a:.4},");
    let _ = writeln!(json, "  \"disabled_b_median_ms\": {b:.4},");
    let _ = writeln!(json, "  \"enabled_median_ms\": {on:.4},");
    let _ = writeln!(json, "  \"enabled_overhead_pct\": {enabled_pct:.3},");
    let _ = writeln!(
        json,
        "  \"gate\": {{ \"metric\": \"disabled_overhead_pct\", \"required_below\": {GATE_PCT}, \
         \"measured\": {disabled_pct:.3} }},"
    );
    let _ = writeln!(json, "  \"sharded\": {{");
    let _ = writeln!(json, "    \"iters\": {sh_iters},");
    let _ = writeln!(json, "    \"rows\": {sh_rows},");
    let _ = writeln!(json, "    \"spans\": {sh_spans},");
    let _ = writeln!(json, "    \"disabled_a_median_ms\": {sa:.4},");
    let _ = writeln!(json, "    \"disabled_b_median_ms\": {sb:.4},");
    let _ = writeln!(json, "    \"enabled_median_ms\": {son:.4},");
    let _ = writeln!(json, "    \"enabled_overhead_pct\": {sh_enabled_pct:.3},");
    let _ = writeln!(
        json,
        "    \"gates\": [\n      {{ \"metric\": \"sharded_disabled_overhead_pct\", \
         \"required_below\": {GATE_PCT}, \"measured\": {sh_disabled_pct:.3} }},\n      \
         {{ \"metric\": \"sharded_effective_enabled_overhead_pct\", \
         \"required_below\": {GATE_PCT}, \"measured\": {sh_effective_pct:.3} }}\n    ]"
    );
    let _ = writeln!(json, "  }}");
    json.push_str("}\n");
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("bench_observability: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out_path}");

    if disabled_pct >= GATE_PCT {
        eprintln!(
            "bench_observability: disabled-overhead bound {disabled_pct:.2}% breaches the \
             {GATE_PCT}% gate"
        );
        return ExitCode::FAILURE;
    }
    if sh_disabled_pct >= GATE_PCT {
        eprintln!(
            "bench_observability: sharded disabled-overhead bound {sh_disabled_pct:.2}% \
             breaches the {GATE_PCT}% gate"
        );
        return ExitCode::FAILURE;
    }
    if sh_effective_pct >= GATE_PCT {
        eprintln!(
            "bench_observability: sharded effective enabled overhead {sh_effective_pct:.2}% \
             breaches the {GATE_PCT}% gate"
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
