//! Sharded-execution benchmark fixtures: the same query executed by a
//! [`ShardedService`] at 1, 2, 4, and 8 shards, plus the skewed
//! divergent-winner case.
//!
//! Shared by the `bench_shard` binary that emits `BENCH_shard.json`.
//! Every shard paces its replica's simulated disk with a per-page I/O
//! latency, so shard workers overlap their I/O stalls exactly like the
//! intra-query parallelism benchmark overlaps morsel workers — the
//! near-linear scan/join scaling is observable on a single-core runner
//! because what scales is simulated I/O wait, not CPU scheduling. The
//! network exchange is left unpaced here; its pacing knobs are exercised
//! by the executor benchmarks, and pacing the wire would only subtract a
//! constant from every configuration equally.
//!
//! The skew case is the tentpole argument in miniature: range-partitioned
//! data with a predicate covering most of shard 0's stripe and none of
//! the others'. Globally the predicate is selective, so a single-node
//! arbitration picks the B-tree plan; locally, shard 0 holds almost
//! nothing *but* matching rows, so its own arbitration picks the file
//! scan while the empty-stripe shards keep the index. Forcing the global
//! winner everywhere (`force_uniform_winner`) makes shard 0 fetch most of
//! its partition through unclustered index probes — the measured benefit
//! of per-shard arbitration is the ratio of those two wall-clocks.

use std::time::Instant;

use dqep_catalog::{CatalogBuilder, SystemConfig};
use dqep_service::{ShardConfig, ShardRouting, ShardedService};

/// The shard counts every scaling case is measured at.
pub const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// One scaling benchmark: the same query against pre-built services at
/// each shard count (services are built once — data generation and
/// partitioning are setup, not measurement).
pub struct ShardBenchCase {
    /// Benchmark name, stable across runs (used as the JSON key).
    pub name: &'static str,
    sql: String,
    binds: Vec<(String, i64)>,
    services: Vec<(usize, ShardedService)>,
}

/// Wall-clock measurement of one case at one shard count.
#[derive(Debug, Clone, Copy)]
pub struct ShardMeasurement {
    /// Number of shard replicas executed across.
    pub shards: usize,
    /// Result rows per execution.
    pub rows: u64,
    /// Mean wall-clock milliseconds per execution.
    pub millis: f64,
    /// Cross-shard + gather bytes per execution.
    pub net_bytes: u64,
    /// Frames on the wire per execution.
    pub net_frames: u64,
}

impl ShardBenchCase {
    fn binds(&self) -> Vec<(&str, i64)> {
        self.binds.iter().map(|(n, v)| (n.as_str(), *v)).collect()
    }

    /// Executes the case once at shard count `shards`, returning rows
    /// and wire traffic.
    ///
    /// # Panics
    /// Panics if execution fails or the shard count was not built —
    /// benchmark queries run ungoverned on a fault-free network, so
    /// failure is a bug.
    pub fn run(&self, shards: usize) -> (u64, u64, u64) {
        let (_, svc) = self
            .services
            .iter()
            .find(|(n, _)| *n == shards)
            .unwrap_or_else(|| panic!("case {} has no {shards}-shard service", self.name));
        let out = svc
            .execute(&self.sql, &self.binds())
            .expect("benchmark query must execute");
        (out.rows.len() as u64, out.net.bytes, out.net.frames)
    }

    /// Times `iters` executions at `shards` and averages.
    ///
    /// # Panics
    /// As [`Self::run`]; also panics if the case returns zero rows.
    pub fn measure(&self, shards: usize, iters: u32) -> ShardMeasurement {
        let (rows, net_bytes, net_frames) = self.run(shards); // warm-up, untimed
        assert!(rows > 0, "benchmark case {} produced no rows", self.name);
        let start = Instant::now();
        for _ in 0..iters.max(1) {
            std::hint::black_box(self.run(shards));
        }
        ShardMeasurement {
            shards,
            rows,
            millis: start.elapsed().as_secs_f64() * 1e3 / f64::from(iters.max(1)),
            net_bytes,
            net_frames,
        }
    }
}

fn config(shards: usize, latency_us: u64, seed: u64) -> ShardConfig {
    ShardConfig {
        shards,
        io_latency_micros: latency_us,
        data_seed: seed,
        ..ShardConfig::default()
    }
}

/// Full scan of one large relation, gathered to the coordinator: each
/// shard reads `1/N` of the pages, so the paced I/O divides by the shard
/// count — the pure-scaling case behind the 4-shard CI gate.
fn scan_case(rows: u64, seed: u64, latency_us: u64, counts: &[usize]) -> ShardBenchCase {
    let catalog = || {
        CatalogBuilder::new(SystemConfig::paper_1994())
            .relation("big", rows, 256, |r| {
                r.attr("a", rows as f64).attr("b", 64.0).btree("a", false)
            })
            .build()
            .expect("bench catalog")
    };
    ShardBenchCase {
        name: "scan",
        sql: "SELECT * FROM big WHERE big.a < :v0".into(),
        binds: vec![("v0".into(), rows as i64 + 1)],
        services: counts
            .iter()
            .map(|&n| (n, ShardedService::new(catalog(), config(n, latency_us, seed))))
            .collect(),
    }
}

/// Two-relation equi-join: both sides scan locally, hash-repartition on
/// the join key over the exchange, and join shard-locally; scans
/// dominate under paced I/O, so scaling stays near-linear with the
/// repartition traffic as visible overhead.
fn join_case(rows: u64, seed: u64, latency_us: u64, counts: &[usize]) -> ShardBenchCase {
    let jdomain = (rows / 4).max(1) as f64;
    let catalog = || {
        CatalogBuilder::new(SystemConfig::paper_1994())
            .relation("fact", rows, 256, |r| {
                r.attr("a", rows as f64).attr("j", jdomain).btree("a", false)
            })
            .relation("dim", rows / 2, 256, |r| {
                r.attr("a", (rows / 2) as f64).attr("j", jdomain).btree("j", false)
            })
            .build()
            .expect("bench catalog")
    };
    ShardBenchCase {
        name: "join",
        sql: "SELECT * FROM fact, dim WHERE fact.j = dim.j AND fact.a < :v0".into(),
        binds: vec![("v0".into(), rows as i64 + 1)],
        services: counts
            .iter()
            .map(|&n| (n, ShardedService::new(catalog(), config(n, latency_us, seed))))
            .collect(),
    }
}

/// The scaling cases measured at every shard count.
#[must_use]
pub fn shard_cases(rows: u64, seed: u64, latency_us: u64, counts: &[usize]) -> Vec<ShardBenchCase> {
    vec![
        scan_case(rows, seed, latency_us, counts),
        join_case(rows, seed, latency_us, counts),
    ]
}

/// What the skewed divergent-winner case measured.
#[derive(Debug, Clone, Copy)]
pub struct SkewMeasurement {
    /// Wall-clock ms with per-shard arbitration (the default).
    pub divergent_millis: f64,
    /// Wall-clock ms with the single-node winner forced everywhere.
    pub forced_millis: f64,
    /// Plan nodes whose winners diverged across shards (must be > 0 for
    /// the case to mean anything).
    pub divergent_nodes: usize,
    /// Result rows (identical in both configurations, asserted).
    pub rows: u64,
}

impl SkewMeasurement {
    /// Speedup of per-shard arbitration over the forced uniform winner.
    #[must_use]
    pub fn benefit(&self) -> f64 {
        self.forced_millis / self.divergent_millis
    }
}

/// Builds and measures the skew case: range-partitioned uniform data
/// with a predicate spanning most of shard 0's stripe (see the module
/// docs for why the winners diverge).
///
/// # Panics
/// Panics if either configuration fails, produces differing result
/// multisets, or the default configuration fails to diverge.
#[must_use]
pub fn measure_skew(rows: u64, seed: u64, latency_us: u64, iters: u32) -> SkewMeasurement {
    let shards = 4usize;
    let catalog = || {
        CatalogBuilder::new(SystemConfig::paper_1994())
            .relation("skewed", rows, 256, |r| {
                r.attr("a", rows as f64).attr("j", 64.0).btree("a", false)
            })
            .build()
            .expect("bench catalog")
    };
    let build = |force: bool| {
        ShardedService::new(
            catalog(),
            ShardConfig {
                routing: ShardRouting::Range { attr: 0 },
                force_uniform_winner: force,
                ..config(shards, latency_us, seed)
            },
        )
    };
    // Shard 0's stripe is [0, rows/4); cover ~20% of it, i.e. ~5% of the
    // table. Globally that is selective enough for the unclustered
    // B-tree; on shard 0 it is a fifth of the partition, past the local
    // break-even, so shard 0's own arbitration picks the file scan.
    let sql = "SELECT * FROM skewed WHERE skewed.a < :v0";
    let cutoff = (rows as i64 / i64::try_from(shards).unwrap_or(4)) * 20 / 100;
    let binds = [("v0", cutoff)];

    let divergent_svc = build(false);
    let forced_svc = build(true);
    let time = |svc: &ShardedService| {
        let warm = svc.execute(sql, &binds).expect("skew case executes");
        let start = Instant::now();
        for _ in 0..iters.max(1) {
            std::hint::black_box(svc.execute(sql, &binds).expect("skew case executes"));
        }
        (start.elapsed().as_secs_f64() * 1e3 / f64::from(iters.max(1)), warm)
    };
    let (divergent_millis, div_out) = time(&divergent_svc);
    let (forced_millis, forced_out) = time(&forced_svc);

    let sorted = |mut v: Vec<Vec<i64>>| {
        v.sort_unstable();
        v
    };
    let rows = forced_out.rows.len() as u64;
    let divergent_nodes = div_out.divergent_nodes.len();
    assert!(
        divergent_nodes > 0 || divergent_millis <= forced_millis,
        "skew case produced no divergence and no benefit: winners {:?}",
        div_out.winner_counts()
    );
    assert_eq!(
        sorted(div_out.rows),
        sorted(forced_out.rows),
        "winner choice changed the result"
    );
    SkewMeasurement {
        divergent_millis,
        forced_millis,
        divergent_nodes,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_cases_execute_at_every_count() {
        for case in shard_cases(600, 7, 0, &[1, 2]) {
            for &n in &[1usize, 2] {
                let (rows, _, _) = case.run(n);
                assert!(rows > 0, "{} at {n} shards", case.name);
            }
            let (one, _, _) = case.run(1);
            let (two, _, frames) = case.run(2);
            assert_eq!(one, two, "{}: row count varies with shard count", case.name);
            assert!(frames > 0, "{}: no wire traffic at 2 shards", case.name);
        }
    }

    #[test]
    fn skew_case_diverges() {
        let m = measure_skew(2_000, 7, 0, 1);
        assert!(m.divergent_nodes > 0, "expected divergent winners");
        assert!(m.rows > 0);
    }
}
