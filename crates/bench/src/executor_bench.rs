//! Executor micro-benchmark fixtures: tuple vs batch execution over the
//! same physical plans.
//!
//! Shared by the criterion bench (`benches/executor_batch.rs`) and the
//! `bench_executor` binary that emits `BENCH_executor.json`. Each case
//! holds a generated database plus a physical plan and can be executed in
//! either [`ExecMode`]; measurements report wall-clock rows/sec and
//! ns/row, which isolates interpretation overhead — the simulated-time
//! accounting is identical between modes by construction (the
//! batch-parity tests pin that down).

use std::sync::Arc;
use std::time::Instant;

use dqep_algebra::{CompareOp, JoinPred, PhysicalOp, SelectPred};
use dqep_catalog::{Catalog, CatalogBuilder, SystemConfig};
use dqep_core::Optimizer;
use dqep_cost::{Bindings, Cost, Environment, PlanStats};
use dqep_executor::{execute_plan_mode, ExecMode, ResourceLimits};
use dqep_harness::{paper_query, BindingSampler};
use dqep_interval::Interval;
use dqep_plan::{PlanNode, PlanNodeBuilder};
use dqep_storage::StoredDatabase;

/// One executor benchmark: a stored database and a plan over it.
pub struct ExecBenchCase {
    /// Benchmark name, stable across runs (used as the JSON key).
    pub name: &'static str,
    catalog: Catalog,
    db: StoredDatabase,
    plan: Arc<PlanNode>,
    env: Environment,
    bindings: Bindings,
}

/// Wall-clock measurement of one case in one mode.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Result rows per execution.
    pub rows: u64,
    /// Mean wall-clock nanoseconds per *input* row processed (we
    /// normalize by result rows, the stable denominator across modes).
    pub ns_per_row: f64,
    /// Result rows per second.
    pub rows_per_sec: f64,
}

impl ExecBenchCase {
    /// Executes the case once, returning the result row count.
    ///
    /// # Panics
    /// Panics if execution fails — benchmark plans run ungoverned against
    /// fault-free storage, so failure is a bug.
    pub fn run(&self, mode: ExecMode) -> u64 {
        let (summary, _) = execute_plan_mode(
            &self.plan,
            &self.db,
            &self.catalog,
            &self.env,
            &self.bindings,
            ResourceLimits::unlimited(),
            mode,
        )
        .expect("benchmark plan must execute");
        summary.rows
    }

    /// Times `iters` executions and averages.
    ///
    /// # Panics
    /// As [`Self::run`]; also panics if the case returns zero rows (the
    /// normalization would be meaningless).
    pub fn measure(&self, mode: ExecMode, iters: u32) -> Measurement {
        // One warm-up run, untimed.
        let rows = self.run(mode);
        assert!(rows > 0, "benchmark case {} produced no rows", self.name);
        let start = Instant::now();
        for _ in 0..iters.max(1) {
            std::hint::black_box(self.run(mode));
        }
        let nanos = start.elapsed().as_nanos() as f64 / f64::from(iters.max(1));
        Measurement {
            rows,
            ns_per_row: nanos / rows as f64,
            rows_per_sec: rows as f64 * 1e9 / nanos,
        }
    }
}

fn node(
    b: &mut PlanNodeBuilder,
    op: PhysicalOp,
    children: Vec<Arc<PlanNode>>,
    rows: f64,
) -> Arc<PlanNode> {
    b.node(op, children, PlanStats::new(Interval::point(rows), 512.0), Cost::ZERO)
}

/// Full sequential scan of `rows` base rows.
fn scan_case(rows: u64, seed: u64) -> ExecBenchCase {
    let catalog = CatalogBuilder::new(SystemConfig::paper_1994())
        .relation("big", rows, 16, |r| r.attr("a", rows as f64).attr("b", 64.0))
        .build()
        .expect("bench catalog");
    let db = StoredDatabase::generate(&catalog, seed);
    let rel = catalog.relation_by_name("big").expect("relation");
    let mut b = PlanNodeBuilder::new();
    let plan = node(&mut b, PhysicalOp::FileScan { relation: rel.id }, vec![], rows as f64);
    let env = Environment::dynamic_compile_time(&catalog.config);
    ExecBenchCase { name: "scan", catalog, db, plan, env, bindings: Bindings::new() }
}

/// Filter over a sequential scan, ~50% selectivity — the headline
/// vectorization case: the batch path evaluates the predicate into a
/// selection vector without copying rows.
fn scan_filter_case(rows: u64, seed: u64) -> ExecBenchCase {
    let catalog = CatalogBuilder::new(SystemConfig::paper_1994())
        .relation("big", rows, 16, |r| r.attr("a", rows as f64).attr("b", 64.0))
        .build()
        .expect("bench catalog");
    let db = StoredDatabase::generate(&catalog, seed);
    let rel = catalog.relation_by_name("big").expect("relation");
    let ra = rel.attr_id("a").expect("attr");
    let mut b = PlanNodeBuilder::new();
    let scan = node(&mut b, PhysicalOp::FileScan { relation: rel.id }, vec![], rows as f64);
    let plan = node(
        &mut b,
        PhysicalOp::Filter { predicate: SelectPred::bound(ra, CompareOp::Lt, (rows / 2) as i64) },
        vec![scan],
        rows as f64 / 2.0,
    );
    let env = Environment::dynamic_compile_time(&catalog.config);
    ExecBenchCase { name: "scan_filter", catalog, db, plan, env, bindings: Bindings::new() }
}

/// In-memory hash join: build on the smaller left input, probe with the
/// larger right (~1 match per probe row).
fn hash_join_case(rows: u64, seed: u64) -> ExecBenchCase {
    let build_rows = (rows / 8).max(1);
    let catalog = CatalogBuilder::new(SystemConfig::paper_1994())
        .relation("dim", build_rows, 16, |r| {
            r.attr("k", build_rows as f64).attr("v", 64.0)
        })
        .relation("fact", rows, 16, |r| r.attr("fk", build_rows as f64).attr("m", 64.0))
        .build()
        .expect("bench catalog");
    let db = StoredDatabase::generate(&catalog, seed);
    let dim = catalog.relation_by_name("dim").expect("relation");
    let fact = catalog.relation_by_name("fact").expect("relation");
    let mut b = PlanNodeBuilder::new();
    let build = node(&mut b, PhysicalOp::FileScan { relation: dim.id }, vec![], build_rows as f64);
    let probe = node(&mut b, PhysicalOp::FileScan { relation: fact.id }, vec![], rows as f64);
    let plan = node(
        &mut b,
        PhysicalOp::HashJoin {
            predicates: vec![JoinPred::new(
                dim.attr_id("k").expect("attr"),
                fact.attr_id("fk").expect("attr"),
            )],
        },
        vec![build, probe],
        rows as f64,
    );
    let env = Environment::dynamic_compile_time(&catalog.config);
    // Grant enough memory to keep the build in memory: this benchmark
    // targets the vectorized probe loop, not Grace partitioning.
    let bindings = Bindings::new().with_memory((build_rows as f64 / 4.0).max(64.0));
    ExecBenchCase { name: "hash_join", catalog, db, plan, env, bindings }
}

/// External sort over a sequential scan on a non-key attribute, with a
/// memory grant large enough to sort in memory — the batch path fills
/// the sort buffer column-wise and streams sorted output in batches.
fn sort_case(rows: u64, seed: u64) -> ExecBenchCase {
    let catalog = CatalogBuilder::new(SystemConfig::paper_1994())
        .relation("big", rows, 16, |r| r.attr("a", rows as f64).attr("b", 64.0))
        .build()
        .expect("bench catalog");
    let db = StoredDatabase::generate(&catalog, seed);
    let rel = catalog.relation_by_name("big").expect("relation");
    let rb = rel.attr_id("b").expect("attr");
    let mut b = PlanNodeBuilder::new();
    let scan = node(&mut b, PhysicalOp::FileScan { relation: rel.id }, vec![], rows as f64);
    let plan = node(&mut b, PhysicalOp::Sort { attr: rb }, vec![scan], rows as f64);
    let env = Environment::dynamic_compile_time(&catalog.config);
    // Grant enough memory to keep the sort in-memory: this benchmark
    // targets the fill/emit loops, not external-merge I/O.
    let bindings = Bindings::new().with_memory((rows as f64).max(64.0));
    ExecBenchCase { name: "sort", catalog, db, plan, env, bindings }
}

/// The paper's query 3 (4-relation chain) through the optimizer, at
/// mid-range selectivities — end-to-end interpretation overhead on a
/// realistic dynamic plan.
fn paper_query_case(seed: u64) -> ExecBenchCase {
    let w = paper_query(3, seed);
    let env = Environment::dynamic_compile_time(&w.catalog.config);
    let plan = Optimizer::new(&w.catalog, &env)
        .optimize(&w.query)
        .expect("paper query optimizes")
        .plan;
    let db = StoredDatabase::generate(&w.catalog, seed);
    let bindings = BindingSampler::new(seed, false).sample(&w);
    ExecBenchCase { name: "paper_q3", catalog: w.catalog, db, plan, env, bindings }
}

/// The standard suite: scan, scan+filter, hash join, sort, paper query 3.
/// `scale` is the large-table row count (the hash-join probe side).
#[must_use]
pub fn standard_cases(scale: u64, seed: u64) -> Vec<ExecBenchCase> {
    vec![
        scan_case(scale, seed),
        scan_filter_case(scale, seed),
        hash_join_case(scale, seed),
        sort_case(scale, seed),
        paper_query_case(seed),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every case runs in both modes and produces identical row counts.
    #[test]
    fn cases_execute_in_both_modes() {
        for case in standard_cases(2_000, 5) {
            let t = case.run(ExecMode::Tuple);
            let b = case.run(ExecMode::Batch);
            assert_eq!(t, b, "{}: tuple and batch row counts differ", case.name);
            assert!(t > 0, "{}: no rows", case.name);
        }
    }
}
