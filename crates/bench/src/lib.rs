//! Shared helpers for the benchmark suite and the `reproduce` binary.

pub mod executor_bench;
pub mod live_bench;
pub mod observability_bench;
pub mod parallel_bench;
pub mod reopt_bench;
pub mod service_bench;
pub mod shard_bench;

use std::sync::OnceLock;

use dqep_harness::experiments::{run_all, QueryResults};
use dqep_harness::params::ExperimentParams;
use dqep_harness::run_all_parallel;

/// Runs the full experimental protocol once per process and caches the
/// results, so every bench/figure can render its table without re-running
/// the five queries × three scenarios.
pub fn full_results() -> &'static [QueryResults] {
    static CACHE: OnceLock<Vec<QueryResults>> = OnceLock::new();
    CACHE.get_or_init(|| run_all(&ExperimentParams::paper()))
}

/// A reduced protocol (fewer invocations, no memory variants) for smoke
/// runs.
pub fn quick_results() -> &'static [QueryResults] {
    static CACHE: OnceLock<Vec<QueryResults>> = OnceLock::new();
    CACHE.get_or_init(|| {
        // Quick tables do not report measured times, so the parallel
        // runner's timing distortion is acceptable.
        run_all_parallel(&ExperimentParams {
            invocations: 10,
            with_memory_uncertainty: false,
            ..ExperimentParams::paper()
        })
    })
}
