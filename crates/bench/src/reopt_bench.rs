//! Mid-query re-optimization benchmark fixtures: the same query executed
//! startup-only (arbitrate once at `open`, then commit) and with runtime
//! checkpoints (`execute_plan_reopt`).
//!
//! Shared by the `bench_reopt` binary that emits `BENCH_reopt.json`. The
//! measurements gate on *simulated* seconds — the deterministic CPU + I/O
//! cost accounting both paths share — so the comparison is exact and
//! host-independent:
//!
//! * **drift-free**: uniformly distributed data, where the bind-time
//!   estimates hold. Checkpoints observe cardinalities inside their
//!   intervals, nothing escapes, and the whole apparatus must cost
//!   (almost) nothing — the overhead gate.
//! * **skew**: Zipf-distributed data under the same uniform estimates.
//!   The first checkpoint escapes its interval, the remainder is
//!   re-arbitrated with the observed cardinality, and the adopted plan
//!   must beat the startup-only decision — the win gate.

use std::sync::Arc;

use dqep_algebra::{CompareOp, HostVar, JoinPred, LogicalExpr, SelectPred};
use dqep_catalog::{Catalog, CatalogBuilder, SystemConfig};
use dqep_core::Optimizer;
use dqep_cost::{Bindings, Environment};
use dqep_executor::{
    execute_plan_mode, execute_plan_reopt, ExecMode, ReoptConfig, ReoptCounters, ResourceLimits,
};
use dqep_plan::PlanNode;
use dqep_storage::{StoredDatabase, ValueDistribution};

/// One re-optimization benchmark: a stored database and an optimized
/// dynamic plan whose estimates either hold (drift-free) or drift (skew).
pub struct ReoptBenchCase {
    /// Benchmark name, stable across runs (used as the JSON key).
    pub name: &'static str,
    catalog: Catalog,
    db: StoredDatabase,
    plan: Arc<PlanNode>,
    env: Environment,
    bindings: Bindings,
}

/// Simulated-cost comparison of the two execution paths on one case.
#[derive(Debug, Clone, Copy)]
pub struct ReoptMeasurement {
    /// Result rows (identical on both paths — asserted).
    pub rows: u64,
    /// Simulated seconds of the startup-only execution.
    pub startup_seconds: f64,
    /// Simulated seconds of the re-optimizing execution.
    pub reopt_seconds: f64,
    /// Re-optimization counters from the checkpointed run.
    pub counters: ReoptCounters,
}

impl ReoptMeasurement {
    /// Re-optimizing cost relative to startup-only (1.0 = identical,
    /// below 1.0 = re-optimization won).
    #[must_use]
    pub fn ratio(&self) -> f64 {
        self.reopt_seconds / self.startup_seconds.max(f64::MIN_POSITIVE)
    }
}

impl ReoptBenchCase {
    /// Runs both paths once and compares their simulated cost. Simulated
    /// accounting is deterministic, so a single execution per path is the
    /// whole measurement.
    ///
    /// # Panics
    /// Panics if either path fails or the result multisets diverge —
    /// benchmark plans run ungoverned against fault-free storage, so both
    /// are bugs (and parity is pinned down by `tests/reopt_parity.rs`).
    #[must_use]
    pub fn measure(&self) -> ReoptMeasurement {
        let (summary, _) = execute_plan_mode(
            &self.plan,
            &self.db,
            &self.catalog,
            &self.env,
            &self.bindings,
            ResourceLimits::unlimited(),
            ExecMode::Batch,
        )
        .expect("startup-only execution must succeed");
        let outcome = execute_plan_reopt(
            &self.plan,
            &self.db,
            &self.catalog,
            &self.env,
            &self.bindings,
            ResourceLimits::unlimited(),
            ExecMode::Batch,
            1,
            ReoptConfig {
                backoff_base_ms: 0,
                ..ReoptConfig::default()
            },
        )
        .expect("re-optimizing execution must succeed");
        assert_eq!(
            summary.rows,
            outcome.summary.rows,
            "{}: result row counts diverged",
            self.name
        );
        ReoptMeasurement {
            rows: summary.rows,
            startup_seconds: summary.simulated_seconds(&self.catalog.config),
            reopt_seconds: outcome.summary.simulated_seconds(&self.catalog.config),
            counters: outcome.report.counters,
        }
    }
}

/// A three-relation chain `(σ_{a<v} r ⋈ s) ⋈ t` whose first join is a
/// hash join — its build side (the filtered `r`) is the runtime
/// checkpoint — and whose *second* join picks between an index join into
/// `t` (cheap when few rows flow up) and a bulk hash join (cheap when
/// many do). The filter's true cardinality is the decision input that
/// estimates get wrong under skew: Zipf mass concentrates at small `a`,
/// so `a < v` keeps far more rows than the uniform estimate claims, and
/// the checkpoint's escape flips the second join from per-row probing to
/// the bulk plan.
///
/// `bound`: `Some(v)` applies that filter; `None` joins the bare
/// relations, whose cardinalities are known exactly, so no checkpoint can
/// escape regardless of the distribution.
fn case(
    name: &'static str,
    filter_dist: ValueDistribution,
    scale: u64,
    bound: Option<i64>,
    seed: u64,
) -> ReoptBenchCase {
    let jdom = (scale / 4) as f64;
    let kdom = (scale * 8) as f64;
    let catalog = CatalogBuilder::new(SystemConfig::paper_1994())
        .relation("r", scale, 512, |r| {
            r.attr("a", scale as f64).attr("j", jdom).btree("a", false).btree("j", false)
        })
        .relation("s", scale / 2, 512, |r| {
            r.attr("j", jdom).attr("k", kdom).btree("j", false).btree("k", false)
        })
        .relation("t", scale * 8, 512, |r| {
            r.attr("k", kdom).attr("b", 64.0).btree("k", false)
        })
        .build()
        .expect("bench catalog");
    let r = catalog.relation_by_name("r").expect("relation");
    // Skew only the filter column `r.a`: the join columns stay uniform,
    // so the join-size estimates the re-planner relies on remain sound
    // and the filter's drift is the one mis-estimate in the query.
    let r_id = r.id;
    let db = StoredDatabase::generate_profiled(&catalog, seed, |rel, ai| {
        if rel == r_id && ai == 0 {
            filter_dist
        } else {
            ValueDistribution::Uniform
        }
    });
    let s = catalog.relation_by_name("s").expect("relation");
    let t = catalog.relation_by_name("t").expect("relation");
    let mut outer = LogicalExpr::get(r.id);
    let mut bindings = Bindings::new();
    if let Some(v) = bound {
        outer = outer.select(SelectPred::unbound(
            r.attr_id("a").expect("attr"),
            CompareOp::Lt,
            HostVar(0),
        ));
        bindings = bindings.with_value(HostVar(0), v);
    }
    let query = outer
        .join(
            LogicalExpr::get(s.id),
            vec![JoinPred::new(r.attr_id("j").expect("attr"), s.attr_id("j").expect("attr"))],
        )
        .join(
            LogicalExpr::get(t.id),
            vec![JoinPred::new(s.attr_id("k").expect("attr"), t.attr_id("k").expect("attr"))],
        );
    let env = Environment::dynamic_compile_time(&catalog.config);
    let plan = Optimizer::new(&catalog, &env)
        .optimize(&query)
        .expect("bench plan optimizes")
        .plan;
    ReoptBenchCase { name, catalog, db, plan, env, bindings }
}

/// The standard re-optimization suite: one drift-free case (uniform data,
/// estimates hold) and one skew case (Zipf data, estimates drift).
#[must_use]
pub fn reopt_cases(scale: u64, seed: u64) -> Vec<ReoptBenchCase> {
    let bound = (scale / 25) as i64;
    vec![
        case("drift_free", ValueDistribution::Uniform, scale, None, seed),
        case("skew", ValueDistribution::Zipf { exponent: 1.1 }, scale, Some(bound), seed),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The two fixtures behave as designed: nothing escapes on uniform
    /// data, and the skew case escapes, re-plans, and does not regress.
    #[test]
    fn fixtures_split_cleanly() {
        let cases = reopt_cases(800, 3);
        let drift_free = cases[0].measure();
        assert_eq!(drift_free.counters.escapes, 0, "{:?}", drift_free.counters);
        assert!(
            drift_free.ratio() <= 1.05,
            "drift-free overhead {:.4} above 5%",
            drift_free.ratio()
        );
        let skew = cases[1].measure();
        assert!(skew.counters.escapes >= 1, "{:?}", skew.counters);
        assert!(skew.counters.replans_adopted >= 1, "{:?}", skew.counters);
        assert!(
            skew.ratio() <= 1.0 + 1e-9,
            "skew case must not regress: ratio {:.4}",
            skew.ratio()
        );
    }
}

