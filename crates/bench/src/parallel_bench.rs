//! Intra-query parallelism benchmark fixtures: the same physical plan
//! executed at DOP 1, 2, and 4.
//!
//! Shared by the `bench_parallel` binary that emits `BENCH_parallel.json`.
//! Every case paces its simulated disk with a per-page I/O latency
//! ([`dqep_storage::SimDisk::set_io_latency_micros`]), so the wall-clock
//! shape of a query resembles a device with real latency: exchange
//! workers overlap their I/O stalls, which is where partition parallelism
//! pays off. Because the stalls are sleeps, the speedup is observable
//! even on a single-core runner — what is measured is I/O overlap, not
//! CPU scheduling. Simulated-cost accounting is identical at every DOP
//! (the parallel-parity tests pin that down); the benchmark measures the
//! wall-clock difference that remains.

use std::sync::Arc;
use std::time::Instant;

use dqep_algebra::{JoinPred, PhysicalOp};
use dqep_catalog::{Catalog, CatalogBuilder, SystemConfig};
use dqep_cost::{Bindings, Cost, Environment, PlanStats};
use dqep_executor::{execute_plan_dop, ExecMode, ResourceLimits};
use dqep_interval::Interval;
use dqep_plan::{PlanNode, PlanNodeBuilder};
use dqep_storage::StoredDatabase;

/// The degrees of parallelism every case is measured at.
pub const DOPS: [usize; 3] = [1, 2, 4];

/// One parallelism benchmark: a stored database (with a paced disk) and a
/// plan over it.
pub struct ParallelBenchCase {
    /// Benchmark name, stable across runs (used as the JSON key).
    pub name: &'static str,
    catalog: Catalog,
    db: StoredDatabase,
    plan: Arc<PlanNode>,
    env: Environment,
    bindings: Bindings,
}

/// Wall-clock measurement of one case at one DOP.
#[derive(Debug, Clone, Copy)]
pub struct DopMeasurement {
    /// Degree of parallelism executed at.
    pub dop: usize,
    /// Result rows per execution.
    pub rows: u64,
    /// Mean wall-clock milliseconds per execution.
    pub millis: f64,
}

impl ParallelBenchCase {
    /// Executes the case once at `dop`, returning the result row count.
    ///
    /// # Panics
    /// Panics if execution fails — benchmark plans run ungoverned against
    /// fault-free storage, so failure is a bug.
    pub fn run(&self, dop: usize) -> u64 {
        let (summary, _) = execute_plan_dop(
            &self.plan,
            &self.db,
            &self.catalog,
            &self.env,
            &self.bindings,
            ResourceLimits::unlimited(),
            ExecMode::default(),
            dop,
        )
        .expect("benchmark plan must execute");
        summary.rows
    }

    /// Times `iters` executions at `dop` and averages.
    ///
    /// # Panics
    /// As [`Self::run`]; also panics if the case returns zero rows.
    pub fn measure(&self, dop: usize, iters: u32) -> DopMeasurement {
        // One warm-up run, untimed.
        let rows = self.run(dop);
        assert!(rows > 0, "benchmark case {} produced no rows", self.name);
        let start = Instant::now();
        for _ in 0..iters.max(1) {
            std::hint::black_box(self.run(dop));
        }
        DopMeasurement {
            dop,
            rows,
            millis: start.elapsed().as_secs_f64() * 1e3 / f64::from(iters.max(1)),
        }
    }
}

fn node(
    b: &mut PlanNodeBuilder,
    op: PhysicalOp,
    children: Vec<Arc<PlanNode>>,
    rows: f64,
) -> Arc<PlanNode> {
    b.node(op, children, PlanStats::new(Interval::point(rows), 512.0), Cost::ZERO)
}

/// Full sequential scan of `rows` base rows: pure partition-parallel I/O.
fn scan_case(rows: u64, seed: u64, latency_us: u64) -> ParallelBenchCase {
    let catalog = CatalogBuilder::new(SystemConfig::paper_1994())
        .relation("big", rows, 256, |r| r.attr("a", rows as f64).attr("b", 64.0))
        .build()
        .expect("bench catalog");
    let db = StoredDatabase::generate(&catalog, seed);
    db.disk.set_io_latency_micros(latency_us);
    let rel = catalog.relation_by_name("big").expect("relation");
    let mut b = PlanNodeBuilder::new();
    let plan = node(&mut b, PhysicalOp::FileScan { relation: rel.id }, vec![], rows as f64);
    let env = Environment::dynamic_compile_time(&catalog.config);
    ParallelBenchCase { name: "scan", catalog, db, plan, env, bindings: Bindings::new() }
}

/// In-memory hash join, build on the smaller input: both scans fan out
/// into morsel workers and the partition build + probe runs per-partition
/// on worker threads. The acceptance gate case.
fn hash_join_case(rows: u64, seed: u64, latency_us: u64) -> ParallelBenchCase {
    let build_rows = (rows / 8).max(1);
    let catalog = CatalogBuilder::new(SystemConfig::paper_1994())
        .relation("dim", build_rows, 256, |r| {
            r.attr("k", build_rows as f64).attr("v", 64.0)
        })
        .relation("fact", rows, 256, |r| r.attr("fk", build_rows as f64).attr("m", 64.0))
        .build()
        .expect("bench catalog");
    let db = StoredDatabase::generate(&catalog, seed);
    db.disk.set_io_latency_micros(latency_us);
    let dim = catalog.relation_by_name("dim").expect("relation");
    let fact = catalog.relation_by_name("fact").expect("relation");
    let mut b = PlanNodeBuilder::new();
    let build = node(&mut b, PhysicalOp::FileScan { relation: dim.id }, vec![], build_rows as f64);
    let probe = node(&mut b, PhysicalOp::FileScan { relation: fact.id }, vec![], rows as f64);
    let plan = node(
        &mut b,
        PhysicalOp::HashJoin {
            predicates: vec![JoinPred::new(
                dim.attr_id("k").expect("attr"),
                fact.attr_id("fk").expect("attr"),
            )],
        },
        vec![build, probe],
        rows as f64,
    );
    let env = Environment::dynamic_compile_time(&catalog.config);
    // Keep the build resident: the parallel in-memory strategy is the
    // measured path (Grace adds spill I/O that the serial path also pays).
    let bindings = Bindings::new().with_memory(1024.0);
    ParallelBenchCase { name: "hash_join", catalog, db, plan, env, bindings }
}

/// External-ish sort over a parallel scan: run generation splits each
/// chunk across workers, and the feeding scan is morsel-parallel.
fn sort_case(rows: u64, seed: u64, latency_us: u64) -> ParallelBenchCase {
    let catalog = CatalogBuilder::new(SystemConfig::paper_1994())
        .relation("big", rows, 256, |r| r.attr("a", rows as f64).attr("b", 64.0))
        .build()
        .expect("bench catalog");
    let db = StoredDatabase::generate(&catalog, seed);
    db.disk.set_io_latency_micros(latency_us);
    let rel = catalog.relation_by_name("big").expect("relation");
    let ra = rel.attr_id("a").expect("attr");
    let mut b = PlanNodeBuilder::new();
    let scan = node(&mut b, PhysicalOp::FileScan { relation: rel.id }, vec![], rows as f64);
    let plan = node(&mut b, PhysicalOp::Sort { attr: ra }, vec![scan], rows as f64);
    let env = Environment::dynamic_compile_time(&catalog.config);
    let bindings = Bindings::new().with_memory(1024.0);
    ParallelBenchCase { name: "sort", catalog, db, plan, env, bindings }
}

/// The standard parallel suite: scan, hash join, sort, all over a disk
/// paced at `latency_us` per page.
#[must_use]
pub fn parallel_cases(scale: u64, seed: u64, latency_us: u64) -> Vec<ParallelBenchCase> {
    vec![
        scan_case(scale, seed, latency_us),
        hash_join_case(scale, seed, latency_us),
        sort_case(scale, seed, latency_us),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every case produces the same row count at every DOP (unpaced, so
    /// the test is fast).
    #[test]
    fn cases_agree_across_dops() {
        for case in parallel_cases(2_000, 5, 0) {
            let serial = case.run(1);
            assert!(serial > 0, "{}: no rows", case.name);
            for dop in [2usize, 4] {
                assert_eq!(case.run(dop), serial, "{} at dop {dop}", case.name);
            }
        }
    }
}
