//! Figure 5 bench: prints the optimization-time table and measures static
//! vs dynamic optimization of each paper query (the paper reports < 3x;
//! the slowdown stems from weakened branch-and-bound pruning).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dqep_bench::quick_results;
use dqep_core::Optimizer;
use dqep_cost::Environment;
use dqep_harness::experiments::fig5;
use dqep_harness::paper_query;

fn bench(c: &mut Criterion) {
    println!("\n{}", fig5::table(quick_results()));

    let mut group = c.benchmark_group("fig5_optimization");
    for k in [2usize, 3, 4, 5] {
        let w = paper_query(k, 11);
        let static_env = Environment::static_compile_time(&w.catalog.config);
        let dynamic_env = Environment::dynamic_compile_time(&w.catalog.config);
        group.bench_with_input(BenchmarkId::new("static", k), &k, |b, _| {
            b.iter(|| {
                Optimizer::new(&w.catalog, &static_env)
                    .optimize(&w.query)
                    .unwrap()
                    .stats
                    .plan_nodes
            })
        });
        group.bench_with_input(BenchmarkId::new("dynamic", k), &k, |b, _| {
            b.iter(|| {
                Optimizer::new(&w.catalog, &dynamic_env)
                    .optimize(&w.query)
                    .unwrap()
                    .stats
                    .plan_nodes
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench
}
criterion_main!(benches);
