//! Break-even bench: prints the break-even table (paper: N=1 vs static,
//! N=2..4 vs run-time optimization) and measures full scenario runs.

use criterion::{criterion_group, criterion_main, Criterion};
use dqep_bench::quick_results;
use dqep_harness::experiments::breakeven;
use dqep_harness::{paper_query, run_dynamic, run_runtime_opt, run_static, BindingSampler};

fn bench(c: &mut Criterion) {
    println!("\n{}", breakeven::table(quick_results()));

    let w = paper_query(2, 11);
    let bindings = BindingSampler::new(5, false).sample_n(&w, 5);
    let mut group = c.benchmark_group("breakeven_scenarios");
    group.bench_function("static_scenario_q2", |b| {
        b.iter(|| run_static(&w, &bindings).avg_exec())
    });
    group.bench_function("dynamic_scenario_q2", |b| {
        b.iter(|| run_dynamic(&w, &bindings, false).avg_exec())
    });
    group.bench_function("runtime_opt_scenario_q2", |b| {
        b.iter(|| run_runtime_opt(&w, &bindings).avg_exec())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
