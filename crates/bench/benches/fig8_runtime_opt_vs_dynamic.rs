//! Figure 8 bench: prints the run-time-optimization-vs-dynamic table and
//! measures the two competing per-invocation mechanisms head to head:
//! re-optimizing with bound parameters (`a`) vs re-evaluating the dynamic
//! plan's cost functions (`f_cpu`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dqep_bench::quick_results;
use dqep_core::Optimizer;
use dqep_cost::Environment;
use dqep_harness::experiments::fig8;
use dqep_harness::{paper_query, run_dynamic, BindingSampler};
use dqep_plan::evaluate_startup;

fn bench(c: &mut Criterion) {
    println!("\n{}", fig8::table(quick_results()));

    let mut group = c.benchmark_group("fig8_reopt_vs_startup");
    for k in [2usize, 4, 5] {
        let w = paper_query(k, 11);
        let mut sampler = BindingSampler::new(5, false);
        let bindings = sampler.sample_n(&w, 16);
        let base = Environment::dynamic_compile_time(&w.catalog.config);
        let dynamic = run_dynamic(&w, &bindings[..1], false);
        let plan = dynamic.plan.as_ref().expect("plan").clone();

        let mut i = 0;
        group.bench_with_input(BenchmarkId::new("runtime_reoptimize", k), &k, |b, _| {
            b.iter(|| {
                i = (i + 1) % bindings.len();
                let env = base.bind(&bindings[i]);
                Optimizer::new(&w.catalog, &env)
                    .optimize(&w.query)
                    .unwrap()
                    .stats
                    .plan_nodes
            })
        });
        let mut j = 0;
        group.bench_with_input(BenchmarkId::new("dynamic_startup", k), &k, |b, _| {
            b.iter(|| {
                j = (j + 1) % bindings.len();
                evaluate_startup(&plan, &w.catalog, &base, &bindings[j]).evaluated_nodes
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench
}
criterion_main!(benches);
