//! Hash-kernel micro-bench: scalar per-tuple hashing vs the batched
//! column kernel.
//!
//! Both paths compute the identical multiply-xor hash ([`mix`] over each
//! key attribute, seeded with [`HASH_SEED`]); the difference is loop
//! structure. The scalar loop calls [`hash_key`] once per row — one
//! virtual key-list walk and bounds pattern per tuple. The batched loop
//! seeds a hash column once and folds each key column through
//! [`fold_hash_column`], a flat `zip` over two slices the compiler can
//! unroll and auto-vectorize. The join build/probe paths and the radix
//! partitioner all consume the batched form.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dqep_executor::{fold_hash_column, hash_key, HASH_SEED};

/// Rows per hashed block — matches the executor's batch granularity
/// order of magnitude without depending on its constant.
const ROWS: usize = 8_192;

/// Key columns per row (a two-key join predicate).
const KEYS: usize = 2;

fn bench(c: &mut Criterion) {
    // Deterministic input: same values feed both loops.
    let mut seed = 0x2545_f491_4f6c_dd1du64;
    let mut next = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed as i64
    };
    let columns: Vec<Vec<i64>> = (0..KEYS)
        .map(|_| (0..ROWS).map(|_| next()).collect())
        .collect();
    let rows: Vec<Vec<i64>> = (0..ROWS)
        .map(|r| columns.iter().map(|col| col[r]).collect())
        .collect();
    // Build-side key list: key k is attribute k on the build side.
    let keys: Vec<(usize, usize)> = (0..KEYS).map(|k| (k, k)).collect();

    // The two loops must agree bit for bit before we time them.
    let mut check = vec![HASH_SEED; ROWS];
    for col in &columns {
        fold_hash_column(&mut check, col);
    }
    for (r, row) in rows.iter().enumerate() {
        assert_eq!(check[r], hash_key(&keys, row, true), "kernel mismatch at row {r}");
    }

    let mut group = c.benchmark_group("hash_kernel");
    group.bench_function("scalar/hash_key_per_row", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for row in &rows {
                acc ^= hash_key(black_box(&keys), row, true);
            }
            acc
        });
    });
    group.bench_function("batched/fold_hash_column", |b| {
        let mut hashes = vec![0u64; ROWS];
        b.iter(|| {
            hashes.iter_mut().for_each(|h| *h = HASH_SEED);
            for col in &columns {
                fold_hash_column(&mut hashes, black_box(col));
            }
            hashes.iter().fold(0u64, |a, &h| a ^ h)
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
