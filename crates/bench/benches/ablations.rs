//! Ablation bench: prints the ablation table for the design choices of
//! Section 3 (branch-and-bound, DAG sharing, bushy trees, probing,
//! frontier caps) and measures dynamic optimization under each.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dqep_core::Optimizer;
use dqep_cost::Environment;
use dqep_harness::experiments::ablation;
use dqep_harness::paper_query;

fn bench(c: &mut Criterion) {
    let (_, rows) = ablation::run(3, 10, 11);
    println!("\n{}", ablation::table(3, &rows));

    let w = paper_query(3, 11);
    let env = Environment::dynamic_compile_time(&w.catalog.config);
    let mut group = c.benchmark_group("ablation_optimize_q3");
    for case in ablation::cases() {
        group.bench_with_input(BenchmarkId::new("optimize", case.name), &case, |b, case| {
            b.iter(|| {
                Optimizer::with_options(&w.catalog, &env, case.options)
                    .optimize(&w.query)
                    .unwrap()
                    .stats
                    .plan_nodes
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
