//! Microbenchmarks of the optimizer's building blocks: interval
//! comparisons, frontier insertion, memo exploration, and cost-function
//! evaluation — the operations whose counts explain Figures 5 and 7.

use criterion::{criterion_group, criterion_main, Criterion};
use dqep_algebra::PhysicalOp;
use dqep_catalog::{CatalogBuilder, RelationId, SystemConfig};
use dqep_cost::{CostModel, Environment, PlanStats};
use dqep_interval::Interval;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimizer_micro");

    // Interval comparison: the innermost search operation.
    let a = Interval::new(0.1, 4.2);
    let b = Interval::new(3.9, 9.0);
    group.bench_function("interval_compare", |bch| b_iter_cmp(bch, a, b));

    // Cost-function evaluation (the unit of Figure 7's start-up effort).
    let cat = CatalogBuilder::new(SystemConfig::paper_1994())
        .relation("r", 1000, 512, |r| r.attr("a", 1000.0).btree("a", false))
        .build()
        .unwrap();
    let env = Environment::dynamic_compile_time(&cat.config);
    let model = CostModel::new(&cat, &env);
    let op = PhysicalOp::FileScan {
        relation: RelationId(0),
    };
    let stats = PlanStats::new(Interval::point(1000.0), 512.0);
    group.bench_function("cost_function_eval", |bch| {
        bch.iter(|| model.op_cost(&op, &[], &stats).total().hi())
    });

    // Memo exploration of a 10-way chain (logical plan space of ~2.5M
    // trees held in ~55 groups).
    let w = dqep_harness::paper_query(5, 11);
    let senv = Environment::static_compile_time(&w.catalog.config);
    group.bench_function("optimize_10way_static", |bch| {
        bch.iter(|| {
            dqep_core::Optimizer::new(&w.catalog, &senv)
                .optimize(&w.query)
                .unwrap()
                .stats
                .groups
        })
    });
    group.finish();
}

fn b_iter_cmp(bch: &mut criterion::Bencher, a: Interval, b: Interval) {
    bch.iter(|| (a.compare(b), a.dominates(b), a.min(b)));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
