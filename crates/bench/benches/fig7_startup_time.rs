//! Figure 7 bench: prints the start-up CPU table and measures the
//! choose-plan decision procedure (one cost-function evaluation per DAG
//! node, shared nodes once) for each paper query.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dqep_bench::quick_results;
use dqep_harness::experiments::fig7;
use dqep_harness::{paper_query, run_dynamic, BindingSampler};
use dqep_plan::evaluate_startup;

fn bench(c: &mut Criterion) {
    println!("\n{}", fig7::table(quick_results()));

    let mut group = c.benchmark_group("fig7_startup");
    for k in [1usize, 3, 5] {
        let w = paper_query(k, 11);
        let mut sampler = BindingSampler::new(5, false);
        let bindings = sampler.sample_n(&w, 16);
        let dynamic = run_dynamic(&w, &bindings[..1], false);
        let plan = dynamic.plan.as_ref().expect("plan").clone();
        let mut i = 0;
        group.bench_with_input(BenchmarkId::new("startup_eval", k), &k, |b, _| {
            b.iter(|| {
                i = (i + 1) % bindings.len();
                evaluate_startup(&plan, &w.catalog, &dynamic.env, &bindings[i]).evaluated_nodes
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
