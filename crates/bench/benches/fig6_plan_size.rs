//! Figure 6 bench: prints the plan-size table and measures the
//! plan-size-dependent operations — DAG node counting and access-module
//! serialization/deserialization round trips.

use criterion::{criterion_group, criterion_main, Criterion};
use dqep_bench::quick_results;
use dqep_harness::experiments::fig6;
use dqep_harness::{paper_query, run_dynamic, BindingSampler};
use dqep_plan::{dag, AccessModule};

fn bench(c: &mut Criterion) {
    println!("\n{}", fig6::table(quick_results()));

    let w = paper_query(5, 11);
    let bindings = BindingSampler::new(5, false).sample_n(&w, 1);
    let dynamic = run_dynamic(&w, &bindings, false);
    let plan = dynamic.plan.as_ref().expect("plan").clone();
    let module = AccessModule::new(plan.clone());
    let bytes = module.serialize();
    println!(
        "query 5 dynamic plan: {} DAG nodes, {} serialized bytes, {} contained plans",
        dag::node_count(&plan),
        bytes.len(),
        dag::contained_plan_count(&plan),
    );

    let mut group = c.benchmark_group("fig6_plan_size");
    group.bench_function("node_count_q5", |b| b.iter(|| dag::node_count(&plan)));
    group.bench_function("serialize_q5", |b| b.iter(|| module.serialize().len()));
    group.bench_function("deserialize_q5", |b| {
        b.iter(|| AccessModule::deserialize(bytes.clone()).unwrap())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
