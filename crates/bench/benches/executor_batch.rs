//! Executor bench: tuple vs batch execution over the same plans.
//!
//! Four cases — sequential scan, scan+filter, in-memory hash join, and
//! the paper's query 3 — each measured in both execution modes. The
//! `bench_executor` binary runs the same cases and writes
//! `BENCH_executor.json`; this bench exists so `cargo bench` exercises
//! the comparison too.

use criterion::{criterion_group, criterion_main, Criterion};
use dqep_bench::executor_bench::standard_cases;
use dqep_executor::ExecMode;

/// Scale is modest here: the criterion shim runs a fixed iteration
/// count and every sample executes the full query.
const SCALE: u64 = 20_000;

fn bench(c: &mut Criterion) {
    let cases = standard_cases(SCALE, 11);
    let mut group = c.benchmark_group("executor_batch");
    for case in &cases {
        for (mode, label) in [(ExecMode::Tuple, "tuple"), (ExecMode::Batch, "batch")] {
            group.bench_function(format!("{}/{label}", case.name), |b| {
                b.iter(|| case.run(mode));
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
