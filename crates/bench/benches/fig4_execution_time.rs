//! Figure 4 bench: prints the execution-time table and measures the
//! per-invocation work that produces each data point — start-up evaluation
//! of the dynamic plan vs true-cost evaluation of the static plan.

use criterion::{criterion_group, criterion_main, Criterion};
use dqep_bench::quick_results;
use dqep_harness::experiments::fig4;
use dqep_harness::{paper_query, BindingSampler};
use dqep_plan::evaluate_startup;

fn bench(c: &mut Criterion) {
    println!("\n{}", fig4::table(quick_results()));

    let w = paper_query(3, 11);
    let mut sampler = BindingSampler::new(5, false);
    let bindings = sampler.sample_n(&w, 16);
    let static_r = dqep_harness::run_static(&w, &bindings[..1]);
    let dynamic_r = dqep_harness::run_dynamic(&w, &bindings[..1], false);
    let static_plan = static_r.plan.as_ref().expect("plan");
    let dynamic_plan = dynamic_r.plan.as_ref().expect("plan");

    let mut group = c.benchmark_group("fig4_per_invocation");
    let mut i = 0;
    group.bench_function("static_true_cost_q3", |b| {
        b.iter(|| {
            i = (i + 1) % bindings.len();
            evaluate_startup(static_plan, &w.catalog, &static_r.env, &bindings[i])
                .predicted_run_seconds
        })
    });
    group.bench_function("dynamic_startup_choice_q3", |b| {
        b.iter(|| {
            i = (i + 1) % bindings.len();
            evaluate_startup(dynamic_plan, &w.catalog, &dynamic_r.env, &bindings[i])
                .predicted_run_seconds
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
