//! Plan-shrinking bench (paper Section 4's self-replacing access module):
//! demonstrates the node-count reduction after observing skewed bindings
//! and measures the shrink rewrite itself — whose cost must be
//! "comparable to the cost analysis at start-up-time".

use criterion::{criterion_group, criterion_main, Criterion};
use dqep_harness::{paper_query, run_dynamic, BindingSampler};
use dqep_plan::shrink::{shrink_plan, UsageStats};
use dqep_plan::{dag, evaluate_startup};

fn bench(c: &mut Criterion) {
    let w = paper_query(3, 11);
    let mut sampler = BindingSampler::new(5, false);
    let bindings = sampler.sample_n(&w, 30);
    let dynamic = run_dynamic(&w, &bindings[..1], false);
    let plan = dynamic.plan.as_ref().expect("plan").clone();

    // Observe 30 invocations, then shrink.
    let mut usage = UsageStats::new();
    for b in &bindings {
        let r = evaluate_startup(&plan, &w.catalog, &dynamic.env, b);
        usage.record(&r.decisions);
    }
    let shrunk = shrink_plan(&plan, &usage);
    println!(
        "\nshrink (query 3, 30 invocations): {} -> {} DAG nodes, {} -> {} choose-plans",
        dag::node_count(&plan),
        dag::node_count(&shrunk),
        dag::choose_plan_count(&plan),
        dag::choose_plan_count(&shrunk),
    );

    let mut group = c.benchmark_group("shrink");
    group.bench_function("shrink_plan_q3", |b| b.iter(|| shrink_plan(&plan, &usage)));
    group.bench_function("startup_eval_full_q3", |b| {
        b.iter(|| evaluate_startup(&plan, &w.catalog, &dynamic.env, &bindings[0]).evaluated_nodes)
    });
    group.bench_function("startup_eval_shrunk_q3", |b| {
        b.iter(|| evaluate_startup(&shrunk, &w.catalog, &dynamic.env, &bindings[0]).evaluated_nodes)
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
