//! The logical algebra: Get-Set, Select, Join.

use std::fmt;

use dqep_catalog::{Catalog, RelationId};
use serde::{Deserialize, Serialize};

use crate::predicate::{JoinPred, SelectPred};
use crate::properties::RelSet;
use crate::types::HostVar;

/// A logical algebra expression — the optimizer's input.
///
/// Mirrors the paper's logical algebra (Table 1): `Get-Set` retrieves a
/// stored relation, `Select` applies a predicate, `Join` is a binary
/// equi-join. Projections are implicit (every operator passes all columns
/// through); the paper's experiments likewise use selections and joins
/// only.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LogicalExpr {
    /// Retrieve all records of a stored relation.
    Get {
        /// The relation to read.
        relation: RelationId,
    },
    /// Restrict the input by a predicate.
    Select {
        /// Input expression.
        input: Box<LogicalExpr>,
        /// The (possibly unbound) predicate.
        predicate: SelectPred,
    },
    /// Join two inputs on zero or more equi-join predicates.
    Join {
        /// Left input.
        left: Box<LogicalExpr>,
        /// Right input.
        right: Box<LogicalExpr>,
        /// Conjunctive equi-join predicates; must span the two inputs.
        predicates: Vec<JoinPred>,
    },
}

/// Validation errors for logical expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogicalError {
    /// A referenced relation id is not in the catalog.
    UnknownRelation(RelationId),
    /// A predicate references an attribute of a relation not available at
    /// that point in the expression.
    AttributeOutOfScope(String),
    /// The same base relation appears twice (self-joins need aliasing,
    /// which the prototype — like the paper's — does not model).
    DuplicateRelation(RelationId),
    /// A join predicate does not span the two join inputs.
    PredicateDoesNotSpan(String),
}

impl fmt::Display for LogicalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogicalError::UnknownRelation(r) => write!(f, "unknown relation {r}"),
            LogicalError::AttributeOutOfScope(s) => write!(f, "attribute out of scope: {s}"),
            LogicalError::DuplicateRelation(r) => write!(f, "relation {r} appears twice"),
            LogicalError::PredicateDoesNotSpan(s) => {
                write!(f, "join predicate does not span inputs: {s}")
            }
        }
    }
}

impl std::error::Error for LogicalError {}

impl LogicalExpr {
    /// Convenience constructor for `Get`.
    #[must_use]
    pub fn get(relation: RelationId) -> LogicalExpr {
        LogicalExpr::Get { relation }
    }

    /// Convenience constructor wrapping `self` in a `Select`.
    #[must_use]
    pub fn select(self, predicate: SelectPred) -> LogicalExpr {
        LogicalExpr::Select {
            input: Box::new(self),
            predicate,
        }
    }

    /// Convenience constructor joining `self` with `right`.
    #[must_use]
    pub fn join(self, right: LogicalExpr, predicates: Vec<JoinPred>) -> LogicalExpr {
        LogicalExpr::Join {
            left: Box::new(self),
            right: Box::new(right),
            predicates,
        }
    }

    /// The set of base relations referenced.
    #[must_use]
    pub fn relations(&self) -> RelSet {
        match self {
            LogicalExpr::Get { relation } => RelSet::singleton(*relation),
            LogicalExpr::Select { input, .. } => input.relations(),
            LogicalExpr::Join { left, right, .. } => left.relations().union(right.relations()),
        }
    }

    /// All selection predicates, in depth-first order.
    #[must_use]
    pub fn select_predicates(&self) -> Vec<SelectPred> {
        let mut out = Vec::new();
        self.walk(&mut |e| {
            if let LogicalExpr::Select { predicate, .. } = e {
                out.push(*predicate);
            }
        });
        out
    }

    /// All join predicates, in depth-first order.
    #[must_use]
    pub fn join_predicates(&self) -> Vec<JoinPred> {
        let mut out = Vec::new();
        self.walk(&mut |e| {
            if let LogicalExpr::Join { predicates, .. } = e {
                out.extend(predicates.iter().copied());
            }
        });
        out
    }

    /// Host variables referenced by unbound predicates, deduplicated, in
    /// first-occurrence order.
    #[must_use]
    pub fn host_vars(&self) -> Vec<HostVar> {
        let mut out = Vec::new();
        for p in self.select_predicates() {
            if let Some(h) = p.host_var() {
                if !out.contains(&h) {
                    out.push(h);
                }
            }
        }
        out
    }

    /// Number of operators in the expression tree.
    #[must_use]
    pub fn len(&self) -> usize {
        let mut n = 0;
        self.walk(&mut |_| n += 1);
        n
    }

    /// Whether the expression is a bare `Get`.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    fn walk(&self, f: &mut impl FnMut(&LogicalExpr)) {
        f(self);
        match self {
            LogicalExpr::Get { .. } => {}
            LogicalExpr::Select { input, .. } => input.walk(f),
            LogicalExpr::Join { left, right, .. } => {
                left.walk(f);
                right.walk(f);
            }
        }
    }

    /// Validates the expression against a catalog: all relations exist, no
    /// base relation occurs twice, every predicate is in scope, and join
    /// predicates span their join's inputs.
    pub fn validate(&self, catalog: &Catalog) -> Result<(), LogicalError> {
        let mut seen = RelSet::EMPTY;
        self.validate_inner(catalog, &mut seen)?;
        Ok(())
    }

    fn validate_inner(
        &self,
        catalog: &Catalog,
        seen: &mut RelSet,
    ) -> Result<RelSet, LogicalError> {
        match self {
            LogicalExpr::Get { relation } => {
                if relation.0 as usize >= catalog.relations().len() {
                    return Err(LogicalError::UnknownRelation(*relation));
                }
                if seen.contains(*relation) {
                    return Err(LogicalError::DuplicateRelation(*relation));
                }
                *seen = seen.union(RelSet::singleton(*relation));
                Ok(RelSet::singleton(*relation))
            }
            LogicalExpr::Select { input, predicate } => {
                let scope = input.validate_inner(catalog, seen)?;
                if !scope.contains(predicate.attr.relation) {
                    return Err(LogicalError::AttributeOutOfScope(predicate.to_string()));
                }
                let rel = catalog.relation(predicate.attr.relation);
                if predicate.attr.index as usize >= rel.attributes.len() {
                    return Err(LogicalError::AttributeOutOfScope(predicate.to_string()));
                }
                Ok(scope)
            }
            LogicalExpr::Join {
                left,
                right,
                predicates,
            } => {
                let ls = left.validate_inner(catalog, seen)?;
                let rs = right.validate_inner(catalog, seen)?;
                for p in predicates {
                    let spans = (ls.contains(p.left.relation) && rs.contains(p.right.relation))
                        || (rs.contains(p.left.relation) && ls.contains(p.right.relation));
                    if !spans {
                        return Err(LogicalError::PredicateDoesNotSpan(p.to_string()));
                    }
                }
                Ok(ls.union(rs))
            }
        }
    }
}

impl fmt::Display for LogicalExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogicalExpr::Get { relation } => write!(f, "Get({relation})"),
            LogicalExpr::Select { input, predicate } => {
                write!(f, "Select[{predicate}]({input})")
            }
            LogicalExpr::Join {
                left,
                right,
                predicates,
            } => {
                write!(f, "Join[")?;
                for (i, p) in predicates.iter().enumerate() {
                    if i > 0 {
                        write!(f, " and ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, "]({left}, {right})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::CompareOp;
    use dqep_catalog::{AttrId, CatalogBuilder, SystemConfig};

    fn catalog() -> Catalog {
        CatalogBuilder::new(SystemConfig::paper_1994())
            .relation("r", 100, 512, |r| r.attr("a", 100.0).attr("j", 50.0))
            .relation("s", 200, 512, |r| r.attr("a", 200.0).attr("j", 80.0))
            .build()
            .unwrap()
    }

    fn attr(cat: &Catalog, rel: &str, name: &str) -> AttrId {
        cat.relation_by_name(rel).unwrap().attr_id(name).unwrap()
    }

    fn two_way(cat: &Catalog) -> LogicalExpr {
        let r = cat.relation_by_name("r").unwrap().id;
        let s = cat.relation_by_name("s").unwrap().id;
        let sel_r = SelectPred::unbound(attr(cat, "r", "a"), CompareOp::Lt, HostVar(0));
        let sel_s = SelectPred::unbound(attr(cat, "s", "a"), CompareOp::Lt, HostVar(1));
        LogicalExpr::get(r)
            .select(sel_r)
            .join(
                LogicalExpr::get(s).select(sel_s),
                vec![JoinPred::new(attr(cat, "r", "j"), attr(cat, "s", "j"))],
            )
    }

    #[test]
    fn relations_and_predicates() {
        let cat = catalog();
        let q = two_way(&cat);
        assert_eq!(q.relations().len(), 2);
        assert_eq!(q.select_predicates().len(), 2);
        assert_eq!(q.join_predicates().len(), 1);
        assert_eq!(q.host_vars(), vec![HostVar(0), HostVar(1)]);
        assert_eq!(q.len(), 5); // join + 2 selects + 2 gets
    }

    #[test]
    fn validate_accepts_well_formed() {
        let cat = catalog();
        two_way(&cat).validate(&cat).unwrap();
    }

    #[test]
    fn validate_rejects_unknown_relation() {
        let cat = catalog();
        let q = LogicalExpr::get(RelationId(9));
        assert_eq!(
            q.validate(&cat).unwrap_err(),
            LogicalError::UnknownRelation(RelationId(9))
        );
    }

    #[test]
    fn validate_rejects_duplicate_relation() {
        let cat = catalog();
        let r = cat.relation_by_name("r").unwrap().id;
        let q = LogicalExpr::get(r).join(
            LogicalExpr::get(r),
            vec![],
        );
        assert_eq!(q.validate(&cat).unwrap_err(), LogicalError::DuplicateRelation(r));
    }

    #[test]
    fn validate_rejects_out_of_scope_predicate() {
        let cat = catalog();
        let r = cat.relation_by_name("r").unwrap().id;
        // Select on s.a over a scan of r.
        let bad = SelectPred::bound(attr(&cat, "s", "a"), CompareOp::Eq, 1);
        let q = LogicalExpr::get(r).select(bad);
        assert!(matches!(
            q.validate(&cat).unwrap_err(),
            LogicalError::AttributeOutOfScope(_)
        ));
    }

    #[test]
    fn validate_rejects_non_spanning_join_pred() {
        let cat = catalog();
        let r = cat.relation_by_name("r").unwrap().id;
        let s = cat.relation_by_name("s").unwrap().id;
        // Predicate relating r to a third relation that is not an input.
        let foreign = AttrId {
            relation: RelationId(7),
            index: 0,
        };
        let q = LogicalExpr::get(r).join(
            LogicalExpr::get(s),
            vec![JoinPred::new(attr(&cat, "r", "j"), foreign)],
        );
        assert!(matches!(
            q.validate(&cat).unwrap_err(),
            LogicalError::PredicateDoesNotSpan(_)
        ));
    }

    #[test]
    fn display_round_trips_structure() {
        let cat = catalog();
        let text = two_way(&cat).to_string();
        assert!(text.starts_with("Join["));
        assert!(text.contains("Select["));
        assert!(text.contains("Get(R0)"));
    }
}
