//! Selection and join predicates.

use std::fmt;

use dqep_catalog::AttrId;
use serde::{Deserialize, Serialize};

use crate::types::{CompareOp, HostVar};

/// The right-hand side of a selection predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scalar {
    /// A literal integer constant known at compile-time.
    Const(i64),
    /// A host variable bound at start-up-time. Predicates over host
    /// variables are *unbound*: their selectivity is unknown at
    /// compile-time (interval `[0, 1]`).
    Host(HostVar),
}

impl fmt::Display for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scalar::Const(v) => write!(f, "{v}"),
            Scalar::Host(h) => write!(f, "{h}"),
        }
    }
}

/// A single-attribute selection predicate `attr OP rhs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SelectPred {
    /// The attribute being restricted.
    pub attr: AttrId,
    /// The comparison operator.
    pub op: CompareOp,
    /// Constant or host variable.
    pub rhs: Scalar,
}

impl SelectPred {
    /// `attr OP constant` — bound at compile-time.
    #[must_use]
    pub fn bound(attr: AttrId, op: CompareOp, value: i64) -> SelectPred {
        SelectPred {
            attr,
            op,
            rhs: Scalar::Const(value),
        }
    }

    /// `attr OP :hostvar` — unbound until start-up-time.
    #[must_use]
    pub fn unbound(attr: AttrId, op: CompareOp, var: HostVar) -> SelectPred {
        SelectPred {
            attr,
            op,
            rhs: Scalar::Host(var),
        }
    }

    /// Whether the predicate references a host variable.
    #[must_use]
    pub fn is_unbound(&self) -> bool {
        matches!(self.rhs, Scalar::Host(_))
    }

    /// The host variable, if unbound.
    #[must_use]
    pub fn host_var(&self) -> Option<HostVar> {
        match self.rhs {
            Scalar::Host(h) => Some(h),
            Scalar::Const(_) => None,
        }
    }
}

impl fmt::Display for SelectPred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.attr, self.op, self.rhs)
    }
}

/// An equi-join predicate `left = right` between attributes of two
/// different relations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct JoinPred {
    /// Attribute of one side.
    pub left: AttrId,
    /// Attribute of the other side.
    pub right: AttrId,
}

impl JoinPred {
    /// Creates a join predicate.
    ///
    /// # Panics
    /// Panics if both attributes belong to the same relation.
    #[must_use]
    pub fn new(left: AttrId, right: AttrId) -> JoinPred {
        assert_ne!(
            left.relation, right.relation,
            "join predicate must span two relations"
        );
        JoinPred { left, right }
    }

    /// The same predicate with sides swapped (equi-joins are symmetric).
    #[must_use]
    pub fn flipped(self) -> JoinPred {
        JoinPred {
            left: self.right,
            right: self.left,
        }
    }

    /// The attribute on the side of `rel`, if any.
    #[must_use]
    pub fn attr_of(&self, rel: dqep_catalog::RelationId) -> Option<AttrId> {
        if self.left.relation == rel {
            Some(self.left)
        } else if self.right.relation == rel {
            Some(self.right)
        } else {
            None
        }
    }
}

impl fmt::Display for JoinPred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} = {}", self.left, self.right)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqep_catalog::RelationId;

    fn attr(rel: u32, idx: u32) -> AttrId {
        AttrId {
            relation: RelationId(rel),
            index: idx,
        }
    }

    #[test]
    fn bound_and_unbound() {
        let b = SelectPred::bound(attr(0, 0), CompareOp::Lt, 10);
        assert!(!b.is_unbound());
        assert_eq!(b.host_var(), None);

        let u = SelectPred::unbound(attr(0, 0), CompareOp::Lt, HostVar(3));
        assert!(u.is_unbound());
        assert_eq!(u.host_var(), Some(HostVar(3)));
    }

    #[test]
    fn join_pred_sides() {
        let p = JoinPred::new(attr(0, 1), attr(1, 2));
        assert_eq!(p.flipped().left, attr(1, 2));
        assert_eq!(p.flipped().flipped(), p);
        assert_eq!(p.attr_of(RelationId(0)), Some(attr(0, 1)));
        assert_eq!(p.attr_of(RelationId(1)), Some(attr(1, 2)));
        assert_eq!(p.attr_of(RelationId(2)), None);
    }

    #[test]
    #[should_panic(expected = "span two relations")]
    fn self_join_pred_rejected() {
        let _ = JoinPred::new(attr(0, 0), attr(0, 1));
    }

    #[test]
    fn display() {
        let u = SelectPred::unbound(attr(0, 0), CompareOp::Lt, HostVar(1));
        assert_eq!(u.to_string(), "R0.#0 < :v1");
        let j = JoinPred::new(attr(0, 1), attr(1, 0));
        assert_eq!(j.to_string(), "R0.#1 = R1.#0");
    }
}
