//! Logical and physical properties.
//!
//! *Logical* properties describe the data set a (sub)query produces — here
//! the set of base relations it covers, used as the memo group fingerprint.
//! *Physical* properties describe attributes of a particular algorithm's
//! output — here sort order, the classic "interesting order" of System R
//! that the Volcano optimizer generator generalizes. The choose-plan
//! enforcer's property, *plan robustness*, is handled by the search engine
//! itself rather than carried on plans.

use std::fmt;

use dqep_catalog::{AttrId, RelationId};
use serde::{Deserialize, Serialize};

/// A set of base relations, as a 64-bit bitset over [`RelationId`]s.
///
/// Memo groups are logically fingerprinted by the relation set they cover;
/// queries of up to 64 relations are supported (the paper's largest query
/// joins 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RelSet(u64);

impl RelSet {
    /// The empty set.
    pub const EMPTY: RelSet = RelSet(0);

    /// The singleton set containing `rel`.
    ///
    /// # Panics
    /// Panics for relation ids ≥ 64.
    #[must_use]
    pub fn singleton(rel: RelationId) -> RelSet {
        assert!(rel.0 < 64, "RelSet supports at most 64 relations");
        RelSet(1u64 << rel.0)
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of relations in the set.
    #[must_use]
    pub fn len(self) -> u32 {
        self.0.count_ones()
    }

    /// Whether `rel` is a member.
    #[must_use]
    pub fn contains(self, rel: RelationId) -> bool {
        rel.0 < 64 && self.0 & (1u64 << rel.0) != 0
    }

    /// Set union.
    #[must_use]
    pub fn union(self, other: RelSet) -> RelSet {
        RelSet(self.0 | other.0)
    }

    /// Set intersection.
    #[must_use]
    pub fn intersect(self, other: RelSet) -> RelSet {
        RelSet(self.0 & other.0)
    }

    /// Whether the two sets share no relation.
    #[must_use]
    pub fn is_disjoint(self, other: RelSet) -> bool {
        self.0 & other.0 == 0
    }

    /// Whether every member of `self` is in `other`.
    #[must_use]
    pub fn is_subset(self, other: RelSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Iterates over members in increasing id order.
    pub fn iter(self) -> impl Iterator<Item = RelationId> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let i = bits.trailing_zeros();
                bits &= bits - 1;
                Some(RelationId(i))
            }
        })
    }

    /// Builds a set from an iterator of relation ids.
    #[allow(clippy::should_implement_trait)] // not generic enough for FromIterator
    pub fn from_iter(rels: impl IntoIterator<Item = RelationId>) -> RelSet {
        rels.into_iter()
            .fold(RelSet::EMPTY, |s, r| s.union(RelSet::singleton(r)))
    }
}

impl fmt::Display for RelSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, r) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{r}")?;
        }
        write!(f, "}}")
    }
}

/// A physical sort order: unsorted, or sorted ascending on one attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum SortOrder {
    /// No particular order.
    #[default]
    None,
    /// Sorted ascending on the attribute.
    Asc(AttrId),
}

impl SortOrder {
    /// Whether this (delivered) order satisfies a required order.
    /// `None` as a requirement is satisfied by anything.
    #[must_use]
    pub fn satisfies(self, required: SortOrder) -> bool {
        match required {
            SortOrder::None => true,
            SortOrder::Asc(a) => self == SortOrder::Asc(a),
        }
    }

    /// The sorted-on attribute, if any.
    #[must_use]
    pub fn attr(self) -> Option<AttrId> {
        match self {
            SortOrder::None => None,
            SortOrder::Asc(a) => Some(a),
        }
    }
}

impl fmt::Display for SortOrder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SortOrder::None => f.write_str("any"),
            SortOrder::Asc(a) => write!(f, "sorted({a})"),
        }
    }
}

/// Physical properties requested from, or delivered by, a plan.
///
/// Currently sort order only; the type exists so additional properties
/// (partitioning, location) can be added without touching the search
/// engine's signatures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct PhysProps {
    /// Sort order.
    pub order: SortOrder,
}

impl PhysProps {
    /// No requirements / no guarantees.
    pub const ANY: PhysProps = PhysProps {
        order: SortOrder::None,
    };

    /// Sorted ascending on `attr`.
    #[must_use]
    pub fn sorted(attr: AttrId) -> PhysProps {
        PhysProps {
            order: SortOrder::Asc(attr),
        }
    }

    /// Whether these delivered properties satisfy `required`.
    #[must_use]
    pub fn satisfies(self, required: PhysProps) -> bool {
        self.order.satisfies(required.order)
    }
}

impl fmt::Display for PhysProps {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attr(rel: u32, idx: u32) -> AttrId {
        AttrId {
            relation: RelationId(rel),
            index: idx,
        }
    }

    #[test]
    fn relset_basics() {
        let a = RelSet::singleton(RelationId(0));
        let b = RelSet::singleton(RelationId(3));
        let u = a.union(b);
        assert_eq!(u.len(), 2);
        assert!(u.contains(RelationId(0)));
        assert!(u.contains(RelationId(3)));
        assert!(!u.contains(RelationId(1)));
        assert!(a.is_disjoint(b));
        assert!(!u.is_disjoint(a));
        assert!(a.is_subset(u));
        assert!(!u.is_subset(a));
        assert!(RelSet::EMPTY.is_empty());
        assert_eq!(u.intersect(a), a);
    }

    #[test]
    fn relset_iter_ordered() {
        let s = RelSet::from_iter([RelationId(5), RelationId(1), RelationId(9)]);
        let v: Vec<u32> = s.iter().map(|r| r.0).collect();
        assert_eq!(v, vec![1, 5, 9]);
    }

    #[test]
    #[should_panic(expected = "at most 64")]
    fn relset_bounds_checked() {
        let _ = RelSet::singleton(RelationId(64));
    }

    #[test]
    fn sort_order_satisfaction() {
        let a = attr(0, 1);
        let b = attr(0, 2);
        assert!(SortOrder::None.satisfies(SortOrder::None));
        assert!(SortOrder::Asc(a).satisfies(SortOrder::None));
        assert!(SortOrder::Asc(a).satisfies(SortOrder::Asc(a)));
        assert!(!SortOrder::Asc(a).satisfies(SortOrder::Asc(b)));
        assert!(!SortOrder::None.satisfies(SortOrder::Asc(a)));
    }

    #[test]
    fn phys_props_satisfaction() {
        let a = attr(0, 1);
        assert!(PhysProps::sorted(a).satisfies(PhysProps::ANY));
        assert!(!PhysProps::ANY.satisfies(PhysProps::sorted(a)));
        assert!(PhysProps::sorted(a).satisfies(PhysProps::sorted(a)));
    }

    #[test]
    fn display() {
        let s = RelSet::from_iter([RelationId(0), RelationId(2)]);
        assert_eq!(s.to_string(), "{R0,R2}");
        assert_eq!(SortOrder::None.to_string(), "any");
        assert_eq!(SortOrder::Asc(attr(1, 0)).to_string(), "sorted(R1.#0)");
    }
}
