//! Scalar values, comparison operators, and host variables.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A runtime scalar value. The experimental schema is integer-valued;
/// strings are supported for realistic example applications.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// UTF-8 string.
    Str(String),
}

impl Value {
    /// The integer payload, if this is an [`Value::Int`].
    #[must_use]
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Str(_) => None,
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s:?}"),
        }
    }
}

/// A host variable in an embedded query ("user variable" in the paper):
/// a placeholder whose value is supplied by the application program at
/// start-up-time, e.g. `SELECT ... WHERE r.a < :x`.
///
/// Host variables are the canonical source of compile-time cost
/// incomparability: the selectivity of a predicate over `:x` cannot be
/// estimated until `:x` is bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct HostVar(pub u32);

impl fmt::Display for HostVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, ":v{}", self.0)
    }
}

/// Comparison operator of a selection predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CompareOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `=`
    Eq,
    /// `>=`
    Ge,
    /// `>`
    Gt,
}

impl CompareOp {
    /// Evaluates `lhs OP rhs` over integers.
    #[must_use]
    pub fn eval_int(self, lhs: i64, rhs: i64) -> bool {
        match self {
            CompareOp::Lt => lhs < rhs,
            CompareOp::Le => lhs <= rhs,
            CompareOp::Eq => lhs == rhs,
            CompareOp::Ge => lhs >= rhs,
            CompareOp::Gt => lhs > rhs,
        }
    }

    /// Whether a B-tree range scan can evaluate this operator (all of them
    /// can; hash indexes support only [`CompareOp::Eq`]).
    #[must_use]
    pub fn is_equality(self) -> bool {
        matches!(self, CompareOp::Eq)
    }

    /// The operator with sides swapped: `a OP b == b OP.flip() a`.
    #[must_use]
    pub fn flip(self) -> CompareOp {
        match self {
            CompareOp::Lt => CompareOp::Gt,
            CompareOp::Le => CompareOp::Ge,
            CompareOp::Eq => CompareOp::Eq,
            CompareOp::Ge => CompareOp::Le,
            CompareOp::Gt => CompareOp::Lt,
        }
    }
}

impl fmt::Display for CompareOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CompareOp::Lt => "<",
            CompareOp::Le => "<=",
            CompareOp::Eq => "=",
            CompareOp::Ge => ">=",
            CompareOp::Gt => ">",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_conversions() {
        assert_eq!(Value::from(42i64), Value::Int(42));
        assert_eq!(Value::from("x"), Value::Str("x".into()));
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Str("x".into()).as_int(), None);
    }

    #[test]
    fn compare_op_eval() {
        assert!(CompareOp::Lt.eval_int(1, 2));
        assert!(!CompareOp::Lt.eval_int(2, 2));
        assert!(CompareOp::Le.eval_int(2, 2));
        assert!(CompareOp::Eq.eval_int(3, 3));
        assert!(CompareOp::Ge.eval_int(3, 3));
        assert!(CompareOp::Gt.eval_int(4, 3));
        assert!(!CompareOp::Gt.eval_int(3, 3));
    }

    #[test]
    fn flip_is_consistent_with_eval() {
        for op in [CompareOp::Lt, CompareOp::Le, CompareOp::Eq, CompareOp::Ge, CompareOp::Gt] {
            for a in -2..=2 {
                for b in -2..=2 {
                    assert_eq!(op.eval_int(a, b), op.flip().eval_int(b, a), "{op} {a} {b}");
                }
            }
        }
    }

    #[test]
    fn display() {
        assert_eq!(HostVar(2).to_string(), ":v2");
        assert_eq!(CompareOp::Le.to_string(), "<=");
        assert_eq!(Value::Int(1).to_string(), "1");
        assert_eq!(Value::Str("a".into()).to_string(), "\"a\"");
    }
}
