//! Logical and physical algebra for dynamic-plan optimization.
//!
//! This crate defines the two algebras of paper Table 1:
//!
//! | Operator type | Logical operator | Physical algorithm |
//! |---|---|---|
//! | Data retrieval | Get-Set | File-Scan, B-tree-Scan |
//! | Select, project | Select | Filter, Filter-B-tree-Scan |
//! | Join | Join | Hash-Join, Merge-Join, Index-Join |
//! | Enforcer (sort order) | — | Sort |
//! | Enforcer (plan robustness) | — | Choose-Plan |
//!
//! The *logical* algebra ([`LogicalExpr`]) describes a query as input to
//! the optimizer; the *physical* algebra ([`PhysicalOp`]) describes the
//! algorithms implemented by the execution engine. Predicates may contain
//! **host variables** ([`HostVar`]) that are unbound at compile-time — the
//! source of cost incomparability this line of work addresses.

#![warn(missing_docs)]

mod logical;
mod physical;
mod predicate;
mod properties;
mod types;

pub use logical::{LogicalError, LogicalExpr};
pub use physical::PhysicalOp;
pub use predicate::{JoinPred, Scalar, SelectPred};
pub use properties::{PhysProps, RelSet, SortOrder};
pub use types::{CompareOp, HostVar, Value};
