//! The physical algebra: the algorithms of the execution engine.

use std::fmt;

use dqep_catalog::{AttrId, IndexId, RelationId};
use serde::{Deserialize, Serialize};

use crate::predicate::{JoinPred, SelectPred};
use crate::properties::SortOrder;

/// A physical operator: an algorithm plus its compile-time arguments.
///
/// Children are *not* stored here — plan trees/DAGs (in `dqep-plan`) pair a
/// `PhysicalOp` with child links. This keeps the algebra crate free of plan
/// representation concerns, as in the Volcano optimizer generator where the
/// physical algebra is a model-provided module.
///
/// Conventions:
/// * `HashJoin` **builds on its left** input and probes with the right; the
///   join-commutativity transformation generates the swapped variant, which
///   is how the optimizer considers both build sides (paper Figure 2).
/// * `MergeJoin` requires both inputs sorted on the attributes of
///   `predicates[0]`; `predicates[0].left` belongs to the left child.
/// * `IndexJoin` has one child (the outer); the inner relation is accessed
///   through the named index for each outer record, with `predicates[0]`
///   as the indexed predicate (`predicates[0].right` is the inner, indexed
///   attribute), remaining predicates and `residual` applied after the
///   fetch.
/// * `ChoosePlan` has two or more children, all computing the same result;
///   at start-up-time its decision procedure re-evaluates the alternatives'
///   cost functions under the actual bindings and runs the cheapest child.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PhysicalOp {
    /// Sequential scan of a stored relation.
    FileScan {
        /// Relation to scan.
        relation: RelationId,
    },
    /// Full scan through a B-tree, delivering key order. For an
    /// unclustered index every record costs a random fetch, so this is only
    /// attractive when an interesting order is requested.
    BtreeScan {
        /// Relation to scan.
        relation: RelationId,
        /// Index to traverse.
        index: IndexId,
        /// The index key (cached to avoid catalog lookups).
        key_attr: AttrId,
    },
    /// Predicate evaluation over any input.
    Filter {
        /// The predicate (possibly unbound until start-up-time).
        predicate: SelectPred,
    },
    /// Combined retrieval + selection through a B-tree range probe:
    /// descends to the predicate's boundary and scans only qualifying keys.
    FilterBtreeScan {
        /// Relation to access.
        relation: RelationId,
        /// Index to probe; must be on `predicate.attr`.
        index: IndexId,
        /// The (possibly unbound) range/equality predicate.
        predicate: SelectPred,
    },
    /// Hash join; builds an in-memory (or partitioned) table on the LEFT
    /// input, probes with the right.
    HashJoin {
        /// Conjunctive equi-join predicates.
        predicates: Vec<JoinPred>,
    },
    /// Merge join over inputs sorted on `predicates[0]`.
    MergeJoin {
        /// Conjunctive equi-join predicates.
        predicates: Vec<JoinPred>,
    },
    /// Index nested-loop join: for each outer (child) record, probe the
    /// inner relation's index.
    IndexJoin {
        /// Join predicates; `predicates[0].right` is the indexed inner
        /// attribute.
        predicates: Vec<JoinPred>,
        /// The inner relation.
        inner: RelationId,
        /// Index on the inner join attribute.
        index: IndexId,
        /// The inner relation's selection predicate, applied to fetched
        /// records (present when the logical inner was `Select(Get(S))`).
        residual: Option<SelectPred>,
    },
    /// Sort enforcer: sorts its input ascending on one attribute.
    Sort {
        /// Sort key.
        attr: AttrId,
    },
    /// Choose-plan enforcer ("plan robustness", paper Table 1): delays the
    /// choice among equivalent alternative subplans to start-up-time.
    ChoosePlan,
}

impl PhysicalOp {
    /// Number of plan children the operator takes; `None` for the variadic
    /// choose-plan.
    #[must_use]
    pub fn arity(&self) -> Option<usize> {
        match self {
            PhysicalOp::FileScan { .. }
            | PhysicalOp::BtreeScan { .. }
            | PhysicalOp::FilterBtreeScan { .. } => Some(0),
            PhysicalOp::Filter { .. } | PhysicalOp::Sort { .. } | PhysicalOp::IndexJoin { .. } => {
                Some(1)
            }
            PhysicalOp::HashJoin { .. } | PhysicalOp::MergeJoin { .. } => Some(2),
            PhysicalOp::ChoosePlan => None,
        }
    }

    /// Whether this is an enforcer (an algorithm with no logical
    /// counterpart, associated instead with the property it enforces).
    #[must_use]
    pub fn is_enforcer(&self) -> bool {
        matches!(self, PhysicalOp::Sort { .. } | PhysicalOp::ChoosePlan)
    }

    /// Whether this operator reads a base relation.
    #[must_use]
    pub fn is_scan(&self) -> bool {
        matches!(
            self,
            PhysicalOp::FileScan { .. }
                | PhysicalOp::BtreeScan { .. }
                | PhysicalOp::FilterBtreeScan { .. }
        )
    }

    /// The sort order this operator delivers, given its children's
    /// delivered orders (one entry per child, in order).
    #[must_use]
    pub fn delivered_order(&self, child_orders: &[SortOrder]) -> SortOrder {
        match self {
            PhysicalOp::FileScan { .. } => SortOrder::None,
            PhysicalOp::BtreeScan { key_attr, .. } => SortOrder::Asc(*key_attr),
            PhysicalOp::FilterBtreeScan { predicate, .. } => SortOrder::Asc(predicate.attr),
            PhysicalOp::Filter { .. } => child_orders.first().copied().unwrap_or_default(),
            PhysicalOp::HashJoin { .. } => SortOrder::None,
            PhysicalOp::MergeJoin { predicates } => predicates
                .first()
                .map(|p| SortOrder::Asc(p.left))
                .unwrap_or_default(),
            // The outer's order is preserved by an index nested-loop join.
            PhysicalOp::IndexJoin { .. } => child_orders.first().copied().unwrap_or_default(),
            PhysicalOp::Sort { attr } => SortOrder::Asc(*attr),
            // A choose-plan only guarantees an order all alternatives share.
            PhysicalOp::ChoosePlan => {
                let mut iter = child_orders.iter();
                match iter.next() {
                    Some(first) if iter.all(|o| o == first) => *first,
                    _ => SortOrder::None,
                }
            }
        }
    }

    /// Short algorithm name as used in plan displays and the paper's
    /// figures.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            PhysicalOp::FileScan { .. } => "File-Scan",
            PhysicalOp::BtreeScan { .. } => "B-tree-Scan",
            PhysicalOp::Filter { .. } => "Filter",
            PhysicalOp::FilterBtreeScan { .. } => "Filter-B-tree-Scan",
            PhysicalOp::HashJoin { .. } => "Hash-Join",
            PhysicalOp::MergeJoin { .. } => "Merge-Join",
            PhysicalOp::IndexJoin { .. } => "Index-Join",
            PhysicalOp::Sort { .. } => "Sort",
            PhysicalOp::ChoosePlan => "Choose-Plan",
        }
    }

    /// The selection predicate evaluated by this operator, if any.
    #[must_use]
    pub fn select_predicate(&self) -> Option<&SelectPred> {
        match self {
            PhysicalOp::Filter { predicate } | PhysicalOp::FilterBtreeScan { predicate, .. } => {
                Some(predicate)
            }
            PhysicalOp::IndexJoin { residual, .. } => residual.as_ref(),
            _ => None,
        }
    }

    /// The join predicates evaluated by this operator, if any.
    #[must_use]
    pub fn join_predicates(&self) -> Option<&[JoinPred]> {
        match self {
            PhysicalOp::HashJoin { predicates }
            | PhysicalOp::MergeJoin { predicates }
            | PhysicalOp::IndexJoin { predicates, .. } => Some(predicates),
            _ => None,
        }
    }
}

impl fmt::Display for PhysicalOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PhysicalOp::FileScan { relation } => write!(f, "File-Scan {relation}"),
            PhysicalOp::BtreeScan { relation, key_attr, .. } => {
                write!(f, "B-tree-Scan {relation} on {key_attr}")
            }
            PhysicalOp::Filter { predicate } => write!(f, "Filter[{predicate}]"),
            PhysicalOp::FilterBtreeScan { relation, predicate, .. } => {
                write!(f, "Filter-B-tree-Scan {relation}[{predicate}]")
            }
            PhysicalOp::HashJoin { predicates } => {
                write!(f, "Hash-Join[{}]", preds(predicates))
            }
            PhysicalOp::MergeJoin { predicates } => {
                write!(f, "Merge-Join[{}]", preds(predicates))
            }
            PhysicalOp::IndexJoin { predicates, inner, .. } => {
                write!(f, "Index-Join[{}] into {inner}", preds(predicates))
            }
            PhysicalOp::Sort { attr } => write!(f, "Sort on {attr}"),
            PhysicalOp::ChoosePlan => f.write_str("Choose-Plan"),
        }
    }
}

fn preds(ps: &[JoinPred]) -> String {
    ps.iter()
        .map(|p| p.to_string())
        .collect::<Vec<_>>()
        .join(" and ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{CompareOp, HostVar};

    fn attr(rel: u32, idx: u32) -> AttrId {
        AttrId {
            relation: RelationId(rel),
            index: idx,
        }
    }

    fn join_pred() -> JoinPred {
        JoinPred::new(attr(0, 1), attr(1, 1))
    }

    #[test]
    fn arity() {
        assert_eq!(PhysicalOp::FileScan { relation: RelationId(0) }.arity(), Some(0));
        assert_eq!(
            PhysicalOp::Filter {
                predicate: SelectPred::bound(attr(0, 0), CompareOp::Lt, 1)
            }
            .arity(),
            Some(1)
        );
        assert_eq!(PhysicalOp::HashJoin { predicates: vec![join_pred()] }.arity(), Some(2));
        assert_eq!(PhysicalOp::ChoosePlan.arity(), None);
        assert_eq!(
            PhysicalOp::IndexJoin {
                predicates: vec![join_pred()],
                inner: RelationId(1),
                index: IndexId(0),
                residual: None,
            }
            .arity(),
            Some(1)
        );
    }

    #[test]
    fn enforcers() {
        assert!(PhysicalOp::Sort { attr: attr(0, 0) }.is_enforcer());
        assert!(PhysicalOp::ChoosePlan.is_enforcer());
        assert!(!PhysicalOp::FileScan { relation: RelationId(0) }.is_enforcer());
    }

    #[test]
    fn delivered_orders() {
        let a = attr(0, 0);
        assert_eq!(
            PhysicalOp::FileScan { relation: RelationId(0) }.delivered_order(&[]),
            SortOrder::None
        );
        assert_eq!(
            PhysicalOp::Sort { attr: a }.delivered_order(&[SortOrder::None]),
            SortOrder::Asc(a)
        );
        assert_eq!(
            PhysicalOp::BtreeScan {
                relation: RelationId(0),
                index: IndexId(0),
                key_attr: a
            }
            .delivered_order(&[]),
            SortOrder::Asc(a)
        );
        // Filter passes order through.
        let filt = PhysicalOp::Filter {
            predicate: SelectPred::unbound(a, CompareOp::Lt, HostVar(0)),
        };
        assert_eq!(filt.delivered_order(&[SortOrder::Asc(a)]), SortOrder::Asc(a));
        // Merge join delivers the left predicate attribute's order.
        let mj = PhysicalOp::MergeJoin { predicates: vec![join_pred()] };
        assert_eq!(
            mj.delivered_order(&[SortOrder::Asc(attr(0, 1)), SortOrder::Asc(attr(1, 1))]),
            SortOrder::Asc(attr(0, 1))
        );
        // Hash join destroys order.
        let hj = PhysicalOp::HashJoin { predicates: vec![join_pred()] };
        assert_eq!(
            hj.delivered_order(&[SortOrder::Asc(a), SortOrder::Asc(a)]),
            SortOrder::None
        );
    }

    #[test]
    fn choose_plan_order_is_common_order() {
        let a = attr(0, 0);
        let cp = PhysicalOp::ChoosePlan;
        assert_eq!(
            cp.delivered_order(&[SortOrder::Asc(a), SortOrder::Asc(a)]),
            SortOrder::Asc(a)
        );
        assert_eq!(
            cp.delivered_order(&[SortOrder::Asc(a), SortOrder::None]),
            SortOrder::None
        );
        assert_eq!(cp.delivered_order(&[]), SortOrder::None);
    }

    #[test]
    fn predicate_accessors() {
        let p = SelectPred::unbound(attr(0, 0), CompareOp::Lt, HostVar(0));
        let f = PhysicalOp::Filter { predicate: p };
        assert_eq!(f.select_predicate(), Some(&p));
        assert!(f.join_predicates().is_none());
        let hj = PhysicalOp::HashJoin { predicates: vec![join_pred()] };
        assert_eq!(hj.join_predicates().unwrap().len(), 1);
        assert!(hj.select_predicate().is_none());
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(PhysicalOp::ChoosePlan.name(), "Choose-Plan");
        assert_eq!(
            PhysicalOp::FileScan { relation: RelationId(0) }.name(),
            "File-Scan"
        );
        assert_eq!(
            PhysicalOp::FilterBtreeScan {
                relation: RelationId(0),
                index: IndexId(0),
                predicate: SelectPred::bound(attr(0, 0), CompareOp::Lt, 1)
            }
            .name(),
            "Filter-B-tree-Scan"
        );
    }
}
