//! Property-based tests of the B-tree against a reference model.

use std::collections::BTreeMap;

use dqep_storage::{BTree, PageId, Rid, SimDisk};
use proptest::prelude::*;

fn rid(i: usize) -> Rid {
    Rid {
        page: PageId(i as u32),
        slot: (i % 13) as u16,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Insertion + full scan equals the sorted reference multimap.
    #[test]
    fn scan_matches_reference(keys in proptest::collection::vec(-500i64..500, 0..600)) {
        let mut tree = BTree::new(SimDisk::new());
        let mut reference: BTreeMap<i64, Vec<Rid>> = BTreeMap::new();
        for (i, &k) in keys.iter().enumerate() {
            tree.insert(k, rid(i));
            reference.entry(k).or_default().push(rid(i));
        }
        prop_assert_eq!(tree.len(), keys.len() as u64);

        let mut scanned: Vec<(i64, Rid)> = Vec::new();
        tree.scan_all(|k, r| scanned.push((k, r))).unwrap();
        prop_assert_eq!(scanned.len(), keys.len());
        // Keys in non-decreasing order.
        prop_assert!(scanned.windows(2).all(|w| w[0].0 <= w[1].0));
        // Per-key rid multisets match the reference.
        for (k, rids) in &reference {
            let mut got = tree.lookup(*k).unwrap();
            let mut want = rids.clone();
            got.sort();
            want.sort();
            prop_assert_eq!(got, want, "key {}", k);
        }
    }

    /// Range queries agree with reference filtering for arbitrary bounds.
    #[test]
    fn ranges_match_reference(
        keys in proptest::collection::vec(-200i64..200, 0..400),
        lo in -250i64..250,
        width in 0i64..300,
    ) {
        let hi = lo + width;
        let mut tree = BTree::new(SimDisk::new());
        for (i, &k) in keys.iter().enumerate() {
            tree.insert(k, rid(i));
        }
        let got = tree.range(Some(lo), Some(hi)).unwrap().len();
        let want = keys.iter().filter(|&&k| (lo..=hi).contains(&k)).count();
        prop_assert_eq!(got, want);

        // Unbounded variants.
        prop_assert_eq!(
            tree.range(Some(lo), None).unwrap().len(),
            keys.iter().filter(|&&k| k >= lo).count()
        );
        prop_assert_eq!(
            tree.range(None, Some(hi)).unwrap().len(),
            keys.iter().filter(|&&k| k <= hi).count()
        );
    }

    /// Heavily duplicated keys survive splits intact.
    #[test]
    fn duplicate_heavy_workload(unique in 1usize..6, copies in 1usize..200) {
        let mut tree = BTree::new(SimDisk::new());
        let mut n = 0;
        for k in 0..unique {
            for _ in 0..copies {
                tree.insert(k as i64, rid(n));
                n += 1;
            }
        }
        for k in 0..unique {
            prop_assert_eq!(tree.lookup(k as i64).unwrap().len(), copies, "key {}", k);
        }
        prop_assert_eq!(tree.range(None, None).unwrap().len(), unique * copies);
    }
}

/// Height grows only logarithmically (sanity bound: a million-entry tree
/// would still be shallow; here 20k entries stay within 4 levels).
#[test]
fn height_is_logarithmic() {
    let mut tree = BTree::new(SimDisk::new());
    for i in 0..20_000i64 {
        tree.insert(i, rid(i as usize));
    }
    assert!(tree.height() <= 4, "height {}", tree.height());
}
