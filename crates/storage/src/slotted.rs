//! Slotted-page layout for variable-length records.
//!
//! Layout: a 4-byte header (`n_slots: u16`, `free_end: u16`), a slot array
//! growing forward from byte 4 (each slot is `offset: u16`, `len: u16`),
//! and record bytes growing backward from the end of the page.
//!
//! Deletion is **tombstoning**: [`SlottedPage::delete`] marks the slot's
//! offset with a sentinel and leaves the slot array untouched, so every
//! later slot keeps its number and record ids stay stable. Record bytes
//! are not reclaimed — the live-view write path favors rid stability over
//! space reuse, matching the lazy-deletion B-tree above it.

use crate::page::PAGE_SIZE;

const HEADER: usize = 4;
const SLOT: usize = 4;
/// Slot-offset sentinel marking a deleted record. Valid offsets are
/// strictly below [`PAGE_SIZE`] (2048), so the sentinel is unambiguous.
const TOMBSTONE: u16 = u16::MAX;

/// An in-memory view over one slotted page's bytes.
#[derive(Debug)]
pub struct SlottedPage {
    data: Box<[u8; PAGE_SIZE]>,
}

impl SlottedPage {
    /// A fresh, empty page.
    #[must_use]
    pub fn new() -> SlottedPage {
        let mut data = Box::new([0u8; PAGE_SIZE]);
        write_u16(&mut data[..], 2, PAGE_SIZE as u16); // free_end
        SlottedPage { data }
    }

    /// Wraps existing page bytes (as read from disk).
    #[must_use]
    pub fn from_bytes(data: Box<[u8; PAGE_SIZE]>) -> SlottedPage {
        SlottedPage { data }
    }

    /// The underlying bytes (for writing back to disk).
    #[must_use]
    pub fn as_bytes(&self) -> &[u8; PAGE_SIZE] {
        &self.data
    }

    /// Number of records stored.
    #[must_use]
    pub fn len(&self) -> usize {
        read_u16(&self.data[..], 0) as usize
    }

    /// Whether the page holds no records.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Free bytes remaining (accounting for the slot a new record needs).
    #[must_use]
    pub fn free_space(&self) -> usize {
        let n = self.len();
        let free_end = read_u16(&self.data[..], 2) as usize;
        free_end.saturating_sub(HEADER + (n + 1) * SLOT)
    }

    /// Inserts a record, returning its slot number, or `None` when the
    /// page is full.
    ///
    /// # Panics
    /// Panics on records too large to ever fit a page.
    pub fn insert(&mut self, record: &[u8]) -> Option<u16> {
        assert!(
            record.len() + HEADER + SLOT <= PAGE_SIZE,
            "record of {} bytes can never fit a page",
            record.len()
        );
        if self.free_space() < record.len() {
            return None;
        }
        let n = self.len();
        let free_end = read_u16(&self.data[..], 2) as usize;
        let off = free_end - record.len();
        self.data[off..free_end].copy_from_slice(record);
        let slot_base = HEADER + n * SLOT;
        write_u16(&mut self.data[..], slot_base, off as u16);
        write_u16(&mut self.data[..], slot_base + 2, record.len() as u16);
        write_u16(&mut self.data[..], 0, (n + 1) as u16);
        write_u16(&mut self.data[..], 2, off as u16);
        Some(n as u16)
    }

    /// The record in `slot`, or `None` when out of range or deleted.
    #[must_use]
    pub fn get(&self, slot: u16) -> Option<&[u8]> {
        if (slot as usize) >= self.len() {
            return None;
        }
        let slot_base = HEADER + slot as usize * SLOT;
        let off = read_u16(&self.data[..], slot_base);
        if off == TOMBSTONE {
            return None;
        }
        let off = off as usize;
        let len = read_u16(&self.data[..], slot_base + 2) as usize;
        Some(&self.data[off..off + len])
    }

    /// Tombstones the record in `slot`, returning whether a live record
    /// was deleted. The slot array is left intact (later slots keep their
    /// numbers); the record bytes are not reclaimed.
    pub fn delete(&mut self, slot: u16) -> bool {
        if self.get(slot).is_none() {
            return false;
        }
        let slot_base = HEADER + slot as usize * SLOT;
        write_u16(&mut self.data[..], slot_base, TOMBSTONE);
        true
    }

    /// Number of live (non-tombstoned) records.
    #[must_use]
    pub fn live_len(&self) -> usize {
        self.iter().count()
    }

    /// Iterates over live records in slot order (tombstones skipped).
    pub fn iter(&self) -> impl Iterator<Item = &[u8]> {
        (0..self.len() as u16).filter_map(move |s| self.get(s))
    }
}

impl Default for SlottedPage {
    fn default() -> Self {
        SlottedPage::new()
    }
}

fn read_u16(data: &[u8], at: usize) -> u16 {
    u16::from_le_bytes([data[at], data[at + 1]])
}

fn write_u16(data: &mut [u8], at: usize, v: u16) {
    data[at..at + 2].copy_from_slice(&v.to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_get() {
        let mut p = SlottedPage::new();
        assert!(p.is_empty());
        let s0 = p.insert(b"hello").unwrap();
        let s1 = p.insert(b"world!").unwrap();
        assert_eq!(s0, 0);
        assert_eq!(s1, 1);
        assert_eq!(p.get(0), Some(&b"hello"[..]));
        assert_eq!(p.get(1), Some(&b"world!"[..]));
        assert_eq!(p.get(2), None);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn fills_up_and_rejects() {
        let mut p = SlottedPage::new();
        let record = [7u8; 512];
        let mut count = 0;
        while p.insert(&record).is_some() {
            count += 1;
        }
        // 2048-byte page, 4-byte header, 4-byte slots: 3 records of 512 fit
        // (4 * (512 + 4) + 4 > 2048).
        assert_eq!(count, 3);
        assert!(p.insert(&record).is_none());
        // Smaller records may still fit.
        assert!(p.insert(&[1u8; 100]).is_some());
    }

    #[test]
    fn roundtrip_through_bytes() {
        let mut p = SlottedPage::new();
        p.insert(b"abc").unwrap();
        p.insert(b"defg").unwrap();
        let bytes = Box::new(*p.as_bytes());
        let q = SlottedPage::from_bytes(bytes);
        let records: Vec<&[u8]> = q.iter().collect();
        assert_eq!(records, vec![&b"abc"[..], &b"defg"[..]]);
    }

    #[test]
    fn empty_record_allowed() {
        let mut p = SlottedPage::new();
        let s = p.insert(b"").unwrap();
        assert_eq!(p.get(s), Some(&b""[..]));
    }

    #[test]
    #[should_panic(expected = "can never fit")]
    fn oversized_record_panics() {
        let mut p = SlottedPage::new();
        let _ = p.insert(&[0u8; PAGE_SIZE]);
    }

    #[test]
    fn delete_tombstones_without_renumbering() {
        let mut p = SlottedPage::new();
        p.insert(b"aa").unwrap();
        p.insert(b"bb").unwrap();
        p.insert(b"cc").unwrap();
        assert!(p.delete(1));
        // Slot 1 is gone; the other slots keep their numbers.
        assert_eq!(p.get(0), Some(&b"aa"[..]));
        assert_eq!(p.get(1), None);
        assert_eq!(p.get(2), Some(&b"cc"[..]));
        assert_eq!(p.len(), 3, "slot array intact");
        assert_eq!(p.live_len(), 2);
        let live: Vec<&[u8]> = p.iter().collect();
        assert_eq!(live, vec![&b"aa"[..], &b"cc"[..]]);
        // Double delete and out-of-range delete report false.
        assert!(!p.delete(1));
        assert!(!p.delete(9));
    }

    #[test]
    fn tombstones_survive_byte_roundtrip() {
        let mut p = SlottedPage::new();
        p.insert(b"x").unwrap();
        p.insert(b"y").unwrap();
        p.delete(0);
        let q = SlottedPage::from_bytes(Box::new(*p.as_bytes()));
        assert_eq!(q.get(0), None);
        assert_eq!(q.get(1), Some(&b"y"[..]));
        assert_eq!(q.live_len(), 1);
    }
}
