//! Storage-layer errors.
//!
//! Every fallible storage operation — page reads and writes, buffer-pool
//! construction, heap fetches, B-tree probes — reports a [`StorageError`]
//! instead of panicking, so the executor can propagate failures up the
//! operator tree and the choose-plan operator can degrade gracefully to an
//! alternative plan.

use std::fmt;

use crate::page::PageId;

/// An error raised by the storage substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A page id outside the allocated page range was accessed.
    UnallocatedPage(PageId),
    /// An injected fault (see [`crate::FaultPlan`]) failed the access.
    InjectedFault {
        /// The page being accessed when the fault fired.
        page: PageId,
        /// Whether the failed access was a write (else a read).
        write: bool,
    },
    /// A page write was attempted with a buffer that is not exactly one
    /// page long.
    BadPageLength {
        /// The length supplied.
        got: usize,
        /// The length required (`PAGE_SIZE`).
        expected: usize,
    },
    /// A buffer pool was requested with zero frames.
    ZeroCapacityPool,
    /// A record id did not resolve to a stored record (dangling index
    /// entry or corrupted page).
    RecordNotFound {
        /// The page the rid pointed into.
        page: PageId,
        /// The slot the rid pointed at.
        slot: u16,
    },
}

impl StorageError {
    /// Whether the failure was injected by a fault plan (as opposed to a
    /// structural error such as an unallocated page).
    #[must_use]
    pub fn is_injected(&self) -> bool {
        matches!(self, StorageError::InjectedFault { .. })
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::UnallocatedPage(p) => write!(f, "page {p} is not allocated"),
            StorageError::InjectedFault { page, write } => {
                let op = if *write { "write" } else { "read" };
                write!(f, "injected fault: {op} of page {page} failed")
            }
            StorageError::BadPageLength { got, expected } => {
                write!(f, "page write of {got} bytes; pages are {expected} bytes")
            }
            StorageError::ZeroCapacityPool => {
                f.write_str("buffer pool needs at least one frame")
            }
            StorageError::RecordNotFound { page, slot } => {
                write!(f, "no record at {page} slot {slot}")
            }
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        assert!(StorageError::UnallocatedPage(PageId(3)).to_string().contains("p3"));
        let e = StorageError::InjectedFault { page: PageId(9), write: false };
        assert!(e.to_string().contains("read of page p9"));
        assert!(e.is_injected());
        let w = StorageError::InjectedFault { page: PageId(1), write: true };
        assert!(w.to_string().contains("write of page p1"));
        assert!(StorageError::BadPageLength { got: 7, expected: 2048 }
            .to_string()
            .contains("7 bytes"));
        assert!(!StorageError::ZeroCapacityPool.is_injected());
        assert!(StorageError::RecordNotFound { page: PageId(2), slot: 5 }
            .to_string()
            .contains("slot 5"));
    }
}
