//! An LRU buffer pool over the simulated disk.

use std::collections::HashMap;

use crate::disk::SimDisk;
use crate::error::StorageError;
use crate::page::{PageId, PAGE_SIZE};

/// A least-recently-used page cache.
///
/// Reads hit the cache for free; misses read through to the (accounted)
/// disk and evict the least recently used frame when the pool is full.
/// The executor routes repeated point fetches (e.g. the inner fetches of
/// an index join) through a pool sized to the query's memory grant, which
/// is what the cost model's "upper index levels are cached" assumption
/// corresponds to.
#[derive(Debug)]
pub struct BufferPool {
    disk: SimDisk,
    capacity: usize,
    frames: HashMap<PageId, (Box<[u8; PAGE_SIZE]>, u64)>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl BufferPool {
    /// A pool of `capacity` pages over `disk`.
    ///
    /// # Errors
    /// [`StorageError::ZeroCapacityPool`] on zero capacity.
    pub fn new(disk: SimDisk, capacity: usize) -> Result<BufferPool, StorageError> {
        if capacity == 0 {
            return Err(StorageError::ZeroCapacityPool);
        }
        Ok(BufferPool {
            disk,
            capacity,
            frames: HashMap::new(),
            clock: 0,
            hits: 0,
            misses: 0,
        })
    }

    /// Reads a page through the pool.
    ///
    /// # Errors
    /// Propagates the disk's failure on a miss (unallocated page or
    /// injected fault); hits never fail.
    pub fn read(&mut self, id: PageId) -> Result<Box<[u8; PAGE_SIZE]>, StorageError> {
        self.clock += 1;
        let clock = self.clock;
        if let Some((data, used)) = self.frames.get_mut(&id) {
            *used = clock;
            self.hits += 1;
            return Ok(data.clone());
        }
        self.misses += 1;
        let data = self.disk.read(id)?;
        if self.frames.len() >= self.capacity {
            if let Some((&victim, _)) = self.frames.iter().min_by_key(|(_, (_, used))| *used) {
                self.frames.remove(&victim);
            }
        }
        self.frames.insert(id, (data.clone(), clock));
        Ok(data)
    }

    /// Cache hits so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Frames currently cached.
    #[must_use]
    pub fn resident(&self) -> usize {
        self.frames.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk_with(n: u32) -> (SimDisk, Vec<PageId>) {
        let disk = SimDisk::new();
        let ids: Vec<PageId> = (0..n).map(|_| disk.allocate()).collect();
        for (i, &id) in ids.iter().enumerate() {
            let mut page = [0u8; PAGE_SIZE];
            page[0] = i as u8;
            disk.write_unaccounted(id, &page);
        }
        (disk, ids)
    }

    #[test]
    fn caches_repeated_reads() {
        let (disk, ids) = disk_with(4);
        let mut pool = BufferPool::new(disk.clone(), 4).unwrap();
        for _ in 0..10 {
            let page = pool.read(ids[2]).unwrap();
            assert_eq!(page[0], 2);
        }
        assert_eq!(pool.misses(), 1);
        assert_eq!(pool.hits(), 9);
        assert_eq!(disk.stats().total(), 1, "only the miss touches disk");
    }

    #[test]
    fn evicts_least_recently_used() {
        let (disk, ids) = disk_with(3);
        let mut pool = BufferPool::new(disk.clone(), 2).unwrap();
        let _ = pool.read(ids[0]).unwrap();
        let _ = pool.read(ids[1]).unwrap();
        let _ = pool.read(ids[0]).unwrap(); // refresh 0; 1 is now LRU
        let _ = pool.read(ids[2]).unwrap(); // evicts 1
        assert_eq!(pool.resident(), 2);
        let before = disk.stats().total();
        let _ = pool.read(ids[0]).unwrap(); // still cached
        assert_eq!(disk.stats().total(), before);
        let _ = pool.read(ids[1]).unwrap(); // was evicted: miss
        assert_eq!(disk.stats().total(), before + 1);
    }

    #[test]
    fn zero_capacity_rejected() {
        let (disk, _) = disk_with(1);
        assert_eq!(
            BufferPool::new(disk, 0).unwrap_err(),
            StorageError::ZeroCapacityPool
        );
    }

    #[test]
    fn hits_do_not_consult_fault_plan() {
        use crate::fault::FaultPlan;
        let (disk, ids) = disk_with(2);
        let mut pool = BufferPool::new(disk.clone(), 2).unwrap();
        let _ = pool.read(ids[0]).unwrap(); // cached before faults start
        disk.set_fault_plan(FaultPlan::page_range(0, 1));
        assert!(pool.read(ids[0]).is_ok(), "cache hit needs no disk access");
        assert!(pool.read(ids[1]).is_err(), "miss reads through and fails");
    }
}
