//! Deterministic, seedable storage fault injection.
//!
//! A [`FaultPlan`] is installed on a [`crate::SimDisk`] and decides, per
//! accounted page access, whether the access fails with
//! [`crate::StorageError::InjectedFault`]. All triggers are deterministic:
//! the *N*-th read since installation, reads of a page range, or a
//! pseudo-random coin flipped from a seed and the access ordinal — so an
//! error path reproduces bit-for-bit from `(plan, workload)` alone.
//!
//! Fault plans only affect **accounted** accesses (the ones queries
//! perform); load-time `*_unaccounted` access is exempt so a database can
//! always be generated and then queried under faults.

use std::fmt;

use crate::page::PageId;

/// A deterministic storage fault schedule.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Fail the N-th accounted read (1-based ordinals since installation).
    pub fail_nth_reads: Vec<u64>,
    /// Fail every accounted read of a page in `[lo, hi]` (inclusive).
    pub fail_page_range: Option<(u32, u32)>,
    /// Probability in `[0, 1]` that any accounted read fails, drawn
    /// deterministically from [`FaultPlan::seed`] and the read ordinal.
    pub read_fail_prob: f64,
    /// Fail the N-th accounted write (1-based ordinals).
    pub fail_nth_writes: Vec<u64>,
    /// Seed for the probabilistic trigger.
    pub seed: u64,
}

impl FaultPlan {
    /// A plan that never fails anything.
    #[must_use]
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Fails the `n`-th accounted read (1-based).
    #[must_use]
    pub fn nth_read(n: u64) -> FaultPlan {
        FaultPlan {
            fail_nth_reads: vec![n],
            ..FaultPlan::default()
        }
    }

    /// Fails every accounted read of pages `lo..=hi`.
    #[must_use]
    pub fn page_range(lo: u32, hi: u32) -> FaultPlan {
        FaultPlan {
            fail_page_range: Some((lo, hi)),
            ..FaultPlan::default()
        }
    }

    /// Fails each accounted read with probability `prob`, deterministically
    /// in `seed`.
    #[must_use]
    pub fn probabilistic(prob: f64, seed: u64) -> FaultPlan {
        FaultPlan {
            read_fail_prob: prob.clamp(0.0, 1.0),
            seed,
            ..FaultPlan::default()
        }
    }

    /// Whether this plan can ever fire.
    #[must_use]
    pub fn is_active(&self) -> bool {
        !self.fail_nth_reads.is_empty()
            || self.fail_page_range.is_some()
            || self.read_fail_prob > 0.0
            || !self.fail_nth_writes.is_empty()
    }

    /// Decides whether the accounted read with 1-based `ordinal` of `page`
    /// fails.
    #[must_use]
    pub fn read_fails(&self, page: PageId, ordinal: u64) -> bool {
        if self.fail_nth_reads.contains(&ordinal) {
            return true;
        }
        if let Some((lo, hi)) = self.fail_page_range {
            if (lo..=hi).contains(&page.0) {
                return true;
            }
        }
        if self.read_fail_prob > 0.0 {
            let u = splitmix64(self.seed ^ ordinal.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            // Map the top 53 bits to [0, 1).
            let x = (u >> 11) as f64 / (1u64 << 53) as f64;
            if x < self.read_fail_prob {
                return true;
            }
        }
        false
    }

    /// Decides whether the accounted write with 1-based `ordinal` fails.
    #[must_use]
    pub fn write_fails(&self, ordinal: u64) -> bool {
        self.fail_nth_writes.contains(&ordinal)
    }

    /// Parses the CLI fault-plan syntax: a comma-separated list of
    /// `key=value` clauses.
    ///
    /// | clause | meaning |
    /// |---|---|
    /// | `nth-read=N` | fail the N-th accounted read (repeatable) |
    /// | `pages=LO..HI` | fail reads of pages LO through HI (inclusive) |
    /// | `read-prob=P` | fail each read with probability P |
    /// | `nth-write=N` | fail the N-th accounted write (repeatable) |
    /// | `seed=S` | seed for `read-prob` (default 0) |
    ///
    /// Example: `nth-read=5,pages=10..20,read-prob=0.01,seed=7`.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for clause in spec.split(',').map(str::trim).filter(|c| !c.is_empty()) {
            let (key, value) = clause
                .split_once('=')
                .ok_or_else(|| format!("fault clause `{clause}` is not key=value"))?;
            match key {
                "nth-read" => plan
                    .fail_nth_reads
                    .push(value.parse().map_err(|e| format!("nth-read: {e}"))?),
                "nth-write" => plan
                    .fail_nth_writes
                    .push(value.parse().map_err(|e| format!("nth-write: {e}"))?),
                "pages" => {
                    let (lo, hi) = value
                        .split_once("..")
                        .ok_or_else(|| format!("pages expects LO..HI, got `{value}`"))?;
                    let lo = lo.parse().map_err(|e| format!("pages lo: {e}"))?;
                    let hi = hi.parse().map_err(|e| format!("pages hi: {e}"))?;
                    if lo > hi {
                        return Err(format!("pages range {lo}..{hi} is empty"));
                    }
                    plan.fail_page_range = Some((lo, hi));
                }
                "read-prob" => {
                    let p: f64 = value.parse().map_err(|e| format!("read-prob: {e}"))?;
                    if !(0.0..=1.0).contains(&p) {
                        return Err(format!("read-prob {p} outside [0, 1]"));
                    }
                    plan.read_fail_prob = p;
                }
                "seed" => plan.seed = value.parse().map_err(|e| format!("seed: {e}"))?,
                other => return Err(format!("unknown fault clause `{other}`")),
            }
        }
        Ok(plan)
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts: Vec<String> = Vec::new();
        for n in &self.fail_nth_reads {
            parts.push(format!("nth-read={n}"));
        }
        if let Some((lo, hi)) = self.fail_page_range {
            parts.push(format!("pages={lo}..{hi}"));
        }
        if self.read_fail_prob > 0.0 {
            parts.push(format!("read-prob={}", self.read_fail_prob));
            parts.push(format!("seed={}", self.seed));
        }
        for n in &self.fail_nth_writes {
            parts.push(format!("nth-write={n}"));
        }
        if parts.is_empty() {
            return f.write_str("none");
        }
        f.write_str(&parts.join(","))
    }
}

/// SplitMix64 — a tiny, high-quality mixing function; deterministic and
/// dependency-free.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nth_read_fires_exactly_once() {
        let p = FaultPlan::nth_read(3);
        assert!(p.is_active());
        assert!(!p.read_fails(PageId(0), 1));
        assert!(!p.read_fails(PageId(0), 2));
        assert!(p.read_fails(PageId(0), 3));
        assert!(!p.read_fails(PageId(0), 4));
    }

    #[test]
    fn page_range_is_inclusive() {
        let p = FaultPlan::page_range(5, 7);
        assert!(!p.read_fails(PageId(4), 1));
        assert!(p.read_fails(PageId(5), 2));
        assert!(p.read_fails(PageId(7), 3));
        assert!(!p.read_fails(PageId(8), 4));
    }

    #[test]
    fn probabilistic_is_deterministic_and_calibrated() {
        let p = FaultPlan::probabilistic(0.25, 42);
        let fails: Vec<bool> = (1..=10_000).map(|i| p.read_fails(PageId(0), i)).collect();
        let again: Vec<bool> = (1..=10_000).map(|i| p.read_fails(PageId(0), i)).collect();
        assert_eq!(fails, again, "same seed, same outcome");
        let rate = fails.iter().filter(|&&b| b).count() as f64 / 10_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
        let other = FaultPlan::probabilistic(0.25, 43);
        let differs = (1..=10_000).any(|i| other.read_fails(PageId(0), i) != p.read_fails(PageId(0), i));
        assert!(differs, "different seeds diverge");
    }

    #[test]
    fn writes_fail_by_ordinal_only() {
        let p = FaultPlan {
            fail_nth_writes: vec![2],
            ..FaultPlan::default()
        };
        assert!(!p.write_fails(1));
        assert!(p.write_fails(2));
        assert!(!FaultPlan::nth_read(2).write_fails(2));
    }

    #[test]
    fn parse_round_trips() {
        let p = FaultPlan::parse("nth-read=5, pages=10..20, read-prob=0.01, seed=7, nth-write=3")
            .unwrap();
        assert_eq!(p.fail_nth_reads, vec![5]);
        assert_eq!(p.fail_page_range, Some((10, 20)));
        assert!((p.read_fail_prob - 0.01).abs() < 1e-12);
        assert_eq!(p.seed, 7);
        assert_eq!(p.fail_nth_writes, vec![3]);
        let shown = p.to_string();
        assert_eq!(FaultPlan::parse(&shown).unwrap(), p);
        assert_eq!(FaultPlan::none().to_string(), "none");
    }

    #[test]
    fn parse_rejects_bad_specs() {
        assert!(FaultPlan::parse("nth-read").is_err());
        assert!(FaultPlan::parse("pages=9..2").is_err());
        assert!(FaultPlan::parse("pages=xyz").is_err());
        assert!(FaultPlan::parse("read-prob=1.5").is_err());
        assert!(FaultPlan::parse("bogus=1").is_err());
        assert!(FaultPlan::parse("").unwrap() == FaultPlan::none());
    }
}
