//! A page-based B-tree mapping `i64` keys to record ids.
//!
//! Used as the *unclustered* associative search structure of the
//! experiments ("attributes referenced by the unbound selection predicates
//! as well as all join attributes had unclustered B-tree structures",
//! paper Section 6): leaves hold `(key, rid)` entries in key order and are
//! chained for range scans; fetching the records themselves costs one
//! (accounted) heap-page read per rid.
//!
//! Node layout (2,048-byte pages):
//! * byte 0: node kind (0 = leaf, 1 = internal)
//! * bytes 2–3: entry count
//! * leaf: bytes 4–7 next-leaf page id; entries of 14 bytes
//!   (`key: i64, page: u32, slot: u16`) from byte 8.
//! * internal: bytes 4–7 leftmost child; entries of 12 bytes
//!   (`key: i64, child: u32`) from byte 8. Child `i+1` holds keys
//!   `>= key[i]`.
//!
//! Construction is a load-time activity and uses unaccounted disk access;
//! lookups and range scans use accounted reads so executor I/O is
//! measurable.

use crate::disk::SimDisk;
use crate::error::StorageError;
use crate::heap::Rid;
use crate::page::{PageId, PAGE_SIZE};

const KIND_LEAF: u8 = 0;
const KIND_INTERNAL: u8 = 1;
const LEAF_ENTRY: usize = 14;
const INTERNAL_ENTRY: usize = 12;
const HEADER: usize = 8;
/// Entries per leaf page.
const LEAF_CAP: usize = (PAGE_SIZE - HEADER) / LEAF_ENTRY;
/// Keyed entries per internal page (plus the leftmost child).
const INTERNAL_CAP: usize = (PAGE_SIZE - HEADER) / INTERNAL_ENTRY;

/// A B-tree index over `i64` keys.
#[derive(Debug)]
pub struct BTree {
    disk: SimDisk,
    root: PageId,
    entries: u64,
    height: u32,
}

impl BTree {
    /// Creates an empty tree on `disk`.
    #[must_use]
    pub fn new(disk: SimDisk) -> BTree {
        let root = disk.allocate();
        let mut page = [0u8; PAGE_SIZE];
        init_leaf(&mut page, PageId::INVALID);
        disk.write_unaccounted(root, &page);
        BTree {
            disk,
            root,
            entries: 0,
            height: 1,
        }
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.entries
    }

    /// Whether the tree is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Tree height in levels (1 = a single leaf).
    #[must_use]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Inserts `(key, rid)` (duplicates allowed). Load-time: unaccounted.
    pub fn insert(&mut self, key: i64, rid: Rid) {
        if let Some((sep, right)) = self.insert_into(self.root, key, rid) {
            // Root split: new internal root.
            let new_root = self.disk.allocate();
            let mut page = [0u8; PAGE_SIZE];
            page[0] = KIND_INTERNAL;
            set_count(&mut page, 1);
            set_u32(&mut page, 4, self.root.0);
            set_i64(&mut page, HEADER, sep);
            set_u32(&mut page, HEADER + 8, right.0);
            self.disk.write_unaccounted(new_root, &page);
            self.root = new_root;
            self.height += 1;
        }
        self.entries += 1;
    }

    fn insert_into(&mut self, node: PageId, key: i64, rid: Rid) -> Option<(i64, PageId)> {
        let mut page = self.disk.read_unaccounted(node);
        if page[0] == KIND_LEAF {
            return self.insert_leaf(node, &mut page, key, rid);
        }
        let idx = internal_child_index(&page[..], key);
        let child = internal_child(&page[..], idx);
        let split = self.insert_into(child, key, rid)?;
        // Child split: insert (sep, right) after position idx.
        let (sep, right) = split;
        let n = count(&page[..]);
        if n < INTERNAL_CAP {
            // Shift entries right of idx.
            let base = HEADER + idx * INTERNAL_ENTRY;
            let end = HEADER + n * INTERNAL_ENTRY;
            page.copy_within(base..end, base + INTERNAL_ENTRY);
            set_i64(&mut page[..], base, sep);
            set_u32(&mut page[..], base + 8, right.0);
            set_count(&mut page[..], n + 1);
            self.disk.write_unaccounted(node, page.as_slice());
            return None;
        }
        // Split the internal node.
        let mut keys = Vec::with_capacity(n + 1);
        let mut children = Vec::with_capacity(n + 2);
        children.push(internal_child(&page[..], 0));
        for i in 0..n {
            keys.push(get_i64(&page[..], HEADER + i * INTERNAL_ENTRY));
            children.push(internal_child(&page[..], i + 1));
        }
        keys.insert(idx, sep);
        children.insert(idx + 1, right);
        let mid = keys.len() / 2;
        let up_key = keys[mid];
        let (lk, rk) = (keys[..mid].to_vec(), keys[mid + 1..].to_vec());
        let (lc, rc) = (children[..=mid].to_vec(), children[mid + 1..].to_vec());
        write_internal(&mut page, &lk, &lc);
        self.disk.write_unaccounted(node, page.as_slice());
        let right_id = self.disk.allocate();
        let mut rp = [0u8; PAGE_SIZE];
        write_internal(&mut rp, &rk, &rc);
        self.disk.write_unaccounted(right_id, &rp);
        Some((up_key, right_id))
    }

    fn insert_leaf(
        &mut self,
        node: PageId,
        page: &mut [u8; PAGE_SIZE],
        key: i64,
        rid: Rid,
    ) -> Option<(i64, PageId)> {
        let n = count(page);
        let idx = leaf_upper_bound(page, key);
        if n < LEAF_CAP {
            let base = HEADER + idx * LEAF_ENTRY;
            let end = HEADER + n * LEAF_ENTRY;
            page.copy_within(base..end, base + LEAF_ENTRY);
            write_leaf_entry(page, idx, key, rid);
            set_count(page, n + 1);
            self.disk.write_unaccounted(node, page.as_slice());
            return None;
        }
        // Split the leaf.
        let mut entries: Vec<(i64, Rid)> = (0..n).map(|i| leaf_entry(page, i)).collect();
        entries.insert(idx, (key, rid));
        let mid = entries.len() / 2;
        let right_id = self.disk.allocate();
        let next = leaf_next(page);
        // Left keeps [..mid], points to right; right gets [mid..], points
        // to the old next.
        let mut left = [0u8; PAGE_SIZE];
        init_leaf(&mut left, right_id);
        for (i, &(k, r)) in entries[..mid].iter().enumerate() {
            write_leaf_entry(&mut left, i, k, r);
        }
        set_count(&mut left, mid);
        let mut right = [0u8; PAGE_SIZE];
        init_leaf(&mut right, next);
        for (i, &(k, r)) in entries[mid..].iter().enumerate() {
            write_leaf_entry(&mut right, i, k, r);
        }
        set_count(&mut right, entries.len() - mid);
        self.disk.write_unaccounted(node, &left);
        self.disk.write_unaccounted(right_id, &right);
        Some((entries[mid].0, right_id))
    }

    /// Removes one `(key, rid)` entry, returning whether it was found.
    /// Deletion is **lazy**: the entry is shifted out of its leaf but no
    /// rebalancing or merging happens — under-full leaves stay in the
    /// chain, matching the tombstoning heap layer. Maintenance access is
    /// unaccounted, like [`BTree::insert`].
    pub fn remove(&mut self, key: i64, rid: Rid) -> bool {
        // Descend to the leftmost leaf that may hold the key (duplicates
        // can straddle separators), then walk the chain.
        let mut node = self.root;
        let mut page = self.disk.read_unaccounted(node);
        while page[0] == KIND_INTERNAL {
            node = internal_child(&page[..], internal_lower_bound_index(&page[..], key));
            page = self.disk.read_unaccounted(node);
        }
        loop {
            let n = count(&page[..]);
            for i in leaf_lower_bound(&page[..], key)..n {
                let (k, r) = leaf_entry(&page[..], i);
                if k > key {
                    return false;
                }
                if r == rid {
                    let base = HEADER + i * LEAF_ENTRY;
                    let end = HEADER + n * LEAF_ENTRY;
                    page.copy_within(base + LEAF_ENTRY..end, base);
                    set_count(&mut page[..], n - 1);
                    self.disk.write_unaccounted(node, page.as_slice());
                    self.entries -= 1;
                    return true;
                }
            }
            let next = leaf_next(&page[..]);
            if !next.is_valid() {
                return false;
            }
            node = next;
            page = self.disk.read_unaccounted(node);
        }
    }

    /// All rids whose key equals `key` (accounted reads: root-to-leaf
    /// descent plus leaf chaining).
    ///
    /// # Errors
    /// Propagates page-read failures (injected faults in particular).
    pub fn lookup(&self, key: i64) -> Result<Vec<Rid>, StorageError> {
        self.range(Some(key), Some(key))
    }

    /// Rids with keys in `[lo, hi]` (inclusive; `None` = unbounded), in key
    /// order. Accounted reads.
    ///
    /// # Errors
    /// Propagates page-read failures (injected faults in particular).
    pub fn range(&self, lo: Option<i64>, hi: Option<i64>) -> Result<Vec<Rid>, StorageError> {
        let mut out = Vec::new();
        self.range_scan(lo, hi, |_, rid| out.push(rid))?;
        Ok(out)
    }

    /// Streaming range scan in key order; `f(key, rid)` per entry.
    ///
    /// # Errors
    /// Stops at the first page-read failure and returns it; entries
    /// already passed to `f` stand.
    pub fn range_scan(
        &self,
        lo: Option<i64>,
        hi: Option<i64>,
        mut f: impl FnMut(i64, Rid),
    ) -> Result<(), StorageError> {
        // Descend to the first candidate leaf.
        let mut node = self.root;
        let mut page = self.disk.read(node)?;
        while page[0] == KIND_INTERNAL {
            let idx = match lo {
                Some(k) => internal_lower_bound_index(&page[..], k),
                None => 0,
            };
            node = internal_child(&page[..], idx);
            page = self.disk.read(node)?;
        }
        loop {
            let n = count(&page[..]);
            let start = match lo {
                Some(k) => leaf_lower_bound(&page[..], k),
                None => 0,
            };
            for i in start..n {
                let (k, rid) = leaf_entry(&page[..], i);
                if let Some(hi) = hi {
                    if k > hi {
                        return Ok(());
                    }
                }
                f(k, rid);
            }
            let next = leaf_next(&page[..]);
            if !next.is_valid() {
                return Ok(());
            }
            page = self.disk.read(next)?;
        }
    }

    /// Full scan in key order (accounted reads over the leaf chain only —
    /// the descent to the leftmost leaf plus the chain).
    ///
    /// # Errors
    /// Stops at the first page-read failure and returns it.
    pub fn scan_all(&self, f: impl FnMut(i64, Rid)) -> Result<(), StorageError> {
        self.range_scan(None, None, f)
    }
}

// ---- page-format helpers ----------------------------------------------

fn init_leaf(page: &mut [u8; PAGE_SIZE], next: PageId) {
    page[0] = KIND_LEAF;
    set_count(page, 0);
    set_u32(page, 4, next.0);
}

fn count(page: &[u8]) -> usize {
    u16::from_le_bytes([page[2], page[3]]) as usize
}

fn set_count(page: &mut [u8], n: usize) {
    page[2..4].copy_from_slice(&(n as u16).to_le_bytes());
}

fn set_u32(page: &mut [u8], at: usize, v: u32) {
    page[at..at + 4].copy_from_slice(&v.to_le_bytes());
}

fn get_u32(page: &[u8], at: usize) -> u32 {
    let mut b = [0u8; 4];
    b.copy_from_slice(&page[at..at + 4]);
    u32::from_le_bytes(b)
}

fn set_i64(page: &mut [u8], at: usize, v: i64) {
    page[at..at + 8].copy_from_slice(&v.to_le_bytes());
}

fn get_i64(page: &[u8], at: usize) -> i64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&page[at..at + 8]);
    i64::from_le_bytes(b)
}

fn leaf_next(page: &[u8]) -> PageId {
    PageId(get_u32(page, 4))
}

fn leaf_entry(page: &[u8], i: usize) -> (i64, Rid) {
    let base = HEADER + i * LEAF_ENTRY;
    let key = get_i64(page, base);
    let rid = Rid {
        page: PageId(get_u32(page, base + 8)),
        slot: u16::from_le_bytes([page[base + 12], page[base + 13]]),
    };
    (key, rid)
}

fn write_leaf_entry(page: &mut [u8], i: usize, key: i64, rid: Rid) {
    let base = HEADER + i * LEAF_ENTRY;
    set_i64(page, base, key);
    set_u32(page, base + 8, rid.page.0);
    page[base + 12..base + 14].copy_from_slice(&rid.slot.to_le_bytes());
}

/// First leaf position with key >= `key`.
fn leaf_lower_bound(page: &[u8], key: i64) -> usize {
    let n = count(page);
    let (mut lo, mut hi) = (0, n);
    while lo < hi {
        let mid = (lo + hi) / 2;
        if leaf_entry(page, mid).0 < key {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// First leaf position with key > `key` (insertion point for duplicates).
fn leaf_upper_bound(page: &[u8], key: i64) -> usize {
    let n = count(page);
    let (mut lo, mut hi) = (0, n);
    while lo < hi {
        let mid = (lo + hi) / 2;
        if leaf_entry(page, mid).0 <= key {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

fn internal_child(page: &[u8], idx: usize) -> PageId {
    if idx == 0 {
        PageId(get_u32(page, 4))
    } else {
        PageId(get_u32(page, HEADER + (idx - 1) * INTERNAL_ENTRY + 8))
    }
}

/// Index of the child an *insert* of `key` descends into: the number of
/// separator keys <= key, so duplicates append after existing entries.
fn internal_child_index(page: &[u8], key: i64) -> usize {
    internal_index(page, key, false)
}

/// Index of the leftmost child that may contain `key`: the number of
/// separator keys strictly below it. Range scans must descend here —
/// duplicate keys can straddle a leaf split, leaving equal keys both left
/// and right of a separator equal to the key.
fn internal_lower_bound_index(page: &[u8], key: i64) -> usize {
    internal_index(page, key, true)
}

fn internal_index(page: &[u8], key: i64, strict: bool) -> usize {
    let n = count(page);
    let (mut lo, mut hi) = (0, n);
    while lo < hi {
        let mid = (lo + hi) / 2;
        let sep = get_i64(page, HEADER + mid * INTERNAL_ENTRY);
        let go_right = if strict { sep < key } else { sep <= key };
        if go_right {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

fn write_internal(page: &mut [u8; PAGE_SIZE], keys: &[i64], children: &[PageId]) {
    assert_eq!(children.len(), keys.len() + 1);
    page.fill(0);
    page[0] = KIND_INTERNAL;
    set_count(page, keys.len());
    set_u32(page, 4, children[0].0);
    for (i, (&k, &c)) in keys.iter().zip(&children[1..]).enumerate() {
        let base = HEADER + i * INTERNAL_ENTRY;
        set_i64(page, base, k);
        set_u32(page, base + 8, c.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rid(i: u32) -> Rid {
        Rid {
            page: PageId(i),
            slot: (i % 7) as u16,
        }
    }

    #[test]
    fn insert_and_lookup_small() {
        let mut t = BTree::new(SimDisk::new());
        assert!(t.is_empty());
        for i in 0..50i64 {
            t.insert(i * 2, rid(i as u32));
        }
        assert_eq!(t.len(), 50);
        assert_eq!(t.height(), 1, "50 entries fit one leaf");
        assert_eq!(t.lookup(10).unwrap(), vec![rid(5)]);
        assert_eq!(t.lookup(11).unwrap(), vec![]);
    }

    #[test]
    fn splits_maintain_order() {
        let mut t = BTree::new(SimDisk::new());
        // Insert far more than one leaf holds (LEAF_CAP = 145), in a
        // scattered order.
        let n = 2000i64;
        for i in 0..n {
            let key = (i * 7919) % n; // permutation of 0..n
            t.insert(key, rid(key as u32));
        }
        assert!(t.height() >= 2);
        let mut keys = Vec::new();
        t.scan_all(|k, r| {
            keys.push(k);
            assert_eq!(r, rid(k as u32));
        })
        .unwrap();
        assert_eq!(keys.len(), n as usize);
        assert!(keys.windows(2).all(|w| w[0] <= w[1]), "keys sorted");
        assert_eq!(keys, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn duplicates_are_kept() {
        let mut t = BTree::new(SimDisk::new());
        for i in 0..300u32 {
            t.insert(42, rid(i));
        }
        t.insert(41, rid(999));
        t.insert(43, rid(998));
        let hits = t.lookup(42).unwrap();
        assert_eq!(hits.len(), 300);
        assert_eq!(t.lookup(41).unwrap(), vec![rid(999)]);
    }

    #[test]
    fn range_scans() {
        let mut t = BTree::new(SimDisk::new());
        for i in 0..1000i64 {
            t.insert(i, rid(i as u32));
        }
        assert_eq!(t.range(Some(10), Some(19)).unwrap().len(), 10);
        assert_eq!(t.range(None, Some(4)).unwrap().len(), 5);
        assert_eq!(t.range(Some(995), None).unwrap().len(), 5);
        assert_eq!(t.range(Some(2000), None).unwrap().len(), 0);
        assert_eq!(t.range(None, None).unwrap().len(), 1000);
        // Half-open sanity: inclusive bounds.
        assert_eq!(t.range(Some(5), Some(5)).unwrap(), vec![rid(5)]);
    }

    #[test]
    fn lookups_charge_accounted_io() {
        let disk = SimDisk::new();
        let mut t = BTree::new(disk.clone());
        for i in 0..2000i64 {
            t.insert(i, rid(i as u32));
        }
        assert_eq!(disk.stats().total(), 0, "construction is unaccounted");
        let _ = t.lookup(1234).unwrap();
        let s = disk.stats();
        assert!(s.total() >= t.height() as u64, "descent reads each level");
    }

    #[test]
    fn multi_level_internal_splits() {
        // Force at least 3 levels: > LEAF_CAP * INTERNAL_CAP entries would
        // be huge; instead verify 2-level correctness at scale and
        // monotone height growth.
        let mut t = BTree::new(SimDisk::new());
        let mut last_height = t.height();
        for i in 0..30_000i64 {
            t.insert(i, rid((i % 4096) as u32));
            assert!(t.height() >= last_height);
            last_height = t.height();
        }
        assert!(t.height() >= 3, "30k entries need 3 levels (cap 145/170)");
        assert_eq!(t.range(Some(29_990), None).unwrap().len(), 10);
        assert_eq!(t.lookup(15_000).unwrap().len(), 1);
    }

    #[test]
    fn remove_deletes_one_entry() {
        let mut t = BTree::new(SimDisk::new());
        for i in 0..2000i64 {
            t.insert(i, rid(i as u32));
        }
        assert!(t.remove(1234, rid(1234)));
        assert_eq!(t.len(), 1999);
        assert_eq!(t.lookup(1234).unwrap(), vec![]);
        assert!(!t.remove(1234, rid(1234)), "already gone");
        assert!(!t.remove(5000, rid(1)), "never present");
        // Neighbours unaffected.
        assert_eq!(t.lookup(1233).unwrap(), vec![rid(1233)]);
        assert_eq!(t.lookup(1235).unwrap(), vec![rid(1235)]);
    }

    #[test]
    fn remove_picks_the_matching_duplicate() {
        let mut t = BTree::new(SimDisk::new());
        for i in 0..300u32 {
            t.insert(42, rid(i));
        }
        assert!(t.remove(42, rid(250)));
        let hits = t.lookup(42).unwrap();
        assert_eq!(hits.len(), 299);
        assert!(!hits.contains(&rid(250)));
        // Reinsert after remove round-trips.
        t.insert(42, rid(250));
        assert_eq!(t.lookup(42).unwrap().len(), 300);
    }

    #[test]
    fn faulted_descent_errors_but_insert_is_exempt() {
        use crate::fault::FaultPlan;
        let disk = SimDisk::new();
        let mut t = BTree::new(disk.clone());
        for i in 0..2000i64 {
            t.insert(i, rid(i as u32));
        }
        disk.set_fault_plan(FaultPlan::nth_read(1));
        let err = t.lookup(100).unwrap_err();
        assert!(err.is_injected());
        // The plan is one-shot; the next lookup succeeds, and inserts are
        // never affected (unaccounted access).
        t.insert(5000, rid(1));
        assert_eq!(t.lookup(100).unwrap(), vec![rid(100)]);
    }
}
