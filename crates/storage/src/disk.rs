//! The simulated disk: an in-memory page store with I/O accounting and
//! deterministic fault injection.

use parking_lot::Mutex;
use std::sync::Arc;

use dqep_catalog::SystemConfig;

use crate::error::StorageError;
use crate::fault::FaultPlan;
use crate::page::{PageId, PAGE_SIZE};

/// Access counters, classified the way the cost model charges them: a read
/// of the page following the previously read page is *sequential*, any
/// other read is *random*, writes are charged sequentially (the simulator
/// writes whole files and runs in order).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Sequential page reads.
    pub seq_reads: u64,
    /// Random page reads.
    pub random_reads: u64,
    /// Page writes.
    pub writes: u64,
}

impl IoStats {
    /// Total pages touched.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.seq_reads + self.random_reads + self.writes
    }

    /// Simulated seconds under the configured per-page constants.
    #[must_use]
    pub fn seconds(&self, config: &SystemConfig) -> f64 {
        (self.seq_reads + self.writes) as f64 * config.seq_page_io
            + self.random_reads as f64 * config.random_page_io
    }

    /// Counter difference (`self` later than `earlier`).
    #[must_use]
    pub fn since(&self, earlier: &IoStats) -> IoStats {
        IoStats {
            seq_reads: self.seq_reads - earlier.seq_reads,
            random_reads: self.random_reads - earlier.random_reads,
            writes: self.writes - earlier.writes,
        }
    }
}

/// Merging per-session deltas into service-level totals. Only meaningful
/// for *deltas* (from [`IoStats::since`]) measured on disks no other
/// session touches concurrently; a shared disk's raw counters would bleed
/// other sessions' I/O into the sum.
impl std::ops::AddAssign for IoStats {
    fn add_assign(&mut self, rhs: IoStats) {
        self.seq_reads += rhs.seq_reads;
        self.random_reads += rhs.random_reads;
        self.writes += rhs.writes;
    }
}

#[derive(Debug)]
struct DiskInner {
    // Boxed so growing the page vector moves 8-byte pointers, not 2 KiB
    // pages.
    #[allow(clippy::vec_box)]
    pages: Vec<Box<[u8; PAGE_SIZE]>>,
    stats: IoStats,
    last_read: Option<PageId>,
    faults: FaultPlan,
    /// 1-based ordinal of the next accounted read, for fault matching.
    read_ordinal: u64,
    /// 1-based ordinal of the next accounted write, for fault matching.
    write_ordinal: u64,
    /// Real-time pacing per accounted access, in microseconds (0 = off).
    latency_micros: u64,
}

/// A shared, thread-safe simulated disk.
///
/// All storage structures ([`crate::HeapFile`], [`crate::BTree`],
/// [`crate::BufferPool`]) allocate and access pages through one `SimDisk`,
/// so a query's total I/O is read off a single [`IoStats`].
///
/// # Fault injection
///
/// A [`FaultPlan`] installed with [`SimDisk::set_fault_plan`] fails
/// matching **accounted** accesses with
/// [`StorageError::InjectedFault`]. Unaccounted (load-time) access is
/// exempt by design, so a database can always be generated and then
/// queried under faults.
#[derive(Debug, Clone)]
pub struct SimDisk {
    inner: Arc<Mutex<DiskInner>>,
}

impl SimDisk {
    /// An empty disk.
    #[must_use]
    pub fn new() -> SimDisk {
        SimDisk {
            inner: Arc::new(Mutex::new(DiskInner {
                pages: Vec::new(),
                stats: IoStats::default(),
                last_read: None,
                faults: FaultPlan::none(),
                read_ordinal: 0,
                write_ordinal: 0,
                latency_micros: 0,
            })),
        }
    }

    /// Paces every **accounted** read and write by sleeping `micros`
    /// real-time microseconds (0 disables pacing, the default). Simulated
    /// cost accounting is unchanged — pacing only makes the wall-clock
    /// shape of a query resemble a device with latency, so concurrent
    /// sessions can demonstrably overlap their I/O stalls. The sleep
    /// happens *outside* the disk lock; concurrent accessors of other
    /// disks (or unaccounted loads) are never serialized behind it.
    pub fn set_io_latency_micros(&self, micros: u64) {
        self.inner.lock().latency_micros = micros;
    }

    /// Installs a fault plan and resets the access ordinals it matches
    /// against, so "fail the 3rd read" means the 3rd read *after*
    /// installation.
    pub fn set_fault_plan(&self, plan: FaultPlan) {
        let mut inner = self.inner.lock();
        inner.faults = plan;
        inner.read_ordinal = 0;
        inner.write_ordinal = 0;
    }

    /// The currently installed fault plan.
    #[must_use]
    pub fn fault_plan(&self) -> FaultPlan {
        self.inner.lock().faults.clone()
    }

    /// Allocates a zeroed page; not charged as I/O (allocation happens at
    /// load time in the experiments).
    pub fn allocate(&self) -> PageId {
        let mut inner = self.inner.lock();
        let id = PageId(inner.pages.len() as u32);
        inner.pages.push(Box::new([0u8; PAGE_SIZE]));
        id
    }

    /// Number of allocated pages.
    #[must_use]
    pub fn page_count(&self) -> usize {
        self.inner.lock().pages.len()
    }

    /// Reads a page, charging sequential or random I/O.
    ///
    /// # Errors
    /// [`StorageError::UnallocatedPage`] for an id outside the allocated
    /// range; [`StorageError::InjectedFault`] when the installed fault
    /// plan fails this read. Failed reads are still charged — the I/O was
    /// attempted — and still advance the read ordinal.
    pub fn read(&self, id: PageId) -> Result<Box<[u8; PAGE_SIZE]>, StorageError> {
        let (result, latency) = {
            let mut inner = self.inner.lock();
            if id.0 as usize >= inner.pages.len() {
                return Err(StorageError::UnallocatedPage(id));
            }
            let sequential = matches!(inner.last_read, Some(prev) if prev.0 + 1 == id.0);
            if sequential {
                inner.stats.seq_reads += 1;
            } else {
                inner.stats.random_reads += 1;
            }
            inner.last_read = Some(id);
            inner.read_ordinal += 1;
            let result = if inner.faults.read_fails(id, inner.read_ordinal) {
                Err(StorageError::InjectedFault { page: id, write: false })
            } else {
                Ok(inner.pages[id.0 as usize].clone())
            };
            (result, inner.latency_micros)
        };
        Self::pace(latency);
        result
    }

    /// Sleeps for one paced access (the I/O was attempted and charged, so
    /// faulted accesses pace too). Called with the disk lock released.
    fn pace(latency_micros: u64) {
        if latency_micros > 0 {
            std::thread::sleep(std::time::Duration::from_micros(latency_micros));
        }
    }

    /// Writes a page, charging one write.
    ///
    /// # Errors
    /// [`StorageError::BadPageLength`] unless `data` is exactly one page;
    /// [`StorageError::UnallocatedPage`] for an id outside the allocated
    /// range; [`StorageError::InjectedFault`] when the installed fault
    /// plan fails this write (charged, nothing stored).
    pub fn write(&self, id: PageId, data: &[u8]) -> Result<(), StorageError> {
        if data.len() != PAGE_SIZE {
            return Err(StorageError::BadPageLength { got: data.len(), expected: PAGE_SIZE });
        }
        let (result, latency) = {
            let mut inner = self.inner.lock();
            if id.0 as usize >= inner.pages.len() {
                return Err(StorageError::UnallocatedPage(id));
            }
            inner.stats.writes += 1;
            inner.write_ordinal += 1;
            let result = if inner.faults.write_fails(inner.write_ordinal) {
                Err(StorageError::InjectedFault { page: id, write: true })
            } else {
                inner.pages[id.0 as usize].copy_from_slice(data);
                Ok(())
            };
            (result, inner.latency_micros)
        };
        Self::pace(latency);
        result
    }

    /// Reads a page **without** charging I/O — used by loaders (e.g.
    /// B-tree construction) whose effort the experiments do not account.
    /// Exempt from fault plans.
    ///
    /// # Panics
    /// Panics on an unallocated page id: loaders only touch pages they
    /// allocated themselves, so an out-of-range id here is a bug, not a
    /// runtime fault.
    #[must_use]
    pub fn read_unaccounted(&self, id: PageId) -> Box<[u8; PAGE_SIZE]> {
        self.inner.lock().pages[id.0 as usize].clone()
    }

    /// Writes a page **without** charging I/O — used by loaders building
    /// the initial database, which the experiments do not account.
    /// Exempt from fault plans.
    ///
    /// # Panics
    /// Panics on an unallocated page id or wrong buffer length (loader
    /// bugs, not runtime faults).
    pub fn write_unaccounted(&self, id: PageId, data: &[u8]) {
        assert_eq!(data.len(), PAGE_SIZE, "page writes are whole pages");
        let mut inner = self.inner.lock();
        inner.pages[id.0 as usize].copy_from_slice(data);
    }

    /// Charges one write without transferring data — used by temp heap
    /// files that buffer a page in memory and account it when sealed.
    ///
    /// # Errors
    /// [`StorageError::InjectedFault`] when the installed fault plan fails
    /// this (accounted) write.
    pub fn note_write(&self) -> Result<(), StorageError> {
        let (result, latency) = {
            let mut inner = self.inner.lock();
            inner.stats.writes += 1;
            inner.write_ordinal += 1;
            let result = if inner.faults.write_fails(inner.write_ordinal) {
                Err(StorageError::InjectedFault { page: PageId::INVALID, write: true })
            } else {
                Ok(())
            };
            (result, inner.latency_micros)
        };
        Self::pace(latency);
        result
    }

    /// Current counters.
    #[must_use]
    pub fn stats(&self) -> IoStats {
        self.inner.lock().stats
    }

    /// Resets counters (e.g. between the load phase and a measured query).
    /// Fault-plan ordinals are left alone; use [`SimDisk::set_fault_plan`]
    /// to restart those.
    pub fn reset_stats(&self) {
        let mut inner = self.inner.lock();
        inner.stats = IoStats::default();
        inner.last_read = None;
    }
}

impl Default for SimDisk {
    fn default() -> Self {
        SimDisk::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_vs_random_classification() {
        let disk = SimDisk::new();
        let ids: Vec<PageId> = (0..4).map(|_| disk.allocate()).collect();
        let _ = disk.read(ids[0]).unwrap(); // first read: random
        let _ = disk.read(ids[1]).unwrap(); // sequential
        let _ = disk.read(ids[2]).unwrap(); // sequential
        let _ = disk.read(ids[0]).unwrap(); // random (backwards)
        let _ = disk.read(ids[3]).unwrap(); // random (skip)
        let s = disk.stats();
        assert_eq!(s.seq_reads, 2);
        assert_eq!(s.random_reads, 3);
        assert_eq!(s.writes, 0);
    }

    #[test]
    fn write_roundtrip_and_accounting() {
        let disk = SimDisk::new();
        let id = disk.allocate();
        let mut buf = [0u8; PAGE_SIZE];
        buf[0] = 42;
        buf[PAGE_SIZE - 1] = 7;
        disk.write(id, &buf).unwrap();
        let back = disk.read(id).unwrap();
        assert_eq!(back[0], 42);
        assert_eq!(back[PAGE_SIZE - 1], 7);
        assert_eq!(disk.stats().writes, 1);

        disk.write_unaccounted(id, &buf);
        assert_eq!(disk.stats().writes, 1, "unaccounted writes do not count");
    }

    #[test]
    fn stats_seconds_and_since() {
        let cfg = SystemConfig::paper_1994();
        let s = IoStats {
            seq_reads: 100,
            random_reads: 10,
            writes: 50,
        };
        let secs = s.seconds(&cfg);
        assert!((secs - (150.0 * 0.001 + 10.0 * 0.004)).abs() < 1e-12);
        assert_eq!(s.total(), 160);

        let earlier = IoStats {
            seq_reads: 40,
            random_reads: 4,
            writes: 20,
        };
        let d = s.since(&earlier);
        assert_eq!(d, IoStats { seq_reads: 60, random_reads: 6, writes: 30 });
    }

    #[test]
    fn reset_clears_counters_and_position() {
        let disk = SimDisk::new();
        let a = disk.allocate();
        let b = disk.allocate();
        let _ = disk.read(a).unwrap();
        disk.reset_stats();
        assert_eq!(disk.stats(), IoStats::default());
        // After reset, even the "next" page counts as random.
        let _ = disk.read(b).unwrap();
        assert_eq!(disk.stats().random_reads, 1);
    }

    #[test]
    fn reading_unallocated_page_errors() {
        let disk = SimDisk::new();
        assert_eq!(
            disk.read(PageId(5)).unwrap_err(),
            StorageError::UnallocatedPage(PageId(5))
        );
        assert_eq!(
            disk.write(PageId(5), &[0u8; PAGE_SIZE]).unwrap_err(),
            StorageError::UnallocatedPage(PageId(5))
        );
    }

    #[test]
    fn short_write_errors() {
        let disk = SimDisk::new();
        let id = disk.allocate();
        assert_eq!(
            disk.write(id, &[0u8; 7]).unwrap_err(),
            StorageError::BadPageLength { got: 7, expected: PAGE_SIZE }
        );
        assert_eq!(disk.stats().writes, 0, "rejected before being charged");
    }

    #[test]
    fn nth_read_fault_fires_once() {
        let disk = SimDisk::new();
        let id = disk.allocate();
        disk.set_fault_plan(FaultPlan::nth_read(2));
        assert!(disk.read(id).is_ok());
        let err = disk.read(id).unwrap_err();
        assert!(err.is_injected());
        assert!(disk.read(id).is_ok(), "fault is one-shot by ordinal");
        // Failed reads are still charged.
        assert_eq!(disk.stats().seq_reads + disk.stats().random_reads, 3);
    }

    #[test]
    fn page_range_fault_spares_unaccounted_access() {
        let disk = SimDisk::new();
        let a = disk.allocate();
        let b = disk.allocate();
        disk.set_fault_plan(FaultPlan::page_range(1, 1));
        assert!(disk.read(a).is_ok());
        assert!(disk.read(b).is_err());
        // Loaders bypass the plan entirely.
        let _ = disk.read_unaccounted(b);
        disk.write_unaccounted(b, &[1u8; PAGE_SIZE]);
    }

    #[test]
    fn write_faults_hit_note_write_too() {
        let disk = SimDisk::new();
        let id = disk.allocate();
        let mut plan = FaultPlan::none();
        plan.fail_nth_writes = vec![2];
        disk.set_fault_plan(plan);
        assert!(disk.write(id, &[0u8; PAGE_SIZE]).is_ok());
        let err = disk.note_write().unwrap_err();
        assert_eq!(err, StorageError::InjectedFault { page: PageId::INVALID, write: true });
        assert!(disk.note_write().is_ok());
    }

    #[test]
    fn set_fault_plan_resets_ordinals() {
        let disk = SimDisk::new();
        let id = disk.allocate();
        let _ = disk.read(id).unwrap();
        let _ = disk.read(id).unwrap();
        disk.set_fault_plan(FaultPlan::nth_read(1));
        assert!(disk.read(id).is_err(), "ordinal restarted at installation");
    }

    #[test]
    fn stats_deltas_merge() {
        let mut total = IoStats::default();
        total += IoStats { seq_reads: 3, random_reads: 1, writes: 2 };
        total += IoStats { seq_reads: 1, random_reads: 4, writes: 0 };
        assert_eq!(total, IoStats { seq_reads: 4, random_reads: 5, writes: 2 });
        assert_eq!(total.total(), 11);
    }

    #[test]
    fn io_pacing_slows_accounted_reads_only() {
        let disk = SimDisk::new();
        let id = disk.allocate();
        disk.set_io_latency_micros(2_000);
        let start = std::time::Instant::now();
        let _ = disk.read(id).unwrap();
        assert!(start.elapsed().as_micros() >= 2_000, "accounted read paced");
        let start = std::time::Instant::now();
        let _ = disk.read_unaccounted(id);
        assert!(start.elapsed().as_micros() < 2_000, "unaccounted read not paced");
        disk.set_io_latency_micros(0);
        // Accounting is identical with pacing on or off.
        assert_eq!(disk.stats().total(), 1);
    }
}
