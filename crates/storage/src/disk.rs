//! The simulated disk: an in-memory page store with I/O accounting.

use parking_lot::Mutex;
use std::sync::Arc;

use dqep_catalog::SystemConfig;

use crate::page::{PageId, PAGE_SIZE};

/// Access counters, classified the way the cost model charges them: a read
/// of the page following the previously read page is *sequential*, any
/// other read is *random*, writes are charged sequentially (the simulator
/// writes whole files and runs in order).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Sequential page reads.
    pub seq_reads: u64,
    /// Random page reads.
    pub random_reads: u64,
    /// Page writes.
    pub writes: u64,
}

impl IoStats {
    /// Total pages touched.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.seq_reads + self.random_reads + self.writes
    }

    /// Simulated seconds under the configured per-page constants.
    #[must_use]
    pub fn seconds(&self, config: &SystemConfig) -> f64 {
        (self.seq_reads + self.writes) as f64 * config.seq_page_io
            + self.random_reads as f64 * config.random_page_io
    }

    /// Counter difference (`self` later than `earlier`).
    #[must_use]
    pub fn since(&self, earlier: &IoStats) -> IoStats {
        IoStats {
            seq_reads: self.seq_reads - earlier.seq_reads,
            random_reads: self.random_reads - earlier.random_reads,
            writes: self.writes - earlier.writes,
        }
    }
}

#[derive(Debug)]
struct DiskInner {
    pages: Vec<Box<[u8; PAGE_SIZE]>>,
    stats: IoStats,
    last_read: Option<PageId>,
}

/// A shared, thread-safe simulated disk.
///
/// All storage structures ([`crate::HeapFile`], [`crate::BTree`],
/// [`crate::BufferPool`]) allocate and access pages through one `SimDisk`,
/// so a query's total I/O is read off a single [`IoStats`].
#[derive(Debug, Clone)]
pub struct SimDisk {
    inner: Arc<Mutex<DiskInner>>,
}

impl SimDisk {
    /// An empty disk.
    #[must_use]
    pub fn new() -> SimDisk {
        SimDisk {
            inner: Arc::new(Mutex::new(DiskInner {
                pages: Vec::new(),
                stats: IoStats::default(),
                last_read: None,
            })),
        }
    }

    /// Allocates a zeroed page; not charged as I/O (allocation happens at
    /// load time in the experiments).
    pub fn allocate(&self) -> PageId {
        let mut inner = self.inner.lock();
        let id = PageId(inner.pages.len() as u32);
        inner.pages.push(Box::new([0u8; PAGE_SIZE]));
        id
    }

    /// Number of allocated pages.
    #[must_use]
    pub fn page_count(&self) -> usize {
        self.inner.lock().pages.len()
    }

    /// Reads a page, charging sequential or random I/O.
    ///
    /// # Panics
    /// Panics on an unallocated page id.
    #[must_use]
    pub fn read(&self, id: PageId) -> Box<[u8; PAGE_SIZE]> {
        let mut inner = self.inner.lock();
        let sequential = matches!(inner.last_read, Some(prev) if prev.0 + 1 == id.0);
        if sequential {
            inner.stats.seq_reads += 1;
        } else {
            inner.stats.random_reads += 1;
        }
        inner.last_read = Some(id);
        inner.pages[id.0 as usize].clone()
    }

    /// Writes a page, charging one write.
    ///
    /// # Panics
    /// Panics on an unallocated page id or wrong buffer length.
    pub fn write(&self, id: PageId, data: &[u8]) {
        assert_eq!(data.len(), PAGE_SIZE, "page writes are whole pages");
        let mut inner = self.inner.lock();
        inner.stats.writes += 1;
        inner.pages[id.0 as usize].copy_from_slice(data);
    }

    /// Reads a page **without** charging I/O — used by loaders (e.g.
    /// B-tree construction) whose effort the experiments do not account.
    ///
    /// # Panics
    /// Panics on an unallocated page id.
    #[must_use]
    pub fn read_unaccounted(&self, id: PageId) -> Box<[u8; PAGE_SIZE]> {
        self.inner.lock().pages[id.0 as usize].clone()
    }

    /// Writes a page **without** charging I/O — used by loaders building
    /// the initial database, which the experiments do not account.
    pub fn write_unaccounted(&self, id: PageId, data: &[u8]) {
        assert_eq!(data.len(), PAGE_SIZE, "page writes are whole pages");
        let mut inner = self.inner.lock();
        inner.pages[id.0 as usize].copy_from_slice(data);
    }

    /// Charges one write without transferring data — used by temp heap
    /// files that buffer a page in memory and account it when sealed.
    pub fn note_write(&self) {
        self.inner.lock().stats.writes += 1;
    }

    /// Current counters.
    #[must_use]
    pub fn stats(&self) -> IoStats {
        self.inner.lock().stats
    }

    /// Resets counters (e.g. between the load phase and a measured query).
    pub fn reset_stats(&self) {
        let mut inner = self.inner.lock();
        inner.stats = IoStats::default();
        inner.last_read = None;
    }
}

impl Default for SimDisk {
    fn default() -> Self {
        SimDisk::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_vs_random_classification() {
        let disk = SimDisk::new();
        let ids: Vec<PageId> = (0..4).map(|_| disk.allocate()).collect();
        let _ = disk.read(ids[0]); // first read: random
        let _ = disk.read(ids[1]); // sequential
        let _ = disk.read(ids[2]); // sequential
        let _ = disk.read(ids[0]); // random (backwards)
        let _ = disk.read(ids[3]); // random (skip)
        let s = disk.stats();
        assert_eq!(s.seq_reads, 2);
        assert_eq!(s.random_reads, 3);
        assert_eq!(s.writes, 0);
    }

    #[test]
    fn write_roundtrip_and_accounting() {
        let disk = SimDisk::new();
        let id = disk.allocate();
        let mut buf = [0u8; PAGE_SIZE];
        buf[0] = 42;
        buf[PAGE_SIZE - 1] = 7;
        disk.write(id, &buf);
        let back = disk.read(id);
        assert_eq!(back[0], 42);
        assert_eq!(back[PAGE_SIZE - 1], 7);
        assert_eq!(disk.stats().writes, 1);

        disk.write_unaccounted(id, &buf);
        assert_eq!(disk.stats().writes, 1, "unaccounted writes do not count");
    }

    #[test]
    fn stats_seconds_and_since() {
        let cfg = SystemConfig::paper_1994();
        let s = IoStats {
            seq_reads: 100,
            random_reads: 10,
            writes: 50,
        };
        let secs = s.seconds(&cfg);
        assert!((secs - (150.0 * 0.001 + 10.0 * 0.004)).abs() < 1e-12);
        assert_eq!(s.total(), 160);

        let earlier = IoStats {
            seq_reads: 40,
            random_reads: 4,
            writes: 20,
        };
        let d = s.since(&earlier);
        assert_eq!(d, IoStats { seq_reads: 60, random_reads: 6, writes: 30 });
    }

    #[test]
    fn reset_clears_counters_and_position() {
        let disk = SimDisk::new();
        let a = disk.allocate();
        let b = disk.allocate();
        let _ = disk.read(a);
        disk.reset_stats();
        assert_eq!(disk.stats(), IoStats::default());
        // After reset, even the "next" page counts as random.
        let _ = disk.read(b);
        assert_eq!(disk.stats().random_reads, 1);
    }

    #[test]
    #[should_panic]
    fn reading_unallocated_page_panics() {
        let disk = SimDisk::new();
        let _ = disk.read(PageId(5));
    }
}
