//! Thread-safe page-range claims for morsel-driven parallel scans.
//!
//! A [`PageClaims`] hands out disjoint, contiguous ranges of page indexes
//! ("morsels") to competing scan workers with a single atomic counter —
//! every page index in `0..total` is claimed exactly once across all
//! workers, with no locks and no coordination beyond the fetch-add. The
//! executor's exchange operator shares one `PageClaims` among its scan
//! workers, so however threads interleave, the union of their morsels is
//! the whole file and the intersection is empty.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Default number of pages per claimed morsel: large enough that a worker
/// amortizes its claim over several sequential page reads, small enough
/// that work stays balanced when one worker stalls on slow I/O.
pub const DEFAULT_MORSEL_PAGES: usize = 4;

/// An atomic dispenser of disjoint page-index ranges over `0..total`.
#[derive(Debug)]
pub struct PageClaims {
    next: AtomicUsize,
    total: usize,
    chunk: usize,
}

impl PageClaims {
    /// A dispenser over page indexes `0..total`, handing out morsels of
    /// `chunk` pages (the tail morsel may be shorter). A zero `chunk` is
    /// treated as 1.
    #[must_use]
    pub fn new(total: usize, chunk: usize) -> PageClaims {
        PageClaims {
            next: AtomicUsize::new(0),
            total,
            chunk: chunk.max(1),
        }
    }

    /// Claims the next unclaimed morsel, or `None` when every page has
    /// been handed out. Each returned range is disjoint from every other
    /// returned range, across all threads.
    pub fn claim(&self) -> Option<Range<usize>> {
        let start = self.next.fetch_add(self.chunk, Ordering::Relaxed);
        if start >= self.total {
            return None;
        }
        Some(start..(start + self.chunk).min(self.total))
    }

    /// Total number of pages this dispenser covers.
    #[must_use]
    pub fn total(&self) -> usize {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn claims_cover_every_page_exactly_once() {
        let claims = PageClaims::new(11, 4);
        let mut seen = Vec::new();
        while let Some(r) = claims.claim() {
            seen.extend(r);
        }
        assert_eq!(seen, (0..11).collect::<Vec<_>>());
        assert!(claims.claim().is_none(), "exhausted dispenser stays empty");
    }

    #[test]
    fn zero_pages_yields_nothing() {
        assert!(PageClaims::new(0, 4).claim().is_none());
    }

    #[test]
    fn concurrent_claims_are_disjoint_and_complete() {
        let claims = Arc::new(PageClaims::new(1000, 3));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = Arc::clone(&claims);
            handles.push(std::thread::spawn(move || {
                let mut mine = Vec::new();
                while let Some(r) = c.claim() {
                    mine.extend(r);
                }
                mine
            }));
        }
        let mut all: Vec<usize> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..1000).collect::<Vec<_>>());
    }
}
