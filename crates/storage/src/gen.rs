//! Synthetic stored databases mirroring a catalog.
//!
//! Records are fixed-width: each attribute is an `i64` (little-endian) at
//! offset `8 × position`, padded with zeros to the relation's record
//! length (the experiments use 512-byte records). Attribute values are
//! drawn uniformly from `[0, domain_size)` — the same uniform-domain model
//! the selectivity estimator assumes, so predicted and actual
//! selectivities agree and any divergence between predicted and executed
//! cost comes from the cost formulas, not from estimation error (the
//! paper's footnote 4 separation).

use std::collections::HashMap;

use dqep_catalog::{Catalog, Histogram, IndexId, RelationId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::btree::BTree;
use crate::disk::SimDisk;
use crate::heap::HeapFile;
use crate::page::PAGE_SIZE;

/// One stored relation: its heap file and its indexes.
#[derive(Debug)]
pub struct StoredTable {
    /// The relation this table stores.
    pub relation: RelationId,
    /// The data file.
    pub heap: HeapFile,
    /// B-tree per catalog index id.
    pub indexes: HashMap<IndexId, BTree>,
    /// Number of attributes (for record decoding).
    pub n_attrs: usize,
    /// Record length in bytes.
    pub record_len: usize,
}

impl StoredTable {
    /// Decodes a stored record into attribute values.
    #[must_use]
    pub fn decode(&self, record: &[u8]) -> Vec<i64> {
        decode_record(record, self.n_attrs)
    }

    /// Decodes a stored record by appending its attribute values to `out`
    /// — the allocation-free path batch scans fill contiguous buffers
    /// with.
    pub fn decode_into(&self, record: &[u8], out: &mut Vec<i64>) {
        decode_record_into(record, self.n_attrs, out);
    }

    /// Decodes a slice of records column-wise: appends attribute `c` of
    /// every record to `cols[c]`. One tight per-attribute loop over the
    /// records — the transposed fill for columnar batch scans.
    ///
    /// # Panics
    /// Panics if `cols.len() != n_attrs`.
    pub fn decode_columns_into(&self, records: &[&[u8]], cols: &mut [Vec<i64>]) {
        assert_eq!(cols.len(), self.n_attrs, "column count mismatch");
        for (attr, col) in cols.iter_mut().enumerate() {
            decode_column_into(records, attr, col);
        }
    }
}

/// Decodes `n_attrs` little-endian `i64`s from the front of a record.
#[must_use]
pub fn decode_record(record: &[u8], n_attrs: usize) -> Vec<i64> {
    let mut out = Vec::with_capacity(n_attrs);
    decode_record_into(record, n_attrs, &mut out);
    out
}

/// Appends `n_attrs` little-endian `i64`s from the front of a record to
/// `out` without allocating a fresh vector per record.
pub fn decode_record_into(record: &[u8], n_attrs: usize, out: &mut Vec<i64>) {
    out.extend((0..n_attrs).map(|i| {
        let at = i * 8;
        let mut b = [0u8; 8];
        b.copy_from_slice(&record[at..at + 8]);
        i64::from_le_bytes(b)
    }));
}

/// Appends attribute `attr` (a little-endian `i64` at byte offset
/// `attr * 8`) of each record to `out`.
pub fn decode_column_into(records: &[&[u8]], attr: usize, out: &mut Vec<i64>) {
    let at = attr * 8;
    out.extend(records.iter().map(|r| {
        let mut b = [0u8; 8];
        b.copy_from_slice(&r[at..at + 8]);
        i64::from_le_bytes(b)
    }));
}

/// Encodes attribute values as a fixed-width record of `record_len` bytes.
#[must_use]
pub fn encode_record(values: &[i64], record_len: usize) -> Vec<u8> {
    assert!(values.len() * 8 <= record_len, "record too narrow");
    let mut out = vec![0u8; record_len];
    for (i, v) in values.iter().enumerate() {
        out[i * 8..i * 8 + 8].copy_from_slice(&v.to_le_bytes());
    }
    out
}

/// Value distribution of generated attributes.
///
/// The paper's experiments use uniform values, under which the uniform
/// selectivity model is exact. The Zipf profile generates the skew that
/// makes uniform estimates wrong — the selectivity-estimation-error
/// setting the paper's final section points to — which
/// [`install_histograms`] then repairs for bound predicates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ValueDistribution {
    /// Uniform over `[0, domain_size)` (the paper's setup).
    Uniform,
    /// Zipf-like: value `v` drawn with probability proportional to
    /// `1 / (v + 1)^exponent`; mass concentrates at small values.
    Zipf {
        /// Skew exponent; 0 degenerates to uniform, 1 is classic Zipf.
        exponent: f64,
    },
}

/// Samples one value in `[0, domain)` under the distribution.
fn sample(dist: ValueDistribution, domain: i64, rng: &mut StdRng, cdf: &[f64]) -> i64 {
    match dist {
        ValueDistribution::Uniform => rng.gen_range(0..domain.max(1)),
        ValueDistribution::Zipf { .. } => {
            let u: f64 = rng.gen();
            // Binary search the precomputed CDF.
            match cdf.binary_search_by(|p| p.total_cmp(&u)) {
                Ok(i) | Err(i) => (i as i64).min(domain - 1),
            }
        }
    }
}

fn zipf_cdf(domain: i64, exponent: f64) -> Vec<f64> {
    let n = domain.max(1) as usize;
    let mut weights: Vec<f64> = (0..n).map(|v| 1.0 / ((v as f64) + 1.0).powf(exponent)).collect();
    let total: f64 = weights.iter().sum();
    let mut acc = 0.0;
    for w in &mut weights {
        acc += *w / total;
        *w = acc;
    }
    weights
}

/// Builds equi-width histograms (`buckets` buckets) over every attribute
/// of every stored table and installs them in the catalog. After this,
/// the selectivity model's *bound* estimates reflect the actual value
/// distribution instead of the uniform assumption.
///
/// # Errors
/// Propagates scan failures — possible only when a fault plan is already
/// installed on the database's disk.
pub fn install_histograms(
    db: &StoredDatabase,
    catalog: &mut Catalog,
    buckets: usize,
) -> Result<(), crate::StorageError> {
    let rel_ids: Vec<RelationId> = catalog.relations().iter().map(|r| r.id).collect();
    for rel_id in rel_ids {
        let table = db.table(rel_id);
        let n_attrs = table.n_attrs;
        let mut columns: Vec<Vec<i64>> = vec![Vec::new(); n_attrs];
        for record in table.heap.scan() {
            for (i, v) in decode_record(&record?, n_attrs).into_iter().enumerate() {
                columns[i].push(v);
            }
        }
        for (i, column) in columns.into_iter().enumerate() {
            if let Some(h) = Histogram::build(column, buckets) {
                catalog.set_histogram(
                    dqep_catalog::AttrId {
                        relation: rel_id,
                        index: i as u32,
                    },
                    h,
                );
            }
        }
    }
    db.disk.reset_stats();
    Ok(())
}

/// Rebuilds every histogram from the current (post-mutation) table
/// contents using **unaccounted** reads — maintenance I/O, like index
/// construction — and without resetting the disk's I/O statistics. The
/// live-view engine calls this alongside [`StoredDatabase::refresh_stats`]
/// so re-arbitration after drift costs against the mutated value
/// distribution, while per-refresh I/O metrics stay untouched.
pub fn refresh_histograms(db: &StoredDatabase, catalog: &mut Catalog, buckets: usize) {
    let rel_ids: Vec<RelationId> = catalog.relations().iter().map(|r| r.id).collect();
    for rel_id in rel_ids {
        let table = db.table(rel_id);
        let mut columns: Vec<Vec<i64>> = vec![Vec::new(); table.n_attrs];
        for &pid in table.heap.pages() {
            let page = crate::SlottedPage::from_bytes(db.disk.read_unaccounted(pid));
            for record in page.iter() {
                for (i, v) in decode_record(record, table.n_attrs).into_iter().enumerate() {
                    columns[i].push(v);
                }
            }
        }
        for (i, column) in columns.into_iter().enumerate() {
            if let Some(h) = Histogram::build(column, buckets) {
                catalog.set_histogram(
                    dqep_catalog::AttrId { relation: rel_id, index: i as u32 },
                    h,
                );
            }
        }
    }
}

/// A fully loaded synthetic database.
#[derive(Debug)]
pub struct StoredDatabase {
    /// The shared simulated disk (query I/O is read off its stats).
    pub disk: SimDisk,
    tables: HashMap<RelationId, StoredTable>,
    /// Committed mutations since load (inserts + deletes). Catalog
    /// statistics derived from this database are stale whenever their
    /// refresh epoch lags this counter — see
    /// [`StoredDatabase::refresh_stats`].
    mutations: u64,
}

impl StoredDatabase {
    /// Generates and loads every relation of `catalog`, with all catalog
    /// indexes built. Deterministic in `seed`. I/O counters are reset
    /// after loading.
    ///
    /// # Panics
    /// Panics when the catalog's page size differs from the storage page
    /// size.
    #[must_use]
    pub fn generate(catalog: &Catalog, seed: u64) -> StoredDatabase {
        StoredDatabase::generate_with(catalog, seed, ValueDistribution::Uniform)
    }

    /// Like [`StoredDatabase::generate`], but with an explicit value
    /// distribution for all attributes.
    ///
    /// # Panics
    /// Panics when the catalog's page size differs from the storage page
    /// size.
    #[must_use]
    pub fn generate_with(
        catalog: &Catalog,
        seed: u64,
        dist: ValueDistribution,
    ) -> StoredDatabase {
        Self::generate_profiled(catalog, seed, |_, _| dist)
    }

    /// Like [`StoredDatabase::generate_with`], but the distribution is
    /// chosen per attribute: `profile(relation, attr_index)` decides how
    /// that column's values are drawn. This is how benchmarks localize
    /// skew to one predicate column while keeping join columns uniform
    /// (so only the targeted estimate drifts).
    ///
    /// # Panics
    /// Panics when the catalog's page size differs from the storage page
    /// size.
    #[must_use]
    pub fn generate_profiled(
        catalog: &Catalog,
        seed: u64,
        profile: impl Fn(RelationId, usize) -> ValueDistribution,
    ) -> StoredDatabase {
        assert_eq!(
            catalog.config.page_size as usize, PAGE_SIZE,
            "catalog page size must match storage PAGE_SIZE"
        );
        let disk = SimDisk::new();
        let mut tables = HashMap::new();
        // Per-(domain, exponent) CDFs for Zipf profiles (cached across
        // attrs; the exponent is keyed by bit pattern).
        let mut cdfs: HashMap<(i64, u64), Vec<f64>> = HashMap::new();
        for rel in catalog.relations() {
            let mut rng = StdRng::seed_from_u64(seed ^ (0x7AB1E << 8) ^ u64::from(rel.id.0));
            let mut heap = HeapFile::new(disk.clone());
            let mut indexes: HashMap<IndexId, BTree> = rel
                .indexes
                .iter()
                .map(|&id| (id, BTree::new(disk.clone())))
                .collect();
            for _ in 0..rel.stats.cardinality {
                let values: Vec<i64> = rel
                    .attributes
                    .iter()
                    .enumerate()
                    .map(|(ai, a)| {
                        let domain = (a.domain_size as i64).max(1);
                        let dist = profile(rel.id, ai);
                        let cdf: &[f64] = match dist {
                            ValueDistribution::Uniform => &[],
                            ValueDistribution::Zipf { exponent } => cdfs
                                .entry((domain, exponent.to_bits()))
                                .or_insert_with(|| zipf_cdf(domain, exponent)),
                        };
                        sample(dist, domain, &mut rng, cdf)
                    })
                    .collect();
                let record = encode_record(&values, rel.stats.record_len as usize);
                // A fresh disk has no fault plan and base-table appends are
                // unaccounted, so loading cannot fail.
                let rid = heap.append(&record).unwrap_or_else(|e| {
                    unreachable!("load-time append on a fresh disk failed: {e}")
                });
                for (&idx_id, tree) in &mut indexes {
                    let key_attr = catalog.index(idx_id).attr.index as usize;
                    tree.insert(values[key_attr], rid);
                }
            }
            tables.insert(
                rel.id,
                StoredTable {
                    relation: rel.id,
                    heap,
                    indexes,
                    n_attrs: rel.attributes.len(),
                    record_len: rel.stats.record_len as usize,
                },
            );
        }
        disk.reset_stats();
        StoredDatabase { disk, tables, mutations: 0 }
    }

    /// Builds a database holding exactly the given rows per relation —
    /// the constructor shard replicas are loaded through: the coordinator
    /// routes the globally generated rows to shards, and each shard
    /// materializes its partition with this. Every catalog index is
    /// built; loading is unaccounted (like [`StoredDatabase::generate`])
    /// and I/O counters are reset afterwards. Relations absent from
    /// `rows` are created empty.
    ///
    /// # Panics
    /// Panics when the catalog's page size differs from the storage page
    /// size, or on a wrong-arity row.
    #[must_use]
    pub fn from_rows(
        catalog: &Catalog,
        rows: &HashMap<RelationId, Vec<Vec<i64>>>,
    ) -> StoredDatabase {
        assert_eq!(
            catalog.config.page_size as usize, PAGE_SIZE,
            "catalog page size must match storage PAGE_SIZE"
        );
        let disk = SimDisk::new();
        let mut tables = HashMap::new();
        static EMPTY: Vec<Vec<i64>> = Vec::new();
        for rel in catalog.relations() {
            let mut heap = HeapFile::new(disk.clone());
            let mut indexes: HashMap<IndexId, BTree> = rel
                .indexes
                .iter()
                .map(|&id| (id, BTree::new(disk.clone())))
                .collect();
            for values in rows.get(&rel.id).unwrap_or(&EMPTY) {
                assert_eq!(values.len(), rel.attributes.len(), "row arity mismatch");
                let record = encode_record(values, rel.stats.record_len as usize);
                // A fresh disk has no fault plan and base-table appends
                // are unaccounted, so loading cannot fail.
                let rid = heap.append(&record).unwrap_or_else(|e| {
                    unreachable!("load-time append on a fresh disk failed: {e}")
                });
                for (&idx_id, tree) in &mut indexes {
                    let key_attr = catalog.index(idx_id).attr.index as usize;
                    tree.insert(values[key_attr], rid);
                }
            }
            tables.insert(
                rel.id,
                StoredTable {
                    relation: rel.id,
                    heap,
                    indexes,
                    n_attrs: rel.attributes.len(),
                    record_len: rel.stats.record_len as usize,
                },
            );
        }
        disk.reset_stats();
        StoredDatabase { disk, tables, mutations: 0 }
    }

    /// Decodes every live row of every relation with **unaccounted**
    /// reads — the coordinator's bulk export when partitioning a
    /// generated database across shards. Row order is heap order per
    /// relation, so the export is deterministic.
    #[must_use]
    pub fn export_rows(&self) -> HashMap<RelationId, Vec<Vec<i64>>> {
        let mut out = HashMap::new();
        for table in self.tables.values() {
            let mut rows = Vec::with_capacity(table.heap.record_count() as usize);
            for &pid in table.heap.pages() {
                let page = crate::SlottedPage::from_bytes(self.disk.read_unaccounted(pid));
                for record in page.iter() {
                    rows.push(decode_record(record, table.n_attrs));
                }
            }
            out.insert(table.relation, rows);
        }
        out
    }

    /// Inserts a row into `rel` through the accounted heap write path and
    /// updates every index on the relation. The heap write is charged and
    /// faultable; index maintenance (like index construction) is
    /// unaccounted and happens only after the heap write succeeds, so a
    /// faulted insert leaves heap and indexes consistent.
    ///
    /// The catalog is *not* updated here — call
    /// [`StoredDatabase::refresh_stats`] after a write batch commits.
    ///
    /// # Errors
    /// Page-write failures from the heap layer (injected faults included).
    ///
    /// # Panics
    /// Panics on an unknown relation or a wrong-arity row.
    pub fn insert(
        &mut self,
        catalog: &Catalog,
        rel: RelationId,
        values: &[i64],
    ) -> Result<crate::heap::Rid, crate::StorageError> {
        let table = self
            .tables
            .get_mut(&rel)
            .unwrap_or_else(|| panic!("relation {rel:?} not stored"));
        assert_eq!(values.len(), table.n_attrs, "row arity mismatch");
        let record = encode_record(values, table.record_len);
        let rid = table.heap.insert(&record)?;
        for (&idx_id, tree) in &mut table.indexes {
            let key_attr = catalog.index(idx_id).attr.index as usize;
            tree.insert(values[key_attr], rid);
        }
        self.mutations += 1;
        Ok(rid)
    }

    /// Deletes the first stored row of `rel` whose attribute values equal
    /// `values`, returning its rid (`None` when no row matches). The row
    /// is located through the lowest-numbered index when one exists
    /// (accounted probe + record fetches) or an accounted heap scan
    /// otherwise; the tombstoning write is accounted and faultable; index
    /// entries are unhooked (unaccounted) only after the write succeeds.
    ///
    /// # Errors
    /// Page access failures, including injected faults, from the locate
    /// read or the tombstone write.
    ///
    /// # Panics
    /// Panics on an unknown relation or a wrong-arity row.
    pub fn delete(
        &mut self,
        catalog: &Catalog,
        rel: RelationId,
        values: &[i64],
    ) -> Result<Option<crate::heap::Rid>, crate::StorageError> {
        let table = self
            .tables
            .get_mut(&rel)
            .unwrap_or_else(|| panic!("relation {rel:?} not stored"));
        assert_eq!(values.len(), table.n_attrs, "row arity mismatch");
        let prefix = table.n_attrs * 8;
        let record = encode_record(values, table.record_len);
        // Locate the victim: indexed probe when possible, else heap scan.
        let target = match table.indexes.keys().min().copied() {
            Some(idx_id) => {
                let key_attr = catalog.index(idx_id).attr.index as usize;
                let mut found = None;
                for rid in table.indexes[&idx_id].lookup(values[key_attr])? {
                    if table.heap.fetch(rid)?[..prefix] == record[..prefix] {
                        found = Some(rid);
                        break;
                    }
                }
                found
            }
            None => {
                let mut found = None;
                for entry in table.heap.scan_with_rids() {
                    let (rid, rec) = entry?;
                    if rec[..prefix] == record[..prefix] {
                        found = Some(rid);
                        break;
                    }
                }
                found
            }
        };
        let Some(rid) = target else { return Ok(None) };
        table.heap.delete(rid)?;
        for (&idx_id, tree) in &mut table.indexes {
            let key_attr = catalog.index(idx_id).attr.index as usize;
            tree.remove(values[key_attr], rid);
        }
        self.mutations += 1;
        Ok(Some(rid))
    }

    /// Committed mutations since load. Stat consumers compare this against
    /// the epoch they last refreshed at to detect staleness.
    #[must_use]
    pub fn mutation_epoch(&self) -> u64 {
        self.mutations
    }

    /// Pushes live per-relation record counts into the catalog's
    /// cardinality statistics, returning the mutation epoch the refresh
    /// covers. This is the invalidation hook that keeps bind-time
    /// arbitration and drift checks honest after writes: without it,
    /// `Relation::stats.cardinality` silently reflects the load-time
    /// snapshot forever.
    pub fn refresh_stats(&self, catalog: &mut Catalog) -> u64 {
        for table in self.tables.values() {
            catalog.set_cardinality(table.relation, table.heap.record_count());
        }
        self.mutations
    }

    /// The stored table for a relation.
    ///
    /// # Panics
    /// Panics for relations not in the generated catalog.
    #[must_use]
    pub fn table(&self, rel: RelationId) -> &StoredTable {
        &self.tables[&rel]
    }

    /// All stored tables.
    pub fn tables(&self) -> impl Iterator<Item = &StoredTable> {
        self.tables.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqep_catalog::{CatalogBuilder, SystemConfig};

    fn catalog() -> Catalog {
        CatalogBuilder::new(SystemConfig::paper_1994())
            .relation("r", 500, 512, |r| {
                r.attr("a", 500.0).attr("j", 100.0).btree("a", false).btree("j", false)
            })
            .relation("s", 200, 512, |r| r.attr("a", 200.0))
            .build()
            .unwrap()
    }

    #[test]
    fn generates_catalog_cardinalities() {
        let cat = catalog();
        let db = StoredDatabase::generate(&cat, 7);
        let r = db.table(cat.relation_by_name("r").unwrap().id);
        assert_eq!(r.heap.record_count(), 500);
        assert_eq!(r.indexes.len(), 2);
        let s = db.table(cat.relation_by_name("s").unwrap().id);
        assert_eq!(s.heap.record_count(), 200);
        assert!(s.indexes.is_empty());
        assert_eq!(db.tables().count(), 2);
        assert_eq!(db.disk.stats().total(), 0, "load I/O is reset");
    }

    #[test]
    fn values_respect_domains() {
        let cat = catalog();
        let db = StoredDatabase::generate(&cat, 7);
        let r = db.table(cat.relation_by_name("r").unwrap().id);
        for record in r.heap.scan() {
            let v = r.decode(&record.unwrap());
            assert_eq!(v.len(), 2);
            assert!((0..500).contains(&v[0]), "a in domain");
            assert!((0..100).contains(&v[1]), "j in domain");
        }
    }

    #[test]
    fn indexes_agree_with_heap() {
        let cat = catalog();
        let db = StoredDatabase::generate(&cat, 7);
        let rel = cat.relation_by_name("r").unwrap();
        let table = db.table(rel.id);
        let (idx_id, _) = cat.index_on_attr(rel.attr_id("a").unwrap()).unwrap();
        let tree = &table.indexes[&idx_id];
        assert_eq!(tree.len(), 500);

        // Every indexed rid fetches a record whose key matches.
        for target in [0i64, 100, 499] {
            for rid in tree.lookup(target).unwrap() {
                let rec = table.heap.fetch(rid).unwrap();
                assert_eq!(table.decode(&rec)[0], target);
            }
        }
        // Range count equals heap filter count.
        let via_index = tree.range(None, Some(99)).unwrap().len();
        let via_scan = table
            .heap
            .scan()
            .filter(|r| table.decode(r.as_ref().unwrap())[0] < 100)
            .count();
        assert_eq!(via_index, via_scan);
    }

    #[test]
    fn deterministic_in_seed() {
        let cat = catalog();
        let a = StoredDatabase::generate(&cat, 9);
        let b = StoredDatabase::generate(&cat, 9);
        let rel = cat.relation_by_name("r").unwrap().id;
        let ra: Vec<Vec<u8>> = a.table(rel).heap.scan().map(Result::unwrap).collect();
        let rb: Vec<Vec<u8>> = b.table(rel).heap.scan().map(Result::unwrap).collect();
        assert_eq!(ra, rb);
        let c = StoredDatabase::generate(&cat, 10);
        let rc: Vec<Vec<u8>> = c.table(rel).heap.scan().map(Result::unwrap).collect();
        assert_ne!(ra, rc);
    }

    #[test]
    fn write_path_keeps_heap_indexes_and_stats_consistent() {
        let mut cat = catalog();
        let mut db = StoredDatabase::generate(&cat, 7);
        let rel = cat.relation_by_name("r").unwrap().id;
        assert_eq!(db.mutation_epoch(), 0);

        let rid = db.insert(&cat, rel, &[123, 45]).unwrap();
        assert_eq!(db.mutation_epoch(), 1);
        let table = db.table(rel);
        assert_eq!(table.heap.record_count(), 501);
        assert_eq!(table.decode(&table.heap.fetch(rid).unwrap()), vec![123, 45]);
        // Both indexes see the new row.
        let (idx_a, _) = cat.index_on_attr(cat.relation(rel).attr_id("a").unwrap()).unwrap();
        assert!(table.indexes[&idx_a].lookup(123).unwrap().contains(&rid));

        // Delete it again by value.
        let deleted = db.delete(&cat, rel, &[123, 45]).unwrap();
        assert_eq!(deleted, Some(rid));
        assert_eq!(db.mutation_epoch(), 2);
        let table = db.table(rel);
        assert_eq!(table.heap.record_count(), 500);
        assert!(!table.indexes[&idx_a].lookup(123).unwrap().contains(&rid));
        assert_eq!(db.delete(&cat, rel, &[123, 45]).unwrap(), None, "gone");

        // Catalog stats are stale until refreshed.
        db.insert(&cat, rel, &[7, 8]).unwrap();
        assert_eq!(cat.relation(rel).stats.cardinality, 500);
        let epoch = db.refresh_stats(&mut cat);
        assert_eq!(epoch, db.mutation_epoch());
        assert_eq!(cat.relation(rel).stats.cardinality, 501);
    }

    #[test]
    fn delete_without_index_scans_heap() {
        let mut cat = catalog();
        let mut db = StoredDatabase::generate(&cat, 7);
        let rel = cat.relation_by_name("s").unwrap().id;
        db.insert(&cat, rel, &[999]).unwrap();
        assert!(db.delete(&cat, rel, &[999]).unwrap().is_some());
        assert_eq!(db.table(rel).heap.record_count(), 200);
        db.refresh_stats(&mut cat);
        assert_eq!(cat.relation(rel).stats.cardinality, 200);
    }

    #[test]
    fn faulted_write_does_not_mutate() {
        use crate::fault::FaultPlan;
        let mut cat = catalog();
        let mut db = StoredDatabase::generate(&cat, 7);
        let rel = cat.relation_by_name("r").unwrap().id;
        let mut plan = FaultPlan::none();
        plan.fail_nth_writes = vec![1];
        db.disk.set_fault_plan(plan);
        assert!(db.insert(&cat, rel, &[1, 2]).is_err());
        db.disk.set_fault_plan(FaultPlan::none());
        assert_eq!(db.mutation_epoch(), 0);
        assert_eq!(db.table(rel).heap.record_count(), 500);
        db.refresh_stats(&mut cat);
        assert_eq!(cat.relation(rel).stats.cardinality, 500);
    }

    #[test]
    fn refresh_histograms_tracks_mutations_without_io_charge() {
        let mut cat = catalog();
        let mut db = StoredDatabase::generate(&cat, 7);
        let rel = cat.relation_by_name("r").unwrap().id;
        // Skew the data: a burst of identical rows.
        for _ in 0..200 {
            db.insert(&cat, rel, &[3, 3]).unwrap();
        }
        db.disk.reset_stats();
        db.refresh_stats(&mut cat);
        refresh_histograms(&db, &mut cat, 16);
        assert_eq!(db.disk.stats().total(), 0, "maintenance reads unaccounted");
        let attr = cat.relation(rel).attr_id("a").unwrap();
        let h = cat.histogram(attr).expect("histogram installed");
        assert!(h.total() >= 700, "histogram covers post-write rows");
    }

    #[test]
    fn from_rows_roundtrips_export() {
        let cat = catalog();
        let db = StoredDatabase::generate(&cat, 7);
        let rows = db.export_rows();
        let rel_r = cat.relation_by_name("r").unwrap().id;
        let rel_s = cat.relation_by_name("s").unwrap().id;
        assert_eq!(rows[&rel_r].len(), 500);
        assert_eq!(rows[&rel_s].len(), 200);

        // Keep only rows with even `a` — a synthetic shard partition.
        let mut part: HashMap<RelationId, Vec<Vec<i64>>> = HashMap::new();
        part.insert(
            rel_r,
            rows[&rel_r].iter().filter(|r| r[0] % 2 == 0).cloned().collect(),
        );
        let shard = StoredDatabase::from_rows(&cat, &part);
        let kept = part[&rel_r].len() as u64;
        assert_eq!(shard.table(rel_r).heap.record_count(), kept);
        assert_eq!(shard.table(rel_s).heap.record_count(), 0, "absent relation is empty");
        assert_eq!(shard.disk.stats().total(), 0, "load I/O is reset");

        // Indexes cover exactly the partition's rows.
        let (idx_a, _) = cat.index_on_attr(cat.relation(rel_r).attr_id("a").unwrap()).unwrap();
        assert_eq!(shard.table(rel_r).indexes[&idx_a].len(), kept);

        // Re-export equals the partition (heap order preserved).
        assert_eq!(shard.export_rows()[&rel_r], part[&rel_r]);
    }

    #[test]
    fn record_codec_roundtrip() {
        let rec = encode_record(&[1, -5, 1 << 40], 512);
        assert_eq!(rec.len(), 512);
        assert_eq!(decode_record(&rec, 3), vec![1, -5, 1 << 40]);
    }
}
