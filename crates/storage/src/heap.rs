//! Heap files: unordered record storage over slotted pages.

use crate::disk::SimDisk;
use crate::page::PageId;
use crate::slotted::SlottedPage;

/// A record id: page + slot. What unclustered B-trees point at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Rid {
    /// The page holding the record.
    pub page: PageId,
    /// Slot within the page.
    pub slot: u16,
}

/// An unordered file of records.
///
/// Loading happens through [`HeapFile::append`] (unaccounted writes — the
/// experiments measure query I/O, not load I/O); scans read pages in
/// allocation order, which the simulated disk accounts as sequential I/O.
#[derive(Debug)]
pub struct HeapFile {
    disk: SimDisk,
    pages: Vec<PageId>,
    records: u64,
    /// The tail page being filled during loading.
    tail: Option<SlottedPage>,
    /// Whether appends charge disk writes (temporary spill files do;
    /// load-time base tables do not).
    accounted: bool,
}

impl HeapFile {
    /// An empty heap file on `disk`; appends are load-time (unaccounted).
    #[must_use]
    pub fn new(disk: SimDisk) -> HeapFile {
        HeapFile {
            disk,
            pages: Vec::new(),
            records: 0,
            tail: None,
            accounted: false,
        }
    }

    /// An empty *temporary* file whose appends charge disk writes — used
    /// for spill partitions and sort runs, whose I/O the experiments (and
    /// the cost model) do account.
    #[must_use]
    pub fn new_temp(disk: SimDisk) -> HeapFile {
        HeapFile {
            disk,
            pages: Vec::new(),
            records: 0,
            tail: None,
            accounted: true,
        }
    }

    /// Appends a record, returning its rid. Unaccounted for base tables;
    /// temp files ([`HeapFile::new_temp`]) charge one write per filled
    /// page (plus the tail page at [`HeapFile::finish`]).
    pub fn append(&mut self, record: &[u8]) -> Rid {
        loop {
            if self.tail.is_none() {
                let id = self.disk.allocate();
                self.pages.push(id);
                self.tail = Some(SlottedPage::new());
                let _ = id;
            }
            let tail = self.tail.as_mut().expect("just ensured");
            if let Some(slot) = tail.insert(record) {
                let page = *self.pages.last().expect("page exists");
                self.disk
                    .write_unaccounted(page, tail.as_bytes().as_slice());
                self.records += 1;
                return Rid { page, slot };
            }
            // Tail full: charge the finished page once for temp files.
            if self.accounted {
                self.disk.note_write();
            }
            // Tail full: start a new page.
            self.tail = None;
        }
    }

    /// Number of records.
    #[must_use]
    pub fn record_count(&self) -> u64 {
        self.records
    }

    /// Number of data pages.
    #[must_use]
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// The page ids in scan order.
    #[must_use]
    pub fn pages(&self) -> &[PageId] {
        &self.pages
    }

    /// Fetches a single record by rid (one accounted page read).
    #[must_use]
    pub fn fetch(&self, rid: Rid) -> Option<Vec<u8>> {
        let page = SlottedPage::from_bytes(self.disk.read(rid.page));
        page.get(rid.slot).map(<[u8]>::to_vec)
    }

    /// Full scan: iterates all records in page order (accounted as
    /// sequential reads).
    pub fn scan(&self) -> impl Iterator<Item = Vec<u8>> + '_ {
        self.pages.iter().flat_map(move |&pid| {
            let page = SlottedPage::from_bytes(self.disk.read(pid));
            let records: Vec<Vec<u8>> = page.iter().map(<[u8]>::to_vec).collect();
            records
        })
    }

    /// Flushes accounting for the partially filled tail page of a temp
    /// file. Idempotent; a no-op for unaccounted files.
    pub fn finish(&mut self) {
        if self.accounted && self.tail.take().is_some() {
            self.disk.note_write();
        }
    }

    /// The disk this file lives on.
    #[must_use]
    pub fn disk(&self) -> &SimDisk {
        &self.disk
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_scan_roundtrip() {
        let disk = SimDisk::new();
        let mut heap = HeapFile::new(disk.clone());
        for i in 0..100u64 {
            heap.append(&i.to_le_bytes());
        }
        assert_eq!(heap.record_count(), 100);
        let values: Vec<u64> = heap
            .scan()
            .map(|r| u64::from_le_bytes(r.as_slice().try_into().unwrap()))
            .collect();
        assert_eq!(values, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn records_span_pages() {
        let disk = SimDisk::new();
        let mut heap = HeapFile::new(disk);
        let record = [9u8; 512];
        for _ in 0..10 {
            heap.append(&record);
        }
        // 3 × 512-byte records per 2 KB slotted page → 4 pages for 10.
        assert_eq!(heap.page_count(), 4);
        assert_eq!(heap.scan().count(), 10);
    }

    #[test]
    fn fetch_by_rid_charges_random_io() {
        let disk = SimDisk::new();
        let mut heap = HeapFile::new(disk.clone());
        let mut rids = Vec::new();
        for i in 0..10u8 {
            rids.push(heap.append(&[i; 512]));
        }
        disk.reset_stats();
        let rec = heap.fetch(rids[7]).unwrap();
        assert_eq!(rec[0], 7);
        assert_eq!(disk.stats().random_reads, 1);
        assert!(heap.fetch(Rid { page: rids[0].page, slot: 99 }).is_none());
    }

    #[test]
    fn scan_is_sequential_io() {
        let disk = SimDisk::new();
        let mut heap = HeapFile::new(disk.clone());
        for _ in 0..12 {
            heap.append(&[1u8; 512]);
        }
        disk.reset_stats();
        let n = heap.scan().count();
        assert_eq!(n, 12);
        let stats = disk.stats();
        // First page random, rest sequential.
        assert_eq!(stats.random_reads, 1);
        assert_eq!(stats.seq_reads as usize, heap.page_count() - 1);
    }

    #[test]
    fn loading_is_unaccounted() {
        let disk = SimDisk::new();
        let mut heap = HeapFile::new(disk.clone());
        for _ in 0..50 {
            heap.append(&[0u8; 100]);
        }
        assert_eq!(disk.stats().total(), 0);
    }
}
