//! Heap files: unordered record storage over slotted pages.

use crate::disk::SimDisk;
use crate::error::StorageError;
use crate::page::PageId;
use crate::slotted::SlottedPage;

/// A record id: page + slot. What unclustered B-trees point at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Rid {
    /// The page holding the record.
    pub page: PageId,
    /// Slot within the page.
    pub slot: u16,
}

/// An unordered file of records.
///
/// Loading happens through [`HeapFile::append`] (unaccounted writes — the
/// experiments measure query I/O, not load I/O); scans read pages in
/// allocation order, which the simulated disk accounts as sequential I/O.
#[derive(Debug)]
pub struct HeapFile {
    disk: SimDisk,
    pages: Vec<PageId>,
    records: u64,
    /// The tail page being filled during loading.
    tail: Option<SlottedPage>,
    /// Whether appends charge disk writes (temporary spill files do;
    /// load-time base tables do not).
    accounted: bool,
}

impl HeapFile {
    /// An empty heap file on `disk`; appends are load-time (unaccounted).
    #[must_use]
    pub fn new(disk: SimDisk) -> HeapFile {
        HeapFile {
            disk,
            pages: Vec::new(),
            records: 0,
            tail: None,
            accounted: false,
        }
    }

    /// An empty *temporary* file whose appends charge disk writes — used
    /// for spill partitions and sort runs, whose I/O the experiments (and
    /// the cost model) do account.
    #[must_use]
    pub fn new_temp(disk: SimDisk) -> HeapFile {
        HeapFile {
            disk,
            pages: Vec::new(),
            records: 0,
            tail: None,
            accounted: true,
        }
    }

    /// Appends a record, returning its rid. Unaccounted for base tables;
    /// temp files ([`HeapFile::new_temp`]) charge one write per filled
    /// page (plus the tail page at [`HeapFile::finish`]).
    ///
    /// # Errors
    /// Only temp files can fail, and only via an injected write fault;
    /// load-time appends to unaccounted files always succeed.
    pub fn append(&mut self, record: &[u8]) -> Result<Rid, StorageError> {
        loop {
            let mut tail = match self.tail.take() {
                Some(t) => t,
                None => {
                    let id = self.disk.allocate();
                    self.pages.push(id);
                    SlottedPage::new()
                }
            };
            if let Some(slot) = tail.insert(record) {
                let page = self.pages.last().copied().unwrap_or(PageId::INVALID);
                self.disk
                    .write_unaccounted(page, tail.as_bytes().as_slice());
                self.records += 1;
                self.tail = Some(tail);
                return Ok(Rid { page, slot });
            }
            // Tail full: charge the finished page once for temp files,
            // then start a new page on the next iteration.
            if self.accounted {
                self.disk.note_write()?;
            }
        }
    }

    /// Inserts a record through the **accounted** write path: the mutated
    /// page is written back with [`SimDisk::write`], so the write is
    /// charged to I/O stats and can fail under an injected fault plan.
    /// This is the query-time mutation entry point (live-view writes), as
    /// opposed to load-time [`HeapFile::append`].
    ///
    /// In-memory state (page list, cached tail, record count) is committed
    /// only after the disk write succeeds, so a faulted insert leaves the
    /// file exactly as it was.
    ///
    /// # Errors
    /// Page-write failures, including injected write faults.
    pub fn insert(&mut self, record: &[u8]) -> Result<Rid, StorageError> {
        // Fill the cached tail when the record fits.
        if let Some(tail) = &self.tail {
            if tail.free_space() >= record.len() && !self.pages.is_empty() {
                let mut page = SlottedPage::from_bytes(Box::new(*tail.as_bytes()));
                let slot = page
                    .insert(record)
                    .unwrap_or_else(|| unreachable!("free_space said the record fits"));
                let pid = self.pages.last().copied().unwrap_or(PageId::INVALID);
                self.disk.write(pid, page.as_bytes().as_slice())?;
                self.tail = Some(page);
                self.records += 1;
                return Ok(Rid { page: pid, slot });
            }
        }
        // No tail or tail full: start a fresh page.
        let mut page = SlottedPage::new();
        let slot = page
            .insert(record)
            .unwrap_or_else(|| unreachable!("insert asserts records fit an empty page"));
        let pid = self.disk.allocate();
        self.disk.write(pid, page.as_bytes().as_slice())?;
        self.pages.push(pid);
        self.tail = Some(page);
        self.records += 1;
        Ok(Rid { page: pid, slot })
    }

    /// Deletes the record at `rid` (tombstoning its slot), returning the
    /// old record bytes so callers can unhook index entries. Reads and
    /// writes are **accounted** — and therefore faultable — except that a
    /// delete targeting the cached tail page reads the in-memory copy
    /// (and writes it back through the accounted path, keeping the cache
    /// and disk in sync so a later append cannot resurrect the record).
    ///
    /// # Errors
    /// Page access failures (injected faults included);
    /// [`StorageError::RecordNotFound`] when the slot is empty or already
    /// deleted. In-memory state is committed only after the disk write
    /// succeeds.
    pub fn delete(&mut self, rid: Rid) -> Result<Vec<u8>, StorageError> {
        let tail_hit = self
            .tail
            .as_ref()
            .filter(|_| self.pages.last() == Some(&rid.page));
        let is_tail = tail_hit.is_some();
        let mut page = match tail_hit {
            Some(t) => SlottedPage::from_bytes(Box::new(*t.as_bytes())),
            None => SlottedPage::from_bytes(self.disk.read(rid.page)?),
        };
        let old = page
            .get(rid.slot)
            .map(<[u8]>::to_vec)
            .ok_or(StorageError::RecordNotFound { page: rid.page, slot: rid.slot })?;
        page.delete(rid.slot);
        self.disk.write(rid.page, page.as_bytes().as_slice())?;
        if is_tail {
            self.tail = Some(page);
        }
        self.records -= 1;
        Ok(old)
    }

    /// Number of live records.
    #[must_use]
    pub fn record_count(&self) -> u64 {
        self.records
    }

    /// Number of data pages.
    #[must_use]
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// The page ids in scan order.
    #[must_use]
    pub fn pages(&self) -> &[PageId] {
        &self.pages
    }

    /// Fetches a single record by rid (one accounted page read).
    ///
    /// # Errors
    /// Propagates page-read failures (unallocated page, injected fault);
    /// [`StorageError::RecordNotFound`] if the slot is empty.
    pub fn fetch(&self, rid: Rid) -> Result<Vec<u8>, StorageError> {
        let page = SlottedPage::from_bytes(self.disk.read(rid.page)?);
        page.get(rid.slot)
            .map(<[u8]>::to_vec)
            .ok_or(StorageError::RecordNotFound { page: rid.page, slot: rid.slot })
    }

    /// Full scan: iterates all records in page order (accounted as
    /// sequential reads). A page whose read fails yields one `Err` and the
    /// scan moves on to the next page; callers typically stop at the first
    /// error.
    pub fn scan(&self) -> impl Iterator<Item = Result<Vec<u8>, StorageError>> + '_ {
        self.pages.iter().flat_map(move |&pid| match self.disk.read(pid) {
            Ok(page) => {
                let records: Vec<Result<Vec<u8>, StorageError>> = SlottedPage::from_bytes(page)
                    .iter()
                    .map(|r| Ok(r.to_vec()))
                    .collect();
                records
            }
            Err(e) => vec![Err(e)],
        })
    }

    /// Like [`HeapFile::scan`], but yields each record together with its
    /// rid — the locate pass of value-addressed deletes.
    pub fn scan_with_rids(
        &self,
    ) -> impl Iterator<Item = Result<(Rid, Vec<u8>), StorageError>> + '_ {
        self.pages.iter().flat_map(move |&pid| match self.disk.read(pid) {
            Ok(bytes) => {
                let page = SlottedPage::from_bytes(bytes);
                (0..page.len() as u16)
                    .filter_map(|slot| {
                        page.get(slot)
                            .map(|r| Ok((Rid { page: pid, slot }, r.to_vec())))
                    })
                    .collect::<Vec<_>>()
            }
            Err(e) => vec![Err(e)],
        })
    }

    /// Flushes accounting for the partially filled tail page of a temp
    /// file. Idempotent; a no-op for unaccounted files.
    ///
    /// # Errors
    /// An injected write fault can fail the flush of a temp file's tail.
    pub fn finish(&mut self) -> Result<(), StorageError> {
        if self.accounted && self.tail.take().is_some() {
            self.disk.note_write()?;
        }
        Ok(())
    }

    /// The disk this file lives on.
    #[must_use]
    pub fn disk(&self) -> &SimDisk {
        &self.disk
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_scan_roundtrip() {
        let disk = SimDisk::new();
        let mut heap = HeapFile::new(disk.clone());
        for i in 0..100u64 {
            heap.append(&i.to_le_bytes()).unwrap();
        }
        assert_eq!(heap.record_count(), 100);
        let values: Vec<u64> = heap
            .scan()
            .map(|r| u64::from_le_bytes(r.unwrap().as_slice().try_into().unwrap()))
            .collect();
        assert_eq!(values, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn records_span_pages() {
        let disk = SimDisk::new();
        let mut heap = HeapFile::new(disk);
        let record = [9u8; 512];
        for _ in 0..10 {
            heap.append(&record).unwrap();
        }
        // 3 × 512-byte records per 2 KB slotted page → 4 pages for 10.
        assert_eq!(heap.page_count(), 4);
        assert_eq!(heap.scan().count(), 10);
    }

    #[test]
    fn fetch_by_rid_charges_random_io() {
        let disk = SimDisk::new();
        let mut heap = HeapFile::new(disk.clone());
        let mut rids = Vec::new();
        for i in 0..10u8 {
            rids.push(heap.append(&[i; 512]).unwrap());
        }
        disk.reset_stats();
        let rec = heap.fetch(rids[7]).unwrap();
        assert_eq!(rec[0], 7);
        assert_eq!(disk.stats().random_reads, 1);
        assert_eq!(
            heap.fetch(Rid { page: rids[0].page, slot: 99 }).unwrap_err(),
            StorageError::RecordNotFound { page: rids[0].page, slot: 99 }
        );
    }

    #[test]
    fn scan_is_sequential_io() {
        let disk = SimDisk::new();
        let mut heap = HeapFile::new(disk.clone());
        for _ in 0..12 {
            heap.append(&[1u8; 512]).unwrap();
        }
        disk.reset_stats();
        let n = heap.scan().count();
        assert_eq!(n, 12);
        let stats = disk.stats();
        // First page random, rest sequential.
        assert_eq!(stats.random_reads, 1);
        assert_eq!(stats.seq_reads as usize, heap.page_count() - 1);
    }

    #[test]
    fn loading_is_unaccounted() {
        let disk = SimDisk::new();
        let mut heap = HeapFile::new(disk.clone());
        for _ in 0..50 {
            heap.append(&[0u8; 100]).unwrap();
        }
        assert_eq!(disk.stats().total(), 0);
    }

    #[test]
    fn scan_surfaces_injected_faults_as_errors() {
        use crate::fault::FaultPlan;
        let disk = SimDisk::new();
        let mut heap = HeapFile::new(disk.clone());
        for _ in 0..10 {
            heap.append(&[1u8; 512]).unwrap();
        }
        disk.set_fault_plan(FaultPlan::nth_read(2));
        let outcomes: Vec<_> = heap.scan().collect();
        assert_eq!(outcomes.iter().filter(|r| r.is_err()).count(), 1);
        assert!(outcomes[3].is_err(), "second page read (records 3..6) fails");
    }

    #[test]
    fn insert_is_accounted_and_scannable() {
        let disk = SimDisk::new();
        let mut heap = HeapFile::new(disk.clone());
        for i in 0..5u64 {
            heap.append(&i.to_le_bytes()).unwrap();
        }
        disk.reset_stats();
        let rid = heap.insert(&99u64.to_le_bytes()).unwrap();
        assert_eq!(disk.stats().writes, 1, "insert charges the page write");
        assert_eq!(heap.record_count(), 6);
        assert_eq!(heap.fetch(rid).unwrap(), 99u64.to_le_bytes());
        let values: Vec<u64> = heap
            .scan()
            .map(|r| u64::from_le_bytes(r.unwrap().as_slice().try_into().unwrap()))
            .collect();
        assert!(values.contains(&99));
    }

    #[test]
    fn delete_tombstones_and_scan_skips() {
        let disk = SimDisk::new();
        let mut heap = HeapFile::new(disk.clone());
        let mut rids = Vec::new();
        for i in 0..10u64 {
            rids.push(heap.append(&i.to_le_bytes()).unwrap());
        }
        let old = heap.delete(rids[4]).unwrap();
        assert_eq!(old, 4u64.to_le_bytes());
        assert_eq!(heap.record_count(), 9);
        assert_eq!(heap.scan().count(), 9);
        // Double delete reports RecordNotFound.
        assert!(matches!(
            heap.delete(rids[4]),
            Err(StorageError::RecordNotFound { .. })
        ));
        // Deleting on the tail page keeps cache and disk consistent: a
        // subsequent append must not resurrect the record.
        let last = *rids.last().unwrap();
        heap.delete(last).unwrap();
        heap.append(&77u64.to_le_bytes()).unwrap();
        let values: Vec<u64> = heap
            .scan()
            .map(|r| u64::from_le_bytes(r.unwrap().as_slice().try_into().unwrap()))
            .collect();
        assert!(!values.contains(&9), "tail delete survives the next append");
        assert!(values.contains(&77));
    }

    #[test]
    fn faulted_insert_leaves_state_unchanged() {
        use crate::fault::FaultPlan;
        let disk = SimDisk::new();
        let mut heap = HeapFile::new(disk.clone());
        for i in 0..5u64 {
            heap.append(&i.to_le_bytes()).unwrap();
        }
        let mut plan = FaultPlan::none();
        plan.fail_nth_writes = vec![1];
        disk.set_fault_plan(plan);
        assert!(heap.insert(&42u64.to_le_bytes()).is_err());
        disk.set_fault_plan(FaultPlan::none());
        assert_eq!(heap.record_count(), 5, "failed insert not committed");
        assert_eq!(heap.scan().count(), 5);
    }

    #[test]
    fn temp_append_fails_on_injected_write_fault() {
        use crate::fault::FaultPlan;
        let disk = SimDisk::new();
        let mut plan = FaultPlan::none();
        plan.fail_nth_writes = vec![1];
        disk.set_fault_plan(plan);
        let mut heap = HeapFile::new_temp(disk);
        let record = [9u8; 512];
        let mut failed = false;
        for _ in 0..10 {
            if heap.append(&record).is_err() {
                failed = true;
                break;
            }
        }
        assert!(failed, "first page-seal write should fail");
    }
}
