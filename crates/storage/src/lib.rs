//! Storage substrate: a simulated disk with I/O accounting, slotted pages,
//! heap files, B-trees, and a buffer pool.
//!
//! The paper's experiments ran on a DECstation with real disks; this crate
//! substitutes a deterministic **simulated disk** that stores pages in
//! memory and *accounts* every access as sequential or random I/O. The
//! executor charges the same per-page constants the cost model uses
//! ([`dqep_catalog::SystemConfig`]), so measured simulator times and the
//! optimizer's predicted times are directly comparable — which is exactly
//! what the end-to-end validation tests rely on: the plan the choose-plan
//! operator picks at start-up must also be the faster plan *when actually
//! executed* on stored data.
//!
//! Components:
//! * [`SimDisk`] — page store + [`IoStats`] (sequential reads, random
//!   reads, writes).
//! * [`SlottedPage`] — classic slotted-page layout for variable-length
//!   records.
//! * [`HeapFile`] — unordered record file over slotted pages.
//! * [`BTree`] — a from-scratch page-based B-tree mapping `i64` keys to
//!   record ids, with range scans; used for unclustered indexes.
//! * [`BufferPool`] — LRU page cache with hit/miss statistics.
//! * [`gen`] — synthetic table generation mirroring the catalog's schema
//!   and statistics (uniform integer attributes over their domains).
//! * [`StorageError`] / [`FaultPlan`] — fallible access APIs and
//!   deterministic fault injection for robustness testing. Accounted
//!   (query-time) reads and writes can fail; unaccounted (load-time)
//!   access is exempt, so a database can always be generated and then
//!   queried under faults.

#![warn(missing_docs)]
// Runtime storage code must propagate errors, not panic: unwrap/expect
// are reserved for tests.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
// Storage sits under every scan; keep the perf lint group clean.
#![deny(clippy::perf)]

mod btree;
mod buffer;
mod disk;
mod error;
mod fault;
pub mod gen;
mod heap;
mod morsel;
mod page;
mod slotted;

pub use btree::BTree;
pub use buffer::BufferPool;
pub use disk::{IoStats, SimDisk};
pub use error::StorageError;
pub use fault::FaultPlan;
pub use gen::{install_histograms, refresh_histograms, StoredDatabase, StoredTable, ValueDistribution};
pub use heap::{HeapFile, Rid};
pub use morsel::{PageClaims, DEFAULT_MORSEL_PAGES};
pub use page::{PageId, PAGE_SIZE};
pub use slotted::SlottedPage;
