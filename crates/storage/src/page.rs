//! Pages and page identifiers.

use std::fmt;

/// Fixed page size in bytes, matching the paper's experimental setup
/// (2,048-byte pages). The catalog's `SystemConfig::page_size` must agree;
/// [`crate::gen::StoredDatabase::generate`] asserts it.
pub const PAGE_SIZE: usize = 2048;

/// Identifier of a page on the simulated disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u32);

impl PageId {
    /// Sentinel for "no page" (used for B-tree leaf chaining).
    pub const INVALID: PageId = PageId(u32::MAX);

    /// Whether this id is the sentinel.
    #[must_use]
    pub fn is_valid(self) -> bool {
        self != PageId::INVALID
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sentinel() {
        assert!(!PageId::INVALID.is_valid());
        assert!(PageId(0).is_valid());
        assert_eq!(PageId(3).to_string(), "p3");
    }
}
