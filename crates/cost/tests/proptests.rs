//! Property tests of the interval cost model: soundness (interval costs
//! enclose every bound point cost) and monotonicity.

use dqep_algebra::{CompareOp, HostVar, JoinPred, PhysicalOp, SelectPred};
use dqep_catalog::{Catalog, CatalogBuilder, SystemConfig};
use dqep_cost::{Bindings, CostModel, Environment, PlanStats};
use dqep_interval::Interval;
use proptest::prelude::*;

fn catalog(card_r: u64, card_s: u64) -> Catalog {
    CatalogBuilder::new(SystemConfig::paper_1994())
        .relation("r", card_r, 512, |r| {
            r.attr("a", card_r as f64).attr("j", 100.0).btree("a", false).btree("j", false)
        })
        .relation("s", card_s, 512, |r| {
            r.attr("a", card_s as f64).attr("j", 100.0).btree("j", false)
        })
        .build()
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Soundness: for every operator and every binding, the point cost
    /// computed under the bound environment lies inside the interval cost
    /// computed at compile time.
    #[test]
    fn interval_costs_enclose_bound_costs(
        card_r in 100u64..1500,
        card_s in 100u64..1500,
        value in 0i64..1500,
        memory in 16.0f64..112.0,
    ) {
        let cat = catalog(card_r, card_s);
        let r = cat.relation_by_name("r").unwrap();
        let s = cat.relation_by_name("s").unwrap();
        let pred = SelectPred::unbound(r.attr_id("a").unwrap(), CompareOp::Lt, HostVar(0));
        let jp = JoinPred::new(r.attr_id("j").unwrap(), s.attr_id("j").unwrap());
        let (idx, _) = cat.index_on_attr(pred.attr).unwrap();

        let wide_env = Environment::dynamic_uncertain_memory(&cat.config);
        let bound_env = wide_env.bind(
            &Bindings::new().with_value(HostVar(0), value).with_memory(memory),
        );

        let ops: Vec<PhysicalOp> = vec![
            PhysicalOp::FileScan { relation: r.id },
            PhysicalOp::FilterBtreeScan { relation: r.id, index: idx, predicate: pred },
            PhysicalOp::HashJoin { predicates: vec![jp] },
            PhysicalOp::MergeJoin { predicates: vec![jp] },
            PhysicalOp::Sort { attr: r.attr_id("a").unwrap() },
        ];
        for op in &ops {
            let wide = CostModel::new(&cat, &wide_env);
            let bound = CostModel::new(&cat, &bound_env);

            // Stream statistics per environment.
            let sel_wide = wide.selectivity().selection(&pred, &wide_env);
            let sel_bound = bound.selectivity().selection(&pred, &bound_env);
            let r_card = Interval::point(card_r as f64);
            let s_card = Interval::point(card_s as f64);
            let filtered_wide = PlanStats::new(r_card * sel_wide, 512.0);
            let filtered_bound = PlanStats::new(r_card * sel_bound, 512.0);
            let jsel = wide.selectivity().join(&[jp]);
            let (inputs_wide, inputs_bound, out_wide, out_bound): (
                Vec<PlanStats>, Vec<PlanStats>, PlanStats, PlanStats,
            ) = match op {
                PhysicalOp::FileScan { .. } => (
                    vec![],
                    vec![],
                    PlanStats::new(r_card, 512.0),
                    PlanStats::new(r_card, 512.0),
                ),
                PhysicalOp::FilterBtreeScan { .. } => {
                    (vec![], vec![], filtered_wide, filtered_bound)
                }
                PhysicalOp::HashJoin { .. } | PhysicalOp::MergeJoin { .. } => (
                    vec![filtered_wide, PlanStats::new(s_card, 512.0)],
                    vec![filtered_bound, PlanStats::new(s_card, 512.0)],
                    PlanStats::new((filtered_wide.card * s_card).scale(jsel), 1024.0),
                    PlanStats::new((filtered_bound.card * s_card).scale(jsel), 1024.0),
                ),
                PhysicalOp::Sort { .. } => (
                    vec![filtered_wide],
                    vec![filtered_bound],
                    filtered_wide,
                    filtered_bound,
                ),
                _ => unreachable!(),
            };
            let wide_cost = wide.op_cost(op, &inputs_wide, &out_wide).total();
            let bound_cost = bound.op_cost(op, &inputs_bound, &out_bound).total();
            prop_assert!(bound_cost.is_point());
            prop_assert!(
                wide_cost.lo() <= bound_cost.lo() + 1e-9
                    && bound_cost.hi() <= wide_cost.hi() + 1e-9,
                "{}: bound {} outside wide {}",
                op.name(),
                bound_cost,
                wide_cost
            );
            // Costs are never negative.
            prop_assert!(wide_cost.lo() >= 0.0);
        }
    }

    /// Monotonicity: the bound cost of a selectivity-dependent plan is
    /// non-decreasing in the bound value (higher selectivity, more work).
    #[test]
    fn bound_costs_monotone_in_selectivity(card in 200u64..1200) {
        let cat = catalog(card, 100);
        let r = cat.relation_by_name("r").unwrap();
        let pred = SelectPred::unbound(r.attr_id("a").unwrap(), CompareOp::Lt, HostVar(0));
        let (idx, _) = cat.index_on_attr(pred.attr).unwrap();
        let op = PhysicalOp::FilterBtreeScan { relation: r.id, index: idx, predicate: pred };
        let base = Environment::dynamic_compile_time(&cat.config);
        let mut prev = -1.0;
        for step in 0..=10 {
            let v = (card as i64) * step / 10;
            let env = base.bind(&Bindings::new().with_value(HostVar(0), v));
            let model = CostModel::new(&cat, &env);
            let sel = model.selectivity().selection(&pred, &env);
            let out = PlanStats::new(Interval::point(card as f64) * sel, 512.0);
            let cost = model.op_cost(&op, &[], &out).total().lo();
            prop_assert!(cost >= prev - 1e-12, "cost not monotone at v={v}");
            prev = cost;
        }
    }

    /// Hash-join cost is non-increasing in memory (more memory can only
    /// help).
    #[test]
    fn hash_join_monotone_in_memory(build in 100u64..1500, probe in 100u64..1500) {
        let cat = catalog(build, probe);
        let r = cat.relation_by_name("r").unwrap();
        let s = cat.relation_by_name("s").unwrap();
        let jp = JoinPred::new(r.attr_id("j").unwrap(), s.attr_id("j").unwrap());
        let op = PhysicalOp::HashJoin { predicates: vec![jp] };
        let base = Environment::dynamic_uncertain_memory(&cat.config);
        let inputs = [
            PlanStats::new(Interval::point(build as f64), 512.0),
            PlanStats::new(Interval::point(probe as f64), 512.0),
        ];
        let out = PlanStats::new(Interval::point(10.0), 1024.0);
        let mut prev = f64::INFINITY;
        for mem in [16.0f64, 32.0, 64.0, 96.0, 112.0] {
            let env = base.bind(&Bindings::new().with_memory(mem));
            let cost = CostModel::new(&cat, &env).op_cost(&op, &inputs, &out).total().lo();
            prop_assert!(cost <= prev + 1e-12, "cost rose with memory at {mem}");
            prev = cost;
        }
    }
}
