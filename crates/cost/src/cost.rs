//! The abstract cost data type.

use std::fmt;
use std::ops::{Add, AddAssign};

use dqep_interval::{Interval, PartialCmp};
use serde::{Deserialize, Serialize};

/// Anticipated query evaluation cost, in seconds, split into CPU and I/O
/// components.
///
/// The paper encapsulates cost in an abstract data type whose comparison
/// may return "incomparable" in addition to less/equal/greater (Section 3).
/// Here both components are intervals; *comparisons operate on the total*
/// (CPU + I/O), matching the paper's single-measure experiments, while the
/// components are kept separate for reporting (the experimental section
/// reports CPU and I/O start-up effort separately).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Cost {
    /// CPU seconds.
    pub cpu: Interval,
    /// I/O seconds.
    pub io: Interval,
}

impl Cost {
    /// The zero cost.
    pub const ZERO: Cost = Cost {
        cpu: Interval::ZERO,
        io: Interval::ZERO,
    };

    /// Creates a cost from CPU and I/O intervals.
    #[must_use]
    pub fn new(cpu: Interval, io: Interval) -> Cost {
        Cost { cpu, io }
    }

    /// A pure-CPU cost.
    #[must_use]
    pub fn cpu_only(cpu: Interval) -> Cost {
        Cost {
            cpu,
            io: Interval::ZERO,
        }
    }

    /// A pure-I/O cost.
    #[must_use]
    pub fn io_only(io: Interval) -> Cost {
        Cost {
            cpu: Interval::ZERO,
            io,
        }
    }

    /// A point cost with the given CPU and I/O seconds.
    #[must_use]
    pub fn point(cpu: f64, io: f64) -> Cost {
        Cost {
            cpu: Interval::point(cpu),
            io: Interval::point(io),
        }
    }

    /// Total cost interval (CPU + I/O); the measure used for comparisons.
    #[must_use]
    pub fn total(self) -> Interval {
        self.cpu + self.io
    }

    /// Whether both components are points (fully determined cost).
    #[must_use]
    pub fn is_point(self) -> bool {
        self.cpu.is_point() && self.io.is_point()
    }

    /// Four-valued comparison on the total cost.
    #[must_use]
    pub fn compare(self, other: Cost) -> PartialCmp {
        self.total().compare(other.total())
    }

    /// Whether `self`'s total dominates `other`'s (never more expensive,
    /// and not the same point): `other` may then be pruned.
    #[must_use]
    pub fn dominates(self, other: Cost) -> bool {
        self.total().dominates(other.total())
    }

    /// The cost of a choose-plan over two alternatives *excluding* the
    /// decision overhead: the pointwise minimum of the **totals** — in the
    /// best case the cheaper of the two best cases, in the worst case the
    /// cheaper of the two worst cases (paper Sections 3 and 5).
    ///
    /// The minimum is taken on totals, not componentwise: a componentwise
    /// minimum would combine one alternative's best CPU with the other's
    /// best I/O and *under*-estimate the achievable worst case, which is
    /// unsound (the start-up decision picks one whole alternative). Since
    /// the resulting bound is not attributable to CPU vs I/O of a single
    /// alternative, it is carried in the CPU component with zero I/O; all
    /// comparisons and figure metrics operate on totals.
    #[must_use]
    pub fn choose_min(self, other: Cost) -> Cost {
        Cost {
            cpu: self.total().min(other.total()),
            io: Interval::ZERO,
        }
    }
}

impl Add for Cost {
    type Output = Cost;

    fn add(self, rhs: Cost) -> Cost {
        Cost {
            cpu: self.cpu + rhs.cpu,
            io: self.io + rhs.io,
        }
    }
}

impl AddAssign for Cost {
    fn add_assign(&mut self, rhs: Cost) {
        *self = *self + rhs;
    }
}

impl fmt::Display for Cost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "total {} (cpu {}, io {})", self.total(), self.cpu, self.io)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_components() {
        let c = Cost::new(Interval::new(1.0, 2.0), Interval::new(10.0, 20.0));
        assert_eq!(c.total(), Interval::new(11.0, 22.0));
        assert!(!c.is_point());
        assert!(Cost::point(1.0, 2.0).is_point());
    }

    #[test]
    fn comparison_is_on_total() {
        let a = Cost::new(Interval::point(5.0), Interval::point(0.0));
        let b = Cost::new(Interval::point(0.0), Interval::point(5.0));
        // Same total — equal even though the mixes differ.
        assert_eq!(a.compare(b), PartialCmp::Equal);

        let cheap = Cost::point(0.0, 1.0);
        let wide = Cost::new(Interval::new(0.0, 10.0), Interval::ZERO);
        assert_eq!(cheap.compare(wide), PartialCmp::Incomparable);
        assert_eq!(Cost::point(0.1, 0.1).compare(Cost::point(5.0, 5.0)), PartialCmp::Less);
    }

    #[test]
    fn domination() {
        let a = Cost::new(Interval::new(0.0, 1.0), Interval::ZERO);
        let b = Cost::new(Interval::new(2.0, 3.0), Interval::ZERO);
        assert!(a.dominates(b));
        assert!(!b.dominates(a));
        assert!(!a.dominates(a));
    }

    #[test]
    fn addition() {
        let a = Cost::point(1.0, 2.0);
        let b = Cost::new(Interval::new(0.0, 1.0), Interval::new(1.0, 1.0));
        let s = a + b;
        assert_eq!(s.cpu, Interval::new(1.0, 2.0));
        assert_eq!(s.io, Interval::new(3.0, 3.0));
        let mut t = a;
        t += b;
        assert_eq!(t, s);
    }

    #[test]
    fn choose_min_paper_example() {
        // Paper Section 5: alternatives [0,10] and [1,1] with overhead
        // [0.01, 0.01] give [0.01, 1.01].
        let a = Cost::cpu_only(Interval::new(0.0, 10.0));
        let b = Cost::cpu_only(Interval::new(1.0, 1.0));
        let m = a.choose_min(b) + Cost::cpu_only(Interval::point(0.01));
        assert_eq!(m.total(), Interval::new(0.01, 1.01));
    }

    #[test]
    fn display() {
        let c = Cost::point(1.0, 2.0);
        assert!(c.to_string().contains("total [3.0000]"));
    }
}
