//! Scalar cost formulas, shared by the interval cost model and the storage
//! simulator.
//!
//! All functions here are *monotone* in each argument (non-decreasing in
//! data sizes, non-increasing in memory), the property the paper's cost
//! model relies on to compute exact interval bounds by evaluating the
//! formulas at parameter-interval endpoints (Section 5).

/// Number of partitioning levels a Grace hash join needs before the build
/// side fits in memory: 0 when `build_pages <= mem_pages`, else
/// `ceil(log_F(build_pages / mem_pages))` with partitioning fan-out
/// `F = max(mem_pages - 1, 2)`.
#[must_use]
pub fn hash_partition_levels(build_pages: f64, mem_pages: f64) -> f64 {
    let mem = mem_pages.max(2.0);
    if build_pages <= mem {
        return 0.0;
    }
    let fanout = (mem - 1.0).max(2.0);
    (build_pages / mem).log(fanout).ceil().max(1.0)
}

/// Extra I/O seconds a hash join spends partitioning (writing and re-reading
/// both inputs once per partitioning level). Zero when the build input fits
/// in memory.
#[must_use]
pub fn hash_join_io_seconds(
    build_pages: f64,
    probe_pages: f64,
    mem_pages: f64,
    seq_page_io: f64,
) -> f64 {
    let levels = hash_partition_levels(build_pages, mem_pages);
    2.0 * (build_pages + probe_pages) * levels * seq_page_io
}

/// Number of merge passes of an external sort: 0 when the input fits in
/// memory, else `ceil(log_F(runs))` over the initial runs
/// (`ceil(pages / mem)`) with merge fan-in `F = max(mem - 1, 2)`.
#[must_use]
pub fn sort_passes(pages: f64, mem_pages: f64) -> f64 {
    let mem = mem_pages.max(2.0);
    if pages <= mem {
        return 0.0;
    }
    let runs = (pages / mem).ceil();
    let fanin = (mem - 1.0).max(2.0);
    runs.log(fanin).ceil().max(1.0)
}

/// I/O seconds of an external sort: one write + one read of the whole input
/// per merge pass (run formation reads arrive pipelined from the input and
/// are not charged here).
#[must_use]
pub fn sort_io_seconds(pages: f64, mem_pages: f64, seq_page_io: f64) -> f64 {
    2.0 * pages * sort_passes(pages, mem_pages) * seq_page_io
}

/// Expected number of distinct pages touched when fetching `k` records
/// uniformly from a file of `pages` pages (Cardenas' formula). Monotone
/// increasing in both arguments. Used by the cache-aware unclustered-fetch
/// ablation; the default cost model charges one random I/O per fetched
/// record, the paper-era conservative model for unclustered B-trees.
#[must_use]
pub fn cardenas_pages(k: f64, pages: f64) -> f64 {
    if pages < 1.0 || k <= 0.0 {
        return 0.0;
    }
    pages * (1.0 - (1.0 - 1.0 / pages).powf(k))
}

/// CPU seconds to sort `records` records: `n log2 n` comparisons.
#[must_use]
pub fn sort_cpu_seconds(records: f64, cpu_per_compare: f64) -> f64 {
    if records <= 1.0 {
        return 0.0;
    }
    records * records.log2() * cpu_per_compare
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_levels_zero_when_fits() {
        assert_eq!(hash_partition_levels(10.0, 64.0), 0.0);
        assert_eq!(hash_partition_levels(64.0, 64.0), 0.0);
    }

    #[test]
    fn hash_levels_one_when_one_pass_suffices() {
        // 65 pages, 64 memory: one partitioning pass.
        assert_eq!(hash_partition_levels(65.0, 64.0), 1.0);
        // Very large build relative to memory needs more levels.
        assert!(hash_partition_levels(1e6, 16.0) >= 2.0);
    }

    #[test]
    fn hash_levels_monotone() {
        let mut prev = 0.0;
        for pages in [10.0, 100.0, 1000.0, 10000.0, 100000.0] {
            let l = hash_partition_levels(pages, 32.0);
            assert!(l >= prev);
            prev = l;
        }
        // Decreasing in memory.
        assert!(hash_partition_levels(1000.0, 16.0) >= hash_partition_levels(1000.0, 112.0));
    }

    #[test]
    fn hash_io_zero_in_memory() {
        assert_eq!(hash_join_io_seconds(10.0, 1000.0, 64.0, 0.001), 0.0);
        let spill = hash_join_io_seconds(100.0, 200.0, 64.0, 0.001);
        assert!((spill - 2.0 * 300.0 * 0.001).abs() < 1e-12);
    }

    #[test]
    fn sort_passes_zero_when_fits() {
        assert_eq!(sort_passes(64.0, 64.0), 0.0);
        assert_eq!(sort_io_seconds(64.0, 64.0, 0.001), 0.0);
    }

    #[test]
    fn sort_passes_grow_with_input() {
        let p1 = sort_passes(250.0, 16.0);
        let p2 = sort_passes(25_000.0, 16.0);
        assert!(p1 >= 1.0);
        assert!(p2 > p1);
        // More memory, fewer (or equal) passes.
        assert!(sort_passes(250.0, 112.0) <= p1);
    }

    #[test]
    fn cardenas_properties() {
        assert_eq!(cardenas_pages(0.0, 250.0), 0.0);
        let f50 = cardenas_pages(50.0, 250.0);
        let f1000 = cardenas_pages(1000.0, 250.0);
        assert!(f50 > 40.0 && f50 < 50.0, "few fetches hit mostly distinct pages");
        assert!(f1000 < 250.0, "bounded by the file size");
        assert!(f1000 > f50);
        assert_eq!(cardenas_pages(10.0, 0.5), 0.0);
    }

    #[test]
    fn sort_cpu_nlogn() {
        assert_eq!(sort_cpu_seconds(1.0, 1e-6), 0.0);
        let c = sort_cpu_seconds(1024.0, 1e-6);
        assert!((c - 1024.0 * 10.0 * 1e-6).abs() < 1e-9);
    }
}
