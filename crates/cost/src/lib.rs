//! The interval cost model of the dynamic-plan optimizer.
//!
//! The paper's prototype "extends plan cost from traditional point data to
//! interval data and defines costs to be incomparable if these intervals
//! overlap" (Section 7). This crate supplies:
//!
//! * [`Cost`] — the abstract cost data type: CPU and I/O time components,
//!   each an [`dqep_interval::Interval`], compared on their total.
//! * [`Environment`] — the optimization-time view of uncertain parameters
//!   (host-variable bindings, available memory) plus the
//!   [`PlanningMode`] that selects between traditional point optimization
//!   (expected values) and dynamic-plan interval optimization (full
//!   domains).
//! * [`SelectivityModel`] — selectivity and cardinality estimation:
//!   bound predicates from uniform-domain statistics, unbound predicates as
//!   `[0, 1]` (expected 0.05), join selectivity as
//!   `1 / max(domain(left), domain(right))` (paper Section 6).
//! * [`CostModel`] — per-algorithm cost functions, monotone in their
//!   uncertain arguments so that evaluating them at interval endpoints
//!   yields exact lower/upper cost bounds.
//!
//! The same functions serve all three optimization scenarios of paper
//! Figure 3: static optimization (point mode, expected values), run-time
//! optimization (point mode, actual bindings), dynamic plans (interval
//! mode at compile-time; point re-evaluation at start-up-time).

#![warn(missing_docs)]

mod cost;
mod env;
mod formulas;
mod model;
mod selectivity;

pub use cost::Cost;
pub use env::{Bindings, Environment, PlanningMode};
pub use formulas::{cardenas_pages, hash_join_io_seconds, hash_partition_levels, sort_cpu_seconds, sort_io_seconds, sort_passes};
pub use model::{CostModel, PlanStats};
pub use selectivity::SelectivityModel;
