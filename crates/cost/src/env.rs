//! Optimization environments and run-time bindings.

use std::collections::BTreeMap;

use dqep_algebra::HostVar;
use dqep_catalog::SystemConfig;
use dqep_interval::{Interval, ParamValue};
use serde::{Deserialize, Serialize};

/// How uncertain parameters enter cost computations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlanningMode {
    /// Traditional optimization: each uncertain parameter is replaced by its
    /// expected value, producing point costs and a total order on plans.
    Point,
    /// Dynamic-plan optimization: each uncertain parameter contributes its
    /// full domain interval, producing interval costs and a partial order.
    Interval,
}

/// Actual run-time bindings, available at start-up-time: the values the
/// application program supplies for host variables, and the memory the
/// system currently grants.
///
/// Host variables are bound to *values*; the selectivity they imply is
/// derived by [`crate::SelectivityModel`] from catalog statistics, exactly
/// as a real system would at start-up ("these values require a very small
/// number of system calls or catalog lookups", paper Section 4).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Bindings {
    /// Host-variable values.
    pub values: BTreeMap<HostVar, i64>,
    /// Actual memory grant in pages; `None` keeps the environment's view.
    pub memory_pages: Option<f64>,
}

impl Bindings {
    /// An empty set of bindings.
    #[must_use]
    pub fn new() -> Bindings {
        Bindings::default()
    }

    /// Adds a host-variable binding (builder style).
    #[must_use]
    pub fn with_value(mut self, var: HostVar, value: i64) -> Bindings {
        self.values.insert(var, value);
        self
    }

    /// Sets the actual memory grant (builder style).
    #[must_use]
    pub fn with_memory(mut self, pages: f64) -> Bindings {
        self.memory_pages = Some(pages);
        self
    }

    /// The value bound to `var`, if any.
    #[must_use]
    pub fn value(&self, var: HostVar) -> Option<i64> {
        self.values.get(&var).copied()
    }
}

/// The compile-time (or start-up-time) view of all uncertain cost-model
/// parameters, plus the planning mode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Environment {
    /// Planning mode: points (traditional / run-time optimization) or
    /// intervals (dynamic plans).
    pub mode: PlanningMode,
    /// Available memory in pages.
    pub memory: ParamValue,
    /// Host-variable values known in this environment (none at
    /// compile-time for an embedded query; all of them at start-up-time).
    pub bindings: Bindings,
    /// Default expected selectivity for unbound predicates (paper: 0.05).
    pub default_selectivity: f64,
}

impl Environment {
    /// Compile-time environment for **static** (traditional) optimization:
    /// point mode, expected memory, no bindings.
    #[must_use]
    pub fn static_compile_time(config: &SystemConfig) -> Environment {
        Environment {
            mode: PlanningMode::Point,
            memory: ParamValue::Known(config.expected_memory_pages),
            bindings: Bindings::new(),
            default_selectivity: config.default_selectivity,
        }
    }

    /// Compile-time environment for **dynamic-plan** optimization with
    /// uncertain selectivities only: memory is still the known expected
    /// value (the paper's ○-curves).
    #[must_use]
    pub fn dynamic_compile_time(config: &SystemConfig) -> Environment {
        Environment {
            mode: PlanningMode::Interval,
            memory: ParamValue::Known(config.expected_memory_pages),
            bindings: Bindings::new(),
            default_selectivity: config.default_selectivity,
        }
    }

    /// Compile-time environment for dynamic-plan optimization with
    /// uncertain selectivities **and uncertain memory** (the paper's
    /// □-curves): memory in `[memory_min_pages, memory_max_pages]`.
    #[must_use]
    pub fn dynamic_uncertain_memory(config: &SystemConfig) -> Environment {
        Environment {
            mode: PlanningMode::Interval,
            memory: ParamValue::uncertain(
                config.expected_memory_pages,
                Interval::new(config.memory_min_pages, config.memory_max_pages),
            ),
            bindings: Bindings::new(),
            default_selectivity: config.default_selectivity,
        }
    }

    /// The environment with run-time bindings applied: point mode,
    /// all host variables bound, actual memory known. Used both by the
    /// run-time-optimization scenario and by start-up-time choose-plan
    /// decisions.
    #[must_use]
    pub fn bind(&self, bindings: &Bindings) -> Environment {
        let memory = match bindings.memory_pages {
            Some(m) => ParamValue::Known(m),
            None => ParamValue::Known(self.memory.expected()),
        };
        Environment {
            mode: PlanningMode::Point,
            memory,
            bindings: bindings.clone(),
            default_selectivity: self.default_selectivity,
        }
    }

    /// The memory interval under this environment's mode.
    #[must_use]
    pub fn memory_interval(&self) -> Interval {
        match self.mode {
            PlanningMode::Point => self.memory.expected_interval(),
            PlanningMode::Interval => self.memory.planning_interval(),
        }
    }

    /// Whether any parameter is uncertain under this environment (i.e.
    /// whether dynamic plans can arise at all).
    #[must_use]
    pub fn has_uncertainty(&self) -> bool {
        self.mode == PlanningMode::Interval
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_env_is_point() {
        let cfg = SystemConfig::paper_1994();
        let env = Environment::static_compile_time(&cfg);
        assert_eq!(env.mode, PlanningMode::Point);
        assert_eq!(env.memory_interval(), Interval::point(64.0));
        assert!(!env.has_uncertainty());
    }

    #[test]
    fn dynamic_env_memory_modes() {
        let cfg = SystemConfig::paper_1994();
        let sel_only = Environment::dynamic_compile_time(&cfg);
        assert_eq!(sel_only.memory_interval(), Interval::point(64.0));
        assert!(sel_only.has_uncertainty());

        let with_mem = Environment::dynamic_uncertain_memory(&cfg);
        assert_eq!(with_mem.memory_interval(), Interval::new(16.0, 112.0));
    }

    #[test]
    fn binding_produces_point_env() {
        let cfg = SystemConfig::paper_1994();
        let env = Environment::dynamic_uncertain_memory(&cfg);
        let b = Bindings::new().with_value(HostVar(0), 42).with_memory(100.0);
        let bound = env.bind(&b);
        assert_eq!(bound.mode, PlanningMode::Point);
        assert_eq!(bound.memory_interval(), Interval::point(100.0));
        assert_eq!(bound.bindings.value(HostVar(0)), Some(42));
        assert_eq!(bound.bindings.value(HostVar(1)), None);
    }

    #[test]
    fn binding_without_memory_falls_back_to_expected() {
        let cfg = SystemConfig::paper_1994();
        let env = Environment::dynamic_uncertain_memory(&cfg);
        let bound = env.bind(&Bindings::new());
        assert_eq!(bound.memory_interval(), Interval::point(64.0));
    }
}
