//! Selectivity and cardinality estimation.

use dqep_algebra::{CompareOp, JoinPred, Scalar, SelectPred};
use dqep_catalog::Catalog;
use dqep_interval::Interval;

use crate::env::{Environment, PlanningMode};

/// Selectivity estimation over uniform attribute domains.
///
/// Attribute values are modeled as uniform over `[0, domain_size)`
/// integers, so the selectivity of `attr < c` is `c / domain_size`
/// (clamped to `[0, 1]`), of `attr = c` is `1 / domain_size`, etc.
///
/// * **Bound predicates** (constant right-hand side) have point
///   selectivities in every mode.
/// * **Unbound predicates** (host-variable right-hand side) have point
///   selectivity once the variable is bound in the environment; otherwise
///   the expected default (0.05) in point mode or the full `[0, 1]`
///   interval in interval mode — the paper's experimental setup.
/// * **Join selectivity** is `1 / max(domain(left), domain(right))` per
///   equi-join predicate (paper Section 6), a point value.
pub struct SelectivityModel<'a> {
    catalog: &'a Catalog,
}

impl<'a> SelectivityModel<'a> {
    /// Creates a model reading statistics from `catalog`.
    #[must_use]
    pub fn new(catalog: &'a Catalog) -> SelectivityModel<'a> {
        SelectivityModel { catalog }
    }

    /// Selectivity of a selection predicate under `env`.
    ///
    /// Bound values use the attribute's [`dqep_catalog::Histogram`] when
    /// one is installed (repairing estimates on skewed data — the
    /// selectivity-estimation-error problem of the paper's final section)
    /// and the uniform-domain model otherwise.
    #[must_use]
    pub fn selection(&self, pred: &SelectPred, env: &Environment) -> Interval {
        match pred.rhs {
            Scalar::Const(c) => Interval::point(self.value_selectivity(pred, c)),
            Scalar::Host(var) => match env.bindings.value(var) {
                Some(v) => Interval::point(self.value_selectivity(pred, v)),
                None => match env.mode {
                    PlanningMode::Point => Interval::point(env.default_selectivity),
                    PlanningMode::Interval => Interval::new(0.0, 1.0),
                },
            },
        }
    }

    /// Point selectivity of `pred.attr OP v`: histogram-based when
    /// available, uniform-domain otherwise.
    #[must_use]
    pub fn value_selectivity(&self, pred: &SelectPred, v: i64) -> f64 {
        if let Some(h) = self.catalog.histogram(pred.attr) {
            let frac = match pred.op {
                CompareOp::Lt => h.fraction_below(v),
                CompareOp::Le => h.fraction_leq(v),
                CompareOp::Eq => h.fraction_eq(v),
                CompareOp::Ge => 1.0 - h.fraction_below(v),
                CompareOp::Gt => 1.0 - h.fraction_leq(v),
            };
            return frac.clamp(0.0, 1.0);
        }
        let domain = self.catalog.attribute(pred.attr).domain_size;
        point_selectivity(pred.op, v, domain)
    }

    /// Combined selectivity of a conjunction of join predicates
    /// (independence assumed): product over predicates of
    /// `1 / max(domain(left), domain(right))`.
    #[must_use]
    pub fn join(&self, preds: &[JoinPred]) -> f64 {
        preds
            .iter()
            .map(|p| {
                let dl = self.catalog.attribute(p.left).domain_size;
                let dr = self.catalog.attribute(p.right).domain_size;
                1.0 / dl.max(dr).max(1.0)
            })
            .product()
    }

    /// Output cardinality of a selection over an input of `input_card`.
    #[must_use]
    pub fn select_output(
        &self,
        input_card: Interval,
        pred: &SelectPred,
        env: &Environment,
    ) -> Interval {
        input_card * self.selection(pred, env)
    }

    /// Output cardinality of a join of `left_card` × `right_card` under
    /// `preds`.
    #[must_use]
    pub fn join_output(
        &self,
        left_card: Interval,
        right_card: Interval,
        preds: &[JoinPred],
    ) -> Interval {
        (left_card * right_card).scale(self.join(preds))
    }
}

/// Fraction of a uniform integer domain `[0, domain)` satisfying
/// `x OP c`, clamped to `[0, 1]`.
fn point_selectivity(op: CompareOp, c: i64, domain: f64) -> f64 {
    let d = domain.max(1.0);
    let c = c as f64;
    let frac = match op {
        CompareOp::Lt => c / d,
        CompareOp::Le => (c + 1.0) / d,
        CompareOp::Eq => 1.0 / d,
        CompareOp::Ge => (d - c) / d,
        CompareOp::Gt => (d - c - 1.0) / d,
    };
    frac.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqep_algebra::HostVar;
    use dqep_catalog::{CatalogBuilder, SystemConfig};

    fn fixture() -> Catalog {
        CatalogBuilder::new(SystemConfig::paper_1994())
            .relation("r", 1000, 512, |r| r.attr("a", 1000.0).attr("j", 500.0))
            .relation("s", 800, 512, |r| r.attr("a", 800.0).attr("j", 200.0))
            .build()
            .unwrap()
    }

    fn attr(cat: &Catalog, rel: &str, name: &str) -> dqep_catalog::AttrId {
        cat.relation_by_name(rel).unwrap().attr_id(name).unwrap()
    }

    #[test]
    fn bound_predicate_is_point_in_all_modes() {
        let cat = fixture();
        let cfg = cat.config;
        let m = SelectivityModel::new(&cat);
        let pred = SelectPred::bound(attr(&cat, "r", "a"), CompareOp::Lt, 250);
        for env in [
            Environment::static_compile_time(&cfg),
            Environment::dynamic_compile_time(&cfg),
        ] {
            assert_eq!(m.selection(&pred, &env), Interval::point(0.25));
        }
    }

    #[test]
    fn unbound_predicate_depends_on_mode() {
        let cat = fixture();
        let cfg = cat.config;
        let m = SelectivityModel::new(&cat);
        let pred = SelectPred::unbound(attr(&cat, "r", "a"), CompareOp::Lt, HostVar(0));

        let stat = Environment::static_compile_time(&cfg);
        assert_eq!(m.selection(&pred, &stat), Interval::point(0.05));

        let dyn_env = Environment::dynamic_compile_time(&cfg);
        assert_eq!(m.selection(&pred, &dyn_env), Interval::new(0.0, 1.0));
    }

    #[test]
    fn binding_resolves_unbound_predicate() {
        let cat = fixture();
        let cfg = cat.config;
        let m = SelectivityModel::new(&cat);
        let pred = SelectPred::unbound(attr(&cat, "r", "a"), CompareOp::Lt, HostVar(0));
        let env = Environment::dynamic_compile_time(&cfg)
            .bind(&crate::Bindings::new().with_value(HostVar(0), 700));
        assert_eq!(m.selection(&pred, &env), Interval::point(0.7));
    }

    #[test]
    fn operator_fractions() {
        assert_eq!(point_selectivity(CompareOp::Lt, 100, 1000.0), 0.1);
        assert_eq!(point_selectivity(CompareOp::Le, 99, 1000.0), 0.1);
        assert_eq!(point_selectivity(CompareOp::Eq, 5, 1000.0), 0.001);
        assert_eq!(point_selectivity(CompareOp::Ge, 900, 1000.0), 0.1);
        assert_eq!(point_selectivity(CompareOp::Gt, 899, 1000.0), 0.1);
        // Clamping.
        assert_eq!(point_selectivity(CompareOp::Lt, -5, 1000.0), 0.0);
        assert_eq!(point_selectivity(CompareOp::Lt, 2000, 1000.0), 1.0);
    }

    #[test]
    fn join_selectivity_uses_larger_domain() {
        let cat = fixture();
        let m = SelectivityModel::new(&cat);
        let p = JoinPred::new(attr(&cat, "r", "j"), attr(&cat, "s", "j"));
        // max(500, 200) = 500.
        assert!((m.join(&[p]) - 1.0 / 500.0).abs() < 1e-12);
        // Two predicates multiply.
        let p2 = JoinPred::new(attr(&cat, "r", "a"), attr(&cat, "s", "a"));
        assert!((m.join(&[p, p2]) - (1.0 / 500.0) * (1.0 / 1000.0)).abs() < 1e-15);
        // Empty conjunction = cross product.
        assert_eq!(m.join(&[]), 1.0);
    }

    #[test]
    fn cardinality_propagation() {
        let cat = fixture();
        let cfg = cat.config;
        let m = SelectivityModel::new(&cat);
        let env = Environment::dynamic_compile_time(&cfg);
        let pred = SelectPred::unbound(attr(&cat, "r", "a"), CompareOp::Lt, HostVar(0));
        let out = m.select_output(Interval::point(1000.0), &pred, &env);
        assert_eq!(out, Interval::new(0.0, 1000.0));

        let p = JoinPred::new(attr(&cat, "r", "j"), attr(&cat, "s", "j"));
        let j = m.join_output(out, Interval::point(800.0), &[p]);
        assert_eq!(j.lo(), 0.0);
        assert!((j.hi() - 1000.0 * 800.0 / 500.0).abs() < 1e-9);
    }
}
