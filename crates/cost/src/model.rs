//! Per-algorithm interval cost functions.

use dqep_algebra::PhysicalOp;
use dqep_catalog::Catalog;
use dqep_interval::{Interval, Monotonicity};
use serde::{Deserialize, Serialize};

use crate::cost::Cost;
use crate::env::Environment;
use crate::formulas::{hash_join_io_seconds, sort_cpu_seconds, sort_io_seconds};
use crate::selectivity::SelectivityModel;

/// Cardinality and width of a data stream flowing between plan operators.
///
/// `card` is an interval because it may depend on unbound selectivities;
/// `row_bytes` is determined by the schema (the sum of the constituent base
/// relations' record lengths) and is always known at compile-time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlanStats {
    /// Number of records, possibly uncertain.
    pub card: Interval,
    /// Bytes per record.
    pub row_bytes: f64,
}

impl PlanStats {
    /// Creates stream statistics.
    #[must_use]
    pub fn new(card: Interval, row_bytes: f64) -> PlanStats {
        PlanStats { card, row_bytes }
    }

    /// Pages this stream occupies when materialized under `page_size`.
    #[must_use]
    pub fn pages(&self, page_size: u32) -> Interval {
        let per_page = (page_size as f64 / self.row_bytes).floor().max(1.0);
        self.card.map_monotone(|c| (c / per_page).ceil())
    }
}

/// The cost model: evaluates each physical algorithm's cost function under
/// an [`Environment`].
///
/// The identical functions are used at compile-time (with intervals) and at
/// start-up-time (with points after binding): "a much simpler approach is
/// to re-evaluate the cost functions associated with the participating
/// alternative plans" (paper Section 4). No inverse cost functions are
/// ever needed.
pub struct CostModel<'a> {
    catalog: &'a Catalog,
    env: &'a Environment,
    selectivity: SelectivityModel<'a>,
}

impl<'a> CostModel<'a> {
    /// Creates a cost model over `catalog` in environment `env`.
    #[must_use]
    pub fn new(catalog: &'a Catalog, env: &'a Environment) -> CostModel<'a> {
        CostModel {
            catalog,
            env,
            selectivity: SelectivityModel::new(catalog),
        }
    }

    /// The selectivity model (shared statistics view).
    #[must_use]
    pub fn selectivity(&self) -> &SelectivityModel<'a> {
        &self.selectivity
    }

    /// The environment this model evaluates under.
    #[must_use]
    pub fn env(&self) -> &Environment {
        self.env
    }

    /// Cost of one operator given its input streams (`inputs`, one entry
    /// per plan child, in order) and its output stream.
    ///
    /// `ChoosePlan` is costed by [`CostModel::choose_plan_cost`] instead,
    /// because its cost depends on the number of alternatives rather than
    /// on data volumes.
    ///
    /// # Panics
    /// Panics if `inputs` does not match the operator's arity.
    #[must_use]
    pub fn op_cost(&self, op: &PhysicalOp, inputs: &[PlanStats], output: &PlanStats) -> Cost {
        let cfg = &self.catalog.config;
        match op {
            PhysicalOp::FileScan { relation } => {
                let rel = self.catalog.relation(*relation);
                let pages = rel.stats.pages(cfg);
                let card = rel.stats.cardinality as f64;
                Cost::new(
                    Interval::point(card * cfg.cpu_per_record),
                    Interval::point(pages * cfg.seq_page_io),
                )
            }
            PhysicalOp::BtreeScan { relation, index, .. } => {
                let rel = self.catalog.relation(*relation);
                let card = rel.stats.cardinality as f64;
                let height = rel.stats.btree_height(cfg);
                let io = if self.catalog.index(*index).clustered {
                    height * cfg.random_page_io + rel.stats.pages(cfg) * cfg.seq_page_io
                } else {
                    // One random fetch per record: the conservative
                    // unclustered model of the era.
                    (height + card) * cfg.random_page_io
                };
                Cost::new(
                    Interval::point(card * cfg.cpu_per_record),
                    Interval::point(io),
                )
            }
            PhysicalOp::Filter { .. } => {
                let input = only(inputs, 1)[0];
                let cpu = input.card.scale(cfg.cpu_per_compare)
                    + output.card.scale(cfg.cpu_per_record);
                Cost::cpu_only(cpu)
            }
            PhysicalOp::FilterBtreeScan { relation, index, .. } => {
                let rel = self.catalog.relation(*relation);
                let height = rel.stats.btree_height(cfg);
                let io = if self.catalog.index(*index).clustered {
                    let out_pages = output.pages(cfg.page_size);
                    out_pages.scale(cfg.seq_page_io) + height * cfg.random_page_io
                } else {
                    output
                        .card
                        .map_monotone(|c| (height + c) * cfg.random_page_io)
                };
                Cost::new(output.card.scale(cfg.cpu_per_record), io)
            }
            PhysicalOp::HashJoin { .. } => {
                let ins = only(inputs, 2);
                let (build, probe) = (ins[0], ins[1]);
                let build_pages = build.pages(cfg.page_size);
                let probe_pages = probe.pages(cfg.page_size);
                let mem = self.env.memory_interval();
                let io = Interval::combine3(
                    build_pages,
                    probe_pages,
                    mem,
                    Monotonicity::Increasing,
                    Monotonicity::Increasing,
                    Monotonicity::Decreasing,
                    |b, p, m| hash_join_io_seconds(b, p, m, cfg.seq_page_io),
                );
                let cpu = (build.card + probe.card).scale(cfg.cpu_per_hash)
                    + output.card.scale(cfg.cpu_per_record);
                Cost::new(cpu, io)
            }
            PhysicalOp::MergeJoin { .. } => {
                let ins = only(inputs, 2);
                let cpu = (ins[0].card + ins[1].card).scale(cfg.cpu_per_compare)
                    + output.card.scale(cfg.cpu_per_record);
                Cost::cpu_only(cpu)
            }
            PhysicalOp::IndexJoin {
                predicates, inner, ..
            } => {
                let outer = only(inputs, 1)[0];
                let inner_rel = self.catalog.relation(*inner);
                let inner_card = inner_rel.stats.cardinality as f64;
                // Matching inner records per outer record, before residual.
                let fan = inner_card * self.selectivity.join(predicates);
                // One leaf I/O per probe, one random fetch per match
                // (unclustered inner index).
                let io = outer
                    .card
                    .map_monotone(|c| c * (1.0 + fan) * cfg.random_page_io);
                let cpu = outer.card.scale(fan * cfg.cpu_per_compare)
                    + output.card.scale(cfg.cpu_per_record);
                Cost::new(cpu, io)
            }
            PhysicalOp::Sort { .. } => {
                let input = only(inputs, 1)[0];
                let pages = input.pages(cfg.page_size);
                let mem = self.env.memory_interval();
                let io = Interval::combine2(
                    pages,
                    mem,
                    Monotonicity::Increasing,
                    Monotonicity::Decreasing,
                    |p, m| sort_io_seconds(p, m, cfg.seq_page_io),
                );
                let cpu = input
                    .card
                    .map_monotone(|c| sort_cpu_seconds(c, cfg.cpu_per_compare))
                    + input.card.scale(cfg.cpu_per_record);
                Cost::new(cpu, io)
            }
            PhysicalOp::ChoosePlan => self.choose_plan_cost(2),
        }
    }

    /// Decision-procedure overhead of one choose-plan operator with
    /// `alternatives` inputs: a per-alternative cost-function evaluation at
    /// start-up-time.
    #[must_use]
    pub fn choose_plan_cost(&self, alternatives: usize) -> Cost {
        let cfg = &self.catalog.config;
        Cost::cpu_only(Interval::point(
            cfg.choose_plan_overhead * alternatives.max(2) as f64,
        ))
    }
}

fn only(inputs: &[PlanStats], n: usize) -> &[PlanStats] {
    assert_eq!(inputs.len(), n, "operator expects {n} input(s), got {}", inputs.len());
    inputs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::Bindings;
    use dqep_algebra::{CompareOp, HostVar, JoinPred, SelectPred};
    use dqep_catalog::{AttrId, CatalogBuilder, SystemConfig};

    fn fixture() -> Catalog {
        CatalogBuilder::new(SystemConfig::paper_1994())
            .relation("r", 1000, 512, |r| {
                r.attr("a", 1000.0).attr("j", 500.0).btree("a", false).btree("j", false)
            })
            .relation("s", 800, 512, |r| {
                r.attr("a", 800.0).attr("j", 500.0).btree("a", false).btree("j", false)
            })
            .build()
            .unwrap()
    }

    fn attr(cat: &Catalog, rel: &str, name: &str) -> AttrId {
        cat.relation_by_name(rel).unwrap().attr_id(name).unwrap()
    }

    fn stats(card: f64) -> PlanStats {
        PlanStats::new(Interval::point(card), 512.0)
    }

    #[test]
    fn plan_stats_pages() {
        let cfg = SystemConfig::paper_1994();
        let s = stats(1000.0);
        assert_eq!(s.pages(cfg.page_size), Interval::point(250.0));
        // Wide rows: fewer per page.
        let wide = PlanStats::new(Interval::point(100.0), 4096.0);
        assert_eq!(wide.pages(cfg.page_size), Interval::point(100.0));
    }

    #[test]
    fn file_scan_cost_is_point() {
        let cat = fixture();
        let env = Environment::dynamic_compile_time(&cat.config);
        let m = CostModel::new(&cat, &env);
        let r = cat.relation_by_name("r").unwrap().id;
        let c = m.op_cost(&PhysicalOp::FileScan { relation: r }, &[], &stats(1000.0));
        assert!(c.total().is_point(), "file scan cost does not depend on bindings");
        // 250 pages * 1 ms + 1000 records * 0.1 ms = 0.25 + 0.1 s.
        assert!((c.total().lo() - 0.35).abs() < 1e-9);
    }

    #[test]
    fn filter_btree_scan_cost_tracks_selectivity() {
        let cat = fixture();
        let env = Environment::dynamic_compile_time(&cat.config);
        let m = CostModel::new(&cat, &env);
        let r = cat.relation_by_name("r").unwrap();
        let pred = SelectPred::unbound(attr(&cat, "r", "a"), CompareOp::Lt, HostVar(0));
        let (idx, _) = cat.index_on_attr(pred.attr).unwrap();
        let op = PhysicalOp::FilterBtreeScan {
            relation: r.id,
            index: idx,
            predicate: pred,
        };
        // Unbound: output anywhere in [0, 1000].
        let out = PlanStats::new(Interval::new(0.0, 1000.0), 512.0);
        let c = m.op_cost(&op, &[], &out);
        assert!(c.total().lo() < 0.05, "nearly free at selectivity 0");
        assert!(c.total().hi() > 3.0, "expensive at selectivity 1 (one fetch per record)");
    }

    #[test]
    fn index_beats_file_scan_at_expected_selectivity() {
        // The calibration the experiments rely on: at the default expected
        // selectivity (0.05) the unclustered index plan must be cheaper
        // than the file scan, so a static optimizer picks it — and suffers
        // at high actual selectivities (paper's motivating example).
        let cat = fixture();
        let env = Environment::static_compile_time(&cat.config);
        let m = CostModel::new(&cat, &env);
        let r = cat.relation_by_name("r").unwrap();
        let pred = SelectPred::unbound(attr(&cat, "r", "a"), CompareOp::Lt, HostVar(0));
        let (idx, _) = cat.index_on_attr(pred.attr).unwrap();

        let out = stats(50.0); // 1000 * 0.05
        let index_cost = m.op_cost(
            &PhysicalOp::FilterBtreeScan { relation: r.id, index: idx, predicate: pred },
            &[],
            &out,
        );
        let scan_cost = m.op_cost(&PhysicalOp::FileScan { relation: r.id }, &[], &stats(1000.0));
        let filter_cost = m.op_cost(&PhysicalOp::Filter { predicate: pred }, &[stats(1000.0)], &out);
        let file_plan = scan_cost + filter_cost;
        assert!(
            index_cost.total().hi() < file_plan.total().lo(),
            "index plan ({}) must beat file scan plan ({}) at selectivity 0.05",
            index_cost.total(),
            file_plan.total()
        );
    }

    #[test]
    fn file_scan_beats_index_at_high_selectivity() {
        let cat = fixture();
        let bound_env = Environment::dynamic_compile_time(&cat.config)
            .bind(&Bindings::new().with_value(HostVar(0), 900));
        let m = CostModel::new(&cat, &bound_env);
        let r = cat.relation_by_name("r").unwrap();
        let pred = SelectPred::unbound(attr(&cat, "r", "a"), CompareOp::Lt, HostVar(0));
        let (idx, _) = cat.index_on_attr(pred.attr).unwrap();
        let out = stats(900.0);
        let index_cost = m.op_cost(
            &PhysicalOp::FilterBtreeScan { relation: r.id, index: idx, predicate: pred },
            &[],
            &out,
        );
        let file_plan = m.op_cost(&PhysicalOp::FileScan { relation: r.id }, &[], &stats(1000.0))
            + m.op_cost(&PhysicalOp::Filter { predicate: pred }, &[stats(1000.0)], &out);
        assert!(file_plan.total().hi() < index_cost.total().lo());
    }

    #[test]
    fn hash_join_spills_with_small_memory() {
        let cat = fixture();
        let cfg = cat.config;
        let env_small = Environment {
            mode: crate::PlanningMode::Point,
            memory: dqep_interval::ParamValue::Known(16.0),
            bindings: Bindings::new(),
            default_selectivity: cfg.default_selectivity,
        };
        let env_big = Environment::static_compile_time(&cfg);
        let op = PhysicalOp::HashJoin {
            predicates: vec![JoinPred::new(attr(&cat, "r", "j"), attr(&cat, "s", "j"))],
        };
        let build = stats(1000.0); // 250 pages > 16
        let probe = stats(800.0);
        let out = stats(1600.0);
        let small = CostModel::new(&cat, &env_small).op_cost(&op, &[build, probe], &out);
        let big = CostModel::new(&cat, &env_big).op_cost(&op, &[build, probe], &out);
        assert!(small.io.lo() > 0.0, "must partition when memory is small");
        assert!(small.total().lo() > big.total().lo());
    }

    #[test]
    fn hash_join_uncertain_memory_gives_io_interval() {
        let cat = fixture();
        let env = Environment::dynamic_uncertain_memory(&cat.config);
        let m = CostModel::new(&cat, &env);
        let op = PhysicalOp::HashJoin {
            predicates: vec![JoinPred::new(attr(&cat, "r", "j"), attr(&cat, "s", "j"))],
        };
        // Build of 100 pages: fits in 112 pages, spills at 16.
        let build = PlanStats::new(Interval::point(400.0), 512.0);
        let probe = stats(800.0);
        let c = m.op_cost(&op, &[build, probe], &stats(640.0));
        assert_eq!(c.io.lo(), 0.0, "best case: in-memory");
        assert!(c.io.hi() > 0.0, "worst case: partitioning I/O");
    }

    #[test]
    fn smaller_build_side_is_cheaper_when_spilling() {
        // Rationale for the paper's Figure 2: hash joins perform better
        // with the smaller input as build side.
        let cat = fixture();
        let env = Environment {
            mode: crate::PlanningMode::Point,
            memory: dqep_interval::ParamValue::Known(16.0),
            bindings: Bindings::new(),
            default_selectivity: 0.05,
        };
        let m = CostModel::new(&cat, &env);
        let op = PhysicalOp::HashJoin {
            predicates: vec![JoinPred::new(attr(&cat, "r", "j"), attr(&cat, "s", "j"))],
        };
        let small = stats(100.0);
        let large = stats(1000.0);
        let out = stats(200.0);
        let small_build = m.op_cost(&op, &[small, large], &out);
        let large_build = m.op_cost(&op, &[large, small], &out);
        assert!(small_build.total().hi() <= large_build.total().hi());
    }

    #[test]
    fn sort_cost_depends_on_memory() {
        let cat = fixture();
        let env = Environment::dynamic_uncertain_memory(&cat.config);
        let m = CostModel::new(&cat, &env);
        let a = attr(&cat, "r", "a");
        let c = m.op_cost(&PhysicalOp::Sort { attr: a }, &[stats(1000.0)], &stats(1000.0));
        // 250 pages: spills at 16 pages of memory, fits... 250 > 112, so
        // always spills, but more memory means no extra passes.
        assert!(c.io.lo() > 0.0);
        assert!(c.io.hi() >= c.io.lo());
        assert!(c.cpu.lo() > 0.0);
    }

    #[test]
    fn merge_join_is_cpu_only() {
        let cat = fixture();
        let env = Environment::static_compile_time(&cat.config);
        let m = CostModel::new(&cat, &env);
        let op = PhysicalOp::MergeJoin {
            predicates: vec![JoinPred::new(attr(&cat, "r", "j"), attr(&cat, "s", "j"))],
        };
        let c = m.op_cost(&op, &[stats(1000.0), stats(800.0)], &stats(1600.0));
        assert_eq!(c.io, Interval::ZERO);
        assert!(c.cpu.lo() > 0.0);
    }

    #[test]
    fn index_join_cost_scales_with_outer() {
        let cat = fixture();
        let env = Environment::static_compile_time(&cat.config);
        let m = CostModel::new(&cat, &env);
        let s = cat.relation_by_name("s").unwrap();
        let jp = JoinPred::new(attr(&cat, "r", "j"), attr(&cat, "s", "j"));
        let (idx, _) = cat.index_on_attr(attr(&cat, "s", "j")).unwrap();
        let op = PhysicalOp::IndexJoin {
            predicates: vec![jp],
            inner: s.id,
            index: idx,
            residual: None,
        };
        let small = m.op_cost(&op, &[stats(10.0)], &stats(16.0));
        let large = m.op_cost(&op, &[stats(1000.0)], &stats(1600.0));
        assert!(large.total().lo() > small.total().lo() * 50.0);
    }

    #[test]
    fn choose_plan_overhead_scales_with_alternatives() {
        let cat = fixture();
        let env = Environment::dynamic_compile_time(&cat.config);
        let m = CostModel::new(&cat, &env);
        let two = m.choose_plan_cost(2);
        let five = m.choose_plan_cost(5);
        assert!(five.total().lo() > two.total().lo());
        assert_eq!(two.io, Interval::ZERO);
    }

    #[test]
    fn interval_cost_encloses_bound_cost() {
        // Soundness: for any actual binding, the point cost computed after
        // binding lies within the compile-time interval cost.
        let cat = fixture();
        let dyn_env = Environment::dynamic_compile_time(&cat.config);
        let r = cat.relation_by_name("r").unwrap();
        let pred = SelectPred::unbound(attr(&cat, "r", "a"), CompareOp::Lt, HostVar(0));
        let (idx, _) = cat.index_on_attr(pred.attr).unwrap();
        let op = PhysicalOp::FilterBtreeScan { relation: r.id, index: idx, predicate: pred };

        let m = CostModel::new(&cat, &dyn_env);
        let sel = m.selectivity().selection(&pred, &dyn_env);
        let out = PlanStats::new(Interval::point(1000.0) * sel, 512.0);
        let wide = m.op_cost(&op, &[], &out);

        for v in [0i64, 100, 500, 999] {
            let bound = dyn_env.bind(&Bindings::new().with_value(HostVar(0), v));
            let mb = CostModel::new(&cat, &bound);
            let sel_b = mb.selectivity().selection(&pred, &bound);
            let out_b = PlanStats::new(Interval::point(1000.0) * sel_b, 512.0);
            let c = mb.op_cost(&op, &[], &out_b);
            assert!(
                wide.total().contains_interval(c.total()),
                "binding {v}: point cost {} outside interval {}",
                c.total(),
                wide.total()
            );
        }
    }

    #[test]
    fn clustered_index_scan_is_cheap_at_high_selectivity() {
        // A clustered index reads qualifying records sequentially, so even
        // at selectivity ~1 it costs about a file scan — unlike the
        // unclustered fetch-per-record model.
        let cat = CatalogBuilder::new(SystemConfig::paper_1994())
            .relation("c", 1000, 512, |r| r.attr("a", 1000.0).btree("a", true))
            .relation("u", 1000, 512, |r| r.attr("a", 1000.0).btree("a", false))
            .build()
            .unwrap();
        let env = Environment::static_compile_time(&cat.config);
        let m = CostModel::new(&cat, &env);
        let out = stats(900.0);
        let mut costs = std::collections::HashMap::new();
        for name in ["c", "u"] {
            let rel = cat.relation_by_name(name).unwrap();
            let pred = SelectPred::bound(rel.attr_id("a").unwrap(), CompareOp::Lt, 900);
            let (idx, _) = cat.index_on_attr(pred.attr).unwrap();
            let op = PhysicalOp::FilterBtreeScan { relation: rel.id, index: idx, predicate: pred };
            costs.insert(name, m.op_cost(&op, &[], &out).total().hi());
        }
        assert!(
            costs["c"] * 5.0 < costs["u"],
            "clustered {} should be far below unclustered {}",
            costs["c"],
            costs["u"]
        );
    }

    #[test]
    fn clustered_full_btree_scan_is_sequential() {
        let cat = CatalogBuilder::new(SystemConfig::paper_1994())
            .relation("c", 1000, 512, |r| r.attr("a", 1000.0).btree("a", true))
            .build()
            .unwrap();
        let env = Environment::static_compile_time(&cat.config);
        let m = CostModel::new(&cat, &env);
        let rel = cat.relation_by_name("c").unwrap();
        let (idx, info) = cat.index_on_attr(rel.attr_id("a").unwrap()).unwrap();
        assert!(info.clustered);
        let op = PhysicalOp::BtreeScan {
            relation: rel.id,
            index: idx,
            key_attr: rel.attr_id("a").unwrap(),
        };
        let c = m.op_cost(&op, &[], &stats(1000.0)).total().hi();
        // Sequential pages + descent, nowhere near 1000 random fetches.
        assert!(c < 1.0, "clustered full scan cost {c}");
    }

    #[test]
    #[should_panic(expected = "expects 2 input")]
    fn arity_mismatch_panics() {
        let cat = fixture();
        let env = Environment::static_compile_time(&cat.config);
        let m = CostModel::new(&cat, &env);
        let op = PhysicalOp::HashJoin {
            predicates: vec![JoinPred::new(attr(&cat, "r", "j"), attr(&cat, "s", "j"))],
        };
        let _ = m.op_cost(&op, &[stats(1.0)], &stats(1.0));
    }
}
