//! Optimizer errors.

use std::fmt;

use dqep_algebra::LogicalError;

/// Errors produced by [`crate::Optimizer::optimize`].
#[derive(Debug, Clone, PartialEq)]
pub enum OptimizerError {
    /// The input expression failed validation against the catalog.
    InvalidQuery(LogicalError),
    /// The query references more relations than the memo supports (64).
    TooManyRelations(usize),
    /// No plan could be constructed (e.g. a join group with no feasible
    /// physical expression — cannot happen for validated inputs, reported
    /// rather than panicking).
    NoPlanFound,
}

impl fmt::Display for OptimizerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptimizerError::InvalidQuery(e) => write!(f, "invalid query: {e}"),
            OptimizerError::TooManyRelations(n) => {
                write!(f, "query references {n} relations; at most 64 supported")
            }
            OptimizerError::NoPlanFound => f.write_str("no plan found"),
        }
    }
}

impl std::error::Error for OptimizerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OptimizerError::InvalidQuery(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LogicalError> for OptimizerError {
    fn from(e: LogicalError) -> Self {
        OptimizerError::InvalidQuery(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqep_catalog::RelationId;

    #[test]
    fn display_and_source() {
        let e = OptimizerError::InvalidQuery(LogicalError::UnknownRelation(RelationId(3)));
        assert!(e.to_string().contains("unknown relation R3"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&OptimizerError::NoPlanFound).is_none());
        assert!(OptimizerError::TooManyRelations(70).to_string().contains("70"));
    }
}
