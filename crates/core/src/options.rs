//! Search options and ablation switches.

/// Tuning knobs of the search engine.
///
/// The defaults reproduce the paper's prototype (its "most conservative"
/// configuration, Section 3); the other settings exist for the ablation
/// experiments in `dqep-bench`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchOptions {
    /// Interval-aware branch-and-bound: skip building a physical expression
    /// whose cost *lower* bound already exceeds the group's best *upper*
    /// bound. Guaranteed lossless (such plans are dominated). Default on.
    pub enable_pruning: bool,
    /// Drop a candidate whose cost is exactly *equal* to a retained plan
    /// ("it would be acceptable to make an arbitrary decision", Section 3).
    /// `None` (default) resolves by planning mode: tie-break in point mode
    /// (traditional optimizers pick one), keep both in interval mode (the
    /// paper's conservative prototype).
    pub tie_break_equal: Option<bool>,
    /// Consider bushy join trees (the paper's transformation rules "permit
    /// generation of all bushy trees"). When false, only left-deep trees
    /// (right join input must be a base relation) are explored — an
    /// ablation.
    pub bushy: bool,
    /// Share subplans across alternatives (plans as DAGs, Section 3). When
    /// false, every parent receives a private copy of its child plan —
    /// the tree-shaped representation the paper warns against; used by the
    /// sharing ablation to quantify the blow-up.
    pub dag_sharing: bool,
    /// Allow join expressions between disconnected relation sets. Off by
    /// default (the experimental queries are chain queries; cross products
    /// cannot be optimal there). Joins present in the *input* expression
    /// are always admitted.
    pub allow_cross_products: bool,
    /// Multi-point probing (Section 3's heuristic for pseudo-incomparable
    /// plans): before declaring two plans incomparable, evaluate both at
    /// this many sampled parameter points; if one is at least as cheap at
    /// every sample, prune the other. 0 disables (default — the paper's
    /// prototype deliberately omits it). Probing is heuristic: it can
    /// remove a plan that would have been optimal for an unsampled binding.
    pub probe_points: usize,
    /// Build the **exhaustive plan** of Section 3: declare *all* cost
    /// comparisons incomparable, so every feasible plan is retained and
    /// linked under choose-plan operators. "Because it includes all plans,
    /// it must also include the optimal one for each set of run-time
    /// bindings." Much larger plans for the same start-up-time choices;
    /// exists to demonstrate that the paper's delayed-comparison policy
    /// (the default) loses nothing relative to it.
    pub exhaustive: bool,
    /// Upper limit on frontier size per (group, properties); `usize::MAX`
    /// (default) reproduces the paper. Smaller caps trade plan robustness
    /// for plan size, keeping the cheapest-lower-bound plans.
    pub max_frontier: usize,
}

impl SearchOptions {
    /// The paper's prototype configuration.
    #[must_use]
    pub fn paper() -> SearchOptions {
        SearchOptions {
            enable_pruning: true,
            tie_break_equal: None,
            bushy: true,
            dag_sharing: true,
            allow_cross_products: false,
            probe_points: 0,
            exhaustive: false,
            max_frontier: usize::MAX,
        }
    }
}

impl Default for SearchOptions {
    fn default() -> Self {
        SearchOptions::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let o = SearchOptions::default();
        assert!(o.enable_pruning);
        assert_eq!(o.tie_break_equal, None);
        assert!(o.bushy);
        assert!(o.dag_sharing);
        assert!(!o.allow_cross_products);
        assert_eq!(o.probe_points, 0);
        assert!(!o.exhaustive);
        assert_eq!(o.max_frontier, usize::MAX);
        assert_eq!(o, SearchOptions::paper());
    }
}
