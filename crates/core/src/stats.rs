//! Optimizer run statistics.

/// Counters and measurements from one optimizer run, reported alongside
/// the plan. These feed the paper's Figures 5 (optimization time) and 6
/// (plan size) and the search-effort discussion of Section 3.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OptimizerStats {
    /// Memo groups created.
    pub groups: usize,
    /// Logical expressions in the memo after exploration.
    pub logical_exprs: usize,
    /// Complete logical trees represented by the memo (the paper's
    /// "logical alternative plans considered").
    pub logical_trees: f64,
    /// Physical expressions constructed and costed.
    pub physical_considered: usize,
    /// Physical expressions surviving in frontiers.
    pub physical_retained: usize,
    /// Candidates skipped because their cost lower bound exceeded the
    /// group's best upper bound (interval branch-and-bound).
    pub pruned_by_bound: usize,
    /// Plans removed by multi-point probing (0 unless the heuristic is on).
    pub pruned_by_probing: usize,
    /// Sum of frontier sizes over all (group, properties) pairs.
    pub frontier_plans: usize,
    /// Largest single frontier.
    pub max_frontier: usize,
    /// Distinct operator nodes in the final plan DAG (Figure 6 metric).
    pub plan_nodes: usize,
    /// Number of choose-plan operators in the final plan.
    pub choose_plans: usize,
    /// Number of complete static plans contained in the final plan.
    pub contained_plans: f64,
    /// Wall-clock optimization time in seconds (measured).
    pub optimization_seconds: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zeroed() {
        let s = OptimizerStats::default();
        assert_eq!(s.groups, 0);
        assert_eq!(s.logical_trees, 0.0);
        assert_eq!(s.optimization_seconds, 0.0);
    }
}
