//! Multi-point probing: the heuristic comparison of Section 3.
//!
//! "A more realistic, though heuristic, approach is to evaluate the cost
//! function for a number of possible parameter values and to surmise that
//! if one plan is estimated more expensive than the other for all these
//! parameter values, it is always the more expensive plan and therefore can
//! be dropped from further consideration."
//!
//! Probing maps sampled selectivities to host-variable values (via the
//! predicate attribute's domain) and sampled memory grants, then evaluates
//! both plans' cost functions at each sample with the ordinary start-up
//! machinery. It is *heuristic*: two plans that cross between samples can
//! be mis-ordered, which is why the paper's prototype (and this crate's
//! default) leaves it off.

use std::sync::Arc;

use dqep_catalog::Catalog;
use dqep_cost::{Bindings, Environment};
use dqep_plan::{evaluate_startup, PlanNode};

use crate::context::QueryContext;

/// A set of sampled parameter points for heuristic plan comparison.
#[derive(Debug, Clone)]
pub struct ProbePoints {
    /// Sampled selectivities in `(0, 1)`, applied to every host variable.
    pub selectivities: Vec<f64>,
    /// Sampled memory grants in pages (paired cyclically with
    /// selectivities).
    pub memories: Vec<f64>,
}

impl ProbePoints {
    /// `k` evenly spaced selectivity quantiles and memory grants across the
    /// catalog's uncertain ranges.
    #[must_use]
    pub fn standard(k: usize, catalog: &Catalog) -> ProbePoints {
        let k = k.max(1);
        let cfg = &catalog.config;
        let sel = (1..=k).map(|i| i as f64 / (k as f64 + 1.0)).collect();
        let mem = (1..=k)
            .map(|i| {
                cfg.memory_min_pages
                    + (cfg.memory_max_pages - cfg.memory_min_pages) * i as f64 / (k as f64 + 1.0)
            })
            .collect();
        ProbePoints {
            selectivities: sel,
            memories: mem,
        }
    }

    /// The bindings of sample `i`: every host variable set to the value
    /// whose predicate selectivity is `selectivities[i]`, memory to
    /// `memories[i]`.
    #[must_use]
    pub fn bindings(&self, i: usize, ctx: &QueryContext, catalog: &Catalog) -> Bindings {
        let s = self.selectivities[i % self.selectivities.len()];
        let m = self.memories[i % self.memories.len()];
        let mut b = Bindings::new().with_memory(m);
        for (&var, &attr) in &ctx.host_attrs {
            let domain = catalog.attribute(attr).domain_size;
            b = b.with_value(var, (s * domain).floor() as i64);
        }
        b
    }

    /// Whether plan `a` is at least as cheap as plan `b` at **every**
    /// sample — the heuristic domination test.
    #[must_use]
    pub fn dominates(
        &self,
        a: &Arc<PlanNode>,
        b: &Arc<PlanNode>,
        ctx: &QueryContext,
        catalog: &Catalog,
        env: &Environment,
    ) -> bool {
        let n = self.selectivities.len().max(self.memories.len());
        for i in 0..n {
            let bindings = self.bindings(i, ctx, catalog);
            let ca = evaluate_startup(a, catalog, env, &bindings).predicted_run_seconds;
            let cb = evaluate_startup(b, catalog, env, &bindings).predicted_run_seconds;
            if ca > cb {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqep_catalog::{CatalogBuilder, SystemConfig};

    fn catalog() -> Catalog {
        CatalogBuilder::new(SystemConfig::paper_1994())
            .relation("r", 1000, 512, |r| r.attr("a", 1000.0).btree("a", false))
            .build()
            .unwrap()
    }

    #[test]
    fn standard_points_span_ranges() {
        let cat = catalog();
        let p = ProbePoints::standard(3, &cat);
        assert_eq!(p.selectivities, vec![0.25, 0.5, 0.75]);
        assert_eq!(p.memories.len(), 3);
        assert!(p.memories.iter().all(|&m| (16.0..=112.0).contains(&m)));
        // k = 0 clamps to one point.
        assert_eq!(ProbePoints::standard(0, &cat).selectivities.len(), 1);
    }

    #[test]
    fn bindings_map_selectivity_to_values() {
        use dqep_algebra::{CompareOp, HostVar, LogicalExpr, SelectPred};
        let cat = catalog();
        let rel = cat.relation_by_name("r").unwrap();
        let q = LogicalExpr::get(rel.id).select(SelectPred::unbound(
            rel.attr_id("a").unwrap(),
            CompareOp::Lt,
            HostVar(0),
        ));
        let ctx = QueryContext::build(&q, &cat).unwrap();
        let p = ProbePoints::standard(3, &cat);
        let b = p.bindings(1, &ctx, &cat);
        // selectivity 0.5 over domain 1000 → value 500.
        assert_eq!(b.value(HostVar(0)), Some(500));
        assert!(b.memory_pages.is_some());
    }
}
