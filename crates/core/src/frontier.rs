//! Plan frontiers: sets of mutually non-dominated alternatives.

use std::sync::Arc;

use dqep_interval::PartialCmp;
use dqep_plan::PlanNode;

/// The optimization result for one (group, required-properties) pair: all
/// plans that are not *dominated* by another plan of the same pair.
///
/// In point mode (traditional optimization) all costs are comparable and
/// the frontier holds exactly one plan. In interval mode overlapping costs
/// are incomparable, and every plan that might be cheapest for *some*
/// run-time binding survives ("a dynamic plan is guaranteed to include all
/// potentially optimal plans for all run-time bindings", paper Section 3).
#[derive(Debug, Default)]
pub struct Frontier {
    plans: Vec<Arc<PlanNode>>,
    /// The node parents reference: the single plan, or a choose-plan over
    /// all of them. Set by the search once insertion finishes.
    pub combined: Option<Arc<PlanNode>>,
}

impl Frontier {
    /// An empty frontier.
    #[must_use]
    pub fn new() -> Frontier {
        Frontier::default()
    }

    /// The retained plans.
    #[must_use]
    pub fn plans(&self) -> &[Arc<PlanNode>] {
        &self.plans
    }

    /// Number of retained plans.
    #[must_use]
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// Whether no plan was retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }

    /// The cheapest *upper* cost bound over retained plans (`+inf` when
    /// empty). This is the only bound interval branch-and-bound may prune
    /// against: a candidate whose *lower* bound exceeds it is dominated
    /// (paper Section 5).
    #[must_use]
    pub fn best_upper(&self) -> f64 {
        self.plans
            .iter()
            .map(|p| p.total_cost.total().hi())
            .fold(f64::INFINITY, f64::min)
    }

    /// Inserts a candidate, maintaining the Pareto property:
    ///
    /// * dropped if an existing plan dominates it (never more expensive);
    /// * dropped if `tie_break` and an existing plan's cost is exactly
    ///   equal (the arbitrary-decision rule of Section 3);
    /// * otherwise inserted, evicting every existing plan it dominates.
    ///
    /// Returns `true` when the candidate was retained.
    pub fn insert(&mut self, candidate: Arc<PlanNode>, tie_break: bool) -> bool {
        let cand_cost = candidate.total_cost.total();
        for p in &self.plans {
            let existing = p.total_cost.total();
            if existing.dominates(cand_cost) {
                return false;
            }
            if tie_break && existing.compare(cand_cost) == PartialCmp::Equal {
                return false;
            }
        }
        self.plans
            .retain(|p| !cand_cost.dominates(p.total_cost.total()));
        self.plans.push(candidate);
        true
    }

    /// Inserts without any pruning — used by the exhaustive-plan mode of
    /// Section 3, where every cost comparison is declared incomparable.
    pub fn insert_unconditional(&mut self, candidate: Arc<PlanNode>) {
        self.plans.push(candidate);
    }

    /// Applies a caller-supplied domination test (e.g. multi-point probing)
    /// pairwise, removing plans found dominated. `dominates(a, b)` must
    /// mean "a is never more expensive than b".
    pub fn prune_with(&mut self, dominates: impl Fn(&Arc<PlanNode>, &Arc<PlanNode>) -> bool) {
        let mut keep = vec![true; self.plans.len()];
        for i in 0..self.plans.len() {
            if !keep[i] {
                continue;
            }
            for (j, kj) in keep.iter_mut().enumerate() {
                if i == j || !*kj {
                    continue;
                }
                if dominates(&self.plans[i], &self.plans[j]) {
                    *kj = false;
                }
            }
        }
        let mut it = keep.iter();
        self.plans.retain(|_| *it.next().expect("keep mask aligned"));
    }

    /// Truncates to the `cap` plans with the lowest cost lower bounds
    /// (cheapest-possible first). A cap below the frontier size sacrifices
    /// the optimality guarantee; used only by ablations.
    pub fn enforce_cap(&mut self, cap: usize) {
        if self.plans.len() <= cap {
            return;
        }
        self.plans.sort_by(|a, b| {
            a.total_cost
                .total()
                .lo()
                .total_cmp(&b.total_cost.total().lo())
        });
        self.plans.truncate(cap.max(1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqep_algebra::PhysicalOp;
    use dqep_catalog::RelationId;
    use dqep_cost::{Cost, PlanStats};
    use dqep_interval::Interval;
    use dqep_plan::PlanNodeBuilder;

    fn plan(b: &mut PlanNodeBuilder, lo: f64, hi: f64) -> Arc<PlanNode> {
        b.node(
            PhysicalOp::FileScan { relation: RelationId(0) },
            vec![],
            PlanStats::new(Interval::point(1.0), 512.0),
            Cost::cpu_only(Interval::new(lo, hi)),
        )
    }

    #[test]
    fn keeps_incomparable_drops_dominated() {
        let mut b = PlanNodeBuilder::new();
        let mut f = Frontier::new();
        assert!(f.insert(plan(&mut b, 0.0, 10.0), false));
        assert!(f.insert(plan(&mut b, 1.0, 2.0), false), "overlapping: kept");
        assert_eq!(f.len(), 2);
        // Dominated by [1,2] (lo 3 > hi 2): dropped.
        assert!(!f.insert(plan(&mut b, 3.0, 4.0), false));
        assert_eq!(f.len(), 2);
        assert_eq!(f.best_upper(), 2.0);
    }

    #[test]
    fn new_plan_evicts_dominated_incumbents() {
        let mut b = PlanNodeBuilder::new();
        let mut f = Frontier::new();
        f.insert(plan(&mut b, 5.0, 6.0), false);
        f.insert(plan(&mut b, 4.0, 9.0), false);
        // [0, 1] dominates both.
        assert!(f.insert(plan(&mut b, 0.0, 1.0), false));
        assert_eq!(f.len(), 1);
        assert_eq!(f.best_upper(), 1.0);
    }

    #[test]
    fn point_mode_with_tie_break_keeps_single_plan() {
        let mut b = PlanNodeBuilder::new();
        let mut f = Frontier::new();
        assert!(f.insert(plan(&mut b, 2.0, 2.0), true));
        assert!(!f.insert(plan(&mut b, 2.0, 2.0), true), "equal cost: tie-broken");
        assert!(!f.insert(plan(&mut b, 3.0, 3.0), true));
        assert!(f.insert(plan(&mut b, 1.0, 1.0), true));
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn conservative_mode_keeps_equal_cost_plans() {
        let mut b = PlanNodeBuilder::new();
        let mut f = Frontier::new();
        assert!(f.insert(plan(&mut b, 2.0, 2.0), false));
        assert!(f.insert(plan(&mut b, 2.0, 2.0), false), "paper's naive policy");
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn prune_with_external_test() {
        let mut b = PlanNodeBuilder::new();
        let mut f = Frontier::new();
        let a = plan(&mut b, 0.0, 10.0);
        let c = plan(&mut b, 1.0, 2.0);
        f.insert(a.clone(), false);
        f.insert(c.clone(), false);
        // External knowledge says c always beats a.
        let c_id = c.id;
        f.prune_with(|x, y| x.id == c_id && y.id == a.id);
        assert_eq!(f.len(), 1);
        assert_eq!(f.plans()[0].id, c_id);
    }

    #[test]
    fn cap_keeps_lowest_lower_bounds() {
        let mut b = PlanNodeBuilder::new();
        let mut f = Frontier::new();
        f.insert(plan(&mut b, 3.0, 100.0), false);
        f.insert(plan(&mut b, 0.5, 100.0), false);
        f.insert(plan(&mut b, 2.0, 100.0), false);
        f.enforce_cap(2);
        assert_eq!(f.len(), 2);
        let los: Vec<f64> = f.plans().iter().map(|p| p.total_cost.total().lo()).collect();
        assert_eq!(los, vec![0.5, 2.0]);
    }

    #[test]
    fn empty_frontier_bound_is_infinite() {
        let f = Frontier::new();
        assert!(f.is_empty());
        assert_eq!(f.best_upper(), f64::INFINITY);
    }
}
