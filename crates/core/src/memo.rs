//! The memo: groups of logically equivalent expressions.
//!
//! The Volcano optimizer generator's search engine "uses a top-down,
//! memoizing variant of dynamic programming" (paper Section 2). The memo
//! holds one **group** per logically distinct sub-result; each group holds
//! the deduplicated **logical expressions** that produce it, and (during
//! search) the optimized physical **frontiers** per required physical
//! property.
//!
//! Group identity ("fingerprint") is the set of base relations covered,
//! with selections always applied: `Get(R)` and `Select(Get(R))` are kept
//! as distinct leaf groups, and every multi-relation group covers fully
//! selected inputs.

use std::collections::HashMap;

use dqep_algebra::{PhysProps, RelSet};
use dqep_catalog::RelationId;

use crate::frontier::Frontier;

/// Index of a group within the memo.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroupId(pub u32);

impl std::fmt::Display for GroupId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// Logical fingerprint of a group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GroupKey {
    /// A bare base relation (`Get(R)`).
    Get(RelationId),
    /// A base relation with all its selections applied.
    SelectedLeaf(RelationId),
    /// A join result covering the given relations (all selections applied).
    Join(RelSet),
}

impl GroupKey {
    /// The relations covered by the group.
    #[must_use]
    pub fn rels(self) -> RelSet {
        match self {
            GroupKey::Get(r) | GroupKey::SelectedLeaf(r) => RelSet::singleton(r),
            GroupKey::Join(s) => s,
        }
    }
}

/// The logical operator of a memo expression. Children are group
/// references, making expressions cheap to deduplicate.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum LogicalOp {
    /// Retrieve a base relation. Leaf; no children.
    Get(RelationId),
    /// Apply the relation's selections to its `Get` group.
    Select {
        /// The relation being selected (predicates live in the
        /// [`crate::QueryContext`]).
        relation: RelationId,
    },
    /// Join two groups (predicates derived from the query's join graph).
    Join {
        /// Left input group.
        left: GroupId,
        /// Right input group.
        right: GroupId,
    },
}

/// A deduplicated logical expression within a group.
#[derive(Debug, Clone)]
pub struct LogicalMExpr {
    /// The operator.
    pub op: LogicalOp,
}

/// One memo group.
#[derive(Debug)]
pub struct Group {
    /// Fingerprint.
    pub key: GroupKey,
    /// Deduplicated logical expressions.
    pub exprs: Vec<LogicalMExpr>,
    /// Whether exploration reached a fixpoint for this group.
    pub explored: bool,
    /// Optimized physical frontiers per required property, filled during
    /// search.
    pub plans: HashMap<PhysProps, Frontier>,
}

/// The memo.
#[derive(Debug, Default)]
pub struct Memo {
    groups: Vec<Group>,
    by_key: HashMap<GroupKey, GroupId>,
}

impl Memo {
    /// An empty memo.
    #[must_use]
    pub fn new() -> Memo {
        Memo::default()
    }

    /// The group for `key`, creating it if necessary.
    pub fn group_for(&mut self, key: GroupKey) -> GroupId {
        if let Some(&gid) = self.by_key.get(&key) {
            return gid;
        }
        let gid = GroupId(self.groups.len() as u32);
        self.groups.push(Group {
            key,
            exprs: Vec::new(),
            explored: false,
            plans: HashMap::new(),
        });
        self.by_key.insert(key, gid);
        gid
    }

    /// Looks up an existing group.
    #[must_use]
    pub fn find(&self, key: GroupKey) -> Option<GroupId> {
        self.by_key.get(&key).copied()
    }

    /// Adds `op` to `gid` unless an identical expression is already
    /// present. Returns whether it was new.
    pub fn add_expr(&mut self, gid: GroupId, op: LogicalOp) -> bool {
        let group = &mut self.groups[gid.0 as usize];
        if group.exprs.iter().any(|e| e.op == op) {
            return false;
        }
        group.exprs.push(LogicalMExpr { op });
        true
    }

    /// Immutable group access.
    ///
    /// # Panics
    /// Panics for ids not issued by this memo.
    #[must_use]
    pub fn group(&self, gid: GroupId) -> &Group {
        &self.groups[gid.0 as usize]
    }

    /// Mutable group access.
    ///
    /// # Panics
    /// Panics for ids not issued by this memo.
    pub fn group_mut(&mut self, gid: GroupId) -> &mut Group {
        &mut self.groups[gid.0 as usize]
    }

    /// Number of groups.
    #[must_use]
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Total number of logical expressions across groups.
    #[must_use]
    pub fn expr_count(&self) -> usize {
        self.groups.iter().map(|g| g.exprs.len()).sum()
    }

    /// Number of complete logical expression *trees* rooted at `gid` — the
    /// "logical alternative plans considered by the search engine" metric
    /// reported with the paper's query definitions. Computed as
    /// `trees(g) = Σ_expr Π_child trees(child)` with memoization; leaves
    /// count 1.
    #[must_use]
    pub fn logical_tree_count(&self, gid: GroupId) -> f64 {
        let mut memo = HashMap::new();
        self.trees(gid, &mut memo)
    }

    fn trees(&self, gid: GroupId, memo: &mut HashMap<GroupId, f64>) -> f64 {
        if let Some(&v) = memo.get(&gid) {
            return v;
        }
        // Groups form a DAG by construction (children cover strictly
        // smaller relation sets), so recursion terminates.
        let mut total = 0.0;
        for e in &self.group(gid).exprs {
            total += match e.op {
                LogicalOp::Get(_) => 1.0,
                LogicalOp::Select { relation } => {
                    let child = self
                        .find(GroupKey::Get(relation))
                        .expect("select's child group exists");
                    self.trees(child, memo)
                }
                LogicalOp::Join { left, right } => {
                    self.trees(left, memo) * self.trees(right, memo)
                }
            };
        }
        let total = total.max(1.0);
        memo.insert(gid, total);
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(i: u32) -> RelationId {
        RelationId(i)
    }

    #[test]
    fn group_creation_is_idempotent() {
        let mut m = Memo::new();
        let a = m.group_for(GroupKey::Get(rel(0)));
        let b = m.group_for(GroupKey::Get(rel(0)));
        assert_eq!(a, b);
        assert_eq!(m.group_count(), 1);
        let c = m.group_for(GroupKey::SelectedLeaf(rel(0)));
        assert_ne!(a, c);
        assert_eq!(m.find(GroupKey::SelectedLeaf(rel(0))), Some(c));
        assert_eq!(m.find(GroupKey::Join(RelSet::singleton(rel(1)))), None);
    }

    #[test]
    fn expression_dedup() {
        let mut m = Memo::new();
        let g = m.group_for(GroupKey::Get(rel(0)));
        assert!(m.add_expr(g, LogicalOp::Get(rel(0))));
        assert!(!m.add_expr(g, LogicalOp::Get(rel(0))));
        assert_eq!(m.group(g).exprs.len(), 1);
        assert_eq!(m.expr_count(), 1);
    }

    #[test]
    fn logical_tree_count_multiplies_joins() {
        let mut m = Memo::new();
        let g0 = m.group_for(GroupKey::Get(rel(0)));
        m.add_expr(g0, LogicalOp::Get(rel(0)));
        let g1 = m.group_for(GroupKey::Get(rel(1)));
        m.add_expr(g1, LogicalOp::Get(rel(1)));
        let j = m.group_for(GroupKey::Join(RelSet::from_iter([rel(0), rel(1)])));
        // Two commuted join expressions: two logical trees.
        m.add_expr(j, LogicalOp::Join { left: g0, right: g1 });
        m.add_expr(j, LogicalOp::Join { left: g1, right: g0 });
        assert_eq!(m.logical_tree_count(j), 2.0);
        assert_eq!(m.logical_tree_count(g0), 1.0);
    }

    #[test]
    fn select_counts_child_trees() {
        let mut m = Memo::new();
        let g = m.group_for(GroupKey::Get(rel(3)));
        m.add_expr(g, LogicalOp::Get(rel(3)));
        let s = m.group_for(GroupKey::SelectedLeaf(rel(3)));
        m.add_expr(s, LogicalOp::Select { relation: rel(3) });
        assert_eq!(m.logical_tree_count(s), 1.0);
    }

    #[test]
    fn group_key_rels() {
        assert_eq!(GroupKey::Get(rel(2)).rels(), RelSet::singleton(rel(2)));
        let set = RelSet::from_iter([rel(0), rel(5)]);
        assert_eq!(GroupKey::Join(set).rels(), set);
    }
}
