//! The top-down, memoizing search engine with incomparable costs.
//!
//! `optimize_group(group, properties)` fills the group's [`Frontier`] for
//! the requested physical properties by applying **implementation rules**
//! (File-Scan/B-tree-Scan for Get, Filter/Filter-B-tree-Scan for Select,
//! Hash-/Merge-/Index-Join for Join) and **enforcers** (Sort for order;
//! Choose-Plan materializes automatically whenever a frontier retains more
//! than one plan). Children are optimized recursively and memoized per
//! (group, properties) — the Volcano discipline, extended so that a group
//! optimization returns a *set* of incomparable plans instead of one.
//!
//! Parents reference a child group's **combined** plan — its single
//! frontier plan, or a choose-plan node over the frontier — which makes the
//! final plan a DAG with shared subexpressions and keeps both search effort
//! and plan size polynomial while the number of *contained* static plans
//! grows exponentially (paper Section 3, "Techniques to Reduce the Search
//! Effort").

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Instant;

use dqep_algebra::{
    LogicalExpr, PhysProps, PhysicalOp, SelectPred, SortOrder,
};
use dqep_catalog::{Catalog, IndexId, RelationId};
use dqep_cost::{CostModel, Environment, PlanStats, PlanningMode};
use dqep_interval::Interval;
use dqep_plan::{PlanNode, PlanNodeBuilder};

use crate::context::QueryContext;
use crate::error::OptimizerError;
use crate::frontier::Frontier;
use crate::memo::{GroupId, GroupKey, LogicalOp, Memo};
use crate::options::SearchOptions;
use crate::probe::ProbePoints;
use crate::rules;
use crate::stats::OptimizerStats;

/// The optimizer façade: one per (catalog, environment, options) triple.
///
/// The environment's [`PlanningMode`] selects the scenario: point mode
/// yields traditional single-plan optimization; interval mode yields
/// dynamic plans.
pub struct Optimizer<'a> {
    catalog: &'a Catalog,
    env: &'a Environment,
    options: SearchOptions,
}

/// The product of an optimizer run.
#[derive(Debug)]
pub struct OptimizeResult {
    /// The optimized plan — static (point mode) or dynamic (interval mode
    /// with uncertainty).
    pub plan: Arc<PlanNode>,
    /// Search statistics.
    pub stats: OptimizerStats,
}

impl<'a> Optimizer<'a> {
    /// Creates an optimizer with the paper's default options.
    #[must_use]
    pub fn new(catalog: &'a Catalog, env: &'a Environment) -> Optimizer<'a> {
        Optimizer::with_options(catalog, env, SearchOptions::paper())
    }

    /// Creates an optimizer with explicit options (ablations).
    #[must_use]
    pub fn with_options(
        catalog: &'a Catalog,
        env: &'a Environment,
        options: SearchOptions,
    ) -> Optimizer<'a> {
        Optimizer {
            catalog,
            env,
            options,
        }
    }

    /// Optimizes a query: validates it, seeds and explores the memo, runs
    /// the property-driven search, and returns the combined plan of the
    /// root group.
    pub fn optimize(&self, query: &LogicalExpr) -> Result<OptimizeResult, OptimizerError> {
        self.optimize_with_props(query, PhysProps::ANY)
    }

    /// Optimizes a query for required root physical properties — e.g.
    /// `PhysProps::sorted(attr)` for an `ORDER BY`. The order is produced
    /// by order-delivering access paths, merge joins, or Sort enforcers,
    /// whichever the (interval) costs favour; with incomparable costs the
    /// usual choose-plan alternatives arise, all delivering the order.
    pub fn optimize_with_props(
        &self,
        query: &LogicalExpr,
        props: PhysProps,
    ) -> Result<OptimizeResult, OptimizerError> {
        let start = Instant::now();
        let ctx = QueryContext::build(query, self.catalog)?;
        let mut memo = Memo::new();
        let root = seed(&mut memo, query, &ctx);
        rules::explore(&mut memo, &ctx, &self.options);

        let mut search = Search {
            memo,
            ctx,
            catalog: self.catalog,
            env: self.env,
            model: CostModel::new(self.catalog, self.env),
            opts: self.options,
            builder: PlanNodeBuilder::new(),
            group_stats: HashMap::new(),
            in_progress: HashSet::new(),
            physical_considered: 0,
            pruned_by_bound: 0,
            pruned_by_probing: 0,
            probe: (self.options.probe_points > 0)
                .then(|| ProbePoints::standard(self.options.probe_points, self.catalog)),
        };
        search.optimize_group(root, props)?;
        let combined = search
            .combined(root, props)
            .ok_or(OptimizerError::NoPlanFound)?;
        let plan = if self.options.dag_sharing {
            combined
        } else {
            // Sharing ablation: expand the DAG into the tree representation
            // the paper warns against. Exponential for complex dynamic
            // plans; intended for small queries.
            search.expand_tree(&combined)
        };

        let mut stats = OptimizerStats {
            groups: search.memo.group_count(),
            logical_exprs: search.memo.expr_count(),
            logical_trees: search.memo.logical_tree_count(root),
            physical_considered: search.physical_considered,
            pruned_by_bound: search.pruned_by_bound,
            pruned_by_probing: search.pruned_by_probing,
            plan_nodes: dqep_plan::dag::node_count(&plan),
            choose_plans: dqep_plan::dag::choose_plan_count(&plan),
            contained_plans: dqep_plan::dag::contained_plan_count(&plan),
            ..OptimizerStats::default()
        };
        for g in 0..search.memo.group_count() {
            for f in search.memo.group(GroupId(g as u32)).plans.values() {
                stats.frontier_plans += f.len();
                stats.max_frontier = stats.max_frontier.max(f.len());
                stats.physical_retained += f.len();
            }
        }
        stats.optimization_seconds = start.elapsed().as_secs_f64();
        Ok(OptimizeResult { plan, stats })
    }
}

/// Seeds the memo from the input expression: leaf groups for every
/// relation (selections normalized onto their relation — selections
/// commute with the equi-joins considered here) and one join expression
/// per join in the input.
fn seed(memo: &mut Memo, expr: &LogicalExpr, ctx: &QueryContext) -> GroupId {
    match expr {
        LogicalExpr::Get { relation } => leaf_group(memo, *relation, ctx),
        LogicalExpr::Select { input, .. } => seed(memo, input, ctx),
        LogicalExpr::Join { left, right, .. } => {
            let l = seed(memo, left, ctx);
            let r = seed(memo, right, ctx);
            let rels = memo.group(l).key.rels().union(memo.group(r).key.rels());
            let g = memo.group_for(GroupKey::Join(rels));
            memo.add_expr(g, LogicalOp::Join { left: l, right: r });
            g
        }
    }
}

fn leaf_group(memo: &mut Memo, rel: RelationId, ctx: &QueryContext) -> GroupId {
    let get = memo.group_for(GroupKey::Get(rel));
    memo.add_expr(get, LogicalOp::Get(rel));
    if ctx.selects_on(rel).is_empty() {
        get
    } else {
        let sel = memo.group_for(GroupKey::SelectedLeaf(rel));
        memo.add_expr(sel, LogicalOp::Select { relation: rel });
        sel
    }
}

struct Search<'a> {
    memo: Memo,
    ctx: QueryContext,
    catalog: &'a Catalog,
    env: &'a Environment,
    model: CostModel<'a>,
    opts: SearchOptions,
    builder: PlanNodeBuilder,
    group_stats: HashMap<GroupId, PlanStats>,
    in_progress: HashSet<(GroupId, PhysProps)>,
    physical_considered: usize,
    pruned_by_bound: usize,
    pruned_by_probing: usize,
    probe: Option<ProbePoints>,
}

impl Search<'_> {
    fn tie_break(&self) -> bool {
        self.opts
            .tie_break_equal
            .unwrap_or(self.env.mode == PlanningMode::Point)
    }

    fn sel(&self, p: &SelectPred) -> Interval {
        self.model.selectivity().selection(p, self.env)
    }

    /// Logical stream statistics of a group (cardinality interval and row
    /// width) — identical for all expressions of the group.
    fn stats_of(&mut self, gid: GroupId) -> PlanStats {
        if let Some(&s) = self.group_stats.get(&gid) {
            return s;
        }
        let key = self.memo.group(gid).key;
        let s = match key {
            GroupKey::Get(r) => {
                let rel = self.catalog.relation(r);
                PlanStats::new(
                    Interval::point(rel.stats.cardinality as f64),
                    rel.stats.record_len as f64,
                )
            }
            GroupKey::SelectedLeaf(r) => {
                let rel = self.catalog.relation(r);
                let mut card = Interval::point(rel.stats.cardinality as f64);
                for p in self.ctx.selects_on(r).to_vec() {
                    card = card * self.sel(&p);
                }
                PlanStats::new(card, rel.stats.record_len as f64)
            }
            GroupKey::Join(rels) => {
                let mut card = Interval::point(1.0);
                let mut row = 0.0;
                for r in rels.iter() {
                    let rel = self.catalog.relation(r);
                    let mut leaf = Interval::point(rel.stats.cardinality as f64);
                    for p in self.ctx.selects_on(r).to_vec() {
                        leaf = leaf * self.sel(&p);
                    }
                    card = card * leaf;
                    row += rel.stats.record_len as f64;
                }
                let jsel = self.model.selectivity().join(&self.ctx.preds_within(rels));
                PlanStats::new(card.scale(jsel), row)
            }
        };
        self.group_stats.insert(gid, s);
        s
    }

    /// The node parents use for (group, props): the frontier's single plan
    /// or its choose-plan. `None` if not yet optimized or empty.
    fn combined(&self, gid: GroupId, props: PhysProps) -> Option<Arc<PlanNode>> {
        self.memo
            .group(gid)
            .plans
            .get(&props)
            .and_then(|f| f.combined.clone())
    }

    /// Optimizes (group, props), memoized.
    fn optimize_group(&mut self, gid: GroupId, props: PhysProps) -> Result<(), OptimizerError> {
        if self.memo.group(gid).plans.contains_key(&props) {
            return Ok(());
        }
        assert!(
            self.in_progress.insert((gid, props)),
            "cyclic optimization of {gid} {props}"
        );
        let mut frontier = Frontier::new();
        match self.memo.group(gid).key {
            GroupKey::Get(r) => self.impl_get(r, props, &mut frontier)?,
            GroupKey::SelectedLeaf(r) => self.impl_selected(r, gid, props, &mut frontier)?,
            GroupKey::Join(_) => self.impl_join(gid, props, &mut frontier)?,
        }
        // Sort enforcer: any required order can be enforced over the
        // group's Any-plan.
        if let SortOrder::Asc(attr) = props.order {
            self.optimize_group(gid, PhysProps::ANY)?;
            if let Some(child) = self.combined(gid, PhysProps::ANY) {
                let stats = self.stats_of(gid);
                self.consider(
                    &mut frontier,
                    PhysicalOp::Sort { attr },
                    vec![child],
                    &[stats],
                    stats,
                );
            }
        }

        if frontier.len() > 1 {
            if let Some(probe) = self.probe.take() {
                let before = frontier.len();
                frontier.prune_with(|a, b| {
                    probe.dominates(a, b, &self.ctx, self.catalog, self.env)
                });
                self.pruned_by_probing += before - frontier.len();
                self.probe = Some(probe);
            }
        }
        frontier.enforce_cap(self.opts.max_frontier);

        let combined = match frontier.len() {
            0 => return Err(OptimizerError::NoPlanFound),
            1 => frontier.plans()[0].clone(),
            n => {
                let cost = self.model.choose_plan_cost(n);
                self.builder.choose_plan(frontier.plans().to_vec(), cost)
            }
        };
        frontier.combined = Some(combined);
        self.in_progress.remove(&(gid, props));
        self.memo.group_mut(gid).plans.insert(props, frontier);
        Ok(())
    }

    /// Costs a candidate and inserts it into the frontier, with interval
    /// branch-and-bound: a candidate whose cost *lower* bound exceeds the
    /// frontier's best *upper* bound is dominated and skipped (only the
    /// lower bound may be used — paper Section 5).
    fn consider(
        &mut self,
        frontier: &mut Frontier,
        op: PhysicalOp,
        children: Vec<Arc<PlanNode>>,
        child_stats: &[PlanStats],
        out_stats: PlanStats,
    ) {
        self.physical_considered += 1;
        if self.opts.enable_pruning && !self.opts.exhaustive {
            let child_lo: f64 = children
                .iter()
                .map(|c| c.total_cost.total().lo())
                .sum();
            if child_lo > frontier.best_upper() {
                self.pruned_by_bound += 1;
                return;
            }
        }
        let self_cost = self.model.op_cost(&op, child_stats, &out_stats);
        let node = self.builder.node(op, children, out_stats, self_cost);
        if self.opts.exhaustive {
            frontier.insert_unconditional(node);
            return;
        }
        if self.opts.enable_pruning && node.total_cost.total().lo() > frontier.best_upper() {
            self.pruned_by_bound += 1;
            return;
        }
        frontier.insert(node, self.tie_break());
    }

    fn insert_node(&mut self, frontier: &mut Frontier, node: Arc<PlanNode>) {
        self.physical_considered += 1;
        if self.opts.exhaustive {
            frontier.insert_unconditional(node);
            return;
        }
        if self.opts.enable_pruning && node.total_cost.total().lo() > frontier.best_upper() {
            self.pruned_by_bound += 1;
            return;
        }
        frontier.insert(node, self.tie_break());
    }

    // ---- implementation rules -----------------------------------------

    fn impl_get(
        &mut self,
        r: RelationId,
        props: PhysProps,
        frontier: &mut Frontier,
    ) -> Result<(), OptimizerError> {
        let stats = self.stats_of(self.memo.find(GroupKey::Get(r)).expect("seeded"));
        match props.order {
            SortOrder::None => {
                self.consider(frontier, PhysicalOp::FileScan { relation: r }, vec![], &[], stats);
                for (idx, info) in self.indexes_of(r) {
                    self.consider(
                        frontier,
                        PhysicalOp::BtreeScan {
                            relation: r,
                            index: idx,
                            key_attr: info,
                        },
                        vec![],
                        &[],
                        stats,
                    );
                }
            }
            SortOrder::Asc(a) => {
                for (idx, key) in self.indexes_of(r) {
                    if key == a {
                        self.consider(
                            frontier,
                            PhysicalOp::BtreeScan {
                                relation: r,
                                index: idx,
                                key_attr: key,
                            },
                            vec![],
                            &[],
                            stats,
                        );
                    }
                }
            }
        }
        Ok(())
    }

    /// Ordered B-tree indexes of a relation as (index id, key attribute).
    fn indexes_of(&self, r: RelationId) -> Vec<(IndexId, dqep_catalog::AttrId)> {
        self.catalog
            .indexes_on(r)
            .filter(|(_, info)| info.delivers_order())
            .map(|(id, info)| (id, info.attr))
            .collect()
    }

    fn impl_selected(
        &mut self,
        r: RelationId,
        gid: GroupId,
        props: PhysProps,
        frontier: &mut Frontier,
    ) -> Result<(), OptimizerError> {
        let preds = self.ctx.selects_on(r).to_vec();
        let get_gid = self.memo.find(GroupKey::Get(r)).expect("seeded");
        let get_stats = self.stats_of(get_gid);

        // 1. Filter chain over a plain retrieval with the same required
        //    order (Filter preserves its input's order).
        if self.optimize_group(get_gid, props).is_ok() {
            if let Some(base) = self.combined(get_gid, props) {
                let (node, _) = self.filter_chain(base, get_stats, &preds);
                self.insert_node(frontier, node);
            }
        }

        // 2. Filter-B-tree-Scan per indexable predicate, remaining
        //    predicates as Filters above (order Asc(p.attr) preserved).
        let rel_card = Interval::point(self.catalog.relation(r).stats.cardinality as f64);
        let row = self.catalog.relation(r).stats.record_len as f64;
        for (i, p) in preds.iter().enumerate() {
            let index = self.catalog.index_on_attr(p.attr).filter(|(_, info)| {
                info.supports_range() || p.op.is_equality()
            });
            let Some((idx, _)) = index else { continue };
            if let SortOrder::Asc(a) = props.order {
                if a != p.attr {
                    continue;
                }
            }
            let first_stats = PlanStats::new(rel_card * self.sel(p), row);
            let op = PhysicalOp::FilterBtreeScan {
                relation: r,
                index: idx,
                predicate: *p,
            };
            let cost = self.model.op_cost(&op, &[], &first_stats);
            let scan = self.builder.node(op, vec![], first_stats, cost);
            let rest: Vec<SelectPred> = preds
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, q)| *q)
                .collect();
            let (node, _) = self.filter_chain(scan, first_stats, &rest);
            self.insert_node(frontier, node);
        }
        let _ = (gid, props);
        Ok(())
    }

    /// Wraps `node` in one Filter per predicate, tracking intermediate
    /// statistics.
    fn filter_chain(
        &mut self,
        mut node: Arc<PlanNode>,
        mut stats: PlanStats,
        preds: &[SelectPred],
    ) -> (Arc<PlanNode>, PlanStats) {
        for p in preds {
            let out = PlanStats::new(stats.card * self.sel(p), stats.row_bytes);
            let op = PhysicalOp::Filter { predicate: *p };
            let cost = self.model.op_cost(&op, &[stats], &out);
            node = self.builder.node(op, vec![node], out, cost);
            stats = out;
        }
        (node, stats)
    }

    fn impl_join(
        &mut self,
        gid: GroupId,
        props: PhysProps,
        frontier: &mut Frontier,
    ) -> Result<(), OptimizerError> {
        let out_stats = self.stats_of(gid);
        let exprs: Vec<(GroupId, GroupId)> = self
            .memo
            .group(gid)
            .exprs
            .iter()
            .filter_map(|e| match e.op {
                LogicalOp::Join { left, right } => Some((left, right)),
                _ => None,
            })
            .collect();

        for (l, r) in exprs {
            let lrels = self.memo.group(l).key.rels();
            let rrels = self.memo.group(r).key.rels();
            if !self.opts.bushy && rrels.len() > 1 {
                continue; // left-deep ablation
            }
            let preds = self.ctx.preds_between(lrels, rrels);
            let l_stats = self.stats_of(l);
            let r_stats = self.stats_of(r);

            // Hash join: build on left, probe with right; delivers no
            // order, so only useful under Any.
            if props.order == SortOrder::None {
                self.optimize_group(l, PhysProps::ANY)?;
                self.optimize_group(r, PhysProps::ANY)?;
                if let (Some(lc), Some(rc)) = (
                    self.child_plan(l, PhysProps::ANY),
                    self.child_plan(r, PhysProps::ANY),
                ) {
                    self.consider(
                        frontier,
                        PhysicalOp::HashJoin {
                            predicates: preds.clone(),
                        },
                        vec![lc, rc],
                        &[l_stats, r_stats],
                        out_stats,
                    );
                }
            }

            // Merge join on the first predicate: inputs sorted on the join
            // attributes; delivers the left attribute's order.
            if let Some(p0) = preds.first() {
                let delivered = SortOrder::Asc(p0.left);
                if props.order == SortOrder::None || props.order == delivered {
                    let lp = PhysProps::sorted(p0.left);
                    let rp = PhysProps::sorted(p0.right);
                    self.optimize_group(l, lp)?;
                    self.optimize_group(r, rp)?;
                    if let (Some(lc), Some(rc)) = (self.child_plan(l, lp), self.child_plan(r, rp))
                    {
                        self.consider(
                            frontier,
                            PhysicalOp::MergeJoin {
                                predicates: preds.clone(),
                            },
                            vec![lc, rc],
                            &[l_stats, r_stats],
                            out_stats,
                        );
                    }
                }
            }

            // Index join: inner must be a single relation with at most one
            // selection (applied as residual after the index fetch); the
            // outer's order is preserved.
            if rrels.len() == 1 {
                let inner_rel = rrels.iter().next().expect("single");
                let inner_selects = self.ctx.selects_on(inner_rel).to_vec();
                if inner_selects.len() <= 1 {
                    let outer_props = match props.order {
                        SortOrder::None => Some(PhysProps::ANY),
                        SortOrder::Asc(a) if lrels.contains(a.relation) => {
                            Some(PhysProps::sorted(a))
                        }
                        SortOrder::Asc(_) => None,
                    };
                    if let Some(outer_props) = outer_props {
                        for (pi, p) in preds.iter().enumerate() {
                            let Some((idx, info)) = self.catalog.index_on_attr(p.right) else {
                                continue;
                            };
                            if !info.delivers_order() {
                                continue;
                            }
                            let mut ordered = vec![*p];
                            ordered.extend(
                                preds
                                    .iter()
                                    .enumerate()
                                    .filter(|(j, _)| *j != pi)
                                    .map(|(_, q)| *q),
                            );
                            self.optimize_group(l, outer_props)?;
                            if let Some(outer) = self.child_plan(l, outer_props) {
                                self.consider(
                                    frontier,
                                    PhysicalOp::IndexJoin {
                                        predicates: ordered,
                                        inner: inner_rel,
                                        index: idx,
                                        residual: inner_selects.first().copied(),
                                    },
                                    vec![outer],
                                    &[l_stats],
                                    out_stats,
                                );
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// The child node a parent should reference: the shared combined node,
    /// or (sharing ablation) a private deep copy.
    fn child_plan(&mut self, gid: GroupId, props: PhysProps) -> Option<Arc<PlanNode>> {
        let combined = self.combined(gid, props)?;
        Some(if self.opts.dag_sharing {
            combined
        } else {
            self.expand_tree(&combined)
        })
    }

    /// Expands a DAG into a tree with fresh node identities (sharing
    /// ablation).
    fn expand_tree(&mut self, node: &Arc<PlanNode>) -> Arc<PlanNode> {
        let children: Vec<Arc<PlanNode>> = node
            .children
            .iter()
            .map(|c| {
                let c = c.clone();
                self.expand_tree(&c)
            })
            .collect();
        if node.is_choose_plan() {
            self.builder.choose_plan(children, node.self_cost)
        } else {
            self.builder
                .node(node.op.clone(), children, node.stats, node.self_cost)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqep_algebra::{CompareOp, HostVar, JoinPred};
    use dqep_catalog::{CatalogBuilder, SystemConfig};
    use dqep_cost::Bindings;
    use dqep_plan::evaluate_startup;

    /// Catalog with two relations connected by join attribute `j`, with
    /// unclustered B-trees on `a` (selection) and `j` (join).
    fn catalog2() -> Catalog {
        CatalogBuilder::new(SystemConfig::paper_1994())
            .relation("r", 1000, 512, |r| {
                r.attr("a", 1000.0).attr("j", 500.0).btree("a", false).btree("j", false)
            })
            .relation("s", 800, 512, |r| {
                r.attr("a", 800.0).attr("j", 500.0).btree("a", false).btree("j", false)
            })
            .build()
            .unwrap()
    }

    fn query1(cat: &Catalog) -> LogicalExpr {
        let rel = cat.relation_by_name("r").unwrap();
        LogicalExpr::get(rel.id).select(SelectPred::unbound(
            rel.attr_id("a").unwrap(),
            CompareOp::Lt,
            HostVar(0),
        ))
    }

    fn query2(cat: &Catalog) -> LogicalExpr {
        let r = cat.relation_by_name("r").unwrap();
        let s = cat.relation_by_name("s").unwrap();
        LogicalExpr::get(r.id)
            .select(SelectPred::unbound(
                r.attr_id("a").unwrap(),
                CompareOp::Lt,
                HostVar(0),
            ))
            .join(
                LogicalExpr::get(s.id).select(SelectPred::unbound(
                    s.attr_id("a").unwrap(),
                    CompareOp::Lt,
                    HostVar(1),
                )),
                vec![JoinPred::new(
                    r.attr_id("j").unwrap(),
                    s.attr_id("j").unwrap(),
                )],
            )
    }

    #[test]
    fn static_optimization_yields_single_plan() {
        let cat = catalog2();
        let env = Environment::static_compile_time(&cat.config);
        let result = Optimizer::new(&cat, &env).optimize(&query1(&cat)).unwrap();
        assert!(!result.plan.is_dynamic(), "point costs are totally ordered");
        assert_eq!(result.stats.choose_plans, 0);
        assert_eq!(result.stats.contained_plans, 1.0);
        // At the expected selectivity of 0.05 the index plan wins (the
        // calibration the motivating example depends on).
        assert!(matches!(
            result.plan.op,
            PhysicalOp::FilterBtreeScan { .. }
        ));
    }

    #[test]
    fn dynamic_optimization_builds_figure1_plan() {
        let cat = catalog2();
        let env = Environment::dynamic_compile_time(&cat.config);
        let result = Optimizer::new(&cat, &env).optimize(&query1(&cat)).unwrap();
        assert!(result.plan.is_dynamic());
        assert!(result.plan.is_choose_plan());
        assert!(result.stats.contained_plans >= 2.0);
        // Figure 1: the alternatives are a file-scan plan and an index plan.
        let ops: Vec<&str> = result
            .plan
            .children
            .iter()
            .map(|c| c.op.name())
            .collect();
        assert!(ops.contains(&"Filter"), "file-scan alternative: {ops:?}");
        assert!(
            ops.contains(&"Filter-B-tree-Scan"),
            "index alternative: {ops:?}"
        );
    }

    #[test]
    fn dynamic_plan_adapts_at_startup() {
        let cat = catalog2();
        let env = Environment::dynamic_compile_time(&cat.config);
        let result = Optimizer::new(&cat, &env).optimize(&query1(&cat)).unwrap();

        let low = evaluate_startup(
            &result.plan,
            &cat,
            &env,
            &Bindings::new().with_value(HostVar(0), 5),
        );
        assert!(matches!(low.resolved.op, PhysicalOp::FilterBtreeScan { .. }));

        let high = evaluate_startup(
            &result.plan,
            &cat,
            &env,
            &Bindings::new().with_value(HostVar(0), 950),
        );
        assert!(matches!(high.resolved.op, PhysicalOp::Filter { .. }));
        // At high selectivity the file scan is much cheaper than the
        // index scan would have been.
        assert!(high.predicted_run_seconds < low.predicted_run_seconds * 20.0);
    }

    #[test]
    fn two_way_join_considers_both_build_sides() {
        let cat = catalog2();
        let env = Environment::dynamic_compile_time(&cat.config);
        let result = Optimizer::new(&cat, &env).optimize(&query2(&cat)).unwrap();
        assert!(result.plan.is_dynamic());
        // The dynamic plan must contain hash joins with both build sides
        // (paper Figure 2): look for two HashJoin nodes whose child order
        // differs by relation set.
        let mut hash_joins = 0;
        dqep_plan::dag::walk_dag(&result.plan, &mut |n| {
            if matches!(n.op, PhysicalOp::HashJoin { .. }) {
                hash_joins += 1;
            }
        });
        assert!(hash_joins >= 2, "expected both join orders, got {hash_joins}");
    }

    #[test]
    fn dynamic_plan_never_worse_than_static_at_any_binding() {
        // The core robustness guarantee: for every binding, the dynamic
        // plan's chosen cost <= the static plan's cost (paper: g_i = d_i
        // <= c_i).
        let cat = catalog2();
        let static_env = Environment::static_compile_time(&cat.config);
        let dynamic_env = Environment::dynamic_compile_time(&cat.config);
        let q = query2(&cat);
        let static_plan = Optimizer::new(&cat, &static_env).optimize(&q).unwrap().plan;
        let dynamic_plan = Optimizer::new(&cat, &dynamic_env).optimize(&q).unwrap().plan;

        for (v0, v1) in [(5i64, 5i64), (5, 700), (700, 5), (900, 900), (400, 100)] {
            let b = Bindings::new()
                .with_value(HostVar(0), v0)
                .with_value(HostVar(1), v1);
            let st = evaluate_startup(&static_plan, &cat, &static_env, &b);
            let dy = evaluate_startup(&dynamic_plan, &cat, &dynamic_env, &b);
            assert!(
                dy.predicted_run_seconds <= st.predicted_run_seconds + 1e-9,
                "binding ({v0},{v1}): dynamic {} > static {}",
                dy.predicted_run_seconds,
                st.predicted_run_seconds
            );
        }
    }

    #[test]
    fn dynamic_matches_runtime_optimization() {
        // Optimality guarantee: the plan chosen at start-up-time has the
        // same cost as the plan a run-time optimizer would produce
        // (paper: g_i = d_i).
        let cat = catalog2();
        let dynamic_env = Environment::dynamic_compile_time(&cat.config);
        let q = query2(&cat);
        let dynamic_plan = Optimizer::new(&cat, &dynamic_env).optimize(&q).unwrap().plan;

        for (v0, v1) in [(5i64, 5i64), (50, 700), (900, 30), (990, 990)] {
            let b = Bindings::new()
                .with_value(HostVar(0), v0)
                .with_value(HostVar(1), v1);
            let dy = evaluate_startup(&dynamic_plan, &cat, &dynamic_env, &b);

            // Run-time optimization: point mode with actual bindings.
            let rt_env = dynamic_env.bind(&b);
            let rt = Optimizer::new(&cat, &rt_env).optimize(&q).unwrap();
            let rt_cost = evaluate_startup(&rt.plan, &cat, &rt_env, &b).predicted_run_seconds;
            assert!(
                (dy.predicted_run_seconds - rt_cost).abs() < 1e-6,
                "binding ({v0},{v1}): dynamic chose {}, run-time opt found {rt_cost}",
                dy.predicted_run_seconds
            );
        }
    }

    #[test]
    fn plan_sizes_grow_with_uncertainty() {
        let cat = catalog2();
        let static_env = Environment::static_compile_time(&cat.config);
        let dyn_env = Environment::dynamic_compile_time(&cat.config);
        let dyn_mem_env = Environment::dynamic_uncertain_memory(&cat.config);
        let q = query2(&cat);
        let s = Optimizer::new(&cat, &static_env).optimize(&q).unwrap();
        let d = Optimizer::new(&cat, &dyn_env).optimize(&q).unwrap();
        let m = Optimizer::new(&cat, &dyn_mem_env).optimize(&q).unwrap();
        assert!(d.stats.plan_nodes > s.stats.plan_nodes);
        assert!(m.stats.plan_nodes >= d.stats.plan_nodes);
        assert!(d.stats.contained_plans > 1.0);
    }

    #[test]
    fn invariants_hold_on_optimized_plans() {
        let cat = catalog2();
        for env in [
            Environment::static_compile_time(&cat.config),
            Environment::dynamic_compile_time(&cat.config),
            Environment::dynamic_uncertain_memory(&cat.config),
        ] {
            for q in [query1(&cat), query2(&cat)] {
                let result = Optimizer::new(&cat, &env).optimize(&q).unwrap();
                result.plan.check_invariants().unwrap();
            }
        }
    }

    #[test]
    fn pruning_is_lossless() {
        let cat = catalog2();
        let env = Environment::dynamic_compile_time(&cat.config);
        let q = query2(&cat);
        let with = Optimizer::new(&cat, &env).optimize(&q).unwrap();
        let without = Optimizer::with_options(
            &cat,
            &env,
            SearchOptions {
                enable_pruning: false,
                ..SearchOptions::paper()
            },
        )
        .optimize(&q)
        .unwrap();
        // Same plan space retained: identical combined cost interval.
        assert_eq!(
            with.plan.total_cost.total(),
            without.plan.total_cost.total()
        );
        assert_eq!(with.stats.plan_nodes, without.stats.plan_nodes);
    }

    #[test]
    fn sharing_ablation_expands_plans() {
        let cat = catalog2();
        let env = Environment::dynamic_compile_time(&cat.config);
        let q = query2(&cat);
        let shared = Optimizer::new(&cat, &env).optimize(&q).unwrap();
        let unshared = Optimizer::with_options(
            &cat,
            &env,
            SearchOptions {
                dag_sharing: false,
                ..SearchOptions::paper()
            },
        )
        .optimize(&q)
        .unwrap();
        assert!(
            unshared.stats.plan_nodes > shared.stats.plan_nodes,
            "tree {} should exceed DAG {}",
            unshared.stats.plan_nodes,
            shared.stats.plan_nodes
        );
        // Semantics unchanged.
        assert_eq!(
            unshared.plan.total_cost.total(),
            shared.plan.total_cost.total()
        );
    }

    #[test]
    fn probing_prunes_pseudo_incomparable_plans() {
        let cat = catalog2();
        let env = Environment::dynamic_compile_time(&cat.config);
        let q = query2(&cat);
        let naive = Optimizer::new(&cat, &env).optimize(&q).unwrap();
        let probed = Optimizer::with_options(
            &cat,
            &env,
            SearchOptions {
                probe_points: 5,
                ..SearchOptions::paper()
            },
        )
        .optimize(&q)
        .unwrap();
        assert!(probed.stats.plan_nodes <= naive.stats.plan_nodes);
    }

    #[test]
    fn exhaustive_plan_contains_default_dynamic_plan() {
        // Section 3: the exhaustive plan includes absolutely all feasible
        // plans, so it is at least as large as the default dynamic plan
        // and makes identical start-up choices (same optimal costs).
        let cat = catalog2();
        let env = Environment::dynamic_compile_time(&cat.config);
        let q = query2(&cat);
        let default = Optimizer::new(&cat, &env).optimize(&q).unwrap();
        let exhaustive = Optimizer::with_options(
            &cat,
            &env,
            SearchOptions {
                exhaustive: true,
                ..SearchOptions::paper()
            },
        )
        .optimize(&q)
        .unwrap();
        assert!(exhaustive.stats.plan_nodes >= default.stats.plan_nodes);
        assert!(exhaustive.stats.contained_plans >= default.stats.contained_plans);
        for (v0, v1) in [(5i64, 5i64), (500, 100), (950, 900)] {
            let b = Bindings::new()
                .with_value(HostVar(0), v0)
                .with_value(HostVar(1), v1);
            let d = evaluate_startup(&default.plan, &cat, &env, &b).predicted_run_seconds;
            let e = evaluate_startup(&exhaustive.plan, &cat, &env, &b).predicted_run_seconds;
            assert!(
                (d - e).abs() < 1e-9,
                "binding ({v0},{v1}): default {d} vs exhaustive {e} — the                  default's pruning must be lossless"
            );
        }
    }

    #[test]
    fn unknown_relation_is_rejected() {
        let cat = catalog2();
        let env = Environment::static_compile_time(&cat.config);
        let bogus = LogicalExpr::get(RelationId(77));
        assert!(matches!(
            Optimizer::new(&cat, &env).optimize(&bogus),
            Err(OptimizerError::InvalidQuery(_))
        ));
    }
}
