//! Transformation rules: join commutativity and associativity.
//!
//! Rules operate on memo expressions and insert their results back into the
//! memo with duplicate detection — the standard Volcano discipline. Join
//! commutativity plus (left) associativity, applied to a global fixpoint,
//! enumerate **all bushy trees** over connected relation subsets ("the
//! transformation rules permit generation of all bushy trees, not only the
//! left-deep trees of traditional optimizers", paper Section 5).
//!
//! The fixpoint iterates whole passes over the memo until a pass generates
//! no new expression. Because expressions are deduplicated on insert and
//! the space of (group, expression) pairs is finite, termination is
//! guaranteed; re-running a rule on the same expression is a cheap no-op,
//! which keeps the implementation free of the re-firing bookkeeping that
//! rule masks would otherwise need when a *child* group gains expressions
//! late.

use crate::context::QueryContext;
use crate::memo::{GroupId, GroupKey, LogicalOp, Memo};
use crate::options::SearchOptions;

/// Explores the memo to a fixpoint: applies commutativity and
/// associativity to every join expression (including those the rules
/// generate) until no new expression appears. Returns the number of
/// expressions generated.
pub fn explore(memo: &mut Memo, ctx: &QueryContext, opts: &SearchOptions) -> usize {
    let mut generated_total = 0;
    loop {
        let mut generated = 0;
        let mut g = 0;
        // New groups created during the pass are visited in the same pass
        // (group_count() is re-read each iteration).
        while g < memo.group_count() {
            let gid = GroupId(g as u32);
            let mut idx = 0;
            while idx < memo.group(gid).exprs.len() {
                if let LogicalOp::Join { left, right } = memo.group(gid).exprs[idx].op {
                    generated += apply_commute(memo, gid, left, right);
                    generated += apply_associate(memo, gid, left, right, ctx, opts);
                }
                idx += 1;
            }
            g += 1;
        }
        if generated == 0 {
            break;
        }
        generated_total += generated;
    }
    for g in 0..memo.group_count() {
        memo.group_mut(GroupId(g as u32)).explored = true;
    }
    generated_total
}

/// `Join(L, R) → Join(R, L)`. With the hash-join build convention (build
/// on the left input), commutativity is also what lets the optimizer
/// consider both build sides of a hash join (paper Figure 2).
fn apply_commute(memo: &mut Memo, gid: GroupId, left: GroupId, right: GroupId) -> usize {
    usize::from(memo.add_expr(
        gid,
        LogicalOp::Join {
            left: right,
            right: left,
        },
    ))
}

/// `Join(Join(A, B), C) → Join(A, Join(B, C))`, creating the `Join(B, C)`
/// group on demand. Only fires when `B ⋈ C` is connected by a join
/// predicate (or cross products are enabled): cross-product intermediate
/// results cannot be optimal for the connected queries considered here.
fn apply_associate(
    memo: &mut Memo,
    gid: GroupId,
    left: GroupId,
    right: GroupId,
    ctx: &QueryContext,
    opts: &SearchOptions,
) -> usize {
    let mut generated = 0;
    let right_rels = memo.group(right).key.rels();
    // Snapshot the left group's join expressions (the memo may grow while
    // we insert results; late additions are caught by the next pass).
    let left_exprs: Vec<(GroupId, GroupId)> = memo
        .group(left)
        .exprs
        .iter()
        .filter_map(|e| match e.op {
            LogicalOp::Join { left: a, right: b } => Some((a, b)),
            _ => None,
        })
        .collect();
    for (a, b) in left_exprs {
        let b_rels = memo.group(b).key.rels();
        if !opts.allow_cross_products && !ctx.connected(b_rels, right_rels) {
            continue;
        }
        let bc = memo.group_for(GroupKey::Join(b_rels.union(right_rels)));
        if memo.add_expr(bc, LogicalOp::Join { left: b, right }) {
            generated += 1;
        }
        if memo.add_expr(gid, LogicalOp::Join { left: a, right: bc }) {
            generated += 1;
        }
    }
    generated
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqep_algebra::{JoinPred, LogicalExpr, RelSet};
    use dqep_catalog::{Catalog, CatalogBuilder, RelationId, SystemConfig};

    /// Builds an n-relation chain query catalog + context + seeded memo,
    /// returning the root group.
    fn chain(n: usize) -> (Catalog, QueryContext, Memo, GroupId) {
        let mut builder = CatalogBuilder::new(SystemConfig::paper_1994());
        for i in 0..n {
            let name = format!("r{i}");
            builder = builder.relation(&name, 100, 512, |r| r.attr("a", 100.0).attr("j", 50.0));
        }
        let cat = builder.build().unwrap();
        let ids: Vec<RelationId> = cat.relations().iter().map(|r| r.id).collect();
        let attr = |i: usize, name: &str| cat.relations()[i].attr_id(name).unwrap();
        let mut q = LogicalExpr::get(ids[0]);
        for i in 1..n {
            q = q.join(
                LogicalExpr::get(ids[i]),
                vec![JoinPred::new(attr(i - 1, "j"), attr(i, "j"))],
            );
        }
        let ctx = QueryContext::build(&q, &cat).unwrap();

        // Seed the memo the way the search driver does: leaf groups plus
        // the left-deep spine of the input expression.
        let mut memo = Memo::new();
        let mut leaf_groups = Vec::new();
        for &r in &ids {
            let g = memo.group_for(GroupKey::Get(r));
            memo.add_expr(g, LogicalOp::Get(r));
            leaf_groups.push(g);
        }
        let mut current = leaf_groups[0];
        let mut current_rels = RelSet::singleton(ids[0]);
        for (i, &leaf) in leaf_groups.iter().enumerate().skip(1) {
            current_rels = current_rels.union(RelSet::singleton(ids[i]));
            let g = memo.group_for(GroupKey::Join(current_rels));
            memo.add_expr(
                g,
                LogicalOp::Join {
                    left: current,
                    right: leaf,
                },
            );
            current = g;
        }
        (cat, ctx, memo, current)
    }

    #[test]
    fn chain_exploration_counts_all_bushy_trees() {
        // Known counts of bushy no-cross-product join trees for chain
        // queries, commuted variants included: 2^(n-1) · Catalan(n-1):
        // n=2 → 2, n=3 → 8, n=4 → 40.
        for (n, expected) in [(2usize, 2.0f64), (3, 8.0), (4, 40.0)] {
            let (_cat, ctx, mut memo, root) = chain(n);
            explore(&mut memo, &ctx, &SearchOptions::paper());
            assert_eq!(
                memo.logical_tree_count(root),
                expected,
                "chain of {n} relations"
            );
        }
    }

    #[test]
    fn ten_way_chain_explores_quickly_via_sharing() {
        // 2^9 · Catalan(9) = 512 · 4862 = 2,489,344 logical trees, held in
        // a memo of ~55 join groups — the sharing argument of Section 3.
        let (_cat, ctx, mut memo, root) = chain(10);
        explore(&mut memo, &ctx, &SearchOptions::paper());
        assert_eq!(memo.logical_tree_count(root), 2_489_344.0);
        // Join groups = contiguous ranges of length >= 2: 9+8+...+1 = 45,
        // plus 10 Get leaves.
        assert_eq!(memo.group_count(), 55);
    }

    #[test]
    fn exploration_is_idempotent() {
        let (_cat, ctx, mut memo, root) = chain(3);
        explore(&mut memo, &ctx, &SearchOptions::paper());
        let exprs = memo.expr_count();
        let trees = memo.logical_tree_count(root);
        let more = explore(&mut memo, &ctx, &SearchOptions::paper());
        assert_eq!(more, 0, "fixpoint reached");
        assert_eq!(memo.expr_count(), exprs);
        assert_eq!(memo.logical_tree_count(root), trees);
    }

    #[test]
    fn no_cross_product_groups_for_chains() {
        let (_cat, ctx, mut memo, _root) = chain(4);
        explore(&mut memo, &ctx, &SearchOptions::paper());
        // Every join group must cover a contiguous range of the chain:
        // non-contiguous sets would require a cross product.
        for i in 0..memo.group_count() {
            let key = memo.group(GroupId(i as u32)).key;
            if let GroupKey::Join(rels) = key {
                let ids: Vec<u32> = rels.iter().map(|r| r.0).collect();
                for w in ids.windows(2) {
                    assert_eq!(w[1], w[0] + 1, "group {key:?} is not contiguous");
                }
            }
        }
    }

    #[test]
    fn cross_products_enabled_reach_more_groups() {
        let (_cat, ctx, mut memo, _) = chain(3);
        explore(&mut memo, &ctx, &SearchOptions::paper());
        let connected_only = memo.group_count();

        let (_cat2, ctx2, mut memo2, _) = chain(3);
        let opts = SearchOptions {
            allow_cross_products: true,
            ..SearchOptions::paper()
        };
        explore(&mut memo2, &ctx2, &opts);
        assert!(
            memo2.group_count() > connected_only,
            "cross products add the non-contiguous group {{r0,r2}}"
        );
    }

    #[test]
    fn commute_doubles_two_way_join() {
        let (_cat, ctx, mut memo, root) = chain(2);
        assert_eq!(memo.group(root).exprs.len(), 1);
        explore(&mut memo, &ctx, &SearchOptions::paper());
        assert_eq!(memo.group(root).exprs.len(), 2, "original + commuted");
    }

    #[test]
    fn all_partitions_present_in_root_group() {
        // For a 4-chain r0-r1-r2-r3, the root group must contain every
        // (connected L, connected R) partition: {r0}{r1r2r3}, {r0r1}{r2r3},
        // {r0r1r2}{r3} and their commuted forms: 6 expressions.
        let (_cat, ctx, mut memo, root) = chain(4);
        explore(&mut memo, &ctx, &SearchOptions::paper());
        let joins = memo
            .group(root)
            .exprs
            .iter()
            .filter(|e| matches!(e.op, LogicalOp::Join { .. }))
            .count();
        assert_eq!(joins, 6);
    }
}
