//! The dynamic-plan query optimizer — the paper's primary contribution.
//!
//! This crate implements a Volcano-style optimizer (memo, transformation
//! rules, implementation rules, enforcers, top-down memoizing search)
//! extended for **cost incomparability**:
//!
//! * Costs are intervals; overlapping costs are *incomparable* and induce a
//!   **partial order** on plans.
//! * Per (group, required physical properties), the search keeps a
//!   **frontier** of mutually non-dominated plans instead of a single best
//!   plan. A plan is pruned only when another plan is provably never more
//!   expensive (paper Section 3: "it is impossible to prune all but one of
//!   them, as is the assumption and foundation of most database query
//!   optimizers").
//! * Frontiers with two or more plans are linked under a **choose-plan**
//!   operator (the *plan robustness* enforcer of Table 1); parents
//!   reference the group's combined choose-plan node, so alternatives
//!   share common subexpressions and the result is a **DAG**, not a tree
//!   (paper Section 3, "Techniques to Reduce the Search Effort").
//! * Branch-and-bound pruning is interval-aware: only a candidate whose
//!   *lower* bound exceeds the group's best *upper* bound can be discarded
//!   — exactly the weakened pruning the paper identifies as the main cost
//!   of dynamic-plan optimization (Sections 3 and 5).
//!
//! The same search engine runs all three scenarios of paper Figure 3:
//! *static* optimization (point environment with expected values),
//! *run-time* optimization (point environment with actual bindings), and
//! *dynamic-plan* optimization (interval environment).
//!
//! # Example
//!
//! ```
//! use dqep_algebra::{CompareOp, HostVar, LogicalExpr, SelectPred};
//! use dqep_catalog::{CatalogBuilder, SystemConfig};
//! use dqep_core::Optimizer;
//! use dqep_cost::Environment;
//!
//! let catalog = CatalogBuilder::new(SystemConfig::paper_1994())
//!     .relation("r", 1_000, 512, |r| r.attr("a", 1_000.0).btree("a", false))
//!     .build()
//!     .unwrap();
//! let rel = catalog.relation_by_name("r").unwrap();
//! // SELECT * FROM r WHERE r.a < :v0  — selectivity unknown until start-up.
//! let query = LogicalExpr::get(rel.id).select(SelectPred::unbound(
//!     rel.attr_id("a").unwrap(),
//!     CompareOp::Lt,
//!     HostVar(0),
//! ));
//!
//! let env = Environment::dynamic_compile_time(&catalog.config);
//! let result = Optimizer::new(&catalog, &env).optimize(&query).unwrap();
//! assert!(result.plan.is_dynamic(), "incomparable costs induce a choose-plan");
//! ```

#![warn(missing_docs)]

mod context;
mod error;
mod frontier;
mod memo;
mod options;
mod probe;
mod rules;
mod search;
mod stats;

pub use context::QueryContext;
pub use error::OptimizerError;
pub use frontier::Frontier;
pub use memo::{GroupId, GroupKey, LogicalMExpr, LogicalOp, Memo};
pub use options::SearchOptions;
pub use probe::ProbePoints;
pub use search::{OptimizeResult, Optimizer};
pub use stats::OptimizerStats;
