//! Query context: the normalized form of an input expression.

use std::collections::BTreeMap;

use dqep_algebra::{HostVar, JoinPred, LogicalExpr, RelSet, SelectPred};
use dqep_catalog::{AttrId, Catalog, RelationId};

use crate::error::OptimizerError;

/// The optimizer's normalized view of one query.
///
/// The memo fingerprints groups by the *set of base relations* they cover,
/// which requires the query's selections and join predicates in a
/// relation-indexed form:
///
/// * selections are attached to the relation they restrict (the queries of
///   the paper place each selection directly above its Get, and the
///   context preserves any stack of selections per relation);
/// * join predicates form a join *graph* over relations, consulted when
///   transformation rules propose new joins (no cross products unless the
///   original query contains them).
#[derive(Debug, Clone)]
pub struct QueryContext {
    /// All base relations referenced, in first-appearance order.
    pub relations: Vec<RelationId>,
    /// The set form of `relations`.
    pub all_rels: RelSet,
    /// Selection predicates per relation (conjunctive; usually 0 or 1).
    pub selects: BTreeMap<RelationId, Vec<SelectPred>>,
    /// All equi-join predicates of the query.
    pub join_preds: Vec<JoinPred>,
    /// Host variable → the attribute its predicate restricts (used by
    /// multi-point probing to map sampled selectivities to values).
    pub host_attrs: BTreeMap<HostVar, AttrId>,
}

impl QueryContext {
    /// Builds a context from a validated expression.
    pub fn build(query: &LogicalExpr, catalog: &Catalog) -> Result<QueryContext, OptimizerError> {
        query.validate(catalog)?;
        let all_rels = query.relations();
        let n = all_rels.len() as usize;
        if n > 64 {
            return Err(OptimizerError::TooManyRelations(n));
        }
        let relations: Vec<RelationId> = all_rels.iter().collect();
        let mut selects: BTreeMap<RelationId, Vec<SelectPred>> = BTreeMap::new();
        for p in query.select_predicates() {
            selects.entry(p.attr.relation).or_default().push(p);
        }
        let join_preds = query.join_predicates();
        let mut host_attrs = BTreeMap::new();
        for p in query.select_predicates() {
            if let Some(h) = p.host_var() {
                host_attrs.entry(h).or_insert(p.attr);
            }
        }
        Ok(QueryContext {
            relations,
            all_rels,
            selects,
            join_preds,
            host_attrs,
        })
    }

    /// The join predicates connecting two disjoint relation sets, oriented
    /// so the `left` attribute belongs to `left_set`.
    #[must_use]
    pub fn preds_between(&self, left_set: RelSet, right_set: RelSet) -> Vec<JoinPred> {
        self.join_preds
            .iter()
            .filter_map(|p| {
                let (l, r) = (p.left.relation, p.right.relation);
                if left_set.contains(l) && right_set.contains(r) {
                    Some(*p)
                } else if left_set.contains(r) && right_set.contains(l) {
                    Some(p.flipped())
                } else {
                    None
                }
            })
            .collect()
    }

    /// Whether two relation sets are connected by at least one join
    /// predicate.
    #[must_use]
    pub fn connected(&self, a: RelSet, b: RelSet) -> bool {
        !self.preds_between(a, b).is_empty()
    }

    /// The join predicates fully *internal* to a relation set.
    #[must_use]
    pub fn preds_within(&self, set: RelSet) -> Vec<JoinPred> {
        self.join_preds
            .iter()
            .filter(|p| set.contains(p.left.relation) && set.contains(p.right.relation))
            .copied()
            .collect()
    }

    /// Selection predicates on one relation (empty slice if none).
    #[must_use]
    pub fn selects_on(&self, rel: RelationId) -> &[SelectPred] {
        self.selects.get(&rel).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of uncertain (host-variable) selection predicates.
    #[must_use]
    pub fn uncertain_predicates(&self) -> usize {
        self.host_attrs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqep_algebra::{CompareOp, HostVar};
    use dqep_catalog::{CatalogBuilder, SystemConfig};

    fn fixture() -> (Catalog, LogicalExpr) {
        let cat = CatalogBuilder::new(SystemConfig::paper_1994())
            .relation("r", 100, 512, |r| r.attr("a", 100.0).attr("j", 50.0))
            .relation("s", 200, 512, |r| r.attr("a", 200.0).attr("j", 60.0))
            .relation("t", 300, 512, |r| r.attr("a", 300.0).attr("j", 70.0))
            .build()
            .unwrap();
        let ids: Vec<RelationId> = cat.relations().iter().map(|r| r.id).collect();
        let a = |i: usize, name: &str| cat.relations()[i].attr_id(name).unwrap();
        // (select(r) join select(s)) join t, chain r-s, s-t.
        let q = LogicalExpr::get(ids[0])
            .select(SelectPred::unbound(a(0, "a"), CompareOp::Lt, HostVar(0)))
            .join(
                LogicalExpr::get(ids[1])
                    .select(SelectPred::unbound(a(1, "a"), CompareOp::Lt, HostVar(1))),
                vec![JoinPred::new(a(0, "j"), a(1, "j"))],
            )
            .join(
                LogicalExpr::get(ids[2]),
                vec![JoinPred::new(a(1, "j"), a(2, "j"))],
            );
        (cat, q)
    }

    #[test]
    fn builds_context() {
        let (cat, q) = fixture();
        let ctx = QueryContext::build(&q, &cat).unwrap();
        assert_eq!(ctx.relations.len(), 3);
        assert_eq!(ctx.join_preds.len(), 2);
        assert_eq!(ctx.uncertain_predicates(), 2);
        assert_eq!(ctx.selects_on(ctx.relations[0]).len(), 1);
        assert_eq!(ctx.selects_on(ctx.relations[2]).len(), 0);
    }

    #[test]
    fn preds_between_orients_predicates() {
        let (cat, q) = fixture();
        let ctx = QueryContext::build(&q, &cat).unwrap();
        let r = RelSet::singleton(ctx.relations[0]);
        let s = RelSet::singleton(ctx.relations[1]);
        let t = RelSet::singleton(ctx.relations[2]);

        let rs = ctx.preds_between(r, s);
        assert_eq!(rs.len(), 1);
        assert_eq!(rs[0].left.relation, ctx.relations[0]);

        // Flipped orientation.
        let sr = ctx.preds_between(s, r);
        assert_eq!(sr[0].left.relation, ctx.relations[1]);

        // r and t are not directly connected in the chain.
        assert!(!ctx.connected(r, t));
        assert!(ctx.connected(r.union(s), t));
    }

    #[test]
    fn preds_within_counts_internal_edges() {
        let (cat, q) = fixture();
        let ctx = QueryContext::build(&q, &cat).unwrap();
        assert_eq!(ctx.preds_within(ctx.all_rels).len(), 2);
        let rs = RelSet::from_iter([ctx.relations[0], ctx.relations[1]]);
        assert_eq!(ctx.preds_within(rs).len(), 1);
        assert_eq!(ctx.preds_within(RelSet::singleton(ctx.relations[0])).len(), 0);
    }

    #[test]
    fn invalid_query_is_reported() {
        let (cat, _) = fixture();
        let bogus = LogicalExpr::get(RelationId(42));
        assert!(matches!(
            QueryContext::build(&bogus, &cat),
            Err(OptimizerError::InvalidQuery(_))
        ));
    }
}
