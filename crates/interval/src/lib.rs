//! Interval arithmetic and partial cost ordering.
//!
//! This crate provides the numeric foundation of dynamic-plan optimization
//! as described in *Optimization of Dynamic Query Evaluation Plans* (Cole &
//! Graefe, SIGMOD 1994), the completion of *Dynamic Query Evaluation Plans*
//! (Graefe & Ward, SIGMOD 1989): cost-model parameters that are unknown at
//! compile-time (selectivities of unbound predicates, available memory) are
//! represented as closed intervals `[lo, hi]` instead of point estimates.
//!
//! Costs computed from interval parameters are themselves intervals, and two
//! cost intervals that *overlap* are **incomparable** — neither plan can be
//! proven cheaper for every possible run-time binding. Incomparability is
//! what induces the *partial order* on plans that the dynamic-plan optimizer
//! exploits: all mutually incomparable alternatives are retained and linked
//! under a choose-plan operator.
//!
//! The central types are:
//!
//! * [`Interval`] — a closed, finite interval over `f64` with arithmetic
//!   (`+`, `-`, `*`, pointwise min/max, hull) and monotone function mapping.
//! * [`PartialCmp`] — the four-valued comparison result
//!   (`Less`/`Greater`/`Equal`/`Incomparable`) returned by
//!   [`Interval::compare`].
//! * [`ParamValue`] — an uncertain parameter: either a known point or a
//!   range, with an expected value used by traditional (static) optimization.

#![warn(missing_docs)]

mod interval;
mod ordering;
mod param;

pub use interval::{Interval, IntervalError, Monotonicity};
pub use ordering::PartialCmp;
pub use param::ParamValue;
