//! The [`Interval`] type: closed, finite intervals over `f64`.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub};

use serde::{Deserialize, Serialize};

use crate::ordering::PartialCmp;

/// Error returned by fallible [`Interval`] constructors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IntervalError {
    /// `lo` was greater than `hi`.
    Inverted {
        /// The offending lower bound.
        lo: f64,
        /// The offending upper bound.
        hi: f64,
    },
    /// A bound was NaN or infinite.
    NotFinite,
}

impl fmt::Display for IntervalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IntervalError::Inverted { lo, hi } => {
                write!(f, "inverted interval bounds: lo={lo} > hi={hi}")
            }
            IntervalError::NotFinite => write!(f, "interval bounds must be finite"),
        }
    }
}

impl std::error::Error for IntervalError {}

/// Direction of monotonicity of a function argument.
///
/// Used by [`Interval::combine2`] and [`Interval::combine3`] to evaluate a
/// monotone function over interval arguments exactly, by evaluating it only
/// at the appropriate endpoints. The paper's cost model assumes all cost
/// functions are monotonic in their uncertain arguments (Section 5), which
/// makes endpoint evaluation produce tight bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Monotonicity {
    /// The function does not decrease when this argument increases.
    Increasing,
    /// The function does not increase when this argument increases.
    Decreasing,
}

/// A closed, finite interval `[lo, hi]` over `f64`.
///
/// Invariants (enforced by all constructors):
/// * `lo <= hi`
/// * both bounds are finite (no NaN, no infinities)
///
/// A *point* interval has `lo == hi` and models a precisely known value;
/// traditional "static" optimization is exactly interval optimization in
/// which every parameter is a point (paper Section 6: costs as points
/// represented by intervals `[expected, expected]`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Interval {
    lo: f64,
    hi: f64,
}

impl Interval {
    /// The additive identity, `[0, 0]`.
    pub const ZERO: Interval = Interval { lo: 0.0, hi: 0.0 };

    /// Creates `[lo, hi]`, panicking on invalid bounds.
    ///
    /// Use [`Interval::try_new`] when the bounds come from untrusted input.
    #[must_use]
    pub fn new(lo: f64, hi: f64) -> Interval {
        match Interval::try_new(lo, hi) {
            Ok(iv) => iv,
            Err(e) => panic!("Interval::new: {e}"),
        }
    }

    /// Creates `[lo, hi]`, validating the bounds.
    pub fn try_new(lo: f64, hi: f64) -> Result<Interval, IntervalError> {
        if !lo.is_finite() || !hi.is_finite() {
            return Err(IntervalError::NotFinite);
        }
        if lo > hi {
            return Err(IntervalError::Inverted { lo, hi });
        }
        Ok(Interval { lo, hi })
    }

    /// Creates the point interval `[x, x]`.
    #[must_use]
    pub fn point(x: f64) -> Interval {
        Interval::new(x, x)
    }

    /// The lower bound.
    #[must_use]
    pub fn lo(self) -> f64 {
        self.lo
    }

    /// The upper bound.
    #[must_use]
    pub fn hi(self) -> f64 {
        self.hi
    }

    /// Whether this interval is a single point (`lo == hi`).
    #[must_use]
    pub fn is_point(self) -> bool {
        self.lo == self.hi
    }

    /// The width `hi - lo` of the interval.
    #[must_use]
    pub fn width(self) -> f64 {
        self.hi - self.lo
    }

    /// The midpoint `(lo + hi) / 2`.
    #[must_use]
    pub fn midpoint(self) -> f64 {
        self.lo + (self.hi - self.lo) / 2.0
    }

    /// Whether `x` lies within the interval (inclusive).
    #[must_use]
    pub fn contains(self, x: f64) -> bool {
        self.lo <= x && x <= self.hi
    }

    /// Whether `other` lies entirely within `self` (inclusive).
    #[must_use]
    pub fn contains_interval(self, other: Interval) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }

    /// Whether the two intervals share at least one value.
    #[must_use]
    pub fn overlaps(self, other: Interval) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }

    /// Four-valued comparison under the paper's incomparability rule.
    ///
    /// * `Less` iff `self.hi < other.lo` — `self` is cheaper for *every*
    ///   possible binding.
    /// * `Greater` iff `self.lo > other.hi`.
    /// * `Equal` iff both are the *same point* — only point intervals can be
    ///   proven equal.
    /// * `Incomparable` otherwise, i.e. whenever the intervals overlap in
    ///   more than the degenerate equal-point case. Identical non-point
    ///   intervals are incomparable: the actual values drawn from them at
    ///   run-time may differ.
    #[must_use]
    pub fn compare(self, other: Interval) -> PartialCmp {
        if self.is_point() && other.is_point() && self.lo == other.lo {
            PartialCmp::Equal
        } else if self.hi < other.lo {
            PartialCmp::Less
        } else if self.lo > other.hi {
            PartialCmp::Greater
        } else {
            PartialCmp::Incomparable
        }
    }

    /// Whether `self` *dominates* `other`: `self` can never be more
    /// expensive than `other` and is strictly cheaper for at least one
    /// binding. Dominated plans are safely pruned; plans with merely
    /// overlapping costs are not (paper Section 3).
    #[must_use]
    pub fn dominates(self, other: Interval) -> bool {
        // Never more expensive: hi <= other's lo would be the strongest
        // form; we use the weaker "hi <= lo and not identical point" so that
        // equal-cost point plans are NOT considered dominating (the paper
        // conservatively keeps equal-cost plans unless a tie-break is
        // explicitly enabled).
        self.hi <= other.lo && !(self.is_point() && other.is_point() && self.lo == other.lo)
    }

    /// Pointwise minimum: `[min(lo, lo'), min(hi, hi')]`.
    ///
    /// This is the cost of a choose-plan operator over two alternatives
    /// (before adding the decision overhead): in the best case it costs the
    /// cheaper of the two best cases, in the worst case the cheaper of the
    /// two worst cases (paper Sections 3 and 5).
    #[must_use]
    pub fn min(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.min(other.hi),
        }
    }

    /// Pointwise maximum: `[max(lo, lo'), max(hi, hi')]`.
    #[must_use]
    pub fn max(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.max(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Convex hull: the smallest interval containing both inputs.
    #[must_use]
    pub fn hull(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Intersection, or `None` when disjoint.
    #[must_use]
    pub fn intersect(self, other: Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        (lo <= hi).then_some(Interval { lo, hi })
    }

    /// Clamps both bounds into `[min, max]`.
    #[must_use]
    pub fn clamp(self, min: f64, max: f64) -> Interval {
        Interval {
            lo: self.lo.clamp(min, max),
            hi: self.hi.clamp(min, max),
        }
    }

    /// Scales by a non-negative factor.
    ///
    /// # Panics
    /// Panics if `k` is negative or not finite.
    #[must_use]
    pub fn scale(self, k: f64) -> Interval {
        assert!(k.is_finite() && k >= 0.0, "scale factor must be >= 0, got {k}");
        Interval {
            lo: self.lo * k,
            hi: self.hi * k,
        }
    }

    /// Applies a non-decreasing function to both endpoints.
    ///
    /// Exact for monotone `f`; the caller asserts monotonicity. The result
    /// is normalized defensively (endpoints reordered) so a slightly
    /// non-monotone `f` cannot produce an inverted interval.
    #[must_use]
    pub fn map_monotone(self, f: impl Fn(f64) -> f64) -> Interval {
        let (a, b) = (f(self.lo), f(self.hi));
        Interval::new(a.min(b), a.max(b))
    }

    /// Evaluates a binary function monotone in each argument over interval
    /// arguments, by picking the correct endpoint per argument.
    ///
    /// For an argument marked [`Monotonicity::Increasing`] the lower output
    /// bound uses that argument's `lo` and the upper bound its `hi`;
    /// for [`Monotonicity::Decreasing`] the opposite.
    #[must_use]
    pub fn combine2(
        a: Interval,
        b: Interval,
        ma: Monotonicity,
        mb: Monotonicity,
        f: impl Fn(f64, f64) -> f64,
    ) -> Interval {
        let pick = |iv: Interval, m: Monotonicity, low: bool| match (m, low) {
            (Monotonicity::Increasing, true) | (Monotonicity::Decreasing, false) => iv.lo,
            (Monotonicity::Increasing, false) | (Monotonicity::Decreasing, true) => iv.hi,
        };
        let lo = f(pick(a, ma, true), pick(b, mb, true));
        let hi = f(pick(a, ma, false), pick(b, mb, false));
        Interval::new(lo.min(hi), lo.max(hi))
    }

    /// Ternary analogue of [`Interval::combine2`].
    #[must_use]
    pub fn combine3(
        a: Interval,
        b: Interval,
        c: Interval,
        ma: Monotonicity,
        mb: Monotonicity,
        mc: Monotonicity,
        f: impl Fn(f64, f64, f64) -> f64,
    ) -> Interval {
        let pick = |iv: Interval, m: Monotonicity, low: bool| match (m, low) {
            (Monotonicity::Increasing, true) | (Monotonicity::Decreasing, false) => iv.lo,
            (Monotonicity::Increasing, false) | (Monotonicity::Decreasing, true) => iv.hi,
        };
        let lo = f(pick(a, ma, true), pick(b, mb, true), pick(c, mc, true));
        let hi = f(pick(a, ma, false), pick(b, mb, false), pick(c, mc, false));
        Interval::new(lo.min(hi), lo.max(hi))
    }

    /// Subtracts only the *lower* bound of `other` from both bounds,
    /// saturating at zero width preservation.
    ///
    /// This is the branch-and-bound subtraction of the paper (Section 5):
    /// when maintaining a cost limit while optimizing the second input of a
    /// join, only the first input's *minimum* cost can be "used up" with
    /// certainty, so only the lower bound may be subtracted from the limit.
    #[must_use]
    pub fn sub_lower(self, other: Interval) -> Interval {
        Interval {
            lo: (self.lo - other.lo).max(0.0),
            hi: (self.hi - other.lo).max(0.0),
        }
    }
}

impl Default for Interval {
    fn default() -> Self {
        Interval::ZERO
    }
}

impl Add for Interval {
    type Output = Interval;

    fn add(self, rhs: Interval) -> Interval {
        Interval {
            lo: self.lo + rhs.lo,
            hi: self.hi + rhs.hi,
        }
    }
}

impl AddAssign for Interval {
    fn add_assign(&mut self, rhs: Interval) {
        *self = *self + rhs;
    }
}

impl Add<f64> for Interval {
    type Output = Interval;

    fn add(self, rhs: f64) -> Interval {
        Interval::new(self.lo + rhs, self.hi + rhs)
    }
}

impl Sub for Interval {
    type Output = Interval;

    /// Standard interval subtraction `[lo - hi', hi - lo']`.
    ///
    /// Note that cost-limit maintenance in branch-and-bound must use
    /// [`Interval::sub_lower`] instead (see paper Section 5).
    fn sub(self, rhs: Interval) -> Interval {
        Interval {
            lo: self.lo - rhs.hi,
            hi: self.hi - rhs.lo,
        }
    }
}

impl Mul for Interval {
    type Output = Interval;

    /// General interval multiplication (min/max over the four endpoint
    /// products), correct for intervals of any sign.
    fn mul(self, rhs: Interval) -> Interval {
        let p = [
            self.lo * rhs.lo,
            self.lo * rhs.hi,
            self.hi * rhs.lo,
            self.hi * rhs.hi,
        ];
        let lo = p.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = p.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Interval { lo, hi }
    }
}

impl Mul<f64> for Interval {
    type Output = Interval;

    fn mul(self, rhs: f64) -> Interval {
        self * Interval::point(rhs)
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_point() {
            write!(f, "[{:.4}]", self.lo)
        } else {
            write!(f, "[{:.4}, {:.4}]", self.lo, self.hi)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let iv = Interval::new(1.0, 3.0);
        assert_eq!(iv.lo(), 1.0);
        assert_eq!(iv.hi(), 3.0);
        assert!(!iv.is_point());
        assert_eq!(iv.width(), 2.0);
        assert_eq!(iv.midpoint(), 2.0);
        assert!(Interval::point(5.0).is_point());
    }

    #[test]
    fn try_new_rejects_bad_bounds() {
        assert_eq!(
            Interval::try_new(2.0, 1.0),
            Err(IntervalError::Inverted { lo: 2.0, hi: 1.0 })
        );
        assert_eq!(Interval::try_new(f64::NAN, 1.0), Err(IntervalError::NotFinite));
        assert_eq!(
            Interval::try_new(0.0, f64::INFINITY),
            Err(IntervalError::NotFinite)
        );
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn new_panics_on_inverted() {
        let _ = Interval::new(3.0, 1.0);
    }

    #[test]
    fn containment_and_overlap() {
        let a = Interval::new(0.0, 10.0);
        assert!(a.contains(0.0));
        assert!(a.contains(10.0));
        assert!(!a.contains(10.1));
        assert!(a.contains_interval(Interval::new(2.0, 3.0)));
        assert!(!a.contains_interval(Interval::new(2.0, 30.0)));
        assert!(a.overlaps(Interval::new(10.0, 20.0)), "touching counts as overlap");
        assert!(!a.overlaps(Interval::new(10.5, 20.0)));
    }

    #[test]
    fn compare_disjoint() {
        let cheap = Interval::new(0.0, 1.0);
        let dear = Interval::new(2.0, 3.0);
        assert_eq!(cheap.compare(dear), PartialCmp::Less);
        assert_eq!(dear.compare(cheap), PartialCmp::Greater);
    }

    #[test]
    fn compare_overlapping_is_incomparable() {
        let a = Interval::new(0.0, 5.0);
        let b = Interval::new(4.0, 9.0);
        assert_eq!(a.compare(b), PartialCmp::Incomparable);
        assert_eq!(b.compare(a), PartialCmp::Incomparable);
        // Identical non-point intervals are incomparable, not equal.
        assert_eq!(a.compare(a), PartialCmp::Incomparable);
        // Touching endpoints are incomparable (cannot prove strictly less).
        assert_eq!(
            Interval::new(0.0, 1.0).compare(Interval::new(1.0, 2.0)),
            PartialCmp::Incomparable
        );
    }

    #[test]
    fn compare_points() {
        let p = Interval::point(2.0);
        assert_eq!(p.compare(Interval::point(2.0)), PartialCmp::Equal);
        assert_eq!(p.compare(Interval::point(3.0)), PartialCmp::Less);
        assert_eq!(p.compare(Interval::point(1.0)), PartialCmp::Greater);
    }

    #[test]
    fn domination() {
        assert!(Interval::new(0.0, 1.0).dominates(Interval::new(1.0, 5.0)));
        assert!(!Interval::new(0.0, 1.1).dominates(Interval::new(1.0, 5.0)));
        // Equal points do not dominate each other.
        assert!(!Interval::point(1.0).dominates(Interval::point(1.0)));
        // A strictly cheaper point dominates.
        assert!(Interval::point(1.0).dominates(Interval::point(2.0)));
    }

    #[test]
    fn choose_plan_min_semantics() {
        // Paper Section 5 example: [0,10] and [1,1] combine (before decision
        // overhead) to [0,1]; with overhead [0.01,0.01] the dynamic plan
        // costs [0.01, 1.01].
        let a = Interval::new(0.0, 10.0);
        let b = Interval::new(1.0, 1.0);
        let combined = a.min(b) + Interval::point(0.01);
        assert_eq!(combined, Interval::new(0.01, 1.01));
    }

    #[test]
    fn hull_intersect_minmax() {
        let a = Interval::new(0.0, 4.0);
        let b = Interval::new(2.0, 8.0);
        assert_eq!(a.hull(b), Interval::new(0.0, 8.0));
        assert_eq!(a.intersect(b), Some(Interval::new(2.0, 4.0)));
        assert_eq!(a.intersect(Interval::new(5.0, 6.0)), None);
        assert_eq!(a.max(b), Interval::new(2.0, 8.0));
        assert_eq!(a.min(b), Interval::new(0.0, 4.0));
    }

    #[test]
    fn arithmetic() {
        let a = Interval::new(1.0, 2.0);
        let b = Interval::new(10.0, 20.0);
        assert_eq!(a + b, Interval::new(11.0, 22.0));
        assert_eq!(b - a, Interval::new(8.0, 19.0));
        assert_eq!(a * b, Interval::new(10.0, 40.0));
        assert_eq!(a.scale(3.0), Interval::new(3.0, 6.0));
        assert_eq!(a + 1.0, Interval::new(2.0, 3.0));
        let mut c = a;
        c += b;
        assert_eq!(c, Interval::new(11.0, 22.0));
    }

    #[test]
    fn mul_with_negative_bounds() {
        let a = Interval::new(-2.0, 3.0);
        let b = Interval::new(-1.0, 4.0);
        // endpoint products: 2, -8, -3, 12 -> [-8, 12]
        assert_eq!(a * b, Interval::new(-8.0, 12.0));
    }

    #[test]
    fn sub_lower_for_branch_and_bound() {
        let limit = Interval::new(5.0, 10.0);
        let spent = Interval::new(2.0, 9.0);
        // Only the lower bound (2.0) is certainly used up.
        assert_eq!(limit.sub_lower(spent), Interval::new(3.0, 8.0));
        // Saturates at zero.
        let tight = Interval::new(1.0, 2.0);
        assert_eq!(tight.sub_lower(Interval::new(3.0, 4.0)), Interval::new(0.0, 0.0));
    }

    #[test]
    fn map_monotone_and_combine() {
        let pages = Interval::new(10.0, 100.0);
        let ceil = pages.map_monotone(|p| (p / 8.0).ceil());
        assert_eq!(ceil, Interval::new(2.0, 13.0));

        // Sort passes: increasing in pages, decreasing in memory.
        let mem = Interval::new(4.0, 16.0);
        let passes = Interval::combine2(
            pages,
            mem,
            Monotonicity::Increasing,
            Monotonicity::Decreasing,
            |p, m| (p / m).ceil().max(1.0),
        );
        assert_eq!(passes.lo(), (10.0f64 / 16.0).ceil());
        assert_eq!(passes.hi(), (100.0f64 / 4.0).ceil());
    }

    #[test]
    fn clamp_and_display() {
        assert_eq!(Interval::new(-1.0, 2.0).clamp(0.0, 1.0), Interval::new(0.0, 1.0));
        assert_eq!(format!("{}", Interval::point(1.0)), "[1.0000]");
        assert_eq!(format!("{}", Interval::new(0.0, 1.0)), "[0.0000, 1.0000]");
    }
}
