//! The four-valued comparison result for partially ordered costs.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Result of comparing two interval costs.
///
/// Traditional optimizers require cost comparison to return one of
/// `Less`/`Equal`/`Greater`; the dynamic-plan optimizer's cost ADT adds
/// [`PartialCmp::Incomparable`] for overlapping intervals (paper Section 3,
/// "Extensibility and Generality of Approach"). The search engine must keep
/// *both* plans whenever their costs are incomparable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PartialCmp {
    /// The left cost is lower for every possible run-time binding.
    Less,
    /// The costs are provably identical (both are the same point).
    Equal,
    /// The left cost is higher for every possible run-time binding.
    Greater,
    /// The cost intervals overlap: neither plan is always cheaper, so the
    /// choice must be delayed to start-up-time.
    Incomparable,
}

impl PartialCmp {
    /// Whether the left operand is provably no more expensive
    /// (`Less` or `Equal`).
    #[must_use]
    pub fn is_le(self) -> bool {
        matches!(self, PartialCmp::Less | PartialCmp::Equal)
    }

    /// Whether this comparison is decided at compile-time
    /// (anything but `Incomparable`).
    #[must_use]
    pub fn is_decided(self) -> bool {
        !matches!(self, PartialCmp::Incomparable)
    }

    /// The comparison with operands swapped.
    #[must_use]
    pub fn reverse(self) -> PartialCmp {
        match self {
            PartialCmp::Less => PartialCmp::Greater,
            PartialCmp::Greater => PartialCmp::Less,
            other => other,
        }
    }

    /// Converts from a total [`std::cmp::Ordering`].
    #[must_use]
    pub fn from_ordering(ord: std::cmp::Ordering) -> PartialCmp {
        match ord {
            std::cmp::Ordering::Less => PartialCmp::Less,
            std::cmp::Ordering::Equal => PartialCmp::Equal,
            std::cmp::Ordering::Greater => PartialCmp::Greater,
        }
    }
}

impl fmt::Display for PartialCmp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PartialCmp::Less => "<",
            PartialCmp::Equal => "=",
            PartialCmp::Greater => ">",
            PartialCmp::Incomparable => "<>",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicates() {
        assert!(PartialCmp::Less.is_le());
        assert!(PartialCmp::Equal.is_le());
        assert!(!PartialCmp::Greater.is_le());
        assert!(!PartialCmp::Incomparable.is_le());
        assert!(PartialCmp::Less.is_decided());
        assert!(!PartialCmp::Incomparable.is_decided());
    }

    #[test]
    fn reverse_is_involutive() {
        for c in [
            PartialCmp::Less,
            PartialCmp::Equal,
            PartialCmp::Greater,
            PartialCmp::Incomparable,
        ] {
            assert_eq!(c.reverse().reverse(), c);
        }
        assert_eq!(PartialCmp::Less.reverse(), PartialCmp::Greater);
        assert_eq!(PartialCmp::Incomparable.reverse(), PartialCmp::Incomparable);
    }

    #[test]
    fn from_ordering() {
        use std::cmp::Ordering;
        assert_eq!(PartialCmp::from_ordering(Ordering::Less), PartialCmp::Less);
        assert_eq!(PartialCmp::from_ordering(Ordering::Equal), PartialCmp::Equal);
        assert_eq!(PartialCmp::from_ordering(Ordering::Greater), PartialCmp::Greater);
    }

    #[test]
    fn display() {
        assert_eq!(PartialCmp::Incomparable.to_string(), "<>");
        assert_eq!(PartialCmp::Less.to_string(), "<");
    }
}
