//! Uncertain cost-model parameters.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::Interval;

/// A cost-model parameter whose value may be unknown at compile-time.
///
/// Three optimization modes use the same parameter differently (paper
/// Section 6, "Experimental Evaluation"):
///
/// * **Static (traditional) optimization** replaces an unknown parameter by
///   its *expected value* (e.g. selectivity 0.05), i.e. optimizes with the
///   point interval `[expected, expected]`.
/// * **Dynamic-plan optimization** uses the full *domain interval* (e.g.
///   selectivity `[0, 1]`, memory `[16, 112]` pages).
/// * **Run-time optimization** and start-up-time choose-plan decisions use
///   the *actual binding*, a point known only once the query is invoked.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ParamValue {
    /// The parameter is known precisely (a bound host variable, or a
    /// freshly observed system condition).
    Known(f64),
    /// The parameter is unknown at compile-time.
    Uncertain {
        /// The value a traditional optimizer would assume.
        expected: f64,
        /// The domain the actual value is drawn from at run-time.
        bounds: Interval,
    },
}

impl ParamValue {
    /// Creates an uncertain parameter, checking `expected ∈ bounds`.
    ///
    /// # Panics
    /// Panics if the expected value lies outside the bounds.
    #[must_use]
    pub fn uncertain(expected: f64, bounds: Interval) -> ParamValue {
        assert!(
            bounds.contains(expected),
            "expected value {expected} outside bounds {bounds}"
        );
        ParamValue::Uncertain { expected, bounds }
    }

    /// Whether the value is known at compile-time.
    #[must_use]
    pub fn is_known(self) -> bool {
        matches!(self, ParamValue::Known(_))
    }

    /// The interval a *dynamic-plan* optimizer must use: the point for known
    /// parameters, the full domain for uncertain ones.
    #[must_use]
    pub fn planning_interval(self) -> Interval {
        match self {
            ParamValue::Known(v) => Interval::point(v),
            ParamValue::Uncertain { bounds, .. } => bounds,
        }
    }

    /// The point a *traditional* optimizer would use: the known value, or
    /// the expected value of an uncertain parameter.
    #[must_use]
    pub fn expected(self) -> f64 {
        match self {
            ParamValue::Known(v) => v,
            ParamValue::Uncertain { expected, .. } => expected,
        }
    }

    /// Resolves the parameter with an actual run-time binding.
    ///
    /// Known parameters keep their value (the binding is ignored); uncertain
    /// parameters become known. Used at start-up-time and by the run-time
    /// optimization scenario.
    #[must_use]
    pub fn bind(self, actual: f64) -> ParamValue {
        match self {
            ParamValue::Known(v) => ParamValue::Known(v),
            ParamValue::Uncertain { .. } => ParamValue::Known(actual),
        }
    }

    /// The point interval of the expected value (static-optimizer view).
    #[must_use]
    pub fn expected_interval(self) -> Interval {
        Interval::point(self.expected())
    }
}

impl fmt::Display for ParamValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamValue::Known(v) => write!(f, "{v}"),
            ParamValue::Uncertain { expected, bounds } => {
                write!(f, "?{bounds} (expected {expected})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_param() {
        let p = ParamValue::Known(0.3);
        assert!(p.is_known());
        assert_eq!(p.planning_interval(), Interval::point(0.3));
        assert_eq!(p.expected(), 0.3);
        assert_eq!(p.bind(0.9), ParamValue::Known(0.3), "binding a known value is a no-op");
    }

    #[test]
    fn uncertain_param() {
        let p = ParamValue::uncertain(0.05, Interval::new(0.0, 1.0));
        assert!(!p.is_known());
        assert_eq!(p.planning_interval(), Interval::new(0.0, 1.0));
        assert_eq!(p.expected(), 0.05);
        assert_eq!(p.expected_interval(), Interval::point(0.05));
        assert_eq!(p.bind(0.7), ParamValue::Known(0.7));
    }

    #[test]
    #[should_panic(expected = "outside bounds")]
    fn expected_must_lie_in_bounds() {
        let _ = ParamValue::uncertain(2.0, Interval::new(0.0, 1.0));
    }

    #[test]
    fn display() {
        assert_eq!(ParamValue::Known(1.0).to_string(), "1");
        let p = ParamValue::uncertain(0.05, Interval::new(0.0, 1.0));
        assert_eq!(p.to_string(), "?[0.0000, 1.0000] (expected 0.05)");
    }
}
