//! Property-based tests of interval arithmetic invariants.

use dqep_interval::{Interval, Monotonicity, PartialCmp};
use proptest::prelude::*;

/// Strategy producing a valid interval with bounds in [-1e6, 1e6].
fn interval() -> impl Strategy<Value = Interval> {
    (-1e6f64..1e6, 0.0f64..1e6).prop_map(|(lo, w)| Interval::new(lo, lo + w))
}

/// Strategy producing a non-negative interval (like all costs).
fn nonneg_interval() -> impl Strategy<Value = Interval> {
    (0.0f64..1e6, 0.0f64..1e6).prop_map(|(lo, w)| Interval::new(lo, lo + w))
}

/// A point sampled from within an interval.
fn interval_with_point() -> impl Strategy<Value = (Interval, f64)> {
    (interval(), 0.0f64..=1.0).prop_map(|(iv, t)| (iv, iv.lo() + t * (iv.hi() - iv.lo())))
}

proptest! {
    #[test]
    fn bounds_ordered(iv in interval()) {
        prop_assert!(iv.lo() <= iv.hi());
    }

    #[test]
    fn add_is_commutative(a in interval(), b in interval()) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn add_contains_pointwise_sums((a, x) in interval_with_point(), (b, y) in interval_with_point()) {
        // Interval addition is a sound enclosure: any x in a, y in b has
        // x + y in a + b (modulo float rounding slack).
        let s = a + b;
        prop_assert!(s.lo() - 1e-6 <= x + y && x + y <= s.hi() + 1e-6);
    }

    #[test]
    fn mul_contains_pointwise_products((a, x) in interval_with_point(), (b, y) in interval_with_point()) {
        let p = a * b;
        let slack = 1e-6 * (1.0 + x.abs() * y.abs());
        prop_assert!(p.lo() - slack <= x * y && x * y <= p.hi() + slack);
    }

    #[test]
    fn compare_antisymmetric(a in interval(), b in interval()) {
        prop_assert_eq!(a.compare(b), b.compare(a).reverse());
    }

    #[test]
    fn incomparable_iff_overlapping_nonequal(a in interval(), b in interval()) {
        let cmp = a.compare(b);
        if cmp == PartialCmp::Incomparable {
            prop_assert!(a.overlaps(b));
        }
        if !a.overlaps(b) {
            prop_assert!(cmp == PartialCmp::Less || cmp == PartialCmp::Greater);
        }
    }

    #[test]
    fn domination_implies_never_worse(a in interval(), b in interval()) {
        if a.dominates(b) {
            // Every value of a is <= every value of b.
            prop_assert!(a.hi() <= b.lo());
            // Domination is antisymmetric.
            prop_assert!(!b.dominates(a) || (a.hi() == b.lo() && a.lo() == b.hi()));
        }
    }

    #[test]
    fn min_is_choose_plan_cost(a in nonneg_interval(), b in nonneg_interval()) {
        let m = a.min(b);
        // Best case: the cheaper best case; worst case: the cheaper worst case.
        prop_assert_eq!(m.lo(), a.lo().min(b.lo()));
        prop_assert_eq!(m.hi(), a.hi().min(b.hi()));
        // The choose-plan cost never exceeds either alternative.
        prop_assert!(m.lo() <= a.lo() && m.hi() <= a.hi());
        prop_assert!(m.lo() <= b.lo() && m.hi() <= b.hi());
    }

    #[test]
    fn hull_contains_both(a in interval(), b in interval()) {
        let h = a.hull(b);
        prop_assert!(h.contains_interval(a));
        prop_assert!(h.contains_interval(b));
    }

    #[test]
    fn intersect_symmetric_and_contained(a in interval(), b in interval()) {
        match (a.intersect(b), b.intersect(a)) {
            (Some(x), Some(y)) => {
                prop_assert_eq!(x, y);
                prop_assert!(a.contains_interval(x));
                prop_assert!(b.contains_interval(x));
            }
            (None, None) => prop_assert!(!a.overlaps(b)),
            _ => prop_assert!(false, "intersect not symmetric"),
        }
    }

    #[test]
    fn sub_lower_never_negative(a in nonneg_interval(), b in nonneg_interval()) {
        let r = a.sub_lower(b);
        prop_assert!(r.lo() >= 0.0);
        prop_assert!(r.lo() <= r.hi());
        // Width never shrinks: both bounds move by the same amount unless clamped.
        prop_assert!(r.hi() - r.lo() >= (a.hi() - a.lo()) - 1e-9 || r.lo() == 0.0);
    }

    #[test]
    fn combine2_encloses_samples(
        (a, x) in interval_with_point(),
        (b, y) in interval_with_point(),
    ) {
        // f(p, m) = p * 2 + 1/(1+m) is increasing in p, decreasing in m.
        let f = |p: f64, m: f64| p * 2.0 + 1.0 / (1.0 + m.abs());
        let r = Interval::combine2(a, b, Monotonicity::Increasing, Monotonicity::Decreasing, f);
        let v = f(x, y);
        prop_assert!(r.lo() - 1e-6 <= v && v <= r.hi() + 1e-6);
    }

    #[test]
    fn map_monotone_encloses_samples((a, x) in interval_with_point()) {
        let f = |v: f64| (v / 7.0).ceil();
        let r = a.map_monotone(f);
        prop_assert!(r.contains(f(x)));
    }

    #[test]
    fn point_intervals_totally_ordered(x in -1e6f64..1e6, y in -1e6f64..1e6) {
        let cmp = Interval::point(x).compare(Interval::point(y));
        prop_assert!(cmp.is_decided(), "point costs must behave like a traditional optimizer");
    }
}
