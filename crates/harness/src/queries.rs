//! The paper's five experimental queries.

use dqep_algebra::{CompareOp, HostVar, JoinPred, LogicalExpr, SelectPred};
use dqep_catalog::{make_chain_catalog, AttrId, Catalog, SyntheticSpec, SystemConfig};
use dqep_catalog::{JOIN_LEFT_ATTR, JOIN_RIGHT_ATTR, SELECTION_ATTR};

use crate::params::QUERY_RELATIONS;

/// A query together with the catalog it runs against.
#[derive(Debug)]
pub struct Workload {
    /// The synthetic catalog (relations of 100–1,000 records, unclustered
    /// B-trees on selection and join attributes).
    pub catalog: Catalog,
    /// The chain query with one unbound selection per relation.
    pub query: LogicalExpr,
    /// Host variables in predicate order, paired with the attribute each
    /// restricts (used to convert sampled selectivities into values).
    pub host_vars: Vec<(HostVar, AttrId)>,
    /// Which of the paper's queries this is (1–5), when applicable.
    pub query_number: Option<usize>,
}

impl Workload {
    /// Number of uncertain selection predicates.
    #[must_use]
    pub fn uncertain_vars(&self) -> usize {
        self.host_vars.len()
    }
}

/// Builds an `n`-relation chain query over a fresh synthetic catalog:
/// `σ(R1) ⋈ σ(R2) ⋈ … ⋈ σ(Rn)` with join predicates
/// `Ri.jr = R(i+1).jl` and one unbound selection `Ri.a < :vi` per
/// relation. Deterministic in `seed`.
#[must_use]
pub fn chain_query(n: usize, seed: u64) -> Workload {
    let catalog = make_chain_catalog(&SyntheticSpec::paper(n, seed), SystemConfig::paper_1994());
    build_over(catalog, n, None)
}

/// The paper's query `k` (1–5): 1, 2, 4, 6, or 10 relations.
///
/// # Panics
/// Panics unless `1 <= k <= 5`.
#[must_use]
pub fn paper_query(k: usize, seed: u64) -> Workload {
    assert!((1..=5).contains(&k), "paper queries are numbered 1..=5");
    let n = QUERY_RELATIONS[k - 1];
    let catalog = make_chain_catalog(&SyntheticSpec::paper(n, seed), SystemConfig::paper_1994());
    build_over(catalog, n, Some(k))
}

fn build_over(catalog: Catalog, n: usize, query_number: Option<usize>) -> Workload {
    let rels = catalog.relations();
    let mut host_vars = Vec::with_capacity(n);
    let selected = |i: usize, host_vars: &mut Vec<(HostVar, AttrId)>| {
        let attr = rels[i].attr_id(SELECTION_ATTR).expect("chain schema");
        let var = HostVar(i as u32);
        host_vars.push((var, attr));
        LogicalExpr::get(rels[i].id).select(SelectPred::unbound(attr, CompareOp::Lt, var))
    };
    let mut query = selected(0, &mut host_vars);
    for i in 1..n {
        let left_attr = rels[i - 1].attr_id(JOIN_RIGHT_ATTR).expect("chain schema");
        let right_attr = rels[i].attr_id(JOIN_LEFT_ATTR).expect("chain schema");
        query = query.join(
            selected(i, &mut host_vars),
            vec![JoinPred::new(left_attr, right_attr)],
        );
    }
    Workload {
        catalog,
        query,
        host_vars,
        query_number,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_queries_have_documented_sizes() {
        for (k, &n) in QUERY_RELATIONS.iter().enumerate() {
            let w = paper_query(k + 1, 7);
            assert_eq!(w.catalog.relations().len(), n);
            assert_eq!(w.uncertain_vars(), n, "one unbound predicate per relation");
            assert_eq!(w.query.join_predicates().len(), n.saturating_sub(1));
            assert_eq!(w.query_number, Some(k + 1));
            w.query.validate(&w.catalog).unwrap();
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = paper_query(3, 11);
        let b = paper_query(3, 11);
        assert_eq!(format!("{}", a.query), format!("{}", b.query));
        assert_eq!(
            a.catalog.relations()[0].stats.cardinality,
            b.catalog.relations()[0].stats.cardinality
        );
    }

    #[test]
    #[should_panic(expected = "numbered 1..=5")]
    fn query_number_bounds() {
        let _ = paper_query(6, 0);
    }

    #[test]
    fn chain_query_arbitrary_size() {
        let w = chain_query(3, 5);
        assert_eq!(w.catalog.relations().len(), 3);
        assert_eq!(w.query_number, None);
        w.query.validate(&w.catalog).unwrap();
    }
}
