//! Figure 6: plan sizes for static and dynamic plans.
//!
//! "For query 5, which has 11 uncertain variables (10 simple predicates
//! and the size of memory), the difference in plan size is 14,090 versus
//! 21 operator nodes." — and adding memory uncertainty "only barely
//! increases the sizes of the dynamic plans".

use crate::report::Table;

use super::QueryResults;

/// Paper-reported plan sizes for query 5 with memory uncertainty.
pub const PAPER_Q5_STATIC_NODES: usize = 21;
/// See [`PAPER_Q5_STATIC_NODES`].
pub const PAPER_Q5_DYNAMIC_NODES: usize = 14_090;

/// One data point.
#[derive(Debug, Clone, Copy)]
pub struct Fig6Row {
    /// Query number.
    pub query: usize,
    /// Uncertain variables.
    pub uncertain_vars: usize,
    /// Static plan nodes.
    pub static_nodes: usize,
    /// Dynamic plan DAG nodes (selectivities).
    pub dynamic_nodes: usize,
    /// Dynamic plan DAG nodes (selectivities + memory).
    pub dynamic_nodes_mem: Option<usize>,
    /// Choose-plan operators in the dynamic plan.
    pub choose_plans: usize,
    /// Complete static plans contained in the dynamic plan.
    pub contained_plans: f64,
}

/// Extracts data points.
#[must_use]
pub fn rows(results: &[QueryResults]) -> Vec<Fig6Row> {
    results
        .iter()
        .map(|r| Fig6Row {
            query: r.query,
            uncertain_vars: r.uncertain_vars,
            static_nodes: r.static_sel.plan_nodes,
            dynamic_nodes: r.dynamic_sel.plan_nodes,
            dynamic_nodes_mem: r.dynamic_mem.as_ref().map(|s| s.plan_nodes),
            choose_plans: r.dynamic_sel.choose_plans,
            contained_plans: r.dynamic_sel.opt_stats.contained_plans,
        })
        .collect()
}

/// Renders the figure as a table.
#[must_use]
pub fn table(results: &[QueryResults]) -> Table {
    let mut t = Table::new(
        "Figure 6: plan sizes (DAG operator nodes) for static and dynamic plans \
         (paper query 5 with memory: 21 vs 14,090)",
        &[
            "query",
            "#vars",
            "static nodes",
            "dynamic nodes",
            "+mem nodes",
            "choose-plans",
            "contained plans",
        ],
    );
    for row in rows(results) {
        t.row(vec![
            row.query.to_string(),
            row.uncertain_vars.to_string(),
            row.static_nodes.to_string(),
            row.dynamic_nodes.to_string(),
            row.dynamic_nodes_mem
                .map(|n| n.to_string())
                .unwrap_or_else(|| "-".into()),
            row.choose_plans.to_string(),
            format!("{:.3e}", row.contained_plans),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::run_query;
    use crate::params::ExperimentParams;

    #[test]
    fn dynamic_plans_are_much_larger_and_memory_adds_little() {
        let params = ExperimentParams {
            invocations: 3,
            ..ExperimentParams::paper()
        };
        let results = vec![run_query(2, &params)];
        let r = &rows(&results)[0];
        assert!(r.dynamic_nodes > 2 * r.static_nodes);
        assert!(r.contained_plans >= 2.0);
        let with_mem = r.dynamic_nodes_mem.unwrap();
        // "Barely increases": allow growth but not another blow-up.
        assert!(with_mem >= r.dynamic_nodes);
        assert!(with_mem <= r.dynamic_nodes * 3);
        assert!(table(&results).render().contains("Figure 6"));
    }
}
