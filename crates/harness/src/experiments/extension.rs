//! Extension experiment: selectivity-estimation error and its remedies.
//!
//! Not part of the paper's evaluation — this exercises the *future work*
//! its final section motivates: on skewed data the uniform selectivity
//! model misleads even the start-up-time decision (the binding is known,
//! but the fraction it selects is not). Two remedies are measured against
//! the estimation-blind baseline, on actually-executed (simulated-time)
//! queries:
//!
//! * **histograms** — equi-width statistics repair the bound estimate at
//!   optimization/start-up time;
//! * **adaptive** — one pilot-execution round observes the uncertain
//!   subplan's true cardinality before deciding (Section 7's "evaluating
//!   subplans as part of choose-plan decision procedures").

use dqep_algebra::{CompareOp, HostVar, JoinPred, LogicalExpr, SelectPred};
use dqep_catalog::{Catalog, CatalogBuilder, SystemConfig};
use dqep_cost::{Bindings, Environment};
use dqep_core::Optimizer;
use dqep_executor::{execute_adaptive, execute_plan};
use dqep_storage::{install_histograms, StoredDatabase, ValueDistribution};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::report::{fmt_ratio, fmt_secs, Table};

/// One data point: a skew level and the three strategies' average
/// executed times.
#[derive(Debug, Clone, Copy)]
pub struct ExtensionRow {
    /// Zipf exponent of the stored data (0 = uniform).
    pub skew: f64,
    /// Estimation-blind dynamic plan, average executed (simulated) secs.
    pub blind: f64,
    /// With histograms installed.
    pub histogram: f64,
    /// Adaptive (pilot + main), including the pilot's cost.
    pub adaptive: f64,
    /// Adaptive main execution only (the decision-quality component).
    pub adaptive_main: f64,
}

fn workload(skew: f64, seed: u64) -> (Catalog, StoredDatabase, LogicalExpr) {
    let catalog = CatalogBuilder::new(SystemConfig::paper_1994())
        .relation("r", 800, 512, |r| {
            r.attr("a", 800.0).attr("j", 200.0).btree("a", false).btree("j", false)
        })
        .relation("s", 400, 512, |r| {
            r.attr("a", 400.0).attr("j", 200.0).btree("j", false)
        })
        .build()
        .expect("catalog");
    let dist = if skew == 0.0 {
        ValueDistribution::Uniform
    } else {
        ValueDistribution::Zipf { exponent: skew }
    };
    let db = StoredDatabase::generate_with(&catalog, seed, dist);
    let r = catalog.relation_by_name("r").expect("r");
    let s = catalog.relation_by_name("s").expect("s");
    let q = LogicalExpr::get(r.id)
        .select(SelectPred::unbound(
            r.attr_id("a").expect("attr"),
            CompareOp::Lt,
            HostVar(0),
        ))
        .join(
            LogicalExpr::get(s.id),
            vec![JoinPred::new(
                r.attr_id("j").expect("attr"),
                s.attr_id("j").expect("attr"),
            )],
        );
    (catalog, db, q)
}

/// Runs the experiment across skew levels.
#[must_use]
pub fn run(invocations: usize, seed: u64) -> Vec<ExtensionRow> {
    [0.0f64, 0.6, 1.0, 1.4]
        .into_iter()
        .map(|skew| run_one(skew, invocations, seed))
        .collect()
}

fn run_one(skew: f64, invocations: usize, seed: u64) -> ExtensionRow {
    let (catalog, db, query) = workload(skew, seed);
    let env = Environment::dynamic_compile_time(&catalog.config);
    let blind_plan = Optimizer::new(&catalog, &env)
        .optimize(&query)
        .expect("optimize")
        .plan;

    let mut hist_catalog = catalog.clone();
    install_histograms(&db, &mut hist_catalog, 32).expect("histograms");
    let hist_plan = Optimizer::new(&hist_catalog, &env)
        .optimize(&query)
        .expect("optimize")
        .plan;

    let cfg = &catalog.config;
    let mut rng = StdRng::seed_from_u64(seed ^ 0xE77);
    let (mut blind, mut histogram, mut adaptive, mut adaptive_main) = (0.0, 0.0, 0.0, 0.0);
    for _ in 0..invocations {
        // Bindings target the head of the domain — the values Zipf piles
        // its mass on and real applications query most. This is the regime
        // where the uniform estimate ("v/domain is tiny") and the truth
        // ("most rows qualify") diverge hardest.
        let v = rng.gen_range(1..120);
        let b = Bindings::new().with_value(HostVar(0), v);

        let (e, _) = execute_plan(&blind_plan, &db, &catalog, &env, &b).expect("exec");
        blind += e.simulated_seconds(cfg);

        let (e, _) = execute_plan(&hist_plan, &db, &hist_catalog, &env, &b).expect("exec");
        histogram += e.simulated_seconds(cfg);

        let a = execute_adaptive(&blind_plan, &db, &catalog, &env, &b).expect("exec");
        adaptive += a.total_seconds(cfg);
        adaptive_main += a.main.simulated_seconds(cfg);
    }
    let n = invocations.max(1) as f64;
    ExtensionRow {
        skew,
        blind: blind / n,
        histogram: histogram / n,
        adaptive: adaptive / n,
        adaptive_main: adaptive_main / n,
    }
}

/// Renders the extension table.
#[must_use]
pub fn table(rows: &[ExtensionRow]) -> Table {
    let mut t = Table::new(
        "Extension: estimation error on skewed data — executed (simulated) time per invocation \
         (blind vs histogram statistics vs one-round adaptive execution)",
        &[
            "zipf skew",
            "blind",
            "histogram",
            "adaptive (incl pilot)",
            "adaptive main",
            "hist gain",
            "adaptive gain",
        ],
    );
    for r in rows {
        t.row(vec![
            format!("{:.1}", r.skew),
            fmt_secs(r.blind),
            fmt_secs(r.histogram),
            fmt_secs(r.adaptive),
            fmt_secs(r.adaptive_main),
            fmt_ratio(r.blind / r.histogram),
            fmt_ratio(r.blind / r.adaptive_main),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remedies_win_under_heavy_skew() {
        let rows = run(12, 5);
        let uniform = &rows[0];
        let heavy = rows.last().expect("rows");
        // On uniform data all strategies are close (within 20%).
        assert!((uniform.blind / uniform.histogram - 1.0).abs() < 0.2);
        // Under heavy skew the remedies must deliver a real gain.
        assert!(
            heavy.blind / heavy.histogram > 1.3,
            "expected a histogram gain, got {} vs {}",
            heavy.blind,
            heavy.histogram
        );
        // Under heavy skew, better estimates must not lose, and the main
        // execution of the adaptive strategy tracks the histogram one.
        assert!(
            heavy.histogram <= heavy.blind * 1.05,
            "histogram {} vs blind {}",
            heavy.histogram,
            heavy.blind
        );
        assert!(
            heavy.adaptive_main <= heavy.blind * 1.05,
            "adaptive main {} vs blind {}",
            heavy.adaptive_main,
            heavy.blind
        );
        assert!(table(&rows).render().contains("Extension"));
    }
}
