//! Table 1: logical and physical algebra operators.
//!
//! Regenerates the paper's operator/algorithm matrix from the actually
//! implemented algebra, so the table cannot drift from the code.

use crate::report::Table;

/// Renders Table 1.
#[must_use]
pub fn table() -> Table {
    let mut t = Table::new(
        "Table 1: logical and physical algebra operators",
        &["operator type", "logical operator / property", "physical algorithm"],
    );
    for (ty, logical, physical) in entries() {
        t.row(vec![ty.into(), logical.into(), physical.into()]);
    }
    t
}

/// The matrix entries, derived from the implemented algebra.
#[must_use]
pub fn entries() -> Vec<(&'static str, &'static str, &'static str)> {
    use dqep_algebra::PhysicalOp;
    use dqep_catalog::{AttrId, IndexId, RelationId};

    // Instantiate one operator of each kind so the names come from the
    // implementation, not from a string list that could go stale.
    let attr = AttrId {
        relation: RelationId(0),
        index: 0,
    };
    let pred = dqep_algebra::SelectPred::bound(attr, dqep_algebra::CompareOp::Lt, 0);
    let file_scan = PhysicalOp::FileScan { relation: RelationId(0) };
    let btree_scan = PhysicalOp::BtreeScan {
        relation: RelationId(0),
        index: IndexId(0),
        key_attr: attr,
    };
    let filter = PhysicalOp::Filter { predicate: pred };
    let fbs = PhysicalOp::FilterBtreeScan {
        relation: RelationId(0),
        index: IndexId(0),
        predicate: pred,
    };
    let hj = PhysicalOp::HashJoin { predicates: vec![] };
    let mj = PhysicalOp::MergeJoin { predicates: vec![] };
    let ij = PhysicalOp::IndexJoin {
        predicates: vec![],
        inner: RelationId(0),
        index: IndexId(0),
        residual: None,
    };
    let sort = PhysicalOp::Sort { attr };
    let cp = PhysicalOp::ChoosePlan;

    vec![
        ("Data retrieval", "Get-Set", file_scan.name()),
        ("Data retrieval", "Get-Set", btree_scan.name()),
        ("Select, project", "Select", filter.name()),
        ("Select, project", "Select", fbs.name()),
        ("Join", "Join", hj.name()),
        ("Join", "Join", mj.name()),
        ("Join", "Join", ij.name()),
        ("Enforcer", "Sort order", sort.name()),
        ("Enforcer", "Plan robustness", cp.name()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_table1() {
        let e = entries();
        assert_eq!(e.len(), 9);
        let physical: Vec<&str> = e.iter().map(|(_, _, p)| *p).collect();
        for expected in [
            "File-Scan",
            "B-tree-Scan",
            "Filter",
            "Filter-B-tree-Scan",
            "Hash-Join",
            "Merge-Join",
            "Index-Join",
            "Sort",
            "Choose-Plan",
        ] {
            assert!(physical.contains(&expected), "missing {expected}");
        }
        assert!(table().render().contains("Plan robustness"));
    }
}
