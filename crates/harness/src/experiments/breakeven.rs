//! Break-even analysis (paper Section 6).
//!
//! * vs static plans: the smallest `N` with
//!   `e + N(f + ḡ) < a + N(b + c̄)`, i.e.
//!   `N = ⌈(e − a) / ((b + c̄) − (f + ḡ))⌉`. The paper reports
//!   `N_break-even = 1` in all experiments.
//! * vs run-time optimization: the smallest `N` with
//!   `e + N(f + ḡ) ≤ N(a + d̄)`; with `ḡ = d̄` this is
//!   `N = ⌈e / (a − f)⌉`. The paper reports 2 (query 2) to 4 (query 5).
//!   Following the measurement note of [`super::fig8`], `f` here is the
//!   *measured* start-up CPU (cost re-evaluation), compared against the
//!   *measured* re-optimization time `a` — the modeled 1994 module-read
//!   I/O is excluded from this cross-scenario CPU comparison.

use crate::report::{fmt_secs, Table};

use super::QueryResults;

/// Break-even points of one query.
#[derive(Debug, Clone, Copy)]
pub struct BreakEvenRow {
    /// Query number.
    pub query: usize,
    /// Break-even invocations vs static plans (`None` when dynamic plans
    /// never pay off, i.e. the static plan is at least as fast per
    /// invocation).
    pub vs_static: Option<u64>,
    /// Break-even invocations vs run-time optimization (`None` when
    /// re-optimization is cheaper than dynamic-plan activation).
    pub vs_runtime_opt: Option<u64>,
    /// The terms, for the report: `e`, `a_static`, `a_runtime`, `f`,
    /// `b + c̄`, `f + ḡ`.
    pub e: f64,
    /// Static compile-time optimization seconds.
    pub a_static: f64,
    /// Per-invocation run-time optimization seconds.
    pub a_runtime: f64,
    /// Dynamic per-invocation activation seconds.
    pub f: f64,
    /// Static per-invocation total (`b + c̄`).
    pub static_per_inv: f64,
    /// Dynamic per-invocation total (`f + ḡ`).
    pub dynamic_per_inv: f64,
}

/// Computes break-even points from scenario results.
#[must_use]
pub fn rows(results: &[QueryResults]) -> Vec<BreakEvenRow> {
    results
        .iter()
        .map(|r| {
            let e = r.dynamic_sel.optimize_seconds;
            let a_static = r.static_sel.optimize_seconds;
            let a_runtime = r.runtime_sel.optimize_seconds;
            let f = r.dynamic_sel.activation_seconds;
            let static_per_inv = r.static_sel.activation_seconds + r.static_sel.avg_exec();
            let dynamic_per_inv = f + r.dynamic_sel.avg_exec();

            let vs_static = (static_per_inv > dynamic_per_inv)
                .then(|| (((e - a_static) / (static_per_inv - dynamic_per_inv)).ceil()).max(1.0) as u64);
            let f_cpu = r.dynamic_sel.measured_startup_cpu;
            let vs_runtime_opt = (a_runtime > f_cpu)
                .then(|| ((e / (a_runtime - f_cpu)).ceil()).max(1.0) as u64);

            BreakEvenRow {
                query: r.query,
                vs_static,
                vs_runtime_opt,
                e,
                a_static,
                a_runtime,
                f,
                static_per_inv,
                dynamic_per_inv,
            }
        })
        .collect()
}

/// Renders the break-even table.
#[must_use]
pub fn table(results: &[QueryResults]) -> Table {
    let mut t = Table::new(
        "Break-even points (paper: N=1 vs static plans; N=2..4 vs run-time optimization)",
        &[
            "query",
            "e (dyn opt)",
            "a (static opt)",
            "a (reopt)",
            "f (activate)",
            "b+c (static/inv)",
            "f+g (dyn/inv)",
            "N vs static",
            "N vs reopt",
        ],
    );
    for row in rows(results) {
        let fmt_n = |n: Option<u64>| n.map(|v| v.to_string()).unwrap_or_else(|| "never".into());
        t.row(vec![
            row.query.to_string(),
            fmt_secs(row.e),
            fmt_secs(row.a_static),
            fmt_secs(row.a_runtime),
            fmt_secs(row.f),
            fmt_secs(row.static_per_inv),
            fmt_secs(row.dynamic_per_inv),
            fmt_n(row.vs_static),
            fmt_n(row.vs_runtime_opt),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::run_query;
    use crate::params::ExperimentParams;

    #[test]
    fn break_even_vs_static_is_small() {
        let params = ExperimentParams {
            invocations: 15,
            with_memory_uncertainty: false,
            ..ExperimentParams::paper()
        };
        let results = vec![run_query(2, &params)];
        let r = &rows(&results)[0];
        // Dynamic plans pay off essentially immediately: the execution
        // savings dwarf the (tiny) extra optimization and activation costs.
        let n = r.vs_static.expect("dynamic should pay off");
        assert!(n <= 2, "break-even vs static was {n}");
        assert!(table(&results).render().contains("Break-even"));
    }
}
