//! Figure 5: optimization time for static and dynamic plans.
//!
//! "For any query, the worst increase in optimization times is less than a
//! factor of 3, 27.1 sec versus 80.6 sec for query 5. This difference is
//! primarily due to the reduced effectiveness of branch-and-bound pruning."

use crate::report::{fmt_ratio, fmt_secs, Table};

use super::QueryResults;

/// Paper-reported optimization times for query 5 (seconds, 1994 hardware).
pub const PAPER_Q5_STATIC: f64 = 27.1;
/// See [`PAPER_Q5_STATIC`].
pub const PAPER_Q5_DYNAMIC: f64 = 80.6;

/// One data point.
#[derive(Debug, Clone, Copy)]
pub struct Fig5Row {
    /// Query number.
    pub query: usize,
    /// Uncertain variables.
    pub uncertain_vars: usize,
    /// Measured static optimization seconds.
    pub static_opt: f64,
    /// Measured dynamic optimization seconds (selectivities).
    pub dynamic_opt: f64,
    /// Measured dynamic optimization seconds (selectivities + memory).
    pub dynamic_opt_mem: Option<f64>,
    /// Branch-and-bound prunes during static optimization.
    pub static_pruned: usize,
    /// Branch-and-bound prunes during dynamic optimization — the paper's
    /// explanation for the slowdown is that this collapses.
    pub dynamic_pruned: usize,
}

/// Extracts data points.
#[must_use]
pub fn rows(results: &[QueryResults]) -> Vec<Fig5Row> {
    results
        .iter()
        .map(|r| Fig5Row {
            query: r.query,
            uncertain_vars: r.uncertain_vars,
            static_opt: r.static_sel.optimize_seconds,
            dynamic_opt: r.dynamic_sel.optimize_seconds,
            dynamic_opt_mem: r.dynamic_mem.as_ref().map(|s| s.optimize_seconds),
            static_pruned: r.static_sel.opt_stats.pruned_by_bound,
            dynamic_pruned: r.dynamic_sel.opt_stats.pruned_by_bound,
        })
        .collect()
}

/// Renders the figure as a table.
#[must_use]
pub fn table(results: &[QueryResults]) -> Table {
    let mut t = Table::new(
        "Figure 5: optimization time for static and dynamic plans \
         (paper query 5: 27.1 s vs 80.6 s, < 3x)",
        &[
            "query",
            "#vars",
            "static opt",
            "dynamic opt",
            "ratio",
            "+mem opt",
            "static prunes",
            "dynamic prunes",
        ],
    );
    for row in rows(results) {
        t.row(vec![
            row.query.to_string(),
            row.uncertain_vars.to_string(),
            fmt_secs(row.static_opt),
            fmt_secs(row.dynamic_opt),
            fmt_ratio(row.dynamic_opt / row.static_opt),
            row.dynamic_opt_mem.map(fmt_secs).unwrap_or_else(|| "-".into()),
            row.static_pruned.to_string(),
            row.dynamic_pruned.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::run_query;
    use crate::params::ExperimentParams;

    #[test]
    fn pruning_collapses_in_dynamic_mode() {
        let params = ExperimentParams {
            invocations: 3,
            with_memory_uncertainty: false,
            ..ExperimentParams::paper()
        };
        let results = vec![run_query(3, &params)];
        let rows = rows(&results);
        assert!(
            rows[0].static_pruned > rows[0].dynamic_pruned,
            "static prunes {} should exceed dynamic prunes {}",
            rows[0].static_pruned,
            rows[0].dynamic_pruned
        );
        assert!(rows[0].static_opt > 0.0 && rows[0].dynamic_opt > 0.0);
        assert!(table(&results).render().contains("Figure 5"));
    }
}
