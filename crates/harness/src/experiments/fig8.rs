//! Figure 8: run-time optimization versus dynamic plans.
//!
//! Compares the per-invocation run-time components: `a + d̄` for run-time
//! optimization against `f + ḡ` for dynamic plans. "For other than the
//! simplest queries, there is a significant overall decrease in execution
//! time when using dynamic plans. For query 5, the decrease exceeds a
//! factor of 2. This substantial difference is primarily due to the cost
//! of the start-up-time optimization, which is large when compared to the
//! relatively small run-time overhead of dynamic plans."
//!
//! **Measurement note.** The decisive comparison is between two *measured
//! CPU* quantities: re-optimizing the query (`a`) versus re-evaluating the
//! cost functions over the dynamic plan's DAG (`f_cpu`); the paper's
//! conclusion rests on `f_cpu ≪ a`. The access-module read time (`f_io`)
//! is *modeled* with the paper's 1994 disk constants and is reported
//! separately: mixing a 1994-modeled I/O constant into a 2020s-measured
//! CPU comparison would let the model term dominate and invert the
//! comparison for reasons unrelated to the algorithm (on the paper's
//! hardware `a` was tens of seconds; on a modern laptop it is microseconds
//! while the modeled module read stays constant).

use crate::report::{fmt_ratio, fmt_secs, Table};

use super::QueryResults;

/// One data point.
#[derive(Debug, Clone, Copy)]
pub struct Fig8Row {
    /// Query number.
    pub query: usize,
    /// Uncertain variables.
    pub uncertain_vars: usize,
    /// Measured per-invocation optimization seconds of the run-time
    /// optimizer (`a`).
    pub runtime_opt_seconds: f64,
    /// Average execution seconds under run-time optimization (`d̄`).
    pub runtime_exec: f64,
    /// Measured per-invocation start-up CPU of the dynamic plan
    /// (`f_cpu`: cost re-evaluation + choose-plan decisions).
    pub dynamic_startup_cpu: f64,
    /// Modeled per-invocation module-read I/O of the dynamic plan
    /// (`f_io`, 1994 disk constants).
    pub dynamic_module_io: f64,
    /// Average execution seconds of the dynamic plan (`ḡ`).
    pub dynamic_exec: f64,
}

impl Fig8Row {
    /// Measured-CPU ratio `a / f_cpu` — the paper's core claim is that
    /// this is large.
    #[must_use]
    pub fn cpu_ratio(&self) -> f64 {
        self.runtime_opt_seconds / self.dynamic_startup_cpu
    }

    /// Full per-invocation comparison `(a + d̄) / (f_cpu + f_io + ḡ)`,
    /// mixing measured CPU with the modeled module read.
    #[must_use]
    pub fn full_ratio(&self) -> f64 {
        (self.runtime_opt_seconds + self.runtime_exec)
            / (self.dynamic_startup_cpu + self.dynamic_module_io + self.dynamic_exec)
    }
}

/// Extracts data points.
#[must_use]
pub fn rows(results: &[QueryResults]) -> Vec<Fig8Row> {
    results
        .iter()
        .map(|r| {
            let cfg = &r.workload.catalog.config;
            Fig8Row {
                query: r.query,
                uncertain_vars: r.uncertain_vars,
                runtime_opt_seconds: r.runtime_sel.optimize_seconds,
                runtime_exec: r.runtime_sel.avg_exec(),
                dynamic_startup_cpu: r.dynamic_sel.measured_startup_cpu,
                dynamic_module_io: cfg.module_read_time(r.dynamic_sel.plan_nodes),
                dynamic_exec: r.dynamic_sel.avg_exec(),
            }
        })
        .collect()
}

/// Renders the figure as a table.
#[must_use]
pub fn table(results: &[QueryResults]) -> Table {
    let mut t = Table::new(
        "Figure 8: run-time optimization vs dynamic plans, per invocation \
         (paper: dynamic wins by > 2x for query 5; core mechanism a >> f_cpu)",
        &[
            "query",
            "#vars",
            "a (reopt, meas)",
            "f_cpu (meas)",
            "a/f_cpu",
            "f_io (model)",
            "d_avg",
            "g_avg",
            "(a+d)/(f+g)",
        ],
    );
    for row in rows(results) {
        t.row(vec![
            row.query.to_string(),
            row.uncertain_vars.to_string(),
            fmt_secs(row.runtime_opt_seconds),
            fmt_secs(row.dynamic_startup_cpu),
            fmt_ratio(row.cpu_ratio()),
            fmt_secs(row.dynamic_module_io),
            fmt_secs(row.runtime_exec),
            fmt_secs(row.dynamic_exec),
            fmt_ratio(row.full_ratio()),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::run_query;
    use crate::params::ExperimentParams;

    #[test]
    fn dynamic_execution_matches_runtime_opt_execution() {
        let params = ExperimentParams {
            invocations: 8,
            with_memory_uncertainty: false,
            ..ExperimentParams::paper()
        };
        let results = vec![run_query(2, &params)];
        let r = &rows(&results)[0];
        // ḡ = d̄ — identical plans are chosen.
        assert!(
            (r.dynamic_exec - r.runtime_exec).abs() < 1e-6,
            "g {} vs d {}",
            r.dynamic_exec,
            r.runtime_exec
        );
        assert!(table(&results).render().contains("Figure 8"));
    }

    #[test]
    fn startup_is_cheaper_than_reoptimization() {
        // The paper's mechanism: evaluating the decision procedures is
        // much faster than optimizing the query (f_cpu << a). Use the
        // 4-way join where optimization is substantial.
        let params = ExperimentParams {
            invocations: 8,
            with_memory_uncertainty: false,
            ..ExperimentParams::paper()
        };
        let results = vec![run_query(3, &params)];
        let r = &rows(&results)[0];
        assert!(
            r.dynamic_startup_cpu < r.runtime_opt_seconds,
            "f_cpu {} should be below a {}",
            r.dynamic_startup_cpu,
            r.runtime_opt_seconds
        );
    }
}
