//! Figure 3: the three optimization scenarios, as measured timelines.
//!
//! The paper's Figure 3 is a schematic of when work happens in each
//! scenario. This module renders the measured/modeled values of the
//! schematic's symbols for one query: `a, b, c̄` (static), `a, d̄`
//! (run-time optimization), `e, f, ḡ` (dynamic plans), plus the total
//! effort over `N` invocations.

use crate::report::{fmt_secs, Table};

use super::QueryResults;

/// Renders the scenario comparison for one query's results.
#[must_use]
pub fn table(r: &QueryResults) -> Table {
    let n = r.static_sel.exec_seconds.len();
    let mut t = Table::new(
        format!(
            "Figure 3: optimization scenarios for query {} over N={} invocations",
            r.query, n
        ),
        &[
            "scenario",
            "compile-opt",
            "per-inv opt",
            "activate/inv",
            "avg exec",
            "total effort",
        ],
    );
    let total_static = r.static_sel.optimize_seconds + r.static_sel.runtime_effort();
    t.row(vec![
        "static".into(),
        fmt_secs(r.static_sel.optimize_seconds),
        "0".into(),
        fmt_secs(r.static_sel.activation_seconds),
        fmt_secs(r.static_sel.avg_exec()),
        fmt_secs(total_static),
    ]);
    t.row(vec![
        "run-time opt".into(),
        "0".into(),
        fmt_secs(r.runtime_sel.optimize_seconds),
        "0".into(),
        fmt_secs(r.runtime_sel.avg_exec()),
        fmt_secs(r.runtime_sel.runtime_effort()),
    ]);
    let total_dynamic = r.dynamic_sel.optimize_seconds + r.dynamic_sel.runtime_effort();
    t.row(vec![
        "dynamic".into(),
        fmt_secs(r.dynamic_sel.optimize_seconds),
        "0".into(),
        fmt_secs(r.dynamic_sel.activation_seconds),
        fmt_secs(r.dynamic_sel.avg_exec()),
        fmt_secs(total_dynamic),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::run_query;
    use crate::params::ExperimentParams;

    #[test]
    fn dynamic_total_effort_wins_over_both() {
        // The paper's claim: over many invocations,
        // e + N·f + Σg < a + N·b + Σc and e + N·f + Σg < N·a + Σd.
        let params = ExperimentParams {
            invocations: 25,
            with_memory_uncertainty: false,
            ..ExperimentParams::paper()
        };
        let r = run_query(2, &params);
        let total_static = r.static_sel.optimize_seconds + r.static_sel.runtime_effort();
        let total_dynamic = r.dynamic_sel.optimize_seconds + r.dynamic_sel.runtime_effort();
        assert!(
            total_dynamic < total_static,
            "dynamic {total_dynamic} vs static {total_static}"
        );
        // vs run-time optimization, compare measured CPU effort (see the
        // fig8 measurement note): e + N*f_cpu + sum(g) < N*a + sum(d).
        let n = 25.0;
        let dynamic_cpu = r.dynamic_sel.optimize_seconds
            + n * r.dynamic_sel.measured_startup_cpu
            + r.dynamic_sel.exec_seconds.iter().sum::<f64>();
        let runtime_cpu =
            n * r.runtime_sel.optimize_seconds + r.runtime_sel.exec_seconds.iter().sum::<f64>();
        assert!(
            dynamic_cpu < runtime_cpu,
            "dynamic CPU effort {dynamic_cpu} vs run-time opt {runtime_cpu}"
        );
        let t = table(&r);
        assert_eq!(t.len(), 3);
        assert!(t.render().contains("run-time opt"));
    }
}
