//! Figure 7: start-up CPU times for dynamic plans.
//!
//! "The increase in start-up CPU time introduced by dynamic plans almost
//! exactly parallels the increase in plan size. … for the most complex
//! dynamic plan the CPU effort at start-up-time is 5.8 sec, in spite of
//! the fact that a cost function must be evaluated for each node in the
//! dynamic plan."

use crate::report::{fmt_secs, Table};

use super::QueryResults;

/// Paper-reported start-up CPU for query 5 (seconds, 1994 hardware).
pub const PAPER_Q5_STARTUP_CPU: f64 = 5.8;

/// One data point.
#[derive(Debug, Clone, Copy)]
pub struct Fig7Row {
    /// Query number.
    pub query: usize,
    /// Uncertain variables.
    pub uncertain_vars: usize,
    /// Plan DAG nodes (each costed once at start-up).
    pub plan_nodes: usize,
    /// Modeled start-up CPU seconds (nodes × per-evaluation constant).
    pub modeled_cpu: f64,
    /// Measured start-up CPU seconds on the host (avg per invocation).
    pub measured_cpu: f64,
    /// Same figures with memory uncertainty, when run.
    pub modeled_cpu_mem: Option<f64>,
}

/// Extracts data points.
#[must_use]
pub fn rows(results: &[QueryResults]) -> Vec<Fig7Row> {
    results
        .iter()
        .map(|r| Fig7Row {
            query: r.query,
            uncertain_vars: r.uncertain_vars,
            plan_nodes: r.dynamic_sel.plan_nodes,
            modeled_cpu: r.dynamic_sel.modeled_startup_cpu,
            measured_cpu: r.dynamic_sel.measured_startup_cpu,
            modeled_cpu_mem: r.dynamic_mem.as_ref().map(|s| s.modeled_startup_cpu),
        })
        .collect()
}

/// Renders the figure as a table.
#[must_use]
pub fn table(results: &[QueryResults]) -> Table {
    let mut t = Table::new(
        "Figure 7: start-up CPU time of dynamic plans \
         (paper query 5: 5.8 s for 14,090 nodes)",
        &[
            "query",
            "#vars",
            "plan nodes",
            "modeled cpu",
            "measured cpu",
            "+mem modeled",
        ],
    );
    for row in rows(results) {
        t.row(vec![
            row.query.to_string(),
            row.uncertain_vars.to_string(),
            row.plan_nodes.to_string(),
            fmt_secs(row.modeled_cpu),
            fmt_secs(row.measured_cpu),
            row.modeled_cpu_mem.map(fmt_secs).unwrap_or_else(|| "-".into()),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::run_query;
    use crate::params::ExperimentParams;

    #[test]
    fn startup_cpu_parallels_plan_size() {
        let params = ExperimentParams {
            invocations: 5,
            with_memory_uncertainty: false,
            ..ExperimentParams::paper()
        };
        let results = vec![run_query(1, &params), run_query(3, &params)];
        let rs = rows(&results);
        assert!(rs[1].plan_nodes > rs[0].plan_nodes);
        assert!(rs[1].modeled_cpu > rs[0].modeled_cpu);
        // Modeled CPU = nodes × overhead constant, exactly.
        let cfg = &results[0].workload.catalog.config;
        let expected = rs[0].plan_nodes as f64 * cfg.choose_plan_overhead;
        assert!((rs[0].modeled_cpu - expected).abs() < 1e-12);
        assert!(rs[1].measured_cpu > 0.0);
        assert!(table(&results).render().contains("Figure 7"));
    }
}
