//! Experiment drivers: one module per paper table/figure.
//!
//! [`run_all`] executes the full Section 6 protocol once — five queries ×
//! three scenarios × two uncertainty families — and the per-figure modules
//! render their tables from the shared [`QueryResults`], so regenerating
//! all figures costs a single pass.

pub mod ablation;
pub mod breakeven;
pub mod extension;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod table1;

use crate::bindings::BindingSampler;
use crate::params::{ExperimentParams, QUERY_RELATIONS};
use crate::queries::{paper_query, Workload};
use crate::scenario::{run_dynamic, run_runtime_opt, run_static, ScenarioResult};

/// All scenario results for one of the paper's five queries.
#[derive(Debug)]
pub struct QueryResults {
    /// Query number (1–5).
    pub query: usize,
    /// Number of uncertain selectivity variables (= relations).
    pub uncertain_vars: usize,
    /// The workload (catalog + query).
    pub workload: Workload,
    /// Static scenario, selectivity uncertainty only.
    pub static_sel: ScenarioResult,
    /// Dynamic scenario, selectivity uncertainty only (○-curves).
    pub dynamic_sel: ScenarioResult,
    /// Run-time optimization, selectivity uncertainty only.
    pub runtime_sel: ScenarioResult,
    /// Static scenario with uncertain memory bindings (□-curves).
    pub static_mem: Option<ScenarioResult>,
    /// Dynamic scenario with uncertain memory (□-curves).
    pub dynamic_mem: Option<ScenarioResult>,
}

impl QueryResults {
    /// The number of uncertain variables including memory (the x-axis of
    /// the paper's □-curves is shifted right by one).
    #[must_use]
    pub fn uncertain_vars_with_memory(&self) -> usize {
        self.uncertain_vars + 1
    }
}

/// Runs the full experimental protocol.
#[must_use]
pub fn run_all(params: &ExperimentParams) -> Vec<QueryResults> {
    (1..=QUERY_RELATIONS.len())
        .map(|k| run_query(k, params))
        .collect()
}

/// Runs one query's scenarios.
#[must_use]
pub fn run_query(k: usize, params: &ExperimentParams) -> QueryResults {
    let workload = paper_query(k, params.seed.wrapping_add(k as u64));
    let bindings_sel =
        BindingSampler::new(params.seed ^ 0xB17D, false).sample_n(&workload, params.invocations);
    let static_sel = run_static(&workload, &bindings_sel);
    let dynamic_sel = run_dynamic(&workload, &bindings_sel, false);
    let runtime_sel = run_runtime_opt(&workload, &bindings_sel);

    let (static_mem, dynamic_mem) = if params.with_memory_uncertainty {
        let bindings_mem = BindingSampler::new(params.seed ^ 0x3E30, true)
            .sample_n(&workload, params.invocations);
        (
            Some(run_static(&workload, &bindings_mem)),
            Some(run_dynamic(&workload, &bindings_mem, true)),
        )
    } else {
        (None, None)
    };

    QueryResults {
        query: k,
        uncertain_vars: workload.uncertain_vars(),
        workload,
        static_sel,
        dynamic_sel,
        runtime_sel,
        static_mem,
        dynamic_mem,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_query_produces_consistent_results() {
        let params = ExperimentParams {
            invocations: 5,
            with_memory_uncertainty: true,
            ..ExperimentParams::paper()
        };
        let r = run_query(2, &params);
        assert_eq!(r.query, 2);
        assert_eq!(r.uncertain_vars, 2);
        assert_eq!(r.uncertain_vars_with_memory(), 3);
        assert_eq!(r.static_sel.exec_seconds.len(), 5);
        assert!(r.static_mem.is_some());
        assert!(r.dynamic_mem.is_some());
        // The robustness headline, on a tiny sample.
        assert!(r.dynamic_sel.avg_exec() <= r.static_sel.avg_exec() + 1e-9);
    }
}
