//! Ablations of the design choices Section 3 discusses.
//!
//! * **Branch-and-bound pruning** (lossless with intervals, but weakened):
//!   how much optimization time does it save?
//! * **DAG sharing**: plan size as a tree vs as a DAG — the paper's
//!   argument for representing dynamic plans as DAGs.
//! * **Bushy vs left-deep**: search-space restriction.
//! * **Multi-point probing**: the heuristic removal of
//!   pseudo-incomparable plans — plan size and robustness impact.
//! * **Frontier caps**: bounded robustness.

use dqep_core::SearchOptions;
use dqep_cost::Bindings;

use crate::bindings::BindingSampler;
use crate::queries::{paper_query, Workload};
use crate::report::{fmt_secs, Table};
use crate::scenario::{run_dynamic_with, ScenarioResult};

/// One ablation configuration.
#[derive(Debug, Clone)]
pub struct AblationCase {
    /// Label shown in the table.
    pub name: &'static str,
    /// The options to run with.
    pub options: SearchOptions,
}

/// The standard ablation suite.
#[must_use]
pub fn cases() -> Vec<AblationCase> {
    let paper = SearchOptions::paper();
    vec![
        AblationCase { name: "paper (baseline)", options: paper },
        AblationCase {
            name: "no branch-and-bound",
            options: SearchOptions { enable_pruning: false, ..paper },
        },
        AblationCase {
            name: "no DAG sharing (trees)",
            options: SearchOptions { dag_sharing: false, ..paper },
        },
        AblationCase {
            name: "left-deep only",
            options: SearchOptions { bushy: false, ..paper },
        },
        AblationCase {
            name: "probing k=5",
            options: SearchOptions { probe_points: 5, ..paper },
        },
        AblationCase {
            name: "frontier cap 2",
            options: SearchOptions { max_frontier: 2, ..paper },
        },
        AblationCase {
            name: "exhaustive plan",
            options: SearchOptions { exhaustive: true, ..paper },
        },
    ]
}

/// Result of one ablation run.
#[derive(Debug)]
pub struct AblationRow {
    /// Case label.
    pub name: &'static str,
    /// The dynamic scenario under this configuration.
    pub result: ScenarioResult,
}

/// Runs the ablation suite on the paper's query `k` with `invocations`
/// random bindings.
#[must_use]
pub fn run(k: usize, invocations: usize, seed: u64) -> (Workload, Vec<AblationRow>) {
    let workload = paper_query(k, seed);
    let bindings: Vec<Bindings> =
        BindingSampler::new(seed ^ 0xAB1A, false).sample_n(&workload, invocations);
    let rows = cases()
        .into_iter()
        .map(|case| AblationRow {
            name: case.name,
            result: run_dynamic_with(&workload, &bindings, false, case.options),
        })
        .collect();
    (workload, rows)
}

/// Renders the ablation table.
#[must_use]
pub fn table(query: usize, rows: &[AblationRow]) -> Table {
    let mut t = Table::new(
        format!("Ablations (dynamic-plan optimization of query {query})"),
        &[
            "configuration",
            "opt time",
            "plan nodes",
            "choose-plans",
            "avg exec",
            "considered",
            "pruned",
        ],
    );
    for row in rows {
        t.row(vec![
            row.name.to_string(),
            fmt_secs(row.result.optimize_seconds),
            row.result.plan_nodes.to_string(),
            row.result.choose_plans.to_string(),
            fmt_secs(row.result.avg_exec()),
            row.result.opt_stats.physical_considered.to_string(),
            row.result.opt_stats.pruned_by_bound.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablations_show_expected_directions() {
        let (w, rows) = run(2, 10, 77);
        let by_name = |n: &str| {
            rows.iter()
                .find(|r| r.name.starts_with(n))
                .unwrap_or_else(|| panic!("case {n}"))
        };
        let base = by_name("paper");
        let trees = by_name("no DAG sharing");
        let capped = by_name("frontier cap 2");

        // Trees blow the plan up; sharing keeps it small.
        assert!(trees.result.plan_nodes > base.result.plan_nodes);
        // Semantics unchanged without sharing.
        assert!((trees.result.avg_exec() - base.result.avg_exec()).abs() < 1e-9);
        // Caps shrink the plan but may cost robustness (exec can only be
        // equal or worse).
        assert!(capped.result.plan_nodes <= base.result.plan_nodes);
        assert!(capped.result.avg_exec() >= base.result.avg_exec() - 1e-9);
        assert_eq!(w.query_number, Some(2));
        assert!(table(2, &rows).render().contains("Ablations"));
    }

    #[test]
    fn pruning_off_is_lossless() {
        let (_w, rows) = run(2, 6, 78);
        let base = rows.iter().find(|r| r.name.starts_with("paper")).unwrap();
        let nobb = rows.iter().find(|r| r.name.contains("branch")).unwrap();
        for (a, b) in base
            .result
            .exec_seconds
            .iter()
            .zip(&nobb.result.exec_seconds)
        {
            assert!((a - b).abs() < 1e-9, "pruning changed plan quality");
        }
    }
}
