//! Figure 4: execution times of static and dynamic plans.
//!
//! "Obviously, the static plans are not competitive with their equivalent
//! dynamic plans. The performance difference varies between a factor of 5
//! for query 1 to a factor of 24 for query 5. … the average run time for
//! query 5 improved from 194.1 sec to 7.8 sec."

use crate::report::{fmt_ratio, fmt_secs, Table};

use super::QueryResults;

/// Paper-reported reference ratios (static / dynamic average run time) for
/// queries 1 and 5 — the end points of the reported "factor 5 … factor 24"
/// range.
pub const PAPER_RATIO_Q1: f64 = 5.0;
/// See [`PAPER_RATIO_Q1`].
pub const PAPER_RATIO_Q5: f64 = 24.0;

/// One data point of the figure.
#[derive(Debug, Clone, Copy)]
pub struct Fig4Row {
    /// Query number.
    pub query: usize,
    /// Uncertain variables (x-axis of the paper's plot).
    pub uncertain_vars: usize,
    /// Average static execution time (selectivities uncertain).
    pub static_avg: f64,
    /// Average dynamic execution time (selectivities uncertain).
    pub dynamic_avg: f64,
    /// Same with memory also uncertain, when run.
    pub static_avg_mem: Option<f64>,
    /// See `static_avg_mem`.
    pub dynamic_avg_mem: Option<f64>,
}

impl Fig4Row {
    /// Static-over-dynamic ratio (selectivities only).
    #[must_use]
    pub fn ratio(&self) -> f64 {
        self.static_avg / self.dynamic_avg
    }
}

/// Extracts the figure's data points.
#[must_use]
pub fn rows(results: &[QueryResults]) -> Vec<Fig4Row> {
    results
        .iter()
        .map(|r| Fig4Row {
            query: r.query,
            uncertain_vars: r.uncertain_vars,
            static_avg: r.static_sel.avg_exec(),
            dynamic_avg: r.dynamic_sel.avg_exec(),
            static_avg_mem: r.static_mem.as_ref().map(|s| s.avg_exec()),
            dynamic_avg_mem: r.dynamic_mem.as_ref().map(|s| s.avg_exec()),
        })
        .collect()
}

/// Renders the figure as a table (one row per query).
#[must_use]
pub fn table(results: &[QueryResults]) -> Table {
    let mut t = Table::new(
        "Figure 4: average execution times of static and dynamic plans \
         (paper: factors 5x..24x; query 5: 194.1 s -> 7.8 s)",
        &[
            "query",
            "#vars",
            "static",
            "dynamic",
            "ratio",
            "static+mem",
            "dynamic+mem",
            "ratio+mem",
        ],
    );
    for row in rows(results) {
        let mem_ratio = match (row.static_avg_mem, row.dynamic_avg_mem) {
            (Some(s), Some(d)) => fmt_ratio(s / d),
            _ => "-".into(),
        };
        t.row(vec![
            row.query.to_string(),
            row.uncertain_vars.to_string(),
            fmt_secs(row.static_avg),
            fmt_secs(row.dynamic_avg),
            fmt_ratio(row.ratio()),
            row.static_avg_mem.map(fmt_secs).unwrap_or_else(|| "-".into()),
            row.dynamic_avg_mem.map(fmt_secs).unwrap_or_else(|| "-".into()),
            mem_ratio,
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::run_query;
    use crate::params::ExperimentParams;

    #[test]
    fn dynamic_wins_and_table_renders() {
        let params = ExperimentParams {
            invocations: 15,
            ..ExperimentParams::paper()
        };
        let results = vec![run_query(1, &params), run_query(2, &params)];
        let rows = rows(&results);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(
                r.ratio() > 1.0,
                "query {}: static {} should exceed dynamic {}",
                r.query,
                r.static_avg,
                r.dynamic_avg
            );
        }
        let t = table(&results);
        assert_eq!(t.len(), 2);
        assert!(t.render().contains("Figure 4"));
    }
}
