//! Parallel experiment execution with worker isolation.
//!
//! The figure tables that report *measured times* (Figures 5, 7, 8) must
//! run sequentially — concurrent optimizer runs would contend for cores
//! and distort the microsecond-scale measurements. Everything else
//! (predicted execution times, plan sizes, node counts) is deterministic
//! and safe to compute concurrently. [`run_all_parallel`] runs the five
//! queries on scoped threads; use it for quick table regeneration,
//! smoke tests and benches, and [`super::experiments::run_all`] when
//! timing fidelity matters.
//!
//! A worker that panics is **isolated**: its panic is captured at
//! `join()` and reported as a [`WorkerFailure`] in the returned
//! [`ParallelRun`], so one bad query cannot abort the whole experiment
//! batch.

use crate::experiments::{run_query, QueryResults};
use crate::params::{ExperimentParams, QUERY_RELATIONS};

/// One worker that did not produce results.
#[derive(Debug, Clone)]
pub struct WorkerFailure {
    /// The 1-based paper query number the worker was running.
    pub query: usize,
    /// The captured panic message.
    pub message: String,
}

impl std::fmt::Display for WorkerFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "query {} worker failed: {}", self.query, self.message)
    }
}

/// The outcome of a parallel batch: the results that completed plus the
/// workers that failed.
#[derive(Debug, Default)]
pub struct ParallelRun {
    /// Results of the workers that completed, in query order.
    pub results: Vec<QueryResults>,
    /// Workers that panicked, in query order.
    pub failures: Vec<WorkerFailure>,
}

impl ParallelRun {
    /// Whether every worker completed.
    #[must_use]
    pub fn all_succeeded(&self) -> bool {
        self.failures.is_empty()
    }

    /// A one-line summary suitable for run logs.
    #[must_use]
    pub fn summary_line(&self) -> String {
        if self.all_succeeded() {
            format!("{} queries completed", self.results.len())
        } else {
            format!(
                "{} queries completed, {} failed ({})",
                self.results.len(),
                self.failures.len(),
                self.failures
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join("; ")
            )
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs all five paper queries concurrently (one scoped thread per
/// query), isolating any worker that panics.
///
/// Timing caveat: measured optimization and start-up times in the results
/// reflect a loaded machine; predicted execution times, plan sizes, and
/// decisions are identical to the sequential run.
#[must_use]
pub fn run_all_parallel_isolated(params: &ExperimentParams) -> ParallelRun {
    let outcomes: Vec<(usize, std::thread::Result<QueryResults>)> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = (1..=QUERY_RELATIONS.len())
                .map(|k| {
                    let params = *params;
                    (k, scope.spawn(move || run_query(k, &params)))
                })
                .collect();
            // Joining captures each worker's panic instead of letting the
            // scope re-raise it.
            handles.into_iter().map(|(k, h)| (k, h.join())).collect()
        });

    let mut run = ParallelRun::default();
    for (query, outcome) in outcomes {
        match outcome {
            Ok(results) => run.results.push(results),
            Err(payload) => run.failures.push(WorkerFailure {
                query,
                message: panic_message(payload.as_ref()),
            }),
        }
    }
    run
}

/// Runs all five paper queries concurrently and returns the completed
/// results, reporting any isolated worker failures on stderr.
#[must_use]
pub fn run_all_parallel(params: &ExperimentParams) -> Vec<QueryResults> {
    let run = run_all_parallel_isolated(params);
    for failure in &run.failures {
        eprintln!("warning: {failure}");
    }
    run.results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_matches_sequential_on_deterministic_outputs() {
        let params = ExperimentParams {
            invocations: 5,
            with_memory_uncertainty: false,
            ..ExperimentParams::paper()
        };
        let par = run_all_parallel(&params);
        assert_eq!(par.len(), QUERY_RELATIONS.len());
        for (k, r) in par.iter().enumerate() {
            let seq = run_query(k + 1, &params);
            assert_eq!(r.query, seq.query);
            assert_eq!(r.static_sel.plan_nodes, seq.static_sel.plan_nodes);
            assert_eq!(r.dynamic_sel.plan_nodes, seq.dynamic_sel.plan_nodes);
            // Predicted execution series are bit-identical.
            assert_eq!(r.static_sel.exec_seconds, seq.static_sel.exec_seconds);
            assert_eq!(r.dynamic_sel.exec_seconds, seq.dynamic_sel.exec_seconds);
        }
    }

    #[test]
    fn panicking_worker_is_isolated_not_fatal() {
        // Drive the isolation machinery directly: a scope with one good
        // and one panicking worker must surface exactly one failure.
        let outcomes: Vec<(usize, std::thread::Result<u32>)> = std::thread::scope(|scope| {
            let handles = vec![
                (1, scope.spawn(|| 7u32)),
                (2, scope.spawn(|| panic!("injected worker panic"))),
            ];
            handles.into_iter().map(|(k, h)| (k, h.join())).collect()
        });
        let mut run = ParallelRun::default();
        for (query, outcome) in outcomes {
            match outcome {
                Ok(_) => {}
                Err(p) => run.failures.push(WorkerFailure {
                    query,
                    message: panic_message(p.as_ref()),
                }),
            }
        }
        assert_eq!(run.failures.len(), 1);
        assert_eq!(run.failures[0].query, 2);
        assert!(run.failures[0].message.contains("injected worker panic"));
        assert!(run.summary_line().contains("1 failed"));
    }
}
