//! Parallel experiment execution.
//!
//! The figure tables that report *measured times* (Figures 5, 7, 8) must
//! run sequentially — concurrent optimizer runs would contend for cores
//! and distort the microsecond-scale measurements. Everything else
//! (predicted execution times, plan sizes, node counts) is deterministic
//! and safe to compute concurrently. [`run_all_parallel`] runs the five
//! queries on scoped threads; use it for quick table regeneration,
//! smoke tests and benches, and [`super::experiments::run_all`] when
//! timing fidelity matters.

use crossbeam::thread;

use crate::experiments::{run_query, QueryResults};
use crate::params::{ExperimentParams, QUERY_RELATIONS};

/// Runs all five paper queries concurrently (one scoped thread per query).
///
/// Timing caveat: measured optimization and start-up times in the results
/// reflect a loaded machine; predicted execution times, plan sizes, and
/// decisions are identical to the sequential run.
#[must_use]
pub fn run_all_parallel(params: &ExperimentParams) -> Vec<QueryResults> {
    thread::scope(|scope| {
        let handles: Vec<_> = (1..=QUERY_RELATIONS.len())
            .map(|k| {
                let params = *params;
                scope.spawn(move |_| run_query(k, &params))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("experiment thread panicked"))
            .collect()
    })
    .expect("scope panicked")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_matches_sequential_on_deterministic_outputs() {
        let params = ExperimentParams {
            invocations: 5,
            with_memory_uncertainty: false,
            ..ExperimentParams::paper()
        };
        let par = run_all_parallel(&params);
        assert_eq!(par.len(), QUERY_RELATIONS.len());
        for (k, r) in par.iter().enumerate() {
            let seq = run_query(k + 1, &params);
            assert_eq!(r.query, seq.query);
            assert_eq!(r.static_sel.plan_nodes, seq.static_sel.plan_nodes);
            assert_eq!(r.dynamic_sel.plan_nodes, seq.dynamic_sel.plan_nodes);
            // Predicted execution series are bit-identical.
            assert_eq!(r.static_sel.exec_seconds, seq.static_sel.exec_seconds);
            assert_eq!(r.dynamic_sel.exec_seconds, seq.dynamic_sel.exec_seconds);
        }
    }
}
