//! The three optimization scenarios of paper Figure 3.
//!
//! * **Static**: optimize once at compile-time with expected-value
//!   parameters (`a`), then per invocation activate (`b`) and execute
//!   (`c_i`).
//! * **Run-time optimization**: optimize anew per invocation with the
//!   actual bindings (`a`), execute (`d_i`); no activation (the plan is
//!   passed directly to the execution engine).
//! * **Dynamic plans**: optimize once into a dynamic plan (`e`), then per
//!   invocation activate + decide (`f`) and execute (`g_i`).
//!
//! Execution times are optimizer-predicted costs under the true bindings
//! (paper footnote 4); optimization times and start-up CPU times are truly
//! measured on the host.

use std::sync::Arc;
use std::time::Instant;

use dqep_core::{Optimizer, OptimizerStats, SearchOptions};
use dqep_cost::{Bindings, Environment};
use dqep_plan::{dag, evaluate_startup, PlanNode};

use crate::queries::Workload;

/// Outcome of running one scenario over a set of invocations.
#[derive(Debug)]
pub struct ScenarioResult {
    /// Scenario label ("static", "run-time opt", "dynamic").
    pub scenario: &'static str,
    /// Compile-time optimization seconds: `a` (static), `e` (dynamic), or
    /// the *average per-invocation* optimization seconds (run-time opt).
    pub optimize_seconds: f64,
    /// Modeled per-invocation activation seconds: catalog validation +
    /// access-module read + (dynamic only) modeled choose-plan CPU.
    /// Zero for run-time optimization.
    pub activation_seconds: f64,
    /// Measured average start-up CPU seconds per invocation (the wall time
    /// of the decision procedure on the host machine; dynamic only).
    pub measured_startup_cpu: f64,
    /// Modeled start-up CPU seconds per invocation (one cost-function
    /// evaluation per DAG node at `choose_plan_overhead`; dynamic only).
    pub modeled_startup_cpu: f64,
    /// Predicted execution seconds per invocation
    /// (`c_i` / `d_i` / `g_i`).
    pub exec_seconds: Vec<f64>,
    /// Plan size in DAG operator nodes (Figure 6 metric).
    pub plan_nodes: usize,
    /// Choose-plan operators in the plan.
    pub choose_plans: usize,
    /// Optimizer statistics of the (first) optimization.
    pub opt_stats: OptimizerStats,
    /// The plan (for static/dynamic scenarios; the last plan for run-time
    /// optimization).
    pub plan: Option<Arc<PlanNode>>,
    /// The compile-time environment the plan was produced under.
    pub env: Environment,
}

impl ScenarioResult {
    /// Mean predicted execution time.
    #[must_use]
    pub fn avg_exec(&self) -> f64 {
        if self.exec_seconds.is_empty() {
            return 0.0;
        }
        self.exec_seconds.iter().sum::<f64>() / self.exec_seconds.len() as f64
    }

    /// Total run-time effort over all invocations, in the paper's terms:
    /// `N × b + Σ c_i` (static), `N × a + Σ d_i` (run-time opt),
    /// `N × f + Σ g_i` (dynamic). Compile-time optimization of the
    /// once-optimized scenarios is *not* included (it is the `e`/`a` term
    /// of the break-even analysis).
    #[must_use]
    pub fn runtime_effort(&self) -> f64 {
        let n = self.exec_seconds.len() as f64;
        let per_invocation = if self.scenario == "run-time opt" {
            self.optimize_seconds
        } else {
            self.activation_seconds
        };
        n * per_invocation + self.exec_seconds.iter().sum::<f64>()
    }
}

/// Optimizes a workload three times and reports the fastest run — the
/// first run pays one-time cache warm-up that would otherwise distort the
/// microsecond-scale optimization times of the small queries.
fn measured_optimize(
    workload: &Workload,
    env: &Environment,
    options: SearchOptions,
) -> (dqep_core::OptimizeResult, f64) {
    let mut best: Option<(dqep_core::OptimizeResult, f64)> = None;
    for _ in 0..3 {
        let started = Instant::now();
        let result = Optimizer::with_options(&workload.catalog, env, options)
            .optimize(&workload.query)
            .expect("paper workloads always optimize");
        let elapsed = started.elapsed().as_secs_f64();
        if best.as_ref().is_none_or(|(_, t)| elapsed < *t) {
            best = Some((result, elapsed));
        }
    }
    best.expect("three runs happened")
}

/// Runs the **static** scenario.
#[must_use]
pub fn run_static(workload: &Workload, bindings: &[Bindings]) -> ScenarioResult {
    run_static_with(workload, bindings, SearchOptions::paper())
}

/// Static scenario with explicit search options (ablations).
#[must_use]
pub fn run_static_with(
    workload: &Workload,
    bindings: &[Bindings],
    options: SearchOptions,
) -> ScenarioResult {
    let env = Environment::static_compile_time(&workload.catalog.config);
    let (result, optimize_seconds) = measured_optimize(workload, &env, options);
    let nodes = dag::node_count(&result.plan);
    let activation_seconds =
        workload.catalog.config.activation_base + workload.catalog.config.module_read_time(nodes);
    let exec_seconds = bindings
        .iter()
        .map(|b| evaluate_startup(&result.plan, &workload.catalog, &env, b).predicted_run_seconds)
        .collect();
    ScenarioResult {
        scenario: "static",
        optimize_seconds,
        activation_seconds,
        measured_startup_cpu: 0.0,
        modeled_startup_cpu: 0.0,
        exec_seconds,
        plan_nodes: nodes,
        choose_plans: 0,
        opt_stats: result.stats,
        plan: Some(result.plan),
        env,
    }
}

/// Runs the **dynamic-plan** scenario. `uncertain_memory` selects between
/// the paper's ○-curves (selectivities only) and □-curves (selectivities
/// and memory).
#[must_use]
pub fn run_dynamic(
    workload: &Workload,
    bindings: &[Bindings],
    uncertain_memory: bool,
) -> ScenarioResult {
    run_dynamic_with(workload, bindings, uncertain_memory, SearchOptions::paper())
}

/// Dynamic scenario with explicit search options (ablations).
#[must_use]
pub fn run_dynamic_with(
    workload: &Workload,
    bindings: &[Bindings],
    uncertain_memory: bool,
    options: SearchOptions,
) -> ScenarioResult {
    let cfg = &workload.catalog.config;
    let env = if uncertain_memory {
        Environment::dynamic_uncertain_memory(cfg)
    } else {
        Environment::dynamic_compile_time(cfg)
    };
    let (result, optimize_seconds) = measured_optimize(workload, &env, options);
    let nodes = dag::node_count(&result.plan);

    let mut exec_seconds = Vec::with_capacity(bindings.len());
    let mut modeled_cpu = 0.0;
    let mut measured_cpu = 0.0;
    for b in bindings {
        let t = Instant::now();
        let startup = evaluate_startup(&result.plan, &workload.catalog, &env, b);
        measured_cpu += t.elapsed().as_secs_f64();
        modeled_cpu = startup.startup_cpu_seconds;
        exec_seconds.push(startup.predicted_run_seconds);
    }
    let n = bindings.len().max(1) as f64;
    let activation_seconds = cfg.activation_base + cfg.module_read_time(nodes) + modeled_cpu;
    ScenarioResult {
        scenario: "dynamic",
        optimize_seconds,
        activation_seconds,
        measured_startup_cpu: measured_cpu / n,
        modeled_startup_cpu: modeled_cpu,
        exec_seconds,
        plan_nodes: nodes,
        choose_plans: dag::choose_plan_count(&result.plan),
        opt_stats: result.stats,
        plan: Some(result.plan),
        env,
    }
}

/// Runs the **run-time optimization** scenario: one full optimization per
/// invocation, with the actual bindings as point parameters.
#[must_use]
pub fn run_runtime_opt(workload: &Workload, bindings: &[Bindings]) -> ScenarioResult {
    let base = Environment::dynamic_compile_time(&workload.catalog.config);
    let mut exec_seconds = Vec::with_capacity(bindings.len());
    let mut total_opt = 0.0;
    let mut last = None;
    let mut stats = OptimizerStats::default();
    for b in bindings {
        let env = base.bind(b);
        let started = Instant::now();
        let result = Optimizer::new(&workload.catalog, &env)
            .optimize(&workload.query)
            .expect("paper workloads always optimize");
        total_opt += started.elapsed().as_secs_f64();
        let cost = evaluate_startup(&result.plan, &workload.catalog, &env, b).predicted_run_seconds;
        exec_seconds.push(cost);
        stats = result.stats;
        last = Some(result.plan);
    }
    let n = bindings.len().max(1) as f64;
    ScenarioResult {
        scenario: "run-time opt",
        optimize_seconds: total_opt / n,
        activation_seconds: 0.0,
        measured_startup_cpu: 0.0,
        modeled_startup_cpu: 0.0,
        exec_seconds,
        plan_nodes: last.as_ref().map(dag::node_count).unwrap_or(0),
        choose_plans: 0,
        opt_stats: stats,
        plan: last,
        env: base,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bindings::BindingSampler;
    use crate::queries::paper_query;

    fn setup(k: usize, mem: bool) -> (Workload, Vec<Bindings>) {
        let w = paper_query(k, 21);
        let bindings = BindingSampler::new(33, mem).sample_n(&w, 20);
        (w, bindings)
    }

    #[test]
    fn static_plans_are_static() {
        let (w, b) = setup(2, false);
        let r = run_static(&w, &b);
        assert_eq!(r.choose_plans, 0);
        assert_eq!(r.exec_seconds.len(), 20);
        assert!(r.optimize_seconds > 0.0);
        assert!(r.activation_seconds >= w.catalog.config.activation_base);
    }

    #[test]
    fn dynamic_beats_static_on_average() {
        // Figure 4's headline: dynamic plans are far more robust.
        let (w, b) = setup(2, false);
        let st = run_static(&w, &b);
        let dy = run_dynamic(&w, &b, false);
        assert!(
            dy.avg_exec() < st.avg_exec(),
            "dynamic {} >= static {}",
            dy.avg_exec(),
            st.avg_exec()
        );
        assert!(dy.choose_plans > 0);
        assert!(dy.plan_nodes > st.plan_nodes);
    }

    #[test]
    fn dynamic_equals_runtime_optimization_costs() {
        // g_i = d_i (paper's optimality guarantee), checked per binding.
        let (w, b) = setup(2, false);
        let dy = run_dynamic(&w, &b, false);
        let rt = run_runtime_opt(&w, &b);
        for (i, (g, d)) in dy.exec_seconds.iter().zip(&rt.exec_seconds).enumerate() {
            assert!(
                (g - d).abs() < 1e-6,
                "invocation {i}: dynamic {g} vs run-time opt {d}"
            );
        }
    }

    #[test]
    fn dynamic_per_invocation_effort_below_runtime_opt() {
        // f < a: starting a dynamic plan is cheaper than re-optimizing.
        // Wall-clock comparison: use the larger query (a bigger gap), take
        // medians over paired repetitions, and allow slack — debug builds
        // under a parallel test runner are noisy.
        let (w, b) = setup(5, false);
        let mut ratios: Vec<f64> = (0..5)
            .map(|_| {
                let dy = run_dynamic(&w, &b, false);
                let rt = run_runtime_opt(&w, &b);
                rt.optimize_seconds / dy.measured_startup_cpu
            })
            .collect();
        ratios.sort_by(f64::total_cmp);
        let median = ratios[ratios.len() / 2];
        assert!(
            median > 1.0,
            "median re-optimization/startup ratio {median} should exceed 1 (ratios: {ratios:?})"
        );
    }

    #[test]
    fn memory_uncertainty_included_in_bindings() {
        let (w, b) = setup(1, true);
        assert!(b.iter().all(|x| x.memory_pages.is_some()));
        let dy = run_dynamic(&w, &b, true);
        assert!(dy.avg_exec() > 0.0);
    }

    #[test]
    fn runtime_effort_accounting() {
        let (w, b) = setup(1, false);
        let st = run_static(&w, &b);
        let expected = 20.0 * st.activation_seconds + st.exec_seconds.iter().sum::<f64>();
        assert!((st.runtime_effort() - expected).abs() < 1e-12);

        let rt = run_runtime_opt(&w, &b);
        let expected_rt = 20.0 * rt.optimize_seconds + rt.exec_seconds.iter().sum::<f64>();
        assert!((rt.runtime_effort() - expected_rt).abs() < 1e-9);
    }
}
