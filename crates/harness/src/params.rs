//! Experiment parameters (paper Section 6).

/// Number of relations joined by each of the paper's five queries:
/// query 1 is a single-relation selection, queries 2–5 are 2-, 4-, 6-,
/// and 10-way chain joins, each with one unbound selection per relation.
pub const QUERY_RELATIONS: [usize; 5] = [1, 2, 4, 6, 10];

/// Global experiment parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExperimentParams {
    /// RNG seed for catalog generation and binding sampling.
    pub seed: u64,
    /// Random binding sets per data point (paper: `N = 100`).
    pub invocations: usize,
    /// Also run the uncertain-memory variants (the paper's □-curves).
    pub with_memory_uncertainty: bool,
}

impl ExperimentParams {
    /// The paper's setup: 100 invocations, both curve families.
    #[must_use]
    pub fn paper() -> ExperimentParams {
        ExperimentParams {
            seed: 0x5EED_1994,
            invocations: 100,
            with_memory_uncertainty: true,
        }
    }

    /// A reduced setup for quick tests and Criterion warm-ups.
    #[must_use]
    pub fn quick() -> ExperimentParams {
        ExperimentParams {
            invocations: 10,
            ..ExperimentParams::paper()
        }
    }
}

impl Default for ExperimentParams {
    fn default() -> Self {
        ExperimentParams::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let p = ExperimentParams::paper();
        assert_eq!(p.invocations, 100);
        assert!(p.with_memory_uncertainty);
        assert_eq!(QUERY_RELATIONS, [1, 2, 4, 6, 10]);
    }

    #[test]
    fn quick_is_smaller() {
        assert!(ExperimentParams::quick().invocations < ExperimentParams::paper().invocations);
    }
}
