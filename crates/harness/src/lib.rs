//! Experiment harness reproducing the paper's evaluation.
//!
//! The paper's Section 6 optimizes five queries of increasing complexity
//! under three scenarios (Figure 3) and reports execution time (Figure 4),
//! optimization time (Figure 5), plan size (Figure 6), start-up CPU time
//! (Figure 7), the comparison with run-time optimization (Figure 8), and
//! break-even invocation counts. This crate builds those workloads,
//! samples run-time bindings exactly as described (uniform selectivities
//! in `[0, 1]`, memory in `[16, 112]` pages, `N = 100` invocations), runs
//! the scenarios, and renders the result tables.
//!
//! Like the paper (its footnote 4), **execution times are the optimizer's
//! predicted costs under the true bindings** — this isolates the search
//! strategy from selectivity-estimation noise and from host hardware —
//! while optimization and start-up times are truly measured. The
//! `dqep-executor` crate additionally runs resolved plans against synthetic
//! data to validate that start-up choices are the actually-faster plans.

#![warn(missing_docs)]

pub mod bindings;
pub mod experiments;
pub mod parallel;
pub mod params;
pub mod queries;
pub mod report;
pub mod scenario;

pub use bindings::BindingSampler;
pub use parallel::{run_all_parallel, run_all_parallel_isolated, ParallelRun, WorkerFailure};
pub use params::ExperimentParams;
pub use queries::{paper_query, Workload};
pub use scenario::{run_dynamic, run_runtime_opt, run_static, ScenarioResult};
