//! Random run-time bindings (paper Section 6).
//!
//! "The random values for selectivities of selection operations are chosen
//! from a uniform distribution over the interval [0, 1]. … When memory was
//! considered an unbound parameter, a run-time value for the number of
//! pages was chosen from a uniform distribution over [16, 112]."

use dqep_cost::Bindings;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::queries::Workload;

/// Deterministic sampler of run-time bindings for a workload.
#[derive(Debug)]
pub struct BindingSampler {
    rng: StdRng,
    memory_uncertain: bool,
}

impl BindingSampler {
    /// Creates a sampler. When `memory_uncertain`, every binding also
    /// carries a uniformly sampled memory grant.
    #[must_use]
    pub fn new(seed: u64, memory_uncertain: bool) -> BindingSampler {
        BindingSampler {
            rng: StdRng::seed_from_u64(seed),
            memory_uncertain,
        }
    }

    /// Samples one invocation's bindings: every host variable receives the
    /// value whose predicate selectivity is uniform in `[0, 1]`.
    pub fn sample(&mut self, workload: &Workload) -> Bindings {
        let mut b = Bindings::new();
        for &(var, attr) in &workload.host_vars {
            let sel: f64 = self.rng.gen_range(0.0..=1.0);
            let domain = workload.catalog.attribute(attr).domain_size;
            b = b.with_value(var, (sel * domain).floor() as i64);
        }
        if self.memory_uncertain {
            let cfg = &workload.catalog.config;
            b = b.with_memory(
                self.rng
                    .gen_range(cfg.memory_min_pages..=cfg.memory_max_pages),
            );
        }
        b
    }

    /// Samples `n` invocations.
    pub fn sample_n(&mut self, workload: &Workload, n: usize) -> Vec<Bindings> {
        (0..n).map(|_| self.sample(workload)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries::paper_query;

    #[test]
    fn samples_all_host_vars() {
        let w = paper_query(3, 1);
        let mut s = BindingSampler::new(2, false);
        let b = s.sample(&w);
        assert_eq!(b.values.len(), w.uncertain_vars());
        assert!(b.memory_pages.is_none());
        for &(var, attr) in &w.host_vars {
            let v = b.value(var).unwrap();
            let domain = w.catalog.attribute(attr).domain_size as i64;
            assert!((0..=domain).contains(&v));
        }
    }

    #[test]
    fn memory_sampled_in_paper_range() {
        let w = paper_query(1, 1);
        let mut s = BindingSampler::new(3, true);
        for _ in 0..50 {
            let b = s.sample(&w);
            let m = b.memory_pages.unwrap();
            assert!((16.0..=112.0).contains(&m));
        }
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let w = paper_query(2, 1);
        let a = BindingSampler::new(9, true).sample_n(&w, 5);
        let b = BindingSampler::new(9, true).sample_n(&w, 5);
        assert_eq!(a, b);
        let c = BindingSampler::new(10, true).sample_n(&w, 5);
        assert_ne!(a, c);
    }

    #[test]
    fn selectivities_cover_the_unit_interval() {
        // With 200 samples the empirical mean selectivity should be near
        // 0.5 — i.e. *not* near the 0.05 a static optimizer assumes.
        let w = paper_query(1, 1);
        let mut s = BindingSampler::new(4, false);
        let (var, attr) = w.host_vars[0];
        let domain = w.catalog.attribute(attr).domain_size;
        let mean: f64 = (0..200)
            .map(|_| s.sample(&w).value(var).unwrap() as f64 / domain)
            .sum::<f64>()
            / 200.0;
        assert!((0.4..=0.6).contains(&mean), "mean selectivity {mean}");
    }
}
