//! Plain-text table rendering for experiment reports.

use std::fmt;

/// A simple aligned-column text table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table caption.
    pub title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given caption and column headers.
    #[must_use]
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row(&mut self, cells: Vec<String>) {
        let mut cells = cells;
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as aligned plain text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = format!("{}\n", self.title);
        out.push_str(&line(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row));
            out.push('\n');
        }
        out
    }

    /// Renders as a GitHub-flavoured markdown table.
    #[must_use]
    pub fn render_markdown(&self) -> String {
        let mut out = format!("### {}\n\n", self.title);
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            "---|".repeat(self.headers.len())
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Formats seconds with adaptive precision.
#[must_use]
pub fn fmt_secs(s: f64) -> String {
    if s == 0.0 {
        "0".to_string()
    } else if s < 0.001 {
        format!("{:.1}us", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{s:.2}s")
    }
}

/// Formats a ratio like `24.9x`.
#[must_use]
pub fn fmt_ratio(r: f64) -> String {
    if r.is_finite() {
        format!("{r:.1}x")
    } else {
        "-".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = Table::new("Demo", &["query", "value"]);
        t.row(vec!["1".into(), "194.1".into()]);
        t.row(vec!["5".into(), "7.8".into()]);
        let text = t.render();
        assert!(text.starts_with("Demo\n"));
        assert!(text.contains("query  value"));
        assert!(text.contains("    1  194.1"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn renders_markdown() {
        let mut t = Table::new("M", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let md = t.render_markdown();
        assert!(md.contains("| a | b |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new("P", &["a", "b", "c"]);
        t.row(vec!["x".into()]);
        assert!(t.render().contains('x'));
    }

    #[test]
    fn second_formatting() {
        assert_eq!(fmt_secs(0.0), "0");
        assert_eq!(fmt_secs(0.0000005), "0.5us");
        assert_eq!(fmt_secs(0.0123), "12.30ms");
        assert_eq!(fmt_secs(194.1), "194.10s");
        assert_eq!(fmt_ratio(24.88), "24.9x");
        assert_eq!(fmt_ratio(f64::INFINITY), "-");
    }
}
