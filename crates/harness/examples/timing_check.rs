use dqep_harness::*;
fn main() {
    for k in [2,3,4,5] {
        let w = paper_query(k, 21);
        let b = BindingSampler::new(33, false).sample_n(&w, 20);
        let dy = run_dynamic(&w, &b, false);
        let rt = run_runtime_opt(&w, &b);
        println!("q{k}: reopt a={:.6}s startup f_cpu={:.6}s ratio={:.1} nodes={} e={:.6}",
            rt.optimize_seconds, dy.measured_startup_cpu,
            rt.optimize_seconds/dy.measured_startup_cpu, dy.plan_nodes, dy.optimize_seconds);
    }
}
