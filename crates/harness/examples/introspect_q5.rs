//! Introspect static vs dynamic cost structure for query 5.
use dqep_cost::Environment;
use dqep_harness::{paper_query, BindingSampler};
use dqep_core::Optimizer;
use dqep_plan::{evaluate_startup, render_plan};

fn main() {
    let w = paper_query(5, 1592596884 + 5);
    let cat = &w.catalog;
    let se = Environment::static_compile_time(&cat.config);
    let de = Environment::dynamic_compile_time(&cat.config);
    let sp = Optimizer::new(cat, &se).optimize(&w.query).unwrap().plan;
    let dp = Optimizer::new(cat, &de).optimize(&w.query).unwrap().plan;
    println!("STATIC PLAN:\n{}", render_plan(&sp));
    let mut s = BindingSampler::new(1592596884u64 ^ 0xB17D, false);
    let bs = s.sample_n(&w, 8);
    for b in &bs {
        let st = evaluate_startup(&sp, cat, &se, b);
        let dy = evaluate_startup(&dp, cat, &de, b);
        println!("static {:8.3}s dynamic {:8.3}s ratio {:5.1}", st.predicted_run_seconds, dy.predicted_run_seconds, st.predicted_run_seconds/dy.predicted_run_seconds);
    }
    // Show resolved dynamic plan for one binding and static resolved cost breakdown
    let b = &bs[0];
    let st = evaluate_startup(&sp, cat, &se, b);
    println!("\nSTATIC RESOLVED under b0 (cost {:.3}):\n{}", st.predicted_run_seconds, render_plan(&st.resolved));
    let dy = evaluate_startup(&dp, cat, &de, b);
    println!("DYNAMIC CHOSEN under b0 (cost {:.3}):\n{}", dy.predicted_run_seconds, render_plan(&dy.resolved));
}
