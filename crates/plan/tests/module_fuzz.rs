//! Robustness: access-module decoding never panics on arbitrary bytes.

use bytes::Bytes;
use dqep_plan::AccessModule;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary byte strings either decode to a structurally valid module
    /// or fail with a typed error — never panic.
    #[test]
    fn deserialize_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
        match AccessModule::deserialize(Bytes::from(bytes)) {
            Ok(module) => {
                // Whatever decoded must satisfy the plan invariants the
                // encoder guarantees — reject silently-corrupt successes.
                let _ = module.root().check_invariants();
            }
            Err(_) => {}
        }
    }

    /// Truncating a valid module at any point yields an error, not a
    /// panic or a half-decoded success with a different structure.
    #[test]
    fn truncation_is_detected(cut in 1usize..200) {
        use dqep_algebra::{CompareOp, HostVar, PhysicalOp, SelectPred};
        use dqep_catalog::{AttrId, RelationId};
        use dqep_cost::{Cost, PlanStats};
        use dqep_interval::Interval;
        use dqep_plan::PlanNodeBuilder;

        let mut b = PlanNodeBuilder::new();
        let pred = SelectPred::unbound(
            AttrId { relation: RelationId(0), index: 0 },
            CompareOp::Lt,
            HostVar(0),
        );
        let scan = b.node(
            PhysicalOp::FileScan { relation: RelationId(0) },
            vec![],
            PlanStats::new(Interval::point(100.0), 512.0),
            Cost::point(0.1, 0.2),
        );
        let filter = b.node(
            PhysicalOp::Filter { predicate: pred },
            vec![scan],
            PlanStats::new(Interval::new(0.0, 100.0), 512.0),
            Cost::cpu_only(Interval::new(0.0, 0.01)),
        );
        let full = AccessModule::new(filter).serialize();
        prop_assume!(cut < full.len());
        let truncated = full.slice(0..cut);
        prop_assert!(AccessModule::deserialize(truncated).is_err());
    }
}
