//! Remaining-plan extraction for mid-query re-optimization.
//!
//! A running query reaches *pipeline breakers* — the build side of a hash
//! join, the input of a sort — where a whole intermediate result is
//! materialized before anything flows downstream. Those are the natural
//! re-optimization checkpoints: the materialized subtree's true
//! cardinality is known, the work spent on it is retained, and the
//! *remaining* plan (everything not yet executed) can be re-arbitrated
//! with the observation applied.
//!
//! This module extracts the checkpoint schedule from a plan DAG.
//! Re-stitching is implicit: the executor re-arbitrates the original
//! dynamic plan with [`crate::evaluate_startup_observed`] (observations
//! keyed by original [`NodeId`]s) and substitutes a materialized scan for
//! any node whose rows were retained — so a re-plan never repeats
//! finished work, it only re-decides the unfinished remainder.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use dqep_algebra::PhysicalOp;

use crate::node::{NodeId, PlanNode};
use crate::startup::StartupDecision;

/// Maps each choose-plan node to the alternative index the most recent
/// arbitration picked, so plan walks can follow the currently chosen
/// path through the DAG.
#[must_use]
pub fn chosen_map(decisions: &[StartupDecision]) -> HashMap<NodeId, usize> {
    decisions
        .iter()
        .map(|d| (d.choose_plan, d.chosen_index))
        .collect()
}

/// Finds the next checkpoint target: the deepest *blocking input* — the
/// build side of a hash join or the input of a sort — along the currently
/// chosen path that has not been materialized yet (`exclude`). The target
/// may itself contain choose-plan operators (the executor compiles
/// checkpoint subtrees dynamically, arbitrating any nested choice with
/// the observations accumulated so far).
///
/// Choose-plan nodes are traversed through their chosen alternative
/// (`chosen`, defaulting to the first — the optimizer's preference order);
/// alternatives that arbitration rejected are not charged checkpoints.
/// Returns `None` once every blocking input on the chosen path is
/// materialized: execution proper can start.
#[must_use]
pub fn next_blocking_input(
    root: &Arc<PlanNode>,
    chosen: &HashMap<NodeId, usize>,
    exclude: &HashSet<NodeId>,
) -> Option<Arc<PlanNode>> {
    if root.is_choose_plan() {
        let idx = chosen
            .get(&root.id)
            .copied()
            .unwrap_or(0)
            .min(root.children.len().saturating_sub(1));
        return next_blocking_input(&root.children[idx], chosen, exclude);
    }
    // Deepest first: a child's blocking input completes before this
    // node's own build phase can begin.
    for child in &root.children {
        if let Some(hit) = next_blocking_input(child, chosen, exclude) {
            return Some(hit);
        }
    }
    if matches!(
        root.op,
        PhysicalOp::HashJoin { .. } | PhysicalOp::Sort { .. }
    ) {
        let input = &root.children[0];
        if !exclude.contains(&input.id) {
            return Some(Arc::clone(input));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::PlanNodeBuilder;
    use dqep_catalog::{AttrId, RelationId};
    use dqep_cost::{Cost, PlanStats};
    use dqep_interval::Interval;

    fn scan(b: &mut PlanNodeBuilder, rel: u32) -> Arc<PlanNode> {
        b.node(
            PhysicalOp::FileScan { relation: RelationId(rel) },
            vec![],
            PlanStats::new(Interval::new(5.0, 20.0), 512.0),
            Cost::point(0.0, 1.0),
        )
    }

    fn join(
        b: &mut PlanNodeBuilder,
        build: Arc<PlanNode>,
        probe: Arc<PlanNode>,
    ) -> Arc<PlanNode> {
        b.node(
            PhysicalOp::HashJoin { predicates: vec![] },
            vec![build, probe],
            PlanStats::new(Interval::new(5.0, 20.0), 1024.0),
            Cost::ZERO,
        )
    }

    #[test]
    fn blocking_inputs_come_deepest_first_and_exclude_materialized() {
        // sort(join(scan0, scan1)) — two breakers: the join's build side
        // (scan0, deeper) then the sort's input (the join itself).
        let mut b = PlanNodeBuilder::new();
        let s0 = scan(&mut b, 0);
        let s1 = scan(&mut b, 1);
        let j = join(&mut b, Arc::clone(&s0), s1);
        let sort = b.node(
            PhysicalOp::Sort {
                attr: AttrId { relation: RelationId(0), index: 0 },
            },
            vec![Arc::clone(&j)],
            PlanStats::new(Interval::new(5.0, 20.0), 1024.0),
            Cost::ZERO,
        );
        let chosen = HashMap::new();
        let mut done = HashSet::new();
        let first = next_blocking_input(&sort, &chosen, &done).unwrap();
        assert_eq!(first.id, s0.id, "join build side is deepest");
        done.insert(first.id);
        let second = next_blocking_input(&sort, &chosen, &done).unwrap();
        assert_eq!(second.id, j.id, "sort input comes once the join's build is done");
        done.insert(second.id);
        assert!(next_blocking_input(&sort, &chosen, &done).is_none());
    }

    #[test]
    fn choose_plans_follow_the_chosen_alternative() {
        let mut b = PlanNodeBuilder::new();
        let s0 = scan(&mut b, 0);
        let s1 = scan(&mut b, 1);
        let probe_a = scan(&mut b, 2);
        let probe_b = scan(&mut b, 2);
        let alt0 = join(&mut b, Arc::clone(&s0), probe_a);
        let alt1 = join(&mut b, Arc::clone(&s1), probe_b);
        let cp = b.choose_plan(vec![alt0, alt1], Cost::ZERO);
        let done = HashSet::new();
        let preferred = next_blocking_input(&cp, &HashMap::new(), &done).unwrap();
        assert_eq!(preferred.id, s0.id, "default follows the first alternative");
        let chosen: HashMap<NodeId, usize> = [(cp.id, 1usize)].into_iter().collect();
        let other = next_blocking_input(&cp, &chosen, &done).unwrap();
        assert_eq!(other.id, s1.id, "chosen map redirects the walk");
    }

    #[test]
    fn dynamic_blocking_inputs_are_checkpoint_targets() {
        // A join whose build side is itself a choose-plan is still a
        // checkpoint target — the executor compiles it dynamically, so the
        // walk returns the choose node itself (observations and retained
        // rows then key on its id, shared by every alternative that
        // references it).
        let mut b = PlanNodeBuilder::new();
        let s0 = scan(&mut b, 0);
        let s1 = scan(&mut b, 0);
        let inner = b.choose_plan(vec![s0, s1], Cost::ZERO);
        let probe = scan(&mut b, 1);
        let j = join(&mut b, Arc::clone(&inner), probe);
        let mut done = HashSet::new();
        let hit = next_blocking_input(&j, &HashMap::new(), &done).unwrap();
        assert_eq!(hit.id, inner.id, "the choose-plan input is the target");
        done.insert(hit.id);
        assert!(next_blocking_input(&j, &HashMap::new(), &done).is_none());
    }
}
