//! Analytics over plan DAGs: node counts, contained plans, sharing.

use std::collections::HashMap;
use std::sync::Arc;

use crate::node::{NodeId, PlanNode};

/// Visits each *distinct* node of the DAG exactly once, children before
/// parents (post-order).
pub fn walk_dag(root: &Arc<PlanNode>, f: &mut impl FnMut(&Arc<PlanNode>)) {
    fn go(
        node: &Arc<PlanNode>,
        seen: &mut std::collections::HashSet<NodeId>,
        f: &mut impl FnMut(&Arc<PlanNode>),
    ) {
        if !seen.insert(node.id) {
            return;
        }
        for c in &node.children {
            go(c, seen, f);
        }
        f(node);
    }
    let mut seen = std::collections::HashSet::new();
    go(root, &mut seen, f);
}

/// Number of distinct operator nodes in the DAG — the plan-size metric of
/// the paper's Figure 6 ("a count of operator nodes in the directed
/// acyclic graph, i.e., in the physical representation of the plan").
#[must_use]
pub fn node_count(root: &Arc<PlanNode>) -> usize {
    let mut n = 0;
    walk_dag(root, &mut |_| n += 1);
    n
}

/// Number of nodes the plan would have as a *tree* (shared subexpressions
/// expanded). Contrasted with [`node_count`] this quantifies how much DAG
/// sharing saves.
#[must_use]
pub fn tree_node_count(root: &Arc<PlanNode>) -> f64 {
    let mut memo: HashMap<NodeId, f64> = HashMap::new();
    fn go(node: &Arc<PlanNode>, memo: &mut HashMap<NodeId, f64>) -> f64 {
        if let Some(&v) = memo.get(&node.id) {
            return v;
        }
        let v = 1.0 + node.children.iter().map(|c| go(c, memo)).sum::<f64>();
        memo.insert(node.id, v);
        v
    }
    go(root, &mut memo)
}

/// Number of choose-plan operators in the DAG.
#[must_use]
pub fn choose_plan_count(root: &Arc<PlanNode>) -> usize {
    let mut n = 0;
    walk_dag(root, &mut |node| {
        if node.is_choose_plan() {
            n += 1;
        }
    });
    n
}

/// Number of complete *static* plans contained in the dynamic plan: a
/// choose-plan multiplies by choice, ordinary operators multiply their
/// children's counts. This is the quantity that grows exponentially with
/// query complexity while the DAG node count does not (paper Section 3).
#[must_use]
pub fn contained_plan_count(root: &Arc<PlanNode>) -> f64 {
    let mut memo: HashMap<NodeId, f64> = HashMap::new();
    fn go(node: &Arc<PlanNode>, memo: &mut HashMap<NodeId, f64>) -> f64 {
        if let Some(&v) = memo.get(&node.id) {
            return v;
        }
        let v = if node.is_choose_plan() {
            node.children.iter().map(|c| go(c, memo)).sum::<f64>()
        } else {
            node.children.iter().map(|c| go(c, memo)).product::<f64>()
        };
        memo.insert(node.id, v);
        v
    }
    go(root, &mut memo)
}

/// Longest root-to-leaf path length (in nodes).
#[must_use]
pub fn depth(root: &Arc<PlanNode>) -> usize {
    let mut memo: HashMap<NodeId, usize> = HashMap::new();
    fn go(node: &Arc<PlanNode>, memo: &mut HashMap<NodeId, usize>) -> usize {
        if let Some(&v) = memo.get(&node.id) {
            return v;
        }
        let v = 1 + node.children.iter().map(|c| go(c, memo)).max().unwrap_or(0);
        memo.insert(node.id, v);
        v
    }
    go(root, &mut memo)
}

/// All distinct nodes in post-order (children before parents). The order
/// is deterministic for a given DAG.
#[must_use]
pub fn topological_order(root: &Arc<PlanNode>) -> Vec<Arc<PlanNode>> {
    let mut out = Vec::new();
    walk_dag(root, &mut |n| out.push(Arc::clone(n)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::PlanNodeBuilder;
    use dqep_algebra::PhysicalOp;
    use dqep_catalog::RelationId;
    use dqep_cost::{Cost, PlanStats};
    use dqep_interval::Interval;

    fn scan(b: &mut PlanNodeBuilder, rel: u32) -> Arc<PlanNode> {
        b.node(
            PhysicalOp::FileScan { relation: RelationId(rel) },
            vec![],
            PlanStats::new(Interval::point(10.0), 512.0),
            Cost::point(0.0, 1.0),
        )
    }

    /// A diamond: choose-plan over two filters sharing one scan.
    fn diamond() -> (Arc<PlanNode>, Arc<PlanNode>) {
        let mut b = PlanNodeBuilder::new();
        let shared = scan(&mut b, 0);
        let f1 = b.node(
            PhysicalOp::Sort {
                attr: dqep_catalog::AttrId { relation: RelationId(0), index: 0 },
            },
            vec![shared.clone()],
            PlanStats::new(Interval::point(10.0), 512.0),
            Cost::point(0.1, 0.0),
        );
        let f2 = b.node(
            PhysicalOp::Sort {
                attr: dqep_catalog::AttrId { relation: RelationId(0), index: 1 },
            },
            vec![shared.clone()],
            PlanStats::new(Interval::point(10.0), 512.0),
            Cost::point(0.2, 0.0),
        );
        let cp = b.choose_plan(vec![f1, f2], Cost::point(0.01, 0.0));
        (cp, shared)
    }

    #[test]
    fn node_count_deduplicates_shared() {
        let (root, _) = diamond();
        assert_eq!(node_count(&root), 4); // scan + 2 sorts + choose-plan
        assert_eq!(tree_node_count(&root), 5.0); // scan counted twice in a tree
    }

    #[test]
    fn walk_visits_post_order_once() {
        let (root, shared) = diamond();
        let order = topological_order(&root);
        assert_eq!(order.len(), 4);
        assert_eq!(order[0].id, shared.id, "children come before parents");
        assert_eq!(order[3].id, root.id);
    }

    #[test]
    fn counts() {
        let (root, _) = diamond();
        assert_eq!(choose_plan_count(&root), 1);
        assert_eq!(contained_plan_count(&root), 2.0);
        assert_eq!(depth(&root), 3);
    }

    #[test]
    fn contained_plans_multiply_across_independent_choices() {
        // Join of two choose-plans, each with 2 alternatives: 4 static plans.
        let mut b = PlanNodeBuilder::new();
        let cp1 = {
            let s1 = scan(&mut b, 0);
            let s2 = scan(&mut b, 0);
            b.choose_plan(vec![s1, s2], Cost::ZERO)
        };
        let cp2 = {
            let s1 = scan(&mut b, 1);
            let s2 = scan(&mut b, 1);
            b.choose_plan(vec![s1, s2], Cost::ZERO)
        };
        let join = b.node(
            PhysicalOp::HashJoin { predicates: vec![] },
            vec![cp1, cp2],
            PlanStats::new(Interval::point(1.0), 1024.0),
            Cost::ZERO,
        );
        assert_eq!(contained_plan_count(&join), 4.0);
        assert_eq!(choose_plan_count(&join), 2);
        assert_eq!(node_count(&join), 7);
    }

    #[test]
    fn single_node_plan() {
        let mut b = PlanNodeBuilder::new();
        let s = scan(&mut b, 0);
        assert_eq!(node_count(&s), 1);
        assert_eq!(contained_plan_count(&s), 1.0);
        assert_eq!(depth(&s), 1);
        assert_eq!(choose_plan_count(&s), 0);
    }
}
