//! Start-up-time evaluation of dynamic plans.
//!
//! "A much simpler approach is to re-evaluate the cost functions associated
//! with the participating alternative plans. The decision procedure is now
//! merely a cost comparison of the plan alternatives with run-time bindings
//! instantiated; thus, the reasons for incomparability of costs at
//! compile-time have vanished." (paper Section 4)
//!
//! [`evaluate_startup`] implements exactly that: with all host variables
//! bound and actual memory known, every cost becomes a point; each DAG node
//! is costed **once** (shared subplans are not re-costed per use, paper
//! Section 4), each choose-plan operator picks its cheapest input, and the
//! dynamic plan resolves into an ordinary static plan.
//!
//! The same function applied to a *static* plan computes that plan's true
//! execution cost under the bindings — which is how the experiment harness
//! obtains the paper's `c_i` (static run-times) and `g_i` (dynamic
//! run-times) series.

use std::collections::HashMap;
use std::sync::Arc;

/// Observed actual properties of already-evaluated subplans, keyed by the
/// *original* plan node id: currently the actual output cardinality.
///
/// This is the hook for the paper's Section 7 direction — delaying
/// decisions beyond start-up into run-time: "when a subplan has been
/// evaluated into a temporary result, its logical and physical properties
/// (e.g., result cardinality …) are known and therefore may contribute to
/// decisions with increased confidence".
pub type Observations = HashMap<NodeId, f64>;

use dqep_catalog::{Catalog, RelationId};
use dqep_cost::{Bindings, Cost, CostModel, Environment, PlanStats};
use dqep_interval::Interval;

use crate::node::{NodeId, PlanNode, PlanNodeBuilder};

/// One choose-plan decision taken at start-up-time.
#[derive(Debug, Clone, PartialEq)]
pub struct StartupDecision {
    /// The choose-plan node that decided.
    pub choose_plan: NodeId,
    /// Index of the chosen alternative.
    pub chosen_index: usize,
    /// Number of alternatives available.
    pub alternatives: usize,
    /// The chosen alternative's (point) total cost in seconds.
    pub chosen_cost: f64,
}

/// Result of start-up-time evaluation.
#[derive(Debug)]
pub struct StartupResult {
    /// The resolved plan: all choose-plan operators replaced by their
    /// chosen alternative. Ready for execution.
    pub resolved: Arc<PlanNode>,
    /// Predicted execution cost of the resolved plan under the actual
    /// bindings (the paper's `g_i`), in seconds.
    pub predicted_run_seconds: f64,
    /// The decisions taken, in DAG post-order.
    pub decisions: Vec<StartupDecision>,
    /// Number of distinct DAG nodes whose cost function was evaluated.
    pub evaluated_nodes: usize,
    /// Bind-time output-cardinality estimate per evaluated DAG node, keyed
    /// by *original* node id. Tighter than the compile-time intervals on
    /// the plan (host variables are bound, observations applied) — the
    /// reference a runtime checkpoint compares its observation against.
    pub estimates: HashMap<NodeId, Interval>,
    /// Modeled start-up CPU seconds: one cost-function evaluation per
    /// evaluated node (`evaluated_nodes × choose_plan_overhead`).
    pub startup_cpu_seconds: f64,
}

/// Evaluates a (static or dynamic) plan at start-up-time.
///
/// * `base_env` is the compile-time environment the plan was optimized
///   under (its defaults carry over to unbound parameters).
/// * `bindings` supplies the actual host-variable values and memory grant.
///
/// Returns the resolved plan, its predicted execution cost under the
/// bindings, and the decisions taken.
#[must_use]
pub fn evaluate_startup(
    root: &Arc<PlanNode>,
    catalog: &Catalog,
    base_env: &Environment,
    bindings: &Bindings,
) -> StartupResult {
    evaluate_startup_observed(root, catalog, base_env, bindings, &Observations::new())
}

/// Like [`evaluate_startup`], additionally honouring *observed* subplan
/// cardinalities (from materialized temporary results): wherever an
/// observation exists for a node, it overrides the estimated output
/// cardinality in every cost function evaluated above it.
#[must_use]
pub fn evaluate_startup_observed(
    root: &Arc<PlanNode>,
    catalog: &Catalog,
    base_env: &Environment,
    bindings: &Bindings,
    observations: &Observations,
) -> StartupResult {
    // Observations describe *logical results*: all alternatives of a
    // choose-plan compute the same result, so an observation for any
    // member of the equivalence class applies to every member (and to the
    // choose-plan node itself). Expand to the closure before evaluating.
    let observations = expand_observations(root, observations);
    let observations = &observations;
    let env = base_env.bind(bindings);
    let mut eval = Eval {
        model: CostModel::new(catalog, &env),
        catalog,
        builder: PlanNodeBuilder::new(),
        costs: HashMap::new(),
        chosen: HashMap::new(),
        resolved: HashMap::new(),
        decisions: Vec::new(),
        observations,
    };
    let (_, cost) = eval.cost_pass(root);
    let evaluated_nodes = eval.costs.len();
    let resolved = eval.materialize(root);
    let startup_cpu_seconds = evaluated_nodes as f64 * catalog.config.choose_plan_overhead;
    let estimates = eval
        .costs
        .iter()
        .map(|(id, (stats, _))| (*id, stats.card))
        .collect();
    StartupResult {
        resolved,
        predicted_run_seconds: cost.total().lo(),
        decisions: eval.decisions,
        evaluated_nodes,
        estimates,
        startup_cpu_seconds,
    }
}

/// Propagates observations across choose-plan equivalence classes: if a
/// choose-plan or any of its alternatives is observed, the observation
/// holds for the choose-plan and all alternatives. Iterated to a fixpoint
/// (nested choose-plans chain).
fn expand_observations(root: &Arc<PlanNode>, observations: &Observations) -> Observations {
    let mut expanded = observations.clone();
    loop {
        let mut changed = false;
        crate::dag::walk_dag(root, &mut |node| {
            if !node.is_choose_plan() {
                return;
            }
            // The class: the choose-plan plus its direct children.
            let mut class_value = expanded.get(&node.id).copied();
            if class_value.is_none() {
                class_value = node
                    .children
                    .iter()
                    .find_map(|c| expanded.get(&c.id).copied());
            }
            if let Some(v) = class_value {
                for id in std::iter::once(node.id).chain(node.children.iter().map(|c| c.id)) {
                    if expanded.insert(id, v) != Some(v) {
                        changed = true;
                    }
                }
            }
        });
        if !changed {
            return expanded;
        }
    }
}

struct Eval<'a> {
    model: CostModel<'a>,
    catalog: &'a Catalog,
    builder: PlanNodeBuilder,
    observations: &'a Observations,
    /// Per distinct DAG node: recomputed point stats and point total
    /// subtree cost. One cost-function evaluation per node, as the paper
    /// prescribes ("the cost of shared subexpressions is computed only
    /// once").
    costs: HashMap<NodeId, (PlanStats, Cost)>,
    /// Chosen alternative per choose-plan node.
    chosen: HashMap<NodeId, usize>,
    /// Resolved subplans, materialized only along chosen branches.
    resolved: HashMap<NodeId, Arc<PlanNode>>,
    decisions: Vec<StartupDecision>,
}

impl Eval<'_> {
    /// Phase 1: evaluate every DAG node's cost function once, bottom-up,
    /// recording each choose-plan decision. No plan nodes are allocated:
    /// losing alternatives are costed (that is the decision procedure) but
    /// never materialized.
    fn cost_pass(&mut self, node: &Arc<PlanNode>) -> (PlanStats, Cost) {
        if let Some(hit) = self.costs.get(&node.id) {
            return *hit;
        }
        let result = if node.is_choose_plan() {
            let mut best: Option<(PlanStats, Cost, usize)> = None;
            for (i, alt) in node.children.iter().enumerate() {
                let (stats, cost) = self.cost_pass(alt);
                let better = match &best {
                    None => true,
                    Some((_, c, _)) => cost.total().lo() < c.total().lo(),
                };
                if better {
                    best = Some((stats, cost, i));
                }
            }
            let (stats, cost, idx) = best.expect("choose-plan has at least two alternatives");
            self.chosen.insert(node.id, idx);
            self.decisions.push(StartupDecision {
                choose_plan: node.id,
                chosen_index: idx,
                alternatives: node.children.len(),
                chosen_cost: cost.total().lo(),
            });
            (stats, cost)
        } else {
            let mut child_stats = Vec::with_capacity(node.children.len());
            let mut cost = Cost::ZERO;
            for c in &node.children {
                let (s, child_cost) = self.cost_pass(c);
                child_stats.push(s);
                cost += child_cost;
            }
            let mut stats = self.recompute_stats(node, &child_stats);
            if let Some(&card) = self.observations.get(&node.id) {
                stats = PlanStats::new(Interval::point(card), stats.row_bytes);
            }
            cost += self.model.op_cost(&node.op, &child_stats, &stats);
            (stats, cost)
        };
        self.costs.insert(node.id, result);
        result
    }

    /// Phase 2: materialize the resolved plan along chosen branches only.
    fn materialize(&mut self, node: &Arc<PlanNode>) -> Arc<PlanNode> {
        if let Some(hit) = self.resolved.get(&node.id) {
            return Arc::clone(hit);
        }
        let result = if node.is_choose_plan() {
            let idx = self.chosen[&node.id];
            self.materialize(&node.children[idx].clone())
        } else {
            let children: Vec<Arc<PlanNode>> = node
                .children
                .iter()
                .map(|c| {
                    let c = c.clone();
                    self.materialize(&c)
                })
                .collect();
            let mut child_stats = Vec::with_capacity(node.children.len());
            for c in &node.children {
                child_stats.push(self.costs[&c.id].0);
            }
            let stats = self.costs[&node.id].0;
            let self_cost = self.model.op_cost(&node.op, &child_stats, &stats);
            self.builder.node(node.op.clone(), children, stats, self_cost)
        };
        self.resolved.insert(node.id, Arc::clone(&result));
        result
    }

    /// Recomputes output stream statistics under the bound environment.
    /// Row widths are schema-determined and reused from compile-time.
    fn recompute_stats(&self, node: &Arc<PlanNode>, children: &[PlanStats]) -> PlanStats {
        use dqep_algebra::PhysicalOp::*;
        let env = self.model.env();
        let sel_model = self.model.selectivity();
        let card = match &node.op {
            FileScan { relation } | BtreeScan { relation, .. } => {
                Interval::point(self.base_card(*relation))
            }
            FilterBtreeScan {
                relation,
                predicate,
                ..
            } => Interval::point(self.base_card(*relation)) * sel_model.selection(predicate, env),
            Filter { predicate } => children[0].card * sel_model.selection(predicate, env),
            HashJoin { predicates } | MergeJoin { predicates } => {
                sel_model.join_output(children[0].card, children[1].card, predicates)
            }
            IndexJoin {
                predicates,
                inner,
                residual,
                ..
            } => {
                let inner_card = Interval::point(self.base_card(*inner));
                let mut card = sel_model.join_output(children[0].card, inner_card, predicates);
                if let Some(residual) = residual {
                    card = card * sel_model.selection(residual, env);
                }
                card
            }
            Sort { .. } => children[0].card,
            ChoosePlan => unreachable!("choose-plan is handled by resolve"),
        };
        PlanStats::new(card, node.stats.row_bytes)
    }

    fn base_card(&self, rel: RelationId) -> f64 {
        self.catalog.relation(rel).stats.cardinality as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqep_algebra::{CompareOp, HostVar, PhysicalOp, SelectPred};
    use dqep_catalog::{CatalogBuilder, SystemConfig};

    /// A catalog with one 1000-record relation with an unclustered B-tree
    /// on attribute `a`.
    fn fixture() -> Catalog {
        CatalogBuilder::new(SystemConfig::paper_1994())
            .relation("r", 1000, 512, |r| r.attr("a", 1000.0).btree("a", false))
            .build()
            .unwrap()
    }

    /// Builds the paper's Figure 1 dynamic plan by hand: choose-plan over
    /// {Filter(File-Scan R), Filter-B-tree-Scan R}.
    fn figure1_plan(cat: &Catalog, env: &Environment) -> Arc<PlanNode> {
        let rel = cat.relation_by_name("r").unwrap();
        let pred = SelectPred::unbound(rel.attr_id("a").unwrap(), CompareOp::Lt, HostVar(0));
        let (idx, _) = cat.index_on_attr(pred.attr).unwrap();
        let model = CostModel::new(cat, env);
        let sel = model.selectivity().selection(&pred, env);
        let scan_stats = PlanStats::new(Interval::point(1000.0), 512.0);
        let out_stats = PlanStats::new(Interval::point(1000.0) * sel, 512.0);

        let mut b = PlanNodeBuilder::new();
        let scan_op = PhysicalOp::FileScan { relation: rel.id };
        let scan_cost = model.op_cost(&scan_op, &[], &scan_stats);
        let scan = b.node(scan_op, vec![], scan_stats, scan_cost);

        let filter_op = PhysicalOp::Filter { predicate: pred };
        let filter_cost = model.op_cost(&filter_op, &[scan_stats], &out_stats);
        let file_plan = b.node(filter_op, vec![scan], out_stats, filter_cost);

        let idx_op = PhysicalOp::FilterBtreeScan {
            relation: rel.id,
            index: idx,
            predicate: pred,
        };
        let idx_cost = model.op_cost(&idx_op, &[], &out_stats);
        let index_plan = b.node(idx_op, vec![], out_stats, idx_cost);

        b.choose_plan(vec![file_plan, index_plan], model.choose_plan_cost(2))
    }

    #[test]
    fn low_selectivity_picks_index_plan() {
        let cat = fixture();
        let env = Environment::dynamic_compile_time(&cat.config);
        let plan = figure1_plan(&cat, &env);
        assert!(plan.is_dynamic());

        let bindings = Bindings::new().with_value(HostVar(0), 10); // sel 0.01
        let result = evaluate_startup(&plan, &cat, &env, &bindings);
        assert_eq!(result.decisions.len(), 1);
        assert_eq!(result.decisions[0].chosen_index, 1, "index plan expected");
        assert!(!result.resolved.is_dynamic());
        assert!(matches!(
            result.resolved.op,
            PhysicalOp::FilterBtreeScan { .. }
        ));
    }

    #[test]
    fn high_selectivity_picks_file_scan() {
        let cat = fixture();
        let env = Environment::dynamic_compile_time(&cat.config);
        let plan = figure1_plan(&cat, &env);

        let bindings = Bindings::new().with_value(HostVar(0), 900); // sel 0.9
        let result = evaluate_startup(&plan, &cat, &env, &bindings);
        assert_eq!(result.decisions[0].chosen_index, 0, "file-scan plan expected");
        assert!(matches!(result.resolved.op, PhysicalOp::Filter { .. }));
    }

    #[test]
    fn chosen_cost_is_min_over_alternatives() {
        let cat = fixture();
        let env = Environment::dynamic_compile_time(&cat.config);
        let plan = figure1_plan(&cat, &env);
        for v in [0i64, 50, 200, 500, 999] {
            let bindings = Bindings::new().with_value(HostVar(0), v);
            let result = evaluate_startup(&plan, &cat, &env, &bindings);
            // Evaluate each alternative separately as its own "plan".
            let alt_costs: Vec<f64> = plan
                .children
                .iter()
                .map(|alt| {
                    evaluate_startup(alt, &cat, &env, &bindings).predicted_run_seconds
                })
                .collect();
            let min = alt_costs.iter().cloned().fold(f64::INFINITY, f64::min);
            assert!(
                (result.predicted_run_seconds - min).abs() < 1e-12,
                "binding {v}: chose {} but best is {min}",
                result.predicted_run_seconds
            );
        }
    }

    #[test]
    fn startup_cost_within_compile_time_interval() {
        let cat = fixture();
        let env = Environment::dynamic_compile_time(&cat.config);
        let plan = figure1_plan(&cat, &env);
        let compile_interval = plan.total_cost.total();
        for v in [0i64, 123, 456, 789, 999] {
            let bindings = Bindings::new().with_value(HostVar(0), v);
            let result = evaluate_startup(&plan, &cat, &env, &bindings);
            // The resolved cost excludes decision overhead; the compile-time
            // interval includes it, so allow that slack below the low end.
            let overhead = cat.config.choose_plan_overhead * 2.0;
            assert!(
                result.predicted_run_seconds >= compile_interval.lo() - overhead - 1e-9
                    && result.predicted_run_seconds <= compile_interval.hi() + 1e-9,
                "binding {v}: {} outside {compile_interval}",
                result.predicted_run_seconds
            );
        }
    }

    #[test]
    fn evaluates_each_dag_node_once() {
        let cat = fixture();
        let env = Environment::dynamic_compile_time(&cat.config);
        let plan = figure1_plan(&cat, &env);
        let result = evaluate_startup(&plan, &cat, &env, &Bindings::new().with_value(HostVar(0), 1));
        assert_eq!(result.evaluated_nodes, crate::dag::node_count(&plan));
        assert!(result.startup_cpu_seconds > 0.0);
    }

    #[test]
    fn static_plan_passes_through() {
        // evaluate_startup on a static plan just computes its true cost.
        let cat = fixture();
        let env = Environment::static_compile_time(&cat.config);
        let rel = cat.relation_by_name("r").unwrap();
        let model = CostModel::new(&cat, &env);
        let stats = PlanStats::new(Interval::point(1000.0), 512.0);
        let op = PhysicalOp::FileScan { relation: rel.id };
        let cost = model.op_cost(&op, &[], &stats);
        let mut b = PlanNodeBuilder::new();
        let plan = b.node(op, vec![], stats, cost);

        let result = evaluate_startup(&plan, &cat, &env, &Bindings::new());
        assert!(result.decisions.is_empty());
        assert!((result.predicted_run_seconds - 0.35).abs() < 1e-9);
    }
}
