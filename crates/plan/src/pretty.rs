//! Human-readable plan rendering.

use std::collections::HashSet;
use std::fmt::Write as _;
use std::sync::Arc;

use crate::node::{NodeId, PlanNode};

/// Renders a plan DAG as an indented tree. Nodes reached more than once
/// (shared subexpressions) are expanded the first time and referenced as
/// `^n<id>` afterwards, making DAG sharing visible:
///
/// ```text
/// Choose-Plan  cost=[0.0100, 1.0100]
/// ├── Filter[R0.#0 < :v0]  cost=...
/// │   └── File-Scan R0  cost=...
/// └── Filter-B-tree-Scan R0[R0.#0 < :v0]  cost=...
/// ```
#[must_use]
pub fn render_plan(root: &Arc<PlanNode>) -> String {
    let mut out = String::new();
    let mut seen = HashSet::new();
    render(root, "", "", &mut seen, &mut out);
    out
}

fn render(
    node: &Arc<PlanNode>,
    prefix: &str,
    child_prefix: &str,
    seen: &mut HashSet<NodeId>,
    out: &mut String,
) {
    if !seen.insert(node.id) {
        let _ = writeln!(out, "{prefix}^{} (shared {})", node.id, node.op.name());
        return;
    }
    let _ = writeln!(
        out,
        "{prefix}{}  card={} cost={}",
        node.op,
        node.stats.card,
        node.total_cost.total()
    );
    let n = node.children.len();
    for (i, c) in node.children.iter().enumerate() {
        let last = i + 1 == n;
        let (branch, cont) = if last {
            ("└── ", "    ")
        } else {
            ("├── ", "│   ")
        };
        render(
            c,
            &format!("{child_prefix}{branch}"),
            &format!("{child_prefix}{cont}"),
            seen,
            out,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::PlanNodeBuilder;
    use dqep_algebra::PhysicalOp;
    use dqep_catalog::{AttrId, RelationId};
    use dqep_cost::{Cost, PlanStats};
    use dqep_interval::Interval;

    #[test]
    fn renders_tree_with_sharing_markers() {
        let mut b = PlanNodeBuilder::new();
        let shared = b.node(
            PhysicalOp::FileScan { relation: RelationId(0) },
            vec![],
            PlanStats::new(Interval::point(10.0), 512.0),
            Cost::point(0.0, 0.1),
        );
        let s1 = b.node(
            PhysicalOp::Sort {
                attr: AttrId { relation: RelationId(0), index: 0 },
            },
            vec![shared.clone()],
            PlanStats::new(Interval::point(10.0), 512.0),
            Cost::point(0.1, 0.0),
        );
        let s2 = b.node(
            PhysicalOp::Sort {
                attr: AttrId { relation: RelationId(0), index: 1 },
            },
            vec![shared],
            PlanStats::new(Interval::point(10.0), 512.0),
            Cost::point(0.2, 0.0),
        );
        let cp = b.choose_plan(vec![s1, s2], Cost::point(0.01, 0.0));
        let text = render_plan(&cp);
        assert!(text.contains("Choose-Plan"));
        assert!(text.contains("File-Scan R0"));
        assert!(text.contains("^n0 (shared File-Scan)"), "text was:\n{text}");
        assert_eq!(text.matches("Sort").count(), 2);
        // The shared scan is expanded exactly once.
        assert_eq!(text.matches("File-Scan R0  card").count(), 1);
    }

    #[test]
    fn renders_single_node() {
        let mut b = PlanNodeBuilder::new();
        let scan = b.node(
            PhysicalOp::FileScan { relation: RelationId(2) },
            vec![],
            PlanStats::new(Interval::point(5.0), 512.0),
            Cost::point(0.0, 0.2),
        );
        let text = render_plan(&scan);
        assert!(text.starts_with("File-Scan R2"));
        assert!(text.contains("cost=[0.2000]"));
    }
}
