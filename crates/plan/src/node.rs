//! Plan nodes: physical operators in a shared DAG.

use std::fmt;
use std::sync::Arc;

use dqep_algebra::{PhysicalOp, SortOrder};
use dqep_cost::{Cost, PlanStats};

/// Unique identifier of a plan node within one optimizer run.
///
/// Node identity (not structural equality) defines DAG sharing: two `Arc`s
/// to the same node are one node; the start-up evaluator costs each
/// distinct id exactly once, and Figure 6's plan size is the number of
/// distinct ids reachable from the root.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u64);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// One operator of a (possibly dynamic) query evaluation plan.
///
/// Children are shared via [`Arc`]: alternative plans under a choose-plan
/// operator typically share large common subexpressions, which is what
/// keeps dynamic plans tractable ("all plans and alternative plans must be
/// represented as directed acyclic graphs with common subexpressions, not
/// as trees", paper Section 3).
#[derive(Debug)]
pub struct PlanNode {
    /// Unique id within the optimizer run that produced this plan.
    pub id: NodeId,
    /// The physical algorithm and its arguments.
    pub op: PhysicalOp,
    /// Child plans (see [`PhysicalOp::arity`]; choose-plan has ≥ 2).
    pub children: Vec<Arc<PlanNode>>,
    /// Output stream statistics under the *compile-time* environment
    /// (interval-valued for dynamic plans).
    pub stats: PlanStats,
    /// Cost of this operator alone, compile-time view.
    pub self_cost: Cost,
    /// Total cost of the subtree rooted here (self + children; for a
    /// choose-plan, the pointwise minimum over alternatives plus decision
    /// overhead), compile-time view.
    pub total_cost: Cost,
    /// The sort order this subplan delivers.
    pub order: SortOrder,
}

impl PlanNode {
    /// Whether this node is a choose-plan operator.
    #[must_use]
    pub fn is_choose_plan(&self) -> bool {
        matches!(self.op, PhysicalOp::ChoosePlan)
    }

    /// Whether the subtree contains any choose-plan operator, i.e. whether
    /// this is a *dynamic* plan (as opposed to a fully determined static
    /// plan).
    #[must_use]
    pub fn is_dynamic(&self) -> bool {
        self.is_choose_plan() || self.children.iter().any(|c| c.is_dynamic())
    }

    /// Validates structural invariants (arity, choose-plan fan-in ≥ 2)
    /// over the whole DAG; used by tests and debug assertions.
    pub fn check_invariants(&self) -> Result<(), String> {
        if let Some(arity) = self.op.arity() {
            if self.children.len() != arity {
                return Err(format!(
                    "{} ({}) has {} children, expected {arity}",
                    self.id,
                    self.op.name(),
                    self.children.len()
                ));
            }
        } else if self.children.len() < 2 {
            return Err(format!(
                "{} (Choose-Plan) has {} children, expected >= 2",
                self.id,
                self.children.len()
            ));
        }
        for c in &self.children {
            c.check_invariants()?;
        }
        Ok(())
    }
}

/// Builder assigning fresh [`NodeId`]s; one per optimizer run.
///
/// Also the hand-construction entry point used by tests and examples that
/// build plans without the optimizer.
#[derive(Debug, Default)]
pub struct PlanNodeBuilder {
    next: u64,
}

impl PlanNodeBuilder {
    /// Creates a builder whose first node gets id 0.
    #[must_use]
    pub fn new() -> PlanNodeBuilder {
        PlanNodeBuilder::default()
    }

    /// Number of ids issued so far.
    #[must_use]
    pub fn issued(&self) -> u64 {
        self.next
    }

    /// Creates a node with a fresh id.
    pub fn node(
        &mut self,
        op: PhysicalOp,
        children: Vec<Arc<PlanNode>>,
        stats: PlanStats,
        self_cost: Cost,
    ) -> Arc<PlanNode> {
        let id = NodeId(self.next);
        self.next += 1;
        let child_orders: Vec<SortOrder> = children.iter().map(|c| c.order).collect();
        let order = op.delivered_order(&child_orders);
        let total_cost = match op {
            PhysicalOp::ChoosePlan => {
                let combined = children
                    .iter()
                    .map(|c| c.total_cost)
                    .reduce(|a, b| a.choose_min(b))
                    .unwrap_or(Cost::ZERO);
                combined + self_cost
            }
            _ => children
                .iter()
                .fold(self_cost, |acc, c| acc + c.total_cost),
        };
        Arc::new(PlanNode {
            id,
            op,
            children,
            stats,
            self_cost,
            total_cost,
            order,
        })
    }

    /// Creates a choose-plan node over `alternatives`.
    ///
    /// # Panics
    /// Panics if fewer than two alternatives are supplied.
    pub fn choose_plan(
        &mut self,
        alternatives: Vec<Arc<PlanNode>>,
        decision_cost: Cost,
    ) -> Arc<PlanNode> {
        assert!(
            alternatives.len() >= 2,
            "choose-plan needs at least two alternatives"
        );
        // All alternatives compute the same logical result; the stream
        // statistics are the interval hull over alternatives (they can
        // differ only through estimation granularity, not semantics).
        let stats = alternatives
            .iter()
            .map(|a| a.stats)
            .reduce(|a, b| PlanStats::new(a.card.hull(b.card), a.row_bytes))
            .expect("non-empty");
        self.node(PhysicalOp::ChoosePlan, alternatives, stats, decision_cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqep_catalog::RelationId;
    use dqep_interval::Interval;

    fn scan(b: &mut PlanNodeBuilder, rel: u32, cost: f64) -> Arc<PlanNode> {
        b.node(
            PhysicalOp::FileScan {
                relation: RelationId(rel),
            },
            vec![],
            PlanStats::new(Interval::point(100.0), 512.0),
            Cost::point(0.0, cost),
        )
    }

    #[test]
    fn ids_are_fresh_and_sequential() {
        let mut b = PlanNodeBuilder::new();
        let a = scan(&mut b, 0, 1.0);
        let c = scan(&mut b, 1, 1.0);
        assert_eq!(a.id, NodeId(0));
        assert_eq!(c.id, NodeId(1));
        assert_eq!(b.issued(), 2);
    }

    #[test]
    fn total_cost_sums_children() {
        let mut b = PlanNodeBuilder::new();
        let s1 = scan(&mut b, 0, 1.0);
        let s2 = scan(&mut b, 1, 2.0);
        let join = b.node(
            PhysicalOp::HashJoin { predicates: vec![] },
            vec![s1, s2],
            PlanStats::new(Interval::point(10.0), 1024.0),
            Cost::point(0.5, 0.0),
        );
        assert_eq!(join.total_cost.total(), Interval::point(3.5));
        assert!(!join.is_dynamic());
        join.check_invariants().unwrap();
    }

    #[test]
    fn choose_plan_cost_is_min_plus_overhead() {
        let mut b = PlanNodeBuilder::new();
        let cheap_sometimes = b.node(
            PhysicalOp::FileScan { relation: RelationId(0) },
            vec![],
            PlanStats::new(Interval::new(0.0, 100.0), 512.0),
            Cost::cpu_only(Interval::new(0.0, 10.0)),
        );
        let steady = b.node(
            PhysicalOp::FileScan { relation: RelationId(0) },
            vec![],
            PlanStats::new(Interval::new(0.0, 100.0), 512.0),
            Cost::cpu_only(Interval::new(1.0, 1.0)),
        );
        let cp = b.choose_plan(
            vec![cheap_sometimes, steady],
            Cost::cpu_only(Interval::point(0.01)),
        );
        // Paper Section 5: [0,10] vs [1,1] + [0.01] => [0.01, 1.01].
        assert_eq!(cp.total_cost.total(), Interval::new(0.01, 1.01));
        assert!(cp.is_dynamic());
        assert!(cp.is_choose_plan());
        cp.check_invariants().unwrap();
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn choose_plan_rejects_single_alternative() {
        let mut b = PlanNodeBuilder::new();
        let s = scan(&mut b, 0, 1.0);
        let _ = b.choose_plan(vec![s], Cost::ZERO);
    }

    #[test]
    fn invariant_check_catches_bad_arity() {
        let mut b = PlanNodeBuilder::new();
        let s = scan(&mut b, 0, 1.0);
        let bad = b.node(
            PhysicalOp::HashJoin { predicates: vec![] },
            vec![s], // needs 2
            PlanStats::new(Interval::point(1.0), 512.0),
            Cost::ZERO,
        );
        assert!(bad.check_invariants().is_err());
    }

    #[test]
    fn dynamic_detection_sees_nested_choose_plan() {
        let mut b = PlanNodeBuilder::new();
        let s1 = scan(&mut b, 0, 1.0);
        let s2 = scan(&mut b, 1, 2.0);
        let cp = b.choose_plan(vec![s1, s2.clone()], Cost::ZERO);
        let top = b.node(
            PhysicalOp::HashJoin { predicates: vec![] },
            vec![cp, s2],
            PlanStats::new(Interval::point(5.0), 1024.0),
            Cost::ZERO,
        );
        assert!(top.is_dynamic());
        assert!(!top.is_choose_plan());
    }
}
