//! Access modules: the stored representation of query evaluation plans.
//!
//! Production systems with compile-time optimization store plans in
//! *access modules* read at start-up-time (System R's terminology, which
//! the paper adopts). A dynamic plan's module is larger than a static
//! plan's — the paper models activation I/O as
//! `nodes × 128 bytes / 2 MB/s` plus a fixed 0.1 s for catalog validation
//! and the initial seek — and this crate makes that concrete: modules
//! serialize to a compact binary format (DAG nodes in post-order, children
//! by ordinal) and report both their actual byte size and the paper's
//! modeled size.

use std::fmt;
use std::sync::Arc;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use dqep_algebra::{CompareOp, HostVar, JoinPred, PhysicalOp, Scalar, SelectPred};
use dqep_catalog::{AttrId, IndexId, RelationId, SystemConfig};
use dqep_cost::{Cost, PlanStats};
use dqep_interval::Interval;

use crate::dag;
use crate::node::{PlanNode, PlanNodeBuilder};

/// Errors produced when decoding an access module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModuleError {
    /// The byte stream ended prematurely.
    Truncated,
    /// An unknown operator or scalar tag was encountered.
    BadTag(u8),
    /// A child reference pointed at a node not yet decoded.
    BadChildRef(u32),
    /// The module contained no nodes.
    Empty,
    /// A decoded numeric field was invalid (NaN bounds, inverted interval).
    BadNumber,
}

impl fmt::Display for ModuleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModuleError::Truncated => f.write_str("truncated access module"),
            ModuleError::BadTag(t) => write!(f, "unknown tag {t}"),
            ModuleError::BadChildRef(i) => write!(f, "forward child reference {i}"),
            ModuleError::Empty => f.write_str("empty access module"),
            ModuleError::BadNumber => f.write_str("invalid numeric field"),
        }
    }
}

impl std::error::Error for ModuleError {}

/// Size and activation-time statistics of an access module.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModuleStats {
    /// Distinct operator nodes in the DAG (the paper's Figure 6 metric).
    pub nodes: usize,
    /// Actual serialized size in bytes.
    pub serialized_bytes: usize,
    /// Modeled size: `nodes × plan_node_bytes`.
    pub modeled_bytes: usize,
    /// Modeled I/O seconds to read the module (`modeled_bytes /
    /// module_read_bandwidth`).
    pub read_seconds: f64,
    /// Total modeled activation time: catalog validation + seek
    /// (`activation_base`) plus the module read.
    pub activation_seconds: f64,
}

/// A stored plan: a DAG of [`PlanNode`]s plus serialization.
#[derive(Debug, Clone)]
pub struct AccessModule {
    root: Arc<PlanNode>,
}

impl AccessModule {
    /// Wraps a plan in an access module.
    #[must_use]
    pub fn new(root: Arc<PlanNode>) -> AccessModule {
        AccessModule { root }
    }

    /// The plan root.
    #[must_use]
    pub fn root(&self) -> &Arc<PlanNode> {
        &self.root
    }

    /// Size and activation statistics under `config`.
    #[must_use]
    pub fn stats(&self, config: &SystemConfig) -> ModuleStats {
        let nodes = dag::node_count(&self.root);
        let serialized_bytes = self.serialize().len();
        let modeled_bytes = nodes * config.plan_node_bytes as usize;
        let read_seconds = config.module_read_time(nodes);
        ModuleStats {
            nodes,
            serialized_bytes,
            modeled_bytes,
            read_seconds,
            activation_seconds: config.activation_base + read_seconds,
        }
    }

    /// Serializes the DAG: nodes in post-order, children as ordinals into
    /// the already-emitted prefix (so decoding is a single forward pass).
    #[must_use]
    pub fn serialize(&self) -> Bytes {
        let order = dag::topological_order(&self.root);
        let index: std::collections::HashMap<_, _> = order
            .iter()
            .enumerate()
            .map(|(i, n)| (n.id, i as u32))
            .collect();
        let mut buf = BytesMut::with_capacity(order.len() * 96);
        buf.put_u32(order.len() as u32);
        for node in &order {
            encode_op(&mut buf, &node.op);
            buf.put_f64(node.stats.card.lo());
            buf.put_f64(node.stats.card.hi());
            buf.put_f64(node.stats.row_bytes);
            encode_cost(&mut buf, node.self_cost);
            buf.put_u16(node.children.len() as u16);
            for c in &node.children {
                buf.put_u32(index[&c.id]);
            }
        }
        buf.freeze()
    }

    /// Decodes a module previously produced by [`AccessModule::serialize`].
    ///
    /// Total costs and delivered orders are recomputed during
    /// reconstruction, so a decoded module satisfies the same invariants as
    /// a freshly optimized one.
    pub fn deserialize(mut bytes: Bytes) -> Result<AccessModule, ModuleError> {
        let buf = &mut bytes;
        let count = get_u32(buf)? as usize;
        if count == 0 {
            return Err(ModuleError::Empty);
        }
        let mut builder = PlanNodeBuilder::new();
        // Never trust the length prefix for preallocation: a corrupt or
        // hostile module could otherwise request a multi-gigabyte Vec
        // before the per-node decoding ever detects truncation.
        let mut nodes: Vec<Arc<PlanNode>> = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            let op = decode_op(buf)?;
            let card = decode_interval(buf)?;
            let row_bytes = get_f64(buf)?;
            let self_cost = decode_cost(buf)?;
            let n_children = get_u16(buf)? as usize;
            let mut children = Vec::with_capacity(n_children);
            for _ in 0..n_children {
                let ordinal = get_u32(buf)?;
                let child = nodes
                    .get(ordinal as usize)
                    .ok_or(ModuleError::BadChildRef(ordinal))?;
                children.push(Arc::clone(child));
            }
            nodes.push(builder.node(op, children, PlanStats::new(card, row_bytes), self_cost));
        }
        Ok(AccessModule {
            root: nodes.pop().expect("count >= 1"),
        })
    }
}

// ---- encoding helpers -------------------------------------------------

const TAG_FILE_SCAN: u8 = 0;
const TAG_BTREE_SCAN: u8 = 1;
const TAG_FILTER: u8 = 2;
const TAG_FILTER_BTREE_SCAN: u8 = 3;
const TAG_HASH_JOIN: u8 = 4;
const TAG_MERGE_JOIN: u8 = 5;
const TAG_INDEX_JOIN: u8 = 6;
const TAG_SORT: u8 = 7;
const TAG_CHOOSE_PLAN: u8 = 8;

fn encode_op(buf: &mut BytesMut, op: &PhysicalOp) {
    match op {
        PhysicalOp::FileScan { relation } => {
            buf.put_u8(TAG_FILE_SCAN);
            buf.put_u32(relation.0);
        }
        PhysicalOp::BtreeScan {
            relation,
            index,
            key_attr,
        } => {
            buf.put_u8(TAG_BTREE_SCAN);
            buf.put_u32(relation.0);
            buf.put_u32(index.0);
            encode_attr(buf, *key_attr);
        }
        PhysicalOp::Filter { predicate } => {
            buf.put_u8(TAG_FILTER);
            encode_pred(buf, predicate);
        }
        PhysicalOp::FilterBtreeScan {
            relation,
            index,
            predicate,
        } => {
            buf.put_u8(TAG_FILTER_BTREE_SCAN);
            buf.put_u32(relation.0);
            buf.put_u32(index.0);
            encode_pred(buf, predicate);
        }
        PhysicalOp::HashJoin { predicates } => {
            buf.put_u8(TAG_HASH_JOIN);
            encode_join_preds(buf, predicates);
        }
        PhysicalOp::MergeJoin { predicates } => {
            buf.put_u8(TAG_MERGE_JOIN);
            encode_join_preds(buf, predicates);
        }
        PhysicalOp::IndexJoin {
            predicates,
            inner,
            index,
            residual,
        } => {
            buf.put_u8(TAG_INDEX_JOIN);
            encode_join_preds(buf, predicates);
            buf.put_u32(inner.0);
            buf.put_u32(index.0);
            match residual {
                Some(p) => {
                    buf.put_u8(1);
                    encode_pred(buf, p);
                }
                None => buf.put_u8(0),
            }
        }
        PhysicalOp::Sort { attr } => {
            buf.put_u8(TAG_SORT);
            encode_attr(buf, *attr);
        }
        PhysicalOp::ChoosePlan => buf.put_u8(TAG_CHOOSE_PLAN),
    }
}

fn decode_op(buf: &mut Bytes) -> Result<PhysicalOp, ModuleError> {
    let tag = get_u8(buf)?;
    Ok(match tag {
        TAG_FILE_SCAN => PhysicalOp::FileScan {
            relation: RelationId(get_u32(buf)?),
        },
        TAG_BTREE_SCAN => PhysicalOp::BtreeScan {
            relation: RelationId(get_u32(buf)?),
            index: IndexId(get_u32(buf)?),
            key_attr: decode_attr(buf)?,
        },
        TAG_FILTER => PhysicalOp::Filter {
            predicate: decode_pred(buf)?,
        },
        TAG_FILTER_BTREE_SCAN => PhysicalOp::FilterBtreeScan {
            relation: RelationId(get_u32(buf)?),
            index: IndexId(get_u32(buf)?),
            predicate: decode_pred(buf)?,
        },
        TAG_HASH_JOIN => PhysicalOp::HashJoin {
            predicates: decode_join_preds(buf)?,
        },
        TAG_MERGE_JOIN => PhysicalOp::MergeJoin {
            predicates: decode_join_preds(buf)?,
        },
        TAG_INDEX_JOIN => {
            let predicates = decode_join_preds(buf)?;
            let inner = RelationId(get_u32(buf)?);
            let index = IndexId(get_u32(buf)?);
            let residual = match get_u8(buf)? {
                0 => None,
                1 => Some(decode_pred(buf)?),
                t => return Err(ModuleError::BadTag(t)),
            };
            PhysicalOp::IndexJoin {
                predicates,
                inner,
                index,
                residual,
            }
        }
        TAG_SORT => PhysicalOp::Sort {
            attr: decode_attr(buf)?,
        },
        TAG_CHOOSE_PLAN => PhysicalOp::ChoosePlan,
        t => return Err(ModuleError::BadTag(t)),
    })
}

fn encode_attr(buf: &mut BytesMut, attr: AttrId) {
    buf.put_u32(attr.relation.0);
    buf.put_u32(attr.index);
}

fn decode_attr(buf: &mut Bytes) -> Result<AttrId, ModuleError> {
    Ok(AttrId {
        relation: RelationId(get_u32(buf)?),
        index: get_u32(buf)?,
    })
}

fn encode_pred(buf: &mut BytesMut, p: &SelectPred) {
    encode_attr(buf, p.attr);
    buf.put_u8(match p.op {
        CompareOp::Lt => 0,
        CompareOp::Le => 1,
        CompareOp::Eq => 2,
        CompareOp::Ge => 3,
        CompareOp::Gt => 4,
    });
    match p.rhs {
        Scalar::Const(v) => {
            buf.put_u8(0);
            buf.put_i64(v);
        }
        Scalar::Host(h) => {
            buf.put_u8(1);
            buf.put_u32(h.0);
        }
    }
}

fn decode_pred(buf: &mut Bytes) -> Result<SelectPred, ModuleError> {
    let attr = decode_attr(buf)?;
    let op = match get_u8(buf)? {
        0 => CompareOp::Lt,
        1 => CompareOp::Le,
        2 => CompareOp::Eq,
        3 => CompareOp::Ge,
        4 => CompareOp::Gt,
        t => return Err(ModuleError::BadTag(t)),
    };
    let rhs = match get_u8(buf)? {
        0 => Scalar::Const(get_i64(buf)?),
        1 => Scalar::Host(HostVar(get_u32(buf)?)),
        t => return Err(ModuleError::BadTag(t)),
    };
    Ok(SelectPred { attr, op, rhs })
}

fn encode_join_preds(buf: &mut BytesMut, ps: &[JoinPred]) {
    buf.put_u16(ps.len() as u16);
    for p in ps {
        encode_attr(buf, p.left);
        encode_attr(buf, p.right);
    }
}

fn decode_join_preds(buf: &mut Bytes) -> Result<Vec<JoinPred>, ModuleError> {
    let n = get_u16(buf)? as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let left = decode_attr(buf)?;
        let right = decode_attr(buf)?;
        out.push(JoinPred { left, right });
    }
    Ok(out)
}

fn encode_cost(buf: &mut BytesMut, c: Cost) {
    buf.put_f64(c.cpu.lo());
    buf.put_f64(c.cpu.hi());
    buf.put_f64(c.io.lo());
    buf.put_f64(c.io.hi());
}

fn decode_cost(buf: &mut Bytes) -> Result<Cost, ModuleError> {
    let cpu = decode_interval(buf)?;
    let io = decode_interval(buf)?;
    Ok(Cost::new(cpu, io))
}

fn decode_interval(buf: &mut Bytes) -> Result<Interval, ModuleError> {
    let lo = get_f64(buf)?;
    let hi = get_f64(buf)?;
    Interval::try_new(lo, hi).map_err(|_| ModuleError::BadNumber)
}

fn get_u8(buf: &mut Bytes) -> Result<u8, ModuleError> {
    (buf.remaining() >= 1)
        .then(|| buf.get_u8())
        .ok_or(ModuleError::Truncated)
}

fn get_u16(buf: &mut Bytes) -> Result<u16, ModuleError> {
    (buf.remaining() >= 2)
        .then(|| buf.get_u16())
        .ok_or(ModuleError::Truncated)
}

fn get_u32(buf: &mut Bytes) -> Result<u32, ModuleError> {
    (buf.remaining() >= 4)
        .then(|| buf.get_u32())
        .ok_or(ModuleError::Truncated)
}

fn get_i64(buf: &mut Bytes) -> Result<i64, ModuleError> {
    (buf.remaining() >= 8)
        .then(|| buf.get_i64())
        .ok_or(ModuleError::Truncated)
}

fn get_f64(buf: &mut Bytes) -> Result<f64, ModuleError> {
    (buf.remaining() >= 8)
        .then(|| buf.get_f64())
        .ok_or(ModuleError::Truncated)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::PlanNodeBuilder;

    fn sample_plan() -> Arc<PlanNode> {
        let mut b = PlanNodeBuilder::new();
        let pred = SelectPred::unbound(
            AttrId {
                relation: RelationId(0),
                index: 0,
            },
            CompareOp::Lt,
            HostVar(0),
        );
        let scan = b.node(
            PhysicalOp::FileScan {
                relation: RelationId(0),
            },
            vec![],
            PlanStats::new(Interval::point(1000.0), 512.0),
            Cost::point(0.1, 0.25),
        );
        let filter = b.node(
            PhysicalOp::Filter { predicate: pred },
            vec![scan],
            PlanStats::new(Interval::new(0.0, 1000.0), 512.0),
            Cost::cpu_only(Interval::new(0.0, 0.1)),
        );
        let index = b.node(
            PhysicalOp::FilterBtreeScan {
                relation: RelationId(0),
                index: IndexId(0),
                predicate: pred,
            },
            vec![],
            PlanStats::new(Interval::new(0.0, 1000.0), 512.0),
            Cost::io_only(Interval::new(0.008, 4.1)),
        );
        b.choose_plan(vec![filter, index], Cost::point(0.001, 0.0))
    }

    #[test]
    fn roundtrip_preserves_structure_and_costs() {
        let plan = sample_plan();
        let module = AccessModule::new(plan.clone());
        let bytes = module.serialize();
        let back = AccessModule::deserialize(bytes).unwrap();
        assert_eq!(dag::node_count(back.root()), dag::node_count(&plan));
        assert_eq!(back.root().op, plan.op);
        assert_eq!(back.root().total_cost.total(), plan.total_cost.total());
        assert_eq!(back.root().children.len(), 2);
        assert_eq!(back.root().children[0].op, plan.children[0].op);
        back.root().check_invariants().unwrap();
    }

    #[test]
    fn roundtrip_preserves_sharing() {
        // Two sorts sharing a scan: 4 DAG nodes, 5 tree nodes.
        let mut b = PlanNodeBuilder::new();
        let shared = b.node(
            PhysicalOp::FileScan {
                relation: RelationId(1),
            },
            vec![],
            PlanStats::new(Interval::point(10.0), 512.0),
            Cost::point(0.0, 0.01),
        );
        let s1 = b.node(
            PhysicalOp::Sort {
                attr: AttrId { relation: RelationId(1), index: 0 },
            },
            vec![shared.clone()],
            PlanStats::new(Interval::point(10.0), 512.0),
            Cost::point(0.01, 0.0),
        );
        let s2 = b.node(
            PhysicalOp::Sort {
                attr: AttrId { relation: RelationId(1), index: 1 },
            },
            vec![shared],
            PlanStats::new(Interval::point(10.0), 512.0),
            Cost::point(0.02, 0.0),
        );
        let cp = b.choose_plan(vec![s1, s2], Cost::ZERO);
        let back = AccessModule::deserialize(AccessModule::new(cp).serialize()).unwrap();
        assert_eq!(dag::node_count(back.root()), 4);
        assert_eq!(dag::tree_node_count(back.root()), 5.0);
        // The shared scan decodes to one node referenced twice.
        let left_scan = back.root().children[0].children[0].id;
        let right_scan = back.root().children[1].children[0].id;
        assert_eq!(left_scan, right_scan);
    }

    #[test]
    fn module_stats_use_paper_model() {
        let cfg = SystemConfig::paper_1994();
        let module = AccessModule::new(sample_plan());
        let stats = module.stats(&cfg);
        assert_eq!(stats.nodes, 4);
        assert_eq!(stats.modeled_bytes, 4 * 128);
        assert!((stats.read_seconds - 4.0 * 128.0 / 2.0e6).abs() < 1e-12);
        assert!((stats.activation_seconds - (0.1 + stats.read_seconds)).abs() < 1e-12);
        assert!(stats.serialized_bytes > 0);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(matches!(
            AccessModule::deserialize(Bytes::from_static(&[0, 0])),
            Err(ModuleError::Truncated)
        ));
        let empty = {
            let mut b = BytesMut::new();
            b.put_u32(0);
            b.freeze()
        };
        assert!(matches!(
            AccessModule::deserialize(empty),
            Err(ModuleError::Empty)
        ));
        let bad_tag = {
            let mut b = BytesMut::new();
            b.put_u32(1);
            b.put_u8(99);
            b.freeze()
        };
        assert!(matches!(
            AccessModule::deserialize(bad_tag),
            Err(ModuleError::BadTag(99))
        ));
    }
}
