//! Graphviz (DOT) export of plan DAGs.
//!
//! Dynamic plans are DAGs with shared subexpressions, which indented text
//! rendering ([`crate::render_plan`]) can only hint at; DOT makes the
//! sharing visible. Choose-plan nodes render as diamonds, scans as boxes,
//! other operators as ellipses; edges from a choose-plan carry the
//! alternative index.
//!
//! ```text
//! dot -Tsvg plan.dot -o plan.svg
//! ```

use std::fmt::Write as _;
use std::sync::Arc;

use dqep_algebra::PhysicalOp;

use crate::dag;
use crate::node::PlanNode;

/// Renders the DAG as a Graphviz digraph.
#[must_use]
pub fn to_dot(root: &Arc<PlanNode>) -> String {
    let mut out = String::from("digraph plan {\n  rankdir=BT;\n  node [fontsize=10];\n");
    dag::walk_dag(root, &mut |node| {
        let shape = match node.op {
            PhysicalOp::ChoosePlan => "diamond",
            PhysicalOp::FileScan { .. }
            | PhysicalOp::BtreeScan { .. }
            | PhysicalOp::FilterBtreeScan { .. } => "box",
            _ => "ellipse",
        };
        let label = format!(
            "{}\\ncard={}\\ncost={}",
            escape(&node.op.to_string()),
            node.stats.card,
            node.total_cost.total()
        );
        let _ = writeln!(
            out,
            "  {} [shape={shape}, label=\"{label}\"];",
            node.id.0
        );
        for (i, child) in node.children.iter().enumerate() {
            if node.is_choose_plan() {
                let _ = writeln!(out, "  {} -> {} [label=\"alt {i}\"];", child.id.0, node.id.0);
            } else {
                let _ = writeln!(out, "  {} -> {};", child.id.0, node.id.0);
            }
        }
    });
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::PlanNodeBuilder;
    use dqep_catalog::RelationId;
    use dqep_cost::{Cost, PlanStats};
    use dqep_interval::Interval;

    #[test]
    fn emits_nodes_edges_and_shapes() {
        let mut b = PlanNodeBuilder::new();
        let shared = b.node(
            PhysicalOp::FileScan { relation: RelationId(0) },
            vec![],
            PlanStats::new(Interval::point(10.0), 512.0),
            Cost::point(0.0, 0.1),
        );
        let s1 = b.node(
            PhysicalOp::Sort {
                attr: dqep_catalog::AttrId { relation: RelationId(0), index: 0 },
            },
            vec![shared.clone()],
            PlanStats::new(Interval::point(10.0), 512.0),
            Cost::point(0.1, 0.0),
        );
        let s2 = b.node(
            PhysicalOp::Sort {
                attr: dqep_catalog::AttrId { relation: RelationId(0), index: 1 },
            },
            vec![shared],
            PlanStats::new(Interval::point(10.0), 512.0),
            Cost::point(0.2, 0.0),
        );
        let cp = b.choose_plan(vec![s1, s2], Cost::point(0.01, 0.0));
        let dot = to_dot(&cp);
        assert!(dot.starts_with("digraph plan {"));
        assert!(dot.trim_end().ends_with('}'));
        assert!(dot.contains("shape=diamond"));
        assert!(dot.contains("shape=box"));
        assert!(dot.contains("shape=ellipse"));
        assert!(dot.contains("alt 0"));
        assert!(dot.contains("alt 1"));
        // Shared scan: exactly one node line for it, two outgoing edges.
        let scan_node_lines = dot
            .lines()
            .filter(|l| l.contains("File-Scan") && l.contains("shape=box"))
            .count();
        assert_eq!(scan_node_lines, 1);
        let scan_edges = dot
            .lines()
            .filter(|l| l.trim_start().starts_with("0 -> "))
            .count();
        assert_eq!(scan_edges, 2, "shared node has two parents:\n{dot}");
    }

    #[test]
    fn dot_is_deterministic() {
        let mut b = PlanNodeBuilder::new();
        let scan = b.node(
            PhysicalOp::FileScan { relation: RelationId(1) },
            vec![],
            PlanStats::new(Interval::point(1.0), 512.0),
            Cost::ZERO,
        );
        assert_eq!(to_dot(&scan), to_dot(&scan));
    }
}
