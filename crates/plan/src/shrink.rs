//! The self-shrinking access-module heuristic (paper Section 4).
//!
//! "During each invocation, the access module keeps statistics indicating
//! which components of the dynamic plan were actually used. After a number
//! of invocations, say 100, the access module analyses which components
//! have been used and replaces itself with a dynamic-plan access module
//! that contains only those components that have been used before."
//!
//! This is a heuristic: an alternative never chosen during the observation
//! window is dropped even though a later binding might have wanted it; the
//! shrunk plan then falls back to its best remaining alternative. The
//! benefit is a smaller module, i.e. less activation I/O and fewer
//! start-up cost evaluations.

use std::collections::HashMap;
use std::sync::Arc;

use dqep_catalog::Catalog;
use dqep_cost::{Bindings, Cost, Environment};

use crate::node::{NodeId, PlanNode, PlanNodeBuilder};
use crate::startup::{evaluate_startup, StartupDecision, StartupResult};

/// Per-choose-plan usage counters accumulated across invocations.
#[derive(Debug, Clone, Default)]
pub struct UsageStats {
    /// choose-plan node → per-alternative selection counts.
    counts: HashMap<NodeId, Vec<u64>>,
    invocations: u64,
}

impl UsageStats {
    /// Empty statistics.
    #[must_use]
    pub fn new() -> UsageStats {
        UsageStats::default()
    }

    /// Records the decisions of one invocation.
    pub fn record(&mut self, decisions: &[StartupDecision]) {
        self.invocations += 1;
        for d in decisions {
            let counts = self
                .counts
                .entry(d.choose_plan)
                .or_insert_with(|| vec![0; d.alternatives]);
            if counts.len() < d.alternatives {
                counts.resize(d.alternatives, 0);
            }
            counts[d.chosen_index] += 1;
        }
    }

    /// Number of invocations recorded.
    #[must_use]
    pub fn invocations(&self) -> u64 {
        self.invocations
    }

    /// Selection counts for a choose-plan node, if it ever decided.
    #[must_use]
    pub fn counts(&self, node: NodeId) -> Option<&[u64]> {
        self.counts.get(&node).map(Vec::as_slice)
    }
}

/// Rebuilds a dynamic plan keeping only the alternatives that were actually
/// chosen according to `usage`. Choose-plans left with a single alternative
/// collapse into it; choose-plans with no recorded decisions (they sit
/// inside alternatives that were themselves never chosen) keep all their
/// alternatives, conservatively.
///
/// DAG sharing is preserved: shared subplans are rebuilt once.
#[must_use]
pub fn shrink_plan(root: &Arc<PlanNode>, usage: &UsageStats) -> Arc<PlanNode> {
    let mut builder = PlanNodeBuilder::new();
    let mut memo: HashMap<NodeId, Arc<PlanNode>> = HashMap::new();
    rebuild(root, usage, &mut builder, &mut memo)
}

fn rebuild(
    node: &Arc<PlanNode>,
    usage: &UsageStats,
    builder: &mut PlanNodeBuilder,
    memo: &mut HashMap<NodeId, Arc<PlanNode>>,
) -> Arc<PlanNode> {
    if let Some(hit) = memo.get(&node.id) {
        return Arc::clone(hit);
    }
    let result = if node.is_choose_plan() {
        let keep: Vec<&Arc<PlanNode>> = match usage.counts(node.id) {
            Some(counts) => node
                .children
                .iter()
                .enumerate()
                .filter(|(i, _)| counts.get(*i).copied().unwrap_or(0) > 0)
                .map(|(_, c)| c)
                .collect(),
            // Never decided: keep everything.
            None => node.children.iter().collect(),
        };
        let keep = if keep.is_empty() {
            // Degenerate (should not happen: a decision always picks one);
            // keep everything rather than produce an empty plan.
            node.children.iter().collect::<Vec<_>>()
        } else {
            keep
        };
        let rebuilt: Vec<Arc<PlanNode>> = keep
            .into_iter()
            .map(|c| rebuild(c, usage, builder, memo))
            .collect();
        if rebuilt.len() == 1 {
            rebuilt.into_iter().next().expect("len checked")
        } else {
            builder.choose_plan(rebuilt, node.self_cost)
        }
    } else {
        let children: Vec<Arc<PlanNode>> = node
            .children
            .iter()
            .map(|c| rebuild(c, usage, builder, memo))
            .collect();
        builder.node(node.op.clone(), children, node.stats, node.self_cost)
    };
    memo.insert(node.id, Arc::clone(&result));
    result
}

/// A self-shrinking access module: evaluates invocations, tracks usage,
/// and replaces its plan after `threshold` invocations — the paper's
/// proposed self-replacement, with the re-optimization replaced by a plan
/// rewrite whose effort is "comparable to the cost analysis at
/// start-up-time".
#[derive(Debug)]
pub struct ShrinkingModule {
    plan: Arc<PlanNode>,
    usage: UsageStats,
    threshold: u64,
    shrunk: bool,
}

impl ShrinkingModule {
    /// Wraps a dynamic plan; the module shrinks after `threshold`
    /// invocations (the paper suggests 100).
    #[must_use]
    pub fn new(plan: Arc<PlanNode>, threshold: u64) -> ShrinkingModule {
        ShrinkingModule {
            plan,
            usage: UsageStats::new(),
            threshold,
            shrunk: false,
        }
    }

    /// The current plan (pre- or post-shrink).
    #[must_use]
    pub fn plan(&self) -> &Arc<PlanNode> {
        &self.plan
    }

    /// Whether self-replacement has happened.
    #[must_use]
    pub fn has_shrunk(&self) -> bool {
        self.shrunk
    }

    /// Usage statistics accumulated so far.
    #[must_use]
    pub fn usage(&self) -> &UsageStats {
        &self.usage
    }

    /// Runs one invocation: start-up evaluation against `bindings`,
    /// records usage, and self-replaces once the threshold is reached.
    pub fn invoke(
        &mut self,
        catalog: &Catalog,
        env: &Environment,
        bindings: &Bindings,
    ) -> StartupResult {
        let result = evaluate_startup(&self.plan, catalog, env, bindings);
        self.usage.record(&result.decisions);
        if !self.shrunk && self.usage.invocations() >= self.threshold {
            self.plan = shrink_plan(&self.plan, &self.usage);
            self.usage = UsageStats::new();
            self.shrunk = true;
        }
        result
    }
}

/// Exposes the builder-cost for a collapsed choose-plan (kept for
/// documentation symmetry; collapsing removes the decision overhead).
#[must_use]
pub fn decision_cost_saved(alternatives_removed: usize, per_decision: f64) -> Cost {
    Cost::cpu_only(dqep_interval::Interval::point(
        alternatives_removed as f64 * per_decision,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag;
    use dqep_algebra::{CompareOp, HostVar, PhysicalOp, SelectPred};
    use dqep_catalog::{CatalogBuilder, SystemConfig};
    use dqep_cost::{CostModel, PlanStats};
    use dqep_interval::Interval;

    fn fixture() -> Catalog {
        CatalogBuilder::new(SystemConfig::paper_1994())
            .relation("r", 1000, 512, |r| r.attr("a", 1000.0).btree("a", false))
            .build()
            .unwrap()
    }

    fn figure1_plan(cat: &Catalog, env: &Environment) -> Arc<PlanNode> {
        let rel = cat.relation_by_name("r").unwrap();
        let pred = SelectPred::unbound(rel.attr_id("a").unwrap(), CompareOp::Lt, HostVar(0));
        let (idx, _) = cat.index_on_attr(pred.attr).unwrap();
        let model = CostModel::new(cat, env);
        let sel = model.selectivity().selection(&pred, env);
        let scan_stats = PlanStats::new(Interval::point(1000.0), 512.0);
        let out_stats = PlanStats::new(Interval::point(1000.0) * sel, 512.0);
        let mut b = PlanNodeBuilder::new();
        let scan_op = PhysicalOp::FileScan { relation: rel.id };
        let scan_cost = model.op_cost(&scan_op, &[], &scan_stats);
        let scan = b.node(scan_op, vec![], scan_stats, scan_cost);
        let filter_op = PhysicalOp::Filter { predicate: pred };
        let filter_cost = model.op_cost(&filter_op, &[scan_stats], &out_stats);
        let file_plan = b.node(filter_op, vec![scan], out_stats, filter_cost);
        let idx_op = PhysicalOp::FilterBtreeScan {
            relation: rel.id,
            index: idx,
            predicate: pred,
        };
        let idx_cost = model.op_cost(&idx_op, &[], &out_stats);
        let index_plan = b.node(idx_op, vec![], out_stats, idx_cost);
        b.choose_plan(vec![file_plan, index_plan], model.choose_plan_cost(2))
    }

    #[test]
    fn usage_stats_accumulate() {
        let mut u = UsageStats::new();
        u.record(&[StartupDecision {
            choose_plan: NodeId(7),
            chosen_index: 1,
            alternatives: 2,
            chosen_cost: 0.1,
        }]);
        u.record(&[StartupDecision {
            choose_plan: NodeId(7),
            chosen_index: 1,
            alternatives: 2,
            chosen_cost: 0.2,
        }]);
        assert_eq!(u.invocations(), 2);
        assert_eq!(u.counts(NodeId(7)), Some(&[0u64, 2][..]));
        assert_eq!(u.counts(NodeId(8)), None);
    }

    #[test]
    fn shrink_collapses_single_used_alternative() {
        let cat = fixture();
        let env = Environment::dynamic_compile_time(&cat.config);
        let plan = figure1_plan(&cat, &env);
        let before = dag::node_count(&plan);

        // Only low-selectivity bindings: index plan always chosen.
        let mut usage = UsageStats::new();
        for v in [1i64, 5, 10, 20] {
            let r = evaluate_startup(&plan, &cat, &env, &Bindings::new().with_value(HostVar(0), v));
            usage.record(&r.decisions);
        }
        let shrunk = shrink_plan(&plan, &usage);
        assert!(!shrunk.is_dynamic(), "one surviving alternative collapses");
        assert!(dag::node_count(&shrunk) < before);
        assert!(matches!(shrunk.op, PhysicalOp::FilterBtreeScan { .. }));
        shrunk.check_invariants().unwrap();
    }

    #[test]
    fn shrink_keeps_both_when_both_used() {
        let cat = fixture();
        let env = Environment::dynamic_compile_time(&cat.config);
        let plan = figure1_plan(&cat, &env);
        let mut usage = UsageStats::new();
        for v in [1i64, 950] {
            let r = evaluate_startup(&plan, &cat, &env, &Bindings::new().with_value(HostVar(0), v));
            usage.record(&r.decisions);
        }
        let shrunk = shrink_plan(&plan, &usage);
        assert!(shrunk.is_dynamic());
        assert_eq!(dag::node_count(&shrunk), dag::node_count(&plan));
    }

    #[test]
    fn shrink_without_usage_is_conservative() {
        let cat = fixture();
        let env = Environment::dynamic_compile_time(&cat.config);
        let plan = figure1_plan(&cat, &env);
        let shrunk = shrink_plan(&plan, &UsageStats::new());
        assert_eq!(dag::node_count(&shrunk), dag::node_count(&plan));
        assert!(shrunk.is_dynamic());
    }

    #[test]
    fn shrinking_module_replaces_itself_at_threshold() {
        let cat = fixture();
        let env = Environment::dynamic_compile_time(&cat.config);
        let plan = figure1_plan(&cat, &env);
        let mut module = ShrinkingModule::new(plan, 3);
        for v in [1i64, 5, 9] {
            let _ = module.invoke(&cat, &env, &Bindings::new().with_value(HostVar(0), v));
        }
        assert!(module.has_shrunk());
        assert!(!module.plan().is_dynamic());
        // Post-shrink invocations still work (fallback to the kept plan).
        let r = module.invoke(&cat, &env, &Bindings::new().with_value(HostVar(0), 990));
        assert!(r.decisions.is_empty());
        assert!(r.predicted_run_seconds > 0.0);
    }

    #[test]
    fn shrunk_plan_may_be_suboptimal_later() {
        // The heuristic's documented risk: after observing only low
        // selectivities, a high-selectivity binding pays the index price.
        let cat = fixture();
        let env = Environment::dynamic_compile_time(&cat.config);
        let plan = figure1_plan(&cat, &env);
        let mut usage = UsageStats::new();
        for v in [1i64, 2, 3] {
            let r = evaluate_startup(&plan, &cat, &env, &Bindings::new().with_value(HostVar(0), v));
            usage.record(&r.decisions);
        }
        let shrunk = shrink_plan(&plan, &usage);
        let hot = Bindings::new().with_value(HostVar(0), 990);
        let full = evaluate_startup(&plan, &cat, &env, &hot).predicted_run_seconds;
        let lean = evaluate_startup(&shrunk, &cat, &env, &hot).predicted_run_seconds;
        assert!(lean > full, "shrunk plan lost the good alternative");
    }
}
