//! Dynamic query evaluation plans: DAG representation, access modules,
//! and start-up-time evaluation.
//!
//! A **dynamic plan** (Graefe & Ward, SIGMOD 1989) is a query evaluation
//! plan, generated entirely at compile-time, that contains *alternative
//! subplans* linked by **choose-plan** operators. At start-up-time, when
//! host variables are bound and actual resource availability is known, each
//! choose-plan decides among its alternatives by re-evaluating their cost
//! functions — and the plan adapts without re-optimization.
//!
//! This crate provides:
//!
//! * [`PlanNode`] — a physical plan operator in a shared DAG
//!   (alternatives share common subexpressions; the number of *contained*
//!   static plans grows multiplicatively while the DAG stays small).
//! * [`dag`] — DAG analytics: node counts (the paper's Figure 6 metric),
//!   contained-plan counts, choose-plan counts.
//! * [`AccessModule`] — the stored form of a plan: a compact serialized
//!   artifact plus the activation-time model (module read I/O at
//!   `plan_node_bytes / module_read_bandwidth`, catalog-validation base).
//! * [`startup`] — the start-up-time decision procedure: one
//!   cost-function evaluation per DAG node (shared nodes costed once),
//!   choose-plan picks its cheapest input, and the dynamic plan resolves
//!   to a static plan ready for execution.
//! * [`shrink`] — the paper's Section 4 self-shrinking heuristic: after a
//!   number of invocations the access module replaces itself with one
//!   containing only the alternatives actually used.

#![warn(missing_docs)]

pub mod dag;
mod dot;
mod module;
mod node;
mod pretty;
mod remaining;
pub mod shrink;
pub mod startup;

pub use module::{AccessModule, ModuleError, ModuleStats};
pub use node::{NodeId, PlanNode, PlanNodeBuilder};
pub use dot::to_dot;
pub use pretty::render_plan;
pub use remaining::{chosen_map, next_blocking_input};
pub use startup::{evaluate_startup, evaluate_startup_observed, Observations, StartupDecision, StartupResult};
