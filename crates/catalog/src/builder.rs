//! Fluent construction of catalogs.

use crate::config::SystemConfig;
use crate::index::{IndexInfo, IndexKind};
use crate::schema::{Attribute, Catalog, CatalogError};
use crate::stats::RelationStats;

/// Builder for a [`Catalog`].
///
/// ```
/// use dqep_catalog::{CatalogBuilder, SystemConfig};
///
/// let catalog = CatalogBuilder::new(SystemConfig::paper_1994())
///     .relation("orders", 1_000, 512, |r| {
///         r.attr("id", 1_000.0)
///             .attr("amount", 500.0)
///             .btree("id", true)
///             .btree("amount", false)
///     })
///     .build()
///     .unwrap();
/// assert_eq!(catalog.relations().len(), 1);
/// ```
#[derive(Debug)]
pub struct CatalogBuilder {
    catalog: Catalog,
    error: Option<CatalogError>,
}

impl CatalogBuilder {
    /// Starts building a catalog with the given configuration.
    #[must_use]
    pub fn new(config: SystemConfig) -> CatalogBuilder {
        CatalogBuilder {
            catalog: Catalog::new(config),
            error: None,
        }
    }

    /// Adds a relation; `f` configures its attributes and indexes.
    #[must_use]
    pub fn relation(
        mut self,
        name: &str,
        cardinality: u64,
        record_len: u32,
        f: impl FnOnce(RelationBuilder) -> RelationBuilder,
    ) -> CatalogBuilder {
        if self.error.is_some() {
            return self;
        }
        let rb = f(RelationBuilder::new(name));
        match self.add(rb, cardinality, record_len) {
            Ok(()) => {}
            Err(e) => self.error = Some(e),
        }
        self
    }

    fn add(&mut self, rb: RelationBuilder, cardinality: u64, record_len: u32) -> Result<(), CatalogError> {
        let id = self
            .catalog
            .add_relation(rb.name, rb.attrs, RelationStats::new(cardinality, record_len))?;
        for (attr_name, kind, clustered) in rb.indexes {
            let rel = self.catalog.relation(id);
            let attr = rel
                .attr_id(&attr_name)
                .ok_or(CatalogError::UnknownAttribute(attr_name))?;
            self.catalog.add_index(IndexInfo::new(attr, kind, clustered))?;
        }
        Ok(())
    }

    /// Finishes, returning the catalog or the first error encountered.
    pub fn build(self) -> Result<Catalog, CatalogError> {
        match self.error {
            Some(e) => Err(e),
            None => Ok(self.catalog),
        }
    }
}

/// Configures one relation inside [`CatalogBuilder::relation`].
#[derive(Debug)]
pub struct RelationBuilder {
    name: String,
    attrs: Vec<Attribute>,
    indexes: Vec<(String, IndexKind, bool)>,
}

impl RelationBuilder {
    fn new(name: &str) -> RelationBuilder {
        RelationBuilder {
            name: name.to_string(),
            attrs: Vec::new(),
            indexes: Vec::new(),
        }
    }

    /// Adds an attribute with the given domain size.
    #[must_use]
    pub fn attr(mut self, name: &str, domain_size: f64) -> RelationBuilder {
        self.attrs.push(Attribute::new(name, domain_size));
        self
    }

    /// Adds a B-tree index on the named attribute.
    #[must_use]
    pub fn btree(mut self, attr: &str, clustered: bool) -> RelationBuilder {
        self.indexes.push((attr.to_string(), IndexKind::BTree, clustered));
        self
    }

    /// Adds a hash index on the named attribute.
    #[must_use]
    pub fn hash(mut self, attr: &str) -> RelationBuilder {
        self.indexes.push((attr.to_string(), IndexKind::Hash, false));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_relations_and_indexes() {
        let cat = CatalogBuilder::new(SystemConfig::paper_1994())
            .relation("r", 100, 512, |r| r.attr("a", 100.0).btree("a", false))
            .relation("s", 200, 512, |r| r.attr("b", 50.0).hash("b"))
            .build()
            .unwrap();
        assert_eq!(cat.relations().len(), 2);
        let r = cat.relation_by_name("r").unwrap();
        assert_eq!(r.indexes.len(), 1);
        let s = cat.relation_by_name("s").unwrap();
        assert_eq!(cat.index(s.indexes[0]).kind, IndexKind::Hash);
    }

    #[test]
    fn index_on_missing_attr_is_error() {
        let err = CatalogBuilder::new(SystemConfig::paper_1994())
            .relation("r", 100, 512, |r| r.attr("a", 100.0).btree("zzz", false))
            .build()
            .unwrap_err();
        assert_eq!(err, CatalogError::UnknownAttribute("zzz".into()));
    }

    #[test]
    fn error_short_circuits_later_relations() {
        let err = CatalogBuilder::new(SystemConfig::paper_1994())
            .relation("r", 1, 512, |r| r.attr("a", 1.0))
            .relation("r", 1, 512, |r| r.attr("a", 1.0))
            .relation("t", 1, 512, |r| r.attr("a", 1.0))
            .build()
            .unwrap_err();
        assert_eq!(err, CatalogError::DuplicateRelation("r".into()));
    }
}
