//! Synthetic catalogs mirroring the paper's experimental database.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::builder::CatalogBuilder;
use crate::config::SystemConfig;
use crate::schema::Catalog;

/// Parameters of the synthetic experimental database (paper Section 6):
/// relations of 100–1,000 records of 512 bytes; attribute domain sizes of
/// 0.2–1.25 × the relation's cardinality; unclustered B-trees on the
/// selection attribute and on all join attributes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SyntheticSpec {
    /// Number of relations in the chain (`n`-way join needs `n`).
    pub n_relations: usize,
    /// Minimum relation cardinality (paper: 100).
    pub min_cardinality: u64,
    /// Maximum relation cardinality (paper: 1,000).
    pub max_cardinality: u64,
    /// Record length in bytes (paper: 512).
    pub record_len: u32,
    /// Lower bound of the join-attribute domain size as a fraction of the
    /// relation cardinality (paper: 0.2).
    pub domain_factor_min: f64,
    /// Upper bound of the same fraction (paper: 1.25).
    pub domain_factor_max: f64,
    /// RNG seed; the same seed reproduces the same catalog.
    pub seed: u64,
}

impl SyntheticSpec {
    /// The paper's configuration for an `n`-relation chain query.
    #[must_use]
    pub fn paper(n_relations: usize, seed: u64) -> SyntheticSpec {
        SyntheticSpec {
            n_relations,
            min_cardinality: 100,
            max_cardinality: 1000,
            record_len: 512,
            domain_factor_min: 0.2,
            domain_factor_max: 1.25,
            seed,
        }
    }
}

/// Names of the conventional attributes of chain-catalog relations.
///
/// Relation `i` (zero-based) is named `R{i+1}` and has:
/// * `a`  — the selection attribute referenced by the query's unbound
///   predicate; domain size = cardinality (values are near-unique).
/// * `jl` — joins to the *left* neighbour `R{i}` (absent on the first
///   relation's use, but always present in the schema for uniformity).
/// * `jr` — joins to the *right* neighbour `R{i+2}`.
///
/// Chain join predicate `i` (between relations `i` and `i+1`) equates
/// `R{i+1}.jr = R{i+2}.jl`.
pub const SELECTION_ATTR: &str = "a";
/// Join attribute pointing to the left neighbour.
pub const JOIN_LEFT_ATTR: &str = "jl";
/// Join attribute pointing to the right neighbour.
pub const JOIN_RIGHT_ATTR: &str = "jr";

/// Generates the paper's chain-query catalog: `n` relations with random
/// cardinalities, selection attribute `a`, chain join attributes
/// `jl`/`jr`, and unclustered B-trees on all of them.
///
/// Deterministic in `spec.seed`.
#[must_use]
pub fn make_chain_catalog(spec: &SyntheticSpec, config: SystemConfig) -> Catalog {
    assert!(spec.n_relations >= 1, "need at least one relation");
    assert!(
        spec.min_cardinality <= spec.max_cardinality,
        "cardinality range inverted"
    );
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut builder = CatalogBuilder::new(config);
    for i in 0..spec.n_relations {
        let card = rng.gen_range(spec.min_cardinality..=spec.max_cardinality);
        let domain = |rng: &mut StdRng| {
            (card as f64 * rng.gen_range(spec.domain_factor_min..=spec.domain_factor_max))
                .max(1.0)
                .round()
        };
        let (dl, dr) = (domain(&mut rng), domain(&mut rng));
        let name = format!("R{}", i + 1);
        builder = builder.relation(&name, card, spec.record_len, |r| {
            r.attr(SELECTION_ATTR, card as f64)
                .attr(JOIN_LEFT_ATTR, dl)
                .attr(JOIN_RIGHT_ATTR, dr)
                .btree(SELECTION_ATTR, false)
                .btree(JOIN_LEFT_ATTR, false)
                .btree(JOIN_RIGHT_ATTR, false)
        });
    }
    builder
        .build()
        .expect("synthetic catalog construction cannot fail")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_relations() {
        let spec = SyntheticSpec::paper(4, 42);
        let cat = make_chain_catalog(&spec, SystemConfig::paper_1994());
        assert_eq!(cat.relations().len(), 4);
        for (i, rel) in cat.relations().iter().enumerate() {
            assert_eq!(rel.name, format!("R{}", i + 1));
            assert!(rel.stats.cardinality >= 100 && rel.stats.cardinality <= 1000);
            assert_eq!(rel.stats.record_len, 512);
            assert_eq!(rel.attributes.len(), 3);
            // One unclustered B-tree per attribute.
            assert_eq!(rel.indexes.len(), 3);
            for (_, info) in cat.indexes_on(rel.id) {
                assert!(!info.clustered);
            }
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let spec = SyntheticSpec::paper(6, 7);
        let a = make_chain_catalog(&spec, SystemConfig::paper_1994());
        let b = make_chain_catalog(&spec, SystemConfig::paper_1994());
        for (ra, rb) in a.relations().iter().zip(b.relations()) {
            assert_eq!(ra.stats.cardinality, rb.stats.cardinality);
            assert_eq!(ra.attributes, rb.attributes);
        }
        let c = make_chain_catalog(&SyntheticSpec::paper(6, 8), SystemConfig::paper_1994());
        let differs = a
            .relations()
            .iter()
            .zip(c.relations())
            .any(|(x, y)| x.stats.cardinality != y.stats.cardinality);
        assert!(differs, "different seeds should give different cardinalities");
    }

    #[test]
    fn domain_sizes_within_paper_bounds() {
        let spec = SyntheticSpec::paper(10, 123);
        let cat = make_chain_catalog(&spec, SystemConfig::paper_1994());
        for rel in cat.relations() {
            let card = rel.stats.cardinality as f64;
            let sel = &rel.attributes[rel.attr_index(SELECTION_ATTR).unwrap() as usize];
            assert_eq!(sel.domain_size, card);
            for name in [JOIN_LEFT_ATTR, JOIN_RIGHT_ATTR] {
                let a = &rel.attributes[rel.attr_index(name).unwrap() as usize];
                assert!(a.domain_size >= (0.2 * card).floor());
                assert!(a.domain_size <= (1.25 * card).ceil());
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one relation")]
    fn zero_relations_rejected() {
        let mut spec = SyntheticSpec::paper(1, 0);
        spec.n_relations = 0;
        let _ = make_chain_catalog(&spec, SystemConfig::paper_1994());
    }
}
