//! Index metadata.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::schema::AttrId;

/// Identifier of an index within a catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct IndexId(pub u32);

impl fmt::Display for IndexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "I{}", self.0)
    }
}

/// The kind of associative search structure.
///
/// The paper's experiments use B-trees exclusively ("uncluttered B-tree
/// structures suitable for predicate evaluation", Section 6 — "unclustered"
/// in modern terms); hash indexes are supported as an extension for
/// equality predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IndexKind {
    /// Ordered B-tree index; supports range and equality predicates and
    /// delivers its key's sort order.
    BTree,
    /// Hash index; supports equality predicates only.
    Hash,
}

impl fmt::Display for IndexKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexKind::BTree => f.write_str("btree"),
            IndexKind::Hash => f.write_str("hash"),
        }
    }
}

/// Metadata describing one index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct IndexInfo {
    /// The key attribute.
    pub attr: AttrId,
    /// The index kind.
    pub kind: IndexKind,
    /// Whether the base relation is stored in index-key order. A clustered
    /// scan reads qualifying records sequentially; an unclustered index
    /// needs one record fetch per qualifying entry (bounded by Yao's page
    /// estimate in the cost model).
    pub clustered: bool,
}

impl IndexInfo {
    /// Creates an index description.
    #[must_use]
    pub fn new(attr: AttrId, kind: IndexKind, clustered: bool) -> IndexInfo {
        IndexInfo {
            attr,
            kind,
            clustered,
        }
    }

    /// Whether the index supports range predicates (`<`, `<=`, `>`, `>=`,
    /// between).
    #[must_use]
    pub fn supports_range(&self) -> bool {
        matches!(self.kind, IndexKind::BTree)
    }

    /// Whether scanning this index delivers tuples sorted on its key.
    #[must_use]
    pub fn delivers_order(&self) -> bool {
        matches!(self.kind, IndexKind::BTree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelationId;

    fn attr() -> AttrId {
        AttrId {
            relation: RelationId(0),
            index: 0,
        }
    }

    #[test]
    fn btree_capabilities() {
        let idx = IndexInfo::new(attr(), IndexKind::BTree, false);
        assert!(idx.supports_range());
        assert!(idx.delivers_order());
        assert!(!idx.clustered);
    }

    #[test]
    fn hash_capabilities() {
        let idx = IndexInfo::new(attr(), IndexKind::Hash, false);
        assert!(!idx.supports_range());
        assert!(!idx.delivers_order());
    }

    #[test]
    fn display() {
        assert_eq!(IndexId(7).to_string(), "I7");
        assert_eq!(IndexKind::BTree.to_string(), "btree");
        assert_eq!(IndexKind::Hash.to_string(), "hash");
    }
}
