//! Physical constants of the (simulated) machine.

use serde::{Deserialize, Serialize};

/// Physical constants used by the cost model, the access-module activation
/// model, and the storage simulator.
///
/// [`SystemConfig::paper_1994`] mirrors the experimental setup of Section 6:
/// 2,048-byte pages, 64 pages of expected memory (uncertain in
/// `[16, 112]`), 512-byte records, 128-byte plan nodes, a 2 MB/s disk, and
/// a 0.1 s plan-activation base (catalog validation plus the seek to the
/// access module).
///
/// I/O and CPU constants are *model* constants: like the paper (its
/// footnote 4), predicted execution times are computed from these so that
/// plan comparisons are free of selectivity-estimation noise and host
/// hardware. The storage simulator charges the same constants, so measured
/// simulator times and predicted times are directly comparable.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Page size in bytes.
    pub page_size: u32,
    /// Memory available to operators (expected value), in pages.
    pub expected_memory_pages: f64,
    /// Lower bound of uncertain memory, in pages.
    pub memory_min_pages: f64,
    /// Upper bound of uncertain memory, in pages.
    pub memory_max_pages: f64,
    /// Default (expected) selectivity a traditional optimizer assumes for an
    /// unbound selection predicate.
    pub default_selectivity: f64,
    /// Effective B-tree fanout (entries per interior node).
    pub btree_fanout: u32,
    /// Seconds to read one page sequentially.
    pub seq_page_io: f64,
    /// Seconds for one random page read (seek + rotation + transfer).
    pub random_page_io: f64,
    /// CPU seconds to produce/consume one record in an operator pipeline.
    pub cpu_per_record: f64,
    /// CPU seconds for one comparison (sorting, merging).
    pub cpu_per_compare: f64,
    /// CPU seconds to hash one record (build or probe).
    pub cpu_per_hash: f64,
    /// CPU seconds to evaluate one choose-plan decision at start-up-time
    /// (one cost-function evaluation per DAG node).
    pub choose_plan_overhead: f64,
    /// Size of one plan operator node in a serialized access module, bytes.
    pub plan_node_bytes: u32,
    /// Disk bandwidth for reading access modules, bytes per second.
    pub module_read_bandwidth: f64,
    /// Seconds of fixed plan-activation work: catalog validation plus one
    /// seek to the access module (the paper's `z = 0.1 s`).
    pub activation_base: f64,
}

impl SystemConfig {
    /// The experimental configuration of the paper (Section 6).
    #[must_use]
    pub fn paper_1994() -> SystemConfig {
        SystemConfig {
            page_size: 2048,
            expected_memory_pages: 64.0,
            memory_min_pages: 16.0,
            memory_max_pages: 112.0,
            default_selectivity: 0.05,
            btree_fanout: 128,
            seq_page_io: 0.001,
            random_page_io: 0.004,
            cpu_per_record: 1.0e-4,
            cpu_per_compare: 1.0e-6,
            cpu_per_hash: 2.5e-6,
            choose_plan_overhead: 5.0e-4,
            plan_node_bytes: 128,
            module_read_bandwidth: 2.0e6,
            activation_base: 0.1,
        }
    }

    /// Seconds needed to read an access module of `nodes` plan nodes.
    #[must_use]
    pub fn module_read_time(&self, nodes: usize) -> f64 {
        nodes as f64 * self.plan_node_bytes as f64 / self.module_read_bandwidth
    }

    /// Memory in bytes corresponding to `pages` pages.
    #[must_use]
    pub fn pages_to_bytes(&self, pages: f64) -> f64 {
        pages * self.page_size as f64
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig::paper_1994()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants() {
        let c = SystemConfig::paper_1994();
        assert_eq!(c.page_size, 2048);
        assert_eq!(c.expected_memory_pages, 64.0);
        assert_eq!(c.memory_min_pages, 16.0);
        assert_eq!(c.memory_max_pages, 112.0);
        assert_eq!(c.default_selectivity, 0.05);
        assert_eq!(c.plan_node_bytes, 128);
    }

    #[test]
    fn module_read_time_matches_paper_example() {
        // Paper Section 6: "for a node size of 128 bytes and a bandwidth of
        // 2 MB/sec, about 16,000 nodes can be read per second"; the 14,090
        // node dynamic plan needs just under 0.9 s.
        let c = SystemConfig::paper_1994();
        let t = c.module_read_time(14_090);
        assert!((t - 0.9).abs() < 0.02, "expected ~0.9 s, got {t}");
        assert!((c.module_read_time(16_000) - 1.024).abs() < 0.03);
    }

    #[test]
    fn pages_to_bytes() {
        let c = SystemConfig::paper_1994();
        assert_eq!(c.pages_to_bytes(64.0), 64.0 * 2048.0);
    }
}
