//! Relations, attributes, and the catalog container.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::config::SystemConfig;
use crate::histogram::Histogram;
use crate::index::{IndexId, IndexInfo};
use crate::stats::RelationStats;

/// Identifier of a relation within a [`Catalog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RelationId(pub u32);

impl fmt::Display for RelationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// Identifier of an attribute: a relation plus an attribute position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AttrId {
    /// The owning relation.
    pub relation: RelationId,
    /// Zero-based position within the relation's schema.
    pub index: u32,
}

impl fmt::Display for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.#{}", self.relation, self.index)
    }
}

/// An attribute (column) of a relation.
///
/// All experiment attributes are integer-valued with values drawn uniformly
/// from `[0, domain_size)`; `domain_size` is the statistic the paper's join
/// selectivity model divides by ("the cross product of the joined relations
/// divided by the larger of the join attribute domain sizes", Section 6).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Attribute {
    /// Attribute name, unique within its relation.
    pub name: String,
    /// Number of distinct values the attribute may take.
    pub domain_size: f64,
}

impl Attribute {
    /// Creates an attribute with the given name and domain size.
    ///
    /// # Panics
    /// Panics if `domain_size` is not strictly positive and finite.
    #[must_use]
    pub fn new(name: impl Into<String>, domain_size: f64) -> Attribute {
        assert!(
            domain_size.is_finite() && domain_size > 0.0,
            "domain_size must be positive and finite"
        );
        Attribute {
            name: name.into(),
            domain_size,
        }
    }
}

/// A base relation: schema plus statistics plus its indexes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Relation {
    /// The relation's id, assigned by the catalog.
    pub id: RelationId,
    /// The relation's name, unique within the catalog.
    pub name: String,
    /// The relation's attributes in schema order.
    pub attributes: Vec<Attribute>,
    /// Cardinality and physical statistics.
    pub stats: RelationStats,
    /// Ids of the indexes defined on this relation.
    pub indexes: Vec<IndexId>,
}

impl Relation {
    /// Looks up an attribute position by name.
    #[must_use]
    pub fn attr_index(&self, name: &str) -> Option<u32> {
        self.attributes
            .iter()
            .position(|a| a.name == name)
            .map(|i| i as u32)
    }

    /// The [`AttrId`] of the named attribute, if present.
    #[must_use]
    pub fn attr_id(&self, name: &str) -> Option<AttrId> {
        self.attr_index(name).map(|index| AttrId {
            relation: self.id,
            index,
        })
    }

    /// The attribute at `index`.
    ///
    /// # Panics
    /// Panics when out of range.
    #[must_use]
    pub fn attribute(&self, index: u32) -> &Attribute {
        &self.attributes[index as usize]
    }

    /// Number of data pages occupied, under the catalog's page size.
    #[must_use]
    pub fn pages(&self, config: &SystemConfig) -> f64 {
        self.stats.pages(config)
    }
}

/// Errors raised by catalog lookups and mutations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogError {
    /// A relation name was registered twice.
    DuplicateRelation(String),
    /// An attribute name appeared twice within one relation.
    DuplicateAttribute(String),
    /// The named relation does not exist.
    UnknownRelation(String),
    /// The relation id is not present.
    UnknownRelationId(RelationId),
    /// The attribute does not exist on the relation.
    UnknownAttribute(String),
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::DuplicateRelation(n) => write!(f, "duplicate relation {n}"),
            CatalogError::DuplicateAttribute(n) => write!(f, "duplicate attribute {n}"),
            CatalogError::UnknownRelation(n) => write!(f, "unknown relation {n}"),
            CatalogError::UnknownRelationId(id) => write!(f, "unknown relation id {id}"),
            CatalogError::UnknownAttribute(n) => write!(f, "unknown attribute {n}"),
        }
    }
}

impl std::error::Error for CatalogError {}

/// The catalog: all relations, indexes, and the system configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Catalog {
    relations: Vec<Relation>,
    indexes: Vec<IndexInfo>,
    by_name: HashMap<String, RelationId>,
    histograms: HashMap<AttrId, Histogram>,
    /// Physical constants of the (simulated) machine.
    pub config: SystemConfig,
}

impl Catalog {
    /// Creates an empty catalog with the given configuration.
    #[must_use]
    pub fn new(config: SystemConfig) -> Catalog {
        Catalog {
            relations: Vec::new(),
            indexes: Vec::new(),
            by_name: HashMap::new(),
            histograms: HashMap::new(),
            config,
        }
    }

    /// Adds a relation; returns its freshly assigned id.
    pub fn add_relation(
        &mut self,
        name: impl Into<String>,
        attributes: Vec<Attribute>,
        stats: RelationStats,
    ) -> Result<RelationId, CatalogError> {
        let name = name.into();
        if self.by_name.contains_key(&name) {
            return Err(CatalogError::DuplicateRelation(name));
        }
        let mut seen = std::collections::HashSet::new();
        for a in &attributes {
            if !seen.insert(a.name.clone()) {
                return Err(CatalogError::DuplicateAttribute(a.name.clone()));
            }
        }
        let id = RelationId(self.relations.len() as u32);
        self.by_name.insert(name.clone(), id);
        self.relations.push(Relation {
            id,
            name,
            attributes,
            stats,
            indexes: Vec::new(),
        });
        Ok(id)
    }

    /// Registers an index on an existing relation.
    pub fn add_index(&mut self, info: IndexInfo) -> Result<IndexId, CatalogError> {
        let rel = info.attr.relation;
        if rel.0 as usize >= self.relations.len() {
            return Err(CatalogError::UnknownRelationId(rel));
        }
        let id = IndexId(self.indexes.len() as u32);
        self.indexes.push(info);
        self.relations[rel.0 as usize].indexes.push(id);
        Ok(id)
    }

    /// The relation with the given id.
    ///
    /// # Panics
    /// Panics if the id was not issued by this catalog.
    #[must_use]
    pub fn relation(&self, id: RelationId) -> &Relation {
        &self.relations[id.0 as usize]
    }

    /// Looks up a relation by name.
    pub fn relation_by_name(&self, name: &str) -> Result<&Relation, CatalogError> {
        self.by_name
            .get(name)
            .map(|id| self.relation(*id))
            .ok_or_else(|| CatalogError::UnknownRelation(name.to_string()))
    }

    /// All relations in id order.
    #[must_use]
    pub fn relations(&self) -> &[Relation] {
        &self.relations
    }

    /// The index with the given id.
    ///
    /// # Panics
    /// Panics if the id was not issued by this catalog.
    #[must_use]
    #[allow(clippy::should_implement_trait)] // catalog lookup, not ops::Index
    pub fn index(&self, id: IndexId) -> &IndexInfo {
        &self.indexes[id.0 as usize]
    }

    /// All indexes defined on `rel`.
    pub fn indexes_on(&self, rel: RelationId) -> impl Iterator<Item = (IndexId, &IndexInfo)> {
        self.relation(rel)
            .indexes
            .iter()
            .map(move |id| (*id, self.index(*id)))
    }

    /// Finds an index whose key is exactly `attr`, preferring clustered ones.
    #[must_use]
    pub fn index_on_attr(&self, attr: AttrId) -> Option<(IndexId, &IndexInfo)> {
        let mut best: Option<(IndexId, &IndexInfo)> = None;
        for (id, info) in self.indexes_on(attr.relation) {
            if info.attr == attr {
                match best {
                    Some((_, b)) if b.clustered => {}
                    _ => best = Some((id, info)),
                }
                if info.clustered {
                    best = Some((id, info));
                }
            }
        }
        best
    }

    /// The attribute referred to by `attr`.
    #[must_use]
    pub fn attribute(&self, attr: AttrId) -> &Attribute {
        self.relation(attr.relation).attribute(attr.index)
    }

    /// Installs (or replaces) a value-distribution histogram for `attr`.
    /// Updates a relation's cardinality statistic. The refresh hook for
    /// mutable storage: after a write batch, `StoredDatabase::refresh_stats`
    /// pushes live record counts through here so bind-time arbitration and
    /// drift checks cost against post-write cardinalities instead of the
    /// load-time snapshot.
    ///
    /// # Panics
    /// Panics on an unknown relation id.
    pub fn set_cardinality(&mut self, rel: RelationId, cardinality: u64) {
        self.relations[rel.0 as usize].stats.cardinality = cardinality;
    }

    /// Histograms refine the selectivity estimates of *bound* predicates;
    /// without one, the uniform-domain model applies.
    pub fn set_histogram(&mut self, attr: AttrId, histogram: Histogram) {
        self.histograms.insert(attr, histogram);
    }

    /// The histogram for `attr`, if one was installed.
    #[must_use]
    pub fn histogram(&self, attr: AttrId) -> Option<&Histogram> {
        self.histograms.get(&attr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexKind;

    fn small_catalog() -> Catalog {
        let mut cat = Catalog::new(SystemConfig::paper_1994());
        let attrs = vec![Attribute::new("a", 500.0), Attribute::new("j", 400.0)];
        let stats = RelationStats::new(500, 512);
        cat.add_relation("R", attrs, stats).unwrap();
        cat
    }

    #[test]
    fn add_and_lookup_relation() {
        let cat = small_catalog();
        let r = cat.relation_by_name("R").unwrap();
        assert_eq!(r.name, "R");
        assert_eq!(r.attributes.len(), 2);
        assert_eq!(r.attr_index("j"), Some(1));
        assert_eq!(r.attr_index("nope"), None);
        assert_eq!(cat.relation(r.id).name, "R");
        let attr = r.attr_id("a").unwrap();
        assert_eq!(cat.attribute(attr).name, "a");
    }

    #[test]
    fn duplicate_relation_rejected() {
        let mut cat = small_catalog();
        let err = cat
            .add_relation("R", vec![Attribute::new("x", 1.0)], RelationStats::new(1, 512))
            .unwrap_err();
        assert_eq!(err, CatalogError::DuplicateRelation("R".into()));
    }

    #[test]
    fn duplicate_attribute_rejected() {
        let mut cat = Catalog::new(SystemConfig::paper_1994());
        let err = cat
            .add_relation(
                "S",
                vec![Attribute::new("x", 1.0), Attribute::new("x", 2.0)],
                RelationStats::new(1, 512),
            )
            .unwrap_err();
        assert_eq!(err, CatalogError::DuplicateAttribute("x".into()));
    }

    #[test]
    fn unknown_relation_error() {
        let cat = small_catalog();
        assert_eq!(
            cat.relation_by_name("missing").unwrap_err(),
            CatalogError::UnknownRelation("missing".into())
        );
    }

    #[test]
    fn index_registration_and_lookup() {
        let mut cat = small_catalog();
        let rel = cat.relation_by_name("R").unwrap().id;
        let attr = AttrId { relation: rel, index: 0 };
        let id = cat
            .add_index(IndexInfo::new(attr, IndexKind::BTree, false))
            .unwrap();
        assert_eq!(cat.index(id).attr, attr);
        assert_eq!(cat.indexes_on(rel).count(), 1);
        let (found, info) = cat.index_on_attr(attr).unwrap();
        assert_eq!(found, id);
        assert!(!info.clustered);
        // No index on the other attribute.
        assert!(cat.index_on_attr(AttrId { relation: rel, index: 1 }).is_none());
    }

    #[test]
    fn clustered_index_preferred() {
        let mut cat = small_catalog();
        let rel = cat.relation_by_name("R").unwrap().id;
        let attr = AttrId { relation: rel, index: 0 };
        cat.add_index(IndexInfo::new(attr, IndexKind::BTree, false)).unwrap();
        let clustered = cat
            .add_index(IndexInfo::new(attr, IndexKind::BTree, true))
            .unwrap();
        let (found, info) = cat.index_on_attr(attr).unwrap();
        assert_eq!(found, clustered);
        assert!(info.clustered);
    }

    #[test]
    fn index_on_unknown_relation_rejected() {
        let mut cat = small_catalog();
        let err = cat
            .add_index(IndexInfo::new(
                AttrId { relation: RelationId(99), index: 0 },
                IndexKind::BTree,
                false,
            ))
            .unwrap_err();
        assert_eq!(err, CatalogError::UnknownRelationId(RelationId(99)));
    }

    #[test]
    fn pages_follow_config() {
        let cat = small_catalog();
        let r = cat.relation_by_name("R").unwrap();
        // 500 records * 512 B / 2048 B pages = 125 pages.
        assert_eq!(r.pages(&cat.config), 125.0);
    }

    #[test]
    fn display_impls() {
        assert_eq!(RelationId(3).to_string(), "R3");
        let a = AttrId { relation: RelationId(1), index: 2 };
        assert_eq!(a.to_string(), "R1.#2");
    }
}
