//! Relational catalog, statistics, and system configuration.
//!
//! The catalog is the optimizer's source of "compile-time truth": relation
//! schemas and cardinalities, attribute domains (used for join-selectivity
//! estimation), available B-tree indexes, and the physical constants of the
//! simulated machine (page size, disk characteristics, CPU cost constants,
//! access-module parameters).
//!
//! Everything the paper's experimental setup specifies is representable
//! here: relations of 100–1,000 records of 512 bytes on 2,048-byte pages,
//! unclustered B-trees on all selection and join attributes, attribute
//! domain sizes of 0.2–1.25 × relation cardinality, 64 pages of expected
//! memory, 128-byte plan nodes read at 2 MB/s (Section 6).

#![warn(missing_docs)]

mod builder;
mod histogram;
mod config;
mod index;
mod schema;
mod stats;
mod synthetic;

pub use builder::{CatalogBuilder, RelationBuilder};
pub use histogram::Histogram;
pub use config::SystemConfig;
pub use index::{IndexId, IndexInfo, IndexKind};
pub use schema::{AttrId, Attribute, Catalog, CatalogError, Relation, RelationId};
pub use stats::RelationStats;
pub use synthetic::{make_chain_catalog, SyntheticSpec, JOIN_LEFT_ATTR, JOIN_RIGHT_ATTR, SELECTION_ATTR};
