//! Per-relation statistics used by the cost model.

use serde::{Deserialize, Serialize};

use crate::config::SystemConfig;

/// Physical and statistical properties of a stored relation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RelationStats {
    /// Number of records.
    pub cardinality: u64,
    /// Fixed record length in bytes (the experiments use 512 B).
    pub record_len: u32,
}

impl RelationStats {
    /// Creates statistics for a relation of `cardinality` records of
    /// `record_len` bytes each.
    ///
    /// # Panics
    /// Panics if `record_len` is zero.
    #[must_use]
    pub fn new(cardinality: u64, record_len: u32) -> RelationStats {
        assert!(record_len > 0, "record_len must be positive");
        RelationStats {
            cardinality,
            record_len,
        }
    }

    /// Records that fit on one page under `config` (at least 1).
    #[must_use]
    pub fn records_per_page(&self, config: &SystemConfig) -> f64 {
        (config.page_size as f64 / self.record_len as f64).floor().max(1.0)
    }

    /// Number of data pages the relation occupies (at least 1 when
    /// non-empty).
    #[must_use]
    pub fn pages(&self, config: &SystemConfig) -> f64 {
        if self.cardinality == 0 {
            return 0.0;
        }
        (self.cardinality as f64 / self.records_per_page(config)).ceil()
    }

    /// Estimated height of a B-tree over this relation, used for index
    /// traversal costs: `ceil(log_fanout(cardinality))`, at least 1.
    #[must_use]
    pub fn btree_height(&self, config: &SystemConfig) -> f64 {
        if self.cardinality <= 1 {
            return 1.0;
        }
        let fanout = config.btree_fanout as f64;
        (self.cardinality as f64).log(fanout).ceil().max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_math() {
        let cfg = SystemConfig::paper_1994();
        let s = RelationStats::new(1000, 512);
        assert_eq!(s.records_per_page(&cfg), 4.0);
        assert_eq!(s.pages(&cfg), 250.0);
    }

    #[test]
    fn page_math_rounds_up() {
        let cfg = SystemConfig::paper_1994();
        let s = RelationStats::new(101, 512);
        assert_eq!(s.pages(&cfg), 26.0);
    }

    #[test]
    fn empty_relation_has_zero_pages() {
        let cfg = SystemConfig::paper_1994();
        assert_eq!(RelationStats::new(0, 512).pages(&cfg), 0.0);
    }

    #[test]
    fn oversized_record_still_fits_one_per_page() {
        let cfg = SystemConfig::paper_1994();
        let s = RelationStats::new(10, 8192);
        assert_eq!(s.records_per_page(&cfg), 1.0);
        assert_eq!(s.pages(&cfg), 10.0);
    }

    #[test]
    fn btree_height_grows_logarithmically() {
        let cfg = SystemConfig::paper_1994();
        assert_eq!(RelationStats::new(1, 512).btree_height(&cfg), 1.0);
        let small = RelationStats::new(100, 512).btree_height(&cfg);
        let large = RelationStats::new(1_000_000, 512).btree_height(&cfg);
        assert!(small >= 1.0);
        assert!(large > small);
        assert!(large <= 4.0, "a million records should need few levels at high fanout");
    }
}
