//! Equi-width histograms: value-distribution statistics.
//!
//! The paper's final section names *errors in selectivity estimation* as
//! the first remaining source of compile-time uncertainty. The uniform
//! domain model used by the experiments estimates `a < v` as
//! `v / domain`; on skewed data that estimate can be badly wrong even at
//! start-up-time, when the binding is known. An equi-width histogram over
//! the actual stored values repairs the *bound* estimates while leaving
//! genuinely unbound predicates as uncertain as before — sharpening
//! exactly the decisions the choose-plan operator takes.

use serde::{Deserialize, Serialize};

/// An equi-width histogram over integer values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    min: i64,
    max: i64,
    buckets: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Builds a histogram with `n_buckets` equal-width buckets from the
    /// given values. Returns `None` for an empty input.
    ///
    /// # Panics
    /// Panics if `n_buckets` is zero.
    pub fn build(values: impl IntoIterator<Item = i64>, n_buckets: usize) -> Option<Histogram> {
        assert!(n_buckets > 0, "need at least one bucket");
        let values: Vec<i64> = values.into_iter().collect();
        if values.is_empty() {
            return None;
        }
        let min = *values.iter().min().expect("non-empty");
        let max = *values.iter().max().expect("non-empty");
        let mut buckets = vec![0u64; n_buckets];
        let width = bucket_width(min, max, n_buckets);
        for &v in &values {
            let idx = (((v - min) as f64) / width).floor() as usize;
            buckets[idx.min(n_buckets - 1)] += 1;
        }
        Some(Histogram {
            min,
            max,
            buckets,
            total: values.len() as u64,
        })
    }

    /// Number of values the histogram summarizes.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of buckets.
    #[must_use]
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// The value range covered.
    #[must_use]
    pub fn range(&self) -> (i64, i64) {
        (self.min, self.max)
    }

    /// Estimated fraction of values strictly below `v` (linear
    /// interpolation within the boundary bucket).
    #[must_use]
    pub fn fraction_below(&self, v: i64) -> f64 {
        if v <= self.min {
            return 0.0;
        }
        if v > self.max {
            return 1.0;
        }
        let width = bucket_width(self.min, self.max, self.buckets.len());
        let pos = (v - self.min) as f64 / width;
        let full = (pos.floor() as usize).min(self.buckets.len() - 1);
        let mut count: f64 = self.buckets[..full].iter().map(|&c| c as f64).sum();
        let frac_in_bucket = pos - full as f64;
        count += self.buckets[full] as f64 * frac_in_bucket.clamp(0.0, 1.0);
        (count / self.total as f64).clamp(0.0, 1.0)
    }

    /// Estimated fraction of values less than or equal to `v`.
    #[must_use]
    pub fn fraction_leq(&self, v: i64) -> f64 {
        self.fraction_below(v + 1)
    }

    /// Estimated fraction of values equal to `v` (the boundary bucket's
    /// density over one value's width).
    #[must_use]
    pub fn fraction_eq(&self, v: i64) -> f64 {
        (self.fraction_leq(v) - self.fraction_below(v)).max(0.0)
    }
}

fn bucket_width(min: i64, max: i64, n_buckets: usize) -> f64 {
    (((max - min) as f64) + 1.0) / n_buckets as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_data_matches_uniform_model() {
        let h = Histogram::build(0..1000, 50).unwrap();
        assert_eq!(h.total(), 1000);
        assert_eq!(h.bucket_count(), 50);
        assert_eq!(h.range(), (0, 999));
        for v in [100i64, 250, 500, 900] {
            let est = h.fraction_below(v);
            let truth = v as f64 / 1000.0;
            assert!((est - truth).abs() < 0.01, "v={v}: {est} vs {truth}");
        }
    }

    #[test]
    fn skewed_data_is_captured() {
        // 90% of the mass at small values.
        let mut values = vec![];
        values.extend(std::iter::repeat(5i64).take(900));
        values.extend((0..100).map(|i| 100 + i * 9));
        let h = Histogram::build(values.clone(), 20).unwrap();
        let truth =
            values.iter().filter(|&&v| v < 50).count() as f64 / values.len() as f64;
        let est = h.fraction_below(50);
        assert!(
            (est - truth).abs() < 0.1,
            "histogram {est} vs truth {truth}"
        );
        // The uniform model would estimate 50/1000 = 0.05 — off by ~18x.
        assert!(est > 0.8);
    }

    #[test]
    fn boundary_behaviour() {
        let h = Histogram::build(10..20, 5).unwrap();
        assert_eq!(h.fraction_below(10), 0.0);
        assert_eq!(h.fraction_below(5), 0.0);
        assert_eq!(h.fraction_below(20), 1.0);
        assert_eq!(h.fraction_below(i64::from(u16::MAX)), 1.0);
        assert_eq!(h.fraction_leq(19), 1.0);
    }

    #[test]
    fn fraction_eq_over_point_mass() {
        let h = Histogram::build(std::iter::repeat(7i64).take(100), 4).unwrap();
        assert!(h.fraction_eq(7) > 0.9);
        assert_eq!(h.fraction_eq(100), 0.0);
    }

    #[test]
    fn monotone_in_v() {
        let values: Vec<i64> = (0..500).map(|i| (i * i) % 1000).collect();
        let h = Histogram::build(values, 16).unwrap();
        let mut prev = 0.0;
        for v in (-10..1010).step_by(7) {
            let f = h.fraction_below(v);
            assert!(f >= prev - 1e-12, "not monotone at {v}");
            assert!((0.0..=1.0).contains(&f));
            prev = f;
        }
    }

    #[test]
    fn empty_input_yields_none() {
        assert!(Histogram::build(std::iter::empty(), 8).is_none());
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn zero_buckets_rejected() {
        let _ = Histogram::build(0..10, 0);
    }
}
