//! Live views: registered statements kept incrementally consistent with a
//! mutating stored database, re-arbitrated when drift escapes the
//! bind-time interval.
//!
//! A [`LiveViewRegistry`] owns a catalog and stored database with a write
//! path. Each registered view is a prepared statement materialized once
//! through the ordinary dynamic-plan machinery (compile-time choose-plan
//! alternatives, start-up arbitration under the actual bindings) and then
//! maintained by a [`dqep_executor::DeltaPipeline`]: every committed
//! write batch is applied to storage, folded into the catalog statistics,
//! and propagated through each view's delta operators — work proportional
//! to the delta, not the data.
//!
//! The dynamic-plans twist: arbitration chose a winner for the
//! cardinalities *at registration time*. As writes accumulate, the view's
//! observed cardinality can leave the interval the decision was priced
//! on — detected with the same escape test mid-query re-optimization uses
//! ([`dqep_executor::escapes_interval`]). When it fires, the registry
//! re-runs start-up arbitration against the refreshed catalog with the
//! observed cardinality pinned; if a *different* alternative now wins,
//! the pipeline and its retained state are rebuilt from the new winner
//! under the existing degradation ladder (a retryable rebuild failure
//! keeps the old consistent state and counts a fallback).

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use dqep_catalog::{Catalog, RelationId};
use dqep_cost::{Bindings, Environment};
use dqep_executor::{
    compile_delta_plan, escapes_interval, execute_plan_traced, explain_json, BaseDeltas, Delta,
    DeltaPipeline, ExecContext, ExecError, ExecMode, ResourceLimits, SharedCounters,
};
use dqep_interval::Interval;
use dqep_plan::{evaluate_startup_observed, Observations, PlanNode, StartupResult};
use dqep_sql::parse_query;
use dqep_storage::{refresh_histograms, StorageError, StoredDatabase};

use crate::error::ServiceError;
use crate::metrics::MetricsRegistry;
use crate::registry::normalize_sql;

use dqep_core::Optimizer;

/// Tuning knobs for a [`LiveViewRegistry`].
#[derive(Debug, Clone, Copy)]
pub struct LiveConfig {
    /// Resource budgets for delta propagation and (re)materialization.
    pub limits: ResourceLimits,
    /// Execution mode of the materialization runs.
    pub mode: ExecMode,
    /// Degree of parallelism of the materialization runs.
    pub dop: usize,
    /// Equi-width histogram buckets maintained per attribute on refresh.
    pub histogram_buckets: usize,
    /// Drift tolerance: re-arbitration fires only when the observed view
    /// cardinality leaves the bind-time interval widened by this factor
    /// (`[lo/t, hi*t]`). Damps re-fires on tight (point) estimates so a
    /// stable workload stays on the incremental path. Minimum 1.0.
    pub drift_tolerance: f64,
    /// Histogram refresh threshold: histograms are rebuilt (an O(data)
    /// scan) only once the mutations since the last rebuild exceed this
    /// fraction of the stored cardinality. Heap-exact cardinalities are
    /// refreshed on *every* commit regardless — only the distribution
    /// estimate is allowed to lag, the analyze-threshold trade every
    /// statistics subsystem makes.
    pub stats_refresh_fraction: f64,
    /// Retryable registration / rebuild attempts before giving up.
    pub max_retries: usize,
}

impl Default for LiveConfig {
    fn default() -> LiveConfig {
        LiveConfig {
            limits: ResourceLimits::default(),
            mode: ExecMode::Batch,
            dop: 1,
            histogram_buckets: 16,
            drift_tolerance: 2.0,
            stats_refresh_fraction: 0.1,
            max_retries: 3,
        }
    }
}

/// One mutation of a base table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WriteOp {
    /// Insert a row with the given attribute values.
    Insert {
        /// Target relation.
        relation: RelationId,
        /// Attribute values, in schema order.
        values: Vec<i64>,
    },
    /// Delete one row matching the given attribute values (a no-op when
    /// no such row exists).
    Delete {
        /// Target relation.
        relation: RelationId,
        /// Attribute values, in schema order.
        values: Vec<i64>,
    },
}

impl WriteOp {
    fn relation(&self) -> RelationId {
        match self {
            WriteOp::Insert { relation, .. } | WriteOp::Delete { relation, .. } => *relation,
        }
    }
}

/// What one [`LiveViewRegistry::commit`] did.
#[derive(Debug, Clone)]
pub struct CommitOutcome {
    /// Write operations durably applied to storage (a prefix of the
    /// batch: on a storage fault the remainder is not attempted, and the
    /// views stay consistent with exactly the applied prefix).
    pub applied: usize,
    /// Operations submitted.
    pub attempted: usize,
    /// The storage fault that cut the batch short, if any.
    pub storage_error: Option<StorageError>,
    /// Output delta rows propagated into views by this commit.
    pub rows_propagated: u64,
    /// Drift-triggered re-arbitrations fired by this commit.
    pub rearbitrations: u64,
    /// Re-arbitrations that switched the winning alternative and rebuilt
    /// the view's operator state.
    pub plan_switches: u64,
    /// Retryable rebuild failures absorbed by keeping the old state.
    pub fallbacks: u64,
}

/// A registered live view and its maintenance state.
#[derive(Debug)]
struct LiveView {
    name: String,
    sql: String,
    bindings: Bindings,
    /// The compile-time dynamic plan (choose-plan nodes included) — the
    /// arbiter every re-arbitration goes back to.
    plan: Arc<PlanNode>,
    /// Chosen alternative per choose-plan node of the current winner.
    decisions: Vec<usize>,
    /// Root cardinality interval the current winner was priced on.
    bind_interval: Interval,
    /// The delta pipeline maintaining the view.
    pipeline: DeltaPipeline,
    /// View contents as a multiset (row → multiplicity > 0).
    content: HashMap<Vec<i64>, i64>,
    /// EXPLAIN ANALYZE JSON of the most recent full materialization.
    explain: String,
    rearbitrations: u64,
    fallbacks: u64,
}

impl LiveView {
    fn rows(&self) -> u64 {
        self.content.values().map(|&c| c as u64).sum()
    }

    fn merge(&mut self, out: &Delta) {
        for row in out.inserts.iter() {
            *self.content.entry(row).or_insert(0) += 1;
        }
        for row in out.deletes.iter() {
            if let Some(count) = self.content.get_mut(&row) {
                *count -= 1;
                if *count <= 0 {
                    self.content.remove(&row);
                }
            }
        }
    }
}

/// Point-in-time description of one live view, for status output.
#[derive(Debug, Clone)]
pub struct LiveViewInfo {
    /// View name.
    pub name: String,
    /// Normalized statement text.
    pub sql: String,
    /// Current result rows.
    pub rows: u64,
    /// Chosen alternative per choose-plan node of the current winner.
    pub decisions: Vec<usize>,
    /// Drift-triggered re-arbitrations fired so far.
    pub rearbitrations: u64,
    /// Retryable rebuild failures absorbed so far.
    pub fallbacks: u64,
}

/// A registry of live views over an owned, mutable stored database.
///
/// Single-writer by construction: the registry owns the database, so
/// commits are serialized and every view observes the same write order.
#[derive(Debug)]
pub struct LiveViewRegistry {
    catalog: Catalog,
    db: StoredDatabase,
    env: Environment,
    config: LiveConfig,
    metrics: Arc<MetricsRegistry>,
    /// One long-lived context: retained-state reservations of all views
    /// are held against this governor across commits.
    ctx: ExecContext,
    views: Vec<LiveView>,
    /// Mutation epoch of the last histogram rebuild.
    hist_epoch: u64,
}

impl LiveViewRegistry {
    /// A registry over `db` (described by `catalog`), arbitrating under
    /// `env`.
    #[must_use]
    pub fn new(
        catalog: Catalog,
        db: StoredDatabase,
        env: Environment,
        config: LiveConfig,
        metrics: Arc<MetricsRegistry>,
    ) -> LiveViewRegistry {
        let ctx = ExecContext::with_limits(SharedCounters::new(), config.limits)
            .with_mode(config.mode)
            .with_dop(config.dop);
        LiveViewRegistry {
            catalog,
            db,
            env,
            config,
            metrics,
            ctx,
            views: Vec::new(),
            hist_epoch: 0,
        }
    }

    /// The catalog (kept consistent with the mutated database).
    #[must_use]
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The stored database.
    #[must_use]
    pub fn database(&self) -> &StoredDatabase {
        &self.db
    }

    /// Mutable access to the stored database (fault-plan installation).
    pub fn database_mut(&mut self) -> &mut StoredDatabase {
        &mut self.db
    }

    /// Registered views, in registration order.
    #[must_use]
    pub fn views(&self) -> Vec<LiveViewInfo> {
        self.views
            .iter()
            .map(|v| LiveViewInfo {
                name: v.name.clone(),
                sql: v.sql.clone(),
                rows: v.rows(),
                decisions: v.decisions.clone(),
                rearbitrations: v.rearbitrations,
                fallbacks: v.fallbacks,
            })
            .collect()
    }

    /// Registers `sql` under `name` with the given host-variable
    /// bindings, materializing it once through the normal dynamic plan
    /// (choose-plan arbitration included) and compiling its delta
    /// pipeline. Retryable materialization failures (storage faults,
    /// refused memory) are retried up to the configured ladder depth.
    ///
    /// # Errors
    /// Parse/optimizer/binding errors; execution errors that exhaust the
    /// retry ladder.
    pub fn register(
        &mut self,
        name: &str,
        sql: &str,
        binds: &[(&str, i64)],
    ) -> Result<(), ServiceError> {
        let normalized = normalize_sql(sql);
        let query =
            parse_query(&normalized, &self.catalog).map_err(|e| ServiceError::Sql(e.to_string()))?;
        let props = query.required_props();
        let plan = Optimizer::new(&self.catalog, &self.env)
            .optimize_with_props(&query.expr, props)
            .map_err(|e| ServiceError::Optimizer(e.to_string()))?
            .plan;
        let bindings = query.bindings(binds).map_err(ServiceError::Bind)?;

        let mut attempt = 0;
        let view = loop {
            match self.materialize(name, &normalized, &plan, &bindings, &Observations::new()) {
                Ok(view) => break view,
                Err(e) if e.is_retryable() && attempt + 1 < self.config.max_retries => {
                    attempt += 1;
                }
                Err(e) => return Err(ServiceError::Exec(e)),
            }
        };
        self.views.push(view);
        self.metrics.record_live_view();
        Ok(())
    }

    /// Builds a fresh, fully materialized [`LiveView`]: arbitrates the
    /// dynamic plan under `observations`, compiles the winner's delta
    /// pipeline, seeds its retained state with a full-table delta (whose
    /// output is the initial view content), and records the traced
    /// materialization for EXPLAIN ANALYZE. Used by both registration and
    /// drift rebuilds.
    fn materialize(
        &self,
        name: &str,
        sql: &str,
        plan: &Arc<PlanNode>,
        bindings: &Bindings,
        observations: &Observations,
    ) -> Result<LiveView, ExecError> {
        let startup =
            evaluate_startup_observed(plan, &self.catalog, &self.env, bindings, observations);
        let bind_interval = root_interval(&startup, plan);
        let decisions: Vec<usize> = startup.decisions.iter().map(|d| d.chosen_index).collect();

        let mut pipeline = compile_delta_plan(&startup.resolved, &self.catalog, bindings)?;
        let init = match self.full_deltas(&pipeline).and_then(|base| {
            pipeline.apply(&base, &self.ctx)
        }) {
            Ok(init) => init,
            Err(e) => {
                // Unwind any partial reservation before reporting.
                pipeline.release(&self.ctx.governor);
                return Err(e);
            }
        };
        let mut content: HashMap<Vec<i64>, i64> = HashMap::new();
        for row in init.inserts.iter() {
            *content.entry(row).or_insert(0) += 1;
        }

        // The official materialization run: same dynamic plan, ordinary
        // executor, traced for EXPLAIN ANALYZE. Cross-checks the delta
        // seeding (cardinalities must agree) and produces the span tree.
        let (summary, _, trace) = match execute_plan_traced(
            plan,
            &self.db,
            &self.catalog,
            &self.env,
            bindings,
            self.config.limits,
            self.config.mode,
            self.config.dop,
        ) {
            Ok(r) => r,
            Err(e) => {
                pipeline.release(&self.ctx.governor);
                return Err(e);
            }
        };
        debug_assert_eq!(
            summary.rows as usize,
            content.values().map(|&c| c as usize).sum::<usize>(),
            "delta seeding and executor disagree on the view contents"
        );
        let explain = explain_json(&trace, &self.catalog.config);

        Ok(LiveView {
            name: name.to_string(),
            sql: sql.to_string(),
            bindings: bindings.clone(),
            plan: Arc::clone(plan),
            decisions,
            bind_interval,
            pipeline,
            content,
            explain,
            rearbitrations: 0,
            fallbacks: 0,
        })
    }

    /// A full-table delta (every stored row as an insert) for each base
    /// relation the pipeline consumes. Reads are accounted: seeding a
    /// view is query-time work and participates in fault injection.
    fn full_deltas(&self, pipeline: &DeltaPipeline) -> Result<BaseDeltas, ExecError> {
        let mut out = BaseDeltas::new();
        for rel in pipeline.relations() {
            let table = self.db.table(rel);
            let width = self.catalog.relation(rel).attributes.len();
            let delta = out.entry(rel).or_insert_with(|| Delta::new(width));
            for record in table.heap.scan() {
                let record = record?;
                delta.inserts.push_row(&table.decode(&record));
            }
        }
        Ok(out)
    }

    /// Applies one write batch: storage first (heap + indexes, accounted
    /// and fault-injectable), then catalog statistics and histograms,
    /// then delta propagation into every view, then the drift check. A
    /// storage fault cuts the batch to the applied prefix — views are
    /// refreshed for exactly that prefix, so incremental contents remain
    /// equal to a full re-run over the stored data.
    ///
    /// # Errors
    /// Non-retryable propagation failures. Storage faults are reported in
    /// the outcome, not as an error; retryable rebuild failures degrade
    /// to keeping the previous state.
    pub fn commit(&mut self, ops: &[WriteOp]) -> Result<CommitOutcome, ServiceError> {
        let mut outcome = CommitOutcome {
            applied: 0,
            attempted: ops.len(),
            storage_error: None,
            rows_propagated: 0,
            rearbitrations: 0,
            plan_switches: 0,
            fallbacks: 0,
        };

        // Phase 1: the write path. First failure stops the batch; the
        // applied prefix stays durable.
        let mut base = BaseDeltas::new();
        for op in ops {
            let rel = op.relation();
            let width = self.catalog.relation(rel).attributes.len();
            let result = match op {
                WriteOp::Insert { relation, values } => {
                    match self.db.insert(&self.catalog, *relation, values) {
                        Ok(_) => Ok(Some(values)),
                        Err(e) => Err(e),
                    }
                }
                WriteOp::Delete { relation, values } => {
                    match self.db.delete(&self.catalog, *relation, values) {
                        Ok(Some(_)) => Ok(Some(values)),
                        Ok(None) => Ok(None),
                        Err(e) => Err(e),
                    }
                }
            };
            match result {
                Ok(Some(values)) => {
                    let delta = base.entry(rel).or_insert_with(|| Delta::new(width));
                    match op {
                        WriteOp::Insert { .. } => delta.inserts.push_row(values),
                        WriteOp::Delete { .. } => delta.deletes.push_row(values),
                    }
                    outcome.applied += 1;
                }
                Ok(None) => {
                    // Deleting a non-existent row: counted as applied (it
                    // is durable — the row is absent), propagates nothing.
                    outcome.applied += 1;
                }
                Err(e) => {
                    outcome.storage_error = Some(e);
                    break;
                }
            }
        }

        // Phase 2: keep the catalog honest. Heap-exact cardinalities are
        // free and refresh every commit; the histogram rebuild is an
        // O(data) scan and waits for the analyze threshold. Without this
        // hook, re-arbitration would price alternatives on stale
        // statistics.
        let epoch = self.db.refresh_stats(&mut self.catalog);
        let stored: u64 = self
            .catalog
            .relations()
            .iter()
            .map(|r| r.stats.cardinality)
            .sum();
        let threshold =
            ((self.config.stats_refresh_fraction.max(0.0) * stored as f64) as u64).max(1);
        if epoch - self.hist_epoch >= threshold {
            refresh_histograms(&self.db, &mut self.catalog, self.config.histogram_buckets);
            self.hist_epoch = epoch;
        }

        // Phase 3: propagate into every view and check for drift.
        for i in 0..self.views.len() {
            let started = Instant::now();
            let out = {
                let view = &mut self.views[i];
                view.pipeline.apply(&base, &self.ctx).map_err(ServiceError::Exec)?
            };
            let view = &mut self.views[i];
            view.merge(&out);
            outcome.rows_propagated += out.rows() as u64;
            self.metrics.record_live_batch(out.rows() as u64);
            self.metrics.live_refresh.record(started.elapsed());

            let actual = view.rows() as f64;
            let tol = self.config.drift_tolerance.max(1.0);
            let band =
                Interval::new(view.bind_interval.lo() / tol, view.bind_interval.hi() * tol);
            if escapes_interval(actual, band) {
                outcome.rearbitrations += 1;
                self.rearbitrate(i, actual, &mut outcome)?;
            }
        }
        Ok(outcome)
    }

    /// Re-fires start-up arbitration for view `i` with the observed
    /// cardinality pinned at the dynamic plan root (expanded across the
    /// choose-plan equivalence classes) against the refreshed catalog.
    /// If the winning alternatives changed, rebuilds the pipeline and
    /// contents from the new winner; the old state is swapped out only on
    /// success, and a retryable rebuild failure keeps it (one fallback).
    fn rearbitrate(
        &mut self,
        i: usize,
        actual: f64,
        outcome: &mut CommitOutcome,
    ) -> Result<(), ServiceError> {
        self.metrics.record_live_rearbitration();
        self.views[i].rearbitrations += 1;
        dqep_executor::journal().record(
            dqep_executor::EventKind::LiveDrift,
            0,
            dqep_executor::NO_ID,
            self.views[i].plan.id.0,
            actual as u64,
            self.views[i].rearbitrations,
        );

        let mut observations = Observations::new();
        observations.insert(self.views[i].plan.id, actual);
        let plan = Arc::clone(&self.views[i].plan);
        let bindings = self.views[i].bindings.clone();
        let startup =
            evaluate_startup_observed(&plan, &self.catalog, &self.env, &bindings, &observations);
        let decisions: Vec<usize> = startup.decisions.iter().map(|d| d.chosen_index).collect();

        if decisions == self.views[i].decisions {
            // Same winner: just widen the drift reference to the freshly
            // priced interval so a stable workload does not re-fire.
            self.views[i].bind_interval = root_interval(&startup, &plan);
            return Ok(());
        }

        let (name, sql) = (self.views[i].name.clone(), self.views[i].sql.clone());
        match self.materialize(&name, &sql, &plan, &bindings, &observations) {
            Ok(mut rebuilt) => {
                rebuilt.rearbitrations = self.views[i].rearbitrations;
                rebuilt.fallbacks = self.views[i].fallbacks;
                let old = std::mem::replace(&mut self.views[i], rebuilt);
                let mut old = old;
                old.pipeline.release(&self.ctx.governor);
                outcome.plan_switches += 1;
                Ok(())
            }
            Err(e) if e.is_retryable() => {
                // Degradation ladder: the old pipeline and contents are
                // still consistent — keep serving them.
                self.views[i].fallbacks += 1;
                outcome.fallbacks += 1;
                Ok(())
            }
            Err(e) => Err(ServiceError::Exec(e)),
        }
    }

    /// The view's current contents: in the maintained sort order when the
    /// plan ends in a sort, lexicographic otherwise. `None` for an
    /// unknown view.
    #[must_use]
    pub fn snapshot(&self, name: &str) -> Option<Vec<Vec<i64>>> {
        let view = self.views.iter().find(|v| v.name == name)?;
        if let Some(ordered) = view.pipeline.ordered_snapshot() {
            return Some(ordered);
        }
        let mut rows = Vec::new();
        for (row, &count) in &view.content {
            for _ in 0..count {
                rows.push(row.clone());
            }
        }
        rows.sort_unstable();
        Some(rows)
    }

    /// EXPLAIN ANALYZE JSON of the view's most recent full
    /// materialization (registration, or the latest drift rebuild).
    #[must_use]
    pub fn explain_json(&self, name: &str) -> Option<&str> {
        self.views
            .iter()
            .find(|v| v.name == name)
            .map(|v| v.explain.as_str())
    }
}

/// The root cardinality interval a startup arbitration priced the winner
/// on — the reference the drift check compares observed cardinality
/// against.
fn root_interval(startup: &StartupResult, plan: &Arc<PlanNode>) -> Interval {
    startup
        .estimates
        .get(&plan.id)
        .copied()
        .unwrap_or(plan.stats.card)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqep_catalog::{make_chain_catalog, CatalogBuilder, SyntheticSpec, SystemConfig};
    use dqep_executor::{compile_plan, drain};
    use dqep_plan::evaluate_startup;
    use dqep_storage::FaultPlan;

    const CHAIN_SQL: &str =
        "SELECT * FROM R1, R2 WHERE R1.jr = R2.jl AND R1.a < :v1 AND R2.a < :v2";

    fn chain_registry() -> LiveViewRegistry {
        let catalog = make_chain_catalog(&SyntheticSpec::paper(2, 7), SystemConfig::paper_1994());
        let db = StoredDatabase::generate(&catalog, 7);
        let env = Environment::dynamic_compile_time(&catalog.config);
        LiveViewRegistry::new(
            catalog,
            db,
            env,
            LiveConfig::default(),
            Arc::new(MetricsRegistry::new()),
        )
    }

    /// Ground truth: parse, optimize, arbitrate, and execute `sql` fresh
    /// over the registry's *current* stored data.
    fn executed(reg: &LiveViewRegistry, sql: &str, binds: &[(&str, i64)]) -> Vec<Vec<i64>> {
        let cat = reg.catalog();
        let env = Environment::dynamic_compile_time(&cat.config);
        let query = parse_query(&normalize_sql(sql), cat).unwrap();
        let plan = Optimizer::new(cat, &env)
            .optimize_with_props(&query.expr, query.required_props())
            .unwrap()
            .plan;
        let bindings = query.bindings(binds).unwrap();
        let startup = evaluate_startup(&plan, cat, &env, &bindings);
        let ctx = ExecContext::new(SharedCounters::new());
        let mut op =
            compile_plan(&startup.resolved, reg.database(), cat, &bindings, 1 << 22, &ctx)
                .unwrap();
        let mut rows = drain(op.as_mut()).unwrap();
        rows.sort_unstable();
        rows
    }

    #[test]
    fn registered_view_tracks_interleaved_writes() {
        let mut reg = chain_registry();
        let binds = [("v1", 400), ("v2", 400)];
        reg.register("joined", CHAIN_SQL, &binds).unwrap();
        assert_eq!(
            reg.snapshot("joined").unwrap(),
            executed(&reg, CHAIN_SQL, &binds),
            "registration materializes the current contents"
        );
        let r1 = reg.catalog().relation_by_name("R1").unwrap().id;
        let r2 = reg.catalog().relation_by_name("R2").unwrap().id;
        // Matching and non-matching inserts, then delete one of them.
        let outcome = reg
            .commit(&[
                WriteOp::Insert { relation: r1, values: vec![10, 1, 99] },
                WriteOp::Insert { relation: r2, values: vec![20, 99, 1] },
                WriteOp::Insert { relation: r1, values: vec![9999, 1, 98] },
            ])
            .unwrap();
        assert_eq!(outcome.applied, 3);
        assert!(outcome.storage_error.is_none());
        assert_eq!(reg.snapshot("joined").unwrap(), executed(&reg, CHAIN_SQL, &binds));
        let outcome = reg
            .commit(&[WriteOp::Delete { relation: r2, values: vec![20, 99, 1] }])
            .unwrap();
        assert_eq!(outcome.applied, 1);
        assert_eq!(reg.snapshot("joined").unwrap(), executed(&reg, CHAIN_SQL, &binds));
        let views = reg.views();
        assert_eq!(views.len(), 1);
        assert!(views[0].rows > 0);
        // The explain of the materialization validates against the schema.
        let explain = reg.explain_json("joined").unwrap();
        assert!(dqep_executor::validate_explain_json(explain).is_ok(), "{explain}");
    }

    #[test]
    fn storage_fault_cuts_commit_to_consistent_prefix() {
        let mut reg = chain_registry();
        let binds = [("v1", 500), ("v2", 500)];
        reg.register("joined", CHAIN_SQL, &binds).unwrap();
        let r1 = reg.catalog().relation_by_name("R1").unwrap().id;
        reg.database_mut().disk.set_fault_plan(FaultPlan {
            fail_nth_writes: vec![2],
            ..FaultPlan::none()
        });
        let outcome = reg
            .commit(&[
                WriteOp::Insert { relation: r1, values: vec![5, 1, 1] },
                WriteOp::Insert { relation: r1, values: vec![6, 1, 1] },
                WriteOp::Insert { relation: r1, values: vec![7, 1, 1] },
            ])
            .unwrap();
        reg.database_mut().disk.set_fault_plan(FaultPlan::none());
        assert_eq!(outcome.applied, 1, "second write faulted");
        assert!(outcome.storage_error.is_some());
        // The view reflects exactly the applied prefix.
        assert_eq!(reg.snapshot("joined").unwrap(), executed(&reg, CHAIN_SQL, &binds));
    }

    #[test]
    fn drift_rearbitrates_and_switches_the_winner() {
        // Figure 1 economics: 1000 rows, `a < 10` → the index alternative
        // wins at registration. Bulk inserts of matching rows push the
        // view's cardinality far outside the bind-time interval; the
        // refreshed statistics make the file-scan alternative the winner.
        let catalog = CatalogBuilder::new(SystemConfig::paper_1994())
            .relation("r", 1000, 512, |r| r.attr("a", 1000.0).btree("a", false))
            .build()
            .unwrap();
        let db = StoredDatabase::generate(&catalog, 3);
        let env = Environment::dynamic_compile_time(&catalog.config);
        let metrics = Arc::new(MetricsRegistry::new());
        let mut reg =
            LiveViewRegistry::new(catalog, db, env, LiveConfig::default(), Arc::clone(&metrics));

        let sql = "SELECT * FROM r WHERE r.a < :v";
        reg.register("small", sql, &[("v", 10)]).unwrap();
        let before = reg.views()[0].decisions.clone();
        assert!(!before.is_empty(), "dynamic plan has a choose-plan decision");

        let r = reg.catalog().relation_by_name("r").unwrap().id;
        let ops: Vec<WriteOp> = (0..600)
            .map(|i| WriteOp::Insert { relation: r, values: vec![i % 9] })
            .collect();
        let outcome = reg.commit(&ops).unwrap();
        assert!(outcome.rearbitrations > 0, "drift fired: {outcome:?}");
        assert!(outcome.plan_switches > 0, "the winner changed: {outcome:?}");
        let after = reg.views()[0].decisions.clone();
        assert_ne!(before, after, "a different alternative won");
        assert_eq!(metrics.live_rearbitrations(), outcome.rearbitrations);

        // Parity survives the rebuild.
        assert_eq!(reg.snapshot("small").unwrap(), executed(&reg, sql, &[("v", 10)]));

        // A further small write does not re-fire on a stable workload.
        let quiet = reg
            .commit(&[WriteOp::Insert { relation: r, values: vec![500] }])
            .unwrap();
        assert_eq!(quiet.rearbitrations, 0, "{quiet:?}");
        assert_eq!(reg.snapshot("small").unwrap(), executed(&reg, sql, &[("v", 10)]));
    }
}
